/**
 * @file
 * Workload abstraction: a deterministic generator of kernel launches
 * (paper Table III lists the ten evaluated applications).
 *
 * Each workload reproduces the *memory access pattern* of its paper
 * counterpart — the property that determines page migration behaviour
 * — at a configurable fraction of the paper's memory footprint
 * (scaleDiv = 1 restores the full 30-64 MB sizes).
 */

#ifndef GRIFFIN_WORKLOADS_WORKLOAD_HH
#define GRIFFIN_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/rng.hh"
#include "src/sim/types.hh"
#include "src/workloads/trace.hh"

namespace griffin::wl {

/** Generation parameters shared by all workloads. */
struct WorkloadConfig
{
    /** Footprint divisor relative to the paper (1 = paper-sized). */
    unsigned scaleDiv = 8;
    /** Master seed; all randomness derives deterministically. */
    std::uint64_t seed = 42;
    /** Transactions per wavefront. */
    std::size_t opsPerWavefront = 64;
    /** Default compute cycles between transactions. */
    std::uint32_t computeDelay = 8;
    /** Concurrent wavefronts per workgroup (memory-level parallelism). */
    std::size_t wavefrontsPerWorkgroup = 16;
};

/**
 * Base class of the ten benchmark generators.
 */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &cfg) : _cfg(cfg) {}
    virtual ~Workload() = default;

    /** Table III abbreviation ("BFS", "SC", ...). */
    virtual std::string name() const = 0;
    /** Full application name. */
    virtual std::string fullName() const = 0;
    /** Originating benchmark suite. */
    virtual std::string suite() const = 0;
    /** Table III access-pattern label. */
    virtual std::string accessPattern() const = 0;
    /** Unscaled (paper) memory footprint in bytes. */
    virtual std::uint64_t paperFootprintBytes() const = 0;
    /** Kernel launches in the program. */
    virtual unsigned numKernels() const = 0;
    /** Workgroups per kernel launch. */
    virtual unsigned workgroupsPerKernel() const = 0;

    /** Generate kernel @p k (deterministic for a given seed). */
    virtual KernelLaunch makeKernel(unsigned k) = 0;

    /** Scaled footprint actually generated. */
    std::uint64_t
    footprintBytes() const
    {
        return paperFootprintBytes() / _cfg.scaleDiv;
    }

    const WorkloadConfig &config() const { return _cfg; }

  protected:
    WorkloadConfig _cfg;
    static constexpr unsigned lineBytes = 64;

    /** Independent deterministic stream per (kernel, workgroup). */
    sim::Rng
    rngFor(unsigned kernel, unsigned wg) const
    {
        return sim::Rng(_cfg.seed * 0x9e3779b97f4a7c15ULL +
                        std::uint64_t(kernel) * 1000003ULL +
                        std::uint64_t(wg) * 10007ULL + 1);
    }

    TraceBuilder
    builder() const
    {
        return TraceBuilder(_cfg.opsPerWavefront, _cfg.computeDelay,
                            _cfg.wavefrontsPerWorkgroup);
    }
};

/** The ten Table III abbreviations, in the paper's order. */
std::vector<std::string> workloadNames();

/**
 * Factory keyed by abbreviation (case-sensitive, e.g. "BFS").
 * @return nullptr for an unknown name.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &abbv,
                                       const WorkloadConfig &cfg);

} // namespace griffin::wl

#endif // GRIFFIN_WORKLOADS_WORKLOAD_HH
