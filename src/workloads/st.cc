#include "src/workloads/suite.hh"

namespace griffin::wl {

StWorkload::StWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    const std::uint64_t lines = footprintBytes() / lineBytes;
    _gridLines = lines / 2;
    _aBase = 0;
    _bBase = _gridLines * lineBytes;
}

KernelLaunch
StWorkload::makeKernel(unsigned k)
{
    const unsigned wgs = workgroupsPerKernel();
    const std::uint64_t band = _gridLines / wgs;
    constexpr std::uint64_t halo = 16; ///< boundary rows per neighbour
    // Ping-pong: even iterations read A write B, odd the reverse.
    const Addr src = (k % 2 == 0) ? _aBase : _bBase;
    const Addr dst = (k % 2 == 0) ? _bBase : _aBase;

    KernelLaunch launch;
    launch.workgroups.reserve(wgs);
    for (unsigned w = 0; w < wgs; ++w) {
        TraceBuilder tb = builder();

        const std::uint64_t begin = w * band;
        const std::uint64_t end =
            (w + 1 == wgs) ? _gridLines : begin + band;

        // 5-point stencil over rows: each output row reads the row
        // above (halo at the band edge — a neighbouring workgroup's
        // pages, usually a neighbouring GPU's), itself, and the row
        // below. Each source line is therefore read three times over
        // the sweep, keeping the band pages hot.
        for (std::uint64_t line = begin; line < end; ++line) {
            const std::uint64_t up = (line >= halo) ? line - halo : 0;
            const std::uint64_t down =
                std::min(line + halo, _gridLines - 1);
            tb.add(src + up * lineBytes, false);
            tb.add(src + line * lineBytes, false);
            tb.add(src + down * lineBytes, false);
            tb.add(dst + line * lineBytes, true);
        }

        launch.workgroups.push_back(tb.finishWorkgroup(w));
    }
    return launch;
}

} // namespace griffin::wl
