#include "src/workloads/suite.hh"

namespace griffin::wl {

KmWorkload::KmWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    const std::uint64_t lines = footprintBytes() / lineBytes;
    // The centroid table is small (two pages) and hammered by every
    // workgroup each iteration: the canonical Shared pages.
    _centroidLines = 128;
    _assignLines = lines / 8;
    _pointLines = lines - _centroidLines - _assignLines;
    _pointsBase = 0;
    _centroidsBase = _pointLines * lineBytes;
    _assignBase = (_pointLines + _centroidLines) * lineBytes;
}

KernelLaunch
KmWorkload::makeKernel(unsigned k)
{
    (void)k; // every iteration touches the same partitions
    const unsigned wgs = workgroupsPerKernel();
    const std::uint64_t part = _pointLines / wgs;

    KernelLaunch launch;
    launch.workgroups.reserve(wgs);
    for (unsigned w = 0; w < wgs; ++w) {
        TraceBuilder tb = builder();

        // The workgroup's own point partition (Partition pattern:
        // dedicated pages, same owner every iteration), with the
        // shared centroid table re-read throughout the sweep so the
        // centroid pages stay hot for the whole kernel.
        const std::uint64_t begin = w * part;
        const std::uint64_t end =
            (w + 1 == wgs) ? _pointLines : begin + part;
        for (std::uint64_t line = begin; line < end; ++line) {
            tb.add(_pointsBase + line * lineBytes, false);
            if (line % 4 == 0) {
                // Distance computation against a batch of centroids.
                const std::uint64_t cl =
                    ((line - begin) / 4 * 8) % _centroidLines;
                for (std::uint64_t c = 0; c < 4; ++c)
                    tb.add(_centroidsBase +
                               ((cl + c) % _centroidLines) * lineBytes,
                           false);
            }
            if (line % 8 == 0) {
                const std::uint64_t al = (line / 8) % _assignLines;
                tb.add(_assignBase + al * lineBytes, true);
            }
        }
        launch.workgroups.push_back(tb.finishWorkgroup(w));
    }
    return launch;
}

} // namespace griffin::wl
