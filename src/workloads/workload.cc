#include "src/workloads/workload.hh"

#include "src/workloads/suite.hh"

namespace griffin::wl {

std::vector<std::string>
workloadNames()
{
    return {"BFS", "BS", "FIR", "FLW", "FW", "KM", "MT", "PR", "SC", "ST"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &abbv, const WorkloadConfig &cfg)
{
    if (abbv == "BFS")
        return std::make_unique<BfsWorkload>(cfg);
    if (abbv == "BS")
        return std::make_unique<BsWorkload>(cfg);
    if (abbv == "FIR")
        return std::make_unique<FirWorkload>(cfg);
    if (abbv == "FLW")
        return std::make_unique<FlwWorkload>(cfg);
    if (abbv == "FW")
        return std::make_unique<FwWorkload>(cfg);
    if (abbv == "KM")
        return std::make_unique<KmWorkload>(cfg);
    if (abbv == "MT")
        return std::make_unique<MtWorkload>(cfg);
    if (abbv == "PR")
        return std::make_unique<PrWorkload>(cfg);
    if (abbv == "SC")
        return std::make_unique<ScWorkload>(cfg);
    if (abbv == "ST")
        return std::make_unique<StWorkload>(cfg);
    return nullptr;
}

} // namespace griffin::wl
