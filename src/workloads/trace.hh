/**
 * @file
 * The trace format that connects workloads to the GPU model.
 *
 * A workload is a sequence of kernel launches; each kernel is a grid
 * of workgroups; each workgroup is a set of wavefronts; each wavefront
 * is a list of post-coalescing memory transactions (64-byte lines)
 * separated by compute delays. This is exactly the abstraction level
 * at which page migration behaviour is determined (paper SS III-C
 * counts post-coalescing transactions).
 */

#ifndef GRIFFIN_WORKLOADS_TRACE_HH
#define GRIFFIN_WORKLOADS_TRACE_HH

#include <cstdint>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::wl {

/** One post-coalescing memory transaction plus trailing compute. */
struct MemOp
{
    Addr vaddr = 0;
    /** Cycles of non-memory work before the next op can issue. */
    std::uint32_t computeDelay = 0;
    bool isWrite = false;
};

/** The memory trace of one wavefront. */
struct WavefrontTrace
{
    std::vector<MemOp> ops;
};

/** A workgroup: wavefronts that must run on the same CU. */
struct Workgroup
{
    std::uint32_t id = 0;
    std::vector<WavefrontTrace> wavefronts;

    /** Total transactions across all wavefronts. */
    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &wf : wavefronts)
            n += wf.ops.size();
        return n;
    }
};

/** One kernel launch: the grid of workgroups to dispatch. */
struct KernelLaunch
{
    std::vector<Workgroup> workgroups;

    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &wg : workgroups)
            n += wg.totalOps();
        return n;
    }
};

/**
 * Helper that turns a workgroup's logical access stream into
 * wavefront traces.
 *
 * The stream is dealt round-robin across the workgroup's wavefronts
 * (op i goes to wavefront i mod K), so concurrently-running
 * wavefronts co-traverse the same pages — matching real GPUs, where
 * a workgroup's wavefronts process adjacent rows of the same tile at
 * the same time. This is what concentrates per-page access rates
 * enough for the DPC counters to observe them.
 */
class TraceBuilder
{
  public:
    /**
     * @param ops_per_wavefront target transactions per wavefront
     *        (controls how many wavefronts a workgroup gets).
     * @param compute_delay default per-op trailing compute cycles.
     * @param max_wavefronts cap on wavefronts per workgroup; chosen
     *        to match the CU's concurrent-wavefront limit so the
     *        whole workgroup runs as one co-traversing front.
     */
    explicit TraceBuilder(std::size_t ops_per_wavefront = 64,
                          std::uint32_t compute_delay = 8,
                          std::size_t max_wavefronts = 8);

    /** Set the compute delay applied to subsequently added ops. */
    void setComputeDelay(std::uint32_t delay) { _delay = delay; }

    /** Append one transaction. */
    void add(Addr vaddr, bool is_write);

    /** Append every line of [base, base+bytes). */
    void addRange(Addr base, std::uint64_t bytes, bool is_write,
                  unsigned line_bytes = 64);

    /** Close the current workgroup and return it (interleaved). */
    Workgroup finishWorkgroup(std::uint32_t id);

  private:
    std::size_t _opsPerWavefront;
    std::uint32_t _delay;
    std::size_t _maxWavefronts;
    std::vector<MemOp> _ops;
};

} // namespace griffin::wl

#endif // GRIFFIN_WORKLOADS_TRACE_HH
