#include "src/workloads/suite.hh"

namespace griffin::wl {

FwWorkload::FwWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    _lines = footprintBytes() / lineBytes;
    _base = 0;
}

KernelLaunch
FwWorkload::makeKernel(unsigned k)
{
    const unsigned wgs = workgroupsPerKernel();
    const std::uint64_t chunk = _lines / wgs;

    // Butterfly stride doubles per stage; by the late stages the
    // partner lines live in another workgroup's chunk (and usually on
    // another GPU), producing the cross-GPU reads of the transform.
    std::uint64_t stride = std::uint64_t(8) << k;
    if (stride >= _lines)
        stride = _lines / 2;

    KernelLaunch launch;
    launch.workgroups.reserve(wgs);
    for (unsigned w = 0; w < wgs; ++w) {
        TraceBuilder tb = builder();
        const std::uint64_t begin = w * chunk;
        const std::uint64_t end = (w + 1 == wgs) ? _lines : begin + chunk;
        // Each pair (line, line^stride) is processed once: the lower
        // index issues it, every other line to bound the trace.
        for (std::uint64_t line = begin; line < end; line += 2) {
            const std::uint64_t partner = (line ^ stride) % _lines;
            tb.add(_base + line * lineBytes, false);
            if (partner != line)
                tb.add(_base + partner * lineBytes, false);
            tb.add(_base + line * lineBytes, true);
        }
        launch.workgroups.push_back(tb.finishWorkgroup(w));
    }
    return launch;
}

} // namespace griffin::wl
