#include "src/workloads/suite.hh"

namespace griffin::wl {

namespace {
/** Frontier share of the nodes per BFS level (bell-shaped). */
constexpr double frontierFraction[8] = {0.02, 0.08, 0.20, 0.30,
                                        0.20, 0.10, 0.06, 0.04};
} // namespace

BfsWorkload::BfsWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    const std::uint64_t lines = footprintBytes() / lineBytes;
    // CSR split: 20% dense labels/rowptr, 80% edge (column) array.
    _labelLines = lines / 5;
    _colLines = lines - _labelLines;
    _labelsBase = 0;
    _colsBase = _labelLines * lineBytes;
}

KernelLaunch
BfsWorkload::makeKernel(unsigned k)
{
    const unsigned wgs = workgroupsPerKernel();
    const double frontier = frontierFraction[k % 8];
    const std::uint64_t slice = _labelLines / wgs;

    KernelLaunch launch;
    launch.workgroups.reserve(wgs);
    for (unsigned w = 0; w < wgs; ++w) {
        sim::Rng rng = rngFor(k, w);
        TraceBuilder tb = builder();

        const std::uint64_t begin = w * slice;
        const std::uint64_t end =
            (w + 1 == wgs) ? _labelLines : begin + slice;
        for (std::uint64_t line = begin; line < end; ++line) {
            // Scan the level's labels sequentially.
            tb.add(_labelsBase + line * lineBytes, false);
            if (rng.nextDouble() < frontier) {
                // Frontier node: pull its adjacency list (random
                // column lines) and relax a random neighbour label.
                for (int e = 0; e < 2; ++e) {
                    const std::uint64_t cl = rng.nextBelow(_colLines);
                    tb.add(_colsBase + cl * lineBytes, false);
                }
                const std::uint64_t nl = rng.nextBelow(_labelLines);
                tb.add(_labelsBase + nl * lineBytes, true);
            }
        }
        launch.workgroups.push_back(tb.finishWorkgroup(w));
    }
    return launch;
}

} // namespace griffin::wl
