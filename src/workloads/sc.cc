#include "src/workloads/suite.hh"

namespace griffin::wl {

ScWorkload::ScWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    const std::uint64_t lines = footprintBytes() / lineBytes;
    // One filter page + two image buffers.
    _imgLines = (lines - 64) / 2;
    _filterBase = 0;
    _inBase = 64 * lineBytes;
    _outBase = _inBase + _imgLines * lineBytes;
}

PageId
ScWorkload::filterPage(unsigned page_shift) const
{
    return _filterBase >> page_shift;
}

KernelLaunch
ScWorkload::makeKernel(unsigned k)
{
    const unsigned wgs = workgroupsPerKernel();
    const std::uint64_t tile = _imgLines / wgs;
    constexpr std::uint64_t halo = 8; ///< rows from the next tile
    // Successive passes alternate the image buffers.
    const Addr src = (k % 2 == 0) ? _inBase : _outBase;
    const Addr dst = (k % 2 == 0) ? _outBase : _inBase;

    KernelLaunch launch;
    launch.workgroups.reserve(wgs);
    for (unsigned w = 0; w < wgs; ++w) {
        TraceBuilder tb = builder();

        // Because 61 workgroups % 4 GPUs != 0, the dispatcher cursor
        // rotates this tile to a different GPU every kernel — the
        // tile pages' dominant accessor shifts over time (the paper's
        // Figure 1/10 behaviour).
        const std::uint64_t begin = w * tile;
        const std::uint64_t end =
            (w + 1 == wgs) ? _imgLines : begin + tile;
        for (std::uint64_t line = begin; line < end; ++line) {
            // The filter coefficients are re-read throughout the
            // tile sweep: page 0 stays hot for the whole kernel.
            if ((line - begin) % 32 == 0) {
                const std::uint64_t fl = ((line - begin) / 32) % 8;
                tb.add(_filterBase + fl * lineBytes, false);
            }
            // 3-row convolution window: each source line is read by
            // three neighbouring output rows, so tile pages sustain
            // a high post-coalescing access rate while in the window.
            for (std::uint64_t d = 0; d < 3; ++d) {
                const std::uint64_t sl =
                    std::min(line + d, std::min(end + halo, _imgLines) - 1);
                tb.add(src + sl * lineBytes, false);
            }
            tb.add(dst + line * lineBytes, true);
        }

        launch.workgroups.push_back(tb.finishWorkgroup(w));
    }
    return launch;
}

} // namespace griffin::wl
