#include "src/workloads/suite.hh"

namespace griffin::wl {

FirWorkload::FirWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    const std::uint64_t lines = footprintBytes() / lineBytes;
    _inLines = lines / 2;
    _outLines = lines - _inLines;
    _inBase = 0;
    _outBase = _inLines * lineBytes;
}

KernelLaunch
FirWorkload::makeKernel(unsigned k)
{
    // Each kernel filters one batch (a quarter of the signal).
    const unsigned kernels = numKernels();
    const unsigned wgs = workgroupsPerKernel();
    const std::uint64_t batch_lines = _inLines / kernels;
    const std::uint64_t batch_begin = k * batch_lines;
    const std::uint64_t slice = batch_lines / wgs;
    constexpr std::uint64_t tap_halo = 16; ///< filter taps past the slice

    KernelLaunch launch;
    launch.workgroups.reserve(wgs);
    for (unsigned w = 0; w < wgs; ++w) {
        TraceBuilder tb = builder();
        // A 16-tap filter does substantial MAC work per transaction.
        tb.setComputeDelay(_cfg.computeDelay * 2);
        const std::uint64_t begin = batch_begin + w * slice;
        const std::uint64_t end = (w + 1 == wgs)
            ? batch_begin + batch_lines
            : begin + slice;
        // Sliding tap window: each output line convolves four input
        // lines, the last of which reaches into the next workgroup's
        // slice (the tap halo). Input lines are re-read by adjacent
        // windows, sustaining the per-page access rate.
        for (std::uint64_t line = begin; line < end; ++line) {
            for (std::uint64_t t = 0; t < 4; ++t) {
                const std::uint64_t il =
                    std::min(line + t * (tap_halo / 4), _inLines - 1);
                tb.add(_inBase + il * lineBytes, false);
            }
            tb.add(_outBase + line * lineBytes, true);
        }
        launch.workgroups.push_back(tb.finishWorkgroup(w));
    }
    return launch;
}

} // namespace griffin::wl
