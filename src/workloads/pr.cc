#include "src/workloads/suite.hh"

namespace griffin::wl {

PrWorkload::PrWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    const std::uint64_t lines = footprintBytes() / lineBytes;
    _rankLines = lines / 10;
    _colLines = lines - 2 * _rankLines;
    _rankABase = 0;
    _rankBBase = _rankLines * lineBytes;
    _colsBase = 2 * _rankLines * lineBytes;
}

KernelLaunch
PrWorkload::makeKernel(unsigned k)
{
    const unsigned wgs = workgroupsPerKernel();
    const std::uint64_t chunk = _rankLines / wgs;
    // Ping-pong the rank buffers each iteration.
    const Addr old_ranks = (k % 2 == 0) ? _rankABase : _rankBBase;
    const Addr new_ranks = (k % 2 == 0) ? _rankBBase : _rankABase;

    KernelLaunch launch;
    launch.workgroups.reserve(wgs);
    for (unsigned w = 0; w < wgs; ++w) {
        // The workgroup streams its own edge-list region (stable
        // mapping, correctly placed after the first iteration). The
        // irregularity is in the *pulls*: each vertex group pulls a
        // burst of in-neighbour ranks from a random page of the rank
        // array. A burst is hot for a couple of collection periods —
        // long enough for the DPC to classify the page as dedicated
        // to the puller, but cold again before the migration lands.
        // Every iteration re-randomizes the bursts, so Griffin keeps
        // migrating rank pages after the fact and never profits: the
        // paper's explanation for PageRank's slowdown.
        sim::Rng rng = rngFor(k, w);
        TraceBuilder tb = builder();

        const std::uint64_t col_region = _colLines / wgs;
        const std::uint64_t col_begin = w * col_region;
        const std::uint64_t col_end =
            (w + 1 == wgs) ? _colLines : col_begin + col_region;
        const std::uint64_t begin = w * chunk;
        const std::uint64_t end =
            (w + 1 == wgs) ? _rankLines : begin + chunk;

        std::uint64_t rank_cursor = begin;
        for (std::uint64_t cl = col_begin; cl < col_end; ++cl) {
            tb.add(_colsBase + cl * lineBytes, false);
            if ((cl - col_begin) % 12 == 0) {
                // In-neighbour pull burst: 24 lines of one random
                // rank page.
                const std::uint64_t base =
                    rng.nextBelow(std::max<std::uint64_t>(
                        _rankLines - 24, 1));
                for (std::uint64_t b = 0; b < 24; ++b)
                    tb.add(old_ranks + (base + b) * lineBytes, false);
            }
            if ((cl - col_begin) % 4 == 0 && rank_cursor < end)
                tb.add(old_ranks + rank_cursor * lineBytes, false);
            if ((cl - col_begin) % 16 == 0 && rank_cursor < end) {
                tb.add(new_ranks + rank_cursor * lineBytes, true);
                ++rank_cursor;
            }
        }
        launch.workgroups.push_back(tb.finishWorkgroup(w));
    }
    return launch;
}

} // namespace griffin::wl
