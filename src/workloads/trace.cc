#include "src/workloads/trace.hh"

#include <cassert>
#include <utility>

namespace griffin::wl {

TraceBuilder::TraceBuilder(std::size_t ops_per_wavefront,
                           std::uint32_t compute_delay,
                           std::size_t max_wavefronts)
    : _opsPerWavefront(ops_per_wavefront), _delay(compute_delay),
      _maxWavefronts(max_wavefronts)
{
    assert(ops_per_wavefront > 0 && max_wavefronts > 0);
}

void
TraceBuilder::add(Addr vaddr, bool is_write)
{
    _ops.push_back(MemOp{vaddr, _delay, is_write});
}

void
TraceBuilder::addRange(Addr base, std::uint64_t bytes, bool is_write,
                       unsigned line_bytes)
{
    assert(line_bytes > 0);
    const Addr first = base / line_bytes;
    const Addr last = (base + bytes + line_bytes - 1) / line_bytes;
    for (Addr line = first; line < last; ++line)
        add(line * line_bytes, is_write);
}

Workgroup
TraceBuilder::finishWorkgroup(std::uint32_t id)
{
    Workgroup wg;
    wg.id = id;
    if (_ops.empty())
        return wg;

    const std::size_t num_wfs = std::min(
        _maxWavefronts,
        (_ops.size() + _opsPerWavefront - 1) / _opsPerWavefront);
    wg.wavefronts.resize(num_wfs);
    for (std::size_t wf = 0; wf < num_wfs; ++wf)
        wg.wavefronts[wf].ops.reserve(_ops.size() / num_wfs + 1);

    // Deal the stream round-robin: wavefront j executes ops
    // j, j+K, j+2K, ... so the workgroup's wavefronts advance through
    // the same pages together.
    for (std::size_t i = 0; i < _ops.size(); ++i)
        wg.wavefronts[i % num_wfs].ops.push_back(_ops[i]);

    _ops.clear();
    return wg;
}

} // namespace griffin::wl
