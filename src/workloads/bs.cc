#include "src/workloads/suite.hh"

namespace griffin::wl {

BsWorkload::BsWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    _lines = footprintBytes() / lineBytes;
    _base = 0;
}

KernelLaunch
BsWorkload::makeKernel(unsigned k)
{
    const unsigned wgs = workgroupsPerKernel();
    const std::uint64_t chunk = _lines / wgs;

    // Compare-exchange stride (in lines), halving across stages: early
    // stages pair lines that live on distant pages, later stages stay
    // within a page — the "Random" flavour of Table III.
    std::uint64_t stride = _lines >> (2 + k);
    if (stride == 0)
        stride = 1;

    KernelLaunch launch;
    launch.workgroups.reserve(wgs);
    for (unsigned w = 0; w < wgs; ++w) {
        TraceBuilder tb = builder();
        const std::uint64_t begin = w * chunk;
        const std::uint64_t end = (w + 1 == wgs) ? _lines : begin + chunk;
        // Process every other line: each compare-exchange covers a
        // pair, so half the indices issue the pair's transactions.
        for (std::uint64_t line = begin; line < end; line += 2) {
            const std::uint64_t partner = (line ^ stride) % _lines;
            tb.add(_base + line * lineBytes, false);
            if (partner != line)
                tb.add(_base + partner * lineBytes, false);
            tb.add(_base + line * lineBytes, true);
        }
        launch.workgroups.push_back(tb.finishWorkgroup(w));
    }
    return launch;
}

} // namespace griffin::wl
