#include "src/workloads/suite.hh"

namespace griffin::wl {

FlwWorkload::FlwWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    _lines = footprintBytes() / lineBytes;
    // One matrix row spans one page worth of lines: pivot-row sharing
    // then maps onto a small, rotating set of hot pages.
    _rowLines = 64;
    _numRows = _lines / _rowLines;
    _base = 0;
}

KernelLaunch
FlwWorkload::makeKernel(unsigned k)
{
    const unsigned wgs = workgroupsPerKernel();
    // Each kernel stands for a group of pivots around row p_k; every
    // workgroup reads the pivot row (Distributed: one hot row shared
    // by everyone) and relaxes a sampled half of its own rows.
    const std::uint64_t pivot_row =
        (std::uint64_t(k) * _numRows) / numKernels();
    const Addr pivot_base = _base + pivot_row * _rowLines * lineBytes;

    KernelLaunch launch;
    launch.workgroups.reserve(wgs);
    for (unsigned w = 0; w < wgs; ++w) {
        TraceBuilder tb = builder();

        // Own rows: row indices congruent to w mod wgs; alternate
        // kernels relax alternate halves to bound the trace size.
        // Every relaxation re-reads a slice of the shared pivot row
        // (Distributed: the pivot page stays hot across the whole
        // kernel from every GPU).
        for (std::uint64_t row = w; row < _numRows; row += wgs) {
            if ((row / wgs + k) % 2 != 0)
                continue;
            const Addr row_base = _base + row * _rowLines * lineBytes;
            for (std::uint64_t l = 0; l < _rowLines; ++l) {
                if (l % 8 == 0)
                    tb.add(pivot_base + (l % _rowLines) * lineBytes,
                           false);
                tb.add(row_base + l * lineBytes, false);
                tb.add(row_base + l * lineBytes, true);
            }
        }
        launch.workgroups.push_back(tb.finishWorkgroup(w));
    }
    return launch;
}

} // namespace griffin::wl
