/**
 * @file
 * The ten benchmark generators of paper Table III.
 *
 * Each class documents how its trace reproduces the paper workload's
 * access pattern; footprints are the paper's, divided by scaleDiv.
 */

#ifndef GRIFFIN_WORKLOADS_SUITE_HH
#define GRIFFIN_WORKLOADS_SUITE_HH

#include "src/workloads/workload.hh"

namespace griffin::wl {

/**
 * Breadth First Search (SHOC, Random, 32 MB): level-synchronized CSR
 * traversal. Each level scans the dense label array sequentially and
 * the frontier nodes pull random column-array lines.
 */
class BfsWorkload : public Workload
{
  public:
    explicit BfsWorkload(const WorkloadConfig &cfg);
    std::string name() const override { return "BFS"; }
    std::string fullName() const override { return "Breadth First Search"; }
    std::string suite() const override { return "SHOC"; }
    std::string accessPattern() const override { return "Random"; }
    std::uint64_t paperFootprintBytes() const override { return 32ull << 20; }
    unsigned numKernels() const override { return 8; }
    unsigned workgroupsPerKernel() const override { return 60; }
    KernelLaunch makeKernel(unsigned k) override;

  private:
    std::uint64_t _labelLines;
    std::uint64_t _colLines;
    Addr _labelsBase;
    Addr _colsBase;
};

/**
 * Bitonic Sort (AMDAPPSDK, Random, 36 MB): stride-halving compare-
 * exchange stages; partners land in distant pages at early stages.
 */
class BsWorkload : public Workload
{
  public:
    explicit BsWorkload(const WorkloadConfig &cfg);
    std::string name() const override { return "BS"; }
    std::string fullName() const override { return "Bitonic Sort"; }
    std::string suite() const override { return "AMDAPPSDK"; }
    std::string accessPattern() const override { return "Random"; }
    std::uint64_t paperFootprintBytes() const override { return 36ull << 20; }
    unsigned numKernels() const override { return 8; }
    unsigned workgroupsPerKernel() const override { return 61; }
    KernelLaunch makeKernel(unsigned k) override;

  private:
    std::uint64_t _lines;
    Addr _base;
};

/**
 * Finite Impulse Response (Hetero-Mark, Adjacent, 64 MB): batched
 * streaming filter; each workgroup reads a contiguous input slice
 * plus a tap halo and writes the matching output slice.
 */
class FirWorkload : public Workload
{
  public:
    explicit FirWorkload(const WorkloadConfig &cfg);
    std::string name() const override { return "FIR"; }
    std::string fullName() const override { return "Finite Impulse Resp."; }
    std::string suite() const override { return "Hetero-Mark"; }
    std::string accessPattern() const override { return "Adjacent"; }
    std::uint64_t paperFootprintBytes() const override { return 64ull << 20; }
    unsigned numKernels() const override { return 4; }
    unsigned workgroupsPerKernel() const override { return 64; }
    KernelLaunch makeKernel(unsigned k) override;

  private:
    std::uint64_t _inLines;
    std::uint64_t _outLines;
    Addr _inBase;
    Addr _outBase;
};

/**
 * Floyd-Warshall (AMDAPPSDK, Distributed, 44 MB): every pivot kernel
 * broadcasts one pivot row (hot shared pages that rotate per kernel)
 * while each workgroup updates its own row set.
 */
class FlwWorkload : public Workload
{
  public:
    explicit FlwWorkload(const WorkloadConfig &cfg);
    std::string name() const override { return "FLW"; }
    std::string fullName() const override { return "Floyd Warshall"; }
    std::string suite() const override { return "AMDAPPSDK"; }
    std::string accessPattern() const override { return "Distributed"; }
    std::uint64_t paperFootprintBytes() const override { return 44ull << 20; }
    unsigned numKernels() const override { return 6; }
    unsigned workgroupsPerKernel() const override { return 61; }
    KernelLaunch makeKernel(unsigned k) override;

  private:
    std::uint64_t _lines;
    std::uint64_t _rowLines;  ///< lines per matrix row
    std::uint64_t _numRows;
    Addr _base;
};

/**
 * Fast Walsh Transform (AMDAPPSDK, Adjacent, 40 MB): butterfly stages
 * with doubling stride; each workgroup combines its own chunk with a
 * stage-dependent partner chunk.
 */
class FwWorkload : public Workload
{
  public:
    explicit FwWorkload(const WorkloadConfig &cfg);
    std::string name() const override { return "FW"; }
    std::string fullName() const override { return "Fast Walsh Trans."; }
    std::string suite() const override { return "AMDAPPSDK"; }
    std::string accessPattern() const override { return "Adjacent"; }
    std::uint64_t paperFootprintBytes() const override { return 40ull << 20; }
    unsigned numKernels() const override { return 6; }
    unsigned workgroupsPerKernel() const override { return 62; }
    KernelLaunch makeKernel(unsigned k) override;

  private:
    std::uint64_t _lines;
    Addr _base;
};

/**
 * KMeans Clustering (Hetero-Mark, Partition, 51 MB): each workgroup
 * owns a point partition (dedicated pages) and every workgroup reads
 * the small centroid table (heavily shared pages) each iteration.
 */
class KmWorkload : public Workload
{
  public:
    explicit KmWorkload(const WorkloadConfig &cfg);
    std::string name() const override { return "KM"; }
    std::string fullName() const override { return "KMeans Clustering"; }
    std::string suite() const override { return "Hetero-Mark"; }
    std::string accessPattern() const override { return "Partition"; }
    std::uint64_t paperFootprintBytes() const override { return 51ull << 20; }
    unsigned numKernels() const override { return 4; }
    unsigned workgroupsPerKernel() const override { return 64; }
    KernelLaunch makeKernel(unsigned k) override;

  private:
    std::uint64_t _pointLines;
    std::uint64_t _centroidLines;
    std::uint64_t _assignLines;
    Addr _pointsBase;
    Addr _centroidsBase;
    Addr _assignBase;
};

/**
 * Matrix Transpose (AMDAPPSDK, Scatter-Gather, 44 MB): reads row
 * bands sequentially and writes column-scattered lines; pages are
 * touched few times and never reused — the workload where DFTM and
 * fault batching matter most (paper: 2.9x peak speedup).
 */
class MtWorkload : public Workload
{
  public:
    explicit MtWorkload(const WorkloadConfig &cfg);
    std::string name() const override { return "MT"; }
    std::string fullName() const override { return "Matrix Transpose"; }
    std::string suite() const override { return "AMDAPPSDK"; }
    std::string accessPattern() const override { return "Scatter-Gather"; }
    std::uint64_t paperFootprintBytes() const override { return 44ull << 20; }
    unsigned numKernels() const override { return 1; }
    unsigned workgroupsPerKernel() const override { return 64; }
    KernelLaunch makeKernel(unsigned k) override;

  private:
    std::uint64_t _inLines;
    std::uint64_t _outLines;
    Addr _inBase;
    Addr _outBase;
};

/**
 * PageRank (Hetero-Mark, Random, 38 MB): per-iteration random pulls
 * of neighbour ranks across the whole rank array; the access pattern
 * re-randomizes every iteration, which defeats history-based
 * placement (the paper's one slowdown case).
 */
class PrWorkload : public Workload
{
  public:
    explicit PrWorkload(const WorkloadConfig &cfg);
    std::string name() const override { return "PR"; }
    std::string fullName() const override { return "PageRank Algorithm"; }
    std::string suite() const override { return "Hetero-Mark"; }
    std::string accessPattern() const override { return "Random"; }
    std::uint64_t paperFootprintBytes() const override { return 38ull << 20; }
    unsigned numKernels() const override { return 6; }
    unsigned workgroupsPerKernel() const override { return 60; }
    KernelLaunch makeKernel(unsigned k) override;

  private:
    std::uint64_t _rankLines;  ///< per rank buffer
    std::uint64_t _colLines;
    Addr _rankABase;
    Addr _rankBBase;
    Addr _colsBase;
};

/**
 * Simple Convolution (AMDAPPSDK, Adjacent, 41 MB): tiled convolution
 * passes; the workgroup count is coprime with the GPU count, so the
 * tile-to-GPU mapping rotates every kernel — the owner-shifting
 * behaviour of paper Figures 1 and 10.
 */
class ScWorkload : public Workload
{
  public:
    explicit ScWorkload(const WorkloadConfig &cfg);
    std::string name() const override { return "SC"; }
    std::string fullName() const override { return "Simple Convolution"; }
    std::string suite() const override { return "AMDAPPSDK"; }
    std::string accessPattern() const override { return "Adjacent"; }
    std::uint64_t paperFootprintBytes() const override { return 41ull << 20; }
    unsigned numKernels() const override { return 6; }
    unsigned workgroupsPerKernel() const override { return 61; }
    KernelLaunch makeKernel(unsigned k) override;

    /** The filter page (the hot shared page probed in the benches). */
    PageId filterPage(unsigned page_shift) const;

  private:
    std::uint64_t _imgLines;   ///< per image buffer
    Addr _inBase;
    Addr _outBase;
    Addr _filterBase;
};

/**
 * Stencil 2D (SHOC, Adjacent, 33 MB): iterative 5-point stencil over
 * row bands with halo rows exchanged between neighbouring workgroups
 * (ping-pong buffers).
 */
class StWorkload : public Workload
{
  public:
    explicit StWorkload(const WorkloadConfig &cfg);
    std::string name() const override { return "ST"; }
    std::string fullName() const override { return "Stencil 2D"; }
    std::string suite() const override { return "SHOC"; }
    std::string accessPattern() const override { return "Adjacent"; }
    std::uint64_t paperFootprintBytes() const override { return 33ull << 20; }
    unsigned numKernels() const override { return 5; }
    unsigned workgroupsPerKernel() const override { return 60; }
    KernelLaunch makeKernel(unsigned k) override;

  private:
    std::uint64_t _gridLines;  ///< per buffer
    Addr _aBase;
    Addr _bBase;
};

} // namespace griffin::wl

#endif // GRIFFIN_WORKLOADS_SUITE_HH
