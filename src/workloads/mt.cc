#include "src/workloads/suite.hh"

namespace griffin::wl {

MtWorkload::MtWorkload(const WorkloadConfig &cfg) : Workload(cfg)
{
    const std::uint64_t lines = footprintBytes() / lineBytes;
    _inLines = lines / 2;
    _outLines = lines - _inLines;
    _inBase = 0;
    _outBase = _inLines * lineBytes;
}

KernelLaunch
MtWorkload::makeKernel(unsigned k)
{
    const unsigned wgs = workgroupsPerKernel();
    const std::uint64_t band = _inLines / wgs;
    // Kernel 1 transposes back (out -> in), exercising the same
    // scatter-gather in the opposite direction.
    const bool forward = (k % 2 == 0);
    const Addr src = forward ? _inBase : _outBase;
    const Addr dst = forward ? _outBase : _inBase;
    const std::uint64_t dst_lines = forward ? _outLines : _inLines;

    KernelLaunch launch;
    launch.workgroups.reserve(wgs);
    for (unsigned w = 0; w < wgs; ++w) {
        TraceBuilder tb = builder();
        const std::uint64_t begin = w * band;
        const std::uint64_t end = (w + 1 == wgs) ? _inLines : begin + band;
        const std::uint64_t len = end - begin;
        // Workgroups start their sweep at staggered offsets (they
        // transpose independent tiles), so at any instant different
        // workgroups scatter into different destination pages.
        const std::uint64_t stagger = (std::uint64_t(w) * 13) % len;
        for (std::uint64_t j = 0; j < len; ++j) {
            const std::uint64_t line = begin + (j + stagger) % len;
            // Gather: read of the row band (each input line touched
            // exactly once in the whole kernel).
            tb.add(src + line * lineBytes, false);
            // Scatter: the transposed line lands at a column-major
            // position, interleaving every workgroup's writes across
            // all destination pages.
            const std::uint64_t out_line =
                ((line - begin) * wgs + w) % dst_lines;
            tb.add(dst + out_line * lineBytes, true);
        }
        launch.workgroups.push_back(tb.finishWorkgroup(w));
    }
    return launch;
}

} // namespace griffin::wl
