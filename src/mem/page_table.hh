/**
 * @file
 * The OS-level page table shared by the CPU and all GPUs.
 *
 * This is the single source of truth for where every unified-memory
 * page currently lives. The IOMMU consults it on every walk; the
 * driver mutates it when pages migrate. It also carries the one extra
 * bit per page that Griffin's Delayed First-Touch Migration needs
 * (paper SS V, "Hardware Cost").
 */

#ifndef GRIFFIN_MEM_PAGE_TABLE_HH
#define GRIFFIN_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::mem {

/** Per-page metadata tracked by the OS / driver. */
struct PageInfo
{
    /** Device currently holding the page (CPU at allocation). */
    DeviceId location = cpuDeviceId;

    /**
     * DFTM's "accessed once" bit: set when a GPU's first touch was
     * denied migration; a second GPU touch then forces the migration.
     */
    bool touched = false;

    /** Set while a migration of this page is in flight. */
    bool migrating = false;

    /**
     * Set from the moment the DPC selects the page until the
     * migration completes. Unlike migrating, a pending page is still
     * fully serviceable — the flag only stops the DPC from selecting
     * it twice.
     */
    bool migrationPending = false;

    /**
     * The baseline first-touch policy pins a page on the GPU after the
     * initial CPU->GPU migration; pinned pages never move again.
     */
    bool pinned = false;

    /**
     * Set when a migration of this page was aborted by a recovery
     * timeout (chaos layer): the page stays CPU-resident and is served
     * via DCA remote access for the rest of the run, so a re-fault
     * loop cannot form.
     */
    bool dcaFallback = false;
};

/**
 * Global page table.
 *
 * Pages are keyed by virtual page number. Pages spring into existence
 * CPU-resident on first reference, mirroring unified memory where the
 * CPU backs all allocations until a device touches them.
 */
class PageTable
{
  public:
    /**
     * @param page_shift  log2 of the page size (12 -> 4 KB).
     * @param num_devices device count including the CPU (device 0).
     */
    explicit PageTable(unsigned page_shift = 12, unsigned num_devices = 5);

    unsigned pageShift() const { return _pageShift; }
    std::uint64_t pageBytes() const { return std::uint64_t(1) << _pageShift; }

    /** Virtual page number containing @p addr. */
    PageId pageOf(Addr addr) const { return addr >> _pageShift; }

    /** First byte address of page @p page. */
    Addr baseOf(PageId page) const { return Addr(page) << _pageShift; }

    /** Metadata for @p page, creating a CPU-resident entry on demand. */
    PageInfo &info(PageId page);

    /** Read-only metadata; a page never referenced reads CPU-resident. */
    const PageInfo &info(PageId page) const;

    /** Where @p page currently lives. */
    DeviceId locationOf(PageId page) const { return info(page).location; }

    /**
     * Move @p page to @p dst, updating per-device residency counts.
     * Clears the migrating flag.
     */
    void setLocation(PageId page, DeviceId dst);

    /** Number of pages currently resident on @p dev. */
    std::uint64_t residentPages(DeviceId dev) const;

    /** Number of pages the table has ever seen. */
    std::uint64_t totalPages() const { return _pages.size(); }

    /**
     * Occupancy of @p gpu as defined by the paper's DFTM: the ratio of
     * pages resident on that GPU to pages resident on all GPUs
     * combined. Returns 0 when no GPU holds any page.
     */
    double gpuOccupancy(DeviceId gpu) const;

    /**
     * True if @p gpu holds at least as many pages as every other GPU
     * (the DFTM "highest occupancy" test; ties count as highest).
     */
    bool hasHighestOccupancy(DeviceId gpu) const;

    unsigned numDevices() const { return unsigned(_resident.size()); }

    /** Total migrations recorded via setLocation(). */
    std::uint64_t migrations() const { return _migrations; }

    /** Every page ever referenced (invariant auditor). */
    const std::unordered_map<PageId, PageInfo> &pages() const
    {
        return _pages;
    }

  private:
    unsigned _pageShift;
    std::unordered_map<PageId, PageInfo> _pages;
    std::vector<std::uint64_t> _resident;
    std::uint64_t _migrations = 0;

    static const PageInfo _defaultInfo;
};

} // namespace griffin::mem

#endif // GRIFFIN_MEM_PAGE_TABLE_HH
