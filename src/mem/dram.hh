/**
 * @file
 * A channel-interleaved DRAM timing model (HBM on the GPUs, DDR on the
 * CPU). Each channel serializes its traffic at a configured bandwidth;
 * a fixed access latency is added on top. The model answers "when will
 * this access complete" and the caller schedules the continuation.
 */

#ifndef GRIFFIN_MEM_DRAM_HH
#define GRIFFIN_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::mem {

/** DRAM geometry and timing. */
struct DramConfig
{
    unsigned numChannels = 8;
    /** Fixed access latency (row activation, column read, ...). */
    Tick accessLatency = 150;
    /** Per-channel data bandwidth. HBM2 ~ 1 TB/s over 8 channels. */
    double bytesPerCyclePerChannel = 128.0;
    /** Channel interleave granularity. */
    unsigned interleaveBytes = 256;
};

/**
 * One device's DRAM.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &config);

    const DramConfig &config() const { return _config; }

    /**
     * Issue an access of @p bytes at @p addr starting no earlier than
     * @p now. @return the completion time.
     */
    Tick access(Tick now, Addr addr, std::uint32_t bytes, bool is_write);

    /** Channel servicing @p addr (exposed for tests). */
    unsigned channelOf(Addr addr) const;

    /** @name Statistics @{ */
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesTransferred = 0;
    /** Sum of cycles each channel spent busy (utilization probe). */
    std::uint64_t busyCycles = 0;
    /** @} */

  private:
    DramConfig _config;
    std::vector<Tick> _channelFree;
};

} // namespace griffin::mem

#endif // GRIFFIN_MEM_DRAM_HH
