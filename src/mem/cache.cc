#include "src/mem/cache.hh"

#include <algorithm>
#include <bit>
#include <cassert>

namespace griffin::mem {

Cache::Cache(const CacheConfig &config) : _config(config)
{
    assert(config.lineBytes > 0 && std::has_single_bit(config.lineBytes));
    assert(config.assoc > 0);
    assert(config.sizeBytes % (std::uint64_t(config.lineBytes) * config.assoc)
           == 0 && "size must be a whole number of sets");

    _lineShift = unsigned(std::countr_zero(config.lineBytes));
    _numSets = unsigned(config.sizeBytes /
                        (std::uint64_t(config.lineBytes) * config.assoc));
    assert(_numSets > 0);
    _lines.resize(std::size_t(_numSets) * config.assoc);
}

Addr
Cache::lineAddr(Addr addr) const
{
    return addr >> _lineShift;
}

unsigned
Cache::setIndex(Addr addr) const
{
    return unsigned(lineAddr(addr) % _numSets);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const Addr tag = lineAddr(addr);
    Line *set = &_lines[std::size_t(setIndex(addr)) * _config.assoc];
    for (unsigned way = 0; way < _config.assoc; ++way) {
        if (set[way].valid && set[way].tag == tag)
            return &set[way];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::AccessResult
Cache::access(Addr addr, bool is_write)
{
    AccessResult result;
    ++_useClock;

    if (Line *line = findLine(addr)) {
        ++hits;
        line->lastUse = _useClock;
        line->dirty = line->dirty || is_write;
        result.hit = true;
        return result;
    }

    ++misses;

    // Pick a victim: an invalid way if one exists, else true LRU.
    Line *set = &_lines[std::size_t(setIndex(addr)) * _config.assoc];
    Line *victim = &set[0];
    for (unsigned way = 0; way < _config.assoc; ++way) {
        if (!set[way].valid) {
            victim = &set[way];
            break;
        }
        if (set[way].lastUse < victim->lastUse)
            victim = &set[way];
    }

    if (victim->valid) {
        ++evictions;
        if (victim->dirty) {
            ++writebacks;
            result.writeback = true;
            result.writebackAddr = victim->tag << _lineShift;
        }
    }

    victim->tag = lineAddr(addr);
    victim->valid = true;
    victim->dirty = is_write;
    victim->lastUse = _useClock;
    return result;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

Cache::FlushResult
Cache::flushPages(const std::vector<PageId> &pages, unsigned page_shift)
{
    assert(std::is_sorted(pages.begin(), pages.end()));
    FlushResult result;
    const unsigned page_line_shift = page_shift - _lineShift;
    for (Line &line : _lines) {
        if (!line.valid)
            continue;
        const PageId page = line.tag >> page_line_shift;
        if (!std::binary_search(pages.begin(), pages.end(), page))
            continue;
        line.valid = false;
        ++result.linesInvalidated;
        if (line.dirty) {
            ++result.dirtyWritebacks;
            ++writebacks;
            line.dirty = false;
        }
    }
    return result;
}

Cache::FlushResult
Cache::flushAll()
{
    FlushResult result;
    for (Line &line : _lines) {
        if (!line.valid)
            continue;
        line.valid = false;
        ++result.linesInvalidated;
        if (line.dirty) {
            ++result.dirtyWritebacks;
            ++writebacks;
            line.dirty = false;
        }
    }
    return result;
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t count = 0;
    for (const Line &line : _lines)
        count += line.valid ? 1 : 0;
    return count;
}

} // namespace griffin::mem
