#include "src/mem/dram.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace griffin::mem {

Dram::Dram(const DramConfig &config)
    : _config(config), _channelFree(config.numChannels, 0)
{
    assert(config.numChannels > 0);
    assert(config.bytesPerCyclePerChannel > 0.0);
    assert(config.interleaveBytes > 0);
}

unsigned
Dram::channelOf(Addr addr) const
{
    return unsigned((addr / _config.interleaveBytes) % _config.numChannels);
}

Tick
Dram::access(Tick now, Addr addr, std::uint32_t bytes, bool is_write)
{
    assert(bytes > 0);
    const unsigned chan = channelOf(addr);

    const Tick service =
        Tick(std::ceil(double(bytes) / _config.bytesPerCyclePerChannel));
    const Tick start = std::max(now, _channelFree[chan]);
    _channelFree[chan] = start + service;

    if (is_write)
        ++writes;
    else
        ++reads;
    bytesTransferred += bytes;
    busyCycles += service;

    return start + service + _config.accessLatency;
}

} // namespace griffin::mem
