#include "src/mem/page_table.hh"

#include <cassert>

#include "src/obs/pagestats.hh"
#include "src/obs/timeseries.hh"

namespace griffin::mem {

const PageInfo PageTable::_defaultInfo{};

PageTable::PageTable(unsigned page_shift, unsigned num_devices)
    : _pageShift(page_shift), _resident(num_devices, 0)
{
    assert(page_shift >= 6 && page_shift <= 21);
    assert(num_devices >= 2);
}

PageInfo &
PageTable::info(PageId page)
{
    auto [it, inserted] = _pages.try_emplace(page);
    if (inserted)
        ++_resident[cpuDeviceId];
    return it->second;
}

const PageInfo &
PageTable::info(PageId page) const
{
    auto it = _pages.find(page);
    return it == _pages.end() ? _defaultInfo : it->second;
}

void
PageTable::setLocation(PageId page, DeviceId dst)
{
    assert(dst < _resident.size());
    PageInfo &pi = info(page);
    if (pi.location != dst) {
        assert(_resident[pi.location] > 0);
        --_resident[pi.location];
        ++_resident[dst];
        ++_migrations;
        // The single commit point of every migration: the telemetry
        // recorded here is what reconciles the per-interval migration
        // counts with the pageTable.migrations aggregate.
        obs::PageStats::recordActiveNow(obs::PageEvent::MigrationCommit,
                                        page, pi.location, dst);
        obs::TimeSeries::countActive(
            obs::TimeSeries::Series::Migrations);
    }
    pi.location = dst;
    pi.migrating = false;
    pi.migrationPending = false;
}

std::uint64_t
PageTable::residentPages(DeviceId dev) const
{
    assert(dev < _resident.size());
    return _resident[dev];
}

double
PageTable::gpuOccupancy(DeviceId gpu) const
{
    assert(gpu != cpuDeviceId && gpu < _resident.size());
    std::uint64_t on_gpus = 0;
    for (std::size_t dev = 1; dev < _resident.size(); ++dev)
        on_gpus += _resident[dev];
    if (on_gpus == 0)
        return 0.0;
    return double(_resident[gpu]) / double(on_gpus);
}

bool
PageTable::hasHighestOccupancy(DeviceId gpu) const
{
    assert(gpu != cpuDeviceId && gpu < _resident.size());
    for (std::size_t dev = 1; dev < _resident.size(); ++dev) {
        if (dev != gpu && _resident[dev] > _resident[gpu])
            return false;
    }
    return true;
}

} // namespace griffin::mem
