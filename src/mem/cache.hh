/**
 * @file
 * A set-associative, write-back, write-allocate cache tag model.
 *
 * The model tracks tags, valid and dirty bits only (no data): the
 * simulator is trace-driven, so timing and traffic are what matter.
 * Selective per-page flushing is a first-class operation because both
 * the baseline migration path and Griffin's ACUD need to purge exactly
 * the lines of the pages being migrated (paper SS III-D).
 */

#ifndef GRIFFIN_MEM_CACHE_HH
#define GRIFFIN_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::mem {

/** Geometry and latency of one cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    /** Hit latency in cycles; the owner adds miss latencies itself. */
    Tick latency = 1;
};

/**
 * Tag-only cache with true-LRU replacement within each set.
 */
class Cache
{
  public:
    /** Result of a single access. */
    struct AccessResult
    {
        bool hit = false;
        /** A dirty line was evicted; its address is writebackAddr. */
        bool writeback = false;
        Addr writebackAddr = 0;
    };

    /** Result of a flush operation. */
    struct FlushResult
    {
        std::uint64_t linesInvalidated = 0;
        std::uint64_t dirtyWritebacks = 0;
    };

    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return _config; }
    unsigned numSets() const { return _numSets; }
    Tick latency() const { return _config.latency; }

    /**
     * Access the line containing @p addr; a miss allocates the line
     * (write-allocate) and may evict a victim.
     */
    AccessResult access(Addr addr, bool is_write);

    /** Check residency without touching LRU state. */
    bool probe(Addr addr) const;

    /** Invalidate all lines belonging to the given (sorted) pages. */
    FlushResult flushPages(const std::vector<PageId> &pages,
                           unsigned page_shift);

    /** Invalidate everything (baseline full-flush path). */
    FlushResult flushAll();

    /** Currently valid line count (for tests). */
    std::uint64_t validLines() const;

    /** @name Statistics @{ */
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    /** @} */

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    CacheConfig _config;
    unsigned _numSets;
    unsigned _lineShift;
    std::vector<Line> _lines; // numSets * assoc, set-major
    std::uint64_t _useClock = 0;

    Addr lineAddr(Addr addr) const;
    unsigned setIndex(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
};

} // namespace griffin::mem

#endif // GRIFFIN_MEM_CACHE_HH
