/**
 * @file
 * Report helpers shared by the benches: fixed-width tables, CSV
 * emission, geometric means, simple ASCII bar rows — and the JSON run
 * report, the machine-readable record of one workload run (config,
 * counters, latency histograms with percentiles, optional samples).
 */

#ifndef GRIFFIN_SYS_REPORT_HH
#define GRIFFIN_SYS_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/hostprof.hh"
#include "src/obs/json.hh"

namespace griffin::sim {
class Histogram;
} // namespace griffin::sim

namespace griffin::obs {
class Sampler;
} // namespace griffin::obs

namespace griffin::sys {

struct RunResult;
struct SystemConfig;

/**
 * Geometric mean of @p values (empty -> 0). Values must all be > 0: a
 * non-positive value makes the mean undefined, so it asserts (and in
 * assert-free builds warns and returns 0 instead of a garbage mean).
 */
double geomean(const std::vector<double> &values);

/**
 * A fixed-width text table: set the header, add rows, print.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /**
     * Append one row, padded to the header width. A row *wider* than
     * the header is a caller bug (the extra cells would silently
     * vanish from the output): it asserts, and in assert-free builds
     * warns before truncating.
     */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Render with aligned columns. */
    std::string str() const;

    /** Render as CSV (comma-separated, header first). */
    std::string csv() const;

    /** Print str() to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/**
 * One horizontal ASCII bar scaled to @p width characters, e.g. for
 * occupancy or speedup figures: "MT  |######----| 1.62".
 */
std::string asciiBar(double value, double max_value, int width = 40);

/** @name JSON run report @{ */

/**
 * The report document schema version, bumped whenever the shape of a
 * run report changes incompatibly. Version history:
 *  - (absent) = 1: the original {runs: [...]} document.
 *  - 2: adds the document-level schema_version field and the optional
 *    per-run page_stats / timeseries sections.
 *  - 3: adds the optional per-run host_profile section (deterministic
 *    "counts" plus the nondeterministic, warn-only "host" subtree).
 * Consumers (sys::compare, griffin-compare, griffin-pages) warn — not
 * fail — on a version they do not know.
 */
inline constexpr std::uint64_t reportSchemaVersion = 3;

/**
 * Whether @p version is a schema this build knows how to read. All
 * versions so far are additive, so v2 and v3 reports diff cleanly
 * against each other; consumers warn only outside this set.
 */
inline constexpr bool
knownReportSchemaVersion(std::uint64_t version)
{
    return version >= 1 && version <= reportSchemaVersion;
}

/**
 * One histogram as JSON: {count, mean, min, max, p50, p95, p99,
 * bucketWidth, buckets}. Buckets are emitted sparsely as
 * [[index, count], ...] so idle histograms stay tiny.
 */
obs::json::Value histogramJson(const sim::Histogram &hist);

/** The run-relevant SystemConfig fields as a JSON object. */
obs::json::Value configJson(const SystemConfig &config);

/**
 * The per-run "host_profile" section for @p hp. Deterministic members
 * first (events dispatched, per-bucket counts — byte-identical across
 * --jobs=N), then the "host" subtree holding every nanosecond-derived
 * measurement, which is nondeterministic by nature and treated as
 * warn-only by sys::compare.
 */
obs::json::Value hostProfileJson(const obs::HostProfile &hp);

/**
 * Rebuild a HostProfile from a "host_profile" section produced by
 * hostProfileJson (griffin-prof, sweep post-processing, tests).
 * @return nullopt if @p v does not have the expected shape.
 */
std::optional<obs::HostProfile>
hostProfileFromJson(const obs::json::Value &v);

/**
 * The full report of one run:
 * {label, config, result, counters, histograms[, samples]}.
 * @p sampler may be nullptr (no "samples" member then).
 */
obs::json::Value runReportJson(const std::string &label,
                               const SystemConfig &config,
                               const RunResult &result,
                               const obs::Sampler *sampler = nullptr);

/**
 * The top-level report document wrapping @p runs:
 * {schema_version, runs}. Every report writer should go through this
 * so the version stamp cannot be forgotten.
 */
obs::json::Value reportDocument(obs::json::Value runs);

/** @} */

} // namespace griffin::sys

#endif // GRIFFIN_SYS_REPORT_HH
