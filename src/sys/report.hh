/**
 * @file
 * Report helpers shared by the benches: fixed-width tables, CSV
 * emission, geometric means, and simple ASCII bar rows — everything
 * needed to print the paper's figures as text.
 */

#ifndef GRIFFIN_SYS_REPORT_HH
#define GRIFFIN_SYS_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace griffin::sys {

/** Geometric mean of @p values (must all be > 0; empty -> 0). */
double geomean(const std::vector<double> &values);

/**
 * A fixed-width text table: set the header, add rows, print.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row (cells beyond the header are dropped). */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Render with aligned columns. */
    std::string str() const;

    /** Render as CSV (comma-separated, header first). */
    std::string csv() const;

    /** Print str() to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/**
 * One horizontal ASCII bar scaled to @p width characters, e.g. for
 * occupancy or speedup figures: "MT  |######----| 1.62".
 */
std::string asciiBar(double value, double max_value, int width = 40);

} // namespace griffin::sys

#endif // GRIFFIN_SYS_REPORT_HH
