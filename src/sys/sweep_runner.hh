/**
 * @file
 * Thread-pooled batch executor for independent simulations.
 *
 * Every (workload x policy x config) point of a figure or ablation
 * sweep is a self-contained simulation — its own Engine, its own
 * MultiGpuSystem, its own RNG streams — so a sweep is embarrassingly
 * parallel. The SweepRunner accepts a list of (label, SystemConfig,
 * workload-factory) jobs, runs them across N worker threads, and
 * returns the RunResults in deterministic submission order: tables,
 * CSV and JSON reports built from the result vector are byte-identical
 * whether the sweep ran on 1 thread or 16.
 *
 * What makes this safe is that all cross-run observability state is
 * thread-local (obs::TraceSession / obs::Metrics / obs::FaultSpans
 * actives, the sim::Log clock): a job's sinks are attached on the
 * worker thread that runs it and never observed by its neighbours.
 * The per-run hooks (preRun/postRun) also execute on the worker
 * thread; anything they share with the submitting thread must be
 * synchronized by the caller (bench::ObsState merges fragments under
 * a mutex).
 */

#ifndef GRIFFIN_SYS_SWEEP_RUNNER_HH
#define GRIFFIN_SYS_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sys/multi_gpu_system.hh"
#include "src/sys/system_config.hh"
#include "src/workloads/workload.hh"

namespace griffin::sys {

/** One simulation point of a sweep. */
struct SweepJob
{
    /** Unique run label ("MT/griffin", "SC/griffin/alpha=0.25"). */
    std::string label;

    /** The system to build (copied; jobs never share a system). */
    SystemConfig config;

    /**
     * Builds the workload. Invoked on the worker thread, so the
     * factory must be self-contained (capture plain values, not
     * references to mutable shared state).
     */
    std::function<std::unique_ptr<wl::Workload>()> makeWorkload;

    /**
     * Optional: runs on the worker thread after the system is built
     * and before the simulation starts — the place to attach per-run
     * observability (trace sessions, samplers, access probes).
     */
    std::function<void(MultiGpuSystem &)> preRun;

    /**
     * Optional: runs on the worker thread after the simulation
     * completes, while the system is still alive — the place to
     * detach sinks and hand per-run fragments to a merge point
     * (synchronize anything shared!).
     */
    std::function<void(MultiGpuSystem &, const RunResult &)> postRun;
};

/**
 * The batch executor. submit() jobs, then run() once; the runner may
 * be reused for a subsequent batch afterwards.
 */
class SweepRunner
{
  public:
    /**
     * @param workers worker-thread count; 0 selects defaultWorkers().
     *        A single worker executes inline on the calling thread —
     *        that is the fully serial reference path.
     */
    explicit SweepRunner(unsigned workers = 0);

    /** Enqueue one job. @return its submission index. */
    std::size_t submit(SweepJob job);

    /**
     * Execute every submitted job and return their results indexed by
     * submission order. Jobs are claimed by workers in submission
     * order, but completion order is unspecified — only the returned
     * vector's order is guaranteed. If any job throws (e.g. the
     * simulation watchdog), every job still runs to completion, then
     * the earliest-submitted exception is rethrown.
     */
    std::vector<RunResult> run();

    /**
     * Optional completion callback, fired as `cb(done, total)` after
     * each job finishes (successfully or not). Serialized: never
     * invoked concurrently with itself, so the callback may touch
     * un-synchronized state (a progress line, a counter). `done` is
     * the number of completed jobs at that moment, which on the
     * parallel path is not the finishing job's submission index.
     */
    void setProgress(std::function<void(std::size_t, std::size_t)> cb)
    {
        _progress = std::move(cb);
    }

    /**
     * Merge the per-run host profiles of @p results (in order) into
     * one sweep-level profile: bucket names and counts deterministic
     * for a fixed job list, host times summed across runs (CPU time,
     * not elapsed wall, when runs overlapped under --jobs=N).
     * enabled == false when no run carried a profile.
     */
    static obs::HostProfile
    aggregateHostProfiles(const std::vector<RunResult> &results);

    /** Jobs submitted and not yet run. */
    std::size_t pending() const { return _jobs.size(); }

    /** The resolved worker-thread count. */
    unsigned workers() const { return _workers; }

    /** Hardware concurrency, with a floor of 1. */
    static unsigned defaultWorkers();

  private:
    unsigned _workers;
    std::vector<SweepJob> _jobs;
    std::function<void(std::size_t, std::size_t)> _progress;

    static RunResult execute(SweepJob &job);
};

} // namespace griffin::sys

#endif // GRIFFIN_SYS_SWEEP_RUNNER_HH
