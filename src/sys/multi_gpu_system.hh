/**
 * @file
 * The top-level system: 1 CPU + N GPUs on a shared fabric, a global
 * page table, the IOMMU, the driver, the dispatcher, and the active
 * placement policy. This is the primary entry point of the library:
 * build a SystemConfig, build a Workload, call run().
 */

#ifndef GRIFFIN_SYS_MULTI_GPU_SYSTEM_HH
#define GRIFFIN_SYS_MULTI_GPU_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/first_touch_policy.hh"
#include "src/core/griffin_policy.hh"
#include "src/driver/driver.hh"
#include "src/gpu/dispatcher.hh"
#include "src/gpu/gpu.hh"
#include "src/gpu/pmc.hh"
#include "src/gpu/rdma.hh"
#include "src/gpu/remote.hh"
#include "src/interconnect/switch.hh"
#include "src/mem/cache.hh"
#include "src/mem/dram.hh"
#include "src/mem/page_table.hh"
#include "src/obs/hostprof.hh"
#include "src/obs/metrics.hh"
#include "src/obs/pagestats.hh"
#include "src/obs/sampler.hh"
#include "src/obs/span.hh"
#include "src/obs/timeseries.hh"
#include "src/sim/engine.hh"
#include "src/sim/stats.hh"
#include "src/sim/watchdog.hh"
#include "src/sys/chaos.hh"
#include "src/sys/system_config.hh"
#include "src/workloads/workload.hh"
#include "src/xlat/iommu.hh"

namespace griffin::sys {

/** The outcome of one workload run. */
struct RunResult
{
    /** Total execution time in cycles. */
    Tick cycles = 0;
    /** Final page residency per device (index 0 = CPU). */
    std::vector<std::uint64_t> pagesPerDevice;
    /** CPU-side TLB shootdowns + flushes (fault batches). */
    std::uint64_t cpuShootdowns = 0;
    /** GPU-side shootdown events (inter-GPU migrations). */
    std::uint64_t gpuShootdowns = 0;
    std::uint64_t localAccesses = 0;
    std::uint64_t remoteAccesses = 0;
    std::uint64_t pagesMigratedFromCpu = 0;
    std::uint64_t pagesMigratedInterGpu = 0;
    /** Full stat dump (per-component counters, prefixed names). */
    sim::StatSet stats;
    /** Latency distributions (fault, migration, remote access). */
    obs::LatencyHistograms latency;
    /** Critical-path decomposition of every serviced fault. */
    obs::CriticalPath faultBreakdown;
    /** Per-page lifecycle digest (enabled == false when off). */
    obs::PageStatsSummary pageStats;
    /** Interval time-series digest (tick == 0 when off). */
    obs::TimeSeries::Summary timeseries;
    /** Host wall-time attribution (enabled == false when off). */
    obs::HostProfile hostProfile;
    /** Faults whose span never closed (should be 0 after a run). */
    std::uint64_t faultSpansOpen = 0;
    /** @name Chaos accounting (zero when injection is off) @{ */
    std::uint64_t chaosInjected = 0;
    std::uint64_t chaosRetries = 0;
    std::uint64_t chaosFallbacks = 0;
    std::uint64_t chaosRecoveryCycles = 0;
    /** Invariant-auditor violations (should always be 0). */
    std::uint64_t auditViolations = 0;
    /** @} */

    double
    localFraction() const
    {
        const double total = double(localAccesses + remoteAccesses);
        return total > 0 ? double(localAccesses) / total : 0.0;
    }

    std::uint64_t
    totalShootdowns() const
    {
        return cpuShootdowns + gpuShootdowns;
    }

    /**
     * Imbalance of the final GPU page distribution: the largest GPU
     * share, in [1/numGpus .. 1].
     */
    double maxGpuShare() const;
};

/**
 * The assembled multi-GPU system.
 */
class MultiGpuSystem : public gpu::RemoteRouter
{
  public:
    explicit MultiGpuSystem(const SystemConfig &config);
    ~MultiGpuSystem() override;

    MultiGpuSystem(const MultiGpuSystem &) = delete;
    MultiGpuSystem &operator=(const MultiGpuSystem &) = delete;

    /**
     * Run @p workload to completion (all kernels, back to back) and
     * collect the results. May be called once per system instance.
     */
    RunResult run(wl::Workload &workload);

    /** gpu::RemoteRouter */
    void remoteAccess(DeviceId requester, DeviceId owner, Addr addr,
                      bool is_write, sim::EventFn done) override;

    /** @name Component access (probes, benches, tests) @{ */
    sim::Engine &engine() { return _engine; }
    mem::PageTable &pageTable() { return _pageTable; }
    xlat::Iommu &iommu() { return *_iommu; }
    driver::Driver &driver() { return *_driver; }
    ic::Network &network() { return *_network; }
    gpu::Gpu &gpu(unsigned idx) { return *_gpus[idx]; }
    unsigned numGpus() const { return unsigned(_gpus.size()); }
    gpu::Dispatcher &dispatcher() { return *_dispatcher; }
    core::MigrationPolicy &policy() { return *_policy; }
    /** Non-null only when the config selected Griffin. */
    core::GriffinPolicy *griffinPolicy() { return _griffinPolicy; }
    const SystemConfig &config() const { return _config; }
    gpu::Pmc &pmc(unsigned dev) { return *_pmcs[dev]; }
    /** The run's fault-span sink (attached for the run's duration). */
    const obs::FaultSpans &faultSpans() const { return _spans; }
    /** Non-null only when the config enabled page-lifecycle stats. */
    obs::PageStats *pageStats() { return _pageStats.get(); }
    /** Non-null only when the config set a time-series tick. */
    obs::TimeSeries *timeSeries() { return _timeSeries.get(); }
    /** Non-null only when the config enabled host profiling. */
    obs::HostProfiler *hostProfiler() { return _hostProf.get(); }
    /** Non-null only when the config enabled chaos injection. */
    FaultInjector *faultInjector() { return _injector.get(); }
    /** The liveness watchdog (always present). */
    sim::Watchdog &watchdog() { return *_watchdog; }
    /** Invariant-auditor violations found so far. */
    std::uint64_t auditViolations() const { return _auditViolations; }
    /**
     * Cross-check TLB contents, pin/fallback state and residency
     * counts against the page table. @return violations found (each
     * is also logged at Error level).
     */
    std::uint64_t auditInvariants();
    /** @} */

    /** Install a per-access probe on every GPU (benches). */
    void setAccessProbe(gpu::Gpu::AccessProbe probe);

    /**
     * Register the standard probe set on @p sampler: per-device page
     * residency, per-link utilization (busy fraction since the last
     * sample), pending faults, per-GPU busy CUs, and active IOMMU
     * walks. Call before sampler.start(engine(), period).
     */
    void registerProbes(obs::Sampler &sampler);

  private:
    SystemConfig _config;
    sim::Engine _engine;
    mem::PageTable _pageTable;
    std::unique_ptr<ic::Network> _network;
    std::unique_ptr<xlat::Iommu> _iommu;
    std::vector<std::unique_ptr<gpu::Gpu>> _gpus;
    std::vector<std::unique_ptr<gpu::Pmc>> _pmcs; ///< per device
    mem::Cache _cpuL2;
    mem::Dram _cpuDram;
    std::unique_ptr<gpu::Rdma> _cpuRdma;
    std::unique_ptr<driver::Driver> _driver;
    std::unique_ptr<gpu::Dispatcher> _dispatcher;
    std::unique_ptr<core::MigrationPolicy> _policy;
    core::GriffinPolicy *_griffinPolicy = nullptr;
    /** Built only when SystemConfig::chaos enables injection. */
    std::unique_ptr<FaultInjector> _injector;
    /** Lost-wakeup detector; probes registered at construction. */
    std::unique_ptr<sim::Watchdog> _watchdog;
    std::uint64_t _auditViolations = 0;

    /** Run-level latency histograms, attached for the run's duration. */
    obs::Metrics _metrics;
    /** Per-fault causal spans, attached alongside the metrics. */
    obs::FaultSpans _spans;
    /** Built only when SystemConfig::pageStats.enabled. */
    std::unique_ptr<obs::PageStats> _pageStats;
    /** Built only when SystemConfig::timeseriesTick > 0. */
    std::unique_ptr<obs::TimeSeries> _timeSeries;
    /** Built only when SystemConfig::hostProf. */
    std::unique_ptr<obs::HostProfiler> _hostProf;
    /** The log clock that was registered before this system's engine. */
    const sim::Engine *_prevLogClock = nullptr;

    bool _ran = false;

    RunResult collectResults();
};

} // namespace griffin::sys

#endif // GRIFFIN_SYS_MULTI_GPU_SYSTEM_HH
