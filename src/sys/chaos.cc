#include "src/sys/chaos.hh"

#include <cerrno>
#include <cstdlib>
#include <vector>

namespace griffin::sys {

namespace {

/** One "key=value" or bare-number token of a --chaos spec. */
struct Token
{
    std::string key; ///< empty for a bare number
    std::string value;
};

bool
splitSpec(const std::string &spec, std::vector<Token> &out)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        if (item.empty())
            return false;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            out.push_back(Token{std::string(), item});
        } else {
            if (eq == 0 || eq + 1 >= item.size())
                return false;
            out.push_back(Token{item.substr(0, eq), item.substr(eq + 1)});
        }
        pos = comma + 1;
    }
    return !out.empty();
}

bool
parseDouble(const std::string &text, double &out)
{
    errno = 0;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return !text.empty() && end == text.c_str() + text.size() &&
           errno != ERANGE;
}

bool
parseRate(const std::string &text, double &out)
{
    return parseDouble(text, out) && out >= 0.0 && out <= 1.0;
}

bool
parseTick(const std::string &text, Tick &out)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || text[0] == '-' ||
        end != text.c_str() + text.size() || errno == ERANGE) {
        return false;
    }
    out = Tick(v);
    return true;
}

bool
parseUnsigned(const std::string &text, unsigned &out)
{
    Tick v = 0;
    if (!parseTick(text, v) || v > 0xffffffffull)
        return false;
    out = unsigned(v);
    return true;
}

} // namespace

std::optional<ChaosConfig>
ChaosConfig::parse(const std::string &spec)
{
    std::vector<Token> tokens;
    if (!splitSpec(spec, tokens))
        return std::nullopt;

    ChaosConfig cfg;
    for (const Token &t : tokens) {
        bool ok = false;
        if (t.key.empty()) {
            // Bare probability: every fault class fires at this rate.
            double rate = 0.0;
            ok = parseRate(t.value, rate);
            cfg.linkFaultRate = rate;
            cfg.linkDegradeRate = rate;
            cfg.dmaFaultRate = rate;
            cfg.shootdownAckLossRate = rate;
            cfg.walkerStallRate = rate;
        } else if (t.key == "link") {
            ok = parseRate(t.value, cfg.linkFaultRate);
        } else if (t.key == "degrade") {
            ok = parseRate(t.value, cfg.linkDegradeRate);
        } else if (t.key == "dma") {
            ok = parseRate(t.value, cfg.dmaFaultRate);
        } else if (t.key == "ack") {
            ok = parseRate(t.value, cfg.shootdownAckLossRate);
        } else if (t.key == "walker") {
            ok = parseRate(t.value, cfg.walkerStallRate);
        } else if (t.key == "retrydelay") {
            ok = parseTick(t.value, cfg.linkRetryDelay);
        } else if (t.key == "maxnacks") {
            ok = parseUnsigned(t.value, cfg.linkMaxRetries);
        } else if (t.key == "window") {
            ok = parseTick(t.value, cfg.linkDegradeDuration);
        } else if (t.key == "factor") {
            ok = parseDouble(t.value, cfg.linkDegradeFactor) &&
                 cfg.linkDegradeFactor > 0.0 &&
                 cfg.linkDegradeFactor <= 1.0;
        } else if (t.key == "retries") {
            ok = parseUnsigned(t.value, cfg.dmaMaxRetries);
        } else if (t.key == "backoff") {
            ok = parseTick(t.value, cfg.dmaRetryBackoff);
        } else if (t.key == "timeout") {
            ok = parseTick(t.value, cfg.migrationTimeout);
        } else if (t.key == "ackto") {
            ok = parseTick(t.value, cfg.shootdownAckTimeout) &&
                 cfg.shootdownAckTimeout > 0;
        } else if (t.key == "reissues") {
            ok = parseUnsigned(t.value, cfg.shootdownMaxReissues);
        } else if (t.key == "stall") {
            ok = parseTick(t.value, cfg.walkerStallPenalty);
        } else if (t.key == "audit") {
            ok = parseTick(t.value, cfg.auditPeriod);
        }
        if (!ok)
            return std::nullopt;
    }
    return cfg;
}

FaultInjector::FaultInjector(const ChaosConfig &config) : _config(config)
{
    // One substream per fault class, split in a fixed order from one
    // master: raising the dma rate cannot shift the link schedule.
    sim::Rng master(config.seed);
    _linkRng = master.split();
    _degradeRng = master.split();
    _dmaRng = master.split();
    _ackRng = master.split();
    _walkerRng = master.split();
}

bool
FaultInjector::roll(sim::Rng &rng, double rate, std::uint64_t &classCount)
{
    if (rate <= 0.0)
        return false;
    if (!rng.chance(rate))
        return false;
    ++counters.injected;
    ++classCount;
    return true;
}

bool
FaultInjector::dropMessage()
{
    return roll(_linkRng, _config.linkFaultRate, counters.linkFaults);
}

bool
FaultInjector::degradeLink()
{
    return roll(_degradeRng, _config.linkDegradeRate,
                counters.linkDegrades);
}

bool
FaultInjector::failDmaTransfer()
{
    return roll(_dmaRng, _config.dmaFaultRate, counters.dmaFaults);
}

bool
FaultInjector::loseShootdownAck()
{
    return roll(_ackRng, _config.shootdownAckLossRate, counters.acksLost);
}

bool
FaultInjector::stallWalker()
{
    return roll(_walkerRng, _config.walkerStallRate,
                counters.walkerStalls);
}

} // namespace griffin::sys
