#include "src/sys/multi_gpu_system.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "src/sim/log.hh"

namespace griffin::sys {

double
RunResult::maxGpuShare() const
{
    std::uint64_t on_gpus = 0, max_gpu = 0;
    for (std::size_t dev = 1; dev < pagesPerDevice.size(); ++dev) {
        on_gpus += pagesPerDevice[dev];
        max_gpu = std::max(max_gpu, pagesPerDevice[dev]);
    }
    return on_gpus > 0 ? double(max_gpu) / double(on_gpus) : 0.0;
}

MultiGpuSystem::MultiGpuSystem(const SystemConfig &config)
    : _config(config), _engine(config.maxTicks),
      _pageTable(config.gpu.pageShift, config.numDevices()),
      _cpuL2(config.cpuL2), _cpuDram(config.cpuDram)
{
    assert(config.numGpus >= 1);

    if (config.useReferenceQueue)
        _engine.queue().enableReferenceMode();

    // The fault injector comes first so every component can be wired
    // to it as it is built. A disabled chaos config builds no
    // injector and the whole layer stays inert.
    if (config.chaos.enabled())
        _injector = std::make_unique<FaultInjector>(config.chaos);

    _network = std::make_unique<ic::Network>(_engine,
                                             config.numDevices(),
                                             config.link);
    _network->setFaultInjector(_injector.get());
    _iommu = std::make_unique<xlat::Iommu>(_engine, *_network,
                                           _pageTable, config.iommu);
    _iommu->setFaultInjector(_injector.get());
    _cpuRdma = std::make_unique<gpu::Rdma>(_engine, *_network,
                                           cpuDeviceId, _cpuL2, _cpuDram,
                                           config.gpu.lineBytes);

    // GPUs (device ids 1..N).
    for (unsigned g = 0; g < config.numGpus; ++g) {
        _gpus.push_back(std::make_unique<gpu::Gpu>(
            _engine, DeviceId(g + 1), config.gpu, *_network, *_iommu,
            *this));
    }

    // Per-device PMCs share the DRAM directory.
    std::vector<mem::Dram *> drams(config.numDevices(), nullptr);
    drams[cpuDeviceId] = &_cpuDram;
    for (unsigned g = 0; g < config.numGpus; ++g)
        drams[g + 1] = &_gpus[g]->dram();
    const std::uint64_t page_bytes =
        std::uint64_t(1) << config.gpu.pageShift;
    for (unsigned dev = 0; dev < config.numDevices(); ++dev) {
        _pmcs.push_back(std::make_unique<gpu::Pmc>(
            _engine, *_network, DeviceId(dev), drams, page_bytes,
            config.pmcMaxConcurrent));
        _pmcs.back()->setFaultInjector(_injector.get());
    }

    // Driver: fault batching per the active policy (CPMS CPU->GPU
    // half uses N_PTW; the baseline services faults one by one).
    driver::DriverConfig dcfg;
    dcfg.cpuFlushPenalty = config.cpuFlushPenalty;
    if (_injector)
        dcfg.migrationTimeout = config.chaos.migrationTimeout;
    if (config.policy == PolicyKind::Griffin) {
        dcfg.faultBatchSize = config.griffin.nPtw;
        dcfg.faultBatchWindow = config.griffin.faultBatchWindow;
        dcfg.pinAfterMigration = false;
    } else {
        dcfg.faultBatchSize = 1;
        dcfg.pinAfterMigration = true;
    }
    _driver = std::make_unique<driver::Driver>(_engine, _pageTable,
                                               *_iommu,
                                               *_pmcs[cpuDeviceId], dcfg);
    _driver->setFaultInjector(_injector.get());
    _iommu->setFaultHandler(_driver.get());

    // The policy.
    std::vector<gpu::Gpu *> gpu_ptrs;
    std::vector<gpu::Pmc *> pmc_ptrs;
    for (auto &g : _gpus)
        gpu_ptrs.push_back(g.get());
    for (auto &p : _pmcs)
        pmc_ptrs.push_back(p.get());

    if (config.policy == PolicyKind::Griffin) {
        auto policy = std::make_unique<core::GriffinPolicy>(
            _engine, *_network, _pageTable, *_iommu, gpu_ptrs, pmc_ptrs,
            config.griffin);
        _griffinPolicy = policy.get();
        _griffinPolicy->executor().setFaultInjector(_injector.get());
        _policy = std::move(policy);
    } else {
        _policy = std::make_unique<core::FirstTouchPolicy>();
    }
    _iommu->setPolicy(_policy.get());

    _dispatcher = std::make_unique<gpu::Dispatcher>(
        _engine, gpu_ptrs, config.dispatchLatency);

    // The liveness watchdog: one probe per unit of outstanding work.
    // If the event queue drains while any probe is nonzero, the run
    // lost a wakeup and fails with a diagnostic instead of lying.
    _watchdog = std::make_unique<sim::Watchdog>();
    _watchdog->addProbe("driver", "pendingFaults",
                        [this] { return _driver->pendingFaults(); });
    _watchdog->addProbe("driver", "busy",
                        [this] { return _driver->busy() ? 1 : 0; });
    _watchdog->addProbe("iommu", "activeWalks",
                        [this] { return _iommu->activeWalks(); });
    _watchdog->addProbe("iommu", "parkedRequests",
                        [this] { return _iommu->parkedCount(); });
    for (unsigned dev = 0; dev < config.numDevices(); ++dev) {
        _watchdog->addProbe("pmc" + std::to_string(dev), "queueDepth",
                            [this, dev] { return _pmcs[dev]->queueDepth(); });
    }
    for (unsigned g = 0; g < config.numGpus; ++g) {
        const std::string name = "gpu" + std::to_string(g + 1);
        _watchdog->addProbe(name, "busyCus",
                            [this, g] { return _gpus[g]->busyCus(); });
        _watchdog->addProbe(name, "queuedWorkgroups", [this, g] {
            return _gpus[g]->queuedWorkgroups();
        });
        _watchdog->addProbe(name, "drainActive", [this, g] {
            return _gpus[g]->drainActive() ? 1 : 0;
        });
    }
    _watchdog->addProbe("spans", "openFaults",
                        [this] { return _spans.openFaults(); });
    _engine.setWatchdog(_watchdog.get());

    // Page-lifecycle and interval telemetry, built only on request so
    // the default configuration records nothing and pays nothing.
    if (config.pageStats.enabled) {
        _pageStats = std::make_unique<obs::PageStats>(config.pageStats);
        _pageStats->setClock(&_engine);
    }
    if (config.timeseriesTick > 0) {
        _timeSeries =
            std::make_unique<obs::TimeSeries>(config.timeseriesTick);
        // Link utilization: cumulative busy cycles over every wire
        // (one up + one down per device); the recorder differences
        // them per interval into a mean busy fraction.
        _timeSeries->setLinkBusyProbe(
            [this] {
                double busy = 0.0;
                for (unsigned dev = 0; dev < _config.numDevices();
                     ++dev) {
                    const auto &lk = _network->link(DeviceId(dev));
                    busy += double(lk.busyCycles[0]) +
                            double(lk.busyCycles[1]);
                }
                return busy;
            },
            _config.numDevices() * 2);
    }
    if (config.hostProf)
        _hostProf = std::make_unique<obs::HostProfiler>();

    // Timestamp log lines with this system's clock for its lifetime.
    _prevLogClock = sim::Log::clock();
    sim::Log::setClock(&_engine);
}

MultiGpuSystem::~MultiGpuSystem()
{
    if (sim::Log::clock() == &_engine)
        sim::Log::setClock(_prevLogClock);
}

void
MultiGpuSystem::remoteAccess(DeviceId requester, DeviceId owner,
                             Addr addr, bool is_write, sim::EventFn done)
{
    assert(owner != requester);
    const std::uint64_t req_bytes = is_write
        ? ic::MessageSizes::dcaWriteRequest
        : ic::MessageSizes::dcaReadRequest;

    if (obs::Metrics::active()) {
        const Tick begin = _engine.now();
        done = sim::boxed([this, begin, done = std::move(done)] {
            if (auto *m = obs::Metrics::active())
                m->latency.remoteAccessLatency.sample(
                    double(_engine.now() - begin));
            done();
        });
    }

    _network->send(requester, owner, req_bytes,
                   sim::boxed([this, requester, owner, addr, is_write,
                               done = std::move(done)]() mutable {
        if (owner == cpuDeviceId) {
            if (_griffinPolicy) {
                _griffinPolicy->noteCpuDcaAccess(
                    addr >> _config.gpu.pageShift);
            }
            _cpuRdma->serve(addr, is_write, requester, std::move(done));
            return;
        }
        // A GPU owner also feeds the ACUD drain bookkeeping: the
        // access occupies the page's data phase while it is in the
        // owner's memory hierarchy.
        gpu::Gpu *g = _gpus[owner - 1].get();
        const PageId page = addr >> _config.gpu.pageShift;
        g->rdma().serve(addr, is_write, requester, std::move(done),
                        [g, page] { g->enterDataPhase(page); },
                        [g, page] { g->leaveDataPhase(page); });
    }));
}

void
MultiGpuSystem::setAccessProbe(gpu::Gpu::AccessProbe probe)
{
    for (auto &g : _gpus)
        g->setAccessProbe(probe);
}

void
MultiGpuSystem::registerProbes(obs::Sampler &sampler)
{
    for (unsigned dev = 0; dev < _config.numDevices(); ++dev) {
        const std::string name = dev == cpuDeviceId
            ? std::string("pages.cpu")
            : "pages.gpu" + std::to_string(dev);
        sampler.add(name, [this, dev] {
            return double(_pageTable.residentPages(DeviceId(dev)));
        });
    }

    // Link utilization: busy fraction of each wire since the previous
    // sample (delta-based, so the probes are stateful).
    for (unsigned dev = 0; dev < _config.numDevices(); ++dev) {
        for (unsigned dir = 0; dir < 2; ++dir) {
            const std::string name = "link" + std::to_string(dev) +
                                     (dir == 0 ? ".up" : ".down");
            sampler.add(name, [this, dev, dir, prev_busy = Tick(0),
                               prev_tick = Tick(0)]() mutable {
                const Tick busy =
                    Tick(_network->link(DeviceId(dev)).busyCycles[dir]);
                const Tick now = _engine.now();
                const double util = now > prev_tick
                    ? double(busy - prev_busy) / double(now - prev_tick)
                    : 0.0;
                prev_busy = busy;
                prev_tick = now;
                return util;
            });
        }
    }

    sampler.add("faults.pending",
                [this] { return double(_driver->pendingFaults()); });
    sampler.add("iommu.activeWalks",
                [this] { return double(_iommu->activeWalks()); });
    sampler.add("iommu.walkerOccupancy", [this] {
        return double(_iommu->busyWalkers()) /
               double(_iommu->config().numWalkers);
    });
    for (unsigned g = 0; g < numGpus(); ++g) {
        sampler.add("gpu" + std::to_string(g + 1) + ".busyCus",
                    [this, g] { return double(_gpus[g]->busyCus()); });
    }
    // Transfer-queue depth per PMC; device 0 is the CPU-side PMC the
    // driver funnels every CPU->GPU migration through.
    for (unsigned dev = 0; dev < _config.numDevices(); ++dev) {
        sampler.add("pmc" + std::to_string(dev) + ".queueDepth",
                    [this, dev] { return double(_pmcs[dev]->queueDepth()); });
    }
}

RunResult
MultiGpuSystem::run(wl::Workload &workload)
{
    if (_ran) {
        // A second run would silently reuse page tables, TLBs and
        // stats from the first — diagnose and fail instead of
        // producing corrupt results.
        GLOG(Error, "MultiGpuSystem::run() called twice");
        std::fprintf(stderr,
                     "griffin: a MultiGpuSystem instance runs exactly "
                     "one workload; build a new system for each run\n");
        std::exit(2);
    }
    _ran = true;

    GLOG(Info, "run: " << workload.name() << " under "
                       << _policy->name());

    // Attach the host profiler before every other sink so its dispatch
    // brackets cover the whole run — including time the other sinks
    // spend recording. The guard detaches even if the watchdog throws.
    struct HostProfGuard
    {
        obs::HostProfiler *h;
        explicit HostProfGuard(obs::HostProfiler *hh) : h(hh)
        {
            if (h)
                h->attach();
        }
        ~HostProfGuard()
        {
            if (h)
                h->detach();
        }
    } hostprof_guard(_hostProf.get());

    // Collect latency histograms for the run. The guard detaches even
    // if the watchdog throws.
    struct MetricsGuard
    {
        obs::Metrics &m;
        explicit MetricsGuard(obs::Metrics &mm) : m(mm) { m.attach(); }
        ~MetricsGuard() { m.detach(); }
    } metrics_guard(_metrics);

    // Per-fault causal spans, same lifetime discipline.
    struct SpansGuard
    {
        obs::FaultSpans &s;
        explicit SpansGuard(obs::FaultSpans &ss) : s(ss) { s.attach(); }
        ~SpansGuard() { s.detach(); }
    } spans_guard(_spans);

    // Optional page-lifecycle and time-series recorders; the guards
    // detach (and stop the boundary hook) on a watchdog throw too.
    struct PageStatsGuard
    {
        obs::PageStats *p;
        explicit PageStatsGuard(obs::PageStats *pp) : p(pp)
        {
            if (p)
                p->attach();
        }
        ~PageStatsGuard()
        {
            if (p)
                p->detach();
        }
    } pagestats_guard(_pageStats.get());

    struct TimeSeriesGuard
    {
        obs::TimeSeries *t;
        TimeSeriesGuard(obs::TimeSeries *tt, sim::Engine &engine) : t(tt)
        {
            if (t) {
                t->attach();
                t->start(engine);
            }
        }
        ~TimeSeriesGuard()
        {
            if (t) {
                t->stop();
                t->detach();
            }
        }
    } timeseries_guard(_timeSeries.get(), _engine);

    _policy->onSystemStart();

    // Launch the kernels back to back. The continuation captures its
    // own shared_ptr (a reference cycle), so the guard breaks the
    // cycle once the run is over — watchdog throw included.
    const unsigned num_kernels = workload.numKernels();
    auto launch_next = std::make_shared<std::function<void(unsigned)>>();
    struct LaunchGuard
    {
        std::function<void(unsigned)> &fn;
        ~LaunchGuard() { fn = nullptr; }
    } launch_guard{*launch_next};
    *launch_next = [this, &workload, num_kernels,
                    launch_next](unsigned k) {
        if (k >= num_kernels) {
            _policy->onSystemStop();
            return;
        }
        _dispatcher->launchKernel(workload.makeKernel(k),
                                  [launch_next, k] {
                                      (*launch_next)(k + 1);
                                  });
    };
    _engine.schedule(0, [launch_next] {
        GHPROF_SCOPE("sys", "kernel_launch");
        (*launch_next)(0);
    });

    // While injecting faults, cross-check the system's invariants
    // periodically so a recovery bug is caught near where it happened
    // rather than at the end of the run.
    std::uint64_t audit_hook = 0;
    if (_injector && _config.chaos.auditPeriod > 0) {
        audit_hook = _engine.addPeriodicHook(
            _config.chaos.auditPeriod,
            [this](Tick) { _auditViolations += auditInvariants(); });
    }

    _engine.run();

    if (audit_hook != 0)
        _engine.removePeriodicHook(audit_hook);

    // The queue drained: nothing may be left behind. (A requestStop()
    // legitimately leaves work outstanding, so skip the check then.)
    if (!_engine.stopRequested())
        _watchdog->checkQuiesced(_engine.now());

    // Final audit, chaos or not — a quiesced system must be
    // consistent.
    _auditViolations += auditInvariants();

    // Flush the time series' final partial interval before the
    // results snapshot it (the guard's later stop() is a no-op).
    if (_timeSeries)
        _timeSeries->stop();

    // Freeze the host wall clock at end-of-sim so result collection
    // and report writing don't inflate the measured run time.
    if (_hostProf)
        _hostProf->stopTimer();

    return collectResults();
}

std::uint64_t
MultiGpuSystem::auditInvariants()
{
    std::uint64_t violations = 0;
    const auto flag = [&violations](const std::string &what) {
        ++violations;
        GLOG(Error, "audit: " << what);
    };

    // GPU TLBs may only cache device-local translations, and a cached
    // entry must agree with the page table once no migration of the
    // page is in flight.
    const auto check_gpu_tlb = [&](const xlat::Tlb &tlb,
                                   const std::string &name,
                                   DeviceId dev) {
        tlb.forEachValid([&](PageId page, DeviceId loc) {
            if (loc != dev) {
                flag(name + " caches remote translation for page " +
                     std::to_string(page));
                return;
            }
            const mem::PageInfo &pi = _pageTable.info(page);
            if (!pi.migrating && !pi.migrationPending &&
                pi.location != loc) {
                flag(name + " holds stale entry for page " +
                     std::to_string(page) + " (cached " +
                     std::to_string(loc) + ", actual " +
                     std::to_string(pi.location) + ")");
            }
        });
    };
    for (unsigned g = 0; g < numGpus(); ++g) {
        const DeviceId dev = DeviceId(g + 1);
        const std::string name = "gpu" + std::to_string(dev);
        check_gpu_tlb(_gpus[g]->l2Tlb(), name + ".l2Tlb", dev);
        for (unsigned cu = 0; cu < _gpus[g]->numCus(); ++cu) {
            check_gpu_tlb(_gpus[g]->l1Tlb(cu),
                          name + ".l1Tlb" + std::to_string(cu), dev);
        }
    }

    // The IOTLB must agree with the page table for stable pages.
    // (CPU-resident entries are legal only under a DFTM lease, which
    // also keeps them coherent: the driver purges on migration.)
    _iommu->iotlb().forEachValid([&](PageId page, DeviceId loc) {
        const mem::PageInfo &pi = _pageTable.info(page);
        if (!pi.migrating && !pi.migrationPending && pi.location != loc) {
            flag("iotlb holds stale entry for page " +
                 std::to_string(page) + " (cached " +
                 std::to_string(loc) + ", actual " +
                 std::to_string(pi.location) + ")");
        }
    });

    // Pin and fallback state must match residency.
    for (const auto &[page, pi] : _pageTable.pages()) {
        if (pi.pinned && pi.location == cpuDeviceId)
            flag("pinned page " + std::to_string(page) +
                 " is CPU-resident");
        if (pi.dcaFallback && pi.location != cpuDeviceId)
            flag("dca-fallback page " + std::to_string(page) +
                 " migrated to device " + std::to_string(pi.location));
        if (pi.dcaFallback && pi.pinned)
            flag("dca-fallback page " + std::to_string(page) +
                 " is pinned");
    }

    // Per-device residency counters must sum to the page population.
    std::uint64_t resident = 0;
    for (unsigned dev = 0; dev < _config.numDevices(); ++dev)
        resident += _pageTable.residentPages(DeviceId(dev));
    if (resident != _pageTable.totalPages()) {
        flag("residency counters sum to " + std::to_string(resident) +
             " but the table holds " +
             std::to_string(_pageTable.totalPages()) + " pages");
    }

    return violations;
}

RunResult
MultiGpuSystem::collectResults()
{
    RunResult result;
    result.cycles = _engine.now();

    for (unsigned dev = 0; dev < _config.numDevices(); ++dev)
        result.pagesPerDevice.push_back(_pageTable.residentPages(dev));

    result.cpuShootdowns = _driver->cpuShootdowns;
    result.pagesMigratedFromCpu = _driver->pagesMigratedIn;

    for (auto &g : _gpus) {
        result.gpuShootdowns += g->tlbShootdownEvents;
        result.localAccesses += g->localAccesses;
        result.remoteAccesses += g->remoteAccesses;
    }
    if (_griffinPolicy)
        result.pagesMigratedInterGpu =
            _griffinPolicy->executor().pagesMigrated;

    // Full stat dump.
    sim::StatSet &st = result.stats;
    st.set("sim.cycles", double(result.cycles));
    st.set("sim.events", double(_engine.eventsExecuted()));
    st.set("driver.faults", double(_driver->faultsReceived));
    st.set("driver.batches", double(_driver->batchesProcessed));
    st.set("driver.cpuShootdowns", double(_driver->cpuShootdowns));
    st.set("driver.pagesMigratedIn", double(_driver->pagesMigratedIn));
    st.set("iommu.requests", double(_iommu->requests));
    st.set("iommu.walks", double(_iommu->walks));
    st.set("iommu.iotlbHits", double(_iommu->iotlbHits));
    st.set("iommu.faults", double(_iommu->faultsRaised));
    st.set("iommu.dcaRedirects", double(_iommu->dcaRedirects));
    st.set("iommu.walksStalled", double(_iommu->walksStalled));
    st.set("iommu.fallbackRedirects",
           double(_iommu->fallbackRedirects));
    st.set("pageTable.migrations", double(_pageTable.migrations()));
    st.set("pageTable.totalPages", double(_pageTable.totalPages()));
    st.set("network.messages", double(_network->messagesDelivered));

    for (unsigned dev = 0; dev < _config.numDevices(); ++dev) {
        const auto &lk = _network->link(DeviceId(dev));
        const std::string p = "link" + std::to_string(dev) + ".";
        st.set(p + "upBytes", double(lk.bytesSent[0]));
        st.set(p + "downBytes", double(lk.bytesSent[1]));
        st.set(p + "upBusyCycles", double(lk.busyCycles[0]));
        st.set(p + "downBusyCycles", double(lk.busyCycles[1]));
    }

    for (unsigned g = 0; g < numGpus(); ++g) {
        auto &gp = *_gpus[g];
        const std::string p = "gpu" + std::to_string(g + 1) + ".";
        st.set(p + "localAccesses", double(gp.localAccesses));
        st.set(p + "remoteAccesses", double(gp.remoteAccesses));
        st.set(p + "xlatRequests", double(gp.xlatRequestsSent));
        st.set(p + "shootdownEvents", double(gp.tlbShootdownEvents));
        st.set(p + "shootdownEntries", double(gp.tlbEntriesShotDown));
        st.set(p + "drains", double(gp.drains));
        st.set(p + "fullFlushes", double(gp.fullFlushes));
        st.set(p + "workgroups", double(gp.workgroupsExecuted));
        st.set(p + "pausedCycles", double(gp.pausedCycles));
        std::uint64_t discarded = 0, issued = 0;
        for (unsigned cu = 0; cu < gp.numCus(); ++cu) {
            discarded += gp.cu(cu).opsDiscarded;
            issued += gp.cu(cu).opsIssued;
        }
        st.set(p + "opsDiscarded", double(discarded));
        st.set(p + "opsIssued", double(issued));
        st.set(p + "l2Hits", double(gp.l2().hits));
        st.set(p + "l2Misses", double(gp.l2().misses));
        st.set(p + "residentPages",
               double(_pageTable.residentPages(DeviceId(g + 1))));
        st.set(p + "rdmaReads", double(gp.rdma().readsServed));
        st.set(p + "rdmaWrites", double(gp.rdma().writesServed));
    }

    if (_griffinPolicy) {
        const auto &dftm = _griffinPolicy->dftm();
        st.set("griffin.dftm.denials", double(dftm.firstTouchDenials));
        st.set("griffin.dftm.firstTouch",
               double(dftm.firstTouchMigrations));
        st.set("griffin.dftm.secondTouch",
               double(dftm.secondTouchMigrations));
        st.set("griffin.dftm.leaseRenewals",
               double(dftm.leaseRenewals));
        st.set("griffin.periods", double(_griffinPolicy->periodsRun));
        const auto &ex = _griffinPolicy->executor();
        st.set("griffin.interGpuMigrations", double(ex.pagesMigrated));
        st.set("griffin.migrationBatches", double(ex.batchesExecuted));
        const auto &dpc = _griffinPolicy->dpc();
        st.set("griffin.dpc.candidates", double(dpc.candidatesEmitted));
        for (int c = 0; c < 5; ++c) {
            st.set(std::string("griffin.dpc.class.") +
                       core::pageClassName(core::PageClass(c)),
                   double(dpc.classCounts[c]));
        }
    }

    if (_pageStats) {
        result.pageStats = _pageStats->summary();
        st.set("pages.tracked", double(result.pageStats.pagesTracked));
        st.set("pages.migrationCommits",
               double(result.pageStats.totalMigrations));
        st.set("pages.churnEvents",
               double(result.pageStats.churnEvents));
        st.set("pages.churnPages", double(result.pageStats.churnPages));
    }
    if (_timeSeries)
        result.timeseries = _timeSeries->summary();
    // Host times are nondeterministic by nature, so the profile stays
    // out of StatSet (whose counters must be byte-identical across
    // --jobs=N); the report serializes it in its own marked section.
    if (_hostProf)
        result.hostProfile = _hostProf->profile();

    result.latency = _metrics.latency;
    result.faultBreakdown = _spans.criticalPath();
    result.faultSpansOpen = _spans.openFaults();
    st.set("spans.completed", double(_spans.criticalPath().faults()));
    st.set("spans.open", double(result.faultSpansOpen));
    st.set("pmc0.transfersDeferred",
           double(_pmcs[cpuDeviceId]->transfersDeferred));

    result.auditViolations = _auditViolations;
    st.set("audit.violations", double(_auditViolations));

    if (_injector) {
        const FaultInjector::Counters &c = _injector->counters;
        result.chaosInjected = c.injected;
        result.chaosRetries = c.retries;
        result.chaosFallbacks = c.fallbacks;
        result.chaosRecoveryCycles = c.recoveryCycles;
        st.set("chaos.injected", double(c.injected));
        st.set("chaos.retries", double(c.retries));
        st.set("chaos.fallbacks", double(c.fallbacks));
        st.set("chaos.recoveryCycles", double(c.recoveryCycles));
        st.set("chaos.linkFaults", double(c.linkFaults));
        st.set("chaos.linkDegrades", double(c.linkDegrades));
        st.set("chaos.dmaFaults", double(c.dmaFaults));
        st.set("chaos.acksLost", double(c.acksLost));
        st.set("chaos.walkerStalls", double(c.walkerStalls));
        st.set("chaos.dmaAbandoned", double(c.dmaAbandoned));
        st.set("chaos.migrationTimeouts", double(c.migrationTimeouts));
        st.set("chaos.messagesNacked",
               double(_network->messagesNacked));
        st.set("chaos.driverMigrationTimeouts",
               double(_driver->migrationTimeouts));
        st.set("chaos.lateDmaCompletions",
               double(_driver->lateDmaCompletions));
        if (_griffinPolicy) {
            const auto &ex = _griffinPolicy->executor();
            st.set("chaos.shootdownsReissued",
                   double(ex.shootdownsReissued));
            st.set("chaos.batchesAborted", double(ex.batchesAborted));
            st.set("chaos.lateTransferCompletions",
                   double(ex.lateTransferCompletions));
        }
    }

    return result;
}

} // namespace griffin::sys
