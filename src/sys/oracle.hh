/**
 * @file
 * Invariant oracles: the properties every simulation run must satisfy
 * regardless of configuration, workload, or injected chaos.
 *
 * The oracle catalog (see DESIGN.md §15 for the rationale behind each
 * entry):
 *
 *  - residency-conservation: the final per-device residency counts
 *    sum to the page population — every page is mapped exactly once;
 *  - invariant-audit: the system's own auditor (TLB-vs-page-table
 *    staleness, pin/fallback exclusivity, residency sums) found
 *    nothing, at the periodic chaos audits or the end-of-run sweep;
 *  - span-partition: per-stage critical-path sums equal the
 *    end-to-end fault latency sum exactly, and per-stage counts match
 *    the completed-fault count;
 *  - span-orphans: no fault span was left open at end of run;
 *  - access-accounting: a completed run recorded memory accesses;
 *  - timeseries-reconciliation: interval rows sum to the series
 *    totals and the totals equal the independently-counted run
 *    aggregates (migrations, DCA accesses, shootdowns, faults);
 *  - pagestats-reconciliation: the page-lifecycle digest agrees with
 *    the page table's migration counter;
 *  - chaos-accounting: injected faults equal the per-class sums, and
 *    a chaos-off run reports zero everywhere;
 *  - quiesced: after a run, the event queue is empty, no timeouts are
 *    pending, and every watchdog probe reads zero;
 *  - determinism-jobs / determinism-ref: the scenario's run report is
 *    byte-identical when re-run under a parallel sweep / under the
 *    naive reference scheduler (sim/ref_queue.hh).
 *
 * runFuzzBatch() is the harness the fuzz CLI, the pinned-corpus ctest
 * and the bench replay all share: it runs each scenario serially,
 * applies every result oracle, then re-runs the batch at --jobs=N and
 * on the reference queue for the differential oracles.
 */

#ifndef GRIFFIN_SYS_ORACLE_HH
#define GRIFFIN_SYS_ORACLE_HH

#include <string>
#include <vector>

#include "src/sys/multi_gpu_system.hh"
#include "src/sys/scenario_gen.hh"
#include "src/sys/system_config.hh"

namespace griffin::sys {

/** One violated invariant. */
struct OracleFinding
{
    /** Catalog name ("residency-conservation", ...). */
    std::string oracle;
    /** What was observed vs what the invariant demands. */
    std::string detail;
};

/**
 * Apply every result-level oracle to @p result, which @p config
 * produced. Pure: safe on snapshots long after the system is gone
 * (the corrupted-result tests in tests/sys/oracle_test.cc rely on
 * this). @return one finding per violated invariant; empty = clean.
 */
std::vector<OracleFinding> checkRunInvariants(const RunResult &result,
                                              const SystemConfig &config);

/**
 * Apply the quiesced oracle to a system whose run() just returned:
 * event queue empty, no pending timeouts, all watchdog probes zero.
 */
std::vector<OracleFinding> checkSystemQuiesced(MultiGpuSystem &system);

/** The outcome of fuzzing one scenario. */
struct ScenarioVerdict
{
    Scenario scenario;
    /** The serial run completed (no watchdog error, no exception). */
    bool ran = false;
    std::vector<OracleFinding> findings;
    /** Serial-run result, valid when @c ran. */
    RunResult result;

    bool ok() const { return ran && findings.empty(); }
};

struct FuzzOptions
{
    /**
     * Worker threads for the parallel determinism oracle. The serial
     * pass always runs; jobs <= 1 skips the parallel re-run (the
     * reference-queue differential still applies).
     */
    unsigned jobs = 8;
    /** Run the jobs-N and reference-queue differential oracles. */
    bool differential = true;
};

/**
 * Run @p scenarios under every oracle. Per scenario: one serial run
 * (result oracles + quiesced oracle + report capture), then — for
 * scenarios whose serial run completed — one parallel sweep over the
 * whole batch and one serial reference-queue run, each compared
 * byte-for-byte against the serial run's report. Returns one verdict
 * per scenario, in input order; a scenario that throws is reported in
 * its verdict, never propagated.
 */
std::vector<ScenarioVerdict>
runFuzzBatch(const std::vector<Scenario> &scenarios,
             const FuzzOptions &options = {});

} // namespace griffin::sys

#endif // GRIFFIN_SYS_ORACLE_HH
