/**
 * @file
 * Cross-run report comparison: the library behind the griffin-compare
 * CLI and the CI perf-regression gate.
 *
 * A report document is what the benches write with --report=FILE:
 * {"runs": [{label, config, result, counters, histograms,
 * fault_breakdown, ...}, ...]}. Comparison matches runs between a
 * reference and a current document by label, evaluates a set of
 * metric thresholds ("fault_p95 may grow at most 5%") on every
 * matched run, and summarizes every other numeric drift
 * informationally. Missing runs or metrics fail the comparison: a
 * gate that silently skips what it cannot find is not a gate.
 */

#ifndef GRIFFIN_SYS_COMPARE_HH
#define GRIFFIN_SYS_COMPARE_HH

#include <optional>
#include <string>
#include <vector>

#include "src/obs/json.hh"

namespace griffin::sys {

/**
 * One gate: "metric may not drift more than pct percent". Direction
 * +1 fails only on increase (a "+5%" spec: latency growing is bad,
 * shrinking is fine), -1 only on decrease ("-5%": e.g. local-access
 * fraction dropping), 0 on either ("5%": lockstep metrics like page
 * counts).
 */
struct Threshold
{
    std::string metric;
    double pct = 0.0;
    int direction = 0;
    /**
     * A breached warn-only threshold becomes a warning instead of a
     * failure (the CLI's --warn-on). Host-time metrics (any path
     * under host_profile.host) are forced warn-only regardless: wall
     * time is machine-dependent, so it must never hard-fail a gate.
     */
    bool warnOnly = false;
};

/**
 * Parse a "METRIC:[+|-]P%" spec ("fault_p95:+5%", "cycles:3%").
 * @return nullopt on malformed input.
 */
std::optional<Threshold> parseThreshold(const std::string &spec);

/**
 * Resolve a metric name to its dotted path inside one run's report
 * object. Known aliases:
 *
 *   cycles               result.cycles
 *   local_fraction       result.localFraction
 *   cpu_shootdowns       result.cpuShootdowns
 *   gpu_shootdowns       result.gpuShootdowns
 *   migrations           result.pagesMigratedFromCpu
 *   fault_{mean,p50,p95,p99}   histograms.faultLatency.*
 *   <stage>_{share,sum,p95}    fault_breakdown.stages.<stage>.*
 *                              (<stage> per obs::stageName)
 *   churn                page_stats.churn_events
 *   churn_pages          page_stats.churn_pages
 *   pages_migrated       page_stats.pages_migrated
 *   reuse_{mean,p50,p95,p99}   page_stats.reuse_distance.*
 *   peak_{migrations,dca_accesses,shootdowns,faults}
 *                              timeseries.peak.*
 *   host_events_per_sec  host_profile.host.events_per_sec
 *                              (always warn-only: host time)
 *
 * Anything else is taken verbatim as a dotted path (so
 * "counters.iommu.walks" works unaliased... but note counter names
 * themselves contain dots, so counters are resolved with a longest-
 * prefix fallback by the lookup, not here).
 */
std::string resolveMetricPath(const std::string &metric);

/**
 * Numeric lookup by dotted path inside one run object. Descends
 * member by member; if a segment is missing, tries the remaining
 * path joined by dots as one literal key (counter names like
 * "iommu.walks" live under "counters" as single keys).
 */
std::optional<double> lookupMetric(const obs::json::Value &run,
                                   const std::string &path);

/** One threshold evaluated on one matched run. */
struct CheckResult
{
    std::string run;    ///< run label
    std::string metric; ///< as specified
    std::string path;   ///< resolved dotted path
    double ref = 0.0;
    double cur = 0.0;
    double deltaPct = 0.0;
    bool ok = false;
    /** Breach downgraded to a warning (warn-only threshold). */
    bool warnedOnly = false;
    std::string note; ///< non-empty when the metric could not be read
};

/** One informational numeric drift (no threshold attached). */
struct Drift
{
    std::string run;
    std::string path;
    double ref = 0.0;
    double cur = 0.0;
    double deltaPct = 0.0;
};

/** The whole comparison. */
struct CompareResult
{
    bool pass = true;
    /**
     * True when the comparison itself is invalid — e.g. a report
     * contains two runs with the same label, so there is no way to
     * tell which pair was compared. Tools should report this as a
     * usage-class failure (exit 2), distinct from a metric fail.
     */
    bool fatal = false;
    std::vector<CheckResult> checks;
    std::vector<Drift> drifts; ///< largest |delta| first, capped
    std::vector<std::string> errors; ///< missing runs, parse problems
    /**
     * Non-failing advisories — today: a schema_version the comparer
     * does not know (an absent field counts as version 1). A warned
     * comparison still passes; the advisory just travels with the
     * verdict.
     */
    std::vector<std::string> warnings;

    /**
     * Machine-readable verdict:
     * {status, checks: [...], drift: [...], errors: [...],
     *  warnings: [...]}.
     */
    obs::json::Value verdictJson() const;
};

/**
 * Compare two report documents. @p thresholds apply to every run
 * label present in @p ref; a label missing from @p cur (or vice
 * versa), or a threshold metric missing from a matched run, fails.
 */
CompareResult compareReports(const obs::json::Value &ref,
                             const obs::json::Value &cur,
                             const std::vector<Threshold> &thresholds);

} // namespace griffin::sys

#endif // GRIFFIN_SYS_COMPARE_HH
