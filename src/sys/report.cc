#include "src/sys/report.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/obs/sampler.hh"
#include "src/obs/span.hh"
#include "src/sim/log.hh"
#include "src/sim/stats.hh"
#include "src/sys/csv.hh"
#include "src/sys/multi_gpu_system.hh"
#include "src/sys/system_config.hh"

namespace griffin::sys {

double
geomean(const std::vector<double> &values)
{
    // The geometric mean is only defined over positive values. A
    // degenerate input (a zero-cycle run, a NaN from a dead counter)
    // should not take the whole report down: skip such values with a
    // warning and average what remains. Note !(v > 0.0) is also true
    // for NaN, so this is NaN-safe.
    double log_sum = 0.0;
    std::size_t used = 0;
    for (const double v : values) {
        if (!(v > 0.0)) {
            GLOG(Warn, "geomean: skipping non-positive value " << v);
            continue;
        }
        log_sum += std::log(v);
        ++used;
    }
    if (used == 0)
        return 0.0;
    return std::exp(log_sum / double(used));
}

Table::Table(std::vector<std::string> header) : _header(std::move(header))
{
    assert(!_header.empty());
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() > _header.size()) {
        GLOG(Warn, "table: row of " << row.size() << " cells under a "
                       << _header.size()
                       << "-column header; extra cells dropped");
        assert(false && "table row wider than its header");
    }
    row.resize(_header.size());
    _rows.push_back(std::move(row));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(_header.size());
    for (std::size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(int(widths[c]) + 2) << cells[c];
        }
        os << "\n";
    };
    emit(_header);
    std::string rule;
    for (std::size_t c = 0; c < _header.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << "\n";
    for (const auto &row : _rows)
        emit(row);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << csvEscape(cells[c]);
        }
        os << "\n";
    };
    emit(_header);
    for (const auto &row : _rows)
        emit(row);
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    os << str();
}

obs::json::Value
histogramJson(const sim::Histogram &hist)
{
    obs::json::Value v = obs::json::Value::object();
    v["count"] = hist.count();
    v["mean"] = hist.mean();
    v["min"] = hist.min();
    v["max"] = hist.max();
    v["p50"] = hist.percentile(50.0);
    v["p95"] = hist.percentile(95.0);
    v["p99"] = hist.percentile(99.0);
    v["bucketWidth"] = hist.bucketWidth();
    obs::json::Value buckets = obs::json::Value::array();
    const auto &b = hist.buckets();
    for (std::size_t i = 0; i < b.size(); ++i) {
        if (b[i] == 0)
            continue;
        obs::json::Value entry = obs::json::Value::array();
        entry.push(std::uint64_t(i));
        entry.push(b[i]);
        buckets.push(std::move(entry));
    }
    v["buckets"] = std::move(buckets);
    return v;
}

obs::json::Value
configJson(const SystemConfig &config)
{
    obs::json::Value v = obs::json::Value::object();
    v["policy"] = config.policy == PolicyKind::Griffin ? "griffin"
                                                       : "first-touch";
    v["numGpus"] = config.numGpus;
    v["pageShift"] = config.gpu.pageShift;
    v["cusPerGpu"] = config.gpu.numCus();
    v["linkBytesPerCycle"] = config.link.bytesPerCycle;
    v["linkLatency"] = std::uint64_t(config.link.latency);
    v["cpuFlushPenalty"] = std::uint64_t(config.cpuFlushPenalty);
    v["seed"] = config.seed;
    if (config.policy == PolicyKind::Griffin) {
        obs::json::Value g = obs::json::Value::object();
        g["enableDftm"] = config.griffin.enableDftm;
        g["enableInterGpuMigration"] =
            config.griffin.enableInterGpuMigration;
        g["useAcud"] = config.griffin.useAcud;
        g["nPtw"] = config.griffin.nPtw;
        g["alpha"] = config.griffin.alpha;
        g["tAc"] = std::uint64_t(config.griffin.tAc);
        v["griffin"] = std::move(g);
    }
    if (config.chaos.enabled()) {
        obs::json::Value c = obs::json::Value::object();
        c["linkFaultRate"] = config.chaos.linkFaultRate;
        c["linkDegradeRate"] = config.chaos.linkDegradeRate;
        c["dmaFaultRate"] = config.chaos.dmaFaultRate;
        c["shootdownAckLossRate"] = config.chaos.shootdownAckLossRate;
        c["walkerStallRate"] = config.chaos.walkerStallRate;
        c["migrationTimeout"] =
            std::uint64_t(config.chaos.migrationTimeout);
        c["seed"] = config.chaos.seed;
        v["chaos"] = std::move(c);
    }
    return v;
}

namespace {

obs::json::Value
topPageJson(const obs::PageStatsSummary::TopPage &tp)
{
    obs::json::Value v = obs::json::Value::object();
    v["page"] = std::uint64_t(tp.page);
    v["migrations"] = tp.migrations;
    v["churn"] = tp.churn;
    v["denials"] = tp.denials;
    v["last_location"] = std::uint64_t(tp.lastLocation);
    obs::json::Value res = obs::json::Value::array();
    for (const auto &hop : tp.residency) {
        obs::json::Value entry = obs::json::Value::array();
        entry.push(std::uint64_t(hop.at));
        entry.push(std::uint64_t(hop.device));
        res.push(std::move(entry));
    }
    v["residency"] = std::move(res);
    return v;
}

obs::json::Value
pageStatsJson(const obs::PageStatsSummary &ps)
{
    obs::json::Value v = obs::json::Value::object();
    v["churn_window"] = std::uint64_t(ps.churnWindow);
    v["top_n"] = std::uint64_t(ps.topN);
    obs::json::Value events = obs::json::Value::object();
    for (unsigned e = 0; e < obs::numPageEvents; ++e)
        events[obs::pageEventName(obs::PageEvent(e))] = ps.events[e];
    v["events"] = std::move(events);
    v["pages_tracked"] = ps.pagesTracked;
    v["pages_migrated"] = ps.pagesMigrated;
    v["total_migrations"] = ps.totalMigrations;
    v["churn_events"] = ps.churnEvents;
    v["churn_pages"] = ps.churnPages;
    v["max_migrations_one_page"] = ps.maxMigrationsOnePage;
    v["reuse_distance"] = histogramJson(ps.reuseDistance);
    obs::json::Value hot = obs::json::Value::array();
    for (const auto &tp : ps.hotPages)
        hot.push(topPageJson(tp));
    v["hot_pages"] = std::move(hot);
    obs::json::Value thrash = obs::json::Value::array();
    for (const auto &tp : ps.thrashingPages)
        thrash.push(topPageJson(tp));
    v["thrashing_pages"] = std::move(thrash);
    return v;
}

obs::json::Value
timeseriesJson(const obs::TimeSeries::Summary &ts)
{
    obs::json::Value v = obs::json::Value::object();
    v["tick"] = std::uint64_t(ts.tick);
    obs::json::Value cols = obs::json::Value::array();
    for (const char *c :
         {"t_begin", "t_end", "migrations", "dca_accesses", "shootdowns",
          "faults", "fault_p50", "fault_p95", "link_util"})
        cols.push(c);
    v["columns"] = std::move(cols);
    obs::json::Value rows = obs::json::Value::array();
    std::array<std::uint64_t, obs::TimeSeries::numSeries> peak{};
    for (const auto &row : ts.rows) {
        obs::json::Value jr = obs::json::Value::array();
        jr.push(std::uint64_t(row.begin));
        jr.push(std::uint64_t(row.end));
        for (unsigned s = 0; s < obs::TimeSeries::numSeries; ++s) {
            jr.push(row.counts[s]);
            peak[s] = std::max(peak[s], row.counts[s]);
        }
        jr.push(row.faultP50);
        jr.push(row.faultP95);
        jr.push(row.linkUtil);
        rows.push(std::move(jr));
    }
    v["rows"] = std::move(rows);
    obs::json::Value totals = obs::json::Value::object();
    totals["migrations"] =
        ts.totals[unsigned(obs::TimeSeries::Series::Migrations)];
    totals["dca_accesses"] =
        ts.totals[unsigned(obs::TimeSeries::Series::DcaAccesses)];
    totals["shootdowns"] =
        ts.totals[unsigned(obs::TimeSeries::Series::Shootdowns)];
    totals["faults"] =
        ts.totals[unsigned(obs::TimeSeries::Series::Faults)];
    v["totals"] = std::move(totals);
    obs::json::Value pk = obs::json::Value::object();
    pk["migrations"] =
        peak[unsigned(obs::TimeSeries::Series::Migrations)];
    pk["dca_accesses"] =
        peak[unsigned(obs::TimeSeries::Series::DcaAccesses)];
    pk["shootdowns"] =
        peak[unsigned(obs::TimeSeries::Series::Shootdowns)];
    pk["faults"] = peak[unsigned(obs::TimeSeries::Series::Faults)];
    v["peak"] = std::move(pk);
    return v;
}

} // namespace

obs::json::Value
hostProfileJson(const obs::HostProfile &hp)
{
    obs::json::Value v = obs::json::Value::object();
    // Deterministic members first: the dispatched-event total and the
    // per-bucket scope counts are pure functions of the simulated
    // event sequence, so they diff cleanly across --jobs=N.
    v["events"] = hp.events;
    obs::json::Value counts = obs::json::Value::object();
    for (const auto &b : hp.buckets)
        counts[b.name()] = b.count;
    v["counts"] = std::move(counts);

    // Everything nanosecond-derived is a host measurement: machine-
    // and load-dependent, never byte-stable. sys::compare treats the
    // whole "host" subtree as warn-only and excludes it from drift.
    obs::json::Value host = obs::json::Value::object();
    host["wall_ns"] = hp.wallNs;
    host["dispatch_ns"] = hp.dispatchNs;
    host["events_per_sec"] = hp.eventsPerSec();
    host["attributed_ns"] = hp.attributedNs();
    host["attributed_fraction"] = hp.attributedFraction();
    host["unattributed_ns"] = hp.unattributedNs();
    host["obs_ns"] = hp.obsNs();
    host["obs_fraction"] = hp.obsFraction();
    obs::json::Value self = obs::json::Value::object();
    for (const auto &b : hp.buckets)
        self[b.name()] = b.selfNs;
    host["self_ns"] = std::move(self);
    v["host"] = std::move(host);
    return v;
}

std::optional<obs::HostProfile>
hostProfileFromJson(const obs::json::Value &v)
{
    const obs::json::Value *counts = v.find("counts");
    const obs::json::Value *host = v.find("host");
    if (!counts || !host ||
        counts->kind() != obs::json::Value::Kind::Object ||
        host->kind() != obs::json::Value::Kind::Object)
        return std::nullopt;
    const obs::json::Value *self = host->find("self_ns");
    if (!self || self->kind() != obs::json::Value::Kind::Object)
        return std::nullopt;

    obs::HostProfile hp;
    hp.enabled = true;
    if (const auto *ev = v.find("events"))
        hp.events = std::uint64_t(ev->asNumber());
    hp.wallNs = std::uint64_t(
        host->find("wall_ns") ? host->find("wall_ns")->asNumber() : 0.0);
    hp.dispatchNs = std::uint64_t(
        host->find("dispatch_ns") ? host->find("dispatch_ns")->asNumber()
                                  : 0.0);

    for (const auto &[name, count] : counts->members()) {
        const auto semi = name.find(';');
        if (semi == std::string::npos)
            return std::nullopt;
        obs::HostProfile::Bucket b;
        b.component = name.substr(0, semi);
        b.event = name.substr(semi + 1);
        b.count = std::uint64_t(count.asNumber());
        if (const auto *ns = self->find(name))
            b.selfNs = std::uint64_t(ns->asNumber());
        hp.buckets.push_back(std::move(b));
    }
    std::sort(hp.buckets.begin(), hp.buckets.end(),
              [](const obs::HostProfile::Bucket &a,
                 const obs::HostProfile::Bucket &b) {
                  return a.component != b.component
                             ? a.component < b.component
                             : a.event < b.event;
              });
    return hp;
}

obs::json::Value
runReportJson(const std::string &label, const SystemConfig &config,
              const RunResult &result, const obs::Sampler *sampler)
{
    obs::json::Value v = obs::json::Value::object();
    v["label"] = label;
    v["config"] = configJson(config);

    obs::json::Value r = obs::json::Value::object();
    r["cycles"] = std::uint64_t(result.cycles);
    obs::json::Value pages = obs::json::Value::array();
    for (const std::uint64_t n : result.pagesPerDevice)
        pages.push(n);
    r["pagesPerDevice"] = std::move(pages);
    r["cpuShootdowns"] = result.cpuShootdowns;
    r["gpuShootdowns"] = result.gpuShootdowns;
    r["localAccesses"] = result.localAccesses;
    r["remoteAccesses"] = result.remoteAccesses;
    r["localFraction"] = result.localFraction();
    r["pagesMigratedFromCpu"] = result.pagesMigratedFromCpu;
    r["pagesMigratedInterGpu"] = result.pagesMigratedInterGpu;
    v["result"] = std::move(r);

    // Chaos accounting: emitted unconditionally (all zeros when
    // injection is off) so report consumers can rely on the shape.
    obs::json::Value chaos = obs::json::Value::object();
    chaos["injected"] = result.chaosInjected;
    chaos["retries"] = result.chaosRetries;
    chaos["fallbacks"] = result.chaosFallbacks;
    chaos["recovery_cycles"] = result.chaosRecoveryCycles;
    chaos["audit_violations"] = result.auditViolations;
    v["chaos"] = std::move(chaos);

    obs::json::Value counters = obs::json::Value::object();
    for (const auto &[name, value] : result.stats.all())
        counters[name] = value;
    v["counters"] = std::move(counters);

    obs::json::Value hists = obs::json::Value::object();
    hists["faultLatency"] = histogramJson(result.latency.faultLatency);
    hists["cpuMigrationLatency"] =
        histogramJson(result.latency.cpuMigrationLatency);
    hists["interGpuMigrationLatency"] =
        histogramJson(result.latency.interGpuMigrationLatency);
    hists["remoteAccessLatency"] =
        histogramJson(result.latency.remoteAccessLatency);
    v["histograms"] = std::move(hists);

    // Critical-path decomposition: one entry per span-model stage,
    // whose sums partition the end-to-end total exactly.
    const obs::CriticalPath &cp = result.faultBreakdown;
    obs::json::Value fb = obs::json::Value::object();
    fb["faults"] = cp.faults();
    fb["orphans"] = result.faultSpansOpen;
    fb["total"] = histogramJson(cp.total());
    obs::json::Value stages = obs::json::Value::object();
    for (unsigned s = 0; s < obs::numStages; ++s) {
        const auto stage = obs::Stage(s);
        obs::json::Value sv = histogramJson(cp.stageHistogram(stage));
        sv["sum"] = cp.stageSum(stage);
        sv["share"] = cp.share(stage);
        stages[obs::stageName(stage)] = std::move(sv);
    }
    fb["stages"] = std::move(stages);
    v["fault_breakdown"] = std::move(fb);

    // Telemetry sections are emitted only when their recorder ran, so
    // reports from `--page-stats`-off runs keep their exact old shape.
    if (result.pageStats.enabled)
        v["page_stats"] = pageStatsJson(result.pageStats);
    if (result.timeseries.tick > 0)
        v["timeseries"] = timeseriesJson(result.timeseries);
    if (result.hostProfile.enabled)
        v["host_profile"] = hostProfileJson(result.hostProfile);

    if (sampler) {
        obs::json::Value s = obs::json::Value::object();
        s["period"] = std::uint64_t(sampler->period());
        obs::json::Value cols = obs::json::Value::array();
        cols.push("tick");
        for (const auto &c : sampler->columns())
            cols.push(c);
        s["columns"] = std::move(cols);
        obs::json::Value rows = obs::json::Value::array();
        for (const auto &row : sampler->rows()) {
            obs::json::Value jr = obs::json::Value::array();
            jr.push(std::uint64_t(row.tick));
            for (const double val : row.values)
                jr.push(val);
            rows.push(std::move(jr));
        }
        s["rows"] = std::move(rows);
        v["samples"] = std::move(s);
    }

    return v;
}

obs::json::Value
reportDocument(obs::json::Value runs)
{
    obs::json::Value doc = obs::json::Value::object();
    doc["schema_version"] = reportSchemaVersion;
    doc["runs"] = std::move(runs);
    return doc;
}

std::string
asciiBar(double value, double max_value, int width)
{
    if (max_value <= 0.0)
        max_value = 1.0;
    const int filled = int(std::round(
        std::clamp(value / max_value, 0.0, 1.0) * width));
    std::string bar = "|";
    bar += std::string(filled, '#');
    bar += std::string(width - filled, '-');
    bar += "|";
    return bar;
}

} // namespace griffin::sys
