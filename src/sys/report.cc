#include "src/sys/report.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace griffin::sys {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double v : values) {
        assert(v > 0.0 && "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

Table::Table(std::vector<std::string> header) : _header(std::move(header))
{
    assert(!_header.empty());
}

void
Table::addRow(std::vector<std::string> row)
{
    row.resize(_header.size());
    _rows.push_back(std::move(row));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(_header.size());
    for (std::size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(int(widths[c]) + 2) << cells[c];
        }
        os << "\n";
    };
    emit(_header);
    std::string rule;
    for (std::size_t c = 0; c < _header.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << "\n";
    for (const auto &row : _rows)
        emit(row);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    emit(_header);
    for (const auto &row : _rows)
        emit(row);
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    os << str();
}

std::string
asciiBar(double value, double max_value, int width)
{
    if (max_value <= 0.0)
        max_value = 1.0;
    const int filled = int(std::round(
        std::clamp(value / max_value, 0.0, 1.0) * width));
    std::string bar = "|";
    bar += std::string(filled, '#');
    bar += std::string(width - filled, '-');
    bar += "|";
    return bar;
}

} // namespace griffin::sys
