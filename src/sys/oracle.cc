#include "src/sys/oracle.hh"

#include <algorithm>
#include <cstddef>
#include <exception>
#include <sstream>
#include <utility>

#include "src/obs/span.hh"
#include "src/sys/report.hh"
#include "src/sys/sweep_runner.hh"
#include "src/workloads/workload.hh"

namespace griffin::sys {

namespace {

/** Locate the first differing byte of two report dumps. */
std::string
firstDifference(const std::string &a, const std::string &b)
{
    std::size_t i = 0;
    const std::size_t n = std::min(a.size(), b.size());
    while (i < n && a[i] == b[i])
        ++i;
    const auto excerpt = [i](const std::string &s) {
        const std::size_t from = i >= 40 ? i - 40 : 0;
        return s.substr(from, std::min<std::size_t>(80, s.size() - from));
    };
    std::ostringstream os;
    os << "first divergence at byte " << i << ": \"" << excerpt(a)
       << "\" vs \"" << excerpt(b) << "\"";
    return os.str();
}

} // namespace

std::vector<OracleFinding>
checkRunInvariants(const RunResult &result, const SystemConfig &config)
{
    std::vector<OracleFinding> findings;
    const auto add = [&findings](const char *oracle, std::string detail) {
        findings.push_back({oracle, std::move(detail)});
    };
    const auto expectEq = [&add](const char *oracle, const char *what,
                                 double got, double want) {
        if (got != want) {
            std::ostringstream os;
            os << what << ": got " << got << ", want " << want;
            add(oracle, os.str());
        }
    };

    // Residency conservation: the per-device residency counts must
    // sum to the page population — a page mapped on two devices (or
    // none) breaks the sum.
    std::uint64_t resident = 0;
    for (std::uint64_t n : result.pagesPerDevice)
        resident += n;
    expectEq("residency-conservation",
             "sum(pagesPerDevice) vs pageTable.totalPages",
             double(resident), result.stats.get("pageTable.totalPages"));

    // The system's own auditor covers the pointwise invariants
    // (pin/fallback exclusivity, TLB staleness): it must be silent.
    if (result.auditViolations != 0)
        add("invariant-audit",
            std::to_string(result.auditViolations) +
                " violations logged by the invariant auditor");

    // Fault-span partition: stage durations partition each fault's
    // end-to-end latency, so the per-stage sums must reproduce the
    // total sum exactly (integer-valued doubles — no tolerance).
    double stageSum = 0.0;
    for (unsigned s = 0; s < obs::numStages; ++s)
        stageSum += result.faultBreakdown.stageSum(obs::Stage(s));
    expectEq("span-partition", "sum(stage sums) vs total latency sum",
             stageSum, result.faultBreakdown.total().sum());
    expectEq("span-partition", "total histogram count vs faults folded",
             double(result.faultBreakdown.total().count()),
             double(result.faultBreakdown.faults()));

    if (result.faultSpansOpen != 0)
        add("span-orphans", std::to_string(result.faultSpansOpen) +
                                " fault spans never completed");

    // Every workload issues memory transactions; a run that recorded
    // none lost its accounting somewhere.
    if (result.localAccesses + result.remoteAccesses == 0)
        add("access-accounting", "run recorded zero memory accesses");

    // Time-series reconciliation: interval rows must sum to the
    // series totals, and the totals must agree with the independently
    // counted run aggregates (the recorder instruments the exact
    // statements that bump those counters).
    if (config.timeseriesTick > 0) {
        const auto &ts = result.timeseries;
        using Series = obs::TimeSeries::Series;
        expectEq("timeseries-reconciliation", "summary tick vs config",
                 double(ts.tick), double(config.timeseriesTick));
        std::array<std::uint64_t, obs::TimeSeries::numSeries> rowSums{};
        for (const auto &row : ts.rows)
            for (unsigned s = 0; s < obs::TimeSeries::numSeries; ++s)
                rowSums[s] += row.counts[s];
        const char *names[] = {"migrations", "dca_accesses",
                               "shootdowns", "faults"};
        for (unsigned s = 0; s < obs::TimeSeries::numSeries; ++s) {
            expectEq("timeseries-reconciliation",
                     (std::string("row sum vs total for ") + names[s])
                         .c_str(),
                     double(rowSums[s]), double(ts.totals[s]));
        }
        expectEq("timeseries-reconciliation",
                 "migrations total vs pageTable.migrations",
                 double(ts.totals[unsigned(Series::Migrations)]),
                 result.stats.get("pageTable.migrations"));
        expectEq("timeseries-reconciliation",
                 "dca total vs remoteAccesses",
                 double(ts.totals[unsigned(Series::DcaAccesses)]),
                 double(result.remoteAccesses));
        expectEq("timeseries-reconciliation",
                 "shootdown total vs cpu+gpu shootdowns",
                 double(ts.totals[unsigned(Series::Shootdowns)]),
                 double(result.cpuShootdowns + result.gpuShootdowns));
        expectEq("timeseries-reconciliation",
                 "fault total vs faultLatency count",
                 double(ts.totals[unsigned(Series::Faults)]),
                 double(result.latency.faultLatency.count()));
    } else if (result.timeseries.tick != 0) {
        add("timeseries-reconciliation",
            "recorder was off but the summary carries a tick");
    }

    // Page-lifecycle reconciliation: the digest's commit count is
    // instrumented at the same site as the page table's counter.
    if (config.pageStats.enabled) {
        if (!result.pageStats.enabled) {
            add("pagestats-reconciliation",
                "recorder was on but the summary says off");
        } else {
            expectEq("pagestats-reconciliation",
                     "totalMigrations vs pageTable.migrations",
                     double(result.pageStats.totalMigrations),
                     result.stats.get("pageTable.migrations"));
        }
    } else if (result.pageStats.enabled) {
        add("pagestats-reconciliation",
            "recorder was off but the summary says on");
    }

    // Chaos accounting: with injection off every counter is zero;
    // with it on, the total equals the per-class sum by definition.
    if (!config.chaos.enabled()) {
        if (result.chaosInjected || result.chaosRetries ||
            result.chaosFallbacks || result.chaosRecoveryCycles) {
            std::ostringstream os;
            os << "chaos off but counters nonzero: injected="
               << result.chaosInjected << " retries="
               << result.chaosRetries << " fallbacks="
               << result.chaosFallbacks << " recoveryCycles="
               << result.chaosRecoveryCycles;
            add("chaos-accounting", os.str());
        }
    } else {
        const double perClass = result.stats.get("chaos.linkFaults") +
                                result.stats.get("chaos.linkDegrades") +
                                result.stats.get("chaos.dmaFaults") +
                                result.stats.get("chaos.acksLost") +
                                result.stats.get("chaos.walkerStalls");
        expectEq("chaos-accounting", "injected vs per-class sum",
                 double(result.chaosInjected), perClass);
    }

    return findings;
}

std::vector<OracleFinding>
checkSystemQuiesced(MultiGpuSystem &system)
{
    std::vector<OracleFinding> findings;
    auto &queue = system.engine().queue();
    if (!queue.empty())
        findings.push_back(
            {"quiesced", "event queue holds " +
                             std::to_string(queue.size()) +
                             " events after the run"});
    if (queue.pendingTimeouts() != 0)
        findings.push_back(
            {"quiesced", std::to_string(queue.pendingTimeouts()) +
                             " timeouts still armed after the run"});
    if (system.watchdog().hasOutstandingWork())
        findings.push_back(
            {"quiesced", "watchdog probes nonzero after the run:\n" +
                             system.watchdog().snapshot()});
    return findings;
}

namespace {

/** One serial execution of a scenario, with its report snapshot. */
struct SerialRun
{
    bool ran = false;
    std::string error;
    RunResult result;
    std::string reportDump;
    std::vector<OracleFinding> quiesced;
};

SerialRun
runScenarioOnce(const Scenario &scenario, bool referenceQueue)
{
    SerialRun out;
    auto workload =
        wl::makeWorkload(scenario.workload, scenario.workloadConfig);
    if (!workload) {
        out.error = "unknown workload " + scenario.workload;
        return out;
    }
    SystemConfig cfg = scenario.config;
    cfg.useReferenceQueue = referenceQueue;
    try {
        MultiGpuSystem system(cfg);
        out.result = system.run(*workload);
        out.quiesced = checkSystemQuiesced(system);
        out.ran = true;
    } catch (const std::exception &e) {
        out.error = e.what();
        return out;
    }
    // The report is rendered from the scenario's own config: the
    // reference-queue flag is excluded from configJson() precisely so
    // the two modes stay byte-comparable.
    out.reportDump =
        runReportJson(scenario.label(), scenario.config, out.result)
            .dump(2);
    return out;
}

} // namespace

std::vector<ScenarioVerdict>
runFuzzBatch(const std::vector<Scenario> &scenarios,
             const FuzzOptions &options)
{
    std::vector<ScenarioVerdict> verdicts(scenarios.size());
    std::vector<SerialRun> serial(scenarios.size());

    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        ScenarioVerdict &v = verdicts[i];
        v.scenario = scenarios[i];
        serial[i] = runScenarioOnce(scenarios[i], false);
        if (!serial[i].ran) {
            v.findings.push_back({"run-completed", serial[i].error});
            continue;
        }
        v.ran = true;
        v.result = serial[i].result;
        auto found =
            checkRunInvariants(serial[i].result, scenarios[i].config);
        v.findings.insert(v.findings.end(), found.begin(), found.end());
        v.findings.insert(v.findings.end(), serial[i].quiesced.begin(),
                          serial[i].quiesced.end());
    }

    if (!options.differential)
        return verdicts;

    // Reference-scheduler differential: the same scenario on the
    // naive heap must produce the same report bytes.
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        if (!serial[i].ran)
            continue;
        const SerialRun ref = runScenarioOnce(scenarios[i], true);
        if (!ref.ran) {
            verdicts[i].findings.push_back(
                {"determinism-ref",
                 "reference-queue run failed: " + ref.error});
        } else if (ref.reportDump != serial[i].reportDump) {
            verdicts[i].findings.push_back(
                {"determinism-ref",
                 "report bytes diverge between the tiered and "
                 "reference schedulers; " +
                     firstDifference(serial[i].reportDump,
                                     ref.reportDump)});
        }
    }

    // Parallel differential: the whole batch re-runs under a worker
    // pool; every run's report must match its serial twin.
    if (options.jobs > 1) {
        SweepRunner runner(options.jobs);
        std::vector<std::size_t> submitted;
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            if (!serial[i].ran)
                continue;
            SweepJob job;
            job.label = scenarios[i].label();
            job.config = scenarios[i].config;
            job.makeWorkload = [name = scenarios[i].workload,
                                wcfg = scenarios[i].workloadConfig] {
                return wl::makeWorkload(name, wcfg);
            };
            runner.submit(std::move(job));
            submitted.push_back(i);
        }
        try {
            const std::vector<RunResult> results = runner.run();
            for (std::size_t k = 0; k < submitted.size(); ++k) {
                const std::size_t i = submitted[k];
                const std::string dump =
                    runReportJson(scenarios[i].label(),
                                  scenarios[i].config, results[k])
                        .dump(2);
                if (dump != serial[i].reportDump) {
                    verdicts[i].findings.push_back(
                        {"determinism-jobs",
                         "report bytes diverge between --jobs=1 and "
                         "--jobs=" + std::to_string(options.jobs) +
                             "; " +
                             firstDifference(serial[i].reportDump,
                                             dump)});
                }
            }
        } catch (const std::exception &e) {
            // The serial pass was clean, so a parallel-only failure
            // is itself a determinism violation; without per-job
            // attribution it lands on every submitted scenario.
            for (std::size_t i : submitted)
                verdicts[i].findings.push_back(
                    {"determinism-jobs",
                     std::string("parallel sweep threw: ") + e.what()});
        }
    }

    return verdicts;
}

} // namespace griffin::sys
