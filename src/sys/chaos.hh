/**
 * @file
 * Deterministic fault injection for the whole system.
 *
 * A ChaosConfig names the fault classes to inject (as per-decision
 * probabilities) and the recovery parameters the components use to
 * survive them; a FaultInjector turns the config into a stream of
 * injection decisions. Determinism rules:
 *
 *  - the injector owns its own Rng substreams, split per fault class
 *    from ChaosConfig::seed — enabling injection (or changing one
 *    class's rate) never perturbs workload traces or any other
 *    component's random stream;
 *  - each simulation owns one injector (built by MultiGpuSystem from
 *    SystemConfig::chaos), so parallel sweeps stay byte-identical for
 *    any --jobs count;
 *  - decisions are consumed in event order inside one single-threaded
 *    simulation, so the same seed yields the same fault schedule.
 *
 * Injection points and the recovery machinery they exercise:
 *
 *  - interconnect: per-message NACK/drop with bounded retransmission
 *    (the wire is re-occupied per attempt), and temporary bandwidth-
 *    degradation windows on the sending link;
 *  - gpu/pmc: DMA transfer failures, retried with exponential backoff
 *    and bounded attempts; exhausted transfers are abandoned and the
 *    arming side's migration timeout takes over;
 *  - driver: a per-migration timeout that aborts the migration,
 *    unpins the page and degrades it to DCA remote access for the
 *    rest of the run (PageInfo::dcaFallback);
 *  - core/acud: lost TLB-shootdown ACKs, re-issued after a timeout;
 *    plus a per-batch timeout that aborts abandoned inter-GPU
 *    transfers and replays the parked translations;
 *  - xlat/iommu: page-table-walker stalls (a fixed extra walk
 *    latency).
 *
 * All injections and recoveries are counted here (run reports emit
 * them under "chaos") and traced under the obs::CatChaos category.
 */

#ifndef GRIFFIN_SYS_CHAOS_HH
#define GRIFFIN_SYS_CHAOS_HH

#include <cstdint>
#include <optional>
#include <string>

#include "src/sim/rng.hh"
#include "src/sim/types.hh"

namespace griffin::sys {

/**
 * Fault rates and recovery tunables. All rates default to 0 (off);
 * a default ChaosConfig therefore leaves every simulation untouched.
 */
struct ChaosConfig
{
    /** @name Injection rates (probability per decision point) @{ */

    /** Per fabric message: NACKed at the switch, retransmitted. */
    double linkFaultRate = 0.0;
    /** Per fabric message: opens a degradation window on its link. */
    double linkDegradeRate = 0.0;
    /** Per DMA attempt: the page transfer fails mid-stream. */
    double dmaFaultRate = 0.0;
    /** Per shootdown episode: the completion ACK is lost. */
    double shootdownAckLossRate = 0.0;
    /** Per page-table walk: the walker stalls. */
    double walkerStallRate = 0.0;

    /** @} */
    /** @name Recovery tunables @{ */

    /** Sender-side delay before retransmitting a NACKed message. */
    Tick linkRetryDelay = 500;
    /** Consecutive NACKs of one message before it goes through. */
    unsigned linkMaxRetries = 8;
    /** Length of one bandwidth-degradation window. */
    Tick linkDegradeDuration = 20000;
    /** Bandwidth multiplier while a window is open (0 < f <= 1). */
    double linkDegradeFactor = 0.25;
    /** DMA retry attempts after the first failure; then abandon. */
    unsigned dmaMaxRetries = 4;
    /** First DMA retry backoff; doubles per subsequent attempt. */
    Tick dmaRetryBackoff = 1000;
    /**
     * Per-migration timeout armed by the driver (CPU->GPU) and the
     * executor (inter-GPU). On expiry the migration is aborted: the
     * page is unpinned, unblocked, and — for CPU-resident pages —
     * degraded to DCA remote access for the rest of the run.
     * 0 disables the timeout (abandoned transfers then surface as a
     * watchdog diagnostic instead of a recovery).
     */
    Tick migrationTimeout = 2000000;
    /** ACUD waits this long for a shootdown ACK before re-issuing. */
    Tick shootdownAckTimeout = 5000;
    /** Bound on shootdown re-issues per episode. */
    unsigned shootdownMaxReissues = 8;
    /** Extra walk latency when a walker stall is injected. */
    Tick walkerStallPenalty = 2000;
    /**
     * Period of the invariant auditor while chaos is enabled
     * (0 = audit only once, at the end of the run).
     */
    Tick auditPeriod = 50000;

    /** @} */

    /** Seed of the injector's private Rng substreams. */
    std::uint64_t seed = 1;

    /** True when any fault class can fire. */
    bool
    enabled() const
    {
        return linkFaultRate > 0.0 || linkDegradeRate > 0.0 ||
               dmaFaultRate > 0.0 || shootdownAckLossRate > 0.0 ||
               walkerStallRate > 0.0;
    }

    /**
     * Parse a --chaos=SPEC string. Two forms:
     *
     *  - a bare probability ("0.01"): every injection rate is set to
     *    that value;
     *  - a comma-separated key=value list. Rate keys: link, degrade,
     *    dma, ack, walker. Tunable keys: retrydelay, maxnacks,
     *    window, factor, retries, backoff, timeout, ackto, reissues,
     *    stall, audit.
     *
     * @return nullopt on a malformed spec (unknown key, bad number,
     *         rate outside [0, 1]).
     */
    static std::optional<ChaosConfig> parse(const std::string &spec);
};

/**
 * The per-simulation fault source. Components hold a nullable pointer
 * to it; a null injector (the default everywhere) costs one branch
 * per decision point and consumes no randomness.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const ChaosConfig &config);

    const ChaosConfig &config() const { return _config; }

    /** @name Injection decisions (one Rng substream per class) @{ */

    /** Should this fabric message be NACKed (once)? */
    bool dropMessage();
    /** Should this message open a degradation window on its link? */
    bool degradeLink();
    /** Should this DMA attempt fail? */
    bool failDmaTransfer();
    /** Should this shootdown's ACK be lost (once)? */
    bool loseShootdownAck();
    /** Should this page-table walk stall? */
    bool stallWalker();

    /** @} */
    /** @name Recovery accounting (called by the recovering side) @{ */

    /** One recovery re-attempt (retransmit, DMA retry, re-issue). */
    void noteRetry() { ++counters.retries; }
    /** Cycles a recovery added to the affected operation. */
    void noteRecoveryCycles(Tick cycles)
    {
        counters.recoveryCycles += std::uint64_t(cycles);
    }
    /** A migration degraded to DCA remote access. */
    void noteFallback() { ++counters.fallbacks; }
    /** A DMA transfer abandoned after exhausting its retries. */
    void noteDmaAbandoned() { ++counters.dmaAbandoned; }
    /** A migration aborted by its timeout. */
    void noteMigrationTimeout() { ++counters.migrationTimeouts; }

    /** @} */

    /**
     * Everything the run report needs to account for every injected
     * fault: injected = sum of the per-class injection counts;
     * retries/fallbacks/recoveryCycles describe how the system
     * absorbed them.
     */
    struct Counters
    {
        std::uint64_t injected = 0; ///< total faults injected
        std::uint64_t retries = 0;  ///< recovery re-attempts
        std::uint64_t fallbacks = 0; ///< migrations degraded to DCA
        std::uint64_t recoveryCycles = 0; ///< added latency, summed

        /** @name Per-class injection counts (sum == injected) @{ */
        std::uint64_t linkFaults = 0;
        std::uint64_t linkDegrades = 0;
        std::uint64_t dmaFaults = 0;
        std::uint64_t acksLost = 0;
        std::uint64_t walkerStalls = 0;
        /** @} */

        /** @name Recovery outcomes @{ */
        std::uint64_t dmaAbandoned = 0; ///< retry budget exhausted
        std::uint64_t migrationTimeouts = 0; ///< aborted migrations
        /** @} */
    } counters;

  private:
    ChaosConfig _config;
    sim::Rng _linkRng;
    sim::Rng _degradeRng;
    sim::Rng _dmaRng;
    sim::Rng _ackRng;
    sim::Rng _walkerRng;

    bool roll(sim::Rng &rng, double rate, std::uint64_t &classCount);
};

} // namespace griffin::sys

#endif // GRIFFIN_SYS_CHAOS_HH
