/**
 * @file
 * Whole-system configuration. Defaults reproduce paper Table II:
 * 4 AMD MI6-class GPUs (4 SEs x 9 CUs each), PCIe-v4 fabric at
 * 32 GB/s per direction, an IOMMU with 8 page table walkers on the
 * CPU die, and 4 KB pages.
 */

#ifndef GRIFFIN_SYS_SYSTEM_CONFIG_HH
#define GRIFFIN_SYS_SYSTEM_CONFIG_HH

#include <cstdint>

#include "src/core/griffin_config.hh"
#include "src/driver/driver.hh"
#include "src/gpu/gpu.hh"
#include "src/interconnect/switch.hh"
#include "src/mem/cache.hh"
#include "src/mem/dram.hh"
#include "src/obs/pagestats.hh"
#include "src/sim/types.hh"
#include "src/sys/chaos.hh"
#include "src/xlat/iommu.hh"

namespace griffin::sys {

/** Which placement policy the system runs. */
enum class PolicyKind
{
    FirstTouch, ///< the baseline NUMA multi-GPU system
    Griffin,    ///< the paper's proposal
};

/**
 * Everything needed to build a MultiGpuSystem.
 */
struct SystemConfig
{
    unsigned numGpus = 4;
    gpu::GpuConfig gpu{};

    /** PCIe-v4: 32 GB/s per direction at a 1 GHz model clock. */
    ic::LinkConfig link{32.0, 250};

    xlat::IommuConfig iommu{};

    /** CPU-side memory complex (DDR + a slice of CPU LLC). */
    mem::DramConfig cpuDram{4, 120, 16.0, 256};
    mem::CacheConfig cpuL2{8ull * 1024 * 1024, 16, 64, 20};

    /** Fault-path timing shared by both policies. */
    Tick cpuFlushPenalty = 100;

    /**
     * DMA streams each PMC may have in flight at once; 0 = unlimited
     * (timing-identical to a queueless PMC). Bounding it surfaces
     * transfer-queue pressure in the span breakdown and the
     * pmcN.queueDepth probe.
     */
    unsigned pmcMaxConcurrent = 0;

    /** Workgroup dispatch serialization (GPU 1 goes first). */
    Tick dispatchLatency = 4;

    PolicyKind policy = PolicyKind::FirstTouch;
    core::GriffinConfig griffin{};

    /** Watchdog: abort runs that exceed this many cycles. */
    Tick maxTicks = Tick(4) * 1000 * 1000 * 1000;

    /**
     * Fault injection (off by default). When any rate is nonzero the
     * system builds a FaultInjector, arms the recovery timeouts and
     * runs the periodic invariant auditor.
     */
    ChaosConfig chaos{};

    /**
     * Per-page lifecycle telemetry (off by default). When enabled the
     * system builds an obs::PageStats recorder and the run report
     * gains a "page_stats" section; when off, nothing is recorded and
     * report bytes are unchanged.
     */
    obs::PageStatsConfig pageStats{};

    /**
     * Interval time-series width in cycles; 0 = off. When nonzero the
     * system builds an obs::TimeSeries recorder and the run report
     * gains a "timeseries" section.
     */
    Tick timeseriesTick = 0;

    /**
     * Host-side self-profiling (off by default). When enabled the
     * system builds an obs::HostProfiler, every dispatched event's
     * host wall time is attributed per component/event type, and the
     * run report gains a "host_profile" section. Simulated results
     * are unaffected either way.
     */
    bool hostProf = false;

    std::uint64_t seed = 42;

    /**
     * Run the engine on the naive reference scheduler (ref_queue.hh)
     * instead of the tiered event queue. Test-only: differential
     * oracles flip this and demand byte-identical reports, so it is
     * deliberately excluded from configJson().
     */
    bool useReferenceQueue = false;

    /** Total devices including the CPU. */
    unsigned numDevices() const { return numGpus + 1; }

    /** The paper's baseline configuration (Table II, first-touch). */
    static SystemConfig baseline();

    /** The paper's Griffin configuration (Tables I + II). */
    static SystemConfig griffinDefault();

    /**
     * The Figure 13 variant: an NVLink-class fabric with 8x the
     * bandwidth and lower latency.
     */
    SystemConfig &withHighBandwidthFabric();
};

} // namespace griffin::sys

#endif // GRIFFIN_SYS_SYSTEM_CONFIG_HH
