#include "src/sys/system_config.hh"

namespace griffin::sys {

SystemConfig
SystemConfig::baseline()
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::FirstTouch;
    return cfg;
}

SystemConfig
SystemConfig::griffinDefault()
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::Griffin;
    // Paper Table I was "experimentally determined to be the best set
    // of parameters for our current multi-GPU configuration". Our
    // configuration compresses time (scaled footprints => kernels are
    // tens of collection periods long instead of thousands), so the
    // filter must react faster and the streaming rate floor must sit
    // lower; these values were tuned the same way the paper's were
    // (see bench/abl_alpha_sweep and bench/abl_thresholds).
    cfg.griffin.alpha = 0.25;
    cfg.griffin.lambdaT = 0.002;
    return cfg;
}

SystemConfig &
SystemConfig::withHighBandwidthFabric()
{
    link.bytesPerCycle = 256.0; // 256 GB/s per direction
    link.latency = 100;
    return *this;
}

} // namespace griffin::sys
