/**
 * @file
 * RFC-4180 CSV field quoting, shared by every CSV writer (Table::csv
 * and the griffin-pages / griffin-compare / griffin-prof CLIs). Sweep
 * labels routinely embed the flag syntax that produced them (e.g.
 * "fabric=a,b"), so unquoted emission would silently shift columns.
 */

#ifndef GRIFFIN_SYS_CSV_HH
#define GRIFFIN_SYS_CSV_HH

#include <string>

namespace griffin::sys {

/**
 * Quote @p field for a CSV cell if (and only if) it needs it: fields
 * containing a comma, a double quote, or a line break are wrapped in
 * double quotes with embedded quotes doubled (RFC 4180 §2.5–2.7).
 * Anything else passes through unchanged, so existing plain-value
 * output keeps its exact bytes.
 */
inline std::string
csvEscape(const std::string &field)
{
    const bool needs_quoting =
        field.find_first_of(",\"\r\n") != std::string::npos;
    if (!needs_quoting)
        return field;
    std::string out;
    out.reserve(field.size() + 2);
    out += '"';
    for (const char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace griffin::sys

#endif // GRIFFIN_SYS_CSV_HH
