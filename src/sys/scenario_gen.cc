#include "src/sys/scenario_gen.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/sim/rng.hh"

namespace griffin::sys {

namespace {

/**
 * The scale divisor all fuzz scenarios are built around. Fuzzing
 * trades footprint for seed count: one scenario must run in well
 * under a second so a 200-seed sweep (times three runs per seed for
 * the differential oracles) stays CI-sized.
 */
constexpr unsigned fuzzScaleDiv = 256;

/**
 * Substream seed for knob @p idx of scenario @p seed: a splitmix64
 * finalizer over (seed, idx), so adjacent seeds and adjacent knobs
 * land in unrelated parts of the sequence. Each knob owning its own
 * substream is what makes pinning one knob leave the others' draws
 * untouched.
 */
std::uint64_t
knobStream(std::uint64_t seed, std::uint64_t idx)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (idx + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

template <typename T, std::size_t N>
T
pick(sim::Rng &rng, const T (&choices)[N])
{
    return choices[rng.nextBelow(N)];
}

struct Knob
{
    const char *name;
    void (*apply)(Scenario &, sim::Rng &);
};

/**
 * The knob table. Order is the generation (and shrink) order; every
 * range is valid by construction — the system and workloads accept
 * any combination without further checks. Defaults (what a pinned
 * knob keeps) are the baseline system running MT at the fuzz scale
 * with chaos and telemetry off.
 */
const Knob knobTable[] = {
    {"workload",
     [](Scenario &s, sim::Rng &rng) {
         static const std::vector<std::string> names =
             wl::workloadNames();
         s.workload = names[rng.nextBelow(names.size())];
     }},
    {"scale",
     [](Scenario &s, sim::Rng &rng) {
         const unsigned divs[] = {128, 192, 256, 384, 512};
         s.workloadConfig.scaleDiv = pick(rng, divs);
     }},
    {"wlseed",
     [](Scenario &s, sim::Rng &rng) {
         s.workloadConfig.seed = rng.nextRange(1, 1000000);
     }},
    {"sysseed",
     [](Scenario &s, sim::Rng &rng) {
         s.config.seed = rng.nextRange(1, 1000000);
     }},
    {"policy",
     [](Scenario &s, sim::Rng &rng) {
         if (rng.chance(0.5)) {
             // Start from the tuned Griffin defaults (see
             // SystemConfig::griffinDefault); the "griffin" knob may
             // then perturb individual hyperparameters.
             s.config.policy = PolicyKind::Griffin;
             s.config.griffin.alpha = 0.25;
             s.config.griffin.lambdaT = 0.002;
         }
     }},
    {"gpus",
     [](Scenario &s, sim::Rng &rng) {
         const unsigned counts[] = {1, 2, 4, 8};
         unsigned n = pick(rng, counts);
         // Griffin's DPC classifies pages across GPUs and requires at
         // least two of them; round a single-GPU draw up rather than
         // rejecting (valid by construction, no retry loop).
         if (s.config.policy == PolicyKind::Griffin && n < 2)
             n = 2;
         s.config.numGpus = n;
     }},
    {"pagesize",
     [](Scenario &s, sim::Rng &rng) {
         const unsigned shifts[] = {12, 13, 14};
         s.config.gpu.pageShift = pick(rng, shifts);
     }},
    {"fabric",
     [](Scenario &s, sim::Rng &rng) {
         const double bpc[] = {8.0, 16.0, 32.0, 64.0, 256.0};
         s.config.link.bytesPerCycle = pick(rng, bpc);
         s.config.link.latency = Tick(rng.nextRange(100, 400));
     }},
    {"walkers",
     [](Scenario &s, sim::Rng &rng) {
         const unsigned walkers[] = {1, 2, 4, 8, 16};
         s.config.iommu.numWalkers = pick(rng, walkers);
     }},
    {"pmc",
     [](Scenario &s, sim::Rng &rng) {
         const unsigned bounds[] = {0, 1, 2, 4};
         s.config.pmcMaxConcurrent = pick(rng, bounds);
     }},
    {"dispatch",
     [](Scenario &s, sim::Rng &rng) {
         s.config.dispatchLatency = Tick(rng.nextRange(1, 16));
     }},
    {"flush",
     [](Scenario &s, sim::Rng &rng) {
         s.config.cpuFlushPenalty = Tick(rng.nextRange(50, 200));
     }},
    {"griffin",
     [](Scenario &s, sim::Rng &rng) {
         if (s.config.policy != PolicyKind::Griffin)
             return;
         auto &g = s.config.griffin;
         const unsigned ptws[] = {2, 4, 8, 16};
         g.nPtw = pick(rng, ptws);
         const Tick tacs[] = {500, 1000, 2000};
         g.tAc = pick(rng, tacs);
         g.alpha = 0.05 + rng.nextDouble() * 0.45;
         const unsigned caps[] = {16, 48, 96};
         g.maxPagesPerPeriod = pick(rng, caps);
         const unsigned intervals[] = {4, 8, 12};
         g.migrationInterval = pick(rng, intervals);
         const Tick windows[] = {500, 2000, 4000};
         g.faultBatchWindow = pick(rng, windows);
         g.enableDftm = rng.chance(0.75);
         g.enableInterGpuMigration = rng.chance(0.75);
         g.useAcud = rng.chance(0.75);
         g.enablePredictiveMigration = rng.chance(0.25);
     }},
    {"chaos",
     [](Scenario &s, sim::Rng &rng) {
         if (rng.chance(0.4))
             return; // chaos stays off
         auto &c = s.config.chaos;
         c.seed = rng.next() | 1;
         if (rng.chance(0.7))
             c.linkFaultRate = rng.nextDouble() * 0.02;
         if (rng.chance(0.5))
             c.linkDegradeRate = rng.nextDouble() * 0.01;
         if (rng.chance(0.7))
             c.dmaFaultRate = rng.nextDouble() * 0.2;
         if (rng.chance(0.5))
             c.shootdownAckLossRate = rng.nextDouble() * 0.15;
         if (rng.chance(0.5))
             c.walkerStallRate = rng.nextDouble() * 0.05;
         c.migrationTimeout = rng.chance(0.5) ? 500000 : 2000000;
         // Every rate drawing zero is fine: ChaosConfig::enabled()
         // then reports false and the layer stays inert.
     }},
    {"telemetry",
     [](Scenario &s, sim::Rng &rng) {
         s.config.pageStats.enabled = rng.chance(0.5);
         const Tick ticks[] = {0, 0, 20000, 50000};
         s.config.timeseriesTick = pick(rng, ticks);
     }},
};

constexpr std::size_t numKnobs = sizeof(knobTable) / sizeof(knobTable[0]);

} // namespace

std::string
Scenario::label() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "fuzz/0x%016llx",
                  static_cast<unsigned long long>(seed));
    return buf;
}

std::string
Scenario::describe() const
{
    std::ostringstream os;
    os << "workload=" << workload
       << " scale=" << workloadConfig.scaleDiv
       << " wlseed=" << workloadConfig.seed
       << " sysseed=" << config.seed
       << " policy="
       << (config.policy == PolicyKind::Griffin ? "griffin"
                                                : "first-touch")
       << " gpus=" << config.numGpus
       << " pageShift=" << config.gpu.pageShift
       << " link=" << config.link.bytesPerCycle << "B/c,"
       << config.link.latency << "t"
       << " walkers=" << config.iommu.numWalkers
       << " pmc=" << config.pmcMaxConcurrent
       << " dispatch=" << config.dispatchLatency
       << " flush=" << config.cpuFlushPenalty;
    if (config.policy == PolicyKind::Griffin) {
        const auto &g = config.griffin;
        os << " griffin{nPtw=" << g.nPtw << ",tAc=" << g.tAc
           << ",alpha=" << g.alpha << ",cap=" << g.maxPagesPerPeriod
           << ",interval=" << g.migrationInterval
           << ",dftm=" << g.enableDftm
           << ",interGpu=" << g.enableInterGpuMigration
           << ",acud=" << g.useAcud
           << ",predictive=" << g.enablePredictiveMigration << "}";
    }
    if (config.chaos.enabled()) {
        const auto &c = config.chaos;
        os << " chaos{link=" << c.linkFaultRate
           << ",degrade=" << c.linkDegradeRate
           << ",dma=" << c.dmaFaultRate
           << ",ack=" << c.shootdownAckLossRate
           << ",stall=" << c.walkerStallRate
           << ",timeout=" << c.migrationTimeout << "}";
    } else {
        os << " chaos=off";
    }
    os << " pageStats=" << (config.pageStats.enabled ? "on" : "off")
       << " timeseries=" << config.timeseriesTick;
    if (!pinned.empty()) {
        os << " pinned=[";
        for (std::size_t i = 0; i < pinned.size(); ++i)
            os << (i ? "," : "") << pinned[i];
        os << "]";
    }
    return os.str();
}

std::string
Scenario::reproCommand() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "--seed=0x%llx --seeds=1",
                  static_cast<unsigned long long>(seed));
    std::string cmd = std::string("griffin-fuzz ") + buf;
    if (!pinned.empty()) {
        cmd += " --pin=";
        for (std::size_t i = 0; i < pinned.size(); ++i)
            cmd += (i ? "," : "") + pinned[i];
    }
    return cmd;
}

const std::vector<std::string> &
scenarioKnobs()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Knob &k : knobTable)
            v.push_back(k.name);
        return v;
    }();
    return names;
}

bool
isScenarioKnob(const std::string &knob)
{
    const auto &names = scenarioKnobs();
    return std::find(names.begin(), names.end(), knob) != names.end();
}

Scenario
makeScenario(std::uint64_t seed, const std::vector<std::string> &pinned)
{
    Scenario s;
    s.seed = seed;
    s.config = SystemConfig::baseline();
    s.workloadConfig.scaleDiv = fuzzScaleDiv;
    for (const std::string &p : pinned)
        if (isScenarioKnob(p))
            s.pinned.push_back(p);

    for (std::size_t i = 0; i < numKnobs; ++i) {
        const Knob &knob = knobTable[i];
        if (std::find(s.pinned.begin(), s.pinned.end(), knob.name) !=
            s.pinned.end())
            continue;
        sim::Rng rng(knobStream(seed, i));
        knob.apply(s, rng);
    }
    return s;
}

const std::vector<std::uint64_t> &
fuzzCorpusSeeds()
{
    // 16 seeds pinned for coverage of the knob space; see the header
    // for the grow-only policy. tests/integration/fuzz_corpus_test.cc
    // asserts the coverage properties that guided the choice.
    static const std::vector<std::uint64_t> seeds = {
        1,  2,  3,  4,  5,  6,  7,  8,
        9, 10, 11, 12, 13, 14, 15, 16,
    };
    return seeds;
}

} // namespace griffin::sys
