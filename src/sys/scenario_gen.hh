/**
 * @file
 * Seeded scenario generation for fuzzing the whole simulator.
 *
 * A Scenario is a complete, runnable experiment — SystemConfig,
 * workload choice, workload generation parameters, chaos spec — drawn
 * deterministically from a single 64-bit seed. Every knob draws from
 * a valid-by-construction range, so any seed yields a configuration
 * the system accepts; there is no rejection loop and no way for the
 * generator to produce an "invalid" run.
 *
 * Shrinking: each knob draws from its own RNG substream (derived from
 * the seed and the knob's index), so pinning one knob to its default
 * never perturbs what the other knobs draw. A failing seed shrinks by
 * re-running with knobs pinned one at a time, keeping each pin that
 * preserves the failure — the surviving unpinned knobs are the
 * minimal trigger. See tools/griffin_fuzz.cc and DESIGN.md §15.
 */

#ifndef GRIFFIN_SYS_SCENARIO_GEN_HH
#define GRIFFIN_SYS_SCENARIO_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sys/system_config.hh"
#include "src/workloads/workload.hh"

namespace griffin::sys {

/** One generated experiment: everything needed to run and replay it. */
struct Scenario
{
    /** The seed that generated this scenario. */
    std::uint64_t seed = 0;

    /** Table III workload abbreviation ("MT", "BFS", ...). */
    std::string workload = "MT";

    wl::WorkloadConfig workloadConfig{};

    SystemConfig config{};

    /** Knobs held at their defaults instead of drawing (shrinking). */
    std::vector<std::string> pinned;

    /** Report/sweep label, unique per seed: "fuzz/0x<seed>". */
    std::string label() const;

    /** One-line human-readable knob dump for failure reports. */
    std::string describe() const;

    /** One-line griffin-fuzz invocation that replays this scenario. */
    std::string reproCommand() const;
};

/**
 * The shrinkable knob names, in generation order. Each name is
 * accepted by makeScenario()'s @p pinned list and by the fuzz CLI's
 * --pin flag.
 */
const std::vector<std::string> &scenarioKnobs();

/** True when @p knob names an entry of scenarioKnobs(). */
bool isScenarioKnob(const std::string &knob);

/**
 * Draw the scenario for @p seed. Knobs named in @p pinned keep their
 * default value (the baseline system, MT at the fuzz scale, chaos and
 * telemetry off); unknown names in @p pinned are ignored so a repro
 * command survives knob renames. Deterministic: same (seed, pinned)
 * always yields the same scenario.
 */
Scenario makeScenario(std::uint64_t seed,
                      const std::vector<std::string> &pinned = {});

/**
 * The pinned fuzz corpus: 16 seeds chosen to cover both policies,
 * every GPU count, chaos on and off, and the telemetry sections.
 * tests/integration/fuzz_corpus_test.cc runs them under every oracle
 * on every ctest invocation; bench/fuzz_corpus_replay.cc replays them
 * with a per-seed result table. Grow-only: appending a seed is cheap,
 * replacing one silently retires the regression it was pinned for.
 */
const std::vector<std::uint64_t> &fuzzCorpusSeeds();

} // namespace griffin::sys

#endif // GRIFFIN_SYS_SCENARIO_GEN_HH
