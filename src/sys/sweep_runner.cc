#include "src/sys/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/sim/log.hh"

namespace griffin::sys {

SweepRunner::SweepRunner(unsigned workers)
    : _workers(workers == 0 ? defaultWorkers() : workers)
{
}

unsigned
SweepRunner::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::size_t
SweepRunner::submit(SweepJob job)
{
    _jobs.push_back(std::move(job));
    return _jobs.size() - 1;
}

RunResult
SweepRunner::execute(SweepJob &job)
{
    auto workload = job.makeWorkload();
    if (!workload) {
        throw std::runtime_error("sweep job \"" + job.label +
                                 "\": workload factory returned null");
    }
    MultiGpuSystem system(job.config);
    if (job.preRun)
        job.preRun(system);
    const RunResult result = system.run(*workload);
    if (job.postRun)
        job.postRun(system, result);
    return result;
}

std::vector<RunResult>
SweepRunner::run()
{
    std::vector<SweepJob> jobs = std::move(_jobs);
    _jobs.clear();

    const std::size_t n = jobs.size();
    std::vector<RunResult> results(n);

    const unsigned workers =
        unsigned(std::min<std::size_t>(_workers, n));
    if (workers <= 1) {
        // Serial reference path: inline, in submission order, with
        // exceptions propagating directly.
        for (std::size_t i = 0; i < n; ++i) {
            results[i] = execute(jobs[i]);
            if (_progress)
                _progress(i + 1, n);
        }
        return results;
    }

    GLOG(Info, "sweep: " << n << " runs across " << workers
                         << " worker threads");

    // Workers claim indices from a shared counter, so jobs start in
    // submission order and long jobs never starve the pool.
    std::vector<std::exception_ptr> errors(n);
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;
    std::mutex progress_mutex;
    auto workerLoop = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                results[i] = execute(jobs[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            if (_progress) {
                // Serialize the callback so it can render a progress
                // line without its own locking.
                std::lock_guard<std::mutex> lock(progress_mutex);
                _progress(++done, n);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(workerLoop);
    for (std::thread &t : pool)
        t.join();

    // Deterministic error reporting: the earliest-submitted failure
    // wins, exactly as it would have surfaced first in a serial run.
    for (std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

obs::HostProfile
SweepRunner::aggregateHostProfiles(const std::vector<RunResult> &results)
{
    obs::HostProfile total;
    for (const RunResult &r : results) {
        if (r.hostProfile.enabled)
            total.merge(r.hostProfile);
    }
    return total;
}

} // namespace griffin::sys
