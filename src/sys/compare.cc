#include "src/sys/compare.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>

#include "src/obs/span.hh"
#include "src/sys/report.hh"

namespace griffin::sys {

namespace {

/** Relative change in percent; +/-1e9 stands in for "from zero". */
double
deltaPercent(double ref, double cur)
{
    if (ref != 0.0)
        return (cur - ref) / std::fabs(ref) * 100.0;
    if (cur == 0.0)
        return 0.0;
    return cur > 0.0 ? 1e9 : -1e9;
}

/**
 * The "runs" of a report document, keyed by label. A duplicate label
 * is fatal: the comparison would silently match an arbitrary one of
 * the duplicates, so the caller must refuse to produce a verdict.
 */
std::map<std::string, const obs::json::Value *>
runsByLabel(const obs::json::Value &doc, std::vector<std::string> &errors,
            bool &fatal, const char *which)
{
    std::map<std::string, const obs::json::Value *> out;
    const obs::json::Value *runs = &doc;
    if (doc.kind() == obs::json::Value::Kind::Object) {
        if (const obs::json::Value *r = doc.find("runs")) {
            runs = r;
        } else if (doc.find("label")) {
            // A bare single-run object.
            out.emplace(doc.find("label")->asString(), &doc);
            return out;
        }
    }
    if (runs->kind() != obs::json::Value::Kind::Array) {
        errors.push_back(std::string(which) +
                         ": no \"runs\" array in report document");
        return out;
    }
    for (std::size_t i = 0; i < runs->size(); ++i) {
        const obs::json::Value &run = runs->at(i);
        const obs::json::Value *label = run.find("label");
        if (!label) {
            errors.push_back(std::string(which) + ": run " +
                             std::to_string(i) + " has no label");
            continue;
        }
        if (!out.emplace(label->asString(), &run).second) {
            errors.push_back(std::string(which) + ": duplicate run label \"" +
                             label->asString() +
                             "\" — labels must be unique within a report "
                             "(add a config dim to the sweep labels)");
            fatal = true;
        }
    }
    return out;
}

/** Collect every numeric leaf under @p node (samples excluded). */
void
flattenNumbers(const obs::json::Value &node, const std::string &prefix,
               std::vector<std::pair<std::string, double>> &out)
{
    for (const auto &[key, child] : node.members()) {
        if (key == "samples" || key == "label")
            continue;
        // Host-time measurements are nondeterministic by nature; they
        // would swamp the drift table with noise on every run.
        if (prefix == "host_profile" && key == "host")
            continue;
        const std::string path = prefix.empty() ? key : prefix + "." + key;
        switch (child.kind()) {
          case obs::json::Value::Kind::Number:
            out.emplace_back(path, child.asNumber());
            break;
          case obs::json::Value::Kind::Object:
            flattenNumbers(child, path, out);
            break;
          default:
            // Arrays (histogram buckets, pagesPerDevice) are noise at
            // this granularity; the summary stats cover them.
            break;
        }
    }
}

/**
 * The document's schema_version as written (absent field = 1, the
 * pre-versioning shape). Non-object / non-numeric degenerate inputs
 * also read as 1: the runs parser reports those separately.
 */
std::uint64_t
schemaVersionOf(const obs::json::Value &doc)
{
    if (doc.kind() != obs::json::Value::Kind::Object)
        return 1;
    const obs::json::Value *v = doc.find("schema_version");
    if (!v || v->kind() != obs::json::Value::Kind::Number)
        return 1;
    return std::uint64_t(v->asNumber());
}

} // namespace

std::optional<Threshold>
parseThreshold(const std::string &spec)
{
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= spec.size()) {
        return std::nullopt;
    }
    Threshold t;
    t.metric = spec.substr(0, colon);
    std::string bound = spec.substr(colon + 1);
    if (bound.front() == '+') {
        t.direction = +1;
        bound.erase(0, 1);
    } else if (bound.front() == '-') {
        t.direction = -1;
        bound.erase(0, 1);
    }
    if (!bound.empty() && bound.back() == '%')
        bound.pop_back();
    if (bound.empty())
        return std::nullopt;
    char *end = nullptr;
    t.pct = std::strtod(bound.c_str(), &end);
    if (end != bound.c_str() + bound.size() || !(t.pct >= 0.0))
        return std::nullopt;
    return t;
}

std::string
resolveMetricPath(const std::string &metric)
{
    static const std::map<std::string, std::string> aliases = {
        {"cycles", "result.cycles"},
        {"local_fraction", "result.localFraction"},
        {"cpu_shootdowns", "result.cpuShootdowns"},
        {"gpu_shootdowns", "result.gpuShootdowns"},
        {"migrations", "result.pagesMigratedFromCpu"},
        {"fault_mean", "histograms.faultLatency.mean"},
        {"fault_p50", "histograms.faultLatency.p50"},
        {"fault_p95", "histograms.faultLatency.p95"},
        {"fault_p99", "histograms.faultLatency.p99"},
        {"injected", "chaos.injected"},
        {"retries", "chaos.retries"},
        {"fallbacks", "chaos.fallbacks"},
        {"recovery_cycles", "chaos.recovery_cycles"},
        {"audit_violations", "chaos.audit_violations"},
        {"churn", "page_stats.churn_events"},
        {"churn_pages", "page_stats.churn_pages"},
        {"pages_migrated", "page_stats.pages_migrated"},
        {"reuse_mean", "page_stats.reuse_distance.mean"},
        {"reuse_p50", "page_stats.reuse_distance.p50"},
        {"reuse_p95", "page_stats.reuse_distance.p95"},
        {"reuse_p99", "page_stats.reuse_distance.p99"},
        {"peak_migrations", "timeseries.peak.migrations"},
        {"peak_dca_accesses", "timeseries.peak.dca_accesses"},
        {"peak_shootdowns", "timeseries.peak.shootdowns"},
        {"peak_faults", "timeseries.peak.faults"},
        {"host_events_per_sec", "host_profile.host.events_per_sec"},
    };
    if (auto it = aliases.find(metric); it != aliases.end())
        return it->second;

    // Stage metrics: "<stage>_<field>" for every span-model stage.
    static const char *fields[] = {"share", "sum",  "mean",
                                   "p50",   "p95",  "p99"};
    for (unsigned s = 0; s < obs::numStages; ++s) {
        const std::string stage = obs::stageName(obs::Stage(s));
        for (const char *field : fields) {
            if (metric == stage + "_" + field) {
                return "fault_breakdown.stages." + stage + "." + field;
            }
        }
    }
    return metric;
}

std::optional<double>
lookupMetric(const obs::json::Value &run, const std::string &path)
{
    // Descend one dotted segment at a time; counter names contain
    // dots, so a whole remaining path may also be one literal key.
    const auto dot = path.find('.');
    if (dot != std::string::npos) {
        if (const obs::json::Value *child = run.find(path.substr(0, dot))) {
            if (auto v = lookupMetric(*child, path.substr(dot + 1)))
                return v;
        }
    }
    if (const obs::json::Value *child = run.find(path)) {
        if (child->kind() == obs::json::Value::Kind::Number)
            return child->asNumber();
    }
    return std::nullopt;
}

CompareResult
compareReports(const obs::json::Value &ref, const obs::json::Value &cur,
               const std::vector<Threshold> &thresholds)
{
    CompareResult result;

    // A report written by a newer (or older) library may carry
    // sections this comparer does not understand; the numbers it does
    // know still compare fine, so version skew warns instead of
    // failing the gate.
    const auto warn_version = [&result](const obs::json::Value &doc,
                                        const char *which) {
        const std::uint64_t version = schemaVersionOf(doc);
        // Every version so far is additive, so any known version pair
        // (v2 references vs v3 reports, say) diffs cleanly; only a
        // version this build has never heard of merits an advisory.
        if (!knownReportSchemaVersion(version)) {
            result.warnings.push_back(
                std::string(which) + ": report schema_version " +
                std::to_string(version) + " > known " +
                std::to_string(reportSchemaVersion) +
                " — unknown sections are ignored");
        }
    };
    warn_version(ref, "reference");
    warn_version(cur, "current");

    const auto ref_runs =
        runsByLabel(ref, result.errors, result.fatal, "reference");
    const auto cur_runs =
        runsByLabel(cur, result.errors, result.fatal, "current");
    if (!result.errors.empty())
        result.pass = false;
    if (result.fatal)
        return result; // ambiguous labels: no verdict is trustworthy

    for (const auto &[label, cur_run] : cur_runs) {
        (void)cur_run;
        if (!ref_runs.count(label)) {
            result.errors.push_back("run \"" + label +
                                    "\" not in the reference (re-pin the "
                                    "gate references?)");
            result.pass = false;
        }
    }

    for (const auto &[label, ref_run] : ref_runs) {
        auto cit = cur_runs.find(label);
        if (cit == cur_runs.end()) {
            result.errors.push_back("run \"" + label +
                                    "\" missing from the current report");
            result.pass = false;
            continue;
        }
        const obs::json::Value &cur_run = *cit->second;

        for (const Threshold &t : thresholds) {
            CheckResult check;
            check.run = label;
            check.metric = t.metric;
            check.path = resolveMetricPath(t.metric);
            const auto rv = lookupMetric(*ref_run, check.path);
            const auto cv = lookupMetric(cur_run, check.path);
            if (!rv || !cv) {
                check.ok = false;
                check.note = std::string("metric missing from the ") +
                             (!rv ? "reference" : "current") + " report";
            } else if (!std::isfinite(*rv) || !std::isfinite(*cv)) {
                // NaN/inf poisons every comparison below (a NaN delta
                // fails all <= checks with no explanation), so name
                // the culprit instead of producing a nan verdict.
                check.ok = false;
                check.note = std::string("non-finite value in the ") +
                             (!std::isfinite(*rv) ? "reference"
                                                  : "current") +
                             " report";
            } else {
                check.ref = *rv;
                check.cur = *cv;
                check.deltaPct = deltaPercent(*rv, *cv);
                switch (t.direction) {
                  case +1:
                    check.ok = check.deltaPct <= t.pct;
                    break;
                  case -1:
                    check.ok = check.deltaPct >= -t.pct;
                    break;
                  default:
                    check.ok = std::fabs(check.deltaPct) <= t.pct;
                    break;
                }
            }
            // Host-time metrics never hard-fail: wall measurements
            // vary with the machine and its load, so a breach is an
            // advisory even if the spec did not say --warn-on.
            const bool warn_only =
                t.warnOnly ||
                check.path.rfind("host_profile.host.", 0) == 0;
            if (!check.ok && warn_only) {
                check.ok = true;
                check.warnedOnly = true;
                result.warnings.push_back(
                    "warn-only check breached: " + label + " " +
                    t.metric + " — " +
                    (check.note.empty()
                         ? "drifted " + std::to_string(check.deltaPct) +
                               "%"
                         : check.note));
            }
            if (!check.ok)
                result.pass = false;
            result.checks.push_back(std::move(check));
        }

        // Informational drift: every numeric leaf that moved.
        std::vector<std::pair<std::string, double>> ref_leaves, cur_leaves;
        flattenNumbers(*ref_run, "", ref_leaves);
        flattenNumbers(cur_run, "", cur_leaves);
        std::map<std::string, double> cur_map(cur_leaves.begin(),
                                              cur_leaves.end());
        for (const auto &[path, rv] : ref_leaves) {
            auto it = cur_map.find(path);
            if (it == cur_map.end())
                continue;
            // Non-finite leaves are excluded: a NaN delta in the sort
            // comparator below would break strict weak ordering (UB),
            // and the thresholds report non-finite values explicitly.
            if (!std::isfinite(rv) || !std::isfinite(it->second))
                continue;
            const double delta = deltaPercent(rv, it->second);
            if (std::fabs(delta) < 1e-9)
                continue;
            result.drifts.push_back(Drift{label, path, rv, it->second,
                                          delta});
        }
    }

    std::stable_sort(result.drifts.begin(), result.drifts.end(),
                     [](const Drift &a, const Drift &b) {
                         return std::fabs(a.deltaPct) >
                                std::fabs(b.deltaPct);
                     });
    constexpr std::size_t maxDrifts = 50;
    if (result.drifts.size() > maxDrifts)
        result.drifts.resize(maxDrifts);

    return result;
}

obs::json::Value
CompareResult::verdictJson() const
{
    obs::json::Value v = obs::json::Value::object();
    v["status"] = fatal ? "fatal" : pass ? "pass" : "fail";

    obs::json::Value jchecks = obs::json::Value::array();
    for (const CheckResult &c : checks) {
        obs::json::Value jc = obs::json::Value::object();
        jc["run"] = c.run;
        jc["metric"] = c.metric;
        jc["path"] = c.path;
        jc["ok"] = c.ok;
        if (c.warnedOnly)
            jc["warned_only"] = true;
        if (c.note.empty()) {
            jc["ref"] = c.ref;
            jc["cur"] = c.cur;
            jc["deltaPct"] = c.deltaPct;
        } else {
            jc["note"] = c.note;
        }
        jchecks.push(std::move(jc));
    }
    v["checks"] = std::move(jchecks);

    obs::json::Value jdrift = obs::json::Value::array();
    for (const Drift &d : drifts) {
        obs::json::Value jd = obs::json::Value::object();
        jd["run"] = d.run;
        jd["path"] = d.path;
        jd["ref"] = d.ref;
        jd["cur"] = d.cur;
        jd["deltaPct"] = d.deltaPct;
        jdrift.push(std::move(jd));
    }
    v["drift"] = std::move(jdrift);

    obs::json::Value jerrors = obs::json::Value::array();
    for (const std::string &e : errors)
        jerrors.push(e);
    v["errors"] = std::move(jerrors);

    obs::json::Value jwarnings = obs::json::Value::array();
    for (const std::string &w : warnings)
        jwarnings.push(w);
    v["warnings"] = std::move(jwarnings);

    return v;
}

} // namespace griffin::sys
