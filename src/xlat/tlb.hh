/**
 * @file
 * A set-associative TLB model.
 *
 * Entries map a virtual page to the device whose memory holds it.
 * Per the paper (SS II-B), translations for *remote* physical addresses
 * are never cached in GPU TLBs, so the fill policy is the caller's
 * responsibility; this class provides selective invalidation because
 * Griffin's shootdowns only target the pages being migrated (SS IV).
 */

#ifndef GRIFFIN_XLAT_TLB_HH
#define GRIFFIN_XLAT_TLB_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::xlat {

/** TLB geometry and lookup latency. */
struct TlbConfig
{
    unsigned numSets = 1;
    unsigned assoc = 32;
    Tick latency = 1;
};

/**
 * One TLB (L1 per-CU, L2 per-GPU, or the IOMMU's IOTLB).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    const TlbConfig &config() const { return _config; }
    Tick latency() const { return _config.latency; }
    unsigned capacity() const { return _config.numSets * _config.assoc; }

    /**
     * Look up @p page; updates LRU on a hit.
     * @return the cached owning device, or nullopt on a miss.
     */
    std::optional<DeviceId> lookup(PageId page);

    /** Check residency without perturbing LRU (for tests). */
    bool probe(PageId page) const;

    /** Insert (or refresh) a translation. */
    void fill(PageId page, DeviceId location);

    /**
     * Shoot down one page.
     * @retval true the page was resident (an entry was invalidated).
     */
    bool invalidatePage(PageId page);

    /** Shoot down everything (full-flush migration path). */
    std::uint64_t invalidateAll();

    /** Number of valid entries. */
    std::uint64_t validEntries() const;

    /**
     * Visit every valid entry (page, cached location) without
     * perturbing LRU. Used by the invariant auditor to cross-check
     * TLB contents against the page table.
     */
    void forEachValid(
        const std::function<void(PageId, DeviceId)> &visit) const;

    /** @name Statistics @{ */
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t invalidations = 0;
    /** @} */

  private:
    struct Entry
    {
        PageId page = 0;
        DeviceId location = invalidDeviceId;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    TlbConfig _config;
    std::vector<Entry> _entries; // set-major
    std::uint64_t _useClock = 0;

    unsigned setIndex(PageId page) const { return unsigned(page % _config.numSets); }
    Entry *findEntry(PageId page);
    const Entry *findEntry(PageId page) const;
};

} // namespace griffin::xlat

#endif // GRIFFIN_XLAT_TLB_HH
