#include "src/xlat/tlb.hh"

#include <cassert>

namespace griffin::xlat {

Tlb::Tlb(const TlbConfig &config) : _config(config)
{
    assert(config.numSets > 0 && config.assoc > 0);
    _entries.resize(std::size_t(config.numSets) * config.assoc);
}

Tlb::Entry *
Tlb::findEntry(PageId page)
{
    Entry *set = &_entries[std::size_t(setIndex(page)) * _config.assoc];
    for (unsigned way = 0; way < _config.assoc; ++way) {
        if (set[way].valid && set[way].page == page)
            return &set[way];
    }
    return nullptr;
}

const Tlb::Entry *
Tlb::findEntry(PageId page) const
{
    return const_cast<Tlb *>(this)->findEntry(page);
}

std::optional<DeviceId>
Tlb::lookup(PageId page)
{
    ++_useClock;
    if (Entry *entry = findEntry(page)) {
        ++hits;
        entry->lastUse = _useClock;
        return entry->location;
    }
    ++misses;
    return std::nullopt;
}

bool
Tlb::probe(PageId page) const
{
    return findEntry(page) != nullptr;
}

void
Tlb::fill(PageId page, DeviceId location)
{
    ++_useClock;
    ++fills;

    if (Entry *entry = findEntry(page)) {
        entry->location = location;
        entry->lastUse = _useClock;
        return;
    }

    Entry *set = &_entries[std::size_t(setIndex(page)) * _config.assoc];
    Entry *victim = &set[0];
    for (unsigned way = 0; way < _config.assoc; ++way) {
        if (!set[way].valid) {
            victim = &set[way];
            break;
        }
        if (set[way].lastUse < victim->lastUse)
            victim = &set[way];
    }
    victim->page = page;
    victim->location = location;
    victim->valid = true;
    victim->lastUse = _useClock;
}

bool
Tlb::invalidatePage(PageId page)
{
    if (Entry *entry = findEntry(page)) {
        entry->valid = false;
        ++invalidations;
        return true;
    }
    return false;
}

std::uint64_t
Tlb::invalidateAll()
{
    std::uint64_t count = 0;
    for (Entry &entry : _entries) {
        if (entry.valid) {
            entry.valid = false;
            ++count;
        }
    }
    invalidations += count;
    return count;
}

std::uint64_t
Tlb::validEntries() const
{
    std::uint64_t count = 0;
    for (const Entry &entry : _entries)
        count += entry.valid ? 1 : 0;
    return count;
}

void
Tlb::forEachValid(
    const std::function<void(PageId, DeviceId)> &visit) const
{
    for (const Entry &entry : _entries) {
        if (entry.valid)
            visit(entry.page, entry.location);
    }
}

} // namespace griffin::xlat
