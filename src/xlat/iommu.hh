/**
 * @file
 * The IOMMU: the CPU-side translation agent every GPU L2-TLB miss is
 * forwarded to (paper SS II-B, Figures 3-5).
 *
 * It owns a pool of multi-threaded page table walkers (8 in the
 * paper's configuration), an IOTLB that short-circuits walks for
 * GPU-resident pages, and the fault path: walks that resolve to a
 * CPU-resident page are handed to the installed MigrationPolicy,
 * which either triggers demand paging (the request parks until the
 * driver completes the migration) or redirects the access to CPU
 * memory via DCA.
 *
 * CPU-resident pages are deliberately *not* cached in the IOTLB: the
 * policy must observe every access to them, which is how DFTM detects
 * the second touch (SS III-A).
 */

#ifndef GRIFFIN_XLAT_IOMMU_HH
#define GRIFFIN_XLAT_IOMMU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/core/migration_policy.hh"
#include "src/interconnect/switch.hh"
#include "src/mem/page_table.hh"
#include "src/sim/engine.hh"
#include "src/sim/types.hh"
#include "src/xlat/fault_handler.hh"
#include "src/xlat/tlb.hh"

namespace griffin::sys {
class FaultInjector;
} // namespace griffin::sys

namespace griffin::xlat {

/** IOMMU parameters (paper Table II: 8 page table walkers). */
struct IommuConfig
{
    unsigned numWalkers = 8;
    /** Full four-level walk out of CPU caches/DRAM. */
    Tick walkLatency = 300;
    TlbConfig iotlb{256, 16, 8};
};

/** Answer to a translation request. */
struct XlatReply
{
    DeviceId location = cpuDeviceId;
    /** May the GPU cache this translation in its TLBs? */
    bool cacheable = false;
};

/**
 * Completion callback of a translation request. Move-only with inline
 * capture storage (see sim::InlineFn): requesters typically capture a
 * per-access state pointer, which fits inline; a wrapper that captures
 * another XlatDone must go through sim::boxed().
 */
using XlatDone = sim::InlineFn<void(XlatReply)>;

/**
 * The IOMMU model.
 */
class Iommu
{
  public:
    Iommu(sim::Engine &engine, ic::Network &network, mem::PageTable &pt,
          const IommuConfig &config);

    /** Install the placement policy (required before requests). */
    void setPolicy(core::MigrationPolicy *policy) { _policy = policy; }

    /** Install the fault receiver (required before requests). */
    void setFaultHandler(FaultHandler *handler) { _faultHandler = handler; }

    /**
     * Attach a fault injector (nullptr detaches). When set, each page
     * table walk may stall for an extra fixed penalty.
     */
    void setFaultInjector(sys::FaultInjector *injector)
    {
        _injector = injector;
    }

    /**
     * A translation request has arrived at the IOMMU (the requester
     * already paid the fabric crossing). The reply is sent back over
     * the fabric; @p done runs at the requester.
     *
     * @param origin the requester-side TLB-miss timestamp, used as
     *               the span origin if this request turns into a page
     *               fault; defaults to arrival time at the IOMMU.
     */
    void request(DeviceId requester, PageId page, bool is_write,
                 XlatDone done, Tick origin = maxTick);

    /**
     * Mark @p page as under migration: new and parked requests wait
     * until onMigrationDone(). Also purges the IOTLB entry.
     */
    void blockPage(PageId page);

    /**
     * The driver finished migrating @p page (the page table already
     * points at the new location): replay parked requests.
     */
    void onMigrationDone(PageId page);

    /** Drop a (possibly stale) IOTLB entry for @p page. */
    void invalidateIotlb(PageId page) { _iotlb.invalidatePage(page); }

    /**
     * True from the moment @p page is selected for migration until
     * the transfer commits (migrationPending covers selection to
     * shootdown, migrating covers shootdown to commit). GPUs consult
     * this before caching a translation reply: a reply that was in
     * flight when the migration's TLB purge ran would otherwise
     * re-fill the TLB with the old location after the purge — the
     * reply fence real shootdown protocols require.
     */
    bool
    pageMigrating(PageId page) const
    {
        const mem::PageInfo &pi = _pageTable.info(page);
        return pi.migrating || pi.migrationPending;
    }

    /**
     * Cache a CPU-resident translation in the IOTLB. Normally the
     * IOMMU refuses to do this so the policy observes every touch of
     * a CPU page; DFTM uses it during a denial lease so the first
     * sweep streams via DCA without walking per access. The policy
     * must invalidate the entry when the lease expires.
     */
    void cacheCpuResident(PageId page) { _iotlb.fill(page, cpuDeviceId); }

    const Tlb &iotlb() const { return _iotlb; }

    /** Pending + in-service walk count (for CPMS batching heuristics). */
    unsigned
    activeWalks() const
    {
        return _busyWalkers + unsigned(_walkQueue.size());
    }

    /** Walkers currently in a walk (occupancy probe). */
    unsigned busyWalkers() const { return _busyWalkers; }

    /** Requests parked behind in-flight migrations (watchdog probe). */
    std::size_t
    parkedCount() const
    {
        std::size_t count = 0;
        for (const auto &[page, waiters] : _parked)
            count += waiters.size();
        return count;
    }

    const IommuConfig &config() const { return _config; }

    /** @name Statistics @{ */
    std::uint64_t requests = 0;
    std::uint64_t iotlbHits = 0;
    std::uint64_t walks = 0;
    std::uint64_t walksCoalesced = 0; ///< joined an in-flight walk
    std::uint64_t faultsRaised = 0;
    std::uint64_t dcaRedirects = 0;     ///< CPU-resident, served remotely
    std::uint64_t parkedRequests = 0;   ///< waited on an ongoing migration
    std::uint64_t walksStalled = 0;     ///< injected walker stalls
    std::uint64_t fallbackRedirects = 0; ///< served via dcaFallback pages
    /** @} */

  private:
    struct Request
    {
        DeviceId requester;
        PageId page;
        bool isWrite;
        XlatDone done;
        /** Requester-side TLB-miss time (span origin on a fault). */
        Tick origin = 0;
        /** When a walker picked this page up / finished the walk. */
        Tick walkStart = 0;
        Tick walkEnd = 0;
        /** Span identity, allocated only if a fault is raised. */
        FaultId fid = invalidFaultId;
    };

    sim::Engine &_engine;
    ic::Network &_network;
    mem::PageTable &_pageTable;
    IommuConfig _config;
    Tlb _iotlb;

    core::MigrationPolicy *_policy = nullptr;
    FaultHandler *_faultHandler = nullptr;
    sys::FaultInjector *_injector = nullptr;

    /** Pages queued for a walk, FCFS; waiters held in _walkWaiters. */
    std::deque<PageId> _walkQueue;
    /** Requests waiting on a queued or in-flight walk, per page. */
    std::unordered_map<PageId, std::vector<Request>> _walkWaiters;
    unsigned _busyWalkers = 0;
    std::unordered_map<PageId, std::vector<Request>> _parked;

    void startWalks();
    void finishWalk(PageId page);
    void resolve(Request req);
    /** Consumes req.done (the request is retired by the reply). */
    void reply(Request &req, XlatReply rep);
};

} // namespace griffin::xlat

#endif // GRIFFIN_XLAT_IOMMU_HH
