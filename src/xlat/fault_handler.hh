/**
 * @file
 * Interface through which the IOMMU reports GPU page faults to the
 * GPU driver, without the translation layer depending on the driver.
 */

#ifndef GRIFFIN_XLAT_FAULT_HANDLER_HH
#define GRIFFIN_XLAT_FAULT_HANDLER_HH

#include "src/sim/types.hh"

namespace griffin::xlat {

/**
 * Receiver of page faults. Implemented by driver::Driver.
 */
class FaultHandler
{
  public:
    virtual ~FaultHandler() = default;

    /**
     * GPU @p requester faulted on CPU-resident @p page and the policy
     * chose to migrate. The handler must eventually move the page and
     * call Iommu::onMigrationDone(page).
     *
     * @param fid span identity of the fault (obs/span.hh); handlers
     *            thread it through batching and the page transfer so
     *            stage boundaries attribute to the right fault. May be
     *            invalidFaultId when no span sink is attached.
     */
    virtual void onPageFault(DeviceId requester, PageId page,
                             FaultId fid = invalidFaultId) = 0;
};

} // namespace griffin::xlat

#endif // GRIFFIN_XLAT_FAULT_HANDLER_HH
