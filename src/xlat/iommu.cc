#include "src/xlat/iommu.hh"

#include "src/obs/hostprof.hh"

#include <cassert>
#include <utility>

#include <string>

#include "src/obs/span.hh"
#include "src/obs/trace.hh"
#include "src/sim/log.hh"
#include "src/sys/chaos.hh"

namespace griffin::xlat {

namespace {
/** The IOMMU's trace track. */
const std::string kTrack = "iommu";
} // namespace

Iommu::Iommu(sim::Engine &engine, ic::Network &network, mem::PageTable &pt,
             const IommuConfig &config)
    : _engine(engine), _network(network), _pageTable(pt), _config(config),
      _iotlb(config.iotlb)
{
    assert(config.numWalkers > 0);
}

void
Iommu::request(DeviceId requester, PageId page, bool is_write, XlatDone done,
               Tick origin)
{
    assert(_policy && _faultHandler &&
           "policy and fault handler must be installed first");
    ++requests;

    if (origin == maxTick)
        origin = _engine.now();
    // The request (callback included) rides through the whole pipeline
    // in one heap box; every hop below captures just the pointer.
    auto req = std::make_unique<Request>(
        Request{requester, page, is_write, std::move(done), origin});

    // IOTLB probe first; a hit skips the walk entirely.
    _engine.schedule(_iotlb.latency(), [this, r = std::move(req)] {
        GHPROF_SCOPE("iommu", "iotlb");
        // A page under migration must park even on what would be an
        // IOTLB hit; blockPage() purges the entry, so a lookup hit
        // implies the page is stable.
        if (auto loc = _iotlb.lookup(r->page)) {
            ++iotlbHits;
            reply(*r, XlatReply{*loc, *loc == r->requester});
            return;
        }
        // Coalesce with a queued or in-flight walk of the same page:
        // the walkers resolve a page once, however many requesters
        // pile up behind it (this matters after a migration, when
        // every wavefront of every GPU re-faults the page at once).
        auto [it, first] = _walkWaiters.try_emplace(r->page);
        it->second.push_back(std::move(*r));
        if (first) {
            _walkQueue.push_back(it->first);
            startWalks();
        } else {
            ++walksCoalesced;
        }
    });
}

void
Iommu::startWalks()
{
    while (_busyWalkers < _config.numWalkers && !_walkQueue.empty()) {
        const PageId page = _walkQueue.front();
        _walkQueue.pop_front();
        ++_busyWalkers;
        ++walks;
        // Waiters present now left the walk queue; late coalescers
        // keep walkStart = 0, which the span sink clamps to a
        // zero-length queue stage.
        auto it = _walkWaiters.find(page);
        assert(it != _walkWaiters.end());
        for (Request &req : it->second)
            req.walkStart = _engine.now();
        Tick latency = _config.walkLatency;
        if (_injector && _injector->stallWalker()) {
            // Injected walker stall: the walk simply takes longer;
            // every coalesced waiter absorbs the penalty.
            const Tick penalty = _injector->config().walkerStallPenalty;
            latency += penalty;
            ++walksStalled;
            _injector->noteRecoveryCycles(penalty);
            if (auto *tr = obs::TraceSession::activeFor(obs::CatChaos)) {
                tr->instant(obs::CatChaos, kTrack, "walker_stall",
                            _engine.now(),
                            obs::TraceArgs()
                                .add("page", page)
                                .add("penalty", penalty));
            }
        }
        _engine.schedule(latency, [this, page] {
            GHPROF_SCOPE("iommu", "walk_done");
            finishWalk(page);
        });
    }
}

void
Iommu::finishWalk(PageId page)
{
    assert(_busyWalkers > 0);
    --_busyWalkers;
    startWalks();

    auto it = _walkWaiters.find(page);
    assert(it != _walkWaiters.end());
    std::vector<Request> waiters = std::move(it->second);
    _walkWaiters.erase(it);
    for (auto &req : waiters) {
        req.walkEnd = _engine.now();
        resolve(std::move(req));
    }
}

void
Iommu::resolve(Request req)
{
    mem::PageInfo &pi = _pageTable.info(req.page);

    if (pi.migrating) {
        ++parkedRequests;
        if (auto *tr = obs::TraceSession::activeFor(obs::CatFault)) {
            tr->instant(obs::CatFault, kTrack, "request_parked",
                        _engine.now(),
                        obs::TraceArgs()
                            .add("gpu", req.requester)
                            .add("page", req.page));
        }
        _parked[req.page].push_back(std::move(req));
        return;
    }

    if (pi.dcaFallback) {
        // A recovery timeout degraded this page to DCA remote access:
        // serve it from CPU memory without consulting the policy, so
        // an abort can never re-enter the migration machinery.
        ++dcaRedirects;
        ++fallbackRedirects;
        reply(req, XlatReply{cpuDeviceId, false});
        return;
    }

    if (pi.location == cpuDeviceId) {
        const auto decision =
            _policy->onCpuResidentAccess(req.requester, req.page, _pageTable);
        if (decision.migrate) {
            ++faultsRaised;
            pi.migrating = true;
            const DeviceId requester = req.requester;
            const PageId page = req.page;
            // Open the span: the pre-fault stages (queue, walk,
            // policy) are known in full right here.
            FaultId fid = invalidFaultId;
            if (auto *fs = obs::FaultSpans::active()) {
                fid = fs->beginFault(requester, page, req.origin);
                fs->mark(fid, obs::Stage::WalkQueue, req.walkStart);
                fs->mark(fid, obs::Stage::Walk, req.walkEnd);
                fs->mark(fid, obs::Stage::Policy, _engine.now());
            }
            req.fid = fid;
            _parked[page].push_back(std::move(req));
            GLOG(Trace, "iommu: fault page " << page << " -> gpu "
                                             << requester);
            if (auto *tr =
                    obs::TraceSession::activeFor(obs::CatFault)) {
                tr->instant(obs::CatFault, kTrack, "fault_raised",
                            _engine.now(),
                            obs::TraceArgs()
                                .add("gpu", requester)
                                .add("page", page));
                if (fid != invalidFaultId) {
                    tr->flow(obs::CatFault, kTrack, "fault",
                             _engine.now(), fid,
                             obs::TraceSession::FlowPhase::Begin);
                }
            }
            _faultHandler->onPageFault(requester, page, fid);
        } else {
            ++dcaRedirects;
            if (auto *tr = obs::TraceSession::activeFor(obs::CatDca)) {
                tr->instant(obs::CatDca, kTrack, "dca_redirect",
                            _engine.now(),
                            obs::TraceArgs()
                                .add("gpu", req.requester)
                                .add("page", req.page));
            }
            // DCA to CPU memory: translation is never cacheable, so
            // the policy sees the next access too (second touch).
            reply(req, XlatReply{cpuDeviceId, false});
        }
        return;
    }

    // GPU-resident page: cache it in the IOTLB and answer. The GPU
    // may cache the translation only if the page is local to it.
    _iotlb.fill(req.page, pi.location);
    reply(req, XlatReply{pi.location, pi.location == req.requester});
}

void
Iommu::reply(Request &req, XlatReply rep)
{
    auto done = std::move(req.done);
    const FaultId fid = req.fid;
    if (fid == invalidFaultId) {
        _network.send(cpuDeviceId, req.requester, ic::MessageSizes::xlatReply,
                      sim::boxed([done = std::move(done), rep] {
                          done(rep);
                      }));
        return;
    }
    // This reply retires a fault: close the span when it lands at the
    // requester, where the stalled wavefront actually resumes.
    const DeviceId requester = req.requester;
    _network.send(
        cpuDeviceId, requester, ic::MessageSizes::xlatReply,
        sim::boxed([this, done = std::move(done), rep, fid, requester] {
            const Tick now = _engine.now();
            obs::FaultSpans::completeActive(fid, now);
            if (auto *tr = obs::TraceSession::activeFor(obs::CatFault)) {
                const std::string track = "gpu" + std::to_string(requester);
                tr->instant(obs::CatFault, track, "fault_resume", now,
                            obs::TraceArgs().add("fault", fid));
                tr->flow(obs::CatFault, track, "fault", now, fid,
                         obs::TraceSession::FlowPhase::End);
            }
            done(rep);
        }));
}

void
Iommu::blockPage(PageId page)
{
    _pageTable.info(page).migrating = true;
    _iotlb.invalidatePage(page);
}

void
Iommu::onMigrationDone(PageId page)
{
    assert(!_pageTable.info(page).migrating &&
           "page table must be updated before onMigrationDone");
    _iotlb.invalidatePage(page);

    auto it = _parked.find(page);
    if (it == _parked.end())
        return;
    std::vector<Request> waiters = std::move(it->second);
    _parked.erase(it);
    for (auto &req : waiters)
        resolve(std::move(req));
}

} // namespace griffin::xlat
