/**
 * @file
 * The Page Migration Controller (paper SS II-B, Figure 3): the DMA
 * engine that moves whole pages between device memories over the
 * inter-device fabric and reports completion to the driver.
 */

#ifndef GRIFFIN_GPU_PMC_HH
#define GRIFFIN_GPU_PMC_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/interconnect/switch.hh"
#include "src/mem/dram.hh"
#include "src/sim/engine.hh"
#include "src/sim/types.hh"

namespace griffin::sys {
class FaultInjector;
} // namespace griffin::sys

namespace griffin::gpu {

/**
 * One device's PMC. The transfer reads the page from the source DRAM,
 * streams it across the fabric, and writes it into the destination
 * DRAM; @p done fires when the last byte is committed.
 */
class Pmc
{
  public:
    /**
     * @param engine event engine.
     * @param network inter-device fabric.
     * @param self   the device that owns this PMC (the source side).
     * @param drams  per-device DRAM models, indexed by DeviceId.
     * @param page_bytes page size being migrated.
     * @param max_concurrent DMA streams allowed in flight at once;
     *        0 = unlimited (the default, and timing-identical to a
     *        PMC without a queue). When bounded, excess transfers
     *        wait in an internal FIFO — the wait is the span model's
     *        transfer_queue stage.
     */
    Pmc(sim::Engine &engine, ic::Network &network, DeviceId self,
        std::vector<mem::Dram *> drams, std::uint64_t page_bytes,
        unsigned max_concurrent = 0);

    /**
     * Migrate @p page (by virtual page number; the model is tag-only)
     * from this device to @p dst.
     *
     * @param fid span identity when this transfer services a page
     *            fault (stamps the transfer_queue/transfer stages).
     */
    void transferPage(PageId page, DeviceId dst, sim::EventFn done,
                      FaultId fid = invalidFaultId);

    /** In-flight + queued transfers (sampler probe). */
    unsigned
    queueDepth() const
    {
        return _inflight + unsigned(_pending.size());
    }

    /**
     * Attach a fault injector (nullptr detaches). When set, each DMA
     * attempt may fail mid-stream; failures are retried with
     * exponential backoff up to the configured attempt budget, then
     * the transfer is abandoned (its completion never fires — the
     * arming side's migration timeout is the recovery).
     */
    void setFaultInjector(sys::FaultInjector *injector)
    {
        _injector = injector;
    }

    /** @name Statistics @{ */
    std::uint64_t pagesTransferred = 0;
    std::uint64_t bytesTransferred = 0;
    std::uint64_t transfersDeferred = 0; ///< waited on a DMA slot
    std::uint64_t transfersFailed = 0;   ///< injected DMA failures
    std::uint64_t transfersAbandoned = 0; ///< retry budget exhausted
    /** @} */

  private:
    /** A transfer waiting for a DMA slot. */
    struct Pending
    {
        PageId page;
        DeviceId dst;
        sim::EventFn done;
        FaultId fid;
    };

    sim::Engine &_engine;
    ic::Network &_network;
    DeviceId _self;
    std::vector<mem::Dram *> _drams;
    std::uint64_t _pageBytes;
    unsigned _maxConcurrent;
    unsigned _inflight = 0;
    std::deque<Pending> _pending;
    sys::FaultInjector *_injector = nullptr;

    /**
     * One in-flight DMA stream. The attempt chain (read, stream,
     * commit, plus any retry loops) shares this single heap box;
     * every hop's lambda captures {this, pointer}, which fits the
     * event's inline storage.
     */
    struct Xfer
    {
        PageId page;
        Addr base;
        DeviceId dst;
        FaultId fid;
        unsigned attempt;
        Tick begin;
        sim::EventFn done;
    };
    using XferPtr = std::unique_ptr<Xfer>;

    void startTransfer(PageId page, DeviceId dst, sim::EventFn done,
                       FaultId fid);
    void runAttempt(XferPtr xf);
    void releaseSlot();
};

} // namespace griffin::gpu

#endif // GRIFFIN_GPU_PMC_HH
