/**
 * @file
 * The Page Migration Controller (paper SS II-B, Figure 3): the DMA
 * engine that moves whole pages between device memories over the
 * inter-device fabric and reports completion to the driver.
 */

#ifndef GRIFFIN_GPU_PMC_HH
#define GRIFFIN_GPU_PMC_HH

#include <cstdint>
#include <vector>

#include "src/interconnect/switch.hh"
#include "src/mem/dram.hh"
#include "src/sim/engine.hh"
#include "src/sim/types.hh"

namespace griffin::gpu {

/**
 * One device's PMC. The transfer reads the page from the source DRAM,
 * streams it across the fabric, and writes it into the destination
 * DRAM; @p done fires when the last byte is committed.
 */
class Pmc
{
  public:
    /**
     * @param engine event engine.
     * @param network inter-device fabric.
     * @param self   the device that owns this PMC (the source side).
     * @param drams  per-device DRAM models, indexed by DeviceId.
     * @param page_bytes page size being migrated.
     */
    Pmc(sim::Engine &engine, ic::Network &network, DeviceId self,
        std::vector<mem::Dram *> drams, std::uint64_t page_bytes);

    /**
     * Migrate @p page (by virtual page number; the model is tag-only)
     * from this device to @p dst.
     */
    void transferPage(PageId page, DeviceId dst, sim::EventFn done);

    /** @name Statistics @{ */
    std::uint64_t pagesTransferred = 0;
    std::uint64_t bytesTransferred = 0;
    /** @} */

  private:
    sim::Engine &_engine;
    ic::Network &_network;
    DeviceId _self;
    std::vector<mem::Dram *> _drams;
    std::uint64_t _pageBytes;
};

} // namespace griffin::gpu

#endif // GRIFFIN_GPU_PMC_HH
