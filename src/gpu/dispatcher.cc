#include "src/gpu/dispatcher.hh"

#include "src/obs/hostprof.hh"

#include <cassert>
#include <utility>

namespace griffin::gpu {

Dispatcher::Dispatcher(sim::Engine &engine, std::vector<Gpu *> gpus,
                       Tick dispatch_latency)
    : _engine(engine), _gpus(std::move(gpus)),
      _dispatchLatency(dispatch_latency),
      _perGpuDispatched(_gpus.size(), 0)
{
    assert(!_gpus.empty());
    for (std::size_t i = 0; i < _gpus.size(); ++i) {
        _gpus[i]->setWorkgroupDoneCallback([this] { onWorkgroupDone(); });
    }
}

void
Dispatcher::launchKernel(wl::KernelLaunch kernel, sim::EventFn on_done)
{
    assert(_remainingWgs == 0 && "one kernel in flight at a time");

    ++kernelsLaunched;
    _remainingWgs = kernel.workgroups.size();
    _kernelDone = std::move(on_done);

    if (kernel.workgroups.empty()) {
        auto done = std::move(_kernelDone);
        _kernelDone = nullptr;
        _engine.schedule(_dispatchLatency,
                         sim::boxed([fn = std::move(done)] {
                             GHPROF_SCOPE("dispatcher", "kernel_done");
                             fn();
                         }));
        return;
    }

    for (auto &wg : kernel.workgroups)
        _pending.push_back(std::move(wg));
    scheduleDeal();
}

void
Dispatcher::scheduleDeal()
{
    if (_dealScheduled || _pending.empty())
        return;
    _dealScheduled = true;
    _engine.schedule(_dispatchLatency, [this] {
        GHPROF_SCOPE("dispatcher", "deal");
        _dealScheduled = false;
        dealOne();
    });
}

void
Dispatcher::dealOne()
{
    if (_pending.empty())
        return;

    // Round-robin over the GPUs (GPU 1 opens every round), skipping
    // GPUs with no free CU: the initial burst spreads evenly, while
    // refills flow to whichever GPU retires workgroups fastest.
    bool assigned = false;
    for (std::size_t tries = 0; tries < _gpus.size(); ++tries) {
        const std::size_t i = _cursor;
        _cursor = (_cursor + 1) % _gpus.size();
        if (_gpus[i]->freeCus() == 0)
            continue;
        ++_perGpuDispatched[i];
        ++workgroupsDispatched;
        _gpus[i]->enqueueWorkgroup(std::move(_pending.front()));
        _pending.pop_front();
        assigned = true;
        break;
    }
    // Keep dealing while work and capacity remain; once every CU is
    // busy, onWorkgroupDone() resumes the loop.
    if (assigned)
        scheduleDeal();
}

void
Dispatcher::onWorkgroupDone()
{
    assert(_remainingWgs > 0);
    scheduleDeal();
    if (--_remainingWgs == 0 && _kernelDone) {
        auto done = std::move(_kernelDone);
        _kernelDone = nullptr;
        done();
    }
}

} // namespace griffin::gpu

