#include "src/gpu/compute_unit.hh"

#include "src/obs/hostprof.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace griffin::gpu {

ComputeUnit::ComputeUnit(sim::Engine &engine, CuMemoryInterface &memory,
                         unsigned cu_id, const CuConfig &config)
    : _engine(engine), _memory(memory), _cuId(cu_id), _config(config)
{
    assert(config.maxWavefronts > 0);
}

void
ComputeUnit::startWorkgroup(wl::Workgroup wg, sim::EventFn on_done)
{
    assert(!_wgActive && "CU runs one workgroup at a time");
    assert(_inflight.empty());

    _wgActive = true;
    _wg = std::move(wg);
    _wgDone = std::move(on_done);
    _wfStates.assign(_wg.wavefronts.size(), WfState{});
    _waitingWavefronts.clear();
    _runningWavefronts = 0;
    _finishedWavefronts = 0;

    if (_wg.wavefronts.empty()) {
        // Degenerate but legal: an empty workgroup retires at once.
        _engine.schedule(_config.issueLatency, [this] {
            GHPROF_SCOPE("cu", "retire");
            ++workgroupsRetired;
            _wgActive = false;
            auto done = std::move(_wgDone);
            _wgDone = nullptr;
            if (done)
                done();
        });
        return;
    }

    for (std::size_t wf = 0; wf < _wfStates.size(); ++wf) {
        if (_runningWavefronts < _config.maxWavefronts) {
            ++_runningWavefronts;
            _engine.schedule(_config.issueLatency,
                             [this, wf] { tryIssue(wf); });
        } else {
            _waitingWavefronts.push_back(wf);
        }
    }
}

void
ComputeUnit::tryIssue(std::size_t wf_index)
{
    GHPROF_SCOPE("cu", "issue");
    WfState &wf = _wfStates[wf_index];
    if (wf.finished || wf.inFlight)
        return;
    if (_paused) {
        wf.pendingIssue = true;
        return;
    }
    wf.pendingIssue = false;

    if (wf.pc >= _wg.wavefronts[wf_index].ops.size()) {
        finishWavefront(wf_index);
        return;
    }
    issueOp(wf_index);
}

void
ComputeUnit::issueOp(std::size_t wf_index)
{
    WfState &wf = _wfStates[wf_index];
    const wl::MemOp &op = _wg.wavefronts[wf_index].ops[wf.pc];

    const std::uint64_t seq = _nextSeq++;
    _inflight.emplace(seq, wf_index);
    wf.inFlight = true;
    ++opsIssued;

    _memory.cuAccess(_cuId, op.vaddr, op.isWrite,
                     [this, seq] { onOpDone(seq); });
}

void
ComputeUnit::onOpDone(std::uint64_t seq)
{
    GHPROF_SCOPE("cu", "op_done");
    auto it = _inflight.find(seq);
    if (it == _inflight.end()) {
        // The op was discarded by flushPipeline(); the reply is stale.
        return;
    }
    const std::size_t wf_index = it->second;
    _inflight.erase(it);

    WfState &wf = _wfStates[wf_index];
    assert(wf.inFlight);
    wf.inFlight = false;
    ++opsCompleted;

    const wl::MemOp &completed = _wg.wavefronts[wf_index].ops[wf.pc];
    ++wf.pc;
    const Tick delay = std::max<Tick>(1, completed.computeDelay);
    _engine.schedule(delay, [this, wf_index] { tryIssue(wf_index); });
}

void
ComputeUnit::finishWavefront(std::size_t wf_index)
{
    WfState &wf = _wfStates[wf_index];
    assert(!wf.finished && !wf.inFlight);
    wf.finished = true;
    ++_finishedWavefronts;
    assert(_runningWavefronts > 0);
    --_runningWavefronts;

    // Admit a waiting wavefront, if any.
    if (!_waitingWavefronts.empty()) {
        const std::size_t next = _waitingWavefronts.front();
        _waitingWavefronts.pop_front();
        ++_runningWavefronts;
        _engine.schedule(_config.issueLatency,
                         [this, next] { tryIssue(next); });
    }

    if (_finishedWavefronts == _wfStates.size()) {
        ++workgroupsRetired;
        _wgActive = false;
        auto done = std::move(_wgDone);
        _wgDone = nullptr;
        if (done)
            done();
    }
}

void
ComputeUnit::pauseIssue()
{
    _paused = true;
}

void
ComputeUnit::flushPipeline()
{
    _paused = true;

    // Discard every in-flight transaction: replies become stale and
    // the wavefronts replay the same pc after resume().
    for (const auto &[seq, wf_index] : _inflight) {
        WfState &wf = _wfStates[wf_index];
        assert(wf.inFlight);
        wf.inFlight = false;
        wf.pendingIssue = true;
        ++opsDiscarded;
    }
    _inflight.clear();
}

void
ComputeUnit::resume()
{
    assert(_paused);
    _paused = false;

    for (std::size_t wf = 0; wf < _wfStates.size(); ++wf) {
        if (_wfStates[wf].pendingIssue)
            _engine.schedule(_config.issueLatency,
                             [this, wf] { tryIssue(wf); });
    }
}

} // namespace griffin::gpu
