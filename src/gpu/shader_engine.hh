/**
 * @file
 * A Shader Engine: the group of Compute Units that shares one page
 * access counter table (paper SS III-C: "Each Shader Engine (a group of
 * up to 16 Compute Units...) is augmented with a page access
 * counter").
 */

#ifndef GRIFFIN_GPU_SHADER_ENGINE_HH
#define GRIFFIN_GPU_SHADER_ENGINE_HH

#include "src/gpu/access_counter.hh"

namespace griffin::gpu {

/**
 * Grouping of CUs plus the shared DPC access counter hardware.
 */
class ShaderEngine
{
  public:
    /**
     * @param se_id   index of this SE within its GPU.
     * @param first_cu index of the first CU in this SE.
     * @param num_cus  CUs grouped under this SE.
     * @param counter_capacity access counter table entries (paper: 100).
     */
    ShaderEngine(unsigned se_id, unsigned first_cu, unsigned num_cus,
                 std::size_t counter_capacity);

    unsigned seId() const { return _seId; }
    unsigned firstCu() const { return _firstCu; }
    unsigned numCus() const { return _numCus; }

    /** True if @p cu_id belongs to this SE. */
    bool
    ownsCu(unsigned cu_id) const
    {
        return cu_id >= _firstCu && cu_id < _firstCu + _numCus;
    }

    AccessCounter &counter() { return _counter; }
    const AccessCounter &counter() const { return _counter; }

  private:
    unsigned _seId;
    unsigned _firstCu;
    unsigned _numCus;
    AccessCounter _counter;
};

} // namespace griffin::gpu

#endif // GRIFFIN_GPU_SHADER_ENGINE_HH
