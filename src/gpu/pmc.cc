#include "src/gpu/pmc.hh"

#include <cassert>
#include <string>
#include <utility>

#include "src/obs/metrics.hh"
#include "src/obs/span.hh"
#include "src/obs/trace.hh"

namespace griffin::gpu {

Pmc::Pmc(sim::Engine &engine, ic::Network &network, DeviceId self,
         std::vector<mem::Dram *> drams, std::uint64_t page_bytes,
         unsigned max_concurrent)
    : _engine(engine), _network(network), _self(self),
      _drams(std::move(drams)), _pageBytes(page_bytes),
      _maxConcurrent(max_concurrent)
{
    assert(page_bytes > 0);
}

void
Pmc::transferPage(PageId page, DeviceId dst, sim::EventFn done, FaultId fid)
{
    assert(dst < _drams.size() && dst != _self);

    if (_maxConcurrent != 0 && _inflight >= _maxConcurrent) {
        ++transfersDeferred;
        _pending.push_back(Pending{page, dst, std::move(done), fid});
        return;
    }
    startTransfer(page, dst, std::move(done), fid);
}

void
Pmc::startTransfer(PageId page, DeviceId dst, sim::EventFn done, FaultId fid)
{
    ++_inflight;
    ++pagesTransferred;
    bytesTransferred += _pageBytes;

    // The DMA stream starts now: end of the fault's transfer_queue
    // stage (zero-length when the PMC is unbounded or uncontended).
    obs::FaultSpans::markActive(fid, obs::Stage::TransferQueue,
                                _engine.now());
    if (fid != invalidFaultId) {
        if (auto *tr = obs::TraceSession::activeFor(obs::CatFault)) {
            tr->flow(obs::CatFault, "pmc" + std::to_string(_self), "fault",
                     _engine.now(), fid,
                     obs::TraceSession::FlowPhase::Step);
        }
    }

    // Slot bookkeeping: release the DMA slot (and start the next
    // queued transfer) before the driver-side completion runs, so a
    // completion that immediately requests another transfer sees a
    // free slot.
    done = [this, fid, done = std::move(done)] {
        obs::FaultSpans::markActive(fid, obs::Stage::Transfer,
                                    _engine.now());
        assert(_inflight > 0);
        --_inflight;
        if (!_pending.empty() &&
            (_maxConcurrent == 0 || _inflight < _maxConcurrent)) {
            Pending next = std::move(_pending.front());
            _pending.pop_front();
            startTransfer(next.page, next.dst, std::move(next.done),
                          next.fid);
        }
        done();
    };

    // Observability wrapper: time the whole read->stream->write span.
    // Only pay for the wrapper when someone is listening.
    if (obs::Metrics::active() || obs::TraceSession::active()) {
        const Tick begin = _engine.now();
        done = [this, page, dst, begin, done = std::move(done)] {
            const Tick end = _engine.now();
            if (auto *m = obs::Metrics::active()) {
                auto &hist = _self == cpuDeviceId
                                 ? m->latency.cpuMigrationLatency
                                 : m->latency.interGpuMigrationLatency;
                hist.sample(double(end - begin));
            }
            if (auto *tr =
                    obs::TraceSession::activeFor(obs::CatMigration)) {
                tr->complete(obs::CatMigration,
                             "pmc" + std::to_string(_self),
                             "migrate_page", begin, end,
                             obs::TraceArgs()
                                 .add("page", page)
                                 .add("dst", dst));
            }
            done();
        };
    }

    // Source DRAM read: pages are page-aligned, so use the page base
    // as the address for channel selection.
    const Addr base = Addr(page) * _pageBytes;
    const Tick read_done =
        _drams[_self]->access(_engine.now(), base,
                              std::uint32_t(_pageBytes), false);

    // Stream across the fabric once the read completes, then commit
    // into the destination DRAM.
    _engine.scheduleAt(read_done, [this, base, dst,
                                   done = std::move(done)]() mutable {
        _network.send(_self, dst,
                      _pageBytes + ic::MessageSizes::header,
                      [this, base, dst, done = std::move(done)]() mutable {
                          const Tick write_done = _drams[dst]->access(
                              _engine.now(), base,
                              std::uint32_t(_pageBytes), true);
                          _engine.scheduleAt(write_done, std::move(done));
                      });
    });
}

} // namespace griffin::gpu
