#include "src/gpu/pmc.hh"

#include <cassert>
#include <string>
#include <utility>

#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"

namespace griffin::gpu {

Pmc::Pmc(sim::Engine &engine, ic::Network &network, DeviceId self,
         std::vector<mem::Dram *> drams, std::uint64_t page_bytes)
    : _engine(engine), _network(network), _self(self),
      _drams(std::move(drams)), _pageBytes(page_bytes)
{
    assert(page_bytes > 0);
}

void
Pmc::transferPage(PageId page, DeviceId dst, sim::EventFn done)
{
    assert(dst < _drams.size() && dst != _self);

    ++pagesTransferred;
    bytesTransferred += _pageBytes;

    // Observability wrapper: time the whole read->stream->write span.
    // Only pay for the wrapper when someone is listening.
    if (obs::Metrics::active() || obs::TraceSession::active()) {
        const Tick begin = _engine.now();
        done = [this, page, dst, begin, done = std::move(done)] {
            const Tick end = _engine.now();
            if (auto *m = obs::Metrics::active()) {
                auto &hist = _self == cpuDeviceId
                                 ? m->latency.cpuMigrationLatency
                                 : m->latency.interGpuMigrationLatency;
                hist.sample(double(end - begin));
            }
            if (auto *tr =
                    obs::TraceSession::activeFor(obs::CatMigration)) {
                tr->complete(obs::CatMigration,
                             "pmc" + std::to_string(_self),
                             "migrate_page", begin, end,
                             obs::TraceArgs()
                                 .add("page", page)
                                 .add("dst", dst));
            }
            done();
        };
    }

    // Source DRAM read: pages are page-aligned, so use the page base
    // as the address for channel selection.
    const Addr base = Addr(page) * _pageBytes;
    const Tick read_done =
        _drams[_self]->access(_engine.now(), base,
                              std::uint32_t(_pageBytes), false);

    // Stream across the fabric once the read completes, then commit
    // into the destination DRAM.
    _engine.scheduleAt(read_done, [this, base, dst,
                                   done = std::move(done)]() mutable {
        _network.send(_self, dst,
                      _pageBytes + ic::MessageSizes::header,
                      [this, base, dst, done = std::move(done)]() mutable {
                          const Tick write_done = _drams[dst]->access(
                              _engine.now(), base,
                              std::uint32_t(_pageBytes), true);
                          _engine.scheduleAt(write_done, std::move(done));
                      });
    });
}

} // namespace griffin::gpu
