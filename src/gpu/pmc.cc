#include "src/gpu/pmc.hh"

#include "src/obs/hostprof.hh"

#include <cassert>
#include <string>
#include <utility>

#include "src/obs/metrics.hh"
#include "src/obs/pagestats.hh"
#include "src/obs/span.hh"
#include "src/obs/trace.hh"
#include "src/sys/chaos.hh"

namespace griffin::gpu {

Pmc::Pmc(sim::Engine &engine, ic::Network &network, DeviceId self,
         std::vector<mem::Dram *> drams, std::uint64_t page_bytes,
         unsigned max_concurrent)
    : _engine(engine), _network(network), _self(self),
      _drams(std::move(drams)), _pageBytes(page_bytes),
      _maxConcurrent(max_concurrent)
{
    assert(page_bytes > 0);
}

void
Pmc::transferPage(PageId page, DeviceId dst, sim::EventFn done, FaultId fid)
{
    assert(dst < _drams.size() && dst != _self);

    // Every migration attempt enters here, queued or not, so this is
    // the page's migration_start event (commit happens at
    // PageTable::setLocation, abort at the arming side's timeout).
    obs::PageStats::recordActive(obs::PageEvent::MigrationStart, page,
                                 _self, dst, _engine.now());

    if (_maxConcurrent != 0 && _inflight >= _maxConcurrent) {
        ++transfersDeferred;
        _pending.push_back(Pending{page, dst, std::move(done), fid});
        return;
    }
    startTransfer(page, dst, std::move(done), fid);
}

void
Pmc::startTransfer(PageId page, DeviceId dst, sim::EventFn done, FaultId fid)
{
    ++_inflight;
    ++pagesTransferred;
    bytesTransferred += _pageBytes;

    // The DMA stream starts now: end of the fault's transfer_queue
    // stage (zero-length when the PMC is unbounded or uncontended).
    obs::FaultSpans::markActive(fid, obs::Stage::TransferQueue,
                                _engine.now());
    if (fid != invalidFaultId) {
        if (auto *tr = obs::TraceSession::activeFor(obs::CatFault)) {
            tr->flow(obs::CatFault, "pmc" + std::to_string(_self), "fault",
                     _engine.now(), fid,
                     obs::TraceSession::FlowPhase::Step);
        }
    }

    runAttempt(std::make_unique<Xfer>(Xfer{page, Addr(page) * _pageBytes,
                                           dst, fid, 1, _engine.now(),
                                           std::move(done)}));
}

void
Pmc::releaseSlot()
{
    // Release the DMA slot (and start the next queued transfer)
    // before any driver-side completion runs, so a completion that
    // immediately requests another transfer sees a free slot.
    assert(_inflight > 0);
    --_inflight;
    if (!_pending.empty() &&
        (_maxConcurrent == 0 || _inflight < _maxConcurrent)) {
        Pending next = std::move(_pending.front());
        _pending.pop_front();
        startTransfer(next.page, next.dst, std::move(next.done),
                      next.fid);
    }
}

void
Pmc::runAttempt(XferPtr xf)
{
    // Source DRAM read: pages are page-aligned, so use the page base
    // as the address for channel selection.
    const Tick read_done =
        _drams[_self]->access(_engine.now(), xf->base,
                              std::uint32_t(_pageBytes), false);

    // Stream across the fabric once the read completes, then commit
    // into the destination DRAM. An injected failure strikes at
    // stream arrival, before the destination write.
    _engine.scheduleAt(read_done, [this, x = std::move(xf)]() mutable {
        GHPROF_SCOPE("pmc", "read_done");
        // Hoist: the lambda argument moves x, and argument evaluation
        // order is unspecified, so x->dst must be read first.
        const DeviceId dst = x->dst;
        _network.send(
            _self, dst, _pageBytes + ic::MessageSizes::header,
            [this, x = std::move(x)]() mutable {
                GHPROF_SCOPE("pmc", "stream_arrive");
                if (_injector && _injector->failDmaTransfer()) {
                    ++transfersFailed;
                    const auto &cc = _injector->config();
                    if (x->attempt > cc.dmaMaxRetries) {
                        // Retry budget exhausted: abandon the
                        // transfer. Its completion never fires; the
                        // arming side's migration timeout (driver or
                        // executor) is the recovery path.
                        ++transfersAbandoned;
                        _injector->noteDmaAbandoned();
                        obs::PageStats::recordActive(
                            obs::PageEvent::Recovery, x->page, _self,
                            x->dst, _engine.now());
                        if (auto *tr = obs::TraceSession::activeFor(
                                obs::CatChaos)) {
                            tr->instant(obs::CatChaos,
                                        "pmc" + std::to_string(_self),
                                        "dma_abandoned", _engine.now(),
                                        obs::TraceArgs()
                                            .add("page", x->page)
                                            .add("attempts", x->attempt));
                        }
                        releaseSlot();
                        return;
                    }
                    const Tick backoff = cc.dmaRetryBackoff
                                         << (x->attempt - 1);
                    _injector->noteRetry();
                    _injector->noteRecoveryCycles(backoff);
                    obs::PageStats::recordActive(
                        obs::PageEvent::Recovery, x->page, _self, x->dst,
                        _engine.now());
                    if (auto *tr = obs::TraceSession::activeFor(
                            obs::CatChaos)) {
                        tr->instant(obs::CatChaos,
                                    "pmc" + std::to_string(_self),
                                    "dma_retry", _engine.now(),
                                    obs::TraceArgs()
                                        .add("page", x->page)
                                        .add("attempt", x->attempt)
                                        .add("backoff", backoff));
                    }
                    ++x->attempt;
                    _engine.schedule(
                        backoff, [this, x = std::move(x)]() mutable {
                            GHPROF_SCOPE("chaos", "dma_retry");
                            runAttempt(std::move(x));
                        });
                    return;
                }

                const Tick write_done = _drams[x->dst]->access(
                    _engine.now(), x->base, std::uint32_t(_pageBytes),
                    true);
                _engine.scheduleAt(
                    write_done, [this, x = std::move(x)]() mutable {
                        GHPROF_SCOPE("pmc", "write_commit");
                        const Tick end = _engine.now();
                        if (auto *m = obs::Metrics::active()) {
                            auto &hist =
                                _self == cpuDeviceId
                                    ? m->latency.cpuMigrationLatency
                                    : m->latency
                                          .interGpuMigrationLatency;
                            hist.sample(double(end - x->begin));
                        }
                        if (auto *tr = obs::TraceSession::activeFor(
                                obs::CatMigration)) {
                            tr->complete(obs::CatMigration,
                                         "pmc" + std::to_string(_self),
                                         "migrate_page", x->begin, end,
                                         obs::TraceArgs()
                                             .add("page", x->page)
                                             .add("dst", x->dst));
                        }
                        obs::FaultSpans::markActive(
                            x->fid, obs::Stage::Transfer, end);
                        releaseSlot();
                        x->done();
                    });
            });
    });
}

} // namespace griffin::gpu
