/**
 * @file
 * Interface for routing Direct Cache Access (DCA) traffic between
 * devices; implemented by the system assembly so a GPU does not need
 * to know about its peers or the CPU memory complex.
 */

#ifndef GRIFFIN_GPU_REMOTE_HH
#define GRIFFIN_GPU_REMOTE_HH

#include "src/sim/engine.hh"
#include "src/sim/types.hh"

namespace griffin::gpu {

/**
 * Routes a remote (DCA) cache-line access from @p requester to the
 * device owning the page. @p done fires at the requester when the
 * data/ack returns.
 */
class RemoteRouter
{
  public:
    virtual ~RemoteRouter() = default;

    virtual void remoteAccess(DeviceId requester, DeviceId owner,
                              Addr addr, bool is_write,
                              sim::EventFn done) = 0;
};

} // namespace griffin::gpu

#endif // GRIFFIN_GPU_REMOTE_HH
