/**
 * @file
 * The centralized kernel dispatcher (paper SS II-A): converts a kernel
 * launch into workgroups and hands them to the GPUs on demand — a CU
 * that retires a workgroup frees a slot and its GPU receives the next
 * one.
 *
 * GPU 1 is polled first in every dispatch slot, so it acquires each
 * round's first workgroup; combined with demand-driven hand-out this
 * reproduces the positive feedback the paper blames for first-touch
 * imbalance (SS II-C, challenge 2): the GPU whose faults are serviced
 * first runs ahead, frees CUs sooner, receives more workgroups, and
 * first-touches more pages.
 */

#ifndef GRIFFIN_GPU_DISPATCHER_HH
#define GRIFFIN_GPU_DISPATCHER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "src/gpu/gpu.hh"
#include "src/sim/engine.hh"
#include "src/workloads/trace.hh"

namespace griffin::gpu {

/**
 * Deals workgroups to GPUs on demand and tracks kernel completion.
 */
class Dispatcher
{
  public:
    /**
     * @param engine event engine.
     * @param gpus   target GPUs (poll order = vector order).
     * @param dispatch_latency cycles between consecutive workgroup
     *        hand-offs; models the dispatcher's serialization.
     */
    Dispatcher(sim::Engine &engine, std::vector<Gpu *> gpus,
               Tick dispatch_latency = 4);

    /**
     * Launch @p kernel; @p on_done fires when every workgroup has
     * retired. Only one kernel may be in flight at a time (the
     * unified multi-GPU model runs kernels back to back).
     */
    void launchKernel(wl::KernelLaunch kernel, sim::EventFn on_done);

    /** True while a kernel is executing. */
    bool kernelInFlight() const { return _remainingWgs > 0; }

    /** Workgroups dispatched to each GPU so far (for tests). */
    const std::vector<std::uint64_t> &perGpuDispatched() const
    {
        return _perGpuDispatched;
    }

    /** @name Statistics @{ */
    std::uint64_t kernelsLaunched = 0;
    std::uint64_t workgroupsDispatched = 0;
    /** @} */

  private:
    sim::Engine &_engine;
    std::vector<Gpu *> _gpus;
    Tick _dispatchLatency;

    std::deque<wl::Workgroup> _pending;
    std::size_t _cursor = 0; ///< round-robin poll cursor
    std::uint64_t _remainingWgs = 0;
    sim::EventFn _kernelDone;
    std::vector<std::uint64_t> _perGpuDispatched;
    bool _dealScheduled = false;

    void scheduleDeal();
    void dealOne();
    void onWorkgroupDone();
};

} // namespace griffin::gpu

#endif // GRIFFIN_GPU_DISPATCHER_HH
