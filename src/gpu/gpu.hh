/**
 * @file
 * One GPU of the multi-GPU system: 4 Shader Engines x 9 Compute Units
 * (paper Table II), per-CU L1 caches and L1 TLBs, a shared L2 cache
 * and L2 TLB, local HBM, an RDMA engine for incoming DCA traffic, and
 * the GPU-side migration machinery (ACUD drain, pipeline flush,
 * selective TLB shootdown, selective L2 flush).
 */

#ifndef GRIFFIN_GPU_GPU_HH
#define GRIFFIN_GPU_GPU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/gpu/compute_unit.hh"
#include "src/gpu/pmc.hh"
#include "src/gpu/rdma.hh"
#include "src/gpu/remote.hh"
#include "src/gpu/shader_engine.hh"
#include "src/interconnect/switch.hh"
#include "src/mem/cache.hh"
#include "src/mem/dram.hh"
#include "src/sim/engine.hh"
#include "src/sim/types.hh"
#include "src/workloads/trace.hh"
#include "src/xlat/iommu.hh"
#include "src/xlat/tlb.hh"

namespace griffin::gpu {

/** Per-GPU configuration (defaults follow paper Table II). */
struct GpuConfig
{
    unsigned numSes = 4;
    unsigned cusPerSe = 9;
    mem::CacheConfig l1Cache{16 * 1024, 4, 64, 1};
    mem::CacheConfig l2Cache{8ull * 256 * 1024, 16, 64, 20};
    mem::DramConfig dram{};
    xlat::TlbConfig l1Tlb{1, 32, 1};
    xlat::TlbConfig l2Tlb{32, 16, 10};
    CuConfig cu{};
    unsigned pageShift = 12;
    unsigned lineBytes = 64;
    /** Intra-GPU crossbar hop (paper Table II: single-stage XBar). */
    Tick xbarLatency = 8;
    /** Cycles to scan the in-flight buffers against a drain request. */
    Tick drainCheckLatency = 8;
    /** Cost of a selective TLB shootdown once the GPU is drained. */
    Tick shootdownLatency = 20;
    /** Fixed pipeline-flush recovery cost (conventional scheme). */
    Tick flushRecoveryLatency = 500;
    std::size_t accessCounterCapacity = 100;
    /** Pages reported per SE per collection (20 fit in 110 bytes). */
    std::size_t accessCounterTopN = 20;

    unsigned numCus() const { return numSes * cusPerSe; }
};

/**
 * The GPU model. Implements CuMemoryInterface: every CU transaction
 * funnels through cuAccess(), which performs address translation
 * (L1 TLB -> L2 TLB -> IOMMU over the fabric) and then either a local
 * cache-hierarchy access or a remote DCA access via the router.
 */
class Gpu : public CuMemoryInterface
{
  public:
    /** Observer invoked on every post-coalescing access (benches). */
    using AccessProbe =
        std::function<void(Tick, DeviceId gpu, PageId page)>;

    Gpu(sim::Engine &engine, DeviceId id, const GpuConfig &config,
        ic::Network &network, xlat::Iommu &iommu, RemoteRouter &router);

    DeviceId id() const { return _id; }
    const GpuConfig &config() const { return _config; }

    /** @name Workgroup execution @{ */

    /** Queue a workgroup; it starts as soon as a CU frees up. */
    void enqueueWorkgroup(wl::Workgroup wg);

    /** Callback fired every time a workgroup retires. */
    void setWorkgroupDoneCallback(sim::EventFn cb) { _wgDoneCb = std::move(cb); }

    /** True when no workgroup is queued or running. */
    bool idle() const;

    /** Number of CUs currently without a workgroup. */
    unsigned freeCus() const;

    /** Number of CUs currently executing a workgroup (probes). */
    unsigned busyCus() const;

    /** Workgroups queued but not yet dispatched (watchdog probe). */
    std::size_t queuedWorkgroups() const { return _wgQueue.size(); }

    /** True while an ACUD drain awaits quiescence (watchdog probe). */
    bool drainActive() const { return bool(_drainDone); }

    /** @} */

    /** @name CU memory interface @{ */
    void cuAccess(unsigned cu_id, Addr vaddr, bool is_write,
                  sim::EventFn done) override;
    /** @} */

    /** @name Migration machinery (driver/executor facing) @{ */

    /**
     * ACUD: pause all CUs, then complete as soon as no in-flight
     * data-phase access targets any page in @p pages (sorted).
     * Caller performs shootdown/flush and then resumeAllCus().
     */
    void drainForPages(std::shared_ptr<const std::vector<PageId>> pages,
                       sim::EventFn done);

    /**
     * Conventional quiesce: discard all in-flight work on every CU,
     * invalidate all TLBs, flush both cache levels entirely, then pay
     * the recovery latency. @p done fires when the GPU is quiesced.
     */
    void flushForMigration(sim::EventFn done);

    /** Restart issue on every CU (the ACUD "Continue" message). */
    void resumeAllCus();

    /**
     * Selective TLB shootdown of @p pages (sorted) across all L1 TLBs
     * and the L2 TLB. Counts one shootdown event.
     */
    void shootdownPages(const std::vector<PageId> &pages);

    /**
     * Write back and invalidate the L2 (and L1) lines of @p pages.
     * @return when the writeback traffic has drained to DRAM.
     */
    Tick flushCachesForPages(const std::vector<PageId> &pages);

    /** @} */

    /** @name DCA service and drain bookkeeping (system facing) @{ */
    Rdma &rdma() { return _rdma; }
    void enterDataPhase(PageId page);
    void leaveDataPhase(PageId page);
    /** @} */

    /** @name DPC hardware (policy facing) @{ */

    /**
     * Collect and reset the per-SE access counters, merged into one
     * per-GPU list (the paper's 110-byte driver message carries it).
     */
    std::vector<PageCount> collectAccessCounts();

    /** @} */

    /** @name Component access for stats and tests @{ */
    ComputeUnit &cu(unsigned idx) { return *_cus[idx]; }
    const ComputeUnit &cu(unsigned idx) const { return *_cus[idx]; }
    unsigned numCus() const { return unsigned(_cus.size()); }
    ShaderEngine &shaderEngine(unsigned idx) { return _ses[idx]; }
    mem::Cache &l2() { return _l2; }
    mem::Dram &dram() { return _dram; }
    xlat::Tlb &l2Tlb() { return _l2Tlb; }
    xlat::Tlb &l1Tlb(unsigned cu_idx) { return _l1Tlbs[cu_idx]; }
    mem::Cache &l1Cache(unsigned cu_idx) { return _l1s[cu_idx]; }
    /** @} */

    /** Install an access probe (nullptr to disable). */
    void setAccessProbe(AccessProbe probe) { _probe = std::move(probe); }

    /** @name Statistics @{ */
    std::uint64_t localAccesses = 0;
    std::uint64_t remoteAccesses = 0;   ///< outgoing DCA
    std::uint64_t xlatRequestsSent = 0; ///< L2 TLB misses -> IOMMU
    std::uint64_t tlbShootdownEvents = 0;
    std::uint64_t tlbEntriesShotDown = 0;
    std::uint64_t drains = 0;
    std::uint64_t drainsImmediate = 0;
    /** Cycles spent with issue paused (drain/flush overhead). */
    std::uint64_t pausedCycles = 0;
    std::uint64_t fullFlushes = 0;
    std::uint64_t workgroupsExecuted = 0;
    /** @} */

  private:
    sim::Engine &_engine;
    DeviceId _id;
    GpuConfig _config;
    ic::Network &_network;
    xlat::Iommu &_iommu;
    RemoteRouter &_router;

    std::vector<std::unique_ptr<ComputeUnit>> _cus;
    std::vector<ShaderEngine> _ses;
    std::vector<mem::Cache> _l1s;
    std::vector<xlat::Tlb> _l1Tlbs;
    mem::Cache _l2;
    xlat::Tlb _l2Tlb;
    mem::Dram _dram;
    Rdma _rdma;

    std::deque<wl::Workgroup> _wgQueue;
    sim::EventFn _wgDoneCb;

    /** Pages with in-flight post-translation accesses, with counts. */
    std::unordered_map<PageId, std::uint32_t> _dataPhase;

    /** Active ACUD drain, if any. */
    std::shared_ptr<const std::vector<PageId>> _drainSet;
    sim::EventFn _drainDone;
    Tick _pausedSince = 0;

    AccessProbe _probe;

    unsigned seOfCu(unsigned cu_id) const { return cu_id / _config.cusPerSe; }
    PageId pageOf(Addr vaddr) const { return vaddr >> _config.pageShift; }

    void tryDispatchWorkgroups();
    void onWorkgroupDone(unsigned cu_idx);

    /**
     * One CU access in flight through the translation + data path.
     * The whole chain (TLB hops, IOMMU round trip, cache hops) shares
     * this single heap box; every hop's lambda captures just
     * {this, pointer}, which fits a sim::InlineEvent inline.
     */
    struct CuAccessReq
    {
        unsigned cuId;
        Addr vaddr;
        PageId page;
        bool isWrite;
        sim::EventFn done;
    };
    using CuAccessPtr = std::unique_ptr<CuAccessReq>;

    void haveTranslation(DeviceId location, CuAccessPtr r);
    void localAccess(CuAccessPtr r);
    /** End of the local data phase: leave the page, run done. */
    void finishLocal(CuAccessPtr r);
    bool drainSatisfied() const;
    void maybeFinishDrain();
};

} // namespace griffin::gpu

#endif // GRIFFIN_GPU_GPU_HH
