/**
 * @file
 * A Compute Unit: executes the wavefront memory traces of one
 * workgroup at a time with a bounded number of concurrent wavefronts.
 *
 * The CU provides the two issue-side primitives that the migration
 * quiesce mechanisms are built from:
 *
 *  - pauseIssue()/resume(): stop feeding new transactions into the
 *    pipeline while keeping all in-flight work alive. Griffin's ACUD
 *    (paper SS III-D) pauses the CUs and then waits — at the GPU level,
 *    where the translated in-flight buffer lives — only for the
 *    transactions that target the migrating pages.
 *  - flushPipeline(): the conventional scheme — discard every
 *    in-flight transaction; the lost work replays after resume().
 */

#ifndef GRIFFIN_GPU_COMPUTE_UNIT_HH
#define GRIFFIN_GPU_COMPUTE_UNIT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/types.hh"
#include "src/workloads/trace.hh"

namespace griffin::gpu {

/** CU execution parameters. */
struct CuConfig
{
    /** Wavefronts that may be in flight concurrently. */
    unsigned maxWavefronts = 16;
    /** Cycles between a workgroup arriving and its first issue. */
    Tick issueLatency = 1;
};

/**
 * The CU's window into the GPU memory system; implemented by Gpu.
 */
class CuMemoryInterface
{
  public:
    virtual ~CuMemoryInterface() = default;

    /**
     * Issue one post-coalescing transaction. @p done fires when the
     * data (or write ack) returns to the CU.
     */
    virtual void cuAccess(unsigned cu_id, Addr vaddr, bool is_write,
                          sim::EventFn done) = 0;
};

/**
 * One Compute Unit.
 */
class ComputeUnit
{
  public:
    ComputeUnit(sim::Engine &engine, CuMemoryInterface &memory,
                unsigned cu_id, const CuConfig &config);

    unsigned cuId() const { return _cuId; }

    /** True while a workgroup is resident. */
    bool busy() const { return _wgActive; }

    /** True while issue is paused (drain or flush in progress). */
    bool paused() const { return _paused; }

    /** Outstanding memory transactions right now. */
    std::size_t inflightOps() const { return _inflight.size(); }

    /**
     * Begin executing @p wg. Must be idle. @p on_done fires when every
     * wavefront of the workgroup has retired.
     */
    void startWorkgroup(wl::Workgroup wg, sim::EventFn on_done);

    /**
     * Stop issuing new transactions; in-flight ones keep running.
     * Part of both the ACUD drain and the flush sequence.
     */
    void pauseIssue();

    /**
     * Conventional flush: discard all in-flight transactions (their
     * issue slots replay after resume()) and pause issue.
     */
    void flushPipeline();

    /** Restart issue after a pause or flush. */
    void resume();

    /** @name Statistics @{ */
    std::uint64_t opsIssued = 0;
    std::uint64_t opsCompleted = 0;
    std::uint64_t opsDiscarded = 0;     ///< killed by flushPipeline()
    std::uint64_t workgroupsRetired = 0;
    /** @} */

  private:
    struct WfState
    {
        std::size_t pc = 0;
        bool inFlight = false;
        bool finished = false;
        /** Issue was deferred because the CU was paused. */
        bool pendingIssue = false;
    };

    sim::Engine &_engine;
    CuMemoryInterface &_memory;
    unsigned _cuId;
    CuConfig _config;

    bool _wgActive = false;
    bool _paused = false;
    wl::Workgroup _wg;
    sim::EventFn _wgDone;
    std::vector<WfState> _wfStates;
    std::deque<std::size_t> _waitingWavefronts; ///< beyond maxWavefronts
    unsigned _runningWavefronts = 0;
    std::size_t _finishedWavefronts = 0;

    std::uint64_t _nextSeq = 0;
    /** seq -> wavefront index, for staleness filtering after a flush. */
    std::unordered_map<std::uint64_t, std::size_t> _inflight;

    void tryIssue(std::size_t wf_index);
    void issueOp(std::size_t wf_index);
    void onOpDone(std::uint64_t seq);
    void finishWavefront(std::size_t wf_index);
};

} // namespace griffin::gpu

#endif // GRIFFIN_GPU_COMPUTE_UNIT_HH
