#include "src/gpu/rdma.hh"

#include <string>
#include <utility>

#include "src/obs/hostprof.hh"
#include "src/obs/trace.hh"

namespace griffin::gpu {

Rdma::Rdma(sim::Engine &engine, ic::Network &network, DeviceId self,
           mem::Cache &l2, mem::Dram &dram, unsigned line_bytes)
    : _engine(engine), _network(network), _self(self), _l2(l2),
      _dram(dram), _lineBytes(line_bytes)
{
}

void
Rdma::serve(Addr addr, bool is_write, DeviceId reply_to,
            sim::EventFn done, sim::EventFn enter_data_phase,
            sim::EventFn leave_data_phase)
{
    if (is_write)
        ++writesServed;
    else
        ++readsServed;

    if (enter_data_phase)
        enter_data_phase();

    const std::uint64_t reply_bytes = is_write
        ? ic::MessageSizes::dcaWriteAck
        : ic::MessageSizes::dcaReadReply;

    // The two continuations (requester's done + the data-phase exit)
    // share one box; the service hops below capture only the wrapper.
    sim::EventFn finish =
        sim::boxed([this, reply_to, reply_bytes, done = std::move(done),
                    leave = std::move(leave_data_phase)]() mutable {
            GHPROF_SCOPE("rdma", "dca_finish");
            if (leave)
                leave();
            _network.send(_self, reply_to, reply_bytes, std::move(done));
        });

    // Per-line DCA service spans. CatDca is off by default — remote
    // traffic is per-cache-line and would dominate the trace.
    if (obs::TraceSession::activeFor(obs::CatDca)) {
        const Tick begin = _engine.now();
        finish = sim::boxed([this, addr, is_write, reply_to, begin,
                             finish = std::move(finish)]() mutable {
            if (auto *tr = obs::TraceSession::activeFor(obs::CatDca)) {
                tr->complete(obs::CatDca, "rdma" + std::to_string(_self),
                             is_write ? "dca_write" : "dca_read", begin,
                             _engine.now(),
                             obs::TraceArgs()
                                 .add("addr", addr)
                                 .add("from", reply_to));
            }
            finish();
        });
    }

    // L2 lookup; fall through to DRAM on a miss. Dirty victims write
    // back asynchronously (no one waits on them).
    const auto result = _l2.access(addr, is_write);
    if (result.writeback)
        _dram.access(_engine.now() + _l2.latency(), result.writebackAddr,
                     _lineBytes, true);

    if (result.hit) {
        ++l2HitsServed;
        _engine.schedule(_l2.latency(), std::move(finish));
    } else {
        // Write-allocate: a missing line is fetched from DRAM first,
        // so the DRAM transaction is a read either way.
        const Tick ready = _dram.access(_engine.now() + _l2.latency(),
                                        addr, _lineBytes, false);
        _engine.scheduleAt(ready, std::move(finish));
    }
}

} // namespace griffin::gpu
