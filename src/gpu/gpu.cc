#include "src/gpu/gpu.hh"

#include "src/obs/hostprof.hh"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "src/obs/timeseries.hh"
#include "src/obs/trace.hh"
#include "src/sim/log.hh"

namespace griffin::gpu {

Gpu::Gpu(sim::Engine &engine, DeviceId id, const GpuConfig &config,
         ic::Network &network, xlat::Iommu &iommu, RemoteRouter &router)
    : _engine(engine), _id(id), _config(config), _network(network),
      _iommu(iommu), _router(router), _l2(config.l2Cache),
      _l2Tlb(config.l2Tlb), _dram(config.dram),
      _rdma(engine, network, id, _l2, _dram, config.lineBytes)
{
    assert(id != cpuDeviceId && "device 0 is the CPU");

    const unsigned num_cus = config.numCus();
    _cus.reserve(num_cus);
    _l1s.reserve(num_cus);
    _l1Tlbs.reserve(num_cus);
    for (unsigned cu_id = 0; cu_id < num_cus; ++cu_id) {
        _cus.push_back(std::make_unique<ComputeUnit>(engine, *this, cu_id,
                                                     config.cu));
        _l1s.emplace_back(config.l1Cache);
        _l1Tlbs.emplace_back(config.l1Tlb);
    }
    _ses.reserve(config.numSes);
    for (unsigned se = 0; se < config.numSes; ++se) {
        _ses.emplace_back(se, se * config.cusPerSe, config.cusPerSe,
                          config.accessCounterCapacity);
    }
}

// ---------------------------------------------------------------------
// Workgroup execution
// ---------------------------------------------------------------------

void
Gpu::enqueueWorkgroup(wl::Workgroup wg)
{
    _wgQueue.push_back(std::move(wg));
    tryDispatchWorkgroups();
}

void
Gpu::tryDispatchWorkgroups()
{
    for (unsigned cu_idx = 0; cu_idx < _cus.size() && !_wgQueue.empty();
         ++cu_idx) {
        if (_cus[cu_idx]->busy())
            continue;
        wl::Workgroup wg = std::move(_wgQueue.front());
        _wgQueue.pop_front();
        _cus[cu_idx]->startWorkgroup(std::move(wg), [this, cu_idx] {
            onWorkgroupDone(cu_idx);
        });
    }
}

void
Gpu::onWorkgroupDone(unsigned cu_idx)
{
    ++workgroupsExecuted;
    if (!_wgQueue.empty() && !_cus[cu_idx]->busy()) {
        wl::Workgroup wg = std::move(_wgQueue.front());
        _wgQueue.pop_front();
        _cus[cu_idx]->startWorkgroup(std::move(wg), [this, cu_idx] {
            onWorkgroupDone(cu_idx);
        });
    }
    if (_wgDoneCb)
        _wgDoneCb();
}

unsigned
Gpu::freeCus() const
{
    unsigned free = 0;
    for (const auto &cu : _cus)
        free += cu->busy() ? 0 : 1;
    return free > unsigned(_wgQueue.size())
        ? free - unsigned(_wgQueue.size())
        : 0;
}

unsigned
Gpu::busyCus() const
{
    unsigned busy = 0;
    for (const auto &cu : _cus)
        busy += cu->busy() ? 1 : 0;
    return busy;
}

bool
Gpu::idle() const
{
    if (!_wgQueue.empty())
        return false;
    for (const auto &cu : _cus) {
        if (cu->busy())
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Memory access path
// ---------------------------------------------------------------------

void
Gpu::cuAccess(unsigned cu_id, Addr vaddr, bool is_write, sim::EventFn done)
{
    const PageId page = pageOf(vaddr);

    // DPC hardware: the SE access counter intercepts the request on
    // its way to the TLB (paper SS III-C: counted before translation).
    _ses[seOfCu(cu_id)].counter().record(page);
    if (_probe)
        _probe(_engine.now(), _id, page);

    // One heap box carries the access (callback included) through the
    // whole chain; each hop captures {this, pointer}, which stays
    // inside the event's inline storage.
    auto req = std::make_unique<CuAccessReq>(
        CuAccessReq{cu_id, vaddr, page, is_write, std::move(done)});

    // L1 TLB.
    _engine.schedule(_l1Tlbs[cu_id].latency(),
                     [this, r = std::move(req)]() mutable {
        GHPROF_SCOPE("gpu", "l1_tlb");
        if (auto loc = _l1Tlbs[r->cuId].lookup(r->page)) {
            haveTranslation(*loc, std::move(r));
            return;
        }
        // L2 TLB.
        _engine.schedule(_l2Tlb.latency(),
                         [this, r = std::move(r)]() mutable {
            GHPROF_SCOPE("gpu", "l2_tlb");
            if (auto loc = _l2Tlb.lookup(r->page)) {
                _l1Tlbs[r->cuId].fill(r->page, *loc);
                haveTranslation(*loc, std::move(r));
                return;
            }
            // IOMMU over the fabric. The miss time here is the span
            // origin if this access ends up faulting.
            ++xlatRequestsSent;
            const Tick miss_at = _engine.now();
            _network.send(_id, cpuDeviceId, ic::MessageSizes::xlatRequest,
                          [this, miss_at, r = std::move(r)]() mutable {
                GHPROF_SCOPE("gpu", "xlat_request");
                const PageId page = r->page;
                const bool is_write = r->isWrite;
                _iommu.request(_id, page, is_write,
                               [this, r = std::move(r)]
                               (xlat::XlatReply reply) mutable {
                    // Remote translations are never cached in the GPU
                    // TLBs (paper SS II-B). A cacheable reply is also
                    // fenced against migration: if the page went into
                    // migration while the reply crossed the fabric,
                    // the shootdown already ran and filling now would
                    // plant a stale entry nothing will invalidate.
                    if (reply.cacheable &&
                        !_iommu.pageMigrating(r->page)) {
                        _l1Tlbs[r->cuId].fill(r->page, reply.location);
                        _l2Tlb.fill(r->page, reply.location);
                    }
                    haveTranslation(reply.location, std::move(r));
                },
                miss_at);
            });
        });
    });
}

void
Gpu::haveTranslation(DeviceId location, CuAccessPtr r)
{
    if (location == _id) {
        ++localAccesses;
        enterDataPhase(r->page);
        localAccess(std::move(r));
    } else {
        ++remoteAccesses;
        obs::TimeSeries::countActive(
            obs::TimeSeries::Series::DcaAccesses);
        _router.remoteAccess(_id, location, r->vaddr, r->isWrite,
                             std::move(r->done));
    }
}

void
Gpu::finishLocal(CuAccessPtr r)
{
    leaveDataPhase(r->page);
    r->done();
}

void
Gpu::localAccess(CuAccessPtr req)
{
    mem::Cache &l1 = _l1s[req->cuId];
    _engine.schedule(l1.latency(), [this, &l1, r = std::move(req)]() mutable {
        GHPROF_SCOPE("gpu", "l1_cache");
        const auto r1 = l1.access(r->vaddr, r->isWrite);
        if (r1.writeback) {
            // Dirty L1 victim drains into the L2 asynchronously.
            const Addr wb = r1.writebackAddr;
            _engine.schedule(_config.xbarLatency, [this, wb] {
                GHPROF_SCOPE("gpu", "l2_writeback");
                const auto r = _l2.access(wb, true);
                if (r.writeback)
                    _dram.access(_engine.now(), r.writebackAddr,
                                 _config.lineBytes, true);
            });
        }
        if (r1.hit) {
            finishLocal(std::move(r));
            return;
        }

        // L1 miss: cross the XBar to the shared L2.
        _engine.schedule(_config.xbarLatency + _l2.latency(),
                         [this, r = std::move(r)]() mutable {
            GHPROF_SCOPE("gpu", "l2_cache");
            const auto r2 = _l2.access(r->vaddr, r->isWrite);
            if (r2.writeback)
                _dram.access(_engine.now(), r2.writebackAddr,
                             _config.lineBytes, true);
            if (r2.hit) {
                _engine.schedule(_config.xbarLatency,
                                 [this, r = std::move(r)]() mutable {
                    finishLocal(std::move(r));
                });
                return;
            }
            // L2 miss: local HBM (write-allocate reads the line).
            const Tick ready = _dram.access(_engine.now(), r->vaddr,
                                            _config.lineBytes, false);
            _engine.scheduleAt(ready + _config.xbarLatency,
                               [this, r = std::move(r)]() mutable {
                finishLocal(std::move(r));
            });
        });
    });
}

// ---------------------------------------------------------------------
// Drain / flush machinery
// ---------------------------------------------------------------------

void
Gpu::enterDataPhase(PageId page)
{
    ++_dataPhase[page];
}

void
Gpu::leaveDataPhase(PageId page)
{
    auto it = _dataPhase.find(page);
    assert(it != _dataPhase.end() && it->second > 0);
    if (--it->second == 0)
        _dataPhase.erase(it);
    maybeFinishDrain();
}

bool
Gpu::drainSatisfied() const
{
    if (!_drainSet)
        return true;
    for (const PageId page : *_drainSet) {
        if (_dataPhase.count(page))
            return false;
    }
    return true;
}

void
Gpu::maybeFinishDrain()
{
    if (!_drainDone || !drainSatisfied())
        return;
    auto done = std::move(_drainDone);
    _drainDone = nullptr;
    _drainSet.reset();
    done();
}

void
Gpu::drainForPages(std::shared_ptr<const std::vector<PageId>> pages,
                   sim::EventFn done)
{
    assert(!_drainDone && "one drain at a time per GPU");
    assert(std::is_sorted(pages->begin(), pages->end()));
    ++drains;
    _pausedSince = _engine.now();

    if (obs::TraceSession::activeFor(obs::CatDrain)) {
        const Tick begin = _engine.now();
        const std::size_t npages = pages->size();
        done = sim::boxed([this, begin, npages, done = std::move(done)] {
            if (auto *tr = obs::TraceSession::activeFor(obs::CatDrain)) {
                tr->complete(obs::CatDrain, "gpu" + std::to_string(_id),
                             "acud_drain", begin, _engine.now(),
                             obs::TraceArgs().add("pages", npages));
            }
            done();
        });
    }

    // Pause the workgroup schedulers: no new instructions issue while
    // the drain is pending (paper SS III-D).
    for (auto &cu : _cus)
        cu->pauseIssue();

    // Scan the in-flight buffers after the comparator latency, then
    // wait only for accesses that target the migrating pages.
    _drainSet = std::move(pages);
    _engine.schedule(_config.drainCheckLatency,
                     sim::boxed([this, done = std::move(done)]() mutable {
        GHPROF_SCOPE("gpu", "drain_check");
        if (drainSatisfied()) {
            ++drainsImmediate;
            _drainSet.reset();
            done();
            return;
        }
        _drainDone = std::move(done);
    }));
}

void
Gpu::flushForMigration(sim::EventFn done)
{
    assert(!_drainDone && "cannot flush during a drain");
    ++fullFlushes;
    _pausedSince = _engine.now();

    // Discard all in-flight work on every CU.
    for (auto &cu : _cus)
        cu->flushPipeline();

    // Invalidate every TLB entry on this GPU.
    std::uint64_t entries = 0;
    for (auto &tlb : _l1Tlbs)
        entries += tlb.invalidateAll();
    entries += _l2Tlb.invalidateAll();
    ++tlbShootdownEvents;
    obs::TimeSeries::countActive(obs::TimeSeries::Series::Shootdowns);
    tlbEntriesShotDown += entries;

    // Flush both cache levels; dirty lines drain into local DRAM.
    Tick last_wb = _engine.now();
    for (auto &l1 : _l1s) {
        const auto fr = l1.flushAll();
        for (std::uint64_t i = 0; i < fr.dirtyWritebacks; ++i) {
            last_wb = std::max(last_wb,
                               _dram.access(_engine.now(), 0,
                                            _config.lineBytes, true));
        }
    }
    const auto fr2 = _l2.flushAll();
    for (std::uint64_t i = 0; i < fr2.dirtyWritebacks; ++i) {
        last_wb = std::max(last_wb, _dram.access(_engine.now(), 0,
                                                 _config.lineBytes, true));
    }

    const Tick delay = (last_wb - _engine.now()) +
                       _config.flushRecoveryLatency;
    if (auto *tr = obs::TraceSession::activeFor(obs::CatDrain)) {
        tr->complete(obs::CatDrain, "gpu" + std::to_string(_id),
                     "full_flush", _engine.now(), _engine.now() + delay,
                     obs::TraceArgs().add("entries", entries));
    }
    _engine.schedule(delay, std::move(done));
}

void
Gpu::resumeAllCus()
{
    pausedCycles += _engine.now() - _pausedSince;
    if (auto *tr = obs::TraceSession::activeFor(obs::CatDrain)) {
        tr->complete(obs::CatDrain, "gpu" + std::to_string(_id), "paused",
                     _pausedSince, _engine.now(), obs::TraceArgs());
    }
    for (auto &cu : _cus) {
        if (cu->paused())
            cu->resume();
    }
}

void
Gpu::shootdownPages(const std::vector<PageId> &pages)
{
    assert(std::is_sorted(pages.begin(), pages.end()));
    ++tlbShootdownEvents;
    obs::TimeSeries::countActive(obs::TimeSeries::Series::Shootdowns);
    std::uint64_t entries = 0;
    for (const PageId page : pages) {
        for (auto &tlb : _l1Tlbs)
            entries += tlb.invalidatePage(page) ? 1 : 0;
        entries += _l2Tlb.invalidatePage(page) ? 1 : 0;
    }
    tlbEntriesShotDown += entries;
    GLOG(Trace, "gpu " << _id << ": shootdown of " << pages.size()
                       << " pages, " << entries << " entries");
    if (auto *tr = obs::TraceSession::activeFor(obs::CatShootdown)) {
        tr->instant(obs::CatShootdown, "gpu" + std::to_string(_id),
                    "tlb_shootdown", _engine.now(),
                    obs::TraceArgs()
                        .add("pages", pages.size())
                        .add("entries", entries));
    }
}

Tick
Gpu::flushCachesForPages(const std::vector<PageId> &pages)
{
    Tick last_wb = _engine.now();
    std::uint64_t dirty = 0;
    for (auto &l1 : _l1s)
        dirty += l1.flushPages(pages, _config.pageShift).dirtyWritebacks;
    dirty += _l2.flushPages(pages, _config.pageShift).dirtyWritebacks;

    for (std::uint64_t i = 0; i < dirty; ++i) {
        // Address 0 per line is fine for the channel model: the
        // writeback burst is what costs time, not its placement.
        last_wb = std::max(last_wb,
                           _dram.access(_engine.now(),
                                        Addr(i) * _config.lineBytes,
                                        _config.lineBytes, true));
    }
    return last_wb;
}

// ---------------------------------------------------------------------
// DPC hardware
// ---------------------------------------------------------------------

std::vector<PageCount>
Gpu::collectAccessCounts()
{
    std::unordered_map<PageId, std::uint32_t> merged;
    for (auto &se : _ses) {
        for (const auto &pc : se.counter().collectTop(
                 _config.accessCounterTopN)) {
            merged[pc.page] += pc.count;
        }
    }
    std::vector<PageCount> out;
    out.reserve(merged.size());
    for (const auto &[page, count] : merged)
        out.push_back(PageCount{page, count});
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        if (a.count != b.count)
            return a.count > b.count;
        return a.page < b.page;
    });
    return out;
}

} // namespace griffin::gpu
