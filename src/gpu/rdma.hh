/**
 * @file
 * The per-GPU RDMA engine that serves Direct Cache Access requests
 * from other devices (paper SS II-B, Figure 4): a remote device sends a
 * cache-line read/write, the RDMA engine resolves it against the local
 * L2 (falling through to local DRAM on a miss) and replies over the
 * fabric.
 */

#ifndef GRIFFIN_GPU_RDMA_HH
#define GRIFFIN_GPU_RDMA_HH

#include <cstdint>
#include <functional>

#include "src/interconnect/switch.hh"
#include "src/mem/cache.hh"
#include "src/mem/dram.hh"
#include "src/sim/engine.hh"
#include "src/sim/types.hh"

namespace griffin::gpu {

/**
 * Serves incoming DCA traffic against a local L2 + DRAM pair.
 */
class Rdma
{
  public:
    /**
     * @param engine   event engine.
     * @param network  the inter-device fabric (used for replies).
     * @param self     the device this engine belongs to.
     * @param l2       the device's shared L2 cache.
     * @param dram     the device's local memory.
     * @param line_bytes transfer granularity.
     */
    Rdma(sim::Engine &engine, ic::Network &network, DeviceId self,
         mem::Cache &l2, mem::Dram &dram, unsigned line_bytes = 64);

    /**
     * Serve one remote access that has already arrived here.
     * @p reply_to is the requesting device; @p done runs there after
     * the reply message lands.
     *
     * The caller may pass hooks that run when the access enters and
     * leaves the local data phase (used by ACUD drain tracking).
     */
    void serve(Addr addr, bool is_write, DeviceId reply_to,
               sim::EventFn done,
               sim::EventFn enter_data_phase = nullptr,
               sim::EventFn leave_data_phase = nullptr);

    /** @name Statistics @{ */
    std::uint64_t readsServed = 0;
    std::uint64_t writesServed = 0;
    std::uint64_t l2HitsServed = 0;
    /** @} */

  private:
    sim::Engine &_engine;
    ic::Network &_network;
    DeviceId _self;
    mem::Cache &_l2;
    mem::Dram &_dram;
    unsigned _lineBytes;
};

} // namespace griffin::gpu

#endif // GRIFFIN_GPU_RDMA_HH
