#include "src/gpu/shader_engine.hh"

#include <cassert>

namespace griffin::gpu {

ShaderEngine::ShaderEngine(unsigned se_id, unsigned first_cu,
                           unsigned num_cus, std::size_t counter_capacity)
    : _seId(se_id), _firstCu(first_cu), _numCus(num_cus),
      _counter(counter_capacity)
{
    assert(num_cus > 0 && num_cus <= 16 &&
           "a Shader Engine groups up to 16 CUs");
}

} // namespace griffin::gpu
