/**
 * @file
 * The per-Shader-Engine page access counter table that feeds Griffin's
 * Dynamic Page Classification (paper SS III-C and SS V "Hardware Cost").
 *
 * Hardware budget follows the paper: 100 entries per table, each
 * holding a 36-bit page id and an 8-bit saturating count; the driver
 * periodically collects the top entries (20 fit in one 110-byte
 * message) and the table resets.
 */

#ifndef GRIFFIN_GPU_ACCESS_COUNTER_HH
#define GRIFFIN_GPU_ACCESS_COUNTER_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::gpu {

/** One collected (page, count) sample. */
struct PageCount
{
    PageId page;
    std::uint32_t count;
};

/**
 * A bounded page -> saturating-count table.
 */
class AccessCounter
{
  public:
    /**
     * @param capacity  entries in the hardware table (paper: 100).
     * @param max_count saturation value of the counter (paper: 0xff).
     */
    explicit AccessCounter(std::size_t capacity = 100,
                           std::uint32_t max_count = 0xff);

    std::size_t capacity() const { return _capacity; }

    /**
     * Record one post-coalescing transaction to @p page. When the
     * table is full the entry with the smallest count is replaced,
     * which keeps the hottest pages resident.
     */
    void record(PageId page);

    /**
     * Collect up to @p max_pages entries with the largest counts and
     * reset the table (the paper resets counters after each transfer
     * to the driver).
     */
    std::vector<PageCount> collectTop(std::size_t max_pages);

    /** Current entry count (for tests). */
    std::size_t size() const { return _table.size(); }

    /** @name Statistics @{ */
    std::uint64_t recorded = 0;
    std::uint64_t saturated = 0;
    std::uint64_t capacityEvictions = 0;
    /** @} */

  private:
    std::size_t _capacity;
    std::uint32_t _maxCount;
    std::unordered_map<PageId, std::uint32_t> _table;
};

} // namespace griffin::gpu

#endif // GRIFFIN_GPU_ACCESS_COUNTER_HH
