#include "src/gpu/access_counter.hh"

#include <algorithm>
#include <cassert>

namespace griffin::gpu {

AccessCounter::AccessCounter(std::size_t capacity, std::uint32_t max_count)
    : _capacity(capacity), _maxCount(max_count)
{
    assert(capacity > 0 && max_count > 0);
}

void
AccessCounter::record(PageId page)
{
    ++recorded;

    if (auto it = _table.find(page); it != _table.end()) {
        if (it->second < _maxCount)
            ++it->second;
        else
            ++saturated;
        return;
    }

    if (_table.size() >= _capacity) {
        // Replace the coldest entry; hardware would keep a min tree.
        auto coldest = _table.begin();
        for (auto it = _table.begin(); it != _table.end(); ++it) {
            if (it->second < coldest->second)
                coldest = it;
        }
        _table.erase(coldest);
        ++capacityEvictions;
    }
    _table.emplace(page, 1);
}

std::vector<PageCount>
AccessCounter::collectTop(std::size_t max_pages)
{
    std::vector<PageCount> all;
    all.reserve(_table.size());
    for (const auto &[page, count] : _table)
        all.push_back(PageCount{page, count});
    _table.clear();

    std::sort(all.begin(), all.end(), [](const auto &a, const auto &b) {
        if (a.count != b.count)
            return a.count > b.count;
        return a.page < b.page; // deterministic tie-break
    });
    if (all.size() > max_pages)
        all.resize(max_pages);
    return all;
}

} // namespace griffin::gpu
