/**
 * @file
 * Fundamental scalar types shared by every module in the simulator.
 */

#ifndef GRIFFIN_SIM_TYPES_HH
#define GRIFFIN_SIM_TYPES_HH

#include <cstdint>

namespace griffin {

/** Simulated time, in GPU core cycles (the GPU clock is 1 GHz). */
using Tick = std::uint64_t;

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** Virtual page number (address >> page shift). */
using PageId = std::uint64_t;

/**
 * A device identifier. The CPU is always device 0; GPUs are numbered
 * 1..numGpus. Using one id space keeps page-table bookkeeping and
 * interconnect routing uniform.
 */
using DeviceId = std::uint32_t;

/** The CPU's device id. */
inline constexpr DeviceId cpuDeviceId = 0;

/** An invalid / "no device" marker. */
inline constexpr DeviceId invalidDeviceId = ~DeviceId(0);

/** Sentinel for "never" / "not scheduled". */
inline constexpr Tick maxTick = ~Tick(0);

/**
 * Identity of one page fault, allocated when the IOMMU raises the
 * fault and threaded through the whole service path (driver batch,
 * PMC transfer, translation replay) so the observability layer can
 * assemble a causal span tree per fault (obs/span.hh).
 */
using FaultId = std::uint64_t;

/** "No fault being tracked": instrumentation points become no-ops. */
inline constexpr FaultId invalidFaultId = 0;

} // namespace griffin

#endif // GRIFFIN_SIM_TYPES_HH
