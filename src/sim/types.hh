/**
 * @file
 * Fundamental scalar types shared by every module in the simulator.
 */

#ifndef GRIFFIN_SIM_TYPES_HH
#define GRIFFIN_SIM_TYPES_HH

#include <cstdint>

namespace griffin {

/** Simulated time, in GPU core cycles (the GPU clock is 1 GHz). */
using Tick = std::uint64_t;

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** Virtual page number (address >> page shift). */
using PageId = std::uint64_t;

/**
 * A device identifier. The CPU is always device 0; GPUs are numbered
 * 1..numGpus. Using one id space keeps page-table bookkeeping and
 * interconnect routing uniform.
 */
using DeviceId = std::uint32_t;

/** The CPU's device id. */
inline constexpr DeviceId cpuDeviceId = 0;

/** An invalid / "no device" marker. */
inline constexpr DeviceId invalidDeviceId = ~DeviceId(0);

/** Sentinel for "never" / "not scheduled". */
inline constexpr Tick maxTick = ~Tick(0);

} // namespace griffin

#endif // GRIFFIN_SIM_TYPES_HH
