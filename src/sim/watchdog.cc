#include "src/sim/watchdog.hh"

#include <sstream>

namespace griffin::sim {

bool
Watchdog::hasOutstandingWork() const
{
    for (const Entry &e : _probes) {
        if (e.probe() != 0)
            return true;
    }
    return false;
}

std::string
Watchdog::snapshot() const
{
    std::ostringstream os;
    for (const Entry &e : _probes) {
        os << "  " << e.component << ": " << e.what << " = " << e.probe()
           << "\n";
    }
    return os.str();
}

void
Watchdog::checkQuiesced(Tick now) const
{
    std::ostringstream bad;
    for (const Entry &e : _probes) {
        const std::uint64_t v = e.probe();
        if (v != 0)
            bad << "  " << e.component << ": " << e.what << " = " << v
                << "\n";
    }
    const std::string stuck = bad.str();
    if (stuck.empty())
        return;
    throw WatchdogError(
        "simulation quiesced at tick " + std::to_string(now) +
        " with outstanding work (lost wakeup):\n" + stuck +
        "full probe snapshot:\n" + snapshot());
}

} // namespace griffin::sim
