/**
 * @file
 * Hang detection for whole-system simulations.
 *
 * Two failure shapes a discrete-event model can fall into:
 *
 *  - a LOST WAKEUP: the event queue drains while a component still
 *    holds outstanding work (a queued fault nobody will service, a
 *    parked translation nobody will replay). The simulation "ends"
 *    silently with wrong results;
 *  - a LIVELOCK / runaway: events keep firing past any plausible end
 *    time (Engine's maxTicks limit).
 *
 * The Watchdog holds a set of named numeric probes ("driver:
 * pendingFaults", "iommu: parkedRequests", ...). After the queue
 * drains, checkQuiesced() throws a WatchdogError if any probe is
 * nonzero; on a maxTicks overrun, the Engine folds snapshot() into
 * its exception. Either way the run fails cleanly with a diagnostic
 * snapshot instead of hanging or lying.
 */

#ifndef GRIFFIN_SIM_WATCHDOG_HH
#define GRIFFIN_SIM_WATCHDOG_HH

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::sim {

/**
 * Thrown when a simulation hangs (maxTicks overrun) or quiesces with
 * outstanding work. Derives from std::runtime_error so existing
 * watchdog handling keeps working; the message carries the probe
 * snapshot.
 */
class WatchdogError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A registry of liveness probes. Components (or the system that owns
 * them) register one probe per unit of outstanding work; all probes
 * reading 0 defines "quiesced".
 */
class Watchdog
{
  public:
    /** Current amount of outstanding work behind one probe. */
    using Probe = std::function<std::uint64_t()>;

    /** Register a probe under "<component>: <what>". */
    void
    addProbe(std::string component, std::string what, Probe probe)
    {
        _probes.push_back(Entry{std::move(component), std::move(what),
                                std::move(probe)});
    }

    std::size_t probeCount() const { return _probes.size(); }

    /** True when at least one probe reads nonzero. */
    bool hasOutstandingWork() const;

    /**
     * Every probe's current reading, one "  component: what = N" line
     * per probe (the diagnostic dump attached to failures).
     */
    std::string snapshot() const;

    /**
     * The event queue drained at @p now: verify nothing was left
     * behind. @throws WatchdogError naming every nonzero probe, with
     * the full snapshot attached.
     */
    void checkQuiesced(Tick now) const;

  private:
    struct Entry
    {
        std::string component;
        std::string what;
        Probe probe;
    };

    std::vector<Entry> _probes;
};

} // namespace griffin::sim

#endif // GRIFFIN_SIM_WATCHDOG_HH
