/**
 * @file
 * A move-only callable with compile-time-checked inline capture
 * storage — the scheduling substrate's replacement for
 * std::function.
 *
 * Every event the simulator schedules used to be type-erased into a
 * std::function<void()>, which heap-allocates for any capture larger
 * than its tiny SBO buffer (16 bytes on libstdc++) — one allocation
 * per scheduled event on the hottest path in the program. InlineFn
 * stores the callable inline, always:
 *
 *  - callables up to @ref capacity bytes are placement-new'd into the
 *    entry itself; there is no heap fallback, so the dispatch path
 *    performs zero allocations by construction;
 *  - callables that do NOT fit fail to compile with a static_assert
 *    pointing at sim::boxed(). The size budget is a checked contract,
 *    not a heuristic: growing a hot lambda past the line is an
 *    explicit, reviewable decision at the call site.
 *
 * A capture that is genuinely large (or that captures another
 * InlineFn — a continuation chain can never nest inside its own
 * fixed-size buffer) is boxed once with sim::boxed(), which moves it
 * behind a unique_ptr and captures the 8-byte pointer instead. That
 * costs one allocation at the *capturing* site — exactly what
 * std::function silently did — while the dominant schedule shapes
 * ([this] continuations, scalar captures) stay allocation-free.
 */

#ifndef GRIFFIN_SIM_INLINE_FN_HH
#define GRIFFIN_SIM_INLINE_FN_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace griffin::sim {

template <typename Signature>
class InlineFn;

/**
 * Move-only type-erased callable with inline storage.
 *
 * Semantics mirror std::function where they overlap: default/nullptr
 * construction yields an empty callable, contextual bool tests for a
 * target, assignment replaces the target. Unlike std::function it is
 * move-only (captures may own unique_ptrs) and never allocates.
 */
template <typename R, typename... Args>
class InlineFn<R(Args...)>
{
  public:
    /** Inline capture budget, in bytes. */
    static constexpr std::size_t capacity = 56;
    /** Maximum supported capture alignment. */
    static constexpr std::size_t alignment = alignof(void *);

    InlineFn() noexcept = default;
    InlineFn(std::nullptr_t) noexcept {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFn> &&
                  !std::is_same_v<D, std::nullptr_t> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFn(F &&fn)
    {
        static_assert(sizeof(D) <= capacity,
                      "capture too large for InlineFn's inline storage: "
                      "shrink the capture or wrap the callable in "
                      "sim::boxed()");
        static_assert(alignof(D) <= alignment,
                      "capture over-aligned for InlineFn storage");
        static_assert(std::is_nothrow_move_constructible_v<D>,
                      "InlineFn requires nothrow-movable captures");
        ::new (static_cast<void *>(_buf)) D(std::forward<F>(fn));
        _ops = opsFor<D>();
    }

    InlineFn(InlineFn &&other) noexcept { moveFrom(other); }

    InlineFn &
    operator=(InlineFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFn &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    /** True when a target is set. */
    explicit operator bool() const noexcept { return _ops != nullptr; }

    /** Invoke the target (undefined when empty, as for std::function). */
    R
    operator()(Args... args) const
    {
        // Like std::function, invoking through a const wrapper calls a
        // non-const target; the buffer is logically mutable.
        return _ops->invoke(const_cast<unsigned char *>(_buf),
                            std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args...);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename D>
    static const Ops *
    opsFor()
    {
        static constexpr Ops ops{
            [](void *p, Args... args) -> R {
                return (*static_cast<D *>(p))(
                    std::forward<Args>(args)...);
            },
            [](void *dst, void *src) noexcept {
                ::new (dst) D(std::move(*static_cast<D *>(src)));
                static_cast<D *>(src)->~D();
            },
            [](void *p) noexcept { static_cast<D *>(p)->~D(); }};
        return &ops;
    }

    void
    reset() noexcept
    {
        if (_ops) {
            _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

    void
    moveFrom(InlineFn &other) noexcept
    {
        if (other._ops) {
            other._ops->relocate(_buf, other._buf);
            _ops = other._ops;
            other._ops = nullptr;
        }
    }

    alignas(alignment) unsigned char _buf[capacity];
    const Ops *_ops = nullptr;
};

/**
 * Move @p fn behind a unique_ptr and return an 8-byte callable that
 * forwards to it. Use at call sites whose capture cannot fit an
 * InlineFn inline — typically a lambda that captures a continuation
 * (itself an InlineFn) plus context. For a continuation *chain*,
 * prefer boxing the shared per-request state once and letting each
 * hop capture the pointer, so the whole chain costs one allocation.
 */
template <typename F>
auto
boxed(F &&fn)
{
    return [p = std::make_unique<std::decay_t<F>>(std::forward<F>(fn))](
               auto &&...args) -> decltype(auto) {
        return (*p)(std::forward<decltype(args)>(args)...);
    };
}

} // namespace griffin::sim

#endif // GRIFFIN_SIM_INLINE_FN_HH
