/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator never uses std::random_device or global state: every
 * consumer owns an Rng seeded from the system seed so runs are
 * bit-reproducible and components can be reordered without perturbing
 * each other's streams.
 */

#ifndef GRIFFIN_SIM_RNG_HH
#define GRIFFIN_SIM_RNG_HH

#include <cstdint>

namespace griffin::sim {

/**
 * xoshiro256** generator; small, fast, and good enough for workload
 * synthesis and tie-breaking.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    /** Re-initialize the state from @p seed (splitmix64 expansion). */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return nextDouble() < p; }

    /**
     * Derive an independent generator; used to give each workgroup or
     * component its own stream from one master seed.
     */
    Rng split();

  private:
    std::uint64_t _s[4];
};

} // namespace griffin::sim

#endif // GRIFFIN_SIM_RNG_HH
