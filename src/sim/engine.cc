#include "src/sim/engine.hh"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/obs/hostprof.hh"
#include "src/sim/watchdog.hh"

namespace griffin::sim {

Tick
Engine::run()
{
    // Reset per-run stop state: a stop requested during (or after) a
    // previous run must not make this run return immediately.
    _stopRequested = false;
    for (;;) {
        const Tick next = _queue.nextTime();
        if (next == maxTick)
            break; // drained
        if (!_hooks.empty())
            fireHooksUpTo(next);
        if (!_queue.runOne())
            break;
        if (_queue.now() > _maxTicks) {
            std::string msg = "simulation watchdog tripped at tick " +
                              std::to_string(_queue.now()) +
                              ": model is likely livelocked";
            if (_watchdog)
                msg += "\nprobe snapshot:\n" + _watchdog->snapshot();
            throw WatchdogError(msg);
        }
        if (_stopRequested)
            break;
    }
    return _queue.now();
}

std::uint64_t
Engine::addPeriodicHook(Tick period, HookFn fn)
{
    assert(period > 0);
    const std::uint64_t id = _nextHookId++;
    // First boundary: the next multiple of period strictly after now.
    const Tick next = (now() / period + 1) * period;
    _hooks.push_back(Hook{id, period, next, std::move(fn)});
    return id;
}

void
Engine::removePeriodicHook(std::uint64_t id)
{
    _hooks.erase(std::remove_if(_hooks.begin(), _hooks.end(),
                                [id](const Hook &h) { return h.id == id; }),
                 _hooks.end());
}

void
Engine::fireHooksUpTo(Tick limit)
{
    // Fire all boundaries <= limit in global time order so multiple
    // hooks interleave deterministically.
    for (;;) {
        Hook *earliest = nullptr;
        for (Hook &h : _hooks) {
            if (h.next <= limit && (!earliest || h.next < earliest->next))
                earliest = &h;
        }
        if (!earliest)
            return;
        const Tick boundary = earliest->next;
        earliest->next += earliest->period;
        // Hooks fire between dispatches, so this scope is parentless:
        // its time lands in the profile's buckets but not dispatchNs
        // (hook-driven sinks open nested "obs;..." scopes below it).
        GHPROF_SCOPE("sim", "periodic_hook");
        earliest->fn(boundary);
    }
}

} // namespace griffin::sim
