#include "src/sim/engine.hh"

#include <stdexcept>
#include <string>

namespace griffin::sim {

Tick
Engine::run()
{
    _stopRequested = false;
    while (!_stopRequested && _queue.runOne()) {
        if (_queue.now() > _maxTicks) {
            throw std::runtime_error(
                "simulation watchdog tripped at tick " +
                std::to_string(_queue.now()) +
                ": model is likely livelocked");
        }
    }
    return _queue.now();
}

} // namespace griffin::sim
