#include "src/sim/event_queue.hh"

#include <cassert>
#include <utility>

#include "src/obs/hostprof.hh"
#include "src/sim/log.hh"

namespace griffin::sim {

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    if (when < _now) {
        // A component computed an absolute time that already passed —
        // diagnose loudly, then clamp so time stays monotone.
        GLOG(Warn, "scheduleAt(" << when << ") is in the past (now "
                                 << _now << "); clamping to now");
        when = _now;
    }
    _heap.push(Entry{when, _nextSeq++, std::move(fn)});
}

TimerId
EventQueue::scheduleTimeout(Tick delay, EventFn fn)
{
    const TimerId id = _nextSeq;
    _pendingTimers.insert(id);
    scheduleAt(_now + delay, std::move(fn));
    return id;
}

bool
EventQueue::cancelTimeout(TimerId id)
{
    if (_pendingTimers.erase(id) == 0)
        return false;
    // The heap entry stays until it reaches the top; runOne() and
    // pruneCancelled() skip it without advancing time.
    _cancelled.insert(id);
    return true;
}

void
EventQueue::pruneCancelled()
{
    while (!_heap.empty() && _cancelled.count(_heap.top().seq)) {
        _cancelled.erase(_heap.top().seq);
        _heap.pop();
    }
}

bool
EventQueue::runOne()
{
    pruneCancelled();
    if (_heap.empty())
        return false;

    // Move the callback out before popping so the entry can schedule
    // further events (which mutates the heap) while it runs.
    Entry entry = std::move(const_cast<Entry &>(_heap.top()));
    _heap.pop();
    _pendingTimers.erase(entry.seq);

    assert(entry.when >= _now);
    _now = entry.when;
    ++_executed;
    if (auto *prof = obs::HostProfiler::active()) {
        // Bracket the dispatch so the profiler can attribute the
        // callback's wall time; end it even if the callback throws
        // (the watchdog surfaces errors as exceptions mid-run).
        prof->beginDispatch();
        try {
            entry.fn();
        } catch (...) {
            prof->endDispatch();
            throw;
        }
        prof->endDispatch();
    } else {
        entry.fn();
    }
    return true;
}

Tick
EventQueue::run()
{
    while (runOne()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        // Prune before testing the top: a cancelled entry at <= limit
        // must not let runOne() execute a real event beyond limit.
        pruneCancelled();
        if (_heap.empty() || _heap.top().when > limit)
            break;
        runOne();
    }
    if (_now < limit)
        _now = limit;
    return _now;
}

} // namespace griffin::sim
