#include "src/sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <iterator>
#include <utility>

#include "src/obs/hostprof.hh"
#include "src/sim/log.hh"

namespace griffin::sim {

EventQueue::~EventQueue() = default;

void
EventQueue::enableReferenceMode()
{
    // The modes share clocks, counters, and timer slots but not entry
    // storage, so switching is only sound while nothing is resident.
    assert(_size == 0 && _deadEntries == 0 && _executed == 0 &&
           "reference mode must be enabled on a fresh queue");
    _refMode = true;
}

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    if (when < _now) {
        // A component computed an absolute time that already passed —
        // diagnose loudly, then clamp so time stays monotone.
        GLOG(Warn, "scheduleAt(" << when << ") is in the past (now "
                                 << _now << "); clamping to now");
        when = _now;
    }
    Entry e;
    e.when = when;
    e.seq = _nextSeq++;
    e.fn = std::move(fn);
    insert(std::move(e));
}

TimerId
EventQueue::scheduleTimeout(Tick delay, EventFn fn)
{
    std::uint32_t slot;
    if (!_freeTimerSlots.empty()) {
        slot = _freeTimerSlots.back();
        _freeTimerSlots.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(_timerSlots.size());
        _timerSlots.emplace_back();
    }
    TimerSlot &s = _timerSlots[slot];
    s.fn = std::move(fn);
    const TimerId id = (TimerId(s.gen) << 32) | slot;
    ++_pendingTimerCount;

    Entry e;
    e.when = _now + delay;
    e.seq = _nextSeq++;
    e.timerSlot1 = slot + 1;
    e.timerGen = s.gen;
    insert(std::move(e));
    return id;
}

void
EventQueue::releaseTimerSlot(std::uint32_t slot)
{
    TimerSlot &s = _timerSlots[slot];
    s.fn = nullptr;
    // Never let a generation wrap to 0: an id with gen 0 in slot 0
    // would collide with invalidTimerId.
    if (++s.gen == 0)
        s.gen = 1;
    _freeTimerSlots.push_back(slot);
}

bool
EventQueue::cancelTimeout(TimerId id)
{
    if (id == invalidTimerId)
        return false;
    const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= _timerSlots.size() || _timerSlots[slot].gen != gen)
        return false;

    // O(1): destroy the callback and invalidate the queue entry via
    // the generation bump. The entry itself is now a tombstone that
    // front-pruning (settle) or amortized compaction reclaims.
    releaseTimerSlot(slot);
    --_pendingTimerCount;
    --_size;
    ++_deadEntries;

    if (_size == 0) {
        // Everything left is tombstones; reclaim them all right now so
        // an idle queue holds no memory for cancelled work.
        resetWindow();
    } else {
        settle();
        if (_deadEntries > 64 && _deadEntries > _size)
            compact();
    }
    return true;
}

void
EventQueue::insert(Entry &&e)
{
    if (_size == 0) {
        // The queue is empty: drop any tombstone residue and re-anchor
        // the ladder window at the current time, restoring the
        // invariant that resident ticks span less than one window.
        resetWindow();
    }
    ++_size;
    if (_refMode) {
        _ref.push(std::move(e));
        return;
    }
    if (e.when == _now) {
        _ring.push_back(std::move(e));
        return;
    }
    if (e.when < _windowEnd) {
        pushBucket(std::move(e));
        return;
    }
    _spill.push_back(std::move(e));
    std::push_heap(_spill.begin(), _spill.end(), Later{});
}

void
EventQueue::pushBucket(Entry &&e)
{
    assert(e.when > _now && e.when >= _windowBase && e.when < _windowEnd);
    const std::size_t idx = e.when & (ladderBuckets - 1);
    _ladder[idx].v.push_back(std::move(e));
    setBit(idx);
}

int
EventQueue::nextBucketIndex() const
{
    // Circular scan of the non-empty bitmap anchored at the current
    // position inside the window: bucket (anchor + p) % N holds tick
    // anchor + p, so index order in this scan IS time order.
    const Tick anchor = std::max(_now, _windowBase);
    const std::size_t start = anchor & (ladderBuckets - 1);
    const std::size_t startWord = start >> 6;
    const std::size_t startBit = start & 63;
    for (std::size_t k = 0; k <= bitmapWords; ++k) {
        const std::size_t w = (startWord + k) % bitmapWords;
        std::uint64_t word = _bits[w];
        if (k == 0)
            word &= ~std::uint64_t(0) << startBit;
        else if (k == bitmapWords)
            word &= startBit ? ~(~std::uint64_t(0) << startBit)
                             : std::uint64_t(0);
        if (word)
            return static_cast<int>(w * 64 +
                                    std::size_t(std::countr_zero(word)));
    }
    return -1;
}

void
EventQueue::migrateBucket(std::size_t idx)
{
    // The ring is drained; hand it the whole bucket (one tick's FIFO,
    // already in schedule order). Swapping vectors recycles whichever
    // capacity the ring built up over previous ticks.
    assert(_ringHead == _ring.size());
    Bucket &bk = _ladder[idx];
    _ring.clear();
    _ringHead = 0;
    if (bk.head == 0) {
        _ring.swap(bk.v);
    } else {
        _ring.insert(
            _ring.end(),
            std::make_move_iterator(bk.v.begin() +
                                    static_cast<std::ptrdiff_t>(bk.head)),
            std::make_move_iterator(bk.v.end()));
        bk.v.clear();
        bk.head = 0;
    }
    clearBit(idx);
}

void
EventQueue::slideWindow()
{
    // Ring and ladder are empty; re-anchor the window on the spill's
    // earliest live event and redistribute everything that now fits.
    // Heap pops come out in (when, seq) order, so bucket append order
    // stays schedule order.
    while (!_spill.empty() && !alive(_spill.front())) {
        std::pop_heap(_spill.begin(), _spill.end(), Later{});
        _spill.pop_back();
        --_deadEntries;
    }
    if (_spill.empty())
        return;
    _windowBase = _spill.front().when;
    _windowEnd = _windowBase + ladderBuckets;
    while (!_spill.empty() && _spill.front().when < _windowEnd) {
        std::pop_heap(_spill.begin(), _spill.end(), Later{});
        Entry e = std::move(_spill.back());
        _spill.pop_back();
        if (!alive(e)) {
            --_deadEntries;
            continue;
        }
        const std::size_t idx = e.when & (ladderBuckets - 1);
        _ladder[idx].v.push_back(std::move(e));
        setBit(idx);
    }
}

void
EventQueue::compactRing()
{
    _ring.erase(_ring.begin(),
                _ring.begin() + static_cast<std::ptrdiff_t>(_ringHead));
    _ringHead = 0;
}

Tick
EventQueue::nextTime() const
{
    if (_size == 0)
        return maxTick;
    if (_refMode)
        return _ref.top().when;
    // settle() keeps the front of the pop order live after every
    // mutation, so each tier's front reports an exact time. (An entry
    // behind a ring/bucket front may be a tombstone, but it shares its
    // tick with the live front by construction.)
    if (_ringHead < _ring.size())
        return _ring[_ringHead].when;
    const int b = nextBucketIndex();
    if (b >= 0) {
        const Bucket &bk = _ladder[static_cast<std::size_t>(b)];
        return bk.v[bk.head].when;
    }
    assert(!_spill.empty());
    return _spill.front().when;
}

void
EventQueue::settle()
{
    if (_size == 0)
        return;
    if (_refMode) {
        while (!_ref.empty() && !alive(_ref.top())) {
            _ref.pop();
            --_deadEntries;
        }
        return;
    }
    for (;;) {
        if (_ringHead < _ring.size()) {
            if (alive(_ring[_ringHead]))
                return;
            ++_ringHead;
            --_deadEntries;
            if (_ringHead == _ring.size()) {
                _ring.clear();
                _ringHead = 0;
            }
            continue;
        }
        if (!_ring.empty()) {
            _ring.clear();
            _ringHead = 0;
        }
        const int b = nextBucketIndex();
        if (b >= 0) {
            Bucket &bk = _ladder[static_cast<std::size_t>(b)];
            if (alive(bk.v[bk.head]))
                return;
            ++bk.head;
            --_deadEntries;
            if (bk.head == bk.v.size()) {
                bk.v.clear();
                bk.head = 0;
                clearBit(static_cast<std::size_t>(b));
            }
            continue;
        }
        if (!_spill.empty()) {
            if (alive(_spill.front()))
                return;
            std::pop_heap(_spill.begin(), _spill.end(), Later{});
            _spill.pop_back();
            --_deadEntries;
            continue;
        }
        return;
    }
}

void
EventQueue::resetWindow()
{
    assert(_size == 0);
    if (_refMode) {
        _ref.clear();
        _deadEntries = 0;
        return;
    }
    if (_deadEntries > 0 || _ringHead < _ring.size()) {
        _ring.clear();
        _ringHead = 0;
        for (std::size_t w = 0; w < bitmapWords; ++w) {
            std::uint64_t word = _bits[w];
            while (word) {
                const std::size_t idx =
                    w * 64 + std::size_t(std::countr_zero(word));
                word &= word - 1;
                _ladder[idx].v.clear();
                _ladder[idx].head = 0;
            }
            _bits[w] = 0;
        }
        _spill.clear();
        _deadEntries = 0;
    }
    _windowBase = _now;
    _windowEnd = _now + ladderBuckets;
}

void
EventQueue::compact()
{
    const auto isDead = [this](const Entry &e) { return !alive(e); };

    if (_refMode) {
        _ref.removeIf(isDead);
        _deadEntries = 0;
        return;
    }

    // Ring: order-preserving filter of the un-consumed suffix.
    if (_ringHead < _ring.size()) {
        if (_ringHead > 0)
            compactRing();
        _ring.erase(std::remove_if(_ring.begin(), _ring.end(), isDead),
                    _ring.end());
    } else if (!_ring.empty()) {
        _ring.clear();
        _ringHead = 0;
    }

    // Ladder: the same per bucket; an emptied bucket clears its bit.
    for (std::size_t w = 0; w < bitmapWords; ++w) {
        std::uint64_t word = _bits[w];
        while (word) {
            const std::size_t idx =
                w * 64 + std::size_t(std::countr_zero(word));
            word &= word - 1;
            Bucket &bk = _ladder[idx];
            if (bk.head > 0) {
                bk.v.erase(bk.v.begin(),
                           bk.v.begin() +
                               static_cast<std::ptrdiff_t>(bk.head));
                bk.head = 0;
            }
            bk.v.erase(std::remove_if(bk.v.begin(), bk.v.end(), isDead),
                       bk.v.end());
            if (bk.v.empty())
                clearBit(idx);
        }
    }

    // Spill: filter, then rebuild; the comparator restores the exact
    // (when, seq) pop order.
    _spill.erase(std::remove_if(_spill.begin(), _spill.end(), isDead),
                 _spill.end());
    std::make_heap(_spill.begin(), _spill.end(), Later{});

    _deadEntries = 0;
}

std::size_t
EventQueue::residentEntries() const
{
    if (_refMode)
        return _ref.size();
    std::size_t total = (_ring.size() - _ringHead) + _spill.size();
    for (std::size_t w = 0; w < bitmapWords; ++w) {
        std::uint64_t word = _bits[w];
        while (word) {
            const std::size_t idx =
                w * 64 + std::size_t(std::countr_zero(word));
            word &= word - 1;
            const Bucket &bk = _ladder[idx];
            total += bk.v.size() - bk.head;
        }
    }
    return total;
}

bool
EventQueue::runOne()
{
    if (_size == 0)
        return false;

    Entry entry;
    if (_refMode) {
        // The reference heap pops in global (when, seq) order; skip
        // any tombstone that reached the front between settles.
        for (;;) {
            entry = _ref.pop();
            if (alive(entry))
                break;
            --_deadEntries;
        }
    } else {
        for (;;) {
            if (_ringHead < _ring.size()) {
                entry = std::move(_ring[_ringHead]);
                ++_ringHead;
                if (_ringHead == _ring.size()) {
                    _ring.clear();
                    _ringHead = 0;
                } else if (_ringHead >= 64 &&
                           _ringHead * 2 >= _ring.size()) {
                    // A long same-tick cascade appends while it pops;
                    // drop the consumed prefix so the ring's footprint
                    // tracks the live tail, not the cascade length.
                    compactRing();
                }
                if (!alive(entry)) {
                    --_deadEntries;
                    continue;
                }
                break;
            }
            const int b = nextBucketIndex();
            if (b >= 0) {
                migrateBucket(static_cast<std::size_t>(b));
                continue;
            }
            if (!_spill.empty()) {
                slideWindow();
                continue;
            }
            assert(false && "size() > 0 but no live entry found");
            return false;
        }
    }

    assert(entry.when >= _now);
    _now = entry.when;
    ++_executed;
    --_size;

    // Move the callback out before dispatching so the callback can
    // schedule further events (which mutates the tiers) while it runs.
    EventFn fn;
    if (entry.timerSlot1 != 0) {
        // A live timer entry: the callback lives in the slot, and
        // firing disarms the slot exactly like a cancel would.
        fn = std::move(_timerSlots[entry.timerSlot1 - 1].fn);
        releaseTimerSlot(entry.timerSlot1 - 1);
        --_pendingTimerCount;
    } else {
        fn = std::move(entry.fn);
    }

    if (auto *prof = obs::HostProfiler::active()) {
        // Bracket the dispatch so the profiler can attribute the
        // callback's wall time; end it even if the callback throws
        // (the watchdog surfaces errors as exceptions mid-run).
        prof->beginDispatch();
        try {
            fn();
        } catch (...) {
            prof->endDispatch();
            settle();
            throw;
        }
        prof->endDispatch();
    } else {
        fn();
    }
    settle();
    // A drained queue holds no live work: purge any tombstone residue
    // so empty() also means "no resident memory".
    if (_size == 0)
        resetWindow();
    return true;
}

Tick
EventQueue::run()
{
    while (runOne()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        const Tick next = nextTime();
        if (next == maxTick || next > limit)
            break;
        runOne();
    }
    // The caller asked for this much simulated time to pass; advance
    // even when the queue drained early (see the header contract).
    if (_now < limit)
        _now = limit;
    return _now;
}

} // namespace griffin::sim
