#include "src/sim/event_queue.hh"

#include <cassert>
#include <utility>

#include "src/sim/log.hh"

namespace griffin::sim {

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    if (when < _now) {
        // A component computed an absolute time that already passed —
        // diagnose loudly, then clamp so time stays monotone.
        GLOG(Warn, "scheduleAt(" << when << ") is in the past (now "
                                 << _now << "); clamping to now");
        when = _now;
    }
    _heap.push(Entry{when, _nextSeq++, std::move(fn)});
}

bool
EventQueue::runOne()
{
    if (_heap.empty())
        return false;

    // Move the callback out before popping so the entry can schedule
    // further events (which mutates the heap) while it runs.
    Entry entry = std::move(const_cast<Entry &>(_heap.top()));
    _heap.pop();

    assert(entry.when >= _now);
    _now = entry.when;
    ++_executed;
    entry.fn();
    return true;
}

Tick
EventQueue::run()
{
    while (runOne()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!_heap.empty() && _heap.top().when <= limit)
        runOne();
    if (_now < limit)
        _now = limit;
    return _now;
}

} // namespace griffin::sim
