#include "src/sim/stats.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace griffin::sim {

void
StatSet::inc(const std::string &name, double delta)
{
    _scalars[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    _scalars[name] = value;
}

void
StatSet::bind(const std::string &name, std::function<double()> probe)
{
    _probes[name] = std::move(probe);
}

double
StatSet::get(const std::string &name) const
{
    if (auto it = _probes.find(name); it != _probes.end())
        return it->second();
    if (auto it = _scalars.find(name); it != _scalars.end())
        return it->second;
    return 0.0;
}

bool
StatSet::has(const std::string &name) const
{
    return _probes.count(name) > 0 || _scalars.count(name) > 0;
}

std::map<std::string, double>
StatSet::all() const
{
    std::map<std::string, double> out = _scalars;
    for (const auto &[name, probe] : _probes)
        out[name] = probe();
    return out;
}

void
StatSet::adopt(const std::string &prefix, const StatSet &other)
{
    for (const auto &[name, value] : other.all())
        _scalars[prefix + name] = value;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : all())
        os << name << " " << value << "\n";
    return os.str();
}

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : _bucketWidth(bucket_width), _buckets(num_buckets + 1, 0)
{
    assert(bucket_width > 0.0 && num_buckets > 0);
}

void
Histogram::sample(double value)
{
    if (_count == 0) {
        _min = _max = value;
    } else {
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }
    ++_count;
    _sum += value;

    auto idx = std::size_t(value / _bucketWidth);
    if (idx >= _buckets.size())
        idx = _buckets.size() - 1;
    ++_buckets[idx];
}

double
Histogram::percentile(double p) const
{
    if (_count == 0)
        return 0.0;
    if (p <= 0.0)
        return _min;
    if (p >= 100.0)
        return _max;
    const double target = p / 100.0 * double(_count);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (double(seen) >= target) {
            // The overflow bucket has no upper edge; report the
            // observed maximum instead of a fabricated boundary.
            if (i + 1 == _buckets.size())
                return _max;
            return std::clamp(double(i + 1) * _bucketWidth, _min, _max);
        }
    }
    return _max;
}

} // namespace griffin::sim
