/**
 * @file
 * A naive reference scheduler for differential testing.
 *
 * RefQueue is the textbook implementation of the EventQueue contract:
 * one binary heap ordered by (when, seq), nothing else. No same-tick
 * ring, no ladder window, no spill tier — every structural shortcut
 * the production queue takes is absent, so any divergence between the
 * two under an identical schedule is a bug in the tiered structure
 * (or in the reference, which is small enough to audit by eye).
 *
 * It is test-only: EventQueue::enableReferenceMode() swaps its three
 * tiers for a RefQueue while keeping the clock, sequence numbers,
 * timer slots, and cancellation bookkeeping identical, so the two
 * modes are byte-for-byte comparable at the run-report level. Nothing
 * on the simulation hot path instantiates this in normal runs.
 *
 * The heap stores entries in a plain vector and moves them out with
 * std::pop_heap — never through std::priority_queue, whose const
 * top() cannot release a move-only callback.
 */

#ifndef GRIFFIN_SIM_REF_QUEUE_HH
#define GRIFFIN_SIM_REF_QUEUE_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace griffin::sim {

/**
 * A min-heap of @p Entry under the strict-weak order @p After, where
 * After{}(a, b) is true when @p a pops after @p b (the comparator
 * convention std::push_heap expects for a min-front heap).
 */
template <typename Entry, typename After>
class RefQueue
{
  public:
    bool empty() const { return _heap.empty(); }
    std::size_t size() const { return _heap.size(); }

    /** The entry that pops next. Only valid when not empty. */
    const Entry &
    top() const
    {
        assert(!_heap.empty());
        return _heap.front();
    }

    void
    push(Entry &&e)
    {
        _heap.push_back(std::move(e));
        std::push_heap(_heap.begin(), _heap.end(), After{});
    }

    /** Remove and return the earliest entry (move, not copy). */
    Entry
    pop()
    {
        assert(!_heap.empty());
        std::pop_heap(_heap.begin(), _heap.end(), After{});
        Entry e = std::move(_heap.back());
        _heap.pop_back();
        return e;
    }

    /** Erase every entry matching @p pred, then restore heap order. */
    template <typename Pred>
    void
    removeIf(Pred pred)
    {
        _heap.erase(std::remove_if(_heap.begin(), _heap.end(), pred),
                    _heap.end());
        std::make_heap(_heap.begin(), _heap.end(), After{});
    }

    void clear() { _heap.clear(); }

  private:
    std::vector<Entry> _heap;
};

} // namespace griffin::sim

#endif // GRIFFIN_SIM_REF_QUEUE_HH
