/**
 * @file
 * Minimal leveled trace logging.
 *
 * Logging defaults to off (Warn); benches and examples enable Info or
 * Trace to watch the migration machinery work. All output goes through
 * one sink so tests can capture it.
 *
 * When a simulation engine is registered as the clock (MultiGpuSystem
 * does this for its lifetime), every message is prefixed with the
 * current simulated tick — "[12345] msg" — so log lines correlate
 * directly with trace-event timestamps. The clock registration is
 * per-thread: concurrent simulations (sys::SweepRunner workers) each
 * stamp their own engine's time, and a mutex keeps whole lines from
 * interleaving in the shared sink.
 */

#ifndef GRIFFIN_SIM_LOG_HH
#define GRIFFIN_SIM_LOG_HH

#include <functional>
#include <sstream>
#include <string>

#include "src/sim/types.hh"

namespace griffin::sim {

class Engine;

/** Severity levels, in increasing verbosity. */
enum class LogLevel { Error, Warn, Info, Trace };

/**
 * Process-wide logger configuration. Level and sink are global and
 * expected to be configured once, before any worker threads start
 * (benches set them during flag parsing); the borrowed clock is
 * thread_local so parallel simulations timestamp independently, and
 * write() serializes sink calls under a mutex.
 */
class Log
{
  public:
    using Sink = std::function<void(LogLevel, const std::string &)>;

    /** Current verbosity; messages above it are discarded. */
    static LogLevel level() { return instance()._level; }
    static void setLevel(LogLevel lvl) { instance()._level = lvl; }

    /** Replace the output sink (default writes to stderr). */
    static void setSink(Sink sink);

    /** Restore the default stderr sink. */
    static void resetSink();

    /**
     * Borrow @p engine as the calling thread's timestamp source:
     * subsequent messages from this thread are prefixed with
     * "[tick] ". Pass nullptr to drop the prefix. The engine must
     * outlive the registration.
     */
    static void setClock(const Engine *engine) { t_clock = engine; }

    /** The calling thread's borrowed clock (nullptr when none). */
    static const Engine *clock() { return t_clock; }

    /** Emit a message if @p lvl is enabled. */
    static void write(LogLevel lvl, const std::string &msg);

    /** True if messages at @p lvl would be emitted. */
    static bool enabled(LogLevel lvl) { return lvl <= level(); }

  private:
    static Log &instance();

    LogLevel _level = LogLevel::Warn;
    Sink _sink;

    static thread_local const Engine *t_clock;
};

/**
 * Format-and-log helper: GLOG(Info, "gpu " << id << " drained").
 * The stream expression is only evaluated when the level is enabled.
 */
#define GLOG(lvl, expr)                                                     \
    do {                                                                    \
        if (::griffin::sim::Log::enabled(::griffin::sim::LogLevel::lvl)) {  \
            std::ostringstream _glog_os;                                    \
            _glog_os << expr;                                               \
            ::griffin::sim::Log::write(::griffin::sim::LogLevel::lvl,       \
                                       _glog_os.str());                     \
        }                                                                   \
    } while (0)

} // namespace griffin::sim

#endif // GRIFFIN_SIM_LOG_HH
