/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Events scheduled for the same tick execute in the order they were
 * scheduled (FIFO), which makes whole-system simulation results fully
 * reproducible for a given seed.
 *
 * Internally the queue is a hybrid three-tier structure tuned to the
 * schedule shapes the simulator actually produces (see DESIGN.md
 * "Scheduler internals"):
 *
 *  - a SAME-TICK RING: a FIFO of events for the current tick. Zero-
 *    delay continuations — the dominant shape in CU/GPU/dispatcher
 *    code — append here and pop in O(1) with no ordering work at all;
 *  - a LADDER of per-tick buckets covering a sliding window of the
 *    near future. An insert indexes its bucket directly (O(1)); when
 *    time reaches a bucket its vector is handed to the ring wholesale.
 *    Within a bucket, append order IS schedule order, so FIFO-within-
 *    tick holds by construction;
 *  - a SPILL HEAP for events beyond the window (periodic-hook-scale
 *    delays, recovery deadlines). When the near future empties, the
 *    window slides to the spill's earliest event and everything
 *    inside the new window redistributes into the ladder in (when,
 *    seq) order, preserving the global FIFO contract.
 *
 * Event callbacks are sim::InlineFn (inline capture storage, no
 * per-event heap allocation); cancellable timeouts live in
 * generation-checked slots so cancelTimeout() is O(1) and destroys
 * the callback immediately.
 */

#ifndef GRIFFIN_SIM_EVENT_QUEUE_HH
#define GRIFFIN_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/inline_fn.hh"
#include "src/sim/ref_queue.hh"
#include "src/sim/types.hh"

namespace griffin::sim {

/**
 * Callback type executed when an event fires: a move-only callable
 * with inline capture storage. A capture that does not fit (e.g. a
 * lambda capturing another event) is a compile error; box it with
 * sim::boxed() — see inline_fn.hh.
 */
using InlineEvent = InlineFn<void()>;
using EventFn = InlineEvent;

/** Handle of a cancellable timeout; 0 is never a valid id. */
using TimerId = std::uint64_t;

/** The invalid TimerId. */
inline constexpr TimerId invalidTimerId = 0;

/**
 * A time-ordered queue of callbacks.
 *
 * This is the only scheduling primitive in the simulator; components
 * never busy-poll, they schedule a continuation for a future tick.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * A zero delay runs the callback later in the current tick, after
     * all previously scheduled work for this tick.
     */
    void schedule(Tick delay, EventFn fn) { scheduleAt(_now + delay, std::move(fn)); }

    /**
     * Schedule @p fn at absolute time @p when. Scheduling in the past
     * (@p when < now()) is a modeling bug: it is diagnosed with a
     * warning and clamped to now(), so time never runs backwards and
     * the event still executes (after all previously scheduled work
     * for the current tick).
     */
    void scheduleAt(Tick when, EventFn fn);

    /**
     * Schedule @p fn like schedule(), but return a handle that
     * cancelTimeout() accepts. Timeouts exist for recovery timers
     * (migration timeouts, ACK re-issue deadlines) that are armed on
     * the common path and cancelled on the common path: a cancelled
     * timeout neither fires nor extends the simulated end time.
     */
    TimerId scheduleTimeout(Tick delay, EventFn fn);

    /**
     * Cancel a pending timeout in O(1). The callback is destroyed
     * immediately (any resources it captured are released now, not
     * when the deadline would have passed) and the entry no longer
     * counts as a pending event, so a run can drain past it.
     * @retval true the timeout was pending and is now cancelled.
     * @retval false unknown id, already fired, or already cancelled.
     */
    bool cancelTimeout(TimerId id);

    /** Timeouts armed and not yet fired or cancelled. */
    std::size_t pendingTimeouts() const { return _pendingTimerCount; }

    /** True when no events remain (cancelled timeouts excluded). */
    bool empty() const { return _size == 0; }

    /**
     * Time of the earliest pending event; maxTick when empty.
     * Cancelled timeouts never contribute: a timeout's deadline stops
     * being reported the moment cancelTimeout() returns.
     */
    Tick nextTime() const;

    /** Number of pending events (cancelled timeouts excluded). */
    std::size_t size() const { return _size; }

    /**
     * Execute the single earliest event.
     * @retval true an event was executed.
     * @retval false the queue was empty.
     */
    bool runOne();

    /** Run until the queue drains. @return the final simulated time. */
    Tick run();

    /**
     * Run all events with time <= @p limit, then advance the clock to
     * @p limit unconditionally — even when the queue drained early or
     * was empty to begin with (the caller asked to simulate up to
     * @p limit, so that much time has passed; watchdog quiesce checks
     * after a drain observe now() == limit). @return the simulated
     * time after running, i.e. max(limit, now()).
     */
    Tick runUntil(Tick limit);

    /** Total number of events executed since construction. */
    std::uint64_t eventsExecuted() const { return _executed; }

    /** @name Introspection for tests @{ */

    /**
     * Entries physically resident across all three tiers, including
     * cancelled-timeout tombstones not yet reclaimed. Bounded-memory
     * tests assert this stays close to size().
     */
    std::size_t residentEntries() const;

    /** Timer slots ever allocated (the free list recycles them). */
    std::size_t timerSlotsAllocated() const { return _timerSlots.size(); }

    /** @} */

    /** @name Reference scheduler (differential testing) @{ */

    /**
     * Replace the three-tier structure with the naive (when, seq)
     * binary heap from ref_queue.hh. Test-only: the reference mode
     * exists so fuzz harnesses can demand byte-identical results from
     * the tiered queue and a trivially-correct one. Must be called on
     * a fresh queue, before anything is scheduled or executed.
     */
    void enableReferenceMode();

    /** True when running on the reference heap. */
    bool referenceMode() const { return _refMode; }

    /** @} */

  private:
    /** Number of per-tick ladder buckets; must be a power of two. */
    static constexpr std::size_t ladderBuckets = 1024;
    static constexpr std::size_t bitmapWords = ladderBuckets / 64;

    struct Entry
    {
        Tick when = 0;
        /** Global schedule order; ties on when resolve by seq. */
        std::uint64_t seq = 0;
        /** Timer slot index + 1; 0 for a plain event. */
        std::uint32_t timerSlot1 = 0;
        /** Slot generation at arm time; a mismatch means cancelled. */
        std::uint32_t timerGen = 0;
        /** The callback. Empty for timer entries (held in the slot). */
        EventFn fn;
    };

    /** Min-heap order for the spill tier: (when, seq) ascending. */
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    struct Bucket
    {
        std::vector<Entry> v;
        /** First un-consumed entry (front pruning of cancellations). */
        std::size_t head = 0;
    };

    /**
     * A cancellable timeout's callback lives here, not in the queue
     * entry, so cancelTimeout() can destroy it in O(1) by slot index.
     * The generation increments whenever the slot is disarmed (fire
     * or cancel), invalidating the queue entry and any stale TimerId.
     */
    struct TimerSlot
    {
        std::uint32_t gen = 1;
        EventFn fn;
    };

    /** Tier 1: FIFO of events for the current tick. */
    std::vector<Entry> _ring;
    std::size_t _ringHead = 0;

    /** Tier 2: per-tick buckets over [_windowBase, _windowEnd). */
    std::array<Bucket, ladderBuckets> _ladder;
    /** Bit i set iff _ladder[i] holds entries. */
    std::uint64_t _bits[bitmapWords] = {};
    Tick _windowBase = 0;
    Tick _windowEnd = ladderBuckets;

    /** Tier 3: min-heap of events at or beyond _windowEnd. */
    std::vector<Entry> _spill;

    /** Reference mode: one naive heap replaces all three tiers. */
    bool _refMode = false;
    RefQueue<Entry, Later> _ref;

    Tick _now = 0;
    /** Starts at 1 so seq 0 can mean "unset" in debugging dumps. */
    std::uint64_t _nextSeq = 1;
    std::uint64_t _executed = 0;
    /** Live (un-cancelled) events across all tiers. */
    std::size_t _size = 0;
    /** Cancelled-timeout tombstones still resident in a tier. */
    std::size_t _deadEntries = 0;
    std::size_t _pendingTimerCount = 0;

    std::vector<TimerSlot> _timerSlots;
    std::vector<std::uint32_t> _freeTimerSlots;

    bool alive(const Entry &e) const
    {
        return e.timerSlot1 == 0 ||
               _timerSlots[e.timerSlot1 - 1].gen == e.timerGen;
    }

    void insert(Entry &&e);
    void pushBucket(Entry &&e);
    void setBit(std::size_t i) { _bits[i >> 6] |= 1ull << (i & 63); }
    void clearBit(std::size_t i) { _bits[i >> 6] &= ~(1ull << (i & 63)); }
    /** Earliest non-empty bucket in window scan order, or -1. */
    int nextBucketIndex() const;
    /** Hand the whole bucket (one tick's FIFO) to the empty ring. */
    void migrateBucket(std::size_t idx);
    /** Re-anchor the window on the spill's earliest live event. */
    void slideWindow();
    /** Drop consumed ring prefix once it dominates the vector. */
    void compactRing();
    /** Prune cancelled tombstones off the front of the pop order. */
    void settle();
    /** Drop all tombstone residue and re-anchor the window at now. */
    void resetWindow();
    /** Erase every tombstone from every tier (amortized reclaim). */
    void compact();
    /** Disarm a slot: destroy callback, bump generation, recycle. */
    void releaseTimerSlot(std::uint32_t slot);
};

} // namespace griffin::sim

#endif // GRIFFIN_SIM_EVENT_QUEUE_HH
