/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Events scheduled for the same tick execute in the order they were
 * scheduled (FIFO), which makes whole-system simulation results fully
 * reproducible for a given seed.
 */

#ifndef GRIFFIN_SIM_EVENT_QUEUE_HH
#define GRIFFIN_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/** Handle of a cancellable timeout; 0 is never a valid id. */
using TimerId = std::uint64_t;

/** The invalid TimerId. */
inline constexpr TimerId invalidTimerId = 0;

/**
 * A time-ordered queue of callbacks.
 *
 * This is the only scheduling primitive in the simulator; components
 * never busy-poll, they schedule a continuation for a future tick.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * A zero delay runs the callback later in the current tick, after
     * all previously scheduled work for this tick.
     */
    void schedule(Tick delay, EventFn fn) { scheduleAt(_now + delay, std::move(fn)); }

    /**
     * Schedule @p fn at absolute time @p when. Scheduling in the past
     * (@p when < now()) is a modeling bug: it is diagnosed with a
     * warning and clamped to now(), so time never runs backwards and
     * the event still executes (after all previously scheduled work
     * for the current tick).
     */
    void scheduleAt(Tick when, EventFn fn);

    /**
     * Schedule @p fn like schedule(), but return a handle that
     * cancelTimeout() accepts. Timeouts exist for recovery timers
     * (migration timeouts, ACK re-issue deadlines) that are armed on
     * the common path and cancelled on the common path: a cancelled
     * timeout neither fires nor extends the simulated end time.
     */
    TimerId scheduleTimeout(Tick delay, EventFn fn);

    /**
     * Cancel a pending timeout. The callback is dropped and the entry
     * no longer counts as a pending event (so a run can drain past
     * it).
     * @retval true the timeout was pending and is now cancelled.
     * @retval false unknown id, already fired, or already cancelled.
     */
    bool cancelTimeout(TimerId id);

    /** Timeouts armed and not yet fired or cancelled. */
    std::size_t pendingTimeouts() const { return _pendingTimers.size(); }

    /** True when no events remain (cancelled timeouts excluded). */
    bool empty() const { return size() == 0; }

    /**
     * Time of the earliest pending event; maxTick when empty. May
     * conservatively report a cancelled timeout's deadline until that
     * entry is lazily pruned by runOne().
     */
    Tick
    nextTime() const
    {
        return _heap.empty() ? maxTick : _heap.top().when;
    }

    /** Number of pending events (cancelled timeouts excluded). */
    std::size_t size() const { return _heap.size() - _cancelled.size(); }

    /**
     * Execute the single earliest event.
     * @retval true an event was executed.
     * @retval false the queue was empty.
     */
    bool runOne();

    /** Run until the queue drains. @return the final simulated time. */
    Tick run();

    /**
     * Run all events with time <= @p limit. Time advances to @p limit
     * (or stays at the last executed event if the queue drained first).
     * @return the simulated time after running.
     */
    Tick runUntil(Tick limit);

    /** Total number of events executed since construction. */
    std::uint64_t eventsExecuted() const { return _executed; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    /** Starts at 1 so a seq can double as a nonzero TimerId. */
    std::uint64_t _nextSeq = 1;
    std::uint64_t _executed = 0;
    /** Seqs of armed, not-yet-fired timeouts. */
    std::unordered_set<std::uint64_t> _pendingTimers;
    /** Cancelled entries still in the heap, pruned lazily. */
    std::unordered_set<std::uint64_t> _cancelled;

    /** Drop cancelled entries off the top of the heap. */
    void pruneCancelled();
};

} // namespace griffin::sim

#endif // GRIFFIN_SIM_EVENT_QUEUE_HH
