/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Events scheduled for the same tick execute in the order they were
 * scheduled (FIFO), which makes whole-system simulation results fully
 * reproducible for a given seed.
 */

#ifndef GRIFFIN_SIM_EVENT_QUEUE_HH
#define GRIFFIN_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * A time-ordered queue of callbacks.
 *
 * This is the only scheduling primitive in the simulator; components
 * never busy-poll, they schedule a continuation for a future tick.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * A zero delay runs the callback later in the current tick, after
     * all previously scheduled work for this tick.
     */
    void schedule(Tick delay, EventFn fn) { scheduleAt(_now + delay, std::move(fn)); }

    /**
     * Schedule @p fn at absolute time @p when. Scheduling in the past
     * (@p when < now()) is a modeling bug: it is diagnosed with a
     * warning and clamped to now(), so time never runs backwards and
     * the event still executes (after all previously scheduled work
     * for the current tick).
     */
    void scheduleAt(Tick when, EventFn fn);

    /** True when no events remain. */
    bool empty() const { return _heap.empty(); }

    /** Time of the earliest pending event; maxTick when empty. */
    Tick
    nextTime() const
    {
        return _heap.empty() ? maxTick : _heap.top().when;
    }

    /** Number of pending events. */
    std::size_t size() const { return _heap.size(); }

    /**
     * Execute the single earliest event.
     * @retval true an event was executed.
     * @retval false the queue was empty.
     */
    bool runOne();

    /** Run until the queue drains. @return the final simulated time. */
    Tick run();

    /**
     * Run all events with time <= @p limit. Time advances to @p limit
     * (or stays at the last executed event if the queue drained first).
     * @return the simulated time after running.
     */
    Tick runUntil(Tick limit);

    /** Total number of events executed since construction. */
    std::uint64_t eventsExecuted() const { return _executed; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
};

} // namespace griffin::sim

#endif // GRIFFIN_SIM_EVENT_QUEUE_HH
