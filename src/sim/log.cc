#include "src/sim/log.hh"

#include <iostream>

namespace griffin::sim {

namespace {

const char *
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Trace: return "TRACE";
    }
    return "?";
}

} // namespace

Log &
Log::instance()
{
    static Log log;
    return log;
}

void
Log::setSink(Sink sink)
{
    instance()._sink = std::move(sink);
}

void
Log::resetSink()
{
    instance()._sink = nullptr;
}

void
Log::write(LogLevel lvl, const std::string &msg)
{
    if (!enabled(lvl))
        return;
    auto &log = instance();
    if (log._sink) {
        log._sink(lvl, msg);
    } else {
        std::cerr << "[" << levelName(lvl) << "] " << msg << "\n";
    }
}

} // namespace griffin::sim
