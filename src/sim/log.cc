#include "src/sim/log.hh"

#include <iostream>
#include <string>

#include "src/sim/engine.hh"

namespace griffin::sim {

namespace {

const char *
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Trace: return "TRACE";
    }
    return "?";
}

} // namespace

Log &
Log::instance()
{
    static Log log;
    return log;
}

void
Log::setSink(Sink sink)
{
    instance()._sink = std::move(sink);
}

void
Log::resetSink()
{
    instance()._sink = nullptr;
}

void
Log::setClock(const Engine *engine)
{
    instance()._clock = engine;
}

void
Log::write(LogLevel lvl, const std::string &msg)
{
    if (!enabled(lvl))
        return;
    auto &log = instance();
    // The tick prefix is applied to the message itself (not just the
    // default sink) so captured output stays time-correlatable too.
    // Built with append() rather than an operator+ chain to dodge a
    // GCC 12 -Wrestrict false positive (PR105651) at -O2 and above.
    std::string line;
    if (log._clock) {
        line += '[';
        line += std::to_string(log._clock->now());
        line += "] ";
    }
    line += msg;
    if (log._sink) {
        log._sink(lvl, line);
    } else {
        std::cerr << "[" << levelName(lvl) << "] " << line << "\n";
    }
}

} // namespace griffin::sim
