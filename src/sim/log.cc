#include "src/sim/log.hh"

#include <iostream>
#include <mutex>
#include <string>

#include "src/sim/engine.hh"

namespace griffin::sim {

namespace {

const char *
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Trace: return "TRACE";
    }
    return "?";
}

/** Serializes sink calls so concurrent workers emit whole lines. */
std::mutex &
sinkMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

thread_local const Engine *Log::t_clock = nullptr;

Log &
Log::instance()
{
    static Log log;
    return log;
}

void
Log::setSink(Sink sink)
{
    instance()._sink = std::move(sink);
}

void
Log::resetSink()
{
    instance()._sink = nullptr;
}

void
Log::write(LogLevel lvl, const std::string &msg)
{
    if (!enabled(lvl))
        return;
    auto &log = instance();
    // The tick prefix is applied to the message itself (not just the
    // default sink) so captured output stays time-correlatable too.
    // Built with append() rather than an operator+ chain to dodge a
    // GCC 12 -Wrestrict false positive (PR105651) at -O2 and above.
    std::string line;
    if (t_clock) {
        line += '[';
        line += std::to_string(t_clock->now());
        line += "] ";
    }
    line += msg;
    std::lock_guard<std::mutex> guard(sinkMutex());
    if (log._sink) {
        log._sink(lvl, line);
    } else {
        std::cerr << "[" << levelName(lvl) << "] " << line << "\n";
    }
}

} // namespace griffin::sim
