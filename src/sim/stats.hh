/**
 * @file
 * Lightweight named statistics.
 *
 * Components expose their hot counters as plain integer members for
 * speed; a StatSet is the uniform, name-addressable view used by the
 * report generators and tests. Components register their counters once
 * at construction and the StatSet reads them on demand.
 */

#ifndef GRIFFIN_SIM_STATS_HH
#define GRIFFIN_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace griffin::sim {

/**
 * A name -> value view over a set of counters.
 *
 * Two kinds of entries are supported:
 *  - owned scalars, mutated through inc()/set();
 *  - bound probes, registered with bind(), which read a live component
 *    counter each time the stat is queried.
 */
class StatSet
{
  public:
    /** Add @p delta (default 1) to an owned scalar, creating it at 0. */
    void inc(const std::string &name, double delta = 1.0);

    /** Set an owned scalar to @p value. */
    void set(const std::string &name, double value);

    /** Register a live probe evaluated on every read. */
    void bind(const std::string &name, std::function<double()> probe);

    /** Convenience: bind directly to an integer counter member. */
    void
    bindCounter(const std::string &name, const std::uint64_t &counter)
    {
        bind(name, [&counter] { return double(counter); });
    }

    /**
     * Read a stat by name.
     * @return the value, or 0 if the name is unknown.
     */
    double get(const std::string &name) const;

    /** True if the stat exists (owned or bound). */
    bool has(const std::string &name) const;

    /** Snapshot of every stat, sorted by name. */
    std::map<std::string, double> all() const;

    /** Merge @p other into this set, prefixing names with @p prefix. */
    void adopt(const std::string &prefix, const StatSet &other);

    /** Render the full snapshot as "name value" lines. */
    std::string dump() const;

  private:
    std::map<std::string, double> _scalars;
    std::map<std::string, std::function<double()>> _probes;
};

/**
 * A fixed-bucket histogram for latency-style distributions.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket
     * @param num_buckets  bucket count; samples beyond the last bucket
     *                     land in an overflow bucket.
     */
    Histogram(double bucket_width, std::size_t num_buckets);

    /** Record one sample. */
    void sample(double value);

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    /** Bucket counts; the final element is the overflow bucket. */
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

    double bucketWidth() const { return _bucketWidth; }

    /**
     * Approximate p-th percentile from the buckets.
     *
     * Defined behavior at the edges:
     *  - empty histogram: 0;
     *  - p <= 0: min(); p >= 100: max();
     *  - otherwise: the upper edge of the first bucket whose
     *    cumulative count reaches ceil-wise p% of count(), clamped
     *    into [min(), max()]. The clamp makes a single-sample
     *    histogram return that sample for every p, and keeps results
     *    inside the observed range at bucket boundaries;
     *  - samples resolving to the overflow bucket report max(), since
     *    the overflow bucket has no meaningful upper edge.
     */
    double percentile(double p) const;

  private:
    double _bucketWidth;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

} // namespace griffin::sim

#endif // GRIFFIN_SIM_STATS_HH
