/**
 * @file
 * The simulation engine: an event queue plus run-control helpers that
 * whole-system simulations need (watchdog limit, stop requests, and
 * quiesce detection).
 */

#ifndef GRIFFIN_SIM_ENGINE_HH
#define GRIFFIN_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/event_queue.hh"
#include "src/sim/types.hh"

namespace griffin::sim {

class Watchdog;

/**
 * Drives a simulation to completion.
 *
 * Components keep a reference to the engine and use schedule() for all
 * timing. The engine also provides a watchdog: simulations that exceed
 * maxTicks (a sign of livelock in a model) abort with a diagnostic
 * rather than spinning forever. When a sim::Watchdog is attached, its
 * probe snapshot is folded into that diagnostic.
 */
class Engine
{
  public:
    /** @param max_ticks watchdog limit; maxTick disables it. */
    explicit Engine(Tick max_ticks = maxTick) : _maxTicks(max_ticks) {}

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time in cycles. */
    Tick now() const { return _queue.now(); }

    /** Schedule @p fn to run @p delay cycles from now. */
    void schedule(Tick delay, EventFn fn) { _queue.schedule(delay, std::move(fn)); }

    /** Schedule @p fn at absolute time @p when. */
    void scheduleAt(Tick when, EventFn fn) { _queue.scheduleAt(when, std::move(fn)); }

    /** Arm a cancellable timeout @p delay cycles from now. */
    TimerId
    scheduleTimeout(Tick delay, EventFn fn)
    {
        return _queue.scheduleTimeout(delay, std::move(fn));
    }

    /** Cancel a timeout armed with scheduleTimeout(). */
    bool cancelTimeout(TimerId id) { return _queue.cancelTimeout(id); }

    /**
     * Run until the event queue drains, a component calls
     * requestStop(), or the watchdog trips.
     *
     * An engine is reusable: each call clears any stop request left
     * over from a previous run (or raised while not running), so a
     * stopped engine can schedule more work and run() again.
     *
     * @return the simulated end time.
     * @throws WatchdogError (a std::runtime_error) if the watchdog
     *         limit is exceeded.
     */
    Tick run();

    /**
     * Attach a liveness watchdog (nullptr detaches). Its probe
     * snapshot is appended to the maxTicks-overrun diagnostic; the
     * system owning the engine is expected to call
     * watchdog->checkQuiesced() after run() returns.
     */
    void setWatchdog(Watchdog *watchdog) { _watchdog = watchdog; }

    /** The attached watchdog, or nullptr. */
    Watchdog *watchdog() const { return _watchdog; }

    /** Run all events up to and including @p limit. */
    Tick runUntil(Tick limit) { return _queue.runUntil(limit); }

    /** Ask the run loop to stop after the current event. */
    void requestStop() { _stopRequested = true; }

    /**
     * True once requestStop() was called during (or since) the last
     * run(); cleared again when the next run() starts.
     */
    bool stopRequested() const { return _stopRequested; }

    /** Total executed events. */
    std::uint64_t eventsExecuted() const { return _queue.eventsExecuted(); }

    /** Pending event count. */
    std::size_t pendingEvents() const { return _queue.size(); }

    /** The underlying queue, for tests that need fine-grained control. */
    EventQueue &queue() { return _queue; }

    /** @name Periodic hooks (observability sampling) @{ */

    /** Called at each elapsed period boundary with the boundary tick. */
    using HookFn = std::function<void(Tick)>;

    /**
     * Register @p fn to run every @p period cycles while run() makes
     * progress. Hooks piggyback on the event loop: a boundary fires
     * just before the first event at-or-after it executes, observing
     * the piecewise-constant simulation state that held at the
     * boundary. Hooks never keep the simulation alive and never
     * advance now() — the run ends exactly when the real workload
     * does. (runUntil() bypasses hooks; only run() services them.)
     *
     * @return an id for removePeriodicHook().
     */
    std::uint64_t addPeriodicHook(Tick period, HookFn fn);

    /** Deregister a hook; unknown ids are ignored. */
    void removePeriodicHook(std::uint64_t id);

    /** @} */

  private:
    struct Hook
    {
        std::uint64_t id;
        Tick period;
        Tick next;
        HookFn fn;
    };

    EventQueue _queue;
    Tick _maxTicks;
    Watchdog *_watchdog = nullptr;
    bool _stopRequested = false;
    std::vector<Hook> _hooks;
    std::uint64_t _nextHookId = 1;

    void fireHooksUpTo(Tick limit);
};

} // namespace griffin::sim

#endif // GRIFFIN_SIM_ENGINE_HH
