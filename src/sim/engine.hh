/**
 * @file
 * The simulation engine: an event queue plus run-control helpers that
 * whole-system simulations need (watchdog limit, stop requests, and
 * quiesce detection).
 */

#ifndef GRIFFIN_SIM_ENGINE_HH
#define GRIFFIN_SIM_ENGINE_HH

#include <string>

#include "src/sim/event_queue.hh"
#include "src/sim/types.hh"

namespace griffin::sim {

/**
 * Drives a simulation to completion.
 *
 * Components keep a reference to the engine and use schedule() for all
 * timing. The engine also provides a watchdog: simulations that exceed
 * maxTicks (a sign of livelock in a model) abort with a diagnostic
 * rather than spinning forever.
 */
class Engine
{
  public:
    /** @param max_ticks watchdog limit; maxTick disables it. */
    explicit Engine(Tick max_ticks = maxTick) : _maxTicks(max_ticks) {}

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time in cycles. */
    Tick now() const { return _queue.now(); }

    /** Schedule @p fn to run @p delay cycles from now. */
    void schedule(Tick delay, EventFn fn) { _queue.schedule(delay, std::move(fn)); }

    /** Schedule @p fn at absolute time @p when. */
    void scheduleAt(Tick when, EventFn fn) { _queue.scheduleAt(when, std::move(fn)); }

    /**
     * Run until the event queue drains, a component calls
     * requestStop(), or the watchdog trips.
     *
     * @return the simulated end time.
     * @throws std::runtime_error if the watchdog limit is exceeded.
     */
    Tick run();

    /** Run all events up to and including @p limit. */
    Tick runUntil(Tick limit) { return _queue.runUntil(limit); }

    /** Ask the run loop to stop after the current event. */
    void requestStop() { _stopRequested = true; }

    /** True once requestStop() was called during run(). */
    bool stopRequested() const { return _stopRequested; }

    /** Total executed events. */
    std::uint64_t eventsExecuted() const { return _queue.eventsExecuted(); }

    /** Pending event count. */
    std::size_t pendingEvents() const { return _queue.size(); }

    /** The underlying queue, for tests that need fine-grained control. */
    EventQueue &queue() { return _queue; }

  private:
    EventQueue _queue;
    Tick _maxTicks;
    bool _stopRequested = false;
};

} // namespace griffin::sim

#endif // GRIFFIN_SIM_ENGINE_HH
