#include "src/sim/rng.hh"

#include <cassert>

namespace griffin::sim {

namespace {

/** splitmix64 step, used to expand a 64-bit seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : _s)
        word = splitmix64(x);
    // All-zero state would lock the generator; splitmix64 cannot
    // produce four zero outputs in a row, but be defensive anyway.
    if ((_s[0] | _s[1] | _s[2] | _s[3]) == 0)
        _s[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;

    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

Rng
Rng::split()
{
    Rng child(0);
    for (auto &word : child._s)
        word = next();
    if ((child._s[0] | child._s[1] | child._s[2] | child._s[3]) == 0)
        child._s[0] = 1;
    return child;
}

} // namespace griffin::sim
