/**
 * @file
 * The GPU driver (runs on the CPU): services GPU page faults by
 * migrating CPU-resident pages to the faulting GPU.
 *
 * The fault path implements both scheduling disciplines the paper
 * contrasts (SS II-C challenge 3, SS III-B):
 *
 *  - faultBatchSize == 1: the baseline FCFS discipline — every fault
 *    immediately pays a CPU TLB shootdown + flush and a serialized
 *    page transfer;
 *  - faultBatchSize == N_PTW (8): Griffin's CPMS batching — the driver
 *    waits for multiple page walks to fault, pays ONE CPU flush for
 *    the whole batch, and pipelines the transfers.
 */

#ifndef GRIFFIN_DRIVER_DRIVER_HH
#define GRIFFIN_DRIVER_DRIVER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "src/gpu/pmc.hh"
#include "src/interconnect/switch.hh"
#include "src/mem/page_table.hh"
#include "src/sim/engine.hh"
#include "src/sim/types.hh"
#include "src/xlat/fault_handler.hh"
#include "src/xlat/iommu.hh"

namespace griffin::driver {

/** Fault-path configuration. */
struct DriverConfig
{
    /** Faults per batch (1 = baseline FCFS; 8 = Griffin's N_PTW). */
    unsigned faultBatchSize = 1;
    /** Max cycles to hold an under-full batch open. */
    Tick faultBatchWindow = 600;
    /** CPU pipeline flush + TLB shootdown penalty (paper SS IV: 100). */
    Tick cpuFlushPenalty = 100;
    /**
     * Fixed driver software cost per fault batch: interrupt delivery,
     * fault readout, and runlist processing. Paid once per batch, so
     * CPMS batching amortizes it while the baseline pays it per page.
     */
    Tick faultServiceLatency = 600;
    /** Pin pages on the GPU after migration (baseline behaviour). */
    bool pinAfterMigration = false;
    /**
     * Abort a migration whose DMA has not completed after this many
     * cycles: unpin the page, degrade it to DCA remote access and
     * replay the parked translations (chaos recovery; 0 disables).
     */
    Tick migrationTimeout = 0;
};

/**
 * The driver's fault-service engine.
 */
class Driver : public xlat::FaultHandler
{
  public:
    /**
     * @param engine  event engine.
     * @param pt      global page table.
     * @param iommu   for migration-completion notifications.
     * @param cpu_pmc the CPU-side page migration controller.
     * @param config  fault-path parameters.
     */
    Driver(sim::Engine &engine, mem::PageTable &pt, xlat::Iommu &iommu,
           gpu::Pmc &cpu_pmc, const DriverConfig &config);

    const DriverConfig &config() const { return _config; }

    /**
     * Attach a fault injector (nullptr detaches). Timeout recovery is
     * only armed while an injector is attached, so fault-free runs pay
     * nothing.
     */
    void setFaultInjector(sys::FaultInjector *injector)
    {
        _injector = injector;
    }

    /** xlat::FaultHandler */
    void onPageFault(DeviceId requester, PageId page,
                     FaultId fid = invalidFaultId) override;

    /** True while a batch is being serviced (for tests). */
    bool busy() const { return _processing; }

    /** Faults queued but not yet in a serviced batch (probes). */
    std::size_t pendingFaults() const { return _queue.size(); }

    /** @name Statistics @{ */
    std::uint64_t faultsReceived = 0;
    std::uint64_t batchesProcessed = 0;
    /** CPU-side TLB shootdowns + flushes (one per batch). */
    std::uint64_t cpuShootdowns = 0;
    std::uint64_t pagesMigratedIn = 0; ///< CPU -> GPU migrations
    std::uint64_t migrationTimeouts = 0; ///< aborted by the timeout
    std::uint64_t lateDmaCompletions = 0; ///< landed after an abort
    /** @} */

  private:
    struct Fault
    {
        DeviceId requester;
        PageId page;
        Tick raisedAt; ///< for the fault-latency histogram
        FaultId fid;   ///< span identity (obs/span.hh)
    };

    sim::Engine &_engine;
    mem::PageTable &_pageTable;
    xlat::Iommu &_iommu;
    gpu::Pmc &_cpuPmc;
    DriverConfig _config;
    sys::FaultInjector *_injector = nullptr;

    std::deque<Fault> _queue;
    bool _processing = false;
    bool _windowArmed = false;

    void maybeStartBatch();
    void startBatch();
};

} // namespace griffin::driver

#endif // GRIFFIN_DRIVER_DRIVER_HH
