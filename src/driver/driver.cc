#include "src/driver/driver.hh"

#include "src/obs/hostprof.hh"

#include <cassert>
#include <memory>

#include "src/obs/metrics.hh"
#include "src/obs/pagestats.hh"
#include "src/obs/span.hh"
#include "src/obs/timeseries.hh"
#include "src/obs/trace.hh"
#include "src/sim/log.hh"
#include "src/sys/chaos.hh"

namespace griffin::driver {

namespace {
/** The driver's trace track. */
const std::string kTrack = "driver";
} // namespace

Driver::Driver(sim::Engine &engine, mem::PageTable &pt, xlat::Iommu &iommu,
               gpu::Pmc &cpu_pmc, const DriverConfig &config)
    : _engine(engine), _pageTable(pt), _iommu(iommu), _cpuPmc(cpu_pmc),
      _config(config)
{
    assert(config.faultBatchSize > 0);
}

void
Driver::onPageFault(DeviceId requester, PageId page, FaultId fid)
{
    ++faultsReceived;
    if (auto *tr = obs::TraceSession::activeFor(obs::CatFault)) {
        tr->instant(obs::CatFault, kTrack, "page_fault", _engine.now(),
                    obs::TraceArgs()
                        .add("gpu", requester)
                        .add("page", page));
    }
    _queue.push_back(Fault{requester, page, _engine.now(), fid});
    maybeStartBatch();
}

void
Driver::maybeStartBatch()
{
    if (_processing || _queue.empty())
        return;

    if (_queue.size() >= _config.faultBatchSize) {
        startBatch();
        return;
    }

    // CPMS waits for the pending page walks to complete before
    // migrating (paper SS III-B) — but when the IOMMU has no walk in
    // flight, nothing further can fault and waiting would only add
    // latency (e.g. when every GPU is already parked on this very
    // page). Service the under-full batch immediately.
    if (_iommu.activeWalks() == 0) {
        startBatch();
        return;
    }

    // Under-full batch: hold it open for the batching window, then
    // service whatever accumulated (CPMS cannot wait forever for
    // walks that will never fault).
    if (!_windowArmed) {
        _windowArmed = true;
        _engine.schedule(_config.faultBatchWindow, [this] {
            GHPROF_SCOPE("driver", "batch_window");
            _windowArmed = false;
            if (!_processing && !_queue.empty())
                startBatch();
        });
    }
}

void
Driver::startBatch()
{
    assert(!_processing && !_queue.empty());
    _processing = true;

    std::vector<Fault> batch;
    while (!_queue.empty() && batch.size() < _config.faultBatchSize) {
        batch.push_back(_queue.front());
        _queue.pop_front();
    }

    ++batchesProcessed;
    ++cpuShootdowns;
    obs::TimeSeries::countActive(obs::TimeSeries::Series::Shootdowns);
    GLOG(Trace, "driver: fault batch of " << batch.size() << " pages");

    const Tick now = _engine.now();
    if (auto *tr = obs::TraceSession::activeFor(obs::CatFault)) {
        // The CPMS batch window: first fault queued -> batch closed.
        tr->complete(obs::CatFault, kTrack, "cpms_batch_window",
                     batch.front().raisedAt, now,
                     obs::TraceArgs().add("pages", batch.size()));
        // The serial service span: interrupt + runlist + CPU flush.
        tr->complete(obs::CatFault, kTrack, "fault_batch_service", now,
                     now + _config.faultServiceLatency +
                         _config.cpuFlushPenalty,
                     obs::TraceArgs().add("pages", batch.size()));
    }
    if (auto *tr = obs::TraceSession::activeFor(obs::CatShootdown)) {
        tr->instant(obs::CatShootdown, kTrack, "cpu_tlb_shootdown", now,
                    obs::TraceArgs().add("pages", batch.size()));
    }

    // The batch closing ends every member's batch-wait stage.
    for (const Fault &fault : batch) {
        obs::FaultSpans::markActive(fault.fid, obs::Stage::BatchWait, now);
        // The CPU flush covering this batch shoots down each member
        // page's translation before it migrates.
        obs::PageStats::recordActive(obs::PageEvent::Shootdown,
                                     fault.page, cpuDeviceId,
                                     fault.requester, now);
        if (fault.fid != invalidFaultId) {
            if (auto *tr = obs::TraceSession::activeFor(obs::CatFault)) {
                tr->flow(obs::CatFault, kTrack, "fault", now, fault.fid,
                         obs::TraceSession::FlowPhase::Step);
            }
        }
    }

    // One driver service pass + one CPU flush covers the whole batch.
    // This is the serial component: the driver cannot take the next
    // batch until the shootdown/flush is done. The page transfers
    // themselves are DMA — they pipeline on the CPU's upstream link
    // while the driver moves on.
    _engine.schedule(_config.faultServiceLatency + _config.cpuFlushPenalty,
                     [this, batch = std::move(batch)] {
        GHPROF_SCOPE("driver", "service_batch");
        for (const Fault &fault : batch) {
            // The serial service pass (interrupt + runlist + CPU
            // shootdown/flush) ends here for every batch member.
            obs::FaultSpans::markActive(fault.fid, obs::Stage::Shootdown,
                                        _engine.now());
            // Shared between the DMA completion and the migration
            // timeout: exactly one of the two commits the outcome.
            struct XferState
            {
                bool completed = false;
                bool aborted = false;
                sim::TimerId timer = sim::invalidTimerId;
            };
            auto state = std::make_shared<XferState>();
            _cpuPmc.transferPage(
                fault.page, fault.requester,
                [this, fault, state] {
                    if (state->aborted) {
                        // The DMA landed after the timeout already
                        // aborted this migration and replied to the
                        // parked requesters: the page must stay where
                        // the replies said it was (CPU, DCA fallback).
                        ++lateDmaCompletions;
                        return;
                    }
                    state->completed = true;
                    if (state->timer != sim::invalidTimerId)
                        _engine.cancelTimeout(state->timer);
                    ++pagesMigratedIn;
                    _pageTable.setLocation(fault.page, fault.requester);
                    if (_config.pinAfterMigration)
                        _pageTable.info(fault.page).pinned = true;
                    if (auto *m = obs::Metrics::active()) {
                        m->latency.faultLatency.sample(
                            double(_engine.now() - fault.raisedAt));
                    }
                    obs::TimeSeries::faultActive(
                        double(_engine.now() - fault.raisedAt));
                    _iommu.onMigrationDone(fault.page);
                },
                fault.fid);
            if (_injector && _config.migrationTimeout > 0 &&
                !state->completed) {
                state->timer = _engine.scheduleTimeout(
                    _config.migrationTimeout, [this, fault, state] {
                        GHPROF_SCOPE("driver", "migration_timeout");
                        if (state->completed)
                            return;
                        // Abort: unpin, unblock, and degrade the page
                        // to DCA remote access so the parked requests
                        // (and all future ones) are served from CPU
                        // memory instead of re-faulting forever.
                        state->aborted = true;
                        ++migrationTimeouts;
                        _injector->noteFallback();
                        _injector->noteMigrationTimeout();
                        _injector->noteRecoveryCycles(
                            _config.migrationTimeout);
                        mem::PageInfo &pi = _pageTable.info(fault.page);
                        pi.migrating = false;
                        pi.pinned = false;
                        pi.dcaFallback = true;
                        const Tick abort_at = _engine.now();
                        obs::PageStats::recordActive(
                            obs::PageEvent::MigrationAbort, fault.page,
                            cpuDeviceId, fault.requester, abort_at);
                        obs::PageStats::recordActive(
                            obs::PageEvent::DcaFallback, fault.page,
                            cpuDeviceId, fault.requester, abort_at);
                        obs::PageStats::recordActive(
                            obs::PageEvent::Recovery, fault.page,
                            cpuDeviceId, fault.requester, abort_at);
                        if (auto *m = obs::Metrics::active()) {
                            m->latency.faultLatency.sample(
                                double(_engine.now() - fault.raisedAt));
                        }
                        obs::TimeSeries::faultActive(
                            double(_engine.now() - fault.raisedAt));
                        if (auto *tr = obs::TraceSession::activeFor(
                                obs::CatChaos)) {
                            tr->instant(obs::CatChaos, kTrack,
                                        "migration_timeout",
                                        _engine.now(),
                                        obs::TraceArgs()
                                            .add("page", fault.page)
                                            .add("gpu",
                                                 fault.requester));
                        }
                        _iommu.onMigrationDone(fault.page);
                    });
            }
        }
        _processing = false;
        maybeStartBatch();
    });
}

} // namespace griffin::driver
