#include "src/interconnect/switch.hh"

#include <cassert>
#include <utility>

namespace griffin::ic {

namespace {
/** Upstream = toward the switch, downstream = toward the device. */
constexpr unsigned dirUp = 0;
constexpr unsigned dirDown = 1;
} // namespace

Network::Network(sim::Engine &engine, unsigned num_devices,
                 const LinkConfig &config)
    : _engine(engine), _links(num_devices, Link(config))
{
    assert(num_devices >= 2);
}

void
Network::send(DeviceId src, DeviceId dst, std::uint64_t bytes,
              sim::EventFn deliver)
{
    assert(src < _links.size() && dst < _links.size());
    assert(src != dst && "loopback traffic never crosses the fabric");

    const Tick now = _engine.now();
    // Serialize on the source's upstream wire...
    const Tick at_switch = _links[src].send(now, dirUp, bytes);
    // ...then on the destination's downstream wire. The downstream
    // reservation is made now (deterministic given event order), which
    // models an output-queued switch.
    const Tick at_dst = _links[dst].send(at_switch, dirDown, bytes);

    ++messagesDelivered;
    _engine.scheduleAt(at_dst, std::move(deliver));
}

} // namespace griffin::ic
