#include "src/interconnect/switch.hh"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "src/obs/hostprof.hh"
#include "src/obs/trace.hh"
#include "src/sys/chaos.hh"

namespace griffin::ic {

namespace {
/** Upstream = toward the switch, downstream = toward the device. */
constexpr unsigned dirUp = 0;
constexpr unsigned dirDown = 1;
} // namespace

Network::Network(sim::Engine &engine, unsigned num_devices,
                 const LinkConfig &config)
    : _engine(engine), _links(num_devices, Link(config))
{
    assert(num_devices >= 2);
}

void
Network::send(DeviceId src, DeviceId dst, std::uint64_t bytes,
              sim::EventFn deliver)
{
    assert(src < _links.size() && dst < _links.size());
    assert(src != dst && "loopback traffic never crosses the fabric");

    const Tick now = _engine.now();

    // Fabric fault injection: a degradation window throttles the
    // source link for a while; a NACK forces bounded retransmission,
    // each attempt re-occupying the upstream wire.
    unsigned nacks = 0;
    if (_injector) {
        if (_injector->degradeLink()) {
            const auto &cc = _injector->config();
            _links[src].degrade(now + cc.linkDegradeDuration,
                                cc.linkDegradeFactor);
            if (auto *tr = obs::TraceSession::activeFor(obs::CatChaos)) {
                tr->instant(obs::CatChaos,
                            "link" + std::to_string(src), "degrade",
                            now,
                            obs::TraceArgs()
                                .add("until", now + cc.linkDegradeDuration));
            }
        }
        while (nacks < _injector->config().linkMaxRetries &&
               _injector->dropMessage()) {
            ++nacks;
        }
    }

    const Tick up_start = std::max(now, _links[src].nextFree(dirUp));
    // Serialize on the source's upstream wire...
    Tick at_switch = _links[src].send(now, dirUp, bytes);
    if (nacks > 0) {
        ++messagesNacked;
        const auto &cc = _injector->config();
        const Tick first_at = at_switch;
        for (unsigned i = 0; i < nacks; ++i) {
            _injector->noteRetry();
            at_switch = _links[src].send(at_switch + cc.linkRetryDelay,
                                         dirUp, bytes);
        }
        _injector->noteRecoveryCycles(at_switch - first_at);
        if (auto *tr = obs::TraceSession::activeFor(obs::CatChaos)) {
            tr->instant(obs::CatChaos, "link" + std::to_string(src),
                        "nack", now,
                        obs::TraceArgs()
                            .add("retries", nacks)
                            .add("delay", at_switch - first_at));
        }
    }
    const Tick down_start = std::max(at_switch,
                                     _links[dst].nextFree(dirDown));
    // ...then on the destination's downstream wire. The downstream
    // reservation is made now (deterministic given event order), which
    // models an output-queued switch.
    const Tick at_dst = _links[dst].send(at_switch, dirDown, bytes);

    ++messagesDelivered;

    // Per-message wire-occupancy spans. CatNet is off by default — a
    // busy run emits millions of messages.
    if (auto *tr = obs::TraceSession::activeFor(obs::CatNet)) {
        const obs::TraceArgs args = obs::TraceArgs()
                                        .add("bytes", bytes)
                                        .add("src", src)
                                        .add("dst", dst);
        tr->complete(obs::CatNet, "link" + std::to_string(src) + ".up",
                     "xfer", up_start,
                     _links[src].nextFree(dirUp), args);
        tr->complete(obs::CatNet,
                     "link" + std::to_string(dst) + ".down", "xfer",
                     down_start, _links[dst].nextFree(dirDown), args);
    }
    // The receiver's completion callback runs as this event; the scope
    // attributes it (and any un-scoped work it does) to the network
    // unless the callback opens its own, more specific scope.
    _engine.scheduleAt(at_dst, sim::boxed([fn = std::move(deliver)] {
        GHPROF_SCOPE("network", "deliver");
        fn();
    }));
}

} // namespace griffin::ic
