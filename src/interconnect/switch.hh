/**
 * @file
 * The inter-device network: a central switch with one full-duplex link
 * per device (the CPU plus every GPU), matching the PCIe topology of
 * the paper's testbed (Table II, "Inter-Device Network").
 *
 * A message from device A to device B serializes on A's upstream wire,
 * then on B's downstream wire. Ties at the switch resolve in event-
 * scheduling order, which — because the dispatcher starts GPU 1
 * earliest — reproduces the arbitration bias the paper identifies as a
 * cause of first-touch imbalance (SS II-C, challenge 2).
 */

#ifndef GRIFFIN_IC_SWITCH_HH
#define GRIFFIN_IC_SWITCH_HH

#include <cstdint>
#include <vector>

#include "src/interconnect/link.hh"
#include "src/sim/engine.hh"
#include "src/sim/types.hh"

namespace griffin::sys {
class FaultInjector;
} // namespace griffin::sys

namespace griffin::ic {

/** Common message sizes on the fabric, in bytes. */
struct MessageSizes
{
    static constexpr std::uint64_t header = 8;
    static constexpr std::uint64_t xlatRequest = 64;
    static constexpr std::uint64_t xlatReply = 64;
    static constexpr std::uint64_t cacheLine = 64;
    static constexpr std::uint64_t dcaReadRequest = header + 8;
    static constexpr std::uint64_t dcaReadReply = header + cacheLine;
    static constexpr std::uint64_t dcaWriteRequest = header + cacheLine;
    static constexpr std::uint64_t dcaWriteAck = header;
    static constexpr std::uint64_t drainCommand = 64;
    static constexpr std::uint64_t drainReply = header;
    /** Paper SS III-C: 20 pages of (36b id + 8b count) fits in 110 B. */
    static constexpr std::uint64_t accessCountReply = 110;
    static constexpr std::uint64_t accessCountRequest = header;
};

/**
 * Star network over Links.
 */
class Network
{
  public:
    /**
     * @param engine      event engine used to deliver messages.
     * @param num_devices devices attached (CPU is device 0).
     * @param config      per-link bandwidth/latency.
     */
    Network(sim::Engine &engine, unsigned num_devices,
            const LinkConfig &config);

    /**
     * Send @p bytes from @p src to @p dst; @p deliver runs at the
     * destination when the last byte arrives.
     */
    void send(DeviceId src, DeviceId dst, std::uint64_t bytes,
              sim::EventFn deliver);

    /** The link attaching @p dev (for stats and tests). */
    const Link &link(DeviceId dev) const { return _links[dev]; }
    Link &link(DeviceId dev) { return _links[dev]; }

    unsigned numDevices() const { return unsigned(_links.size()); }

    /**
     * Attach a fault injector (nullptr detaches). When set, each
     * message may be NACKed (bounded retransmits re-occupy the
     * upstream wire after a retry delay) or open a bandwidth-
     * degradation window on the source link.
     */
    void setFaultInjector(sys::FaultInjector *injector)
    {
        _injector = injector;
    }

    /** Total messages delivered. */
    std::uint64_t messagesDelivered = 0;
    /** Messages that suffered at least one injected NACK. */
    std::uint64_t messagesNacked = 0;

  private:
    sim::Engine &_engine;
    std::vector<Link> _links;
    sys::FaultInjector *_injector = nullptr;
};

} // namespace griffin::ic

#endif // GRIFFIN_IC_SWITCH_HH
