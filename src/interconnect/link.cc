#include "src/interconnect/link.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace griffin::ic {

Link::Link(const LinkConfig &config) : _config(config)
{
    assert(config.bytesPerCycle > 0.0);
}

void
Link::degrade(Tick until, double factor)
{
    assert(factor > 0.0 && factor <= 1.0);
    // A new window makes an existing one redundant only when it is at
    // least as long AND at least as degraded; otherwise both stay and
    // the overlap resolves to the smaller factor in degradeFactorAt.
    std::erase_if(_windows, [&](const Window &w) {
        return w.until <= until && w.factor >= factor;
    });
    _windows.push_back(Window{until, factor});
}

double
Link::degradeFactorAt(Tick now) const
{
    double factor = 1.0;
    for (const Window &w : _windows)
        if (now < w.until)
            factor = std::min(factor, w.factor);
    return factor;
}

Tick
Link::send(Tick now, unsigned dir, std::uint64_t bytes)
{
    assert(dir < 2);
    assert(bytes > 0);

    const Tick start = std::max(now, _nextFree[dir]);
    // Simulation time is monotone, so any later send (either
    // direction) starts at or after now: windows closed by now are
    // dead and can be dropped.
    std::erase_if(_windows, [&](const Window &w) { return w.until <= now; });
    double bpc = _config.bytesPerCycle;
    const double factor = degradeFactorAt(start);
    if (factor < 1.0) {
        bpc *= factor;
        ++degradedMessages;
    }
    const Tick service =
        std::max<Tick>(1, Tick(std::ceil(double(bytes) / bpc)));
    _nextFree[dir] = start + service;

    ++messages[dir];
    bytesSent[dir] += bytes;
    busyCycles[dir] += service;

    return start + service + _config.latency;
}

} // namespace griffin::ic
