#include "src/interconnect/link.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace griffin::ic {

Link::Link(const LinkConfig &config) : _config(config)
{
    assert(config.bytesPerCycle > 0.0);
}

void
Link::degrade(Tick until, double factor)
{
    assert(factor > 0.0 && factor <= 1.0);
    _degradeUntil = std::max(_degradeUntil, until);
    _degradeFactor = factor;
}

Tick
Link::send(Tick now, unsigned dir, std::uint64_t bytes)
{
    assert(dir < 2);
    assert(bytes > 0);

    const Tick start = std::max(now, _nextFree[dir]);
    double bpc = _config.bytesPerCycle;
    if (start < _degradeUntil) {
        bpc *= _degradeFactor;
        ++degradedMessages;
    }
    const Tick service =
        std::max<Tick>(1, Tick(std::ceil(double(bytes) / bpc)));
    _nextFree[dir] = start + service;

    ++messages[dir];
    bytesSent[dir] += bytes;
    busyCycles[dir] += service;

    return start + service + _config.latency;
}

} // namespace griffin::ic
