#include "src/interconnect/link.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace griffin::ic {

Link::Link(const LinkConfig &config) : _config(config)
{
    assert(config.bytesPerCycle > 0.0);
}

Tick
Link::send(Tick now, unsigned dir, std::uint64_t bytes)
{
    assert(dir < 2);
    assert(bytes > 0);

    const Tick service =
        std::max<Tick>(1, Tick(std::ceil(double(bytes) /
                                         _config.bytesPerCycle)));
    const Tick start = std::max(now, _nextFree[dir]);
    _nextFree[dir] = start + service;

    ++messages[dir];
    bytesSent[dir] += bytes;
    busyCycles[dir] += service;

    return start + service + _config.latency;
}

} // namespace griffin::ic
