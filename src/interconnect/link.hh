/**
 * @file
 * A full-duplex point-to-point link with bandwidth serialization.
 *
 * Each direction has its own "next free" cursor: a message occupies
 * the wire for bytes/bandwidth cycles and then propagates for a fixed
 * latency. This is the component that turns page-placement imbalance
 * into congestion — the paper's central performance mechanism
 * (SS II-C, challenge 2).
 */

#ifndef GRIFFIN_IC_LINK_HH
#define GRIFFIN_IC_LINK_HH

#include <cstdint>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::ic {

/** Bandwidth/latency parameters of one link. */
struct LinkConfig
{
    /**
     * Per-direction bandwidth. PCIe-v4 x16 gives 32 GB/s each way; at
     * a 1 GHz model clock that is 32 bytes per cycle (paper Table II).
     */
    double bytesPerCycle = 32.0;
    /** One-way propagation latency. */
    Tick latency = 250;
};

/**
 * One link. Direction 0 is "upstream" (device -> switch), direction 1
 * is "downstream"; the two do not contend with each other.
 */
class Link
{
  public:
    explicit Link(const LinkConfig &config);

    const LinkConfig &config() const { return _config; }

    /**
     * Transmit @p bytes in direction @p dir, starting no earlier than
     * @p now and no earlier than the wire being free.
     * @return the delivery time at the far end.
     */
    Tick send(Tick now, unsigned dir, std::uint64_t bytes);

    /** Earliest time a new message could start in @p dir. */
    Tick nextFree(unsigned dir) const { return _nextFree[dir]; }

    /**
     * Open a bandwidth-degradation window: messages that start before
     * @p until serialize at @p factor of the configured bandwidth.
     * Models a fabric fault (link retrain / lane drop). Windows may
     * overlap; where they do, the most-degraded (smallest) factor
     * wins — a later, milder fault never undoes a severe one that is
     * still in effect.
     */
    void degrade(Tick until, double factor);

    /** True when a message starting at @p now would be degraded. */
    bool degradedAt(Tick now) const
    {
        for (const Window &w : _windows)
            if (now < w.until)
                return true;
        return false;
    }

    /**
     * The bandwidth factor applied to a message starting at @p now:
     * the minimum over all windows still open at that time, 1.0 when
     * none is.
     */
    double degradeFactorAt(Tick now) const;

    /** @name Statistics @{ */
    std::uint64_t messages[2] = {0, 0};
    std::uint64_t bytesSent[2] = {0, 0};
    std::uint64_t busyCycles[2] = {0, 0};
    /** Messages serialized inside a degradation window. */
    std::uint64_t degradedMessages = 0;
    /** @} */

  private:
    /** One degradation window; open until @c until (exclusive). */
    struct Window
    {
        Tick until;
        double factor;
    };

    LinkConfig _config;
    Tick _nextFree[2] = {0, 0};
    /**
     * Open degradation windows. Kept minimal: degrade() drops windows
     * dominated by a new one, send() prunes windows that have closed.
     * Overlaps are resolved by taking the minimum factor.
     */
    std::vector<Window> _windows;
};

} // namespace griffin::ic

#endif // GRIFFIN_IC_LINK_HH
