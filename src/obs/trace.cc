#include "src/obs/trace.hh"

#include "src/obs/hostprof.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/obs/json.hh"

namespace griffin::obs {

thread_local TraceSession *TraceSession::s_active = nullptr;

const char *
categoryName(Category cat)
{
    switch (cat) {
      case CatFault: return "fault";
      case CatMigration: return "migration";
      case CatShootdown: return "shootdown";
      case CatDrain: return "drain";
      case CatPolicy: return "policy";
      case CatNet: return "net";
      case CatDca: return "dca";
      case CatChaos: return "chaos";
    }
    return "other";
}

// ---------------------------------------------------------------------
// TraceArgs
// ---------------------------------------------------------------------

void
TraceArgs::key(const char *k)
{
    _body += _body.empty() ? "{" : ",";
    _body += '"';
    _body += json::escape(k);
    _body += "\":";
}

TraceArgs &
TraceArgs::add(const char *k, std::uint64_t value)
{
    key(k);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(value));
    _body += buf;
    return *this;
}

TraceArgs &
TraceArgs::add(const char *k, double value)
{
    key(k);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    _body += buf;
    return *this;
}

TraceArgs &
TraceArgs::add(const char *k, const char *value)
{
    key(k);
    _body += '"';
    _body += json::escape(value);
    _body += '"';
    return *this;
}

TraceArgs &
TraceArgs::add(const char *k, const std::string &value)
{
    return add(k, value.c_str());
}

std::string
TraceArgs::json() const
{
    return _body.empty() ? std::string() : _body + "}";
}

// ---------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------

TraceSession::TraceSession(std::uint32_t categories)
    : _categories(categories)
{
    _processNames.push_back("sim");
}

TraceSession::~TraceSession()
{
    if (_attached)
        detach();
}

void
TraceSession::attach()
{
    if (_attached)
        return;
    _prevActive = s_active;
    s_active = this;
    _attached = true;
}

void
TraceSession::detach()
{
    if (!_attached)
        return;
    // Sessions detach LIFO in practice; tolerate out-of-order anyway.
    if (s_active == this)
        s_active = _prevActive;
    _attached = false;
    _prevActive = nullptr;
}

void
TraceSession::beginProcess(const std::string &name)
{
    _pid = std::uint32_t(_processNames.size());
    _processNames.push_back(name);
}

std::uint32_t
TraceSession::trackId(const std::string &track)
{
    const auto key = std::make_pair(_pid, track);
    auto it = _tracks.find(key);
    if (it != _tracks.end())
        return it->second;
    const std::uint32_t tid = _nextTid++;
    _tracks.emplace(key, tid);
    _trackNames.emplace_back(_pid, track);
    return tid;
}

void
TraceSession::instant(Category cat, const std::string &track,
                      const std::string &name, Tick ts,
                      const TraceArgs &args)
{
    GHPROF_SCOPE("obs", "trace");
    _events.push_back(Event{'i', _pid, trackId(track), ts, 0, 0.0, 0,
                            categoryName(cat), name, args.json()});
}

void
TraceSession::complete(Category cat, const std::string &track,
                       const std::string &name, Tick begin, Tick end,
                       const TraceArgs &args)
{
    GHPROF_SCOPE("obs", "trace");
    assert(end >= begin);
    _events.push_back(Event{'X', _pid, trackId(track), begin, end - begin,
                            0.0, 0, categoryName(cat), name, args.json()});
}

void
TraceSession::counter(Category cat, const std::string &track,
                      const std::string &series, Tick ts, double value)
{
    GHPROF_SCOPE("obs", "trace");
    _events.push_back(Event{'C', _pid, trackId(track), ts, 0, value, 0,
                            categoryName(cat), series, std::string()});
}

void
TraceSession::flow(Category cat, const std::string &track,
                   const std::string &name, Tick ts, std::uint64_t id,
                   FlowPhase phase)
{
    const char ph = phase == FlowPhase::Begin ? 's'
                  : phase == FlowPhase::Step  ? 't'
                                              : 'f';
    GHPROF_SCOPE("obs", "trace");
    _events.push_back(Event{ph, _pid, trackId(track), ts, 0, 0.0, id,
                            categoryName(cat), name, std::string()});
}

void
TraceSession::writeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Metadata: process and thread names.
    for (std::uint32_t pid = 0; pid < _processNames.size(); ++pid) {
        if (pid == 0 && _processNames.size() > 1)
            continue; // the implicit "sim" process went unused
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\""
           << json::escape(_processNames[pid]) << "\"}}";
    }
    for (const auto &[pid, track] : _trackNames) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":"
           << _tracks.at(std::make_pair(pid, track))
           << ",\"args\":{\"name\":\"" << json::escape(track) << "\"}}";
    }

    // Events, in timestamp order (stable, so same-tick order is
    // emission order).
    std::vector<const Event *> sorted;
    sorted.reserve(_events.size());
    for (const Event &ev : _events)
        sorted.push_back(&ev);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event *a, const Event *b) {
                         return a->ts < b->ts;
                     });

    for (const Event *ev : sorted) {
        sep();
        writeEvent(os, *ev, ev->pid);
    }
    os << "\n]}\n";
}

void
TraceSession::writeEvent(std::ostream &os, const Event &ev,
                         std::uint32_t pid)
{
    os << "{\"name\":\"" << json::escape(ev.name) << "\",\"cat\":\""
       << ev.cat << "\",\"ph\":\"" << ev.ph << "\",\"pid\":" << pid
       << ",\"tid\":" << ev.tid << ",\"ts\":" << ev.ts;
    switch (ev.ph) {
      case 'X':
        os << ",\"dur\":" << ev.dur;
        break;
      case 'i':
        os << ",\"s\":\"t\"";
        break;
      case 'C': {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", ev.value);
        os << ",\"args\":{\"value\":" << buf << "}}";
        return;
      }
      case 's':
        os << ",\"id\":" << ev.flowId;
        break;
      case 't':
      case 'f':
        // Bind to the enclosing slice so arrows land on the spans
        // they causally connect.
        os << ",\"id\":" << ev.flowId << ",\"bp\":\"e\"";
        break;
      default:
        break;
    }
    if (!ev.args.empty())
        os << ",\"args\":" << ev.args;
    os << "}";
}

void
TraceSession::writeMerged(std::ostream &os,
                          const std::vector<const TraceSession *> &sessions)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Renumber processes globally: session order, then local pid
    // order. The implicit "sim" process (local pid 0) is included
    // only when a session recorded events without ever calling
    // beginProcess.
    struct PidKey
    {
        std::size_t session;
        std::uint32_t localPid;
        bool operator<(const PidKey &o) const
        {
            return session != o.session ? session < o.session
                                        : localPid < o.localPid;
        }
    };
    std::map<PidKey, std::uint32_t> pidMap;
    std::uint32_t nextPid = 1;
    for (std::size_t s = 0; s < sessions.size(); ++s) {
        const TraceSession *t = sessions[s];
        if (!t)
            continue;
        for (std::uint32_t p = 0; p < t->_processNames.size(); ++p) {
            if (p == 0 && t->_processNames.size() > 1)
                continue; // the implicit "sim" process went unused
            pidMap.emplace(PidKey{s, p}, nextPid);
            sep();
            os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
               << nextPid << ",\"tid\":0,\"args\":{\"name\":\""
               << json::escape(t->_processNames[p]) << "\"}}";
            ++nextPid;
        }
    }
    for (std::size_t s = 0; s < sessions.size(); ++s) {
        const TraceSession *t = sessions[s];
        if (!t)
            continue;
        for (const auto &[pid, track] : t->_trackNames) {
            sep();
            os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
               << pidMap.at(PidKey{s, pid}) << ",\"tid\":"
               << t->_tracks.at(std::make_pair(pid, track))
               << ",\"args\":{\"name\":\"" << json::escape(track)
               << "\"}}";
        }
    }

    // One global timeline: stable sort keeps session order (and then
    // emission order) for same-tick events.
    struct Ref
    {
        const Event *ev;
        std::uint32_t pid;
    };
    std::vector<Ref> sorted;
    for (std::size_t s = 0; s < sessions.size(); ++s) {
        const TraceSession *t = sessions[s];
        if (!t)
            continue;
        sorted.reserve(sorted.size() + t->_events.size());
        for (const Event &ev : t->_events) {
            // Events recorded before the first beginProcess() of a
            // multi-process session keep the unnamed pid 0.
            const auto it = pidMap.find(PidKey{s, ev.pid});
            sorted.push_back(Ref{&ev, it != pidMap.end() ? it->second : 0});
        }
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Ref &a, const Ref &b) {
                         return a.ev->ts < b.ev->ts;
                     });

    for (const Ref &r : sorted) {
        sep();
        writeEvent(os, *r.ev, r.pid);
    }
    os << "\n]}\n";
}

std::string
TraceSession::json() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace griffin::obs
