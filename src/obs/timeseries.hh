/**
 * @file
 * Interval time-series over the system's event stream: migrations,
 * DCA accesses, shootdowns and faults per fixed tick interval, plus
 * per-interval fault p50/p95 and link utilization.
 *
 * The recorder rides sim::Engine's periodic-hook mechanism (like the
 * probe Sampler), so interval boundaries fire inside run() without
 * extending the simulated end time. Unlike the Sampler, the columns
 * here are event-driven: the instrumented counting sites are the
 * exact statements that bump the run-level aggregate counters, so the
 * per-interval sums reconcile with the run totals by construction
 * (sum of migrations rows == pageTable.migrations, shootdowns ==
 * cpuShootdowns + gpuShootdowns, dca_accesses == remoteAccesses,
 * faults == the faultLatency histogram count). The final partial
 * interval is flushed at stop(), so nothing after the last boundary
 * is dropped.
 *
 * Same attach discipline as Metrics/PageStats: a LIFO thread_local
 * pointer, null-checked static guards, zero cost when nothing is
 * attached, one instance per concurrent sweep run.
 */

#ifndef GRIFFIN_OBS_TIMESERIES_HH
#define GRIFFIN_OBS_TIMESERIES_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::sim {
class Engine;
} // namespace griffin::sim

namespace griffin::obs {

/**
 * The attachable interval recorder. Owned by MultiGpuSystem (built
 * only when SystemConfig::timeseriesTick > 0) and attached for the
 * duration of run().
 */
class TimeSeries
{
  public:
    /** The event-driven columns. */
    enum class Series : unsigned
    {
        Migrations = 0, ///< page-table commits
        DcaAccesses,    ///< GPU accesses served remotely
        Shootdowns,     ///< CPU flushes + GPU shootdown events
        Faults,         ///< serviced page faults
    };

    static constexpr unsigned numSeries = 4;

    /** One closed interval [begin, end). */
    struct Row
    {
        Tick begin = 0;
        Tick end = 0;
        std::array<std::uint64_t, numSeries> counts{};
        double faultP50 = 0.0;
        double faultP95 = 0.0;
        /** Mean busy fraction across all fabric wires. */
        double linkUtil = 0.0;
    };

    /** The copyable end-of-run digest carried by RunResult. */
    struct Summary
    {
        Tick tick = 0; ///< interval width; 0 = recorder was off
        std::vector<Row> rows;
        std::array<std::uint64_t, numSeries> totals{};
    };

    /** @param tick interval width in cycles (must be > 0). */
    explicit TimeSeries(Tick tick);
    ~TimeSeries();

    TimeSeries(const TimeSeries &) = delete;
    TimeSeries &operator=(const TimeSeries &) = delete;

    /** Attach/detach on the calling thread (LIFO, single-threaded). */
    void attach();
    void detach();

    /** The calling thread's recording instance, or nullptr. */
    static TimeSeries *active() { return s_active; }

    /**
     * Poll source for link utilization: returns the *cumulative* busy
     * cycles summed over @p wires fabric wires; each flush converts
     * the delta into a mean busy fraction. Set before start().
     */
    void setLinkBusyProbe(std::function<double()> cumulative_busy,
                          unsigned wires);

    /** Register the interval boundary hook on @p engine. */
    void start(sim::Engine &engine);

    /**
     * Deregister from the engine and flush the final partial interval
     * (anything recorded since the last boundary). Recorded rows are
     * kept; safe to call twice.
     */
    void stop();

    /** @name Static guards for instrumentation sites @{ */

    static void
    countActive(Series series, std::uint64_t n = 1)
    {
        if (s_active)
            s_active->count(series, n);
    }

    /** One serviced fault: bumps Faults and records its latency. */
    static void
    faultActive(double latency)
    {
        if (s_active)
            s_active->fault(latency);
    }

    /** @} */

    void count(Series series, std::uint64_t n = 1);
    void fault(double latency);

    /** @name Inspection (reports, tests) @{ */

    Tick tick() const { return _tick; }
    const std::vector<Row> &rows() const { return _rows; }

    /** Run total of @p series across all flushed rows. */
    std::uint64_t total(Series series) const
    {
        return _totals[unsigned(series)];
    }

    Summary summary() const;

    /** @} */

  private:
    void flush(Tick boundary);

    Tick _tick;
    std::vector<Row> _rows;
    std::array<std::uint64_t, numSeries> _totals{};

    /** The accumulating open interval. */
    Tick _intervalBegin = 0;
    std::array<std::uint64_t, numSeries> _counts{};
    std::vector<double> _faultLatencies;

    std::function<double()> _busyProbe;
    unsigned _wires = 0;
    double _prevBusy = 0.0;

    sim::Engine *_engine = nullptr;
    std::uint64_t _hookId = 0;

    TimeSeries *_prevActive = nullptr;
    bool _attached = false;

    static thread_local TimeSeries *s_active;
};

} // namespace griffin::obs

#endif // GRIFFIN_OBS_TIMESERIES_HH
