/**
 * @file
 * Host-side self-profiler: where does the *simulator* spend wall-clock
 * time? Every other observability layer (trace, spans, pagestats,
 * timeseries) measures simulated ticks; this one measures host
 * nanoseconds, attributed per component and event type, so "sweeps
 * feel slow" turns into numbers a perf PR can gate on.
 *
 * Attribution model:
 *  - sim::EventQueue::runOne() brackets every dispatched event with
 *    beginDispatch()/endDispatch() when a profiler is attached; the
 *    sum of those brackets is the *measured dispatch wall time*.
 *  - Instrumented event bodies open RAII scopes (GHPROF_SCOPE) naming
 *    their component ("network", "iommu", "driver", "pmc", "gpu",
 *    "policy", "dispatcher", "chaos", "obs", ...) and event type.
 *    Scopes nest; a scope's *self time* is its elapsed time minus the
 *    elapsed time of its children, so bucket self-times partition the
 *    measured time exactly (no double counting).
 *  - The dispatch bracket's own self time (the InlineEvent call and
 *    scope setup around the outermost scope) is attributed to that
 *    outermost scope's bucket — it is overhead *of* that component's
 *    event. Only dispatches that never open a scope land in the
 *    "sim;unattributed" bucket, which is how the attribution fraction
 *    stays honest: it drops exactly when an event type is missing its
 *    instrumentation.
 *
 * The telemetry-overhead meter is nothing special: the obs sinks
 * (TraceSession, Sampler, PageStats, TimeSeries) open "obs;..."
 * scopes inside their recording paths. Those paths only execute when
 * that telemetry is attached, so the obs share is structurally zero
 * when telemetry is off.
 *
 * Determinism contract: bucket *names and counts* are a pure function
 * of the simulated event sequence, so they are byte-identical across
 * --jobs=N. The nanosecond fields are host measurements and are not;
 * reports keep them in a clearly-marked "host" subsection that
 * sys::compare treats as warn-only and excludes from drift.
 *
 * Same attach discipline as every other sink: a LIFO thread_local
 * pointer, null-checked guards, near-zero cost when off (a scope is
 * one thread_local load and a branch), one instance per concurrent
 * sweep run.
 */

#ifndef GRIFFIN_OBS_HOSTPROF_HH
#define GRIFFIN_OBS_HOSTPROF_HH

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace griffin::obs {

/**
 * The copyable end-of-run digest RunResult carries out of the system
 * and the JSON report serializes as "host_profile". Buckets are kept
 * sorted by (component, event) so serialization is deterministic.
 */
struct HostProfile
{
    bool enabled = false;

    /** Host wall time from attach to stopTimer(), in nanoseconds. */
    std::uint64_t wallNs = 0;
    /** Sum of per-event dispatch brackets (the measured time). */
    std::uint64_t dispatchNs = 0;
    /** Events dispatched while attached (deterministic). */
    std::uint64_t events = 0;

    struct Bucket
    {
        std::string component;
        std::string event;
        /** Scope entries (deterministic across --jobs=N). */
        std::uint64_t count = 0;
        /** Self time: elapsed minus time inside child scopes. */
        std::uint64_t selfNs = 0;

        std::string name() const { return component + ";" + event; }
    };

    /** Sorted by component, then event. */
    std::vector<Bucket> buckets;

    /** Dispatched events per host second (0 when nothing measured). */
    double eventsPerSec() const;

    /** Self time of the "sim;unattributed" bucket. */
    std::uint64_t unattributedNs() const;
    /** dispatchNs minus the unattributed remainder. */
    std::uint64_t attributedNs() const;
    /** attributedNs over dispatchNs, in [0, 1] (1 when nothing ran). */
    double attributedFraction() const;

    /** Total self time of "obs" buckets: the telemetry overhead. */
    std::uint64_t obsNs() const;
    /** obsNs over dispatchNs (0 when nothing ran). */
    double obsFraction() const;

    /** Bucket lookup by exact (component, event); nullptr if absent. */
    const Bucket *findBucket(const std::string &component,
                             const std::string &event) const;

    /**
     * Fold @p other into this profile: buckets merge by (component,
     * event) with counts and times summed; wall/dispatch/event totals
     * add. Merging N per-run profiles in label order is deterministic
     * in shape (names + counts); the aggregated wall time is summed
     * per-run time, not elapsed time, when runs overlapped.
     */
    void merge(const HostProfile &other);

    /**
     * Folded-stack rendering, one "component;event selfNs" line per
     * bucket, consumable by flamegraph.pl / speedscope.
     */
    std::string folded() const;

    /**
     * Parse folded() output back into a profile. Bucket counts and
     * the wall/event totals are not part of the folded format;
     * dispatchNs is reconstructed as the sum of bucket self times.
     * @return nullopt on any malformed line.
     */
    static std::optional<HostProfile> parseFolded(const std::string &text);
};

/**
 * The attachable profiler. Owned by MultiGpuSystem (built only when
 * SystemConfig::hostProf), attached for the duration of run().
 */
class HostProfiler
{
  private:
    /** One live scope on the (intrusive, stack-allocated) stack. */
    struct Frame
    {
        const char *component = nullptr;
        const char *event = nullptr;
        std::uint64_t childNs = 0;
        Frame *parent = nullptr;
    };

  public:
    HostProfiler();
    ~HostProfiler();

    HostProfiler(const HostProfiler &) = delete;
    HostProfiler &operator=(const HostProfiler &) = delete;

    /** Attach/detach on the calling thread (LIFO, single-threaded). */
    void attach();
    void detach();

    /** The calling thread's profiling instance, or nullptr. */
    static HostProfiler *active() { return s_active; }

    /** @name Dispatch bracket (sim::EventQueue::runOne) @{ */
    void beginDispatch();
    void endDispatch();
    /** @} */

    /**
     * Freeze the wall clock (attach -> now). Call once the run is
     * over, before profile(); later calls keep the first reading.
     */
    void stopTimer();

    /** Build the copyable digest (deterministic bucket order). */
    HostProfile profile() const;

    /** @name Raw inspection (tests) @{ */
    std::uint64_t eventsDispatched() const { return _events; }
    std::uint64_t dispatchNs() const { return _dispatchNs; }
    /** @} */

    /**
     * One RAII attribution scope. Constructing is near-free when no
     * profiler is attached (a thread_local load plus a branch), so
     * instrumentation sites stay on the hot path unconditionally.
     * @p component and @p event must be string literals (or otherwise
     * outlive the profiler): buckets key on the pointers and resolve
     * to content only when the profile is built.
     */
    class Scope
    {
      public:
        Scope(const char *component, const char *event)
            : _prof(s_active)
        {
            if (!_prof)
                return;
            _frame.component = component;
            _frame.event = event;
            _frame.parent = _prof->_top;
            _prof->_top = &_frame;
            // First scope of a dispatch claims the dispatch bracket:
            // its component absorbs the bracket's own self time.
            if (_frame.parent == &_prof->_rootFrame &&
                !_prof->_rootFrame.component) {
                _prof->_rootFrame.component = component;
                _prof->_rootFrame.event = event;
            }
            _begin = std::chrono::steady_clock::now();
        }

        ~Scope()
        {
            if (!_prof)
                return;
            const auto ns = std::uint64_t(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - _begin)
                    .count());
            _prof->_top = _frame.parent;
            const std::uint64_t child =
                _frame.childNs < ns ? _frame.childNs : ns;
            _prof->record(_frame.component, _frame.event, ns - child, 1);
            if (_frame.parent)
                _frame.parent->childNs += ns;
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        HostProfiler *_prof;
        Frame _frame;
        std::chrono::steady_clock::time_point _begin;
    };

  private:
    friend class Scope;

    struct KeyHash
    {
        std::size_t
        operator()(const std::pair<const char *, const char *> &k) const
        {
            const auto a = std::hash<const void *>()(k.first);
            const auto b = std::hash<const void *>()(k.second);
            return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
        }
    };

    struct Counts
    {
        std::uint64_t count = 0;
        std::uint64_t selfNs = 0;
    };

    void record(const char *component, const char *event,
                std::uint64_t self_ns, std::uint64_t count);

    /** Pointer-keyed raw buckets; content-merged by profile(). */
    std::unordered_map<std::pair<const char *, const char *>, Counts,
                       KeyHash>
        _buckets;

    /** Sentinel frame representing the current dispatch bracket. */
    Frame _rootFrame;
    Frame *_top = nullptr;
    std::chrono::steady_clock::time_point _dispatchBegin;

    std::uint64_t _dispatchNs = 0;
    std::uint64_t _events = 0;

    std::chrono::steady_clock::time_point _attachTime;
    std::uint64_t _wallNs = 0;
    bool _stopped = false;

    HostProfiler *_prevActive = nullptr;
    bool _attached = false;

    static thread_local HostProfiler *s_active;
};

/** Open an attribution scope for the rest of the enclosing block. */
#define GHPROF_CONCAT2(a, b) a##b
#define GHPROF_CONCAT(a, b) GHPROF_CONCAT2(a, b)
#define GHPROF_SCOPE(component, event)                                 \
    ::griffin::obs::HostProfiler::Scope GHPROF_CONCAT(                 \
        ghprofScope_, __LINE__)(component, event)

} // namespace griffin::obs

#endif // GRIFFIN_OBS_HOSTPROF_HH
