/**
 * @file
 * Periodic time-series sampler.
 *
 * Benches register probes (per-GPU page residency, link utilization,
 * outstanding faults, CU occupancy — anything callable) and start the
 * sampler against a sim::Engine; every N cycles it snapshots every
 * probe into an in-memory time series that exports as CSV or feeds
 * the JSON run report.
 *
 * Sampling rides the engine's periodic-hook mechanism: boundaries
 * fire inside run() without scheduling events, so the sampler never
 * extends the simulated end time. A run's row count is
 * 1 + floor(t_last / period) boundary rows (the initial row is taken
 * at start()) plus, when the run ends between boundaries, one final
 * partial row taken by stop() at the end time — so the tail of the
 * run is never dropped.
 */

#ifndef GRIFFIN_OBS_SAMPLER_HH
#define GRIFFIN_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/types.hh"

namespace griffin::obs {

/**
 * The sampler. add() all probes first, then start(); rows accumulate
 * until the run ends or stop() is called.
 */
class Sampler
{
  public:
    using Probe = std::function<double()>;

    /** One snapshot: the boundary tick plus every probe's value. */
    struct Row
    {
        Tick tick;
        std::vector<double> values;
    };

    Sampler() = default;
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Register a probe under @p name (one CSV column). */
    void add(std::string name, Probe probe);

    /**
     * Take an immediate sample and then one every @p period cycles of
     * @p engine's run() loop. The engine must outlive this sampler or
     * stop() must be called first.
     */
    void start(sim::Engine &engine, Tick period);

    /**
     * Deregister from the engine, first taking one final sample at
     * the engine's current time when the run ended strictly after the
     * last recorded row (the final partial sampling interval).
     * Recorded rows are kept.
     */
    void stop();

    /** Take one snapshot labelled @p tick right now. */
    void sampleNow(Tick tick);

    /** Probe names, in registration order. */
    const std::vector<std::string> &columns() const { return _columns; }

    const std::vector<Row> &rows() const { return _rows; }

    Tick period() const { return _period; }

    /** Render "tick,col1,col2,...\n..." CSV. */
    std::string csv() const;

  private:
    std::vector<std::string> _columns;
    std::vector<Probe> _probes;
    std::vector<Row> _rows;
    Tick _period = 0;

    sim::Engine *_engine = nullptr;
    std::uint64_t _hookId = 0;
};

} // namespace griffin::obs

#endif // GRIFFIN_OBS_SAMPLER_HH
