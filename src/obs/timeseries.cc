#include "src/obs/timeseries.hh"

#include "src/obs/hostprof.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "src/sim/engine.hh"

namespace griffin::obs {

thread_local TimeSeries *TimeSeries::s_active = nullptr;

TimeSeries::TimeSeries(Tick tick) : _tick(tick)
{
    assert(tick > 0);
}

TimeSeries::~TimeSeries()
{
    assert(!_attached);
    stop();
}

void
TimeSeries::attach()
{
    assert(!_attached);
    _attached = true;
    _prevActive = s_active;
    s_active = this;
}

void
TimeSeries::detach()
{
    assert(_attached);
    assert(s_active == this && "detach out of LIFO order");
    s_active = _prevActive;
    _prevActive = nullptr;
    _attached = false;
}

void
TimeSeries::setLinkBusyProbe(std::function<double()> cumulative_busy,
                             unsigned wires)
{
    assert(!_engine && "set the probe before start()");
    _busyProbe = std::move(cumulative_busy);
    _wires = wires;
}

void
TimeSeries::start(sim::Engine &engine)
{
    assert(!_engine && "time series already started");
    _engine = &engine;
    _intervalBegin = engine.now();
    if (_busyProbe)
        _prevBusy = _busyProbe();
    _hookId = engine.addPeriodicHook(
        _tick, [this](Tick boundary) { flush(boundary); });
}

void
TimeSeries::stop()
{
    if (!_engine)
        return;
    _engine->removePeriodicHook(_hookId);
    // Flush the final partial interval: events after the last
    // boundary would otherwise be dropped and the per-interval sums
    // would no longer reconcile with the run-level aggregates.
    const Tick now = _engine->now();
    bool pending = now > _intervalBegin || !_faultLatencies.empty();
    for (const std::uint64_t c : _counts)
        pending = pending || c > 0;
    if (pending)
        flush(now);
    _engine = nullptr;
    _hookId = 0;
}

void
TimeSeries::count(Series series, std::uint64_t n)
{
    GHPROF_SCOPE("obs", "timeseries");
    _counts[unsigned(series)] += n;
}

void
TimeSeries::fault(double latency)
{
    GHPROF_SCOPE("obs", "timeseries");
    ++_counts[unsigned(Series::Faults)];
    _faultLatencies.push_back(latency);
}

void
TimeSeries::flush(Tick boundary)
{
    GHPROF_SCOPE("obs", "timeseries");
    Row row;
    row.begin = _intervalBegin;
    row.end = boundary;
    row.counts = _counts;

    if (!_faultLatencies.empty()) {
        // Nearest-rank percentiles over the interval's own samples:
        // exact, deterministic, and cheap at fault-population sizes.
        std::sort(_faultLatencies.begin(), _faultLatencies.end());
        const auto rank = [this](double p) {
            const std::size_t n = _faultLatencies.size();
            std::size_t k = std::size_t(std::ceil(p / 100.0 * double(n)));
            k = std::min(std::max<std::size_t>(k, 1), n);
            return _faultLatencies[k - 1];
        };
        row.faultP50 = rank(50.0);
        row.faultP95 = rank(95.0);
    }

    if (_busyProbe && _wires > 0 && boundary > _intervalBegin) {
        const double busy = _busyProbe();
        row.linkUtil = (busy - _prevBusy) /
                       (double(boundary - _intervalBegin) * _wires);
        _prevBusy = busy;
    }

    for (unsigned s = 0; s < numSeries; ++s)
        _totals[s] += _counts[s];

    _rows.push_back(std::move(row));
    _counts = {};
    _faultLatencies.clear();
    _intervalBegin = boundary;
}

TimeSeries::Summary
TimeSeries::summary() const
{
    Summary s;
    s.tick = _tick;
    s.rows = _rows;
    s.totals = _totals;
    return s;
}

} // namespace griffin::obs
