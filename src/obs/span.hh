/**
 * @file
 * Causal fault spans and critical-path latency attribution.
 *
 * Every serviced page fault is decomposed into a fixed taxonomy of
 * stages (the paper's own cost model: walk queueing at the IOMMU's
 * N_PTW walkers, the walk itself, the policy decision, CPMS batching
 * delay, PMC queueing and streaming, the CPU shootdown/flush, and the
 * translation-replay resume). The instrumented components stamp stage
 * boundaries against a `FaultId`; the attachable `FaultSpans` sink
 * assembles one span tree per fault and feeds a `CriticalPath`
 * aggregator that the JSON run report serializes as `fault_breakdown`.
 *
 * Cost model: requests that never fault touch this layer not at all —
 * they only carry a few `Tick` stamps in the IOMMU's request struct.
 * A `FaultId` is allocated (and a record created) only when a fault
 * is actually raised, so the per-fault overhead is a handful of hash
 * map operations against a population of at most a few thousand
 * faults per run. Like `Metrics`, the sink is a LIFO-attached
 * thread_local pointer; nothing is recorded when none is attached on
 * the calling thread, and concurrent simulations on worker threads
 * (sys::SweepRunner) each record into their own sink.
 */

#ifndef GRIFFIN_OBS_SPAN_HH
#define GRIFFIN_OBS_SPAN_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace griffin::obs {

/**
 * The stage taxonomy, in causal order. Each enumerator names the
 * stage that *ends* at the mark carrying it:
 *
 *  - WalkQueue:     TLB-miss origin -> a page table walker picks the
 *                   page up (includes the fabric crossing and the
 *                   IOTLB probe);
 *  - Walk:          the four-level page table walk;
 *  - Policy:        the placement decision (DFTM / first-touch);
 *  - BatchWait:     fault raised -> the driver closes the CPMS batch
 *                   that contains it;
 *  - Shootdown:     the serial batch service: interrupt + runlist
 *                   processing + the CPU TLB shootdown and flush;
 *  - TransferQueue: handed to the PMC -> the DMA stream actually
 *                   starts (non-zero only when the PMC bounds its
 *                   concurrent transfers);
 *  - Transfer:      PMC stream, first read to last byte committed;
 *  - Resume:        page landed -> the parked translation replays and
 *                   the reply reaches the faulting GPU.
 */
enum class Stage : unsigned
{
    WalkQueue = 0,
    Walk,
    Policy,
    BatchWait,
    Shootdown,
    TransferQueue,
    Transfer,
    Resume,
};

inline constexpr unsigned numStages = 8;

/** Snake-case stage name used in reports ("walk_queue", ...). */
const char *stageName(Stage stage);

/** One stage boundary: stage @p stage ended at tick @p at. */
struct StageMark
{
    Stage stage;
    Tick at;
};

/**
 * The span tree of one fault: the origin timestamp plus the ordered
 * stage boundaries. Stage durations are the deltas between
 * consecutive marks (the first mark measures from @c origin), so the
 * durations sum to the end-to-end service time exactly.
 */
struct FaultRecord
{
    FaultId id = invalidFaultId;
    DeviceId gpu = invalidDeviceId;
    PageId page = 0;
    Tick origin = 0;
    std::vector<StageMark> marks;

    /** End-to-end service time (0 until the Resume mark lands). */
    Tick
    totalLatency() const
    {
        return marks.empty() ? 0 : marks.back().at - origin;
    }
};

/**
 * Per-run critical-path aggregation: one latency histogram per stage,
 * exact per-stage duration sums for the stage-share breakdown, and
 * the end-to-end total distribution. Plain copyable so RunResult can
 * carry a snapshot out of the system.
 */
class CriticalPath
{
  public:
    CriticalPath();

    /** Fold one completed fault in (marks must be stage-ordered). */
    void addFault(const FaultRecord &record);

    /** Completed faults folded in. */
    std::uint64_t faults() const { return _faults; }

    const sim::Histogram &stageHistogram(Stage stage) const
    {
        return _stageHist[unsigned(stage)];
    }

    /** Sum of this stage's durations across all faults, in cycles. */
    double stageSum(Stage stage) const { return _stageSum[unsigned(stage)]; }

    /** End-to-end fault service time distribution. */
    const sim::Histogram &total() const { return _total; }

    /**
     * Fraction of the summed service time spent in @p stage, in
     * [0, 1]; 0 when nothing completed. Shares sum to 1 across the
     * taxonomy because stage durations partition the total exactly.
     */
    double share(Stage stage) const;

  private:
    std::uint64_t _faults = 0;
    std::vector<sim::Histogram> _stageHist;
    std::vector<double> _stageSum;
    sim::Histogram _total;
};

/**
 * The attachable span sink. Components call the static helpers, which
 * are no-ops unless a sink is attached *and* the fault id is valid.
 */
class FaultSpans
{
  public:
    FaultSpans() = default;
    ~FaultSpans();

    FaultSpans(const FaultSpans &) = delete;
    FaultSpans &operator=(const FaultSpans &) = delete;

    /** Attach/detach on the calling thread (LIFO, single-threaded). */
    void attach();
    void detach();

    /** The calling thread's collecting sink, or nullptr. */
    static FaultSpans *active() { return s_active; }

    /**
     * A fault was raised: allocate its id and open its record.
     * @param origin the faulting request's TLB-miss timestamp.
     */
    FaultId beginFault(DeviceId gpu, PageId page, Tick origin);

    /**
     * Stage @p stage of fault @p fid ended at @p at. Marks must
     * arrive in taxonomy order; @p at is clamped forward to the
     * previous boundary so coalesced walkers that joined a walk late
     * still yield monotone, non-negative durations.
     */
    void mark(FaultId fid, Stage stage, Tick at);

    /**
     * The fault's reply reached the requester: final Resume mark,
     * record moves to the completed list and folds into the
     * critical-path aggregation.
     */
    void complete(FaultId fid, Tick at);

    /** @name Static guards for instrumentation sites @{ */

    static void
    markActive(FaultId fid, Stage stage, Tick at)
    {
        if (fid != invalidFaultId && s_active)
            s_active->mark(fid, stage, at);
    }

    static void
    completeActive(FaultId fid, Tick at)
    {
        if (fid != invalidFaultId && s_active)
            s_active->complete(fid, at);
    }

    /** @} */

    /** @name Inspection (reports, tests) @{ */

    const CriticalPath &criticalPath() const { return _criticalPath; }

    /** Completed span trees, in completion order. */
    const std::vector<FaultRecord> &completedFaults() const
    {
        return _completed;
    }

    /** Faults raised but not yet resumed (orphans once a run ends). */
    std::size_t openFaults() const { return _open.size(); }

    std::uint64_t faultsStarted() const { return _nextId - 1; }

    /** @} */

  private:
    std::uint64_t _nextId = 1;
    std::unordered_map<FaultId, FaultRecord> _open;
    std::vector<FaultRecord> _completed;
    CriticalPath _criticalPath;

    FaultSpans *_prevActive = nullptr;
    bool _attached = false;

    static thread_local FaultSpans *s_active;
};

} // namespace griffin::obs

#endif // GRIFFIN_OBS_SPAN_HH
