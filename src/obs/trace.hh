/**
 * @file
 * Structured trace sink: typed simulation events serialized as Chrome
 * trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
 * chrome://tracing.
 *
 * Design constraints:
 *  - zero overhead when no session is attached: every instrumentation
 *    point is guarded by `TraceSession::activeFor(cat)`, one static
 *    pointer load plus a category-mask test;
 *  - the simulated cycle count is the timebase (1 cycle = 1 "us" in
 *    the viewer, since the model clock is 1 GHz the absolute numbers
 *    read as nanoseconds);
 *  - one trace "thread" per device/component (driver, iommu, gpuN,
 *    pmcN, executor, dpc, linkN...), one trace "process" per run so a
 *    multi-run bench produces one navigable file.
 *
 * Each simulation is single-threaded, but independent simulations may
 * run concurrently on different OS threads (sys::SweepRunner). The
 * active-session pointer is therefore thread_local: a session records
 * only the events of the thread it was attached on, and parallel runs
 * each attach their own session. writeMerged() folds the per-run
 * sessions back into one document in a deterministic, submission-
 * ordered way, so a parallel sweep's trace file is byte-identical to
 * a serial one.
 */

#ifndef GRIFFIN_OBS_TRACE_HH
#define GRIFFIN_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace griffin::obs {

/**
 * Event categories, used both as the trace "cat" field and as an
 * enable mask so expensive high-frequency categories (per-message
 * link occupancy, per-line DCA service) can stay off by default.
 */
enum Category : std::uint32_t
{
    CatFault = 1u << 0,     ///< page faults, batching, parking
    CatMigration = 1u << 1, ///< page transfers CPU->GPU and GPU->GPU
    CatShootdown = 1u << 2, ///< TLB shootdowns (CPU- and GPU-side)
    CatDrain = 1u << 3,     ///< ACUD drain / full-flush episodes
    CatPolicy = 1u << 4,    ///< DPC periods, classification, CPMS
    CatNet = 1u << 5,       ///< per-message link busy spans (hot!)
    CatDca = 1u << 6,       ///< per-line remote DCA service (hot!)
    CatChaos = 1u << 7,     ///< injected faults and recovery actions
};

/** Everything except the two per-message firehose categories. */
inline constexpr std::uint32_t defaultCategories =
    CatFault | CatMigration | CatShootdown | CatDrain | CatPolicy | CatChaos;

/** Every category, including the hot ones. */
inline constexpr std::uint32_t allCategories = 0xff;

/** The trace "cat" string for one category bit. */
const char *categoryName(Category cat);

/**
 * Builder for an event's "args" object. Only ever constructed behind
 * an activeFor() guard, so argument formatting costs nothing when
 * tracing is off.
 */
class TraceArgs
{
  public:
    TraceArgs &add(const char *key, std::uint64_t value);
    TraceArgs &add(const char *key, unsigned value)
    {
        return add(key, std::uint64_t(value));
    }
    TraceArgs &add(const char *key, double value);
    TraceArgs &add(const char *key, const char *value);
    TraceArgs &add(const char *key, const std::string &value);

    /** The serialized object body, "{...}"; empty string if no args. */
    std::string json() const;

  private:
    std::string _body;
    void key(const char *k);
};

/**
 * One recording session. Components emit typed events into the active
 * session; writeJson() produces a Chrome trace-event document.
 */
class TraceSession
{
  public:
    explicit TraceSession(std::uint32_t categories = defaultCategories);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** @name Session attachment @{ */

    /**
     * Make this the active session *on the calling thread* (saves and
     * restores any previous one, LIFO). A session must be attached,
     * detached and recorded into on a single thread; naming processes
     * before handing it to that thread is fine as long as the hand-off
     * synchronizes (e.g. thread creation).
     */
    void attach();

    /** Stop recording into this session. */
    void detach();

    /** The calling thread's active session, or nullptr. */
    static TraceSession *active() { return s_active; }

    /**
     * The active session iff @p cat is enabled on it; the single
     * guard every instrumentation point uses.
     */
    static TraceSession *
    activeFor(Category cat)
    {
        TraceSession *t = s_active;
        return (t && (t->_categories & cat)) ? t : nullptr;
    }

    /** @} */

    /**
     * Start a new trace "process": subsequent events group under
     * @p name. Benches call this once per run so one file holds a
     * whole figure's worth of runs.
     */
    void beginProcess(const std::string &name);

    /** @name Event emission @{ */

    /** A point event at @p ts on @p track. */
    void instant(Category cat, const std::string &track,
                 const std::string &name, Tick ts,
                 const TraceArgs &args = {});

    /** A span [@p begin, @p end] on @p track. */
    void complete(Category cat, const std::string &track,
                  const std::string &name, Tick begin, Tick end,
                  const TraceArgs &args = {});

    /** A counter-track sample (rendered as a graph in the viewer). */
    void counter(Category cat, const std::string &track,
                 const std::string &series, Tick ts, double value);

    /** Flow-arrow phase: where @p id's arrow starts, passes, ends. */
    enum class FlowPhase { Begin, Step, End };

    /**
     * One point of a flow arrow (ph 's'/'t'/'f'). All points sharing
     * @p id form one arrow chain across tracks; each point binds to
     * the slice enclosing it on @p track, which is how the viewer
     * draws causal links between the spans of one fault.
     */
    void flow(Category cat, const std::string &track,
              const std::string &name, Tick ts, std::uint64_t id,
              FlowPhase phase);

    /** @} */

    std::size_t eventCount() const { return _events.size(); }
    std::uint32_t categories() const { return _categories; }

    /**
     * Serialize as a Chrome trace-event JSON document. Events are
     * sorted by timestamp (metadata first), so consumers see a
     * monotone timeline.
     */
    void writeJson(std::ostream &os) const;
    std::string json() const;

    /**
     * Serialize several sessions as ONE trace document: every named
     * process of every session becomes a distinct pid, numbered in
     * session order, and all events share one timestamp-sorted
     * timeline (the sort is stable, so same-tick events keep session
     * order, then emission order). The output depends only on the
     * order and contents of @p sessions — never on which threads
     * recorded them — which is what makes parallel sweep traces
     * byte-identical to serial ones. Null entries are skipped.
     */
    static void writeMerged(std::ostream &os,
                            const std::vector<const TraceSession *> &sessions);

  private:
    struct Event
    {
        char ph; ///< 'i' instant, 'X' complete, 'C' counter,
                 ///< 's'/'t'/'f' flow begin/step/end
        std::uint32_t pid;
        std::uint32_t tid;
        Tick ts;
        Tick dur;             ///< complete events only
        double value;         ///< counter events only
        std::uint64_t flowId; ///< flow events only
        const char *cat;      ///< static category name
        std::string name;
        std::string args;
    };

    std::uint32_t _categories;
    std::uint32_t _pid = 0;
    std::uint32_t _nextTid = 1;
    std::vector<std::string> _processNames; ///< index = pid
    /** (pid, track name) -> tid, plus the ordered name list. */
    std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> _tracks;
    std::vector<std::pair<std::uint32_t, std::string>> _trackNames;
    std::vector<Event> _events;

    TraceSession *_prevActive = nullptr;
    bool _attached = false;

    static thread_local TraceSession *s_active;

    std::uint32_t trackId(const std::string &track);
    static void writeEvent(std::ostream &os, const Event &ev,
                           std::uint32_t pid);
};

} // namespace griffin::obs

#endif // GRIFFIN_OBS_TRACE_HH
