/**
 * @file
 * Latency distributions collected during a run.
 *
 * MultiGpuSystem attaches a Metrics instance for the duration of every
 * run; components record into it through the same null-checked static
 * pointer pattern the trace sink uses, so standalone component tests
 * (no system, nothing attached) pay nothing. Histogram samples are a
 * handful of integer ops, which is why these stay on even when
 * tracing is off — they feed the p50/p95/p99 columns of the JSON run
 * report.
 */

#ifndef GRIFFIN_OBS_METRICS_HH
#define GRIFFIN_OBS_METRICS_HH

#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace griffin::obs {

/**
 * The run-level latency histograms, a plain copyable aggregate so
 * RunResult can carry a snapshot out of the system.
 *
 * Bucketing trades resolution for range; percentile() clamps into
 * [min, max], so the tails stay honest even past the last bucket.
 */
struct LatencyHistograms
{
    /** Fault raise (driver notified) -> page landed on the GPU. */
    sim::Histogram faultLatency{250.0, 400};
    /** One CPU->GPU page transfer, PMC dispatch -> last byte. */
    sim::Histogram cpuMigrationLatency{250.0, 400};
    /** One GPU->GPU page transfer, PMC dispatch -> last byte. */
    sim::Histogram interGpuMigrationLatency{250.0, 400};
    /** One remote DCA access, fabric entry -> requester resumed. */
    sim::Histogram remoteAccessLatency{100.0, 400};
};

/**
 * Attachable collection point: a thread_local pointer, LIFO
 * attach/detach like TraceSession. Each simulation is single-threaded,
 * but independent simulations may run on concurrent worker threads
 * (sys::SweepRunner), so every thread has its own active instance and
 * parallel runs never record into each other's histograms.
 */
class Metrics
{
  public:
    Metrics() = default;
    ~Metrics();

    Metrics(const Metrics &) = delete;
    Metrics &operator=(const Metrics &) = delete;

    LatencyHistograms latency;

    /** Attach/detach on the calling thread (LIFO, single-threaded). */
    void attach();
    void detach();

    /** The calling thread's collecting instance, or nullptr. */
    static Metrics *active() { return s_active; }

  private:
    Metrics *_prevActive = nullptr;
    bool _attached = false;

    static thread_local Metrics *s_active;
};

} // namespace griffin::obs

#endif // GRIFFIN_OBS_METRICS_HH
