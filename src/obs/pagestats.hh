/**
 * @file
 * Per-page lifecycle telemetry: a category-gated, zero-cost-when-off
 * recorder of every event that matters to a page's migration history.
 *
 * Griffin's whole argument is about *which pages move, when, and how
 * often* — DFTM exists to suppress migration ping-pong and shootdown
 * storms — so run-level aggregates alone cannot answer "which pages
 * thrashed?". The instrumented components (driver, DFTM, CPMS, the
 * Griffin policy, the PMCs, the ACUD executor and the page table's
 * commit point) record lifecycle events against a PageId through the
 * same null-checked static pointer pattern the trace/metrics sinks
 * use; from the raw ledger the recorder derives per-page migration
 * counts, churn/ping-pong detection, inter-migration reuse distances,
 * residency timelines and top-N hot/thrashing page tables.
 *
 * Churn definition: a MigrationCommit is a *churn event* when it
 * returns the page to a device the page previously resided on, within
 * `churnWindow` ticks of the moment the page last *left* that device.
 * A page with at least one churn event is a *churn page*. With an
 * infinite window this is exactly "the page ping-ponged"; the window
 * keeps legitimate long-term rebalancing (a page coming home a whole
 * phase later) out of the thrash count.
 *
 * Cost model: nothing is recorded when no sink is attached on the
 * calling thread — every instrumentation site is a single pointer
 * null-check, so standalone component tests and `--page-stats`-off
 * bench runs pay nothing and their outputs stay bit-identical. When
 * on, each event is O(1) amortized (one hash-map lookup plus counter
 * bumps; a commit additionally scans the page's tiny device-history
 * list). Like Metrics/FaultSpans, the sink is a LIFO-attached
 * thread_local pointer, so concurrent sweep runs (sys::SweepRunner)
 * each record into their own instance and `--jobs=N` output merges
 * deterministically.
 */

#ifndef GRIFFIN_OBS_PAGESTATS_HH
#define GRIFFIN_OBS_PAGESTATS_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace griffin::sim {
class Engine;
} // namespace griffin::sim

namespace griffin::obs {

/**
 * The page-lifecycle event taxonomy. `from`/`to` carry the devices
 * involved where meaningful (invalidDeviceId otherwise):
 *
 *  - FirstTouch:        a GPU touched a CPU-resident page for the
 *                       first time (to = the touching GPU);
 *  - DftmDenial:        DFTM denied that first touch and opened a
 *                       denial lease (the page serves via DCA);
 *  - MigrationStart:    a PMC accepted the page for transfer
 *                       (from = source device, to = destination);
 *  - MigrationCommit:   the page table moved the page (the single
 *                       commit point, mem::PageTable::setLocation);
 *  - MigrationAbort:    a recovery timeout gave up on an in-flight
 *                       migration; the page stays at `from`;
 *  - MigrationDeferred: the DPC selected the page but CPMS's
 *                       per-phase caps pushed it to a later phase;
 *  - DcaFallback:       the page was degraded to DCA-forever after a
 *                       driver-side migration timeout;
 *  - Shootdown:         the page's translation was shot down
 *                       (from = the device flushing its TLBs);
 *  - Recovery:          a chaos-triggered recovery action touched the
 *                       page (DMA retry/abandon, timeout cleanup).
 */
enum class PageEvent : unsigned
{
    FirstTouch = 0,
    DftmDenial,
    MigrationStart,
    MigrationCommit,
    MigrationAbort,
    MigrationDeferred,
    DcaFallback,
    Shootdown,
    Recovery,
};

inline constexpr unsigned numPageEvents = 9;

/** Snake-case event name used in reports ("first_touch", ...). */
const char *pageEventName(PageEvent event);

/** Knobs for the recorder (SystemConfig::pageStats). */
struct PageStatsConfig
{
    /** Master switch: off = no sink is built, nothing is recorded. */
    bool enabled = false;

    /**
     * A commit that returns a page to a prior device counts as churn
     * only when it lands within this many ticks of the page leaving
     * that device.
     */
    Tick churnWindow = 1000000;

    /** Rows kept in the hot/thrashing page tables of the report. */
    unsigned topN = 16;
};

/** One hop of a page's residency timeline. */
struct ResidencyHop
{
    Tick at;
    DeviceId device;

    bool
    operator==(const ResidencyHop &o) const
    {
        return at == o.at && device == o.device;
    }
};

/**
 * The copyable end-of-run digest RunResult carries out of the system
 * and the JSON report serializes as "page_stats". Per-page detail is
 * capped at the configured top-N so reports stay bounded regardless
 * of working-set size.
 */
struct PageStatsSummary
{
    bool enabled = false;
    Tick churnWindow = 0;
    unsigned topN = 0;

    /** Run-wide event totals, indexed by PageEvent. */
    std::array<std::uint64_t, numPageEvents> events{};

    std::uint64_t pagesTracked = 0;  ///< pages with >= 1 event
    std::uint64_t pagesMigrated = 0; ///< pages with >= 1 commit
    std::uint64_t totalMigrations = 0;
    std::uint64_t churnEvents = 0;
    std::uint64_t churnPages = 0;
    std::uint64_t maxMigrationsOnePage = 0;

    /** Ticks between consecutive commits of the same page. */
    sim::Histogram reuseDistance{5000.0, 400};

    /** One row of the hot/thrashing tables. */
    struct TopPage
    {
        PageId page = 0;
        std::uint64_t migrations = 0;
        std::uint64_t churn = 0;
        std::uint64_t denials = 0;
        DeviceId lastLocation = invalidDeviceId;
        /** Residency timeline (capped; see residencyCap). */
        std::vector<ResidencyHop> residency;
    };

    /** Most-migrated pages, count-desc then page-asc. */
    std::vector<TopPage> hotPages;
    /** Pages with churn > 0, churn-desc then page-asc. */
    std::vector<TopPage> thrashingPages;

    /** Residency hops kept per top page in the summary. */
    static constexpr std::size_t residencyCap = 64;
};

/**
 * The attachable recorder. Owned by MultiGpuSystem (built only when
 * PageStatsConfig::enabled), attached for the duration of run().
 */
class PageStats
{
  public:
    explicit PageStats(PageStatsConfig config = {});
    ~PageStats();

    PageStats(const PageStats &) = delete;
    PageStats &operator=(const PageStats &) = delete;

    /** Attach/detach on the calling thread (LIFO, single-threaded). */
    void attach();
    void detach();

    /** The calling thread's recording instance, or nullptr. */
    static PageStats *active() { return s_active; }

    /**
     * Clock for instrumentation sites that have no engine of their
     * own (the page table's commit point). Set by the owning system
     * at attach time; recordNow() reads 0 when unset.
     */
    void setClock(const sim::Engine *engine) { _clock = engine; }

    /** Record one event at @p at. */
    void record(PageEvent event, PageId page, DeviceId from, DeviceId to,
                Tick at);

    /** record() stamped with the attached clock's current tick. */
    void recordNow(PageEvent event, PageId page, DeviceId from,
                   DeviceId to);

    /** @name Static guards for instrumentation sites @{ */

    static void
    recordActive(PageEvent event, PageId page, DeviceId from,
                 DeviceId to, Tick at)
    {
        if (s_active)
            s_active->record(event, page, from, to, at);
    }

    static void
    recordActiveNow(PageEvent event, PageId page, DeviceId from,
                    DeviceId to)
    {
        if (s_active)
            s_active->recordNow(event, page, from, to);
    }

    /** @} */

    /** @name Inspection (reports, tests) @{ */

    const PageStatsConfig &config() const { return _config; }

    std::uint64_t eventCount(PageEvent event) const
    {
        return _events[unsigned(event)];
    }

    std::uint64_t churnEvents() const { return _churnEvents; }
    std::uint64_t pagesTracked() const { return _pages.size(); }

    /** Migration commits recorded for @p page. */
    std::uint64_t migrationsOf(PageId page) const;

    /** Churn events recorded for @p page. */
    std::uint64_t churnOf(PageId page) const;

    /** Build the copyable end-of-run digest (deterministic order). */
    PageStatsSummary summary() const;

    /** @} */

  private:
    struct PageRec
    {
        std::array<std::uint32_t, numPageEvents> events{};
        std::uint64_t migrations = 0;
        std::uint64_t churn = 0;
        Tick firstSeen = 0;
        Tick lastCommit = 0;
        bool committed = false;
        DeviceId location = invalidDeviceId;
        /** Residency timeline, seeded with the pre-first-commit home. */
        std::vector<ResidencyHop> residency;
        /** When the page last left each device (tiny: <= numDevices). */
        std::vector<std::pair<DeviceId, Tick>> lastLeft;
    };

    PageRec &pageOf(PageId page, Tick at);
    void onCommit(PageRec &rec, PageId page, DeviceId from, DeviceId to,
                  Tick at);

    PageStatsConfig _config;
    const sim::Engine *_clock = nullptr;

    std::unordered_map<PageId, PageRec> _pages;
    std::array<std::uint64_t, numPageEvents> _events{};
    std::uint64_t _churnEvents = 0;
    sim::Histogram _reuseDistance{5000.0, 400};

    PageStats *_prevActive = nullptr;
    bool _attached = false;

    static thread_local PageStats *s_active;
};

} // namespace griffin::obs

#endif // GRIFFIN_OBS_PAGESTATS_HH
