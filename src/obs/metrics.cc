#include "src/obs/metrics.hh"

namespace griffin::obs {

thread_local Metrics *Metrics::s_active = nullptr;

Metrics::~Metrics()
{
    if (_attached)
        detach();
}

void
Metrics::attach()
{
    if (_attached)
        return;
    _prevActive = s_active;
    s_active = this;
    _attached = true;
}

void
Metrics::detach()
{
    if (!_attached)
        return;
    if (s_active == this)
        s_active = _prevActive;
    _attached = false;
    _prevActive = nullptr;
}

} // namespace griffin::obs
