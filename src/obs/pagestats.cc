#include "src/obs/pagestats.hh"

#include "src/obs/hostprof.hh"

#include <algorithm>
#include <cassert>

#include "src/sim/engine.hh"

namespace griffin::obs {

thread_local PageStats *PageStats::s_active = nullptr;

const char *
pageEventName(PageEvent event)
{
    switch (event) {
      case PageEvent::FirstTouch:
        return "first_touch";
      case PageEvent::DftmDenial:
        return "dftm_denial";
      case PageEvent::MigrationStart:
        return "migration_start";
      case PageEvent::MigrationCommit:
        return "migration_commit";
      case PageEvent::MigrationAbort:
        return "migration_abort";
      case PageEvent::MigrationDeferred:
        return "migration_deferred";
      case PageEvent::DcaFallback:
        return "dca_fallback";
      case PageEvent::Shootdown:
        return "shootdown";
      case PageEvent::Recovery:
        return "recovery";
    }
    return "unknown";
}

PageStats::PageStats(PageStatsConfig config) : _config(config) {}

PageStats::~PageStats()
{
    // A still-attached sink at destruction would leave a dangling
    // pointer in the thread_local chain.
    assert(!_attached);
}

void
PageStats::attach()
{
    assert(!_attached);
    _attached = true;
    _prevActive = s_active;
    s_active = this;
}

void
PageStats::detach()
{
    assert(_attached);
    assert(s_active == this && "detach out of LIFO order");
    s_active = _prevActive;
    _prevActive = nullptr;
    _attached = false;
}

PageStats::PageRec &
PageStats::pageOf(PageId page, Tick at)
{
    auto [it, inserted] = _pages.try_emplace(page);
    if (inserted)
        it->second.firstSeen = at;
    return it->second;
}

void
PageStats::record(PageEvent event, PageId page, DeviceId from,
                  DeviceId to, Tick at)
{
    GHPROF_SCOPE("obs", "pagestats");
    ++_events[unsigned(event)];
    PageRec &rec = pageOf(page, at);
    ++rec.events[unsigned(event)];
    if (event == PageEvent::MigrationCommit)
        onCommit(rec, page, from, to, at);
}

void
PageStats::recordNow(PageEvent event, PageId page, DeviceId from,
                     DeviceId to)
{
    record(event, page, from, to, _clock ? _clock->now() : 0);
}

void
PageStats::onCommit(PageRec &rec, PageId page, DeviceId from,
                    DeviceId to, Tick at)
{
    (void)page;
    ++rec.migrations;

    // Residency timeline: seed with the pre-commit home so the first
    // hop pair reads "left `from` for `to` at `at`".
    if (rec.residency.empty())
        rec.residency.push_back(ResidencyHop{rec.firstSeen, from});
    rec.residency.push_back(ResidencyHop{at, to});
    rec.location = to;

    // Churn: the page returns to a device it previously left, within
    // the window of that departure.
    for (const auto &[dev, left_at] : rec.lastLeft) {
        if (dev == to && at >= left_at &&
            at - left_at <= _config.churnWindow) {
            ++rec.churn;
            ++_churnEvents;
            break;
        }
    }
    // The page just left `from`; remember when for future returns.
    bool found = false;
    for (auto &[dev, left_at] : rec.lastLeft) {
        if (dev == from) {
            left_at = at;
            found = true;
            break;
        }
    }
    if (!found)
        rec.lastLeft.emplace_back(from, at);

    // Inter-migration reuse distance.
    if (rec.committed && at >= rec.lastCommit)
        _reuseDistance.sample(double(at - rec.lastCommit));
    rec.committed = true;
    rec.lastCommit = at;
}

std::uint64_t
PageStats::migrationsOf(PageId page) const
{
    const auto it = _pages.find(page);
    return it == _pages.end() ? 0 : it->second.migrations;
}

std::uint64_t
PageStats::churnOf(PageId page) const
{
    const auto it = _pages.find(page);
    return it == _pages.end() ? 0 : it->second.churn;
}

PageStatsSummary
PageStats::summary() const
{
    PageStatsSummary s;
    s.enabled = true;
    s.churnWindow = _config.churnWindow;
    s.topN = _config.topN;
    s.events = _events;
    s.pagesTracked = _pages.size();
    s.churnEvents = _churnEvents;
    s.reuseDistance = _reuseDistance;

    for (const auto &[page, rec] : _pages) {
        (void)page;
        if (rec.migrations > 0)
            ++s.pagesMigrated;
        if (rec.churn > 0)
            ++s.churnPages;
        s.totalMigrations += rec.migrations;
        s.maxMigrationsOnePage =
            std::max(s.maxMigrationsOnePage, rec.migrations);
    }

    // The top tables: sort page ids (not unordered_map order) so the
    // summary is deterministic for a deterministic run regardless of
    // hash seeding or --jobs.
    std::vector<PageId> ids;
    ids.reserve(_pages.size());
    for (const auto &[page, rec] : _pages) {
        if (rec.migrations > 0)
            ids.push_back(page);
    }

    const auto makeRow = [this](PageId page) {
        const PageRec &rec = _pages.at(page);
        PageStatsSummary::TopPage row;
        row.page = page;
        row.migrations = rec.migrations;
        row.churn = rec.churn;
        row.denials = rec.events[unsigned(PageEvent::DftmDenial)];
        row.lastLocation = rec.location;
        const std::size_t n = std::min(rec.residency.size(),
                                       PageStatsSummary::residencyCap);
        row.residency.assign(rec.residency.begin(),
                             rec.residency.begin() + n);
        return row;
    };

    std::sort(ids.begin(), ids.end(), [this](PageId a, PageId b) {
        const auto ma = _pages.at(a).migrations;
        const auto mb = _pages.at(b).migrations;
        if (ma != mb)
            return ma > mb;
        return a < b;
    });
    for (std::size_t i = 0; i < ids.size() && i < _config.topN; ++i)
        s.hotPages.push_back(makeRow(ids[i]));

    std::sort(ids.begin(), ids.end(), [this](PageId a, PageId b) {
        const auto ca = _pages.at(a).churn;
        const auto cb = _pages.at(b).churn;
        if (ca != cb)
            return ca > cb;
        return a < b;
    });
    for (std::size_t i = 0; i < ids.size() && i < _config.topN; ++i) {
        if (_pages.at(ids[i]).churn == 0)
            break;
        s.thrashingPages.push_back(makeRow(ids[i]));
    }

    return s;
}

} // namespace griffin::obs
