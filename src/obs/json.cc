#include "src/obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace griffin::obs::json {

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Emit a number the way JSON expects: integers without a fraction. */
std::string
numberToString(double n)
{
    if (std::isfinite(n) && n == std::floor(n) &&
        std::abs(n) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(n));
        return buf;
    }
    if (!std::isfinite(n))
        return "0"; // JSON has no inf/nan; clamp rather than corrupt
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    return buf;
}

} // namespace

Value
Value::array()
{
    Value v;
    v._kind = Kind::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v._kind = Kind::Object;
    return v;
}

Value &
Value::operator[](const std::string &key)
{
    if (_kind == Kind::Null)
        _kind = Kind::Object;
    for (auto &[k, v] : _members) {
        if (k == key)
            return v;
    }
    _members.emplace_back(key, Value());
    return _members.back().second;
}

const Value *
Value::find(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : _members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

void
Value::push(Value v)
{
    if (_kind == Kind::Null)
        _kind = Kind::Array;
    _elements.push_back(std::move(v));
}

std::size_t
Value::size() const
{
    return _kind == Kind::Array ? _elements.size() : _members.size();
}

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    // append() instead of "\n" + std::string(...) chains: GCC 12's
    // -Wrestrict false positive (PR105651) fires on the latter at -O2.
    std::string pad, padEnd;
    if (pretty) {
        pad += '\n';
        pad.append(std::size_t(indent) * (depth + 1), ' ');
        padEnd += '\n';
        padEnd.append(std::size_t(indent) * depth, ' ');
    }

    switch (_kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += _bool ? "true" : "false";
        break;
      case Kind::Number:
        out += numberToString(_number);
        break;
      case Kind::String:
        out += '"';
        out += escape(_string);
        out += '"';
        break;
      case Kind::Array:
        if (_elements.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < _elements.size(); ++i) {
            if (i)
                out += ',';
            out += pad;
            _elements[i].dumpTo(out, indent, depth + 1);
        }
        out += padEnd;
        out += ']';
        break;
      case Kind::Object:
        if (_members.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < _members.size(); ++i) {
            if (i)
                out += ',';
            out += pad;
            out += '"';
            out += escape(_members[i].first);
            out += "\":";
            if (pretty)
                out += ' ';
            _members[i].second.dumpTo(out, indent, depth + 1);
        }
        out += padEnd;
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

namespace {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    bool ok = true;

    explicit Parser(const std::string &t) : text(t) {}

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Value
    fail()
    {
        ok = false;
        return Value();
    }

    Value
    parseValue(int depth)
    {
        if (depth > 200)
            return fail();
        skipWs();
        if (pos >= text.size())
            return fail();
        const char c = text[pos];
        if (c == '{')
            return parseObject(depth);
        if (c == '[')
            return parseArray(depth);
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        return parseNumber();
    }

    Value
    parseObject(int depth)
    {
        Value obj = Value::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return obj;
        for (;;) {
            skipWs();
            const Value key = parseString();
            if (!ok || !consume(':'))
                return fail();
            obj[key.asString()] = parseValue(depth + 1);
            if (!ok)
                return fail();
            if (consume(','))
                continue;
            if (consume('}'))
                return obj;
            return fail();
        }
    }

    Value
    parseArray(int depth)
    {
        Value arr = Value::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return arr;
        for (;;) {
            arr.push(parseValue(depth + 1));
            if (!ok)
                return fail();
            if (consume(','))
                continue;
            if (consume(']'))
                return arr;
            return fail();
        }
    }

    Value
    parseString()
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail();
        ++pos;
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    return fail();
                const char esc = text[pos++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail();
                    const unsigned code = unsigned(
                        std::strtoul(text.substr(pos, 4).c_str(),
                                     nullptr, 16));
                    pos += 4;
                    // ASCII only; anything else degrades to '?'.
                    out += code < 0x80 ? char(code) : '?';
                    break;
                  }
                  default:
                    return fail();
                }
            } else {
                out += c;
            }
        }
        if (pos >= text.size())
            return fail();
        ++pos; // closing quote
        return Value(std::move(out));
    }

    Value
    parseBool()
    {
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            return Value(true);
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            return Value(false);
        }
        return fail();
    }

    Value
    parseNull()
    {
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            return Value();
        }
        return fail();
    }

    Value
    parseNumber()
    {
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        const double n = std::strtod(start, &end);
        if (end == start)
            return fail();
        pos += std::size_t(end - start);
        return Value(n);
    }
};

} // namespace

std::optional<Value>
Value::parse(const std::string &text)
{
    Parser p(text);
    Value v = p.parseValue(0);
    p.skipWs();
    if (!p.ok || p.pos != text.size())
        return std::nullopt;
    return v;
}

} // namespace griffin::obs::json
