#include "src/obs/sampler.hh"

#include "src/obs/hostprof.hh"

#include <cassert>
#include <cstdio>
#include <utility>

namespace griffin::obs {

Sampler::~Sampler()
{
    stop();
}

void
Sampler::add(std::string name, Probe probe)
{
    assert(!_engine && "register probes before start()");
    _columns.push_back(std::move(name));
    _probes.push_back(std::move(probe));
}

void
Sampler::start(sim::Engine &engine, Tick period)
{
    assert(period > 0);
    assert(!_engine && "sampler already started");
    _engine = &engine;
    _period = period;
    sampleNow(engine.now());
    _hookId = engine.addPeriodicHook(
        period, [this](Tick boundary) { sampleNow(boundary); });
}

void
Sampler::stop()
{
    if (!_engine)
        return;
    // Flush the final partial interval: without this, everything that
    // happened after the last period boundary would vanish from the
    // series. Strictly-greater keeps a boundary-coincident end from
    // duplicating the last row.
    if (!_rows.empty() && _engine->now() > _rows.back().tick)
        sampleNow(_engine->now());
    _engine->removePeriodicHook(_hookId);
    _engine = nullptr;
    _hookId = 0;
}

void
Sampler::sampleNow(Tick tick)
{
    GHPROF_SCOPE("obs", "sampler");
    Row row;
    row.tick = tick;
    row.values.reserve(_probes.size());
    for (const Probe &probe : _probes)
        row.values.push_back(probe());
    _rows.push_back(std::move(row));
}

std::string
Sampler::csv() const
{
    std::string out = "tick";
    for (const std::string &col : _columns) {
        out += ',';
        out += col;
    }
    out += '\n';
    char buf[40];
    for (const Row &row : _rows) {
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(row.tick));
        out += buf;
        for (const double v : row.values) {
            std::snprintf(buf, sizeof buf, ",%.6g", v);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

} // namespace griffin::obs
