#include "src/obs/span.hh"

#include <cassert>
#include <utility>

namespace griffin::obs {

thread_local FaultSpans *FaultSpans::s_active = nullptr;

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::WalkQueue: return "walk_queue";
      case Stage::Walk: return "walk";
      case Stage::Policy: return "policy";
      case Stage::BatchWait: return "batch_wait";
      case Stage::Shootdown: return "shootdown";
      case Stage::TransferQueue: return "transfer_queue";
      case Stage::Transfer: return "transfer";
      case Stage::Resume: return "resume";
    }
    return "unknown";
}

// ---------------------------------------------------------------------
// CriticalPath
// ---------------------------------------------------------------------

namespace {
/** Same bucketing as the fault-latency histogram (obs/metrics.hh). */
sim::Histogram
stageHistogramShape()
{
    return sim::Histogram{250.0, 400};
}
} // namespace

CriticalPath::CriticalPath() : _total(stageHistogramShape())
{
    _stageHist.reserve(numStages);
    for (unsigned s = 0; s < numStages; ++s)
        _stageHist.push_back(stageHistogramShape());
    _stageSum.assign(numStages, 0.0);
}

void
CriticalPath::addFault(const FaultRecord &record)
{
    assert(!record.marks.empty() && "cannot aggregate an open fault");
    ++_faults;
    Tick prev = record.origin;
    unsigned prev_stage = 0;
    for (const StageMark &mark : record.marks) {
        assert(mark.at >= prev && "stage marks must be monotone");
        assert((record.marks.front().stage == mark.stage ||
                unsigned(mark.stage) > prev_stage) &&
               "stage marks must follow the taxonomy order");
        prev_stage = unsigned(mark.stage);
        const double dur = double(mark.at - prev);
        _stageHist[unsigned(mark.stage)].sample(dur);
        _stageSum[unsigned(mark.stage)] += dur;
        prev = mark.at;
    }
    _total.sample(double(record.totalLatency()));
}

double
CriticalPath::share(Stage stage) const
{
    const double total = _total.sum();
    return total > 0.0 ? _stageSum[unsigned(stage)] / total : 0.0;
}

// ---------------------------------------------------------------------
// FaultSpans
// ---------------------------------------------------------------------

FaultSpans::~FaultSpans()
{
    if (_attached)
        detach();
}

void
FaultSpans::attach()
{
    if (_attached)
        return;
    _prevActive = s_active;
    s_active = this;
    _attached = true;
}

void
FaultSpans::detach()
{
    if (!_attached)
        return;
    if (s_active == this)
        s_active = _prevActive;
    _attached = false;
    _prevActive = nullptr;
}

FaultId
FaultSpans::beginFault(DeviceId gpu, PageId page, Tick origin)
{
    const FaultId fid = _nextId++;
    FaultRecord &rec = _open[fid];
    rec.id = fid;
    rec.gpu = gpu;
    rec.page = page;
    rec.origin = origin;
    rec.marks.reserve(numStages);
    return rec.id;
}

void
FaultSpans::mark(FaultId fid, Stage stage, Tick at)
{
    auto it = _open.find(fid);
    if (it == _open.end())
        return; // already completed, or never begun
    FaultRecord &rec = it->second;
    // Clamp forward: a boundary observed "before" the previous one
    // (e.g. a walk that started before this requester joined it)
    // contributes a zero-length stage instead of a negative one.
    const Tick floor = rec.marks.empty() ? rec.origin : rec.marks.back().at;
    if (at < floor)
        at = floor;
    assert((rec.marks.empty() ||
            unsigned(stage) > unsigned(rec.marks.back().stage)) &&
           "stages must be marked in taxonomy order, at most once");
    rec.marks.push_back(StageMark{stage, at});
}

void
FaultSpans::complete(FaultId fid, Tick at)
{
    auto it = _open.find(fid);
    if (it == _open.end())
        return;
    mark(fid, Stage::Resume, at);
    _criticalPath.addFault(it->second);
    _completed.push_back(std::move(it->second));
    _open.erase(it);
}

} // namespace griffin::obs
