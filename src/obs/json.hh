/**
 * @file
 * A minimal JSON document model: build, serialize, parse.
 *
 * The observability layer needs machine-readable output (run reports,
 * trace files) and the tests need to prove that output is well-formed
 * and round-trips. This is deliberately a tiny subset of JSON support:
 * objects preserve insertion order, numbers are doubles, and parsing
 * is strict (trailing garbage is an error).
 */

#ifndef GRIFFIN_OBS_JSON_HH
#define GRIFFIN_OBS_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace griffin::obs::json {

/** Escape @p s for inclusion inside a JSON string literal. */
std::string escape(const std::string &s);

/**
 * One JSON value of any kind. Objects keep their keys in insertion
 * order so serialized reports are stable and diffable.
 */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() : _kind(Kind::Null) {}
    Value(bool b) : _kind(Kind::Bool), _bool(b) {}
    Value(double n) : _kind(Kind::Number), _number(n) {}
    Value(int n) : _kind(Kind::Number), _number(n) {}
    Value(unsigned n) : _kind(Kind::Number), _number(n) {}
    Value(std::uint64_t n) : _kind(Kind::Number), _number(double(n)) {}
    Value(std::int64_t n) : _kind(Kind::Number), _number(double(n)) {}
    Value(const char *s) : _kind(Kind::String), _string(s) {}
    Value(std::string s) : _kind(Kind::String), _string(std::move(s)) {}

    /** An empty array / object (distinct from Null). */
    static Value array();
    static Value object();

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }

    /** @name Scalar access (wrong-kind access returns a default) @{ */
    bool asBool() const { return _kind == Kind::Bool && _bool; }
    double asNumber() const { return _kind == Kind::Number ? _number : 0.0; }
    const std::string &asString() const { return _string; }
    /** @} */

    /** @name Object interface @{ */

    /** Find or insert @p key (auto-converts Null to Object). */
    Value &operator[](const std::string &key);

    /** Lookup without insertion; nullptr if absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Value>> &members() const
    {
        return _members;
    }

    /** @} */

    /** @name Array interface @{ */

    /** Append an element (auto-converts Null to Array). */
    void push(Value v);

    std::size_t size() const;
    const Value &at(std::size_t i) const { return _elements[i]; }

    /** @} */

    /**
     * Serialize. @p indent < 0 emits a compact single line; >= 0
     * pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /**
     * Strict parse of a complete document.
     * @return the value, or nullopt on any syntax error (including
     *         trailing non-whitespace).
     */
    static std::optional<Value> parse(const std::string &text);

  private:
    Kind _kind;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<Value> _elements;
    std::vector<std::pair<std::string, Value>> _members;

    void dumpTo(std::string &out, int indent, int depth) const;
};

} // namespace griffin::obs::json

#endif // GRIFFIN_OBS_JSON_HH
