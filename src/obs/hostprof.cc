#include "src/obs/hostprof.hh"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

namespace griffin::obs {

thread_local HostProfiler *HostProfiler::s_active = nullptr;

namespace {

/**
 * The bucket a scope-less dispatch falls into. Module-level literals
 * so every record() call keys on the same pointers.
 */
const char *const kSimComponent = "sim";
const char *const kUnattributed = "unattributed";

std::uint64_t
nowMinus(std::chrono::steady_clock::time_point begin)
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin)
            .count());
}

} // namespace

double
HostProfile::eventsPerSec() const
{
    if (wallNs == 0 || events == 0)
        return 0.0;
    return double(events) * 1e9 / double(wallNs);
}

std::uint64_t
HostProfile::unattributedNs() const
{
    const Bucket *b = findBucket(kSimComponent, kUnattributed);
    return b ? b->selfNs : 0;
}

std::uint64_t
HostProfile::attributedNs() const
{
    const std::uint64_t un = unattributedNs();
    return un < dispatchNs ? dispatchNs - un : 0;
}

double
HostProfile::attributedFraction() const
{
    if (dispatchNs == 0)
        return 1.0;
    return double(attributedNs()) / double(dispatchNs);
}

std::uint64_t
HostProfile::obsNs() const
{
    std::uint64_t total = 0;
    for (const Bucket &b : buckets)
        if (b.component == "obs")
            total += b.selfNs;
    return total;
}

double
HostProfile::obsFraction() const
{
    if (dispatchNs == 0)
        return 0.0;
    return double(obsNs()) / double(dispatchNs);
}

const HostProfile::Bucket *
HostProfile::findBucket(const std::string &component,
                        const std::string &event) const
{
    for (const Bucket &b : buckets)
        if (b.component == component && b.event == event)
            return &b;
    return nullptr;
}

void
HostProfile::merge(const HostProfile &other)
{
    enabled = enabled || other.enabled;
    wallNs += other.wallNs;
    dispatchNs += other.dispatchNs;
    events += other.events;

    // Re-keying through an ordered map both merges duplicates and
    // restores the sorted invariant in one pass.
    std::map<std::pair<std::string, std::string>,
             std::pair<std::uint64_t, std::uint64_t>>
        merged;
    for (const Bucket &b : buckets) {
        auto &slot = merged[{b.component, b.event}];
        slot.first += b.count;
        slot.second += b.selfNs;
    }
    for (const Bucket &b : other.buckets) {
        auto &slot = merged[{b.component, b.event}];
        slot.first += b.count;
        slot.second += b.selfNs;
    }
    buckets.clear();
    buckets.reserve(merged.size());
    for (const auto &[key, val] : merged)
        buckets.push_back(Bucket{key.first, key.second, val.first,
                                 val.second});
}

std::string
HostProfile::folded() const
{
    std::ostringstream out;
    for (const Bucket &b : buckets)
        out << b.component << ';' << b.event << ' ' << b.selfNs << '\n';
    return out.str();
}

std::optional<HostProfile>
HostProfile::parseFolded(const std::string &text)
{
    HostProfile profile;
    profile.enabled = true;

    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        // "component;event selfNs" — the value follows the last space
        // so event names may themselves contain spaces.
        const auto space = line.find_last_of(' ');
        if (space == std::string::npos || space == 0 ||
            space + 1 >= line.size())
            return std::nullopt;
        const std::string stack = line.substr(0, space);
        const std::string value = line.substr(space + 1);

        const auto semi = stack.find(';');
        if (semi == std::string::npos || semi == 0 ||
            semi + 1 >= stack.size())
            return std::nullopt;

        std::uint64_t self_ns = 0;
        for (const char c : value) {
            if (c < '0' || c > '9')
                return std::nullopt;
            self_ns = self_ns * 10 + std::uint64_t(c - '0');
        }

        Bucket bucket;
        bucket.component = stack.substr(0, semi);
        bucket.event = stack.substr(semi + 1);
        bucket.selfNs = self_ns;
        profile.buckets.push_back(std::move(bucket));
        profile.dispatchNs += self_ns;
    }

    std::sort(profile.buckets.begin(), profile.buckets.end(),
              [](const Bucket &a, const Bucket &b) {
                  return a.component != b.component
                             ? a.component < b.component
                             : a.event < b.event;
              });
    return profile;
}

HostProfiler::HostProfiler() = default;

HostProfiler::~HostProfiler()
{
    // A still-attached profiler at destruction would leave a dangling
    // pointer in the thread_local chain.
    assert(!_attached);
}

void
HostProfiler::attach()
{
    assert(!_attached);
    _attached = true;
    _prevActive = s_active;
    s_active = this;
    _attachTime = std::chrono::steady_clock::now();
    _stopped = false;
    _wallNs = 0;
}

void
HostProfiler::detach()
{
    assert(_attached);
    assert(s_active == this && "detach out of LIFO order");
    stopTimer();
    s_active = _prevActive;
    _prevActive = nullptr;
    _attached = false;
}

void
HostProfiler::beginDispatch()
{
    _rootFrame = Frame{};
    _top = &_rootFrame;
    _dispatchBegin = std::chrono::steady_clock::now();
}

void
HostProfiler::endDispatch()
{
    const std::uint64_t ns = nowMinus(_dispatchBegin);
    const std::uint64_t child =
        _rootFrame.childNs < ns ? _rootFrame.childNs : ns;
    const std::uint64_t self = ns - child;
    if (_rootFrame.component) {
        // The bracket's own self time (std::function call, scope
        // setup) belongs to the first scope's component; count 0 so
        // bucket counts stay a pure function of the event sequence.
        record(_rootFrame.component, _rootFrame.event, self, 0);
    } else {
        // No scope opened: an uninstrumented event type. Count it so
        // the attribution fraction exposes the gap.
        record(kSimComponent, kUnattributed, self, 1);
    }
    _dispatchNs += ns;
    ++_events;
    _top = nullptr;
}

void
HostProfiler::stopTimer()
{
    if (_stopped)
        return;
    _wallNs = nowMinus(_attachTime);
    _stopped = true;
}

void
HostProfiler::record(const char *component, const char *event,
                     std::uint64_t self_ns, std::uint64_t count)
{
    Counts &slot = _buckets[{component, event}];
    slot.count += count;
    slot.selfNs += self_ns;
}

HostProfile
HostProfiler::profile() const
{
    HostProfile out;
    out.enabled = true;
    out.wallNs = _stopped ? _wallNs
               : _attached ? nowMinus(_attachTime)
                           : 0;
    out.dispatchNs = _dispatchNs;
    out.events = _events;

    // The raw map keys on literal pointers; distinct literals with
    // identical content (e.g. the same scope name in two translation
    // units) merge here, and the ordered map gives the deterministic
    // (component, event) order the report relies on.
    std::map<std::pair<std::string, std::string>,
             std::pair<std::uint64_t, std::uint64_t>>
        merged;
    for (const auto &[key, counts] : _buckets) {
        auto &slot = merged[{key.first, key.second}];
        slot.first += counts.count;
        slot.second += counts.selfNs;
    }
    out.buckets.reserve(merged.size());
    for (const auto &[key, val] : merged)
        out.buckets.push_back(HostProfile::Bucket{
            key.first, key.second, val.first, val.second});
    return out;
}

} // namespace griffin::obs
