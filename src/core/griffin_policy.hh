/**
 * @file
 * GriffinPolicy: the paper's complete hardware-software proposal
 * (SS III, Figure 6), assembled from its four mechanisms:
 *
 *  - DFTM answers the IOMMU's CPU-resident-access queries;
 *  - every T_ac cycles the driver collects the Shader Engine access
 *    counters from each GPU over the fabric and feeds them to the
 *    DPC in the IOMMU;
 *  - the DPC classifies pages and emits migration candidates;
 *  - CPMS batches candidates per source GPU;
 *  - the MigrationExecutor drains each source (ACUD or flush) and
 *    streams the pages.
 *
 * Each mechanism can be disabled independently for the ablation
 * benches.
 */

#ifndef GRIFFIN_CORE_GRIFFIN_POLICY_HH
#define GRIFFIN_CORE_GRIFFIN_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/acud.hh"
#include "src/core/cpms.hh"
#include "src/core/dftm.hh"
#include "src/core/dpc.hh"
#include "src/core/griffin_config.hh"
#include "src/core/migration_policy.hh"
#include "src/gpu/gpu.hh"
#include "src/gpu/pmc.hh"
#include "src/interconnect/switch.hh"
#include "src/mem/page_table.hh"
#include "src/sim/engine.hh"
#include "src/xlat/iommu.hh"

namespace griffin::core {

/**
 * The full Griffin policy.
 */
class GriffinPolicy : public MigrationPolicy
{
  public:
    /**
     * Probe invoked at the end of every DPC period for each tracked
     * page: (time, page, per-GPU filtered counts, current location).
     * Used by the Figure 10 bench; keep it cheap or narrow.
     */
    using PeriodProbe =
        std::function<void(Tick, PageId, const std::vector<double> &,
                           DeviceId)>;

    GriffinPolicy(sim::Engine &engine, ic::Network &network,
                  mem::PageTable &pt, xlat::Iommu &iommu,
                  std::vector<gpu::Gpu *> gpus,
                  std::vector<gpu::Pmc *> pmcs,
                  const GriffinConfig &config);

    std::string name() const override { return "griffin"; }

    CpuAccessDecision onCpuResidentAccess(DeviceId requester, PageId page,
                                          mem::PageTable &pt) override;

    void onSystemStart() override;
    void onSystemStop() override;

    /** Narrow the period probe to specific pages (empty = all). */
    void setPeriodProbe(PeriodProbe probe,
                        std::vector<PageId> only_pages = {});

    /** CPU-side DCA access observation (feeds the DFTM lease). */
    void
    noteCpuDcaAccess(PageId page)
    {
        _dftm.noteCpuAccess(page, _engine.now());
    }

    const Dftm &dftm() const { return _dftm; }
    const Dpc &dpc() const { return _dpc; }
    const Cpms &cpms() const { return _cpms; }
    const MigrationExecutor &executor() const { return _executor; }
    MigrationExecutor &executor() { return _executor; }

    /** @name Statistics @{ */
    std::uint64_t periodsRun = 0;
    std::uint64_t migrationPhasesSkipped = 0; ///< previous still running
    /** @} */

  private:
    sim::Engine &_engine;
    ic::Network &_network;
    mem::PageTable &_pageTable;
    xlat::Iommu &_iommu;
    std::vector<gpu::Gpu *> _gpus;
    GriffinConfig _config;

    Dftm _dftm;
    Dpc _dpc;
    Cpms _cpms;
    MigrationExecutor _executor;

    bool _running = false;
    bool _migrationInFlight = false;

    PeriodProbe _probe;
    std::vector<PageId> _probePages;

    void schedulePeriod();
    void runPeriod();
    void onCountsCollected();
};

} // namespace griffin::core

#endif // GRIFFIN_CORE_GRIFFIN_POLICY_HH
