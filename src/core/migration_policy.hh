/**
 * @file
 * The policy interface separating the IOMMU mechanism from the page
 * placement strategy.
 *
 * The IOMMU calls into the installed policy whenever a page walk
 * resolves to a CPU-resident page; the policy answers "migrate it to
 * the requester" (demand paging) or "serve it remotely" (DCA). The
 * baseline first-touch policy and Griffin's DFTM are both expressed
 * through this one decision point.
 */

#ifndef GRIFFIN_CORE_MIGRATION_POLICY_HH
#define GRIFFIN_CORE_MIGRATION_POLICY_HH

#include <string>

#include "src/sim/types.hh"

namespace griffin::mem {
class PageTable;
} // namespace griffin::mem

namespace griffin::core {

/** Outcome of a CPU-resident page access. */
struct CpuAccessDecision
{
    /** True: fault + migrate the page to the requesting GPU. */
    bool migrate = true;
};

/**
 * Abstract page-migration policy.
 */
class MigrationPolicy
{
  public:
    virtual ~MigrationPolicy() = default;

    /** Short policy name for reports ("first-touch", "griffin"). */
    virtual std::string name() const = 0;

    /**
     * A GPU accessed a CPU-resident page (walk completed, page not
     * under migration). Decide between demand paging and DCA.
     *
     * @param requester the GPU issuing the access.
     * @param page      the virtual page.
     * @param pt        the global page table (the policy may update
     *                  per-page policy bits such as DFTM's touched
     *                  bit).
     */
    virtual CpuAccessDecision onCpuResidentAccess(DeviceId requester,
                                                  PageId page,
                                                  mem::PageTable &pt) = 0;

    /**
     * The workload is starting; policies with periodic machinery
     * (Griffin) install their timers here.
     */
    virtual void onSystemStart() {}

    /** The workload finished; stop periodic machinery. */
    virtual void onSystemStop() {}
};

} // namespace griffin::core

#endif // GRIFFIN_CORE_MIGRATION_POLICY_HH
