/**
 * @file
 * Delayed First-Touch Migration (paper SS III-A).
 *
 * On a GPU's first touch of a CPU-resident page, the migration is
 * *denied* if the requesting GPU currently holds the highest share of
 * GPU-resident pages; the access is served from CPU memory via DCA
 * and the page's "accessed once" bit is set. Any later GPU touch of
 * the page migrates it. This balances page occupancy across GPUs and
 * spares single-touch pages the cost of a migration entirely.
 */

#ifndef GRIFFIN_CORE_DFTM_HH
#define GRIFFIN_CORE_DFTM_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/core/migration_policy.hh"
#include "src/sim/types.hh"

namespace griffin::core {

/**
 * The DFTM decision engine.
 */
class Dftm
{
  public:
    /**
     * @param gap_cycles lease expires when no CPU DCA access touched
     *        the page for this long (the sweep ended).
     * @param cap_cycles hard ceiling on lease lifetime, so long-lived
     *        hot pages still leave the CPU link eventually.
     */
    explicit Dftm(Tick gap_cycles = 16000, Tick cap_cycles = 64000)
        : _gapCycles(gap_cycles), _capCycles(cap_cycles)
    {}

    /**
     * Decide the fate of an access by @p requester to CPU-resident
     * @p page at time @p now. Mutates the page's touched bit and the
     * denial lease.
     */
    CpuAccessDecision decide(DeviceId requester, PageId page,
                             mem::PageTable &pt, Tick now);

    /**
     * The CPU-side memory complex observed a DCA access to @p page;
     * renews the page's denial lease if one is active. (Hardware: a
     * last-access timestamp table next to the CPU memory controller,
     * read by the driver each period.)
     */
    void noteCpuAccess(PageId page, Tick now);

    /**
     * Expire leases whose stream went quiet (gap) or whose lifetime
     * hit the cap; @p purge is called for each expired page (the
     * policy uses it to drop the page's IOTLB entry so the next touch
     * reaches the policy again).
     */
    void expireLeases(Tick now, const std::function<void(PageId)> &purge);

    /** Active lease count (tests). */
    std::size_t activeLeases() const { return _lease.size(); }

    /** @name Statistics @{ */
    std::uint64_t firstTouchDenials = 0;
    std::uint64_t firstTouchMigrations = 0;  ///< requester not highest
    std::uint64_t secondTouchMigrations = 0; ///< touched, lease lapsed
    std::uint64_t leaseRenewals = 0;         ///< sweep still streaming
    /** @} */

  private:
    struct Lease
    {
        Tick start;
        Tick lastAccess;
    };

    Tick _gapCycles;
    Tick _capCycles;
    std::unordered_map<PageId, Lease> _lease;
};

} // namespace griffin::core

#endif // GRIFFIN_CORE_DFTM_HH
