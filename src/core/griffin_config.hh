/**
 * @file
 * Griffin's hyperparameters. Defaults reproduce paper Table I.
 */

#ifndef GRIFFIN_CORE_GRIFFIN_CONFIG_HH
#define GRIFFIN_CORE_GRIFFIN_CONFIG_HH

#include "src/sim/types.hh"

namespace griffin::core {

/**
 * Tunables of the four Griffin mechanisms (paper Table I), plus the
 * engineering knobs the paper describes qualitatively (CPMS limits on
 * pages/GPUs per migration phase, SS III-B).
 */
struct GriffinConfig
{
    /** @name Paper Table I @{ */

    /** N_PTW: page walks to wait for before triggering migration. */
    unsigned nPtw = 8;
    /** T_ac: cycles between access-count collections. */
    Tick tAc = 1000;
    /** alpha: EWMA forgetting rate of the access-count filter. */
    double alpha = 0.03;
    /** lambda_d: min 1st/2nd count ratio for Mostly Dedicated. */
    double lambdaD = 2.0;
    /** lambda_s: max 1st/2nd count ratio for Shared. */
    double lambdaS = 1.3;
    /** lambda_t: max accesses/cycle for Streaming. */
    double lambdaT = 0.03;

    /** @} */

    /** @name CPMS engineering limits (paper SS III-B) @{ */

    /** Pages migrated per migration phase, across all sources. */
    unsigned maxPagesPerPeriod = 96;
    /**
     * Collection periods between migration phases ("the configured
     * time between migrations", SS III-B): counts are gathered every
     * T_ac, but GPUs are drained at this coarser cadence.
     */
    unsigned migrationInterval = 12;
    /** Source GPUs drained per migration phase. */
    unsigned maxSourceGpusPerPeriod = 4;
    /** Max cycles the driver holds a CPU-fault batch open. */
    Tick faultBatchWindow = 2000;

    /** @} */

    /** @name Component toggles (ablation studies) @{ */

    /** Delayed First-Touch Migration (SS III-A). */
    bool enableDftm = true;
    /**
     * DFTM denial lease: after a denied first touch the page streams
     * from CPU memory via DCA. The lease expires when the stream goes
     * quiet for dftmLeaseGap cycles — a single-sweep page (e.g.
     * Matrix Transpose input) then simply never migrates, the paper's
     * "pages that are not used more than once are not migrated from
     * the CPU". Pages that stay continuously hot are capped at
     * dftmLeaseCap so they leave the shared CPU link eventually; the
     * first touch after expiry is the migrating "second touch".
     */
    Tick dftmLeaseGap = 2000;
    Tick dftmLeaseCap = 6000;
    /** Periodic DPC classification + inter-GPU migration (SS III-C). */
    bool enableInterGpuMigration = true;
    /** ACUD drain; false falls back to full pipeline flush (Fig 11). */
    bool useAcud = true;

    /**
     * Paper SS VII future work: predictive inter-GPU migration. When
     * enabled, the DPC extrapolates rising per-GPU trends and
     * migrates an owner-shifting page as soon as the riser is
     * *projected* to overtake the owner, instead of waiting for the
     * crossover to be observed (reactive behaviour, Figure 10's lag).
     */
    bool enablePredictiveMigration = false;
    /** Periods of look-ahead for the trend extrapolation. */
    double predictiveLookahead = 3.0;

    /** @} */
};

} // namespace griffin::core

#endif // GRIFFIN_CORE_GRIFFIN_CONFIG_HH
