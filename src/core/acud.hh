/**
 * @file
 * The inter-GPU migration protocol, built around Asynchronous Compute
 * Unit Draining (paper SS III-D, Figure 7):
 *
 *   1. block the pages at the IOMMU (new translations park);
 *   2. send the drain command to the source GPU over the fabric;
 *   3. ACUD: pause issue, wait only for in-flight transactions that
 *      target the migrating pages — or, in the conventional mode the
 *      paper compares against (Figure 11), flush the whole pipeline;
 *   4. selective TLB shootdown + selective L2 flush of those pages;
 *   5. "Continue": CUs resume BEFORE the data moves;
 *   6. PMC streams the pages to their destinations;
 *   7. page table updates, parked translations replay.
 */

#ifndef GRIFFIN_CORE_ACUD_HH
#define GRIFFIN_CORE_ACUD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/cpms.hh"
#include "src/gpu/gpu.hh"
#include "src/gpu/pmc.hh"
#include "src/interconnect/switch.hh"
#include "src/mem/page_table.hh"
#include "src/sim/engine.hh"
#include "src/xlat/iommu.hh"

namespace griffin::sys {
class FaultInjector;
} // namespace griffin::sys

namespace griffin::core {

/**
 * Executes migration batches against source GPUs.
 */
class MigrationExecutor
{
  public:
    /**
     * @param engine  event engine.
     * @param network inter-device fabric (command/ack messages).
     * @param pt      global page table.
     * @param iommu   for page blocking and completion replay.
     * @param gpus    GPUs indexed by device id - 1.
     * @param pmcs    per-device PMCs indexed by device id.
     * @param use_acud true: ACUD drain; false: full pipeline flush.
     */
    MigrationExecutor(sim::Engine &engine, ic::Network &network,
                      mem::PageTable &pt, xlat::Iommu &iommu,
                      std::vector<gpu::Gpu *> gpus,
                      std::vector<gpu::Pmc *> pmcs, bool use_acud);

    /**
     * Run one batch; @p done fires when every page has landed and the
     * driver has been notified.
     */
    void executeBatch(const MigrationBatch &batch, sim::EventFn done);

    /**
     * Attach a fault injector (nullptr detaches). When set, shootdown
     * ACKs may be lost (the executor re-issues after a timeout) and a
     * per-batch migration timeout aborts transfers that never land.
     */
    void setFaultInjector(sys::FaultInjector *injector)
    {
        _injector = injector;
    }

    /** @name Statistics @{ */
    std::uint64_t batchesExecuted = 0;
    std::uint64_t pagesMigrated = 0;
    std::uint64_t migrationsByClass[5] = {0, 0, 0, 0, 0};
    std::uint64_t shootdownsReissued = 0; ///< lost-ACK recoveries
    std::uint64_t batchesAborted = 0;     ///< batch timeout fired
    std::uint64_t lateTransferCompletions = 0; ///< landed after abort
    /** @} */

  private:
    sim::Engine &_engine;
    ic::Network &_network;
    mem::PageTable &_pageTable;
    xlat::Iommu &_iommu;
    std::vector<gpu::Gpu *> _gpus;
    std::vector<gpu::Pmc *> _pmcs;
    bool _useAcud;
    sys::FaultInjector *_injector = nullptr;

    /**
     * Shared state of one batch's transfer phase: the moves, the
     * landed/remaining accounting that the per-page completions and
     * the batch timeout arbitrate over (exactly one side sends the
     * drain reply), and the driver's completion callback. One heap
     * object per batch; every continuation captures the shared_ptr.
     */
    struct BatchState;

    gpu::Gpu *gpuOf(DeviceId dev) { return _gpus[dev - 1]; }
    void transferPhase(DeviceId source, std::shared_ptr<BatchState> state);
};

} // namespace griffin::core

#endif // GRIFFIN_CORE_ACUD_HH
