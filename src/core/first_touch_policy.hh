/**
 * @file
 * The baseline NUMA multi-GPU policy (paper SS IV, "Baseline NUMA
 * Multi-GPU System"): on a GPU's first touch the page migrates from
 * the CPU to that GPU and is pinned there; all later remote accesses
 * use DCA. Inter-GPU migration never happens.
 */

#ifndef GRIFFIN_CORE_FIRST_TOUCH_POLICY_HH
#define GRIFFIN_CORE_FIRST_TOUCH_POLICY_HH

#include <cstdint>

#include "src/core/migration_policy.hh"

namespace griffin::core {

/**
 * First-touch demand paging with pinning.
 */
class FirstTouchPolicy : public MigrationPolicy
{
  public:
    std::string name() const override { return "first-touch"; }

    CpuAccessDecision onCpuResidentAccess(DeviceId requester, PageId page,
                                          mem::PageTable &pt) override;

    /** Migrations triggered (== faults raised by this policy). */
    std::uint64_t firstTouchMigrations = 0;
};

} // namespace griffin::core

#endif // GRIFFIN_CORE_FIRST_TOUCH_POLICY_HH
