#include "src/core/dpc.hh"

#include <algorithm>
#include <cassert>

#include "src/obs/trace.hh"
#include "src/sim/engine.hh"

namespace griffin::core {

namespace {

/** Counts below this are treated as silence for trend detection. */
constexpr double trendEps = 0.5;
/** Pages whose every filtered count falls below this are dropped. */
constexpr double gcThreshold = 0.01;

} // namespace

const char *
pageClassName(PageClass cls)
{
    switch (cls) {
      case PageClass::MostlyDedicated: return "mostly-dedicated";
      case PageClass::Shared:          return "shared";
      case PageClass::Streaming:       return "streaming";
      case PageClass::OwnerShifting:   return "owner-shifting";
      case PageClass::OutOfInterest:   return "out-of-interest";
    }
    return "?";
}

Dpc::Dpc(unsigned num_gpus, const GriffinConfig &config,
         const sim::Engine *clock)
    : _numGpus(num_gpus), _config(config), _clock(clock)
{
    assert(num_gpus >= 2 && "classification needs at least two GPUs");
}

void
Dpc::addCounts(DeviceId gpu, const std::vector<gpu::PageCount> &counts)
{
    const unsigned g = gpuIndex(gpu);
    assert(g < _numGpus);
    for (const auto &pc : counts) {
        auto [it, inserted] = _pages.try_emplace(pc.page);
        PageState &st = it->second;
        if (inserted) {
            st.filtered.assign(_numGpus, 0.0);
            st.previous.assign(_numGpus, 0.0);
            st.pending.assign(_numGpus, 0);
        }
        st.pending[g] += pc.count;
    }
}

std::vector<MigrationCandidate>
Dpc::endPeriod(const mem::PageTable &pt)
{
    ++periods;
    std::vector<MigrationCandidate> candidates;

    for (auto it = _pages.begin(); it != _pages.end();) {
        PageState &st = it->second;

        // EWMA update; unreported GPUs contribute N = 0 and decay.
        bool any_alive = false;
        for (unsigned g = 0; g < _numGpus; ++g) {
            st.previous[g] = st.filtered[g];
            st.filtered[g] = (1.0 - _config.alpha) * st.filtered[g] +
                             _config.alpha * double(st.pending[g]);
            st.pending[g] = 0;
            any_alive = any_alive || st.filtered[g] >= gcThreshold;
        }
        if (!any_alive) {
            it = _pages.erase(it);
            continue;
        }

        const PageId page = it->first;
        const mem::PageInfo &pi = pt.info(page);

        // Only GPU-resident, stable pages are inter-GPU candidates;
        // CPU-resident pages are DFTM's business.
        if (pi.location != cpuDeviceId && !pi.migrating &&
            !pi.migrationPending && !pi.pinned) {
            unsigned best_gpu = 0;
            const PageClass cls = classifyState(st, pi.location,
                                                &best_gpu);
            ++classCounts[std::size_t(cls)];

            if (int(cls) != st.lastClass) {
                if (_clock) {
                    if (auto *tr = obs::TraceSession::activeFor(
                            obs::CatPolicy)) {
                        tr->instant(obs::CatPolicy, "dpc",
                                    "class_change", _clock->now(),
                                    obs::TraceArgs()
                                        .add("page", page)
                                        .add("class",
                                             pageClassName(cls)));
                    }
                }
                st.lastClass = int(cls);
            }

            const DeviceId target = DeviceId(best_gpu + 1);
            const bool wants_move =
                (cls == PageClass::MostlyDedicated ||
                 cls == PageClass::Shared ||
                 cls == PageClass::OwnerShifting) &&
                target != pi.location;
            if (wants_move) {
                candidates.push_back(MigrationCandidate{
                    page, pi.location, target, cls,
                    st.filtered[best_gpu]});
            }
        }
        ++it;
    }

    std::sort(candidates.begin(), candidates.end(),
              [](const auto &a, const auto &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.page < b.page;
              });
    candidatesEmitted += candidates.size();
    return candidates;
}

PageClass
Dpc::classifyState(const PageState &st, DeviceId location,
                   unsigned *best_gpu) const
{
    // Rank the GPUs by filtered count.
    unsigned max_g = 0;
    double max_c = -1.0, second_c = 0.0;
    for (unsigned g = 0; g < _numGpus; ++g) {
        if (st.filtered[g] > max_c) {
            second_c = max_c;
            max_c = st.filtered[g];
            max_g = g;
        } else if (st.filtered[g] > second_c) {
            second_c = st.filtered[g];
        }
    }
    if (second_c < 0.0)
        second_c = 0.0;
    *best_gpu = max_g;

    const bool owner_is_gpu = location != cpuDeviceId;
    const unsigned owner_g = owner_is_gpu ? unsigned(location - 1) : 0;
    const double owner_c = owner_is_gpu ? st.filtered[owner_g] : 0.0;

    // Streaming: the rate stays below lambda_t accesses/cycle — not
    // enough locality to amortize a migration.
    if (max_c / double(_config.tAc) < _config.lambdaT)
        return PageClass::Streaming;

    // Mostly Dedicated: one GPU dominates by at least lambda_d.
    if (max_c >= _config.lambdaD * std::max(second_c, 1.0))
        return PageClass::MostlyDedicated;

    // Shared: flat distribution. Worth moving only off a cold owner.
    if (max_c <= _config.lambdaS * std::max(second_c, 1.0)) {
        if (owner_is_gpu && owner_c * _config.lambdaD < max_c)
            return PageClass::Shared; // cold owner: candidate
        // Warm owner: staying put; report it as shared but the caller
        // sees target == location for the hottest-on-owner case...
        if (owner_is_gpu && owner_g != max_g) {
            // Not worth the overhead: pretend best is the owner.
            *best_gpu = owner_g;
        }
        return PageClass::Shared;
    }

    // Owner-Shifting: the owner's count is falling while another
    // GPU's count is rising above the owner's. In predictive mode
    // (paper SS VII future work) the riser only needs to be projected
    // to overtake the owner within the look-ahead window.
    if (owner_is_gpu &&
        st.filtered[owner_g] < st.previous[owner_g] - trendEps) {
        const double owner_fall =
            st.previous[owner_g] - st.filtered[owner_g];
        double best_rise = 0.0;
        unsigned riser = owner_g;
        for (unsigned g = 0; g < _numGpus; ++g) {
            if (g == owner_g)
                continue;
            const double rise = st.filtered[g] - st.previous[g];
            if (rise <= trendEps || rise <= best_rise)
                continue;
            const bool overtakes_now = st.filtered[g] > owner_c;
            // Linear extrapolation: riser climbs by `rise` per period
            // while the owner keeps falling by `owner_fall`.
            const bool overtakes_soon =
                _config.enablePredictiveMigration &&
                st.filtered[g] +
                        _config.predictiveLookahead * rise >
                    owner_c - _config.predictiveLookahead * owner_fall;
            if (overtakes_now || overtakes_soon) {
                best_rise = rise;
                riser = g;
            }
        }
        if (riser != owner_g) {
            *best_gpu = riser;
            return PageClass::OwnerShifting;
        }
    }

    return PageClass::OutOfInterest;
}

PageClass
Dpc::classify(PageId page, DeviceId location) const
{
    auto it = _pages.find(page);
    if (it == _pages.end())
        return PageClass::OutOfInterest;
    unsigned best = 0;
    return classifyState(it->second, location, &best);
}

std::vector<double>
Dpc::filteredCounts(PageId page) const
{
    auto it = _pages.find(page);
    if (it == _pages.end())
        return std::vector<double>(_numGpus, 0.0);
    return it->second.filtered;
}

} // namespace griffin::core
