#include "src/core/first_touch_policy.hh"

#include "src/mem/page_table.hh"

namespace griffin::core {

CpuAccessDecision
FirstTouchPolicy::onCpuResidentAccess(DeviceId requester, PageId page,
                                      mem::PageTable &pt)
{
    (void)requester;
    pt.info(page).touched = true;
    ++firstTouchMigrations;
    return CpuAccessDecision{true};
}

} // namespace griffin::core
