#include "src/core/first_touch_policy.hh"

#include "src/mem/page_table.hh"
#include "src/obs/pagestats.hh"

namespace griffin::core {

CpuAccessDecision
FirstTouchPolicy::onCpuResidentAccess(DeviceId requester, PageId page,
                                      mem::PageTable &pt)
{
    pt.info(page).touched = true;
    ++firstTouchMigrations;
    obs::PageStats::recordActiveNow(obs::PageEvent::FirstTouch, page,
                                    cpuDeviceId, requester);
    return CpuAccessDecision{true};
}

} // namespace griffin::core
