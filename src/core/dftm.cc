#include "src/core/dftm.hh"

#include "src/mem/page_table.hh"
#include "src/obs/pagestats.hh"

namespace griffin::core {

CpuAccessDecision
Dftm::decide(DeviceId requester, PageId page, mem::PageTable &pt,
             Tick now)
{
    mem::PageInfo &pi = pt.info(page);

    if (pi.touched) {
        // Within the denial lease the first sweep is still streaming
        // from CPU memory (mostly through the IOTLB; only walk-level
        // misses reach this point): keep serving via DCA and renew.
        if (auto it = _lease.find(page); it != _lease.end()) {
            // Still within the denial lease (rare here: most lease
            // traffic is absorbed by the IOTLB): keep denying.
            if (now < it->second.lastAccess + _gapCycles &&
                now < it->second.start + _capCycles) {
                it->second.lastAccess = now;
                ++leaseRenewals;
                return CpuAccessDecision{false};
            }
            _lease.erase(it);
        }
        // Second touch after a gap (by any GPU): real reuse, migrate.
        ++secondTouchMigrations;
        return CpuAccessDecision{true};
    }

    // Deny only a GPU that is ahead of its fair share of pages (the
    // "highest occupancy" test, with hysteresis so the cold start —
    // where every GPU ties at zero — does not deny everyone and pile
    // the whole working set onto the CPU link).
    const unsigned num_gpus = pt.numDevices() - 1;
    const double fair_share = 1.0 / double(num_gpus);
    std::uint64_t on_gpus = 0;
    for (DeviceId dev = 1; dev < pt.numDevices(); ++dev)
        on_gpus += pt.residentPages(dev);
    const bool ahead =
        on_gpus >= 4 * num_gpus &&
        pt.gpuOccupancy(requester) > fair_share * 1.05 &&
        pt.hasHighestOccupancy(requester);
    if (ahead) {
        // Deny: the requester already holds the most pages. Serve via
        // DCA; a touch after the sweep's lease lapses migrates it.
        pi.touched = true;
        _lease[page] = Lease{now, now};
        ++firstTouchDenials;
        obs::PageStats::recordActive(obs::PageEvent::FirstTouch, page,
                                     cpuDeviceId, requester, now);
        obs::PageStats::recordActive(obs::PageEvent::DftmDenial, page,
                                     cpuDeviceId, requester, now);
        return CpuAccessDecision{false};
    }

    ++firstTouchMigrations;
    obs::PageStats::recordActive(obs::PageEvent::FirstTouch, page,
                                 cpuDeviceId, requester, now);
    return CpuAccessDecision{true};
}

void
Dftm::noteCpuAccess(PageId page, Tick now)
{
    if (auto it = _lease.find(page); it != _lease.end())
        it->second.lastAccess = now;
}

void
Dftm::expireLeases(Tick now, const std::function<void(PageId)> &purge)
{
    for (auto it = _lease.begin(); it != _lease.end();) {
        const bool quiet = now >= it->second.lastAccess + _gapCycles;
        const bool capped = now >= it->second.start + _capCycles;
        if (quiet || capped) {
            purge(it->first);
            it = _lease.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace griffin::core
