#include "src/core/griffin_policy.hh"

#include "src/obs/hostprof.hh"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "src/obs/pagestats.hh"
#include "src/obs/trace.hh"
#include "src/sim/log.hh"

namespace griffin::core {

namespace {
/** The policy engine's trace track. */
const std::string kTrack = "policy";
} // namespace

GriffinPolicy::GriffinPolicy(sim::Engine &engine, ic::Network &network,
                             mem::PageTable &pt, xlat::Iommu &iommu,
                             std::vector<gpu::Gpu *> gpus,
                             std::vector<gpu::Pmc *> pmcs,
                             const GriffinConfig &config)
    : _engine(engine), _network(network), _pageTable(pt), _iommu(iommu),
      _gpus(std::move(gpus)), _config(config),
      _dftm(config.dftmLeaseGap, config.dftmLeaseCap),
      _dpc(unsigned(_gpus.size()), config, &engine),
      _cpms(config.maxPagesPerPeriod, config.maxSourceGpusPerPeriod),
      _executor(engine, network, pt, iommu, _gpus, std::move(pmcs),
                config.useAcud)
{
}

CpuAccessDecision
GriffinPolicy::onCpuResidentAccess(DeviceId requester, PageId page,
                                   mem::PageTable &pt)
{
    if (!_config.enableDftm) {
        // DFTM ablated: plain first-touch demand paging.
        pt.info(page).touched = true;
        obs::PageStats::recordActive(obs::PageEvent::FirstTouch, page,
                                     cpuDeviceId, requester,
                                     _engine.now());
        return CpuAccessDecision{true};
    }
    const auto decision =
        _dftm.decide(requester, page, pt, _engine.now());
    if (!decision.migrate) {
        // Denied: let the first sweep stream cheaply through the
        // IOTLB. The lease expiry sweep drops the entry again.
        _iommu.cacheCpuResident(page);
    }
    return decision;
}

void
GriffinPolicy::onSystemStart()
{
    _running = true;
    if (_config.enableInterGpuMigration)
        schedulePeriod();
}

void
GriffinPolicy::onSystemStop()
{
    _running = false;
}

void
GriffinPolicy::setPeriodProbe(PeriodProbe probe,
                              std::vector<PageId> only_pages)
{
    _probe = std::move(probe);
    _probePages = std::move(only_pages);
    std::sort(_probePages.begin(), _probePages.end());
}

void
GriffinPolicy::schedulePeriod()
{
    _engine.schedule(_config.tAc, [this] {
        GHPROF_SCOPE("policy", "period");
        if (!_running)
            return;
        runPeriod();
        schedulePeriod();
    });
}

void
GriffinPolicy::runPeriod()
{
    ++periodsRun;
    if (auto *tr = obs::TraceSession::activeFor(obs::CatPolicy)) {
        tr->instant(obs::CatPolicy, kTrack, "collect_period",
                    _engine.now(),
                    obs::TraceArgs().add("period", periodsRun));
    }

    // Expire DFTM denial leases: purge the IOTLB entry so the next
    // touch of the page faults into the policy (the "second touch").
    if (_config.enableDftm) {
        _dftm.expireLeases(_engine.now(), [this](PageId page) {
            _iommu.invalidateIotlb(page);
        });
    }

    // The driver asks every GPU for its access counters; each GPU
    // answers with the paper's 110-byte count message. The DPC runs
    // once every reply has landed.
    auto outstanding = std::make_shared<std::size_t>(_gpus.size());
    for (std::size_t i = 0; i < _gpus.size(); ++i) {
        gpu::Gpu *g = _gpus[i];
        _network.send(cpuDeviceId, g->id(),
                      ic::MessageSizes::accessCountRequest,
                      [this, g, outstanding] {
            GHPROF_SCOPE("policy", "count_request");
            auto counts = std::make_shared<std::vector<gpu::PageCount>>(
                g->collectAccessCounts());
            _network.send(g->id(), cpuDeviceId,
                          ic::MessageSizes::accessCountReply,
                          [this, g, counts, outstanding] {
                GHPROF_SCOPE("policy", "count_reply");
                _dpc.addCounts(g->id(), *counts);
                if (--*outstanding == 0)
                    onCountsCollected();
            });
        });
    }
}

void
GriffinPolicy::onCountsCollected()
{
    std::vector<MigrationCandidate> candidates =
        _dpc.endPeriod(_pageTable);

    if (_probe) {
        if (_probePages.empty()) {
            // Probing everything is only sensible in small tests.
            for (const auto &cand : candidates)
                _probe(_engine.now(), cand.page,
                       _dpc.filteredCounts(cand.page), cand.from);
        } else {
            for (const PageId page : _probePages) {
                _probe(_engine.now(), page, _dpc.filteredCounts(page),
                       _pageTable.locationOf(page));
            }
        }
    }

    if (candidates.empty())
        return;

    // CPMS paces the drains: migration phases run every
    // migrationInterval collection periods, not every period.
    if (_config.migrationInterval > 1 &&
        periodsRun % _config.migrationInterval != 0) {
        return;
    }

    if (_migrationInFlight) {
        // CPMS paces migrations: one phase at a time keeps the page
        // ping-pong and drain pressure bounded.
        ++migrationPhasesSkipped;
        return;
    }

    std::vector<MigrationBatch> batches =
        _cpms.schedule(candidates, _engine.now());
    if (batches.empty())
        return;

    _migrationInFlight = true;
    const Tick phase_begin = _engine.now();
    std::size_t phase_pages = 0;
    for (const auto &batch : batches)
        phase_pages += batch.moves.size();
    const std::size_t num_batches = batches.size();
    auto remaining = std::make_shared<std::size_t>(batches.size());
    for (auto &batch : batches) {
        GLOG(Trace, "griffin: migration batch from gpu " << batch.source
                    << " (" << batch.moves.size() << " pages)");
        _executor.executeBatch(batch, [this, remaining, phase_begin,
                                       num_batches, phase_pages] {
            if (--*remaining == 0) {
                _migrationInFlight = false;
                if (auto *tr = obs::TraceSession::activeFor(
                        obs::CatPolicy)) {
                    tr->complete(obs::CatPolicy, kTrack,
                                 "migration_phase", phase_begin,
                                 _engine.now(),
                                 obs::TraceArgs()
                                     .add("batches", num_batches)
                                     .add("pages", phase_pages));
                }
            }
        });
    }
}

} // namespace griffin::core
