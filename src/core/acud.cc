#include "src/core/acud.hh"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "src/obs/trace.hh"
#include "src/sim/log.hh"

namespace griffin::core {

MigrationExecutor::MigrationExecutor(sim::Engine &engine,
                                     ic::Network &network,
                                     mem::PageTable &pt,
                                     xlat::Iommu &iommu,
                                     std::vector<gpu::Gpu *> gpus,
                                     std::vector<gpu::Pmc *> pmcs,
                                     bool use_acud)
    : _engine(engine), _network(network), _pageTable(pt), _iommu(iommu),
      _gpus(std::move(gpus)), _pmcs(std::move(pmcs)), _useAcud(use_acud)
{
}

void
MigrationExecutor::executeBatch(const MigrationBatch &batch,
                                sim::EventFn done)
{
    assert(!batch.moves.empty());
    ++batchesExecuted;

    const DeviceId source = batch.source;
    gpu::Gpu *src_gpu = gpuOf(source);

    // Span the whole episode: drain command -> quiesce -> shootdown ->
    // transfers -> completion notification.
    if (obs::TraceSession::activeFor(obs::CatMigration)) {
        const Tick begin = _engine.now();
        const std::size_t npages = batch.moves.size();
        done = [this, begin, npages, source, done = std::move(done)] {
            if (auto *tr =
                    obs::TraceSession::activeFor(obs::CatMigration)) {
                tr->complete(obs::CatMigration, "executor",
                             "migration_batch", begin, _engine.now(),
                             obs::TraceArgs()
                                 .add("source", source)
                                 .add("pages", npages));
            }
            done();
        };
    }

    // Shared state for the continuation chain.
    auto moves = std::make_shared<std::vector<MigrationCandidate>>(
        batch.moves);
    auto pages = std::make_shared<std::vector<PageId>>();
    pages->reserve(moves->size());
    for (const auto &m : *moves)
        pages->push_back(m.page);
    std::sort(pages->begin(), pages->end());

    // 1. Mark the pages as migrating so the next DPC period does not
    // re-select them. Translations keep being served from the old
    // location until the shootdown — execution is undisturbed while
    // the drain command travels (paper Figure 7's timeline).
    for (const PageId page : *pages)
        _pageTable.info(page).migrationPending = true;

    GLOG(Trace, "executor: batch of " << pages->size()
                << " pages from gpu " << source);

    auto transfer_phase = [this, moves, done = std::move(done)]() mutable {
        auto remaining = std::make_shared<std::size_t>(moves->size());
        auto all_done = std::make_shared<sim::EventFn>(std::move(done));
        for (const auto &move : *moves) {
            ++pagesMigrated;
            ++migrationsByClass[std::size_t(move.reason)];
            _pmcs[move.from]->transferPage(
                move.page, move.to,
                [this, move, remaining, all_done] {
                    _pageTable.setLocation(move.page, move.to);
                    _iommu.onMigrationDone(move.page);
                    if (--*remaining == 0) {
                        // Completion notification back to the driver.
                        _network.send(move.to, cpuDeviceId,
                                      ic::MessageSizes::drainReply,
                                      std::move(*all_done));
                    }
                });
        }
    };

    // 2. Drain command travels to the source GPU.
    _network.send(cpuDeviceId, source, ic::MessageSizes::drainCommand,
                  [this, src_gpu, pages, moves,
                   transfer_phase = std::move(transfer_phase)]() mutable {
        const bool selective = _useAcud;
        auto after_quiesce = [this, src_gpu, pages, selective,
                              transfer_phase = std::move(transfer_phase)]
                             () mutable {
            // 4. Selective TLB shootdown and L2/L1 flush of exactly
            // the migrating pages. (The full-flush path already
            // purged all TLBs and caches inside flushForMigration.)
            // From here until each page's transfer completes, the
            // page is unavailable: new translations park.
            for (const PageId page : *pages)
                _iommu.blockPage(page);
            Tick wb_done = _engine.now();
            if (selective) {
                src_gpu->shootdownPages(*pages);
                wb_done = src_gpu->flushCachesForPages(*pages);
            }
            const Tick resume_at =
                std::max(wb_done, _engine.now() +
                                      src_gpu->config().shootdownLatency);
            _engine.scheduleAt(resume_at,
                               [src_gpu,
                                transfer_phase = std::move(transfer_phase)]
                               () mutable {
                // 5. Continue: execution restarts before the data
                // moves (paper Figure 7).
                src_gpu->resumeAllCus();
                // 6. Transfers stream out concurrently.
                transfer_phase();
            });
        };

        if (_useAcud) {
            // 3a. ACUD drain.
            src_gpu->drainForPages(pages, std::move(after_quiesce));
        } else {
            // 3b. Conventional full pipeline flush.
            src_gpu->flushForMigration(std::move(after_quiesce));
        }
    });
}

} // namespace griffin::core
