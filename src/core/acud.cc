#include "src/core/acud.hh"

#include "src/obs/hostprof.hh"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "src/obs/pagestats.hh"
#include "src/obs/trace.hh"
#include "src/sim/log.hh"
#include "src/sys/chaos.hh"

namespace griffin::core {

struct MigrationExecutor::BatchState
{
    std::vector<MigrationCandidate> moves;
    std::size_t remaining = 0;
    bool aborted = false;
    sim::TimerId timer = sim::invalidTimerId;
    std::vector<bool> landed;
    /** The driver's completion; exactly one side moves it out. */
    sim::EventFn allDone;
};

MigrationExecutor::MigrationExecutor(sim::Engine &engine,
                                     ic::Network &network,
                                     mem::PageTable &pt,
                                     xlat::Iommu &iommu,
                                     std::vector<gpu::Gpu *> gpus,
                                     std::vector<gpu::Pmc *> pmcs,
                                     bool use_acud)
    : _engine(engine), _network(network), _pageTable(pt), _iommu(iommu),
      _gpus(std::move(gpus)), _pmcs(std::move(pmcs)), _useAcud(use_acud)
{
}

void
MigrationExecutor::executeBatch(const MigrationBatch &batch,
                                sim::EventFn done)
{
    assert(!batch.moves.empty());
    ++batchesExecuted;

    const DeviceId source = batch.source;
    gpu::Gpu *src_gpu = gpuOf(source);

    // Span the whole episode: drain command -> quiesce -> shootdown ->
    // transfers -> completion notification.
    if (obs::TraceSession::activeFor(obs::CatMigration)) {
        const Tick begin = _engine.now();
        const std::size_t npages = batch.moves.size();
        done = sim::boxed([this, begin, npages, source,
                           done = std::move(done)] {
            if (auto *tr =
                    obs::TraceSession::activeFor(obs::CatMigration)) {
                tr->complete(obs::CatMigration, "executor",
                             "migration_batch", begin, _engine.now(),
                             obs::TraceArgs()
                                 .add("source", source)
                                 .add("pages", npages));
            }
            done();
        });
    }

    // Shared state for the continuation chain: one heap object per
    // batch, captured by pointer everywhere downstream.
    auto state = std::make_shared<BatchState>();
    state->moves = batch.moves;
    state->allDone = std::move(done);
    auto pages = std::make_shared<std::vector<PageId>>();
    pages->reserve(state->moves.size());
    for (const auto &m : state->moves)
        pages->push_back(m.page);
    std::sort(pages->begin(), pages->end());

    // 1. Mark the pages as migrating so the next DPC period does not
    // re-select them. Translations keep being served from the old
    // location until the shootdown — execution is undisturbed while
    // the drain command travels (paper Figure 7's timeline).
    for (const PageId page : *pages)
        _pageTable.info(page).migrationPending = true;

    GLOG(Trace, "executor: batch of " << pages->size()
                << " pages from gpu " << source);

    // 2. Drain command travels to the source GPU.
    _network.send(cpuDeviceId, source, ic::MessageSizes::drainCommand,
                  [this, src_gpu, pages, state, source]() mutable {
        auto after_quiesce = [this, src_gpu, pages, state,
                              source]() mutable {
            const bool selective = _useAcud;
            // 4. Selective TLB shootdown and L2/L1 flush of exactly
            // the migrating pages. (The full-flush path already
            // purged all TLBs and caches inside flushForMigration.)
            // From here until each page's transfer completes, the
            // page is unavailable: new translations park.
            for (const PageId page : *pages)
                _iommu.blockPage(page);
            Tick wb_done = _engine.now();
            Tick ack_penalty = 0;
            if (selective) {
                src_gpu->shootdownPages(*pages);
                if (obs::PageStats::active()) {
                    for (const PageId page : *pages) {
                        obs::PageStats::recordActive(
                            obs::PageEvent::Shootdown, page,
                            src_gpu->id(), invalidDeviceId,
                            _engine.now());
                    }
                }
                wb_done = src_gpu->flushCachesForPages(*pages);
                if (_injector) {
                    // Lost-ACK recovery: each lost completion ACK
                    // costs one ACK timeout, then the shootdown is
                    // re-issued (idempotent). Bounded so a hostile
                    // seed cannot wedge the batch.
                    const auto &cc = _injector->config();
                    unsigned reissues = 0;
                    while (reissues < cc.shootdownMaxReissues &&
                           _injector->loseShootdownAck()) {
                        ++reissues;
                        ++shootdownsReissued;
                        _injector->noteRetry();
                        src_gpu->shootdownPages(*pages);
                        ack_penalty += cc.shootdownAckTimeout;
                    }
                    if (ack_penalty > 0) {
                        _injector->noteRecoveryCycles(ack_penalty);
                        if (auto *tr = obs::TraceSession::activeFor(
                                obs::CatChaos)) {
                            tr->instant(obs::CatChaos, "executor",
                                        "shootdown_ack_lost",
                                        _engine.now(),
                                        obs::TraceArgs()
                                            .add("reissues", reissues)
                                            .add("penalty",
                                                 ack_penalty));
                        }
                    }
                }
            }
            const Tick resume_at =
                std::max(wb_done, _engine.now() +
                                      src_gpu->config().shootdownLatency) +
                ack_penalty;
            _engine.scheduleAt(resume_at,
                               [this, src_gpu, state,
                                source]() mutable {
                GHPROF_SCOPE("acud", "resume");
                // 5. Continue: execution restarts before the data
                // moves (paper Figure 7).
                src_gpu->resumeAllCus();
                // 6. Transfers stream out concurrently.
                transferPhase(source, std::move(state));
            });
        };

        if (_useAcud) {
            // 3a. ACUD drain.
            src_gpu->drainForPages(pages, std::move(after_quiesce));
        } else {
            // 3b. Conventional full pipeline flush.
            src_gpu->flushForMigration(std::move(after_quiesce));
        }
    });
}

void
MigrationExecutor::transferPhase(DeviceId source,
                                 std::shared_ptr<BatchState> state)
{
    // Per-page completions and the batch timeout arbitrate through
    // the shared state: exactly one side sends the drain reply.
    state->remaining = state->moves.size();
    state->landed.assign(state->moves.size(), false);
    for (std::size_t i = 0; i < state->moves.size(); ++i) {
        const auto &move = state->moves[i];
        ++pagesMigrated;
        ++migrationsByClass[std::size_t(move.reason)];
        _pmcs[move.from]->transferPage(
            move.page, move.to,
            [this, i, state] {
                if (state->aborted) {
                    // The batch timeout already gave up on this
                    // page and replayed its parked translations
                    // against the old location: the page must not
                    // move anymore.
                    ++lateTransferCompletions;
                    return;
                }
                state->landed[i] = true;
                const auto &move = state->moves[i];
                _pageTable.setLocation(move.page, move.to);
                _iommu.onMigrationDone(move.page);
                if (--state->remaining == 0) {
                    if (state->timer != sim::invalidTimerId)
                        _engine.cancelTimeout(state->timer);
                    // Completion notification back to the driver.
                    _network.send(move.to, cpuDeviceId,
                                  ic::MessageSizes::drainReply,
                                  std::move(state->allDone));
                }
            });
    }
    if (_injector && _injector->config().migrationTimeout > 0) {
        const Tick timeout = _injector->config().migrationTimeout;
        state->timer = _engine.scheduleTimeout(
            timeout,
            [this, source, state, timeout] {
                GHPROF_SCOPE("acud", "batch_timeout");
                if (state->remaining == 0)
                    return;
                // Abort every page still in flight: it stays at
                // its source, the parked translations replay
                // against the unchanged page table, and the DPC
                // may re-select it in a later period.
                state->aborted = true;
                ++batchesAborted;
                std::size_t stuck = 0;
                for (std::size_t i = 0; i < state->moves.size(); ++i) {
                    if (state->landed[i])
                        continue;
                    ++stuck;
                    const auto &move = state->moves[i];
                    mem::PageInfo &pi = _pageTable.info(move.page);
                    pi.migrating = false;
                    pi.migrationPending = false;
                    _injector->noteFallback();
                    _injector->noteMigrationTimeout();
                    obs::PageStats::recordActive(
                        obs::PageEvent::MigrationAbort, move.page,
                        move.from, move.to, _engine.now());
                    obs::PageStats::recordActive(
                        obs::PageEvent::Recovery, move.page,
                        move.from, move.to, _engine.now());
                    _iommu.onMigrationDone(move.page);
                }
                _injector->noteRecoveryCycles(timeout);
                if (auto *tr = obs::TraceSession::activeFor(
                        obs::CatChaos)) {
                    tr->instant(obs::CatChaos, "executor",
                                "batch_timeout", _engine.now(),
                                obs::TraceArgs()
                                    .add("source", source)
                                    .add("stuck", stuck));
                }
                // Unblock the driver-side chain.
                _network.send(source, cpuDeviceId,
                              ic::MessageSizes::drainReply,
                              std::move(state->allDone));
            });
    }
}

} // namespace griffin::core
