#include "src/core/acud.hh"

#include "src/obs/hostprof.hh"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "src/obs/pagestats.hh"
#include "src/obs/trace.hh"
#include "src/sim/log.hh"
#include "src/sys/chaos.hh"

namespace griffin::core {

MigrationExecutor::MigrationExecutor(sim::Engine &engine,
                                     ic::Network &network,
                                     mem::PageTable &pt,
                                     xlat::Iommu &iommu,
                                     std::vector<gpu::Gpu *> gpus,
                                     std::vector<gpu::Pmc *> pmcs,
                                     bool use_acud)
    : _engine(engine), _network(network), _pageTable(pt), _iommu(iommu),
      _gpus(std::move(gpus)), _pmcs(std::move(pmcs)), _useAcud(use_acud)
{
}

void
MigrationExecutor::executeBatch(const MigrationBatch &batch,
                                sim::EventFn done)
{
    assert(!batch.moves.empty());
    ++batchesExecuted;

    const DeviceId source = batch.source;
    gpu::Gpu *src_gpu = gpuOf(source);

    // Span the whole episode: drain command -> quiesce -> shootdown ->
    // transfers -> completion notification.
    if (obs::TraceSession::activeFor(obs::CatMigration)) {
        const Tick begin = _engine.now();
        const std::size_t npages = batch.moves.size();
        done = [this, begin, npages, source, done = std::move(done)] {
            if (auto *tr =
                    obs::TraceSession::activeFor(obs::CatMigration)) {
                tr->complete(obs::CatMigration, "executor",
                             "migration_batch", begin, _engine.now(),
                             obs::TraceArgs()
                                 .add("source", source)
                                 .add("pages", npages));
            }
            done();
        };
    }

    // Shared state for the continuation chain.
    auto moves = std::make_shared<std::vector<MigrationCandidate>>(
        batch.moves);
    auto pages = std::make_shared<std::vector<PageId>>();
    pages->reserve(moves->size());
    for (const auto &m : *moves)
        pages->push_back(m.page);
    std::sort(pages->begin(), pages->end());

    // 1. Mark the pages as migrating so the next DPC period does not
    // re-select them. Translations keep being served from the old
    // location until the shootdown — execution is undisturbed while
    // the drain command travels (paper Figure 7's timeline).
    for (const PageId page : *pages)
        _pageTable.info(page).migrationPending = true;

    GLOG(Trace, "executor: batch of " << pages->size()
                << " pages from gpu " << source);

    auto transfer_phase = [this, moves, source,
                           done = std::move(done)]() mutable {
        // Shared between the per-page completions and the batch
        // timeout: exactly one side sends the drain reply.
        struct BatchState
        {
            std::size_t remaining = 0;
            bool aborted = false;
            sim::TimerId timer = sim::invalidTimerId;
            std::vector<bool> landed;
        };
        auto state = std::make_shared<BatchState>();
        state->remaining = moves->size();
        state->landed.assign(moves->size(), false);
        auto all_done = std::make_shared<sim::EventFn>(std::move(done));
        for (std::size_t i = 0; i < moves->size(); ++i) {
            const auto &move = (*moves)[i];
            ++pagesMigrated;
            ++migrationsByClass[std::size_t(move.reason)];
            _pmcs[move.from]->transferPage(
                move.page, move.to,
                [this, move, i, state, all_done] {
                    if (state->aborted) {
                        // The batch timeout already gave up on this
                        // page and replayed its parked translations
                        // against the old location: the page must not
                        // move anymore.
                        ++lateTransferCompletions;
                        return;
                    }
                    state->landed[i] = true;
                    _pageTable.setLocation(move.page, move.to);
                    _iommu.onMigrationDone(move.page);
                    if (--state->remaining == 0) {
                        if (state->timer != sim::invalidTimerId)
                            _engine.cancelTimeout(state->timer);
                        // Completion notification back to the driver.
                        _network.send(move.to, cpuDeviceId,
                                      ic::MessageSizes::drainReply,
                                      std::move(*all_done));
                    }
                });
        }
        if (_injector && _injector->config().migrationTimeout > 0) {
            const Tick timeout = _injector->config().migrationTimeout;
            state->timer = _engine.scheduleTimeout(
                timeout,
                [this, moves, source, state, all_done, timeout] {
                    GHPROF_SCOPE("acud", "batch_timeout");
                    if (state->remaining == 0)
                        return;
                    // Abort every page still in flight: it stays at
                    // its source, the parked translations replay
                    // against the unchanged page table, and the DPC
                    // may re-select it in a later period.
                    state->aborted = true;
                    ++batchesAborted;
                    std::size_t stuck = 0;
                    for (std::size_t i = 0; i < moves->size(); ++i) {
                        if (state->landed[i])
                            continue;
                        ++stuck;
                        const auto &move = (*moves)[i];
                        mem::PageInfo &pi =
                            _pageTable.info(move.page);
                        pi.migrating = false;
                        pi.migrationPending = false;
                        _injector->noteFallback();
                        _injector->noteMigrationTimeout();
                        obs::PageStats::recordActive(
                            obs::PageEvent::MigrationAbort, move.page,
                            move.from, move.to, _engine.now());
                        obs::PageStats::recordActive(
                            obs::PageEvent::Recovery, move.page,
                            move.from, move.to, _engine.now());
                        _iommu.onMigrationDone(move.page);
                    }
                    _injector->noteRecoveryCycles(timeout);
                    if (auto *tr = obs::TraceSession::activeFor(
                            obs::CatChaos)) {
                        tr->instant(obs::CatChaos, "executor",
                                    "batch_timeout", _engine.now(),
                                    obs::TraceArgs()
                                        .add("source", source)
                                        .add("stuck", stuck));
                    }
                    // Unblock the driver-side chain.
                    _network.send(source, cpuDeviceId,
                                  ic::MessageSizes::drainReply,
                                  std::move(*all_done));
                });
        }
    };

    // 2. Drain command travels to the source GPU.
    _network.send(cpuDeviceId, source, ic::MessageSizes::drainCommand,
                  [this, src_gpu, pages, moves,
                   transfer_phase = std::move(transfer_phase)]() mutable {
        const bool selective = _useAcud;
        auto after_quiesce = [this, src_gpu, pages, selective,
                              transfer_phase = std::move(transfer_phase)]
                             () mutable {
            // 4. Selective TLB shootdown and L2/L1 flush of exactly
            // the migrating pages. (The full-flush path already
            // purged all TLBs and caches inside flushForMigration.)
            // From here until each page's transfer completes, the
            // page is unavailable: new translations park.
            for (const PageId page : *pages)
                _iommu.blockPage(page);
            Tick wb_done = _engine.now();
            Tick ack_penalty = 0;
            if (selective) {
                src_gpu->shootdownPages(*pages);
                if (obs::PageStats::active()) {
                    for (const PageId page : *pages) {
                        obs::PageStats::recordActive(
                            obs::PageEvent::Shootdown, page,
                            src_gpu->id(), invalidDeviceId,
                            _engine.now());
                    }
                }
                wb_done = src_gpu->flushCachesForPages(*pages);
                if (_injector) {
                    // Lost-ACK recovery: each lost completion ACK
                    // costs one ACK timeout, then the shootdown is
                    // re-issued (idempotent). Bounded so a hostile
                    // seed cannot wedge the batch.
                    const auto &cc = _injector->config();
                    unsigned reissues = 0;
                    while (reissues < cc.shootdownMaxReissues &&
                           _injector->loseShootdownAck()) {
                        ++reissues;
                        ++shootdownsReissued;
                        _injector->noteRetry();
                        src_gpu->shootdownPages(*pages);
                        ack_penalty += cc.shootdownAckTimeout;
                    }
                    if (ack_penalty > 0) {
                        _injector->noteRecoveryCycles(ack_penalty);
                        if (auto *tr = obs::TraceSession::activeFor(
                                obs::CatChaos)) {
                            tr->instant(obs::CatChaos, "executor",
                                        "shootdown_ack_lost",
                                        _engine.now(),
                                        obs::TraceArgs()
                                            .add("reissues", reissues)
                                            .add("penalty",
                                                 ack_penalty));
                        }
                    }
                }
            }
            const Tick resume_at =
                std::max(wb_done, _engine.now() +
                                      src_gpu->config().shootdownLatency) +
                ack_penalty;
            _engine.scheduleAt(resume_at,
                               [src_gpu,
                                transfer_phase = std::move(transfer_phase)]
                               () mutable {
                GHPROF_SCOPE("acud", "resume");
                // 5. Continue: execution restarts before the data
                // moves (paper Figure 7).
                src_gpu->resumeAllCus();
                // 6. Transfers stream out concurrently.
                transfer_phase();
            });
        };

        if (_useAcud) {
            // 3a. ACUD drain.
            src_gpu->drainForPages(pages, std::move(after_quiesce));
        } else {
            // 3b. Conventional full pipeline flush.
            src_gpu->flushForMigration(std::move(after_quiesce));
        }
    });
}

} // namespace griffin::core
