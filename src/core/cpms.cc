#include "src/core/cpms.hh"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_set>

#include "src/obs/pagestats.hh"

namespace griffin::core {

Cpms::Cpms(unsigned max_pages_per_period, unsigned max_source_gpus)
    : _maxPages(max_pages_per_period), _maxSources(max_source_gpus)
{
    assert(max_pages_per_period > 0 && max_source_gpus > 0);
}

std::vector<MigrationBatch>
Cpms::schedule(const std::vector<MigrationCandidate> &candidates,
               Tick now)
{
    ++phases;

    // Group by source GPU, preserving the caller's score order.
    std::map<DeviceId, std::vector<MigrationCandidate>> by_source;
    for (const auto &cand : candidates)
        by_source[cand.from].push_back(cand);

    // Drain the sources with the most candidate pages first: one
    // drain there amortizes over the most transfers.
    std::vector<DeviceId> sources;
    sources.reserve(by_source.size());
    for (const auto &[src, moves] : by_source)
        sources.push_back(src);
    std::sort(sources.begin(), sources.end(),
              [&](DeviceId a, DeviceId b) {
                  const auto na = by_source[a].size();
                  const auto nb = by_source[b].size();
                  if (na != nb)
                      return na > nb;
                  return a < b;
              });

    std::vector<MigrationBatch> batches;
    unsigned pages_total = 0;
    for (const DeviceId src : sources) {
        if (batches.size() >= _maxSources || pages_total >= _maxPages)
            break;
        MigrationBatch batch;
        batch.source = src;
        for (const auto &cand : by_source[src]) {
            if (pages_total >= _maxPages)
                break;
            batch.moves.push_back(cand);
            ++pages_total;
        }
        if (!batch.moves.empty())
            batches.push_back(std::move(batch));
    }

    pagesScheduled += pages_total;
    pagesDeferred += candidates.size() - pages_total;
    batchesEmitted += batches.size();

    if (obs::PageStats::active() && pages_total < candidates.size()) {
        std::unordered_set<PageId> scheduled;
        for (const auto &batch : batches)
            for (const auto &move : batch.moves)
                scheduled.insert(move.page);
        for (const auto &cand : candidates) {
            if (!scheduled.count(cand.page)) {
                obs::PageStats::recordActive(
                    obs::PageEvent::MigrationDeferred, cand.page,
                    cand.from, cand.to, now);
            }
        }
    }
    return batches;
}

} // namespace griffin::core
