/**
 * @file
 * Cooperative Page Migration Scheduling (paper SS III-B), inter-GPU
 * half: group the DPC's migration candidates by source GPU so each
 * drained GPU pays its quiesce cost once for many pages, and cap the
 * work per migration phase.
 *
 * (The CPU->GPU half of CPMS — fault batching — lives in
 * driver::Driver, parameterized by N_PTW.)
 */

#ifndef GRIFFIN_CORE_CPMS_HH
#define GRIFFIN_CORE_CPMS_HH

#include <cstdint>
#include <vector>

#include "src/core/dpc.hh"
#include "src/sim/types.hh"

namespace griffin::core {

/** One source GPU's batched migrations for this phase. */
struct MigrationBatch
{
    DeviceId source;
    std::vector<MigrationCandidate> moves;
};

/**
 * The inter-GPU batching scheduler.
 */
class Cpms
{
  public:
    /**
     * @param max_pages_per_period total pages migrated per phase.
     * @param max_source_gpus      GPUs drained per phase.
     */
    Cpms(unsigned max_pages_per_period, unsigned max_source_gpus);

    /**
     * Turn the (score-sorted) candidate list into per-source batches,
     * preferring the sources with the most candidate traffic.
     * @p now timestamps the candidates dropped by the per-phase caps
     * (recorded as MigrationDeferred when page stats are attached).
     */
    std::vector<MigrationBatch>
    schedule(const std::vector<MigrationCandidate> &candidates,
             Tick now = 0);

    /** @name Statistics @{ */
    std::uint64_t phases = 0;
    std::uint64_t batchesEmitted = 0;
    std::uint64_t pagesScheduled = 0;
    std::uint64_t pagesDeferred = 0; ///< dropped by the per-phase caps
    /** @} */

  private:
    unsigned _maxPages;
    unsigned _maxSources;
};

} // namespace griffin::core

#endif // GRIFFIN_CORE_CPMS_HH
