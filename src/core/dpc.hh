/**
 * @file
 * Dynamic Page Classification (paper SS III-C).
 *
 * Raw per-GPU access counts collected from the Shader Engine counter
 * tables are smoothed with an exponentially weighted moving average
 * (C_n = (1-alpha) C_{n-1} + alpha N_n) and every tracked page is
 * classified each period:
 *
 *   Mostly Dedicated  one GPU dominates -> migrate to it
 *   Shared            flat distribution -> migrate only off a cold owner
 *   Streaming         low rate          -> never migrate
 *   Owner-Shifting    owner cooling, another GPU warming -> migrate
 *   Out-of-Interest   everything else   -> ignore
 */

#ifndef GRIFFIN_CORE_DPC_HH
#define GRIFFIN_CORE_DPC_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/griffin_config.hh"
#include "src/gpu/access_counter.hh"
#include "src/mem/page_table.hh"
#include "src/sim/types.hh"

namespace griffin::sim {
class Engine;
} // namespace griffin::sim

namespace griffin::core {

/** The five page classes of SS III-C. */
enum class PageClass
{
    MostlyDedicated,
    Shared,
    Streaming,
    OwnerShifting,
    OutOfInterest,
};

/** Printable class name. */
const char *pageClassName(PageClass cls);

/** A page the DPC wants moved. */
struct MigrationCandidate
{
    PageId page;
    DeviceId from;
    DeviceId to;
    PageClass reason;
    /** Filtered access count of the destination (priority key). */
    double score;
};

/**
 * The classifier. Lives conceptually in the IOMMU; the driver feeds
 * it the per-GPU counts each period.
 */
class Dpc
{
  public:
    /**
     * @param num_gpus GPUs in the system (GPU g is device g+1).
     * @param config   thresholds (Table I).
     * @param clock    optional timestamp source for trace events
     *                 (class-change instants); nullptr disables them.
     */
    Dpc(unsigned num_gpus, const GriffinConfig &config,
        const sim::Engine *clock = nullptr);

    /**
     * Feed the counts GPU @p gpu (device id) reported this period.
     */
    void addCounts(DeviceId gpu, const std::vector<gpu::PageCount> &counts);

    /**
     * Close the period: apply the EWMA to every tracked page (pages
     * not reported decay toward zero), classify, and emit migration
     * candidates sorted by descending score.
     *
     * @param pt page table (candidate source = current location;
     *        CPU-resident and already-migrating pages are skipped).
     */
    std::vector<MigrationCandidate> endPeriod(const mem::PageTable &pt);

    /** Classify one tracked page (exposed for tests and probes). */
    PageClass classify(PageId page, DeviceId location) const;

    /** Filtered per-GPU counts of @p page (index 0 = GPU device 1). */
    std::vector<double> filteredCounts(PageId page) const;

    /** Tracked page count (for tests / memory bounds). */
    std::size_t trackedPages() const { return _pages.size(); }

    /** @name Statistics @{ */
    std::uint64_t periods = 0;
    std::uint64_t candidatesEmitted = 0;
    std::uint64_t classCounts[5] = {0, 0, 0, 0, 0};
    /** @} */

  private:
    struct PageState
    {
        std::vector<double> filtered;
        std::vector<double> previous;
        std::vector<std::uint32_t> pending; ///< raw counts this period
        /** Last class this page was observed in (-1 = never). */
        int lastClass = -1;
    };

    unsigned _numGpus;
    GriffinConfig _config;
    const sim::Engine *_clock;
    std::unordered_map<PageId, PageState> _pages;

    unsigned gpuIndex(DeviceId gpu) const { return gpu - 1; }

    /** Classification on explicit state (shared by classify()). */
    PageClass classifyState(const PageState &st, DeviceId location,
                            unsigned *best_gpu) const;
};

} // namespace griffin::core

#endif // GRIFFIN_CORE_DPC_HH
