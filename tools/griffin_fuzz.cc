/**
 * @file
 * griffin-fuzz: randomized differential testing for the simulator.
 *
 *   griffin-fuzz [--seeds=N] [--seed=S] [--jobs=N] [--batch=K]
 *                [--duration=SECS] [--shrink] [--pin=KNOB[,KNOB...]]
 *                [--corpus] [--list-knobs] [--describe] [--quiet]
 *
 * Draws one scenario per seed (sys/scenario_gen.hh), runs each under
 * every invariant oracle plus the --jobs=1 vs --jobs=N vs
 * reference-scheduler differentials (sys/oracle.hh), and prints a
 * one-line repro command for every failure. Seeds run in batches of
 * --batch so the parallel differential actually exercises concurrent
 * sweeps.
 *
 *  --seeds=N      seeds to run (default 16), starting at --seed
 *  --seed=S       first seed (default 1; 0x-prefixed hex accepted)
 *  --jobs=N       worker threads for the parallel differential
 *  --duration=S   keep fuzzing fresh seeds until S wall seconds pass
 *                 (overrides --seeds as the stop condition)
 *  --shrink       after a failure, pin knobs to defaults one at a
 *                 time and keep each pin that preserves the failure;
 *                 prints the minimized repro
 *  --pin=A,B      pin the named knobs to defaults up front (replay of
 *                 a shrunk repro)
 *  --corpus       run the 16 pinned corpus seeds instead of a range
 *  --describe     print each scenario without running it
 *  --list-knobs   print the shrinkable knob names
 *
 * Exit status: 0 all scenarios clean, 1 at least one oracle finding,
 * 2 usage error.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/sys/oracle.hh"
#include "src/sys/scenario_gen.hh"

namespace {

void
usage()
{
    std::cerr
        << "usage: griffin-fuzz [--seeds=N] [--seed=S] [--jobs=N]"
           " [--batch=K] [--duration=SECS]\n"
           "                    [--shrink] [--pin=KNOB[,KNOB...]]"
           " [--corpus] [--describe]\n"
           "                    [--list-knobs] [--quiet]\n"
           "  e.g. griffin-fuzz --seeds=200 --jobs=8\n"
           "       griffin-fuzz --seed=0x2a --seeds=1 --shrink\n";
}

std::uint64_t
parseNum(const std::string &flag, const std::string &text)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0') {
        std::cerr << "griffin-fuzz: bad value for " << flag << ": \""
                  << text << "\"\n";
        std::exit(2);
    }
    return v;
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t from = 0;
    while (from <= text.size()) {
        const std::size_t comma = text.find(',', from);
        const std::size_t to =
            comma == std::string::npos ? text.size() : comma;
        if (to > from)
            out.push_back(text.substr(from, to - from));
        if (comma == std::string::npos)
            break;
        from = comma + 1;
    }
    return out;
}

void
printFailure(const griffin::sys::ScenarioVerdict &verdict)
{
    for (const auto &f : verdict.findings) {
        std::printf("FAIL seed=0x%llx oracle=%s\n",
                    static_cast<unsigned long long>(
                        verdict.scenario.seed),
                    f.oracle.c_str());
        std::printf("     %s\n", f.detail.c_str());
    }
    std::printf("     scenario: %s\n",
                verdict.scenario.describe().c_str());
    std::printf("repro: %s\n", verdict.scenario.reproCommand().c_str());
}

/** True when the scenario built from (seed, pinned) still fails. */
bool
stillFails(std::uint64_t seed, const std::vector<std::string> &pinned,
           const griffin::sys::FuzzOptions &options)
{
    const auto verdicts = griffin::sys::runFuzzBatch(
        {griffin::sys::makeScenario(seed, pinned)}, options);
    return !verdicts[0].ok();
}

/**
 * Shrink a failing seed: walk the knob list, pin each knob in turn,
 * and keep the pin when the failure survives without it varying. The
 * knobs left unpinned at the end are the minimal trigger set.
 */
void
shrinkSeed(std::uint64_t seed, std::vector<std::string> pinned,
           const griffin::sys::FuzzOptions &options)
{
    std::printf("shrinking seed 0x%llx...\n",
                static_cast<unsigned long long>(seed));
    for (const std::string &knob : griffin::sys::scenarioKnobs()) {
        if (std::find(pinned.begin(), pinned.end(), knob) !=
            pinned.end())
            continue;
        std::vector<std::string> trial = pinned;
        trial.push_back(knob);
        if (stillFails(seed, trial, options)) {
            pinned = std::move(trial);
            std::printf("  pin %-10s -> still fails\n", knob.c_str());
        } else {
            std::printf("  pin %-10s -> failure depends on it\n",
                        knob.c_str());
        }
    }
    const auto scenario = griffin::sys::makeScenario(seed, pinned);
    std::printf("shrunk: %s\n", scenario.reproCommand().c_str());
    std::printf("        %s\n", scenario.describe().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace griffin;

    std::uint64_t seeds = 16;
    std::uint64_t firstSeed = 1;
    std::uint64_t batch = 16;
    std::uint64_t durationSecs = 0;
    bool shrink = false;
    bool corpus = false;
    bool describeOnly = false;
    bool quiet = false;
    std::vector<std::string> pinned;
    sys::FuzzOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&arg](const char *prefix) {
            return arg.substr(std::string(prefix).size());
        };
        if (arg.rfind("--seeds=", 0) == 0) {
            seeds = parseNum("--seeds", value("--seeds="));
        } else if (arg.rfind("--seed=", 0) == 0) {
            firstSeed = parseNum("--seed", value("--seed="));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.jobs =
                unsigned(parseNum("--jobs", value("--jobs=")));
        } else if (arg.rfind("--batch=", 0) == 0) {
            batch = parseNum("--batch", value("--batch="));
            if (batch == 0) {
                std::cerr << "griffin-fuzz: --batch must be > 0\n";
                return 2;
            }
        } else if (arg.rfind("--duration=", 0) == 0) {
            durationSecs =
                parseNum("--duration", value("--duration="));
        } else if (arg.rfind("--pin=", 0) == 0) {
            for (const std::string &knob :
                 splitList(value("--pin="))) {
                if (!sys::isScenarioKnob(knob)) {
                    std::cerr << "griffin-fuzz: unknown knob \""
                              << knob << "\" (see --list-knobs)\n";
                    return 2;
                }
                pinned.push_back(knob);
            }
        } else if (arg == "--shrink") {
            shrink = true;
        } else if (arg == "--corpus") {
            corpus = true;
        } else if (arg == "--describe") {
            describeOnly = true;
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else if (arg == "--list-knobs") {
            for (const std::string &knob : sys::scenarioKnobs())
                std::cout << knob << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "griffin-fuzz: unknown flag " << arg << "\n";
            usage();
            return 2;
        }
    }

    // Assemble the seed schedule. --duration keeps drawing fresh
    // seeds past the schedule until the wall budget runs out.
    std::vector<std::uint64_t> schedule;
    if (corpus) {
        schedule = sys::fuzzCorpusSeeds();
    } else {
        for (std::uint64_t s = 0; s < seeds; ++s)
            schedule.push_back(firstSeed + s);
    }

    if (describeOnly) {
        for (const std::uint64_t seed : schedule) {
            const auto sc = sys::makeScenario(seed, pinned);
            std::printf("seed=0x%llx %s\n",
                        static_cast<unsigned long long>(seed),
                        sc.describe().c_str());
        }
        return 0;
    }

    const auto start = std::chrono::steady_clock::now();
    const auto expired = [&] {
        if (durationSecs == 0)
            return false;
        return std::chrono::steady_clock::now() - start >=
               std::chrono::seconds(durationSecs);
    };

    std::uint64_t ran = 0;
    std::uint64_t failed = 0;
    std::vector<std::uint64_t> failingSeeds;
    std::size_t cursor = 0;
    std::uint64_t nextFresh = firstSeed + seeds;

    while (cursor < schedule.size() || (durationSecs > 0 && !expired())) {
        std::vector<sys::Scenario> scenarios;
        while (scenarios.size() < batch) {
            std::uint64_t seed;
            if (cursor < schedule.size()) {
                seed = schedule[cursor++];
            } else if (durationSecs > 0) {
                seed = nextFresh++;
            } else {
                break;
            }
            scenarios.push_back(sys::makeScenario(seed, pinned));
        }
        if (scenarios.empty())
            break;

        const auto verdicts = sys::runFuzzBatch(scenarios, options);
        for (const auto &v : verdicts) {
            ++ran;
            if (v.ok())
                continue;
            ++failed;
            failingSeeds.push_back(v.scenario.seed);
            printFailure(v);
        }
        if (!quiet)
            std::printf("fuzz: %llu scenarios, %llu failed\n",
                        static_cast<unsigned long long>(ran),
                        static_cast<unsigned long long>(failed));
        if (durationSecs > 0 && expired() && cursor >= schedule.size())
            break;
    }

    if (shrink)
        for (const std::uint64_t seed : failingSeeds)
            shrinkSeed(seed, pinned, options);

    return failed == 0 ? 0 : 1;
}
