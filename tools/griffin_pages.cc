/**
 * @file
 * griffin-pages: query the page-lifecycle telemetry of a JSON run
 * report (written by a bench with --page-stats / --timeseries=TICKS).
 *
 *   griffin-pages summarize REPORT.json [--run=LABEL] [--csv]
 *   griffin-pages top       REPORT.json [--run=LABEL] [--n=N]
 *                           [--by=migrations|churn] [--csv]
 *   griffin-pages churn     REPORT.json [--run=LABEL] [--csv]
 *
 * summarize: per-run event totals, churn counts, reuse-distance
 * percentiles and (when present) the time-series peaks.
 * top:       the hot-page table (most-migrated pages), or the
 *            thrashing table with --by=churn.
 * churn:     churn-focused view: churn events/pages per run plus the
 *            full thrashing table with residency timelines.
 *
 * --run=LABEL restricts to one run (default: all runs in the report).
 * --csv emits the table as CSV instead of aligned text.
 *
 * Exit status: 0 OK, 1 the selected runs carry no page_stats section
 * (the bench ran without --page-stats), 2 usage / IO / parse error.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hh"
#include "src/sys/report.hh"

namespace {

using griffin::obs::json::Value;

std::optional<Value>
loadReport(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::cerr << "griffin-pages: cannot open " << path << "\n";
        return std::nullopt;
    }
    std::ostringstream text;
    text << is.rdbuf();
    auto doc = Value::parse(text.str());
    if (!doc)
        std::cerr << "griffin-pages: " << path << ": parse error\n";
    return doc;
}

void
usage()
{
    std::cerr
        << "usage: griffin-pages COMMAND REPORT.json [options]\n"
           "  summarize  per-run page-stats digest (+ timeseries peaks)\n"
           "  top        hot-page table [--n=N] [--by=migrations|churn]\n"
           "  churn      churn counts and the thrashing table\n"
           "options: --run=LABEL  --n=N  --by=migrations|churn  --csv\n";
}

/** The runs of a report document as (label, run) pairs. */
std::vector<std::pair<std::string, const Value *>>
runsOf(const Value &doc)
{
    std::vector<std::pair<std::string, const Value *>> out;
    const Value *runs = doc.find("runs");
    if (!runs) {
        if (doc.find("label")) // bare single-run object
            out.emplace_back(doc.find("label")->asString(), &doc);
        return out;
    }
    for (std::size_t i = 0; i < runs->size(); ++i) {
        const Value &run = runs->at(i);
        const Value *label = run.find("label");
        out.emplace_back(label ? label->asString()
                               : "run" + std::to_string(i),
                         &run);
    }
    return out;
}

double
numberAt(const Value &obj, const char *key)
{
    const Value *v = obj.find(key);
    return v ? v->asNumber() : 0.0;
}

std::string
u64(double v)
{
    return std::to_string(std::uint64_t(v));
}

/** The residency timeline as "t:dev > t:dev > ..." (capped). */
std::string
residencyString(const Value &tp)
{
    const Value *res = tp.find("residency");
    if (!res || res->kind() != Value::Kind::Array)
        return "";
    std::string out;
    constexpr std::size_t maxHops = 6;
    const std::size_t n = res->size();
    for (std::size_t i = 0; i < n && i < maxHops; ++i) {
        const Value &hop = res->at(i);
        if (hop.size() != 2)
            continue;
        if (!out.empty())
            out += " > ";
        out += u64(hop.at(0).asNumber()) + ":" +
               u64(hop.at(1).asNumber());
    }
    if (n > maxHops)
        out += " > ... (" + std::to_string(n) + " hops)";
    return out;
}

void
addTopPageRows(griffin::sys::Table &table, const std::string &label,
               const Value &pages, unsigned n)
{
    for (std::size_t i = 0; i < pages.size() && i < n; ++i) {
        const Value &tp = pages.at(i);
        table.addRow({label, u64(numberAt(tp, "page")),
                      u64(numberAt(tp, "migrations")),
                      u64(numberAt(tp, "churn")),
                      u64(numberAt(tp, "denials")),
                      u64(numberAt(tp, "last_location")),
                      residencyString(tp)});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace griffin;

    std::string command;
    std::string reportFile;
    std::string runLabel;
    std::string by = "migrations";
    unsigned topN = 0; // 0 = the report's own top-N
    bool csv = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg.rfind("--run=", 0) == 0) {
            runLabel = arg.substr(6);
        } else if (arg.rfind("--n=", 0) == 0) {
            topN = unsigned(std::strtoul(arg.substr(4).c_str(),
                                         nullptr, 10));
            if (topN == 0) {
                std::cerr << "griffin-pages: bad --n value\n";
                return 2;
            }
        } else if (arg.rfind("--by=", 0) == 0) {
            by = arg.substr(5);
            if (by != "migrations" && by != "churn") {
                std::cerr << "griffin-pages: --by must be migrations"
                             " or churn\n";
                return 2;
            }
        } else if (arg == "--csv") {
            csv = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "griffin-pages: unknown flag " << arg << "\n";
            usage();
            return 2;
        } else if (command.empty()) {
            command = arg;
        } else if (reportFile.empty()) {
            reportFile = arg;
        } else {
            usage();
            return 2;
        }
    }

    if (reportFile.empty() ||
        (command != "summarize" && command != "top" &&
         command != "churn")) {
        usage();
        return 2;
    }

    const auto doc = loadReport(reportFile);
    if (!doc)
        return 2;

    const Value *schema = doc->find("schema_version");
    const std::uint64_t version =
        schema ? std::uint64_t(schema->asNumber()) : 1;
    if (version != sys::reportSchemaVersion) {
        std::cerr << "griffin-pages: warning: report schema_version "
                  << version << " != expected "
                  << sys::reportSchemaVersion << "\n";
    }

    auto runs = runsOf(*doc);
    if (runs.empty()) {
        std::cerr << "griffin-pages: no runs in " << reportFile << "\n";
        return 2;
    }
    if (!runLabel.empty()) {
        std::erase_if(runs, [&](const auto &r) {
            return r.first != runLabel;
        });
        if (runs.empty()) {
            std::cerr << "griffin-pages: no run labelled \"" << runLabel
                      << "\" in " << reportFile << "\n";
            return 2;
        }
    }

    // Every selected run must carry telemetry: a gate-style consumer
    // pointing this tool at a --page-stats-less report should notice.
    std::size_t withStats = 0;
    for (const auto &[label, run] : runs)
        withStats += run->find("page_stats") != nullptr;
    if (withStats == 0) {
        std::cerr << "griffin-pages: no page_stats section in the"
                     " selected runs (re-run the bench with"
                     " --page-stats)\n";
        return 1;
    }

    if (command == "summarize") {
        sys::Table table({"run", "pages", "migrated", "commits",
                          "churn", "churn_pages", "max_one_page",
                          "reuse_p50", "reuse_p95", "peak_migr/ival"});
        for (const auto &[label, run] : runs) {
            const Value *ps = run->find("page_stats");
            if (!ps)
                continue;
            const Value *reuse = ps->find("reuse_distance");
            std::string peak = "-";
            if (const Value *ts = run->find("timeseries")) {
                if (const Value *pk = ts->find("peak"))
                    peak = u64(numberAt(*pk, "migrations"));
            }
            table.addRow(
                {label, u64(numberAt(*ps, "pages_tracked")),
                 u64(numberAt(*ps, "pages_migrated")),
                 u64(numberAt(*ps, "total_migrations")),
                 u64(numberAt(*ps, "churn_events")),
                 u64(numberAt(*ps, "churn_pages")),
                 u64(numberAt(*ps, "max_migrations_one_page")),
                 reuse ? sys::Table::num(numberAt(*reuse, "p50"), 0)
                       : "-",
                 reuse ? sys::Table::num(numberAt(*reuse, "p95"), 0)
                       : "-",
                 peak});
        }
        std::cout << (csv ? table.csv() : table.str());
        return 0;
    }

    const char *section =
        command == "churn" || by == "churn" ? "thrashing_pages"
                                            : "hot_pages";
    if (command == "churn") {
        sys::Table counts({"run", "churn_events", "churn_pages",
                           "churn_window"});
        for (const auto &[label, run] : runs) {
            const Value *ps = run->find("page_stats");
            if (!ps)
                continue;
            counts.addRow({label, u64(numberAt(*ps, "churn_events")),
                           u64(numberAt(*ps, "churn_pages")),
                           u64(numberAt(*ps, "churn_window"))});
        }
        std::cout << (csv ? counts.csv() : counts.str());
        if (!csv)
            std::cout << "\n";
    }

    sys::Table table({"run", "page", "migrations", "churn", "denials",
                      "last_loc", "residency"});
    for (const auto &[label, run] : runs) {
        const Value *ps = run->find("page_stats");
        if (!ps)
            continue;
        const Value *pages = ps->find(section);
        if (!pages || pages->kind() != Value::Kind::Array)
            continue;
        const unsigned n =
            topN ? topN : unsigned(numberAt(*ps, "top_n"));
        addTopPageRows(table, label, *pages, n ? n : 16);
    }
    std::cout << (csv ? table.csv() : table.str());
    return 0;
}
