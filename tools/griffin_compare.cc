/**
 * @file
 * griffin-compare: diff two JSON run reports and gate on regressions.
 *
 *   griffin-compare REF.json CUR.json
 *       [--fail-on METRIC:[+|-]P%]... [--warn-on METRIC:[+|-]P%]...
 *       [--verdict=FILE] [--csv] [--quiet]
 *
 * --warn-on thresholds report a breach as a warning without failing
 * the gate (host-time metrics like host_events_per_sec are warn-only
 * even under --fail-on). --csv renders the checks as RFC-4180 CSV
 * instead of the aligned text (drift stays on stdout as text).
 *
 * Exit status: 0 every check passed, 1 a check or run matching
 * failed, 2 usage / IO / parse error or an invalid comparison (e.g.
 * duplicate run labels in a report — there is no way to tell which
 * pair was compared). With no --fail-on, the tool only prints drift
 * (and still fails on mismatched run sets).
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hh"
#include "src/sys/compare.hh"
#include "src/sys/report.hh"

namespace {

std::optional<griffin::obs::json::Value>
loadReport(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::cerr << "griffin-compare: cannot open " << path << "\n";
        return std::nullopt;
    }
    std::ostringstream text;
    text << is.rdbuf();
    auto doc = griffin::obs::json::Value::parse(text.str());
    if (!doc)
        std::cerr << "griffin-compare: " << path << ": parse error\n";
    return doc;
}

void
usage()
{
    std::cerr << "usage: griffin-compare REF.json CUR.json"
                 " [--fail-on METRIC:[+|-]P%]..."
                 " [--warn-on METRIC:[+|-]P%]..."
                 " [--verdict=FILE] [--csv] [--quiet]\n"
                 "  e.g. griffin-compare ref.json cur.json"
                 " --fail-on fault_p95:+5% --fail-on cycles:+3%\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace griffin;

    std::vector<std::string> files;
    std::vector<sys::Threshold> thresholds;
    std::string verdictFile;
    bool quiet = false;
    bool csv = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string spec;
        bool warn_only = false;
        if (arg == "--fail-on" && i + 1 < argc) {
            spec = argv[++i];
        } else if (arg.rfind("--fail-on=", 0) == 0) {
            spec = arg.substr(10);
        } else if (arg == "--warn-on" && i + 1 < argc) {
            spec = argv[++i];
            warn_only = true;
        } else if (arg.rfind("--warn-on=", 0) == 0) {
            spec = arg.substr(10);
            warn_only = true;
        } else if (arg == "--csv") {
            csv = true;
            continue;
        } else if (arg.rfind("--verdict=", 0) == 0) {
            verdictFile = arg.substr(10);
            continue;
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
            continue;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "griffin-compare: unknown flag " << arg << "\n";
            usage();
            return 2;
        } else {
            files.push_back(arg);
            continue;
        }
        auto t = sys::parseThreshold(spec);
        if (!t) {
            std::cerr << "griffin-compare: bad threshold \"" << spec
                      << "\" (want METRIC:[+|-]P%)\n";
            return 2;
        }
        t->warnOnly = warn_only;
        thresholds.push_back(std::move(*t));
    }

    if (files.size() != 2) {
        usage();
        return 2;
    }

    const auto ref = loadReport(files[0]);
    const auto cur = loadReport(files[1]);
    if (!ref || !cur)
        return 2;

    const sys::CompareResult result =
        sys::compareReports(*ref, *cur, thresholds);

    if (!verdictFile.empty()) {
        std::ofstream os(verdictFile);
        if (!os) {
            std::cerr << "griffin-compare: cannot write " << verdictFile
                      << "\n";
            return 2;
        }
        os << result.verdictJson().dump(2) << "\n";
    }

    if (!quiet) {
        for (const std::string &e : result.errors)
            std::cout << "ERROR  " << e << "\n";
        for (const std::string &w : result.warnings)
            std::cout << "WARN   " << w << "\n";
        const auto status = [](const sys::CheckResult &c) {
            return c.warnedOnly ? "WARN" : c.ok ? "ok" : "FAIL";
        };
        if (csv) {
            sys::Table table({"status", "run", "metric", "ref", "cur",
                              "deltaPct"});
            for (const auto &c : result.checks) {
                if (!c.note.empty()) {
                    table.addRow({status(c), c.run, c.metric, "", "",
                                  c.note});
                    continue;
                }
                table.addRow({status(c), c.run, c.metric,
                              sys::Table::num(c.ref, 6),
                              sys::Table::num(c.cur, 6),
                              sys::Table::num(c.deltaPct, 2)});
            }
            std::cout << table.csv();
        } else {
            for (const auto &c : result.checks) {
                if (!c.note.empty()) {
                    std::printf("%-6s %-24s %-14s %s\n", status(c),
                                c.run.c_str(), c.metric.c_str(),
                                c.note.c_str());
                    continue;
                }
                std::printf(
                    "%-6s %-24s %-14s %14.6g -> %-14.6g %+.2f%%\n",
                    status(c), c.run.c_str(), c.metric.c_str(), c.ref,
                    c.cur, c.deltaPct);
            }
        }
        if (!result.drifts.empty()) {
            std::cout << "drift (largest " << result.drifts.size()
                      << " changes, informational):\n";
            for (const auto &d : result.drifts) {
                std::printf("       %-24s %-38s %14.6g -> %-14.6g"
                            " %+.2f%%\n",
                            d.run.c_str(), d.path.c_str(), d.ref, d.cur,
                            d.deltaPct);
            }
        }
        std::cout << (result.fatal ? "FATAL"
                                   : result.pass ? "PASS" : "FAIL")
                  << "\n";
    }

    if (result.fatal)
        return 2;
    return result.pass ? 0 : 1;
}
