/**
 * @file
 * griffin-prof: query the host-side self-profile of a JSON run report
 * (written by a bench with --host-prof).
 *
 *   griffin-prof summarize REPORT.json [--run=LABEL] [--csv]
 *   griffin-prof top       REPORT.json [--run=LABEL] [--n=N] [--csv]
 *   griffin-prof folded    REPORT.json [--run=LABEL]
 *
 * summarize: per-run dispatch counts, host wall/dispatch time,
 *            throughput, attribution coverage and telemetry overhead,
 *            plus an aggregate TOTAL row when several runs match.
 * top:       the hottest (component;event) buckets by self time, with
 *            each bucket's share of total dispatch time.
 * folded:    the merged folded stacks ("component;event self_ns" per
 *            line) of the selected runs — pipe into flamegraph.pl or
 *            import into speedscope.
 *
 * --run=LABEL restricts to one run (default: all runs in the report).
 * --csv emits the table as CSV instead of aligned text.
 *
 * Host times are wall-clock and therefore machine-dependent; only the
 * bucket names and dispatch counts are deterministic. Comparing two
 * reports' host numbers is what griffin-compare's warn-only
 * host_profile.host handling is for — this tool just displays them.
 *
 * Exit status: 0 OK, 1 the selected runs carry no host_profile section
 * (the bench ran without --host-prof), 2 usage / IO / parse error.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/hostprof.hh"
#include "src/obs/json.hh"
#include "src/sys/report.hh"

namespace {

using griffin::obs::HostProfile;
using griffin::obs::json::Value;

std::optional<Value>
loadReport(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::cerr << "griffin-prof: cannot open " << path << "\n";
        return std::nullopt;
    }
    std::ostringstream text;
    text << is.rdbuf();
    auto doc = Value::parse(text.str());
    if (!doc)
        std::cerr << "griffin-prof: " << path << ": parse error\n";
    return doc;
}

void
usage()
{
    std::cerr
        << "usage: griffin-prof COMMAND REPORT.json [options]\n"
           "  summarize  per-run host-time digest (+ TOTAL row)\n"
           "  top        hottest component;event buckets [--n=N]\n"
           "  folded     merged folded stacks for flamegraph tools\n"
           "options: --run=LABEL  --n=N  --csv\n";
}

/** The runs of a report document as (label, run) pairs. */
std::vector<std::pair<std::string, const Value *>>
runsOf(const Value &doc)
{
    std::vector<std::pair<std::string, const Value *>> out;
    const Value *runs = doc.find("runs");
    if (!runs) {
        if (doc.find("label")) // bare single-run object
            out.emplace_back(doc.find("label")->asString(), &doc);
        return out;
    }
    for (std::size_t i = 0; i < runs->size(); ++i) {
        const Value &run = runs->at(i);
        const Value *label = run.find("label");
        out.emplace_back(label ? label->asString()
                               : "run" + std::to_string(i),
                         &run);
    }
    return out;
}

std::string
ms(std::uint64_t ns)
{
    return griffin::sys::Table::num(double(ns) / 1e6, 2);
}

void
addSummaryRow(griffin::sys::Table &table, const std::string &label,
              const HostProfile &p)
{
    using griffin::sys::Table;
    table.addRow({label, std::to_string(p.events), ms(p.wallNs),
                  ms(p.dispatchNs),
                  Table::num(p.eventsPerSec() / 1e6, 2),
                  Table::num(p.attributedFraction() * 100.0, 1),
                  Table::num(p.obsFraction() * 100.0, 1)});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace griffin;

    std::string command;
    std::string reportFile;
    std::string runLabel;
    unsigned topN = 10;
    bool csv = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg.rfind("--run=", 0) == 0) {
            runLabel = arg.substr(6);
        } else if (arg.rfind("--n=", 0) == 0) {
            topN = unsigned(std::strtoul(arg.substr(4).c_str(),
                                         nullptr, 10));
            if (topN == 0) {
                std::cerr << "griffin-prof: bad --n value\n";
                return 2;
            }
        } else if (arg == "--csv") {
            csv = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "griffin-prof: unknown flag " << arg << "\n";
            usage();
            return 2;
        } else if (command.empty()) {
            command = arg;
        } else if (reportFile.empty()) {
            reportFile = arg;
        } else {
            usage();
            return 2;
        }
    }

    if (reportFile.empty() ||
        (command != "summarize" && command != "top" &&
         command != "folded")) {
        usage();
        return 2;
    }

    const auto doc = loadReport(reportFile);
    if (!doc)
        return 2;

    const Value *schema = doc->find("schema_version");
    const std::uint64_t version =
        schema ? std::uint64_t(schema->asNumber()) : 1;
    if (!sys::knownReportSchemaVersion(version)) {
        std::cerr << "griffin-prof: warning: report schema_version "
                  << version << " > known "
                  << sys::reportSchemaVersion << "\n";
    }

    auto runs = runsOf(*doc);
    if (runs.empty()) {
        std::cerr << "griffin-prof: no runs in " << reportFile << "\n";
        return 2;
    }
    if (!runLabel.empty()) {
        std::erase_if(runs, [&](const auto &r) {
            return r.first != runLabel;
        });
        if (runs.empty()) {
            std::cerr << "griffin-prof: no run labelled \"" << runLabel
                      << "\" in " << reportFile << "\n";
            return 2;
        }
    }

    // Parse every selected run's host_profile up front; a consumer
    // pointing this tool at an unprofiled report should notice.
    std::vector<std::pair<std::string, HostProfile>> profiles;
    for (const auto &[label, run] : runs) {
        const Value *hp = run->find("host_profile");
        if (!hp)
            continue;
        auto profile = sys::hostProfileFromJson(*hp);
        if (!profile) {
            std::cerr << "griffin-prof: run \"" << label
                      << "\": malformed host_profile section\n";
            return 2;
        }
        profiles.emplace_back(label, std::move(*profile));
    }
    if (profiles.empty()) {
        std::cerr << "griffin-prof: no host_profile section in the"
                     " selected runs (re-run the bench with"
                     " --host-prof)\n";
        return 1;
    }

    if (command == "summarize") {
        sys::Table table({"run", "dispatches", "wall_ms",
                          "dispatch_ms", "Mevents/s", "attributed%",
                          "obs%"});
        HostProfile total;
        for (const auto &[label, p] : profiles) {
            addSummaryRow(table, label, p);
            total.merge(p);
        }
        if (profiles.size() > 1)
            addSummaryRow(table, "TOTAL", total);
        std::cout << (csv ? table.csv() : table.str());
        return 0;
    }

    if (command == "top") {
        sys::Table table({"run", "bucket", "count", "self_ms",
                          "share%"});
        for (const auto &[label, p] : profiles) {
            std::vector<HostProfile::Bucket> top = p.buckets;
            std::sort(top.begin(), top.end(),
                      [](const auto &a, const auto &b) {
                          return a.selfNs != b.selfNs
                                     ? a.selfNs > b.selfNs
                                     : a.name() < b.name();
                      });
            if (top.size() > topN)
                top.resize(topN);
            for (const auto &b : top) {
                const double share =
                    p.dispatchNs > 0
                        ? double(b.selfNs) / double(p.dispatchNs)
                        : 0.0;
                table.addRow({label, b.name(), std::to_string(b.count),
                              ms(b.selfNs),
                              sys::Table::num(share * 100.0, 1)});
            }
        }
        std::cout << (csv ? table.csv() : table.str());
        return 0;
    }

    // folded: one merged profile so repeated buckets across runs
    // collapse into single lines, as flamegraph tooling expects.
    HostProfile total;
    for (const auto &[label, p] : profiles)
        total.merge(p);
    std::cout << total.folded();
    return 0;
}
