/**
 * @file
 * Unit tests for the periodic sampler: deterministic row counts, probe
 * evaluation, CSV shape, hook deregistration.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/obs/sampler.hh"
#include "src/sim/engine.hh"

using griffin::Tick;
using griffin::obs::Sampler;
using griffin::sim::Engine;

TEST(Sampler, RowCountIsDeterministicForAFixedRun)
{
    Engine e;
    Sampler s;
    s.add("const", [] { return 1.0; });
    s.start(e, 100);
    e.schedule(350, [] {});
    e.run();
    // One row at start() plus boundaries 100, 200, 300:
    // 1 + floor(350 / 100) = 4.
    ASSERT_EQ(s.rows().size(), 4u);
    EXPECT_EQ(s.rows()[0].tick, 0u);
    EXPECT_EQ(s.rows()[1].tick, 100u);
    EXPECT_EQ(s.rows()[2].tick, 200u);
    EXPECT_EQ(s.rows()[3].tick, 300u);
}

TEST(Sampler, SamplingNeverExtendsTheRun)
{
    Engine e;
    Sampler s;
    s.add("x", [] { return 0.0; });
    s.start(e, 1000);
    e.schedule(42, [] {});
    EXPECT_EQ(e.run(), 42u);
    EXPECT_EQ(s.rows().size(), 1u); // only the initial sample
}

TEST(Sampler, ProbesSeeLiveState)
{
    Engine e;
    int value = 0;
    Sampler s;
    s.add("v", [&] { return double(value); });
    s.start(e, 10);
    e.schedule(5, [&] { value = 7; });
    e.schedule(15, [&] { value = 9; });
    e.run();
    // Rows at 0 (start), 10 (between the events), and... the run ends
    // at 15, so boundary 20 never fires.
    ASSERT_EQ(s.rows().size(), 2u);
    EXPECT_DOUBLE_EQ(s.rows()[0].values[0], 0.0);
    EXPECT_DOUBLE_EQ(s.rows()[1].values[0], 7.0);
}

TEST(Sampler, StopDeregistersFromTheEngine)
{
    Engine e;
    Sampler s;
    s.add("x", [] { return 1.0; });
    s.start(e, 10);
    s.stop();
    e.schedule(100, [] {});
    e.run();
    EXPECT_EQ(s.rows().size(), 1u); // the immediate start() sample only
}

TEST(Sampler, CsvHasHeaderAndOneLinePerRow)
{
    Engine e;
    Sampler s;
    s.add("alpha", [] { return 1.5; });
    s.add("beta", [] { return 2.0; });
    s.start(e, 50);
    e.schedule(60, [] {});
    e.run();

    const std::string csv = s.csv();
    EXPECT_EQ(csv.rfind("tick,alpha,beta\n", 0), 0u);
    // Header + 2 rows = 3 newline-terminated lines.
    std::size_t lines = 0;
    for (const char c : csv)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 3u);
}

TEST(Sampler, StopFlushesTheFinalPartialInterval)
{
    Engine e;
    Sampler s;
    s.add("const", [] { return 1.0; });
    s.start(e, 100);
    e.schedule(350, [] {});
    e.run();
    s.stop();
    // Boundary rows 0, 100, 200, 300 plus the final partial row the
    // stop() takes at the end time: nothing after the last boundary
    // is dropped.
    ASSERT_EQ(s.rows().size(), 5u);
    EXPECT_EQ(s.rows()[3].tick, 300u);
    EXPECT_EQ(s.rows()[4].tick, 350u);
}

TEST(Sampler, StopAtABoundaryDoesNotDuplicateTheLastRow)
{
    Engine e;
    Sampler s;
    s.add("const", [] { return 1.0; });
    s.start(e, 100);
    e.schedule(300, [] {});
    e.run();
    s.stop();
    // The run ended exactly on boundary 300, which already sampled:
    // the stop() flush must not record tick 300 twice.
    ASSERT_EQ(s.rows().size(), 4u);
    EXPECT_EQ(s.rows()[3].tick, 300u);
}

TEST(Sampler, MultipleSamplersCoexist)
{
    Engine e;
    Sampler a, b;
    a.add("x", [] { return 1.0; });
    b.add("y", [] { return 2.0; });
    a.start(e, 10);
    b.start(e, 25);
    e.schedule(50, [] {});
    e.run();
    EXPECT_EQ(a.rows().size(), 6u); // 0, 10, 20, 30, 40, 50
    EXPECT_EQ(b.rows().size(), 3u); // 0, 25, 50
}
