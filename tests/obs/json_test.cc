/**
 * @file
 * Unit tests for the JSON document model: building, serialization,
 * strict parsing, round-trips.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/obs/json.hh"

using griffin::obs::json::Value;
using griffin::obs::json::escape;

TEST(Json, ScalarDump)
{
    EXPECT_EQ(Value().dump(), "null");
    EXPECT_EQ(Value(true).dump(), "true");
    EXPECT_EQ(Value(false).dump(), "false");
    EXPECT_EQ(Value(42).dump(), "42");
    EXPECT_EQ(Value(2.5).dump(), "2.5");
    EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersDumpWithoutFraction)
{
    EXPECT_EQ(Value(std::uint64_t(1000000)).dump(), "1000000");
    EXPECT_EQ(Value(-3).dump(), "-3");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Value v = Value::object();
    v["zeta"] = 1;
    v["alpha"] = 2;
    EXPECT_EQ(v.dump(), "{\"zeta\":1,\"alpha\":2}");
}

TEST(Json, ArrayPushAndAt)
{
    Value v = Value::array();
    v.push(1);
    v.push("two");
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v.at(0).asNumber(), 1.0);
    EXPECT_EQ(v.at(1).asString(), "two");
    EXPECT_EQ(v.dump(), "[1,\"two\"]");
}

TEST(Json, EscapeControlAndSpecialCharacters)
{
    EXPECT_EQ(escape("a\"b"), "a\\\"b");
    EXPECT_EQ(escape("a\\b"), "a\\\\b");
    EXPECT_EQ(escape("a\nb"), "a\\nb");
    // Split the literal so 'b' is not swallowed by the hex escape.
    EXPECT_EQ(escape(std::string("a\x01"
                                 "b")),
              "a\\u0001b");
}

TEST(Json, ParseRoundTripsADocument)
{
    Value v = Value::object();
    v["name"] = "run";
    v["cycles"] = std::uint64_t(123456);
    v["ratio"] = 0.5;
    v["ok"] = true;
    Value arr = Value::array();
    arr.push(1);
    arr.push(2);
    v["list"] = std::move(arr);

    const auto parsed = Value::parse(v.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("name")->asString(), "run");
    EXPECT_DOUBLE_EQ(parsed->find("cycles")->asNumber(), 123456.0);
    EXPECT_DOUBLE_EQ(parsed->find("ratio")->asNumber(), 0.5);
    EXPECT_TRUE(parsed->find("ok")->asBool());
    ASSERT_NE(parsed->find("list"), nullptr);
    EXPECT_EQ(parsed->find("list")->size(), 2u);
    // The re-dump is byte-identical: objects keep insertion order.
    EXPECT_EQ(parsed->dump(), v.dump());
}

TEST(Json, ParsePrettyPrintedOutput)
{
    Value v = Value::object();
    v["a"] = 1;
    Value inner = Value::object();
    inner["b"] = Value::array();
    v["nested"] = std::move(inner);
    const auto parsed = Value::parse(v.dump(2));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->find("a")->asNumber(), 1.0);
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(Value::parse("").has_value());
    EXPECT_FALSE(Value::parse("{").has_value());
    EXPECT_FALSE(Value::parse("[1,]").has_value());
    EXPECT_FALSE(Value::parse("{\"a\":1,}").has_value());
    EXPECT_FALSE(Value::parse("{'a':1}").has_value());
    EXPECT_FALSE(Value::parse("nul").has_value());
    EXPECT_FALSE(Value::parse("1 2").has_value()); // trailing garbage
    EXPECT_FALSE(Value::parse("\"unterminated").has_value());
}

TEST(Json, ParseAcceptsNumbersInAllForms)
{
    EXPECT_DOUBLE_EQ(Value::parse("-0.5")->asNumber(), -0.5);
    EXPECT_DOUBLE_EQ(Value::parse("1e3")->asNumber(), 1000.0);
    EXPECT_DOUBLE_EQ(Value::parse("2.5E-1")->asNumber(), 0.25);
}

TEST(Json, FindOnMissingKeyIsNull)
{
    Value v = Value::object();
    v["present"] = 1;
    EXPECT_EQ(v.find("absent"), nullptr);
    EXPECT_NE(v.find("present"), nullptr);
}
