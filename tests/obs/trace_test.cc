/**
 * @file
 * Unit tests for the trace sink: attachment/guard semantics, category
 * gating, Chrome trace-event JSON shape, timestamp ordering.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hh"
#include "src/obs/metrics.hh"
#include "src/obs/trace.hh"

using namespace griffin;
using obs::CatDrain;
using obs::CatFault;
using obs::CatNet;
using obs::TraceArgs;
using obs::TraceSession;

TEST(TraceSession, NothingActiveByDefault)
{
    EXPECT_EQ(TraceSession::active(), nullptr);
    EXPECT_EQ(TraceSession::activeFor(CatFault), nullptr);
}

TEST(TraceSession, AttachDetachRestoresPrevious)
{
    TraceSession outer;
    outer.attach();
    EXPECT_EQ(TraceSession::active(), &outer);
    {
        TraceSession inner;
        inner.attach();
        EXPECT_EQ(TraceSession::active(), &inner);
        inner.detach();
    }
    EXPECT_EQ(TraceSession::active(), &outer);
    outer.detach();
    EXPECT_EQ(TraceSession::active(), nullptr);
}

TEST(TraceSession, DestructorDetaches)
{
    {
        TraceSession t;
        t.attach();
        EXPECT_NE(TraceSession::active(), nullptr);
    }
    EXPECT_EQ(TraceSession::active(), nullptr);
}

TEST(TraceSession, CategoryMaskGatesActiveFor)
{
    TraceSession t(CatFault | CatDrain);
    t.attach();
    EXPECT_EQ(TraceSession::activeFor(CatFault), &t);
    EXPECT_EQ(TraceSession::activeFor(CatDrain), &t);
    EXPECT_EQ(TraceSession::activeFor(CatNet), nullptr);
    t.detach();
}

TEST(TraceSession, DefaultCategoriesExcludeHotOnes)
{
    TraceSession t; // defaults
    t.attach();
    EXPECT_NE(TraceSession::activeFor(CatFault), nullptr);
    EXPECT_EQ(TraceSession::activeFor(CatNet), nullptr);
    EXPECT_EQ(TraceSession::activeFor(obs::CatDca), nullptr);
    t.detach();
}

TEST(TraceSession, JsonIsWellFormedAndComplete)
{
    TraceSession t;
    t.beginProcess("run-one");
    t.instant(CatFault, "driver", "page_fault", 100,
              TraceArgs().add("page", std::uint64_t(7)));
    t.complete(CatDrain, "gpu1", "acud_drain", 200, 450,
               TraceArgs().add("pages", 3u));
    t.counter(CatFault, "driver", "pending", 300, 5.0);

    const auto doc = obs::json::Value::parse(t.json());
    ASSERT_TRUE(doc.has_value()) << t.json();
    const auto *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);

    int instants = 0, completes = 0, counters = 0, metas = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const auto &e = events->at(i);
        const std::string ph = e.find("ph")->asString();
        if (ph == "i")
            ++instants;
        else if (ph == "X")
            ++completes;
        else if (ph == "C")
            ++counters;
        else if (ph == "M")
            ++metas;
    }
    EXPECT_EQ(instants, 1);
    EXPECT_EQ(completes, 1);
    EXPECT_EQ(counters, 1);
    // process_name for the run + thread_name per track (2 tracks).
    EXPECT_GE(metas, 3);
}

TEST(TraceSession, EventTimestampsAreMonotone)
{
    TraceSession t;
    t.beginProcess("run");
    // Emit out of order; serialization sorts.
    t.instant(CatFault, "a", "late", 500);
    t.instant(CatFault, "a", "early", 100);
    t.complete(CatFault, "b", "span", 200, 300);

    const auto doc = obs::json::Value::parse(t.json());
    ASSERT_TRUE(doc.has_value());
    const auto *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    double prev = -1.0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const auto &e = events->at(i);
        if (e.find("ph")->asString() == "M")
            continue; // metadata leads
        const double ts = e.find("ts")->asNumber();
        EXPECT_GE(ts, prev);
        prev = ts;
    }
}

TEST(TraceSession, CompleteEventCarriesDuration)
{
    TraceSession t;
    t.complete(CatFault, "x", "span", 100, 175);
    const auto doc = obs::json::Value::parse(t.json());
    ASSERT_TRUE(doc.has_value());
    const auto *events = doc->find("traceEvents");
    for (std::size_t i = 0; i < events->size(); ++i) {
        const auto &e = events->at(i);
        if (e.find("ph")->asString() != "X")
            continue;
        EXPECT_DOUBLE_EQ(e.find("ts")->asNumber(), 100.0);
        EXPECT_DOUBLE_EQ(e.find("dur")->asNumber(), 75.0);
        return;
    }
    FAIL() << "no complete event found";
}

TEST(TraceSession, ProcessesSeparateRuns)
{
    TraceSession t;
    t.beginProcess("first");
    t.instant(CatFault, "driver", "a", 1);
    t.beginProcess("second");
    t.instant(CatFault, "driver", "b", 2);

    const auto doc = obs::json::Value::parse(t.json());
    const auto *events = doc->find("traceEvents");
    double pid_a = -1, pid_b = -1;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const auto &e = events->at(i);
        if (e.find("ph")->asString() != "i")
            continue;
        if (e.find("name")->asString() == "a")
            pid_a = e.find("pid")->asNumber();
        if (e.find("name")->asString() == "b")
            pid_b = e.find("pid")->asNumber();
    }
    EXPECT_GE(pid_a, 0.0);
    EXPECT_GE(pid_b, 0.0);
    EXPECT_NE(pid_a, pid_b);
}

TEST(TraceSession, WriteMergedFoldsSessionsInSubmissionOrder)
{
    // Two per-run sessions merged into one document: pids renumbered
    // in session order, events interleaved by timestamp. The output
    // depends only on the session list, never on which thread (or in
    // which order) the sessions were filled — the property the bench
    // harness's --jobs byte-identity rests on.
    TraceSession a;
    a.beginProcess("MT/first-touch");
    a.instant(CatFault, "driver", "a1", 100);
    a.instant(CatFault, "driver", "a2", 300);

    TraceSession b;
    b.beginProcess("MT/griffin");
    b.instant(CatFault, "driver", "b1", 200);

    std::ostringstream ab;
    TraceSession::writeMerged(ab, {&a, &b});

    const auto doc = obs::json::Value::parse(ab.str());
    ASSERT_TRUE(doc.has_value()) << ab.str();
    const auto *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);

    // Metadata first (one process_name per session), then the three
    // instants in global timestamp order with distinct pids.
    std::vector<std::string> names;
    std::vector<double> pids;
    double prev_ts = -1.0;
    int process_metas = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const auto &e = events->at(i);
        if (e.find("ph")->asString() == "M") {
            if (e.find("name")->asString() == "process_name")
                ++process_metas;
            continue;
        }
        const double ts = e.find("ts")->asNumber();
        EXPECT_GE(ts, prev_ts);
        prev_ts = ts;
        names.push_back(e.find("name")->asString());
        pids.push_back(e.find("pid")->asNumber());
    }
    EXPECT_EQ(process_metas, 2);
    EXPECT_EQ(names, (std::vector<std::string>{"a1", "b1", "a2"}));
    ASSERT_EQ(pids.size(), 3u);
    EXPECT_EQ(pids[0], pids[2]); // both from session a
    EXPECT_NE(pids[0], pids[1]); // session b got its own pid
}

TEST(TraceSession, WriteMergedIsDeterministicAcrossCalls)
{
    TraceSession a, b;
    a.beginProcess("one");
    b.beginProcess("two");
    a.instant(CatFault, "x", "e1", 10);
    b.instant(CatFault, "x", "e2", 10); // same timestamp: stable order

    std::ostringstream first, second;
    TraceSession::writeMerged(first, {&a, &b});
    TraceSession::writeMerged(second, {&a, &b});
    EXPECT_EQ(first.str(), second.str());

    // Null sessions (skipped runs) are tolerated and ignored.
    std::ostringstream with_null;
    TraceSession::writeMerged(with_null, {&a, nullptr, &b});
    EXPECT_EQ(with_null.str(), first.str());
}

TEST(TraceSession, FlowEventsCarryIdAndBindingPoint)
{
    TraceSession t;
    t.beginProcess("run");
    t.flow(CatFault, "iommu", "fault", 100, 42,
           TraceSession::FlowPhase::Begin);
    t.flow(CatFault, "driver", "fault", 200, 42,
           TraceSession::FlowPhase::Step);
    t.flow(CatFault, "gpu1", "fault", 300, 42,
           TraceSession::FlowPhase::End);

    const auto doc = obs::json::Value::parse(t.json());
    ASSERT_TRUE(doc.has_value()) << t.json();
    const auto *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);

    int begins = 0, steps = 0, ends = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const auto &e = events->at(i);
        const std::string ph = e.find("ph")->asString();
        if (ph != "s" && ph != "t" && ph != "f")
            continue;
        // Flow arrows join on the id — the FaultId.
        ASSERT_NE(e.find("id"), nullptr);
        EXPECT_DOUBLE_EQ(e.find("id")->asNumber(), 42.0);
        EXPECT_EQ(e.find("name")->asString(), "fault");
        if (ph == "s") {
            ++begins;
            EXPECT_EQ(e.find("bp"), nullptr);
        } else {
            // Steps and ends bind to the enclosing slice.
            (ph == "t" ? ++steps : ++ends);
            ASSERT_NE(e.find("bp"), nullptr);
            EXPECT_EQ(e.find("bp")->asString(), "e");
        }
    }
    EXPECT_EQ(begins, 1);
    EXPECT_EQ(steps, 1);
    EXPECT_EQ(ends, 1);
}

TEST(TraceArgs, FormatsAllValueKinds)
{
    const std::string body = TraceArgs()
                                 .add("u", std::uint64_t(18446744073709551615ull))
                                 .add("d", 0.5)
                                 .add("s", "text")
                                 .json();
    EXPECT_NE(body.find("\"u\":18446744073709551615"), std::string::npos);
    EXPECT_NE(body.find("\"d\":0.5"), std::string::npos);
    EXPECT_NE(body.find("\"s\":\"text\""), std::string::npos);
}

TEST(Metrics, AttachDetachMirrorsTraceSession)
{
    EXPECT_EQ(obs::Metrics::active(), nullptr);
    {
        obs::Metrics m;
        m.attach();
        EXPECT_EQ(obs::Metrics::active(), &m);
        m.latency.faultLatency.sample(100.0);
        EXPECT_EQ(obs::Metrics::active()->latency.faultLatency.count(),
                  1u);
    }
    EXPECT_EQ(obs::Metrics::active(), nullptr);
}
