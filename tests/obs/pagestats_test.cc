/**
 * @file
 * Unit tests for the per-page lifecycle recorder: event accounting,
 * churn detection (window semantics), reuse distance, residency
 * timelines, deterministic top tables, and the attach discipline.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/obs/pagestats.hh"
#include "src/sim/engine.hh"

using griffin::DeviceId;
using griffin::PageId;
using griffin::Tick;
using griffin::cpuDeviceId;
using griffin::obs::PageEvent;
using griffin::obs::PageStats;
using griffin::obs::PageStatsConfig;
using griffin::obs::PageStatsSummary;
using griffin::obs::numPageEvents;
using griffin::obs::pageEventName;

TEST(PageStats, EventNamesAreStableSnakeCase)
{
    EXPECT_STREQ(pageEventName(PageEvent::FirstTouch), "first_touch");
    EXPECT_STREQ(pageEventName(PageEvent::DftmDenial), "dftm_denial");
    EXPECT_STREQ(pageEventName(PageEvent::MigrationCommit),
                 "migration_commit");
    EXPECT_STREQ(pageEventName(PageEvent::Recovery), "recovery");
    // Every enumerator has a distinct name (a switch fell through if
    // two collide).
    for (unsigned a = 0; a < numPageEvents; ++a) {
        for (unsigned b = a + 1; b < numPageEvents; ++b) {
            EXPECT_STRNE(pageEventName(PageEvent(a)),
                         pageEventName(PageEvent(b)));
        }
    }
}

TEST(PageStats, StaticGuardsAreNoOpsWhenNothingIsAttached)
{
    ASSERT_EQ(PageStats::active(), nullptr);
    // Must not crash, must not touch any instance.
    PageStats::recordActive(PageEvent::MigrationCommit, 7, 0, 1, 100);
    PageStats::recordActiveNow(PageEvent::FirstTouch, 7, 0, 1);
    ASSERT_EQ(PageStats::active(), nullptr);
}

TEST(PageStats, CountsEventsGloballyAndPerPage)
{
    PageStats ps;
    ps.attach();
    PageStats::recordActive(PageEvent::FirstTouch, 1, cpuDeviceId, 1, 10);
    PageStats::recordActive(PageEvent::FirstTouch, 2, cpuDeviceId, 2, 20);
    PageStats::recordActive(PageEvent::DftmDenial, 2, cpuDeviceId, 2, 20);
    ps.detach();

    EXPECT_EQ(ps.eventCount(PageEvent::FirstTouch), 2u);
    EXPECT_EQ(ps.eventCount(PageEvent::DftmDenial), 1u);
    EXPECT_EQ(ps.eventCount(PageEvent::MigrationCommit), 0u);
    EXPECT_EQ(ps.pagesTracked(), 2u);
}

TEST(PageStats, PingPongWithinTheWindowIsChurn)
{
    PageStatsConfig cfg;
    cfg.enabled = true;
    cfg.churnWindow = 1000;
    PageStats ps(cfg);
    ps.attach();
    // Page 5: CPU -> GPU1 -> GPU2 -> GPU1. The third commit returns
    // the page to GPU1, 100 ticks after it left GPU1: churn.
    PageStats::recordActive(PageEvent::MigrationCommit, 5, 0, 1, 100);
    PageStats::recordActive(PageEvent::MigrationCommit, 5, 1, 2, 200);
    EXPECT_EQ(ps.churnEvents(), 0u);
    PageStats::recordActive(PageEvent::MigrationCommit, 5, 2, 1, 300);
    ps.detach();

    EXPECT_EQ(ps.churnEvents(), 1u);
    EXPECT_EQ(ps.churnOf(5), 1u);
    EXPECT_EQ(ps.migrationsOf(5), 3u);
}

TEST(PageStats, ReturnOutsideTheWindowIsNotChurn)
{
    PageStatsConfig cfg;
    cfg.enabled = true;
    cfg.churnWindow = 50;
    PageStats ps(cfg);
    ps.attach();
    PageStats::recordActive(PageEvent::MigrationCommit, 5, 0, 1, 0);
    PageStats::recordActive(PageEvent::MigrationCommit, 5, 1, 2, 10);
    // Returns to GPU1 90 ticks after leaving it: outside the window.
    PageStats::recordActive(PageEvent::MigrationCommit, 5, 2, 1, 100);
    ps.detach();

    EXPECT_EQ(ps.churnEvents(), 0u);
    EXPECT_EQ(ps.churnOf(5), 0u);
}

TEST(PageStats, OneWayMigrationIsNeverChurn)
{
    PageStats ps;
    ps.attach();
    // A page marching forward never returns anywhere.
    PageStats::recordActive(PageEvent::MigrationCommit, 9, 0, 1, 10);
    PageStats::recordActive(PageEvent::MigrationCommit, 9, 1, 2, 20);
    PageStats::recordActive(PageEvent::MigrationCommit, 9, 2, 3, 30);
    ps.detach();
    EXPECT_EQ(ps.churnEvents(), 0u);
}

TEST(PageStats, ReuseDistanceSpansConsecutiveCommits)
{
    PageStats ps;
    ps.attach();
    PageStats::recordActive(PageEvent::MigrationCommit, 3, 0, 1, 100);
    PageStats::recordActive(PageEvent::MigrationCommit, 3, 1, 2, 400);
    ps.detach();

    const PageStatsSummary s = ps.summary();
    EXPECT_EQ(s.reuseDistance.count(), 1u);
    EXPECT_DOUBLE_EQ(s.reuseDistance.mean(), 300.0);
}

TEST(PageStats, ResidencyTimelineIsSeededWithTheFirstHome)
{
    PageStats ps;
    ps.attach();
    PageStats::recordActive(PageEvent::FirstTouch, 8, cpuDeviceId, 2, 50);
    PageStats::recordActive(PageEvent::MigrationCommit, 8, cpuDeviceId,
                            2, 120);
    PageStats::recordActive(PageEvent::MigrationCommit, 8, 2, 3, 500);
    ps.detach();

    const PageStatsSummary s = ps.summary();
    ASSERT_EQ(s.hotPages.size(), 1u);
    const auto &tp = s.hotPages[0];
    EXPECT_EQ(tp.page, 8u);
    EXPECT_EQ(tp.lastLocation, DeviceId(3));
    // Seed hop (first seen, at CPU), then the two commits.
    ASSERT_EQ(tp.residency.size(), 3u);
    EXPECT_EQ(tp.residency[0].at, Tick(50));
    EXPECT_EQ(tp.residency[0].device, cpuDeviceId);
    EXPECT_EQ(tp.residency[1].at, Tick(120));
    EXPECT_EQ(tp.residency[1].device, DeviceId(2));
    EXPECT_EQ(tp.residency[2].at, Tick(500));
    EXPECT_EQ(tp.residency[2].device, DeviceId(3));
}

TEST(PageStats, TopTablesAreSortedAndDeterministic)
{
    PageStatsConfig cfg;
    cfg.enabled = true;
    cfg.topN = 2;
    PageStats ps(cfg);
    ps.attach();
    // Page 10: 1 commit; page 11: 3 commits (1 churn); page 12: 2.
    PageStats::recordActive(PageEvent::MigrationCommit, 10, 0, 1, 10);
    PageStats::recordActive(PageEvent::MigrationCommit, 11, 0, 1, 10);
    PageStats::recordActive(PageEvent::MigrationCommit, 11, 1, 2, 20);
    PageStats::recordActive(PageEvent::MigrationCommit, 11, 2, 1, 30);
    PageStats::recordActive(PageEvent::MigrationCommit, 12, 0, 2, 10);
    PageStats::recordActive(PageEvent::MigrationCommit, 12, 2, 3, 20);
    ps.detach();

    const PageStatsSummary s = ps.summary();
    EXPECT_EQ(s.pagesMigrated, 3u);
    EXPECT_EQ(s.totalMigrations, 6u);
    EXPECT_EQ(s.maxMigrationsOnePage, 3u);
    EXPECT_EQ(s.churnEvents, 1u);
    EXPECT_EQ(s.churnPages, 1u);

    // Hot table: top-2 by migrations desc, page asc.
    ASSERT_EQ(s.hotPages.size(), 2u);
    EXPECT_EQ(s.hotPages[0].page, 11u);
    EXPECT_EQ(s.hotPages[1].page, 12u);

    // Thrashing table: only pages with churn > 0.
    ASSERT_EQ(s.thrashingPages.size(), 1u);
    EXPECT_EQ(s.thrashingPages[0].page, 11u);
    EXPECT_EQ(s.thrashingPages[0].churn, 1u);
}

TEST(PageStats, AttachNestsLifo)
{
    PageStats outer, inner;
    outer.attach();
    PageStats::recordActive(PageEvent::FirstTouch, 1, 0, 1, 5);
    inner.attach();
    EXPECT_EQ(PageStats::active(), &inner);
    PageStats::recordActive(PageEvent::FirstTouch, 2, 0, 1, 6);
    inner.detach();
    EXPECT_EQ(PageStats::active(), &outer);
    outer.detach();
    EXPECT_EQ(PageStats::active(), nullptr);

    EXPECT_EQ(outer.eventCount(PageEvent::FirstTouch), 1u);
    EXPECT_EQ(inner.eventCount(PageEvent::FirstTouch), 1u);
    EXPECT_EQ(outer.pagesTracked(), 1u);
    EXPECT_EQ(inner.pagesTracked(), 1u);
}

TEST(PageStats, RecordNowReadsTheInjectedClock)
{
    griffin::sim::Engine e;
    e.schedule(77, [] {});
    e.run();

    PageStats ps;
    ps.setClock(&e);
    ps.attach();
    PageStats::recordActiveNow(PageEvent::MigrationCommit, 4,
                               cpuDeviceId, 1);
    ps.detach();

    const PageStatsSummary s = ps.summary();
    ASSERT_EQ(s.hotPages.size(), 1u);
    ASSERT_EQ(s.hotPages[0].residency.size(), 2u);
    EXPECT_EQ(s.hotPages[0].residency[1].at, Tick(77));
}

TEST(PageStats, SummaryOfAnEmptyRecorderIsAllZero)
{
    PageStats ps;
    const PageStatsSummary s = ps.summary();
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.pagesTracked, 0u);
    EXPECT_EQ(s.pagesMigrated, 0u);
    EXPECT_EQ(s.churnEvents, 0u);
    EXPECT_TRUE(s.hotPages.empty());
    EXPECT_TRUE(s.thrashingPages.empty());
}
