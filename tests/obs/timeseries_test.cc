/**
 * @file
 * Unit tests for the interval time-series recorder: boundary rows,
 * the final partial flush, totals/row reconciliation, nearest-rank
 * fault percentiles, and the link-utilization probe.
 */

#include <gtest/gtest.h>

#include "src/obs/timeseries.hh"
#include "src/sim/engine.hh"

using griffin::Tick;
using griffin::obs::TimeSeries;
using griffin::sim::Engine;

using Series = TimeSeries::Series;

TEST(TimeSeries, StaticGuardsAreNoOpsWhenNothingIsAttached)
{
    ASSERT_EQ(TimeSeries::active(), nullptr);
    TimeSeries::countActive(Series::Migrations);
    TimeSeries::faultActive(42.0);
    ASSERT_EQ(TimeSeries::active(), nullptr);
}

TEST(TimeSeries, EventsLandInTheirIntervalRow)
{
    Engine e;
    TimeSeries ts(100);
    ts.attach();
    ts.start(e);
    e.schedule(10, [] { TimeSeries::countActive(Series::Migrations); });
    e.schedule(150, [] {
        TimeSeries::countActive(Series::DcaAccesses, 3);
    });
    e.schedule(250, [] { TimeSeries::countActive(Series::Shootdowns); });
    e.run();
    ts.stop();
    ts.detach();

    // Boundary rows [0,100) and [100,200), plus the final partial
    // [200,250) flushed by stop().
    ASSERT_EQ(ts.rows().size(), 3u);
    EXPECT_EQ(ts.rows()[0].begin, Tick(0));
    EXPECT_EQ(ts.rows()[0].end, Tick(100));
    EXPECT_EQ(ts.rows()[0].counts[unsigned(Series::Migrations)], 1u);
    EXPECT_EQ(ts.rows()[1].counts[unsigned(Series::DcaAccesses)], 3u);
    EXPECT_EQ(ts.rows()[2].begin, Tick(200));
    EXPECT_EQ(ts.rows()[2].end, Tick(250));
    EXPECT_EQ(ts.rows()[2].counts[unsigned(Series::Shootdowns)], 1u);
}

TEST(TimeSeries, TotalsReconcileWithTheRowSums)
{
    Engine e;
    TimeSeries ts(50);
    ts.attach();
    ts.start(e);
    for (Tick t = 5; t < 300; t += 7) {
        e.schedule(t, [] {
            TimeSeries::countActive(Series::Migrations);
            TimeSeries::faultActive(10.0);
        });
    }
    e.run();
    ts.stop();
    ts.detach();

    std::uint64_t migrations = 0, faults = 0;
    for (const auto &row : ts.rows()) {
        migrations += row.counts[unsigned(Series::Migrations)];
        faults += row.counts[unsigned(Series::Faults)];
    }
    EXPECT_EQ(ts.total(Series::Migrations), migrations);
    EXPECT_EQ(ts.total(Series::Faults), faults);
    EXPECT_EQ(migrations, 43u); // ceil((300 - 5) / 7)
    EXPECT_EQ(faults, 43u);
}

TEST(TimeSeries, StopIsIdempotent)
{
    Engine e;
    TimeSeries ts(100);
    ts.attach();
    ts.start(e);
    e.schedule(30, [] { TimeSeries::countActive(Series::Migrations); });
    e.run();
    ts.stop();
    const std::size_t rows = ts.rows().size();
    ts.stop(); // must not add another row
    ts.detach();
    EXPECT_EQ(ts.rows().size(), rows);
    EXPECT_EQ(ts.total(Series::Migrations), 1u);
}

TEST(TimeSeries, FaultPercentilesAreNearestRank)
{
    Engine e;
    TimeSeries ts(1000);
    ts.attach();
    ts.start(e);
    e.schedule(10, [] {
        for (int i = 1; i <= 20; ++i)
            TimeSeries::faultActive(double(i));
    });
    e.run();
    ts.stop();
    ts.detach();

    ASSERT_EQ(ts.rows().size(), 1u);
    const auto &row = ts.rows()[0];
    EXPECT_EQ(row.counts[unsigned(Series::Faults)], 20u);
    // Nearest rank over 20 samples: p50 -> 10th value, p95 -> 19th.
    EXPECT_DOUBLE_EQ(row.faultP50, 10.0);
    EXPECT_DOUBLE_EQ(row.faultP95, 19.0);
}

TEST(TimeSeries, LinkUtilIsTheMeanBusyFractionPerInterval)
{
    Engine e;
    double busy = 0.0;
    TimeSeries ts(100);
    ts.setLinkBusyProbe([&busy] { return busy; }, 2);
    ts.attach();
    ts.start(e);
    // 50 busy cycles land in the first interval; 2 wires over 100
    // ticks give 200 wire-ticks of capacity -> 0.25.
    e.schedule(40, [&busy] { busy += 50.0; });
    e.schedule(150, [] { TimeSeries::countActive(Series::Migrations); });
    e.run();
    ts.stop();
    ts.detach();

    ASSERT_GE(ts.rows().size(), 2u);
    EXPECT_DOUBLE_EQ(ts.rows()[0].linkUtil, 0.25);
    EXPECT_DOUBLE_EQ(ts.rows()[1].linkUtil, 0.0);
}

TEST(TimeSeries, SummaryCarriesTickRowsAndTotals)
{
    Engine e;
    TimeSeries ts(100);
    ts.attach();
    ts.start(e);
    e.schedule(10, [] { TimeSeries::countActive(Series::Migrations); });
    e.run();
    ts.stop();
    ts.detach();

    const TimeSeries::Summary s = ts.summary();
    EXPECT_EQ(s.tick, Tick(100));
    EXPECT_EQ(s.rows.size(), ts.rows().size());
    EXPECT_EQ(s.totals[unsigned(Series::Migrations)], 1u);
}
