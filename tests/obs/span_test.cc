/**
 * @file
 * Unit tests for the causal fault spans (obs/span.hh): sink
 * attachment, stage-mark ordering and clamping, critical-path
 * aggregation — and an integration rig proving a FaultId survives the
 * whole IOMMU -> driver -> CPMS batch -> PMC -> replay path with a
 * complete, monotone span tree and no orphans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/core/first_touch_policy.hh"
#include "src/driver/driver.hh"
#include "src/gpu/pmc.hh"
#include "src/mem/dram.hh"
#include "src/obs/span.hh"
#include "src/sim/engine.hh"
#include "src/xlat/iommu.hh"

using namespace griffin;
using obs::FaultSpans;
using obs::Stage;

TEST(FaultSpans, NothingActiveByDefault)
{
    EXPECT_EQ(FaultSpans::active(), nullptr);
    // Static guards are safe no-ops without a sink.
    FaultSpans::markActive(1, Stage::Walk, 100);
    FaultSpans::completeActive(1, 200);
}

TEST(FaultSpans, AttachDetachRestoresPrevious)
{
    FaultSpans outer;
    outer.attach();
    EXPECT_EQ(FaultSpans::active(), &outer);
    {
        FaultSpans inner;
        inner.attach();
        EXPECT_EQ(FaultSpans::active(), &inner);
        inner.detach();
    }
    EXPECT_EQ(FaultSpans::active(), &outer);
    outer.detach();
    EXPECT_EQ(FaultSpans::active(), nullptr);
}

TEST(FaultSpans, InvalidFaultIdIsIgnored)
{
    FaultSpans spans;
    spans.attach();
    FaultSpans::markActive(invalidFaultId, Stage::Walk, 50);
    FaultSpans::completeActive(invalidFaultId, 60);
    EXPECT_EQ(spans.faultsStarted(), 0u);
    EXPECT_EQ(spans.completedFaults().size(), 0u);
    spans.detach();
}

TEST(FaultSpans, CompleteFaultRecordsOrderedStages)
{
    FaultSpans spans;
    const FaultId fid = spans.beginFault(2, 77, 1000);
    ASSERT_NE(fid, invalidFaultId);
    spans.mark(fid, Stage::WalkQueue, 1050);
    spans.mark(fid, Stage::Walk, 1350);
    spans.mark(fid, Stage::Policy, 1360);
    spans.mark(fid, Stage::BatchWait, 1500);
    spans.mark(fid, Stage::Shootdown, 2200);
    spans.mark(fid, Stage::TransferQueue, 2200);
    spans.mark(fid, Stage::Transfer, 4000);
    EXPECT_EQ(spans.openFaults(), 1u);
    spans.complete(fid, 4100);
    EXPECT_EQ(spans.openFaults(), 0u);

    ASSERT_EQ(spans.completedFaults().size(), 1u);
    const obs::FaultRecord &rec = spans.completedFaults().front();
    EXPECT_EQ(rec.id, fid);
    EXPECT_EQ(rec.gpu, 2u);
    EXPECT_EQ(rec.page, 77u);
    EXPECT_EQ(rec.origin, 1000u);
    ASSERT_EQ(rec.marks.size(), obs::numStages);
    for (unsigned s = 0; s < obs::numStages; ++s)
        EXPECT_EQ(unsigned(rec.marks[s].stage), s);
    EXPECT_EQ(rec.totalLatency(), 3100u);
}

TEST(FaultSpans, EarlyMarksClampToZeroLengthStages)
{
    // A requester that joined an in-flight walk can observe a walk
    // start "before" its own miss; the stage clamps to zero length
    // instead of going negative.
    FaultSpans spans;
    const FaultId fid = spans.beginFault(1, 5, 1000);
    spans.mark(fid, Stage::WalkQueue, 400); // before origin
    spans.mark(fid, Stage::Walk, 700);      // still before origin
    spans.mark(fid, Stage::Policy, 1200);
    spans.complete(fid, 1300);

    const obs::FaultRecord &rec = spans.completedFaults().front();
    EXPECT_EQ(rec.marks[0].at, 1000u);
    EXPECT_EQ(rec.marks[1].at, 1000u);
    EXPECT_EQ(rec.totalLatency(), 300u);
}

TEST(FaultSpans, MarksOnUnknownOrCompletedFaultsAreDropped)
{
    FaultSpans spans;
    spans.mark(99, Stage::Walk, 10); // never begun
    const FaultId fid = spans.beginFault(1, 1, 0);
    spans.complete(fid, 50);
    spans.mark(fid, Stage::Transfer, 60); // already completed
    EXPECT_EQ(spans.completedFaults().size(), 1u);
    EXPECT_EQ(spans.completedFaults().front().marks.size(), 1u);
}

TEST(CriticalPath, StageSumsPartitionTheTotalExactly)
{
    FaultSpans spans;
    for (int f = 0; f < 3; ++f) {
        const Tick base = Tick(1000 * f);
        const FaultId fid = spans.beginFault(1, PageId(f), base);
        spans.mark(fid, Stage::WalkQueue, base + 10);
        spans.mark(fid, Stage::Walk, base + 310);
        spans.mark(fid, Stage::Policy, base + 315);
        spans.mark(fid, Stage::BatchWait, base + 500);
        spans.mark(fid, Stage::Shootdown, base + 700);
        spans.mark(fid, Stage::TransferQueue, base + 700);
        spans.mark(fid, Stage::Transfer, base + 1400);
        spans.complete(fid, base + 1500);
    }

    const obs::CriticalPath &cp = spans.criticalPath();
    EXPECT_EQ(cp.faults(), 3u);
    EXPECT_DOUBLE_EQ(cp.total().sum(), 3.0 * 1500.0);

    double stage_total = 0.0, share_total = 0.0;
    for (unsigned s = 0; s < obs::numStages; ++s) {
        stage_total += cp.stageSum(Stage(s));
        share_total += cp.share(Stage(s));
        EXPECT_EQ(cp.stageHistogram(Stage(s)).count(), 3u);
    }
    EXPECT_DOUBLE_EQ(stage_total, cp.total().sum());
    EXPECT_NEAR(share_total, 1.0, 1e-12);
    // Spot-check one stage: walks are 300 cycles each.
    EXPECT_DOUBLE_EQ(cp.stageSum(Stage::Walk), 900.0);
    EXPECT_NEAR(cp.share(Stage::Walk), 900.0 / 4500.0, 1e-12);
}

TEST(StageNames, AreDistinctAndSnakeCase)
{
    std::set<std::string> names;
    for (unsigned s = 0; s < obs::numStages; ++s)
        names.insert(obs::stageName(Stage(s)));
    EXPECT_EQ(names.size(), obs::numStages);
    EXPECT_EQ(names.count("walk_queue"), 1u);
    EXPECT_EQ(names.count("transfer_queue"), 1u);
}

// ---------------------------------------------------------------------
// Integration: FaultId propagation through the real fault path
// ---------------------------------------------------------------------

namespace {

/** The driver_test rig: CPU + 4 GPUs, IOMMU, first-touch, one PMC. */
struct Rig
{
    sim::Engine engine;
    mem::PageTable pt{12, 5};
    ic::Network net{engine, 5, ic::LinkConfig{32.0, 10}};
    xlat::Iommu iommu{engine, net, pt, xlat::IommuConfig{}};
    core::FirstTouchPolicy policy;
    mem::Dram cpuDram{mem::DramConfig{4, 100, 16.0, 256}};
    mem::Dram gpuDram{mem::DramConfig{}};
    std::vector<mem::Dram *> drams{&cpuDram, &gpuDram, &gpuDram,
                                   &gpuDram, &gpuDram};
    gpu::Pmc pmc{engine, net, cpuDeviceId, drams, 4096};
    std::unique_ptr<driver::Driver> driver;

    explicit Rig(driver::DriverConfig cfg = driver::DriverConfig{})
    {
        driver = std::make_unique<driver::Driver>(engine, pt, iommu,
                                                  pmc, cfg);
        iommu.setPolicy(&policy);
        iommu.setFaultHandler(driver.get());
    }
};

} // namespace

TEST(FaultSpansIntegration, CpmsBatchedFaultsFormCompleteSpanTrees)
{
    driver::DriverConfig cfg;
    cfg.faultBatchSize = 4; // CPMS batching: one flush for all four
    cfg.faultBatchWindow = 100000;
    Rig rig(cfg);

    obs::FaultSpans spans;
    spans.attach();

    // Four GPUs fault four distinct CPU-resident pages, staggered so
    // the early faults genuinely wait for the batch to fill.
    unsigned replies = 0;
    std::vector<Tick> origins;
    for (PageId p = 0; p < 4; ++p) {
        const Tick at = Tick(p) * 40;
        origins.push_back(at);
        rig.engine.schedule(at, [&rig, &replies, p] {
            rig.iommu.request(DeviceId(p + 1), p, false,
                              [&replies](xlat::XlatReply) { ++replies; },
                              rig.engine.now());
        });
    }
    rig.engine.run();
    spans.detach();

    EXPECT_EQ(replies, 4u);
    EXPECT_EQ(rig.driver->batchesProcessed, 1u);
    EXPECT_EQ(rig.driver->cpuShootdowns, 1u);

    // Every fault belongs to exactly one complete span tree.
    EXPECT_EQ(spans.faultsStarted(), 4u);
    EXPECT_EQ(spans.openFaults(), 0u) << "orphaned fault spans";
    ASSERT_EQ(spans.completedFaults().size(), 4u);

    std::set<FaultId> ids;
    std::set<PageId> pages;
    for (const obs::FaultRecord &rec : spans.completedFaults()) {
        ids.insert(rec.id);
        pages.insert(rec.page);
        // Exactly the eight taxonomy stages, in order, monotone.
        ASSERT_EQ(rec.marks.size(), obs::numStages);
        Tick prev = rec.origin;
        for (unsigned s = 0; s < obs::numStages; ++s) {
            EXPECT_EQ(unsigned(rec.marks[s].stage), s);
            EXPECT_GE(rec.marks[s].at, prev);
            prev = rec.marks[s].at;
        }
        EXPECT_GT(rec.totalLatency(), 0u);
        // The span origin is the requester's miss time, not the walk.
        EXPECT_NE(std::find(origins.begin(), origins.end(), rec.origin),
                  origins.end());
    }
    EXPECT_EQ(ids.size(), 4u) << "fault ids must be unique";
    EXPECT_EQ(pages.size(), 4u);

    // Aggregate invariant: the stage sums partition the summed
    // end-to-end service time exactly (integer ticks, no rounding).
    const obs::CriticalPath &cp = spans.criticalPath();
    EXPECT_EQ(cp.faults(), 4u);
    double stage_total = 0.0;
    for (unsigned s = 0; s < obs::numStages; ++s)
        stage_total += cp.stageSum(Stage(s));
    EXPECT_DOUBLE_EQ(stage_total, cp.total().sum());
    // Batching really showed up: somebody waited for the batch.
    EXPECT_GT(cp.stageSum(Stage::BatchWait), 0.0);
}

TEST(FaultSpansIntegration, BoundedPmcSurfacesTransferQueueTime)
{
    Rig rig; // only for engine/net/drams
    gpu::Pmc bounded{rig.engine, rig.net, cpuDeviceId, rig.drams, 4096,
                     /*max_concurrent=*/1};

    obs::FaultSpans spans;
    spans.attach();
    const FaultId f1 = spans.beginFault(1, 10, 0);
    const FaultId f2 = spans.beginFault(2, 11, 0);

    unsigned done = 0;
    bounded.transferPage(10, 1, [&] {
        ++done;
        spans.complete(f1, rig.engine.now());
    }, f1);
    bounded.transferPage(11, 2, [&] {
        ++done;
        spans.complete(f2, rig.engine.now());
    }, f2);
    EXPECT_EQ(bounded.queueDepth(), 2u);
    rig.engine.run();
    spans.detach();

    EXPECT_EQ(done, 2u);
    EXPECT_EQ(bounded.transfersDeferred, 1u);
    EXPECT_EQ(bounded.queueDepth(), 0u);

    // First transfer started immediately; the second's queue stage is
    // the first one's whole service time.
    ASSERT_EQ(spans.completedFaults().size(), 2u);
    auto queueTime = [](const obs::FaultRecord &rec) {
        Tick prev = rec.origin, dur = 0;
        for (const obs::StageMark &m : rec.marks) {
            if (m.stage == Stage::TransferQueue)
                dur = m.at - prev;
            prev = m.at;
        }
        return dur;
    };
    const auto &first = spans.completedFaults()[0];
    const auto &second = spans.completedFaults()[1];
    EXPECT_EQ(queueTime(first.id == f1 ? first : second), 0u);
    EXPECT_GT(queueTime(first.id == f2 ? first : second), 0u);
}
