/**
 * @file
 * Unit tests for the host-side self-profiler: the attach discipline,
 * dispatch bracketing through a real EventQueue, the self-time
 * partition invariant (bucket self times sum exactly to the measured
 * dispatch time), the first-scope-claims-bracket attribution rule,
 * the folded-stack round trip, and profile merging.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/obs/hostprof.hh"
#include "src/sim/event_queue.hh"

using griffin::obs::HostProfile;
using griffin::obs::HostProfiler;

namespace {

/** Burn a little host time so scope self times are nonzero-ish. */
volatile std::uint64_t g_sink = 0;
void
spin(unsigned iters = 500)
{
    for (unsigned i = 0; i < iters; ++i)
        g_sink = g_sink + i;
}

} // namespace

TEST(HostProfiler, ScopeIsANoOpWhenNothingIsAttached)
{
    ASSERT_EQ(HostProfiler::active(), nullptr);
    {
        GHPROF_SCOPE("gpu", "l1_tlb");
        spin();
    }
    ASSERT_EQ(HostProfiler::active(), nullptr);
}

TEST(HostProfiler, AttachDisciplineIsLifo)
{
    HostProfiler outer;
    HostProfiler inner;
    outer.attach();
    EXPECT_EQ(HostProfiler::active(), &outer);
    inner.attach();
    EXPECT_EQ(HostProfiler::active(), &inner);
    inner.detach();
    EXPECT_EQ(HostProfiler::active(), &outer);
    outer.detach();
    EXPECT_EQ(HostProfiler::active(), nullptr);
}

TEST(HostProfiler, CountsDispatchesThroughTheEventQueue)
{
    griffin::sim::EventQueue queue;
    HostProfiler prof;
    prof.attach();
    unsigned fired = 0;
    for (int i = 0; i < 5; ++i)
        queue.schedule(griffin::Tick(i * 10), [&] { ++fired; });
    while (queue.runOne())
        ;
    prof.detach();

    EXPECT_EQ(fired, 5u);
    EXPECT_EQ(prof.eventsDispatched(), 5u);
    const HostProfile p = prof.profile();
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.events, 5u);
    EXPECT_GE(p.wallNs, p.dispatchNs);
}

TEST(HostProfiler, ScopelessDispatchLandsInUnattributed)
{
    griffin::sim::EventQueue queue;
    HostProfiler prof;
    prof.attach();
    queue.schedule(0, [] { spin(); });
    queue.runOne();
    prof.detach();

    const HostProfile p = prof.profile();
    const auto *b = p.findBucket("sim", "unattributed");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->count, 1u);
    EXPECT_EQ(b->selfNs, p.dispatchNs);
    EXPECT_EQ(p.attributedNs(), 0u);
    EXPECT_DOUBLE_EQ(p.attributedFraction(), 0.0);
}

TEST(HostProfiler, FirstScopeClaimsTheDispatchBracket)
{
    griffin::sim::EventQueue queue;
    HostProfiler prof;
    prof.attach();
    queue.schedule(0, [] {
        GHPROF_SCOPE("iommu", "walk_done");
        spin();
    });
    queue.runOne();
    prof.detach();

    const HostProfile p = prof.profile();
    // The bracket's own self time merged into the scope's bucket with
    // count 0, so the count stays the deterministic scope count...
    const auto *b = p.findBucket("iommu", "walk_done");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->count, 1u);
    // ...and nothing is left unattributed.
    EXPECT_EQ(p.findBucket("sim", "unattributed"), nullptr);
    EXPECT_EQ(b->selfNs, p.dispatchNs);
    EXPECT_DOUBLE_EQ(p.attributedFraction(), 1.0);
}

TEST(HostProfiler, NestedScopeSelfTimesPartitionTheDispatchExactly)
{
    griffin::sim::EventQueue queue;
    HostProfiler prof;
    prof.attach();
    for (int i = 0; i < 3; ++i) {
        queue.schedule(griffin::Tick(i), [] {
            GHPROF_SCOPE("gpu", "l1_cache");
            spin();
            {
                GHPROF_SCOPE("gpu", "l2_cache");
                spin();
                {
                    GHPROF_SCOPE("network", "deliver");
                    spin();
                }
            }
            {
                GHPROF_SCOPE("obs", "trace");
                spin();
            }
        });
    }
    while (queue.runOne())
        ;
    prof.detach();

    const HostProfile p = prof.profile();
    EXPECT_EQ(p.events, 3u);
    ASSERT_EQ(p.buckets.size(), 4u);
    std::uint64_t sum = 0;
    for (const auto &b : p.buckets) {
        EXPECT_EQ(b.count, 3u) << b.name();
        sum += b.selfNs;
    }
    // Self times are elapsed-minus-children: they partition the
    // measured dispatch time exactly, with no double counting.
    EXPECT_EQ(sum, p.dispatchNs);
    EXPECT_DOUBLE_EQ(p.attributedFraction(), 1.0);
    // The obs;trace scope is the only telemetry share.
    const auto *obs = p.findBucket("obs", "trace");
    ASSERT_NE(obs, nullptr);
    EXPECT_EQ(p.obsNs(), obs->selfNs);
}

TEST(HostProfiler, BucketOrderIsDeterministic)
{
    griffin::sim::EventQueue queue;
    HostProfiler prof;
    prof.attach();
    queue.schedule(0, [] { GHPROF_SCOPE("zeta", "b"); });
    queue.schedule(1, [] { GHPROF_SCOPE("alpha", "z"); });
    queue.schedule(2, [] { GHPROF_SCOPE("alpha", "a"); });
    while (queue.runOne())
        ;
    prof.detach();

    const HostProfile p = prof.profile();
    ASSERT_EQ(p.buckets.size(), 3u);
    EXPECT_EQ(p.buckets[0].name(), "alpha;a");
    EXPECT_EQ(p.buckets[1].name(), "alpha;z");
    EXPECT_EQ(p.buckets[2].name(), "zeta;b");
}

TEST(HostProfiler, StopTimerFreezesTheWallClock)
{
    HostProfiler prof;
    prof.attach();
    spin(5000);
    prof.stopTimer();
    const std::uint64_t first = prof.profile().wallNs;
    spin(5000);
    prof.stopTimer(); // idempotent: keeps the first reading
    EXPECT_EQ(prof.profile().wallNs, first);
    prof.detach();
    EXPECT_EQ(prof.profile().wallNs, first);
}

TEST(HostProfile, EventsPerSecUsesWallTime)
{
    HostProfile p;
    p.events = 2000;
    p.wallNs = 1'000'000'000;
    EXPECT_DOUBLE_EQ(p.eventsPerSec(), 2000.0);
    p.wallNs = 0;
    EXPECT_DOUBLE_EQ(p.eventsPerSec(), 0.0);
}

TEST(HostProfile, MergeSumsBucketsAndRestoresOrder)
{
    HostProfile a;
    a.enabled = true;
    a.events = 10;
    a.wallNs = 100;
    a.dispatchNs = 80;
    a.buckets = {{"gpu", "l1_tlb", 4, 40}, {"net", "deliver", 6, 40}};

    HostProfile b;
    b.enabled = true;
    b.events = 5;
    b.wallNs = 50;
    b.dispatchNs = 30;
    b.buckets = {{"cu", "issue", 2, 10}, {"gpu", "l1_tlb", 3, 20}};

    a.merge(b);
    EXPECT_EQ(a.events, 15u);
    EXPECT_EQ(a.wallNs, 150u);
    EXPECT_EQ(a.dispatchNs, 110u);
    ASSERT_EQ(a.buckets.size(), 3u);
    EXPECT_EQ(a.buckets[0].name(), "cu;issue");
    EXPECT_EQ(a.buckets[1].name(), "gpu;l1_tlb");
    EXPECT_EQ(a.buckets[1].count, 7u);
    EXPECT_EQ(a.buckets[1].selfNs, 60u);
    EXPECT_EQ(a.buckets[2].name(), "net;deliver");

    // Merging a disabled (never-profiled) run is a no-op on enabled.
    HostProfile none;
    none.merge(a);
    EXPECT_TRUE(none.enabled);
    HostProfile still;
    still.merge(HostProfile{});
    EXPECT_FALSE(still.enabled);
}

TEST(HostProfile, FoldedRoundTripsThroughParse)
{
    HostProfile p;
    p.enabled = true;
    p.dispatchNs = 70;
    p.buckets = {{"driver", "service_batch", 3, 50},
                 {"obs", "sampler", 2, 20}};

    const std::string text = p.folded();
    EXPECT_EQ(text, "driver;service_batch 50\nobs;sampler 20\n");

    const auto parsed = HostProfile::parseFolded(text);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->buckets.size(), 2u);
    EXPECT_EQ(parsed->buckets[0].name(), "driver;service_batch");
    EXPECT_EQ(parsed->buckets[0].selfNs, 50u);
    EXPECT_EQ(parsed->buckets[1].name(), "obs;sampler");
    // Counts are not part of the folded format; dispatchNs comes back
    // as the sum of self times.
    EXPECT_EQ(parsed->buckets[0].count, 0u);
    EXPECT_EQ(parsed->dispatchNs, 70u);
    EXPECT_EQ(parsed->obsNs(), 20u);
}

TEST(HostProfile, ParseFoldedRejectsMalformedLines)
{
    EXPECT_FALSE(HostProfile::parseFolded("nospace\n").has_value());
    EXPECT_FALSE(HostProfile::parseFolded("noseparator 12\n").has_value());
    EXPECT_FALSE(HostProfile::parseFolded("a;b notanumber\n").has_value());
    EXPECT_FALSE(HostProfile::parseFolded("a;b 12x\n").has_value());
    EXPECT_FALSE(HostProfile::parseFolded(";event 5\n").has_value());
    EXPECT_FALSE(HostProfile::parseFolded("comp; 5\n").has_value());
    EXPECT_FALSE(HostProfile::parseFolded("a;b \n").has_value());
    // Blank lines are tolerated; an empty document parses to an empty
    // (but enabled) profile.
    const auto empty = HostProfile::parseFolded("\n\n");
    ASSERT_TRUE(empty.has_value());
    EXPECT_TRUE(empty->buckets.empty());
}

TEST(HostProfile, AttributionHelpersHandleEmptyProfiles)
{
    const HostProfile p;
    EXPECT_EQ(p.unattributedNs(), 0u);
    EXPECT_EQ(p.attributedNs(), 0u);
    EXPECT_DOUBLE_EQ(p.attributedFraction(), 1.0);
    EXPECT_DOUBLE_EQ(p.obsFraction(), 0.0);
    EXPECT_EQ(p.findBucket("gpu", "l1_tlb"), nullptr);
}
