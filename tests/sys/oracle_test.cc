#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/obs/span.hh"
#include "src/sys/oracle.hh"
#include "src/sys/system_config.hh"

namespace {

using griffin::sys::OracleFinding;
using griffin::sys::RunResult;
using griffin::sys::SystemConfig;
using griffin::sys::checkRunInvariants;

bool
fired(const std::vector<OracleFinding> &findings, const std::string &oracle)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&oracle](const OracleFinding &f) {
                           return f.oracle == oracle;
                       });
}

/** One completed fault whose stage marks partition its latency. */
griffin::obs::CriticalPath
consistentBreakdown()
{
    griffin::obs::FaultRecord rec;
    rec.id = 1;
    rec.gpu = 1;
    rec.page = 7;
    rec.origin = 100;
    for (unsigned s = 0; s < griffin::obs::numStages; ++s)
        rec.marks.push_back(
            {griffin::obs::Stage(s), 100 + griffin::Tick(s + 1) * 50});
    griffin::obs::CriticalPath cp;
    cp.addFault(rec);
    return cp;
}

/** A result every oracle accepts, paired with its config. */
struct CleanRun
{
    SystemConfig config = SystemConfig::baseline();
    RunResult result;

    CleanRun()
    {
        result.cycles = 123456;
        result.pagesPerDevice = {40, 10, 10};
        result.stats.set("pageTable.totalPages", 60.0);
        result.stats.set("pageTable.migrations", 1.0);
        result.localAccesses = 900;
        result.remoteAccesses = 100;
        result.faultBreakdown = consistentBreakdown();
    }
};

TEST(Oracle, CleanResultHasNoFindings)
{
    CleanRun run;
    const auto findings = checkRunInvariants(run.result, run.config);
    EXPECT_TRUE(findings.empty())
        << (findings.empty() ? "" : findings[0].oracle + ": " +
                                        findings[0].detail);
}

// The residency oracle is the one the acceptance criterion injects a
// deliberate bug against: double-mapping a page (or dropping one)
// breaks the per-device sum against the page population.
TEST(Oracle, ResidencyConservationCatchesADoubleMappedPage)
{
    CleanRun run;
    run.result.pagesPerDevice[1] += 1; // one page now mapped twice
    const auto findings = checkRunInvariants(run.result, run.config);
    EXPECT_TRUE(fired(findings, "residency-conservation"));
}

TEST(Oracle, ResidencyConservationCatchesALostPage)
{
    CleanRun run;
    run.result.pagesPerDevice[2] -= 1;
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "residency-conservation"));
}

TEST(Oracle, AuditViolationsAreReported)
{
    CleanRun run;
    run.result.auditViolations = 3;
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "invariant-audit"));
}

TEST(Oracle, OpenFaultSpansAreOrphans)
{
    CleanRun run;
    run.result.faultSpansOpen = 2;
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "span-orphans"));
}

TEST(Oracle, ZeroAccessesIsAnAccountingLoss)
{
    CleanRun run;
    run.result.localAccesses = 0;
    run.result.remoteAccesses = 0;
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "access-accounting"));
}

TEST(Oracle, TimeseriesRowsMustSumToTotals)
{
    CleanRun run;
    run.config.timeseriesTick = 20000;
    auto &ts = run.result.timeseries;
    ts.tick = 20000;
    griffin::obs::TimeSeries::Row row;
    row.counts = {1, 100, 0, 1};
    ts.rows.push_back(row);
    ts.totals = {1, 100, 0, 1};
    // Align the totals with the independent aggregates so only the
    // corruption below can fire.
    run.result.latency.faultLatency.sample(500.0);
    ASSERT_FALSE(fired(checkRunInvariants(run.result, run.config),
                       "timeseries-reconciliation"));

    ts.rows[0].counts[1] = 99; // drop one DCA access from the rows
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "timeseries-reconciliation"));
}

TEST(Oracle, TimeseriesTotalsMustMatchRunAggregates)
{
    CleanRun run;
    run.config.timeseriesTick = 20000;
    auto &ts = run.result.timeseries;
    ts.tick = 20000;
    griffin::obs::TimeSeries::Row row;
    row.counts = {2, 100, 0, 1};
    ts.rows.push_back(row);
    ts.totals = {2, 100, 0, 1}; // 2 migrations, but the stat says 1
    run.result.latency.faultLatency.sample(500.0);
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "timeseries-reconciliation"));
}

TEST(Oracle, TimeseriesOffButSummaryCarriesATick)
{
    CleanRun run;
    run.result.timeseries.tick = 20000;
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "timeseries-reconciliation"));
}

TEST(Oracle, PageStatsEnableFlagsMustAgree)
{
    CleanRun run;
    run.config.pageStats.enabled = true;
    run.result.pageStats.enabled = false;
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "pagestats-reconciliation"));

    CleanRun other;
    other.result.pageStats.enabled = true; // recorder was off
    EXPECT_TRUE(fired(checkRunInvariants(other.result, other.config),
                      "pagestats-reconciliation"));
}

TEST(Oracle, PageStatsMigrationsMustMatchThePageTable)
{
    CleanRun run;
    run.config.pageStats.enabled = true;
    run.result.pageStats.enabled = true;
    run.result.pageStats.totalMigrations = 1;
    ASSERT_FALSE(fired(checkRunInvariants(run.result, run.config),
                       "pagestats-reconciliation"));

    run.result.pageStats.totalMigrations = 5;
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "pagestats-reconciliation"));
}

TEST(Oracle, ChaosOffDemandsZeroCounters)
{
    CleanRun run;
    run.result.chaosInjected = 1;
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "chaos-accounting"));
}

TEST(Oracle, ChaosOnDemandsPerClassSum)
{
    CleanRun run;
    run.config.chaos.dmaFaultRate = 0.1;
    ASSERT_TRUE(run.config.chaos.enabled());
    run.result.chaosInjected = 5;
    run.result.stats.set("chaos.dmaFaults", 3.0);
    run.result.stats.set("chaos.linkFaults", 2.0);
    ASSERT_FALSE(fired(checkRunInvariants(run.result, run.config),
                       "chaos-accounting"));

    run.result.chaosInjected = 7; // two injections unaccounted for
    EXPECT_TRUE(fired(checkRunInvariants(run.result, run.config),
                      "chaos-accounting"));
}

TEST(Oracle, SpanPartitionHoldsForFoldedFaults)
{
    // Sanity-check the fixture the clean test relies on: the stage
    // sums of a folded fault partition its end-to-end latency.
    const auto cp = consistentBreakdown();
    double stageSum = 0.0;
    for (unsigned s = 0; s < griffin::obs::numStages; ++s)
        stageSum += cp.stageSum(griffin::obs::Stage(s));
    EXPECT_EQ(stageSum, cp.total().sum());
    EXPECT_EQ(cp.total().count(), cp.faults());
}

TEST(Oracle, FindingsAccumulate)
{
    CleanRun run;
    run.result.pagesPerDevice[0] += 1;
    run.result.auditViolations = 1;
    run.result.faultSpansOpen = 1;
    const auto findings = checkRunInvariants(run.result, run.config);
    EXPECT_TRUE(fired(findings, "residency-conservation"));
    EXPECT_TRUE(fired(findings, "invariant-audit"));
    EXPECT_TRUE(fired(findings, "span-orphans"));
    EXPECT_GE(findings.size(), 3u);
}

} // namespace
