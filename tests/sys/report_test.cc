/**
 * @file
 * Unit tests for the report helpers: geomean, table rendering, CSV,
 * ASCII bars.
 */

#include <gtest/gtest.h>

#include "src/sys/report.hh"

using namespace griffin::sys;

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, MatchesPaperStyleSpeedups)
{
    // A slowdown below 1 pulls the geomean down but stays defined.
    EXPECT_LT(geomean({2.9, 0.95, 1.1}), 1.6);
    EXPECT_GT(geomean({2.9, 0.95, 1.1}), 1.3);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "2"});
    const std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
    // Each row ends with a newline.
    EXPECT_EQ(s.back(), '\n');
}

TEST(Table, ShortRowsArePadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"x"});
    EXPECT_NO_THROW(t.str());
    EXPECT_NE(t.csv().find("x,,"), std::string::npos);
}

TEST(Table, CsvFormat)
{
    Table t({"h1", "h2"});
    t.addRow({"v1", "v2"});
    EXPECT_EQ(t.csv(), "h1,h2\nv1,v2\n");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.2345), "1.23");
    EXPECT_EQ(Table::num(1.2345, 1), "1.2");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(AsciiBar, ScalesAndClamps)
{
    EXPECT_EQ(asciiBar(0.0, 1.0, 10), "|----------|");
    EXPECT_EQ(asciiBar(1.0, 1.0, 10), "|##########|");
    EXPECT_EQ(asciiBar(0.5, 1.0, 10), "|#####-----|");
    EXPECT_EQ(asciiBar(5.0, 1.0, 10), "|##########|"); // clamped
    EXPECT_EQ(asciiBar(1.0, 0.0, 4), "|####|");        // max guard
}
