/**
 * @file
 * Unit tests for the report helpers: geomean, table rendering, CSV,
 * ASCII bars, and the JSON run report.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/obs/json.hh"
#include "src/obs/sampler.hh"
#include "src/obs/span.hh"
#include "src/sim/engine.hh"
#include "src/sys/multi_gpu_system.hh"
#include "src/sys/csv.hh"
#include "src/sys/report.hh"
#include "src/sys/system_config.hh"

using namespace griffin;
using namespace griffin::sys;

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, MatchesPaperStyleSpeedups)
{
    // A slowdown below 1 pulls the geomean down but stays defined.
    EXPECT_LT(geomean({2.9, 0.95, 1.1}), 1.6);
    EXPECT_GT(geomean({2.9, 0.95, 1.1}), 1.3);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "2"});
    const std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
    // Each row ends with a newline.
    EXPECT_EQ(s.back(), '\n');
}

TEST(Table, ShortRowsArePadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"x"});
    EXPECT_NO_THROW(t.str());
    EXPECT_NE(t.csv().find("x,,"), std::string::npos);
}

TEST(TableDeathTest, OversizedRowAsserts)
{
    // A row wider than its header used to be silently truncated; it
    // is a caller bug and must be loud (asserts are on in all builds).
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"1", "2", "3"}), "wider than its header");
}

TEST(Geomean, SkipsNonPositiveValues)
{
    // The geometric mean is only defined over positive values. A
    // degenerate entry (zero-cycle run, NaN from a dead counter) is
    // skipped with a warning instead of killing the whole report.
    EXPECT_DOUBLE_EQ(geomean({2.0, -1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0, -7.0, 0.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({std::nan(""), 8.0}), 8.0);
}

TEST(Table, CsvFormat)
{
    Table t({"h1", "h2"});
    t.addRow({"v1", "v2"});
    EXPECT_EQ(t.csv(), "h1,h2\nv1,v2\n");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.2345), "1.23");
    EXPECT_EQ(Table::num(1.2345, 1), "1.2");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(AsciiBar, ScalesAndClamps)
{
    EXPECT_EQ(asciiBar(0.0, 1.0, 10), "|----------|");
    EXPECT_EQ(asciiBar(1.0, 1.0, 10), "|##########|");
    EXPECT_EQ(asciiBar(0.5, 1.0, 10), "|#####-----|");
    EXPECT_EQ(asciiBar(5.0, 1.0, 10), "|##########|"); // clamped
    EXPECT_EQ(asciiBar(1.0, 0.0, 4), "|####|");        // max guard
}

namespace {

/** A complete 8-stage fault record ending at origin + 1500. */
obs::FaultRecord
makeFaultRecord(FaultId fid, Tick origin)
{
    obs::FaultRecord rec;
    rec.id = fid;
    rec.gpu = 1;
    rec.page = PageId(fid);
    rec.origin = origin;
    const Tick ends[obs::numStages] = {10, 310, 315, 500,
                                       700, 700, 1400, 1500};
    for (unsigned s = 0; s < obs::numStages; ++s)
        rec.marks.push_back(
            obs::StageMark{obs::Stage(s), origin + ends[s]});
    return rec;
}

/** A hand-filled RunResult with recognizable values. */
RunResult
sampleResult()
{
    RunResult r;
    r.cycles = 123456;
    r.pagesPerDevice = {10, 20, 30, 0, 0};
    r.cpuShootdowns = 7;
    r.gpuShootdowns = 3;
    r.localAccesses = 900;
    r.remoteAccesses = 100;
    r.pagesMigratedFromCpu = 50;
    r.pagesMigratedInterGpu = 5;
    r.stats.set("driver.faults", 50.0);
    r.stats.set("iommu.walks", 64.0);
    for (int i = 0; i < 100; ++i)
        r.latency.faultLatency.sample(1000.0 + 10.0 * double(i));
    return r;
}

} // namespace

TEST(RunReportJson, RoundTripsResultFields)
{
    const RunResult r = sampleResult();
    const auto report =
        runReportJson("test/run", SystemConfig::baseline(), r);

    // The dump must parse back (well-formed JSON, both compact and
    // pretty-printed).
    const auto parsed = obs::json::Value::parse(report.dump(2));
    ASSERT_TRUE(parsed.has_value());

    EXPECT_EQ(parsed->find("label")->asString(), "test/run");

    const auto *res = parsed->find("result");
    ASSERT_NE(res, nullptr);
    EXPECT_DOUBLE_EQ(res->find("cycles")->asNumber(), 123456.0);
    EXPECT_DOUBLE_EQ(res->find("cpuShootdowns")->asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(res->find("localFraction")->asNumber(), 0.9);
    ASSERT_EQ(res->find("pagesPerDevice")->size(), 5u);
    EXPECT_DOUBLE_EQ(res->find("pagesPerDevice")->at(2).asNumber(),
                     30.0);

    const auto *counters = parsed->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_DOUBLE_EQ(counters->find("driver.faults")->asNumber(), 50.0);
    EXPECT_DOUBLE_EQ(counters->find("iommu.walks")->asNumber(), 64.0);
}

TEST(RunReportJson, HistogramPercentilesMatchTheSource)
{
    const RunResult r = sampleResult();
    const auto report =
        runReportJson("x", SystemConfig::griffinDefault(), r);
    const auto parsed = obs::json::Value::parse(report.dump());
    ASSERT_TRUE(parsed.has_value());

    const auto *h =
        parsed->find("histograms")->find("faultLatency");
    ASSERT_NE(h, nullptr);
    const auto &src = r.latency.faultLatency;
    EXPECT_DOUBLE_EQ(h->find("count")->asNumber(), double(src.count()));
    EXPECT_DOUBLE_EQ(h->find("mean")->asNumber(), src.mean());
    EXPECT_DOUBLE_EQ(h->find("p50")->asNumber(), src.percentile(50));
    EXPECT_DOUBLE_EQ(h->find("p95")->asNumber(), src.percentile(95));
    EXPECT_DOUBLE_EQ(h->find("p99")->asNumber(), src.percentile(99));
    // Empty histograms serialize with zero counts and no buckets.
    const auto *empty =
        parsed->find("histograms")->find("remoteAccessLatency");
    EXPECT_DOUBLE_EQ(empty->find("count")->asNumber(), 0.0);
    EXPECT_EQ(empty->find("buckets")->size(), 0u);
}

TEST(RunReportJson, ConfigIdentifiesThePolicy)
{
    const RunResult r = sampleResult();
    const auto base =
        runReportJson("b", SystemConfig::baseline(), r);
    const auto grif =
        runReportJson("g", SystemConfig::griffinDefault(), r);
    EXPECT_EQ(base.find("config")->find("policy")->asString(),
              "first-touch");
    EXPECT_EQ(grif.find("config")->find("policy")->asString(),
              "griffin");
    // Griffin config details only appear for the griffin policy.
    EXPECT_EQ(base.find("config")->find("griffin"), nullptr);
    EXPECT_NE(grif.find("config")->find("griffin"), nullptr);
}

TEST(RunReportJson, SamplerRowsAreEmbedded)
{
    sim::Engine e;
    obs::Sampler s;
    s.add("probe", [] { return 3.5; });
    s.start(e, 100);
    e.schedule(250, [] {});
    e.run();
    s.stop();

    const RunResult r = sampleResult();
    const auto report =
        runReportJson("s", SystemConfig::baseline(), r, &s);
    const auto parsed = obs::json::Value::parse(report.dump());
    ASSERT_TRUE(parsed.has_value());
    const auto *samples = parsed->find("samples");
    ASSERT_NE(samples, nullptr);
    EXPECT_DOUBLE_EQ(samples->find("period")->asNumber(), 100.0);
    ASSERT_EQ(samples->find("columns")->size(), 2u); // tick + probe
    // Boundaries 0, 100, 200 plus the final partial row stop() takes
    // at the end time (250).
    ASSERT_EQ(samples->find("rows")->size(), 4u);
    EXPECT_DOUBLE_EQ(samples->find("rows")->at(3).at(0).asNumber(),
                     250.0);
    EXPECT_DOUBLE_EQ(samples->find("rows")->at(1).at(0).asNumber(),
                     100.0);
    EXPECT_DOUBLE_EQ(samples->find("rows")->at(1).at(1).asNumber(),
                     3.5);
    // Without a sampler there is no "samples" member at all.
    const auto bare =
        runReportJson("s", SystemConfig::baseline(), r);
    EXPECT_EQ(bare.find("samples"), nullptr);
}

TEST(RunReportJson, PageStatsSectionAppearsOnlyWhenEnabled)
{
    RunResult r = sampleResult();
    const auto off =
        runReportJson("off", SystemConfig::baseline(), r);
    EXPECT_EQ(off.find("page_stats"), nullptr);
    EXPECT_EQ(off.find("timeseries"), nullptr);

    r.pageStats.enabled = true;
    r.pageStats.churnWindow = 500;
    r.pageStats.topN = 4;
    r.pageStats.events[unsigned(obs::PageEvent::MigrationCommit)] = 9;
    r.pageStats.pagesTracked = 3;
    r.pageStats.pagesMigrated = 2;
    r.pageStats.totalMigrations = 9;
    r.pageStats.churnEvents = 1;
    r.pageStats.churnPages = 1;
    r.pageStats.maxMigrationsOnePage = 5;
    obs::PageStatsSummary::TopPage tp;
    tp.page = 42;
    tp.migrations = 5;
    tp.churn = 1;
    tp.lastLocation = 2;
    tp.residency = {{0, 0}, {100, 1}, {200, 2}};
    r.pageStats.hotPages.push_back(tp);
    r.pageStats.thrashingPages.push_back(tp);

    const auto report =
        runReportJson("on", SystemConfig::griffinDefault(), r);
    const auto parsed = obs::json::Value::parse(report.dump(2));
    ASSERT_TRUE(parsed.has_value());

    const auto *ps = parsed->find("page_stats");
    ASSERT_NE(ps, nullptr);
    EXPECT_DOUBLE_EQ(ps->find("churn_window")->asNumber(), 500.0);
    EXPECT_DOUBLE_EQ(
        ps->find("events")->find("migration_commit")->asNumber(), 9.0);
    EXPECT_DOUBLE_EQ(ps->find("pages_tracked")->asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(ps->find("churn_events")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(ps->find("max_migrations_one_page")->asNumber(),
                     5.0);
    const auto *hot = ps->find("hot_pages");
    ASSERT_NE(hot, nullptr);
    ASSERT_EQ(hot->size(), 1u);
    EXPECT_DOUBLE_EQ(hot->at(0).find("page")->asNumber(), 42.0);
    // Residency serializes as [tick, device] pairs.
    const auto *res = hot->at(0).find("residency");
    ASSERT_NE(res, nullptr);
    ASSERT_EQ(res->size(), 3u);
    EXPECT_DOUBLE_EQ(res->at(1).at(0).asNumber(), 100.0);
    EXPECT_DOUBLE_EQ(res->at(1).at(1).asNumber(), 1.0);
}

TEST(RunReportJson, TimeseriesSectionRoundTrips)
{
    RunResult r = sampleResult();
    r.timeseries.tick = 100;
    using S = obs::TimeSeries::Series;
    obs::TimeSeries::Row row;
    row.begin = 0;
    row.end = 100;
    row.counts[unsigned(S::Migrations)] = 4;
    row.counts[unsigned(S::Faults)] = 2;
    row.faultP50 = 11.0;
    row.faultP95 = 19.0;
    row.linkUtil = 0.25;
    r.timeseries.rows.push_back(row);
    row.begin = 100;
    row.end = 150;
    row.counts[unsigned(S::Migrations)] = 1;
    r.timeseries.rows.push_back(row);
    r.timeseries.totals[unsigned(S::Migrations)] = 5;
    r.timeseries.totals[unsigned(S::Faults)] = 4;

    const auto report =
        runReportJson("ts", SystemConfig::griffinDefault(), r);
    const auto parsed = obs::json::Value::parse(report.dump(2));
    ASSERT_TRUE(parsed.has_value());

    const auto *ts = parsed->find("timeseries");
    ASSERT_NE(ts, nullptr);
    EXPECT_DOUBLE_EQ(ts->find("tick")->asNumber(), 100.0);
    // Rows are flat arrays matching the declared column order.
    ASSERT_EQ(ts->find("columns")->size(), 9u);
    EXPECT_EQ(ts->find("columns")->at(2).asString(), "migrations");
    ASSERT_EQ(ts->find("rows")->size(), 2u);
    EXPECT_DOUBLE_EQ(ts->find("rows")->at(0).at(2).asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(ts->find("rows")->at(0).at(8).asNumber(), 0.25);
    EXPECT_DOUBLE_EQ(
        ts->find("totals")->find("migrations")->asNumber(), 5.0);
    // Peak is the per-interval maximum, computed at serialization.
    EXPECT_DOUBLE_EQ(
        ts->find("peak")->find("migrations")->asNumber(), 4.0);
}

TEST(ReportDocument, StampsTheSchemaVersion)
{
    obs::json::Value runs = obs::json::Value::array();
    runs.push(runReportJson("a", SystemConfig::baseline(),
                            sampleResult()));
    const auto doc = reportDocument(std::move(runs));
    ASSERT_NE(doc.find("schema_version"), nullptr);
    EXPECT_DOUBLE_EQ(doc.find("schema_version")->asNumber(),
                     double(reportSchemaVersion));
    ASSERT_NE(doc.find("runs"), nullptr);
    EXPECT_EQ(doc.find("runs")->size(), 1u);
    // schema_version leads so diffs and humans see it first.
    const std::string text = doc.dump(2);
    EXPECT_LT(text.find("schema_version"), text.find("runs"));
}

TEST(RunReportJson, FaultBreakdownRoundTrips)
{
    RunResult r = sampleResult();
    r.faultBreakdown.addFault(makeFaultRecord(1, 0));
    r.faultBreakdown.addFault(makeFaultRecord(2, 10000));
    r.faultSpansOpen = 1; // one orphan, deliberately

    const auto report =
        runReportJson("fb", SystemConfig::griffinDefault(), r);
    const auto parsed = obs::json::Value::parse(report.dump(2));
    ASSERT_TRUE(parsed.has_value());

    const auto *fb = parsed->find("fault_breakdown");
    ASSERT_NE(fb, nullptr);
    EXPECT_DOUBLE_EQ(fb->find("faults")->asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(fb->find("orphans")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(fb->find("total")->find("count")->asNumber(), 2.0);

    const auto *stages = fb->find("stages");
    ASSERT_NE(stages, nullptr);
    double stage_sum = 0.0, share_sum = 0.0;
    for (unsigned s = 0; s < obs::numStages; ++s) {
        const auto *sv = stages->find(obs::stageName(obs::Stage(s)));
        ASSERT_NE(sv, nullptr) << obs::stageName(obs::Stage(s));
        EXPECT_DOUBLE_EQ(sv->find("count")->asNumber(), 2.0);
        stage_sum += sv->find("sum")->asNumber();
        share_sum += sv->find("share")->asNumber();
    }
    // The serialized stage sums partition the serialized total.
    EXPECT_DOUBLE_EQ(stage_sum, 2.0 * 1500.0);
    EXPECT_NEAR(share_sum, 1.0, 1e-12);
    // Spot-check a stage against the source aggregation.
    const auto *walk = stages->find("walk");
    EXPECT_DOUBLE_EQ(walk->find("sum")->asNumber(),
                     r.faultBreakdown.stageSum(obs::Stage::Walk));
    EXPECT_DOUBLE_EQ(walk->find("sum")->asNumber(), 600.0);
}


TEST(CsvEscape, QuotesOnlyWhenNeeded)
{
    // Plain fields pass through byte-identical (the compatibility
    // contract: quoting must not perturb existing CSV output).
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape(""), "");
    EXPECT_EQ(csvEscape("MT/griffin/gpus=4"), "MT/griffin/gpus=4");
    // RFC 4180: commas, quotes and line breaks force quoting, with
    // embedded quotes doubled.
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("two\nlines"), "\"two\nlines\"");
    EXPECT_EQ(csvEscape("cr\rhere"), "\"cr\rhere\"");
}

TEST(Table, CsvQuotesEmbeddedCommas)
{
    Table t({"run", "value"});
    t.addRow({"SC/griffin/fabric=a,b", "1"});
    EXPECT_EQ(t.csv(), "run,value\n\"SC/griffin/fabric=a,b\",1\n");
}

namespace {

obs::HostProfile
sampleHostProfile()
{
    obs::HostProfile p;
    p.enabled = true;
    p.wallNs = 5'000'000;
    p.dispatchNs = 4'000'000;
    p.events = 2000;
    p.buckets = {{"gpu", "l1_tlb", 800, 1'500'000},
                 {"network", "deliver", 1200, 2'100'000},
                 {"obs", "trace", 500, 300'000},
                 {"sim", "unattributed", 10, 100'000}};
    return p;
}

} // namespace

TEST(HostProfileJson, RoundTripsThroughParse)
{
    const obs::HostProfile p = sampleHostProfile();
    const auto v = hostProfileJson(p);
    const auto parsed = obs::json::Value::parse(v.dump(2));
    ASSERT_TRUE(parsed.has_value());

    const auto back = hostProfileFromJson(*parsed);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->enabled);
    EXPECT_EQ(back->events, p.events);
    EXPECT_EQ(back->wallNs, p.wallNs);
    EXPECT_EQ(back->dispatchNs, p.dispatchNs);
    ASSERT_EQ(back->buckets.size(), p.buckets.size());
    for (std::size_t i = 0; i < p.buckets.size(); ++i) {
        EXPECT_EQ(back->buckets[i].name(), p.buckets[i].name());
        EXPECT_EQ(back->buckets[i].count, p.buckets[i].count);
        EXPECT_EQ(back->buckets[i].selfNs, p.buckets[i].selfNs);
    }
    EXPECT_DOUBLE_EQ(back->attributedFraction(),
                     p.attributedFraction());
    EXPECT_EQ(back->obsNs(), p.obsNs());
}

TEST(HostProfileJson, SeparatesDeterministicAndHostSections)
{
    const auto v = hostProfileJson(sampleHostProfile());
    // Deterministic across --jobs=N: the event total and the bucket
    // counts...
    ASSERT_NE(v.find("events"), nullptr);
    ASSERT_NE(v.find("counts"), nullptr);
    EXPECT_DOUBLE_EQ(
        v.find("counts")->find("gpu;l1_tlb")->asNumber(), 800.0);
    // ...while every nanosecond-derived number lives under "host",
    // the subtree compare treats warn-only and excludes from drift.
    const auto *host = v.find("host");
    ASSERT_NE(host, nullptr);
    ASSERT_NE(host->find("wall_ns"), nullptr);
    ASSERT_NE(host->find("events_per_sec"), nullptr);
    ASSERT_NE(host->find("attributed_fraction"), nullptr);
    ASSERT_NE(host->find("self_ns"), nullptr);
    EXPECT_EQ(v.find("wall_ns"), nullptr);
}

TEST(HostProfileJson, FromJsonRejectsMalformedSections)
{
    EXPECT_FALSE(
        hostProfileFromJson(obs::json::Value::array()).has_value());
    auto noCounts = obs::json::Value::object();
    noCounts["events"] = 3.0;
    EXPECT_FALSE(hostProfileFromJson(noCounts).has_value());
}

TEST(RunReportJson, HostProfileSectionAppearsOnlyWhenEnabled)
{
    RunResult off = sampleResult();
    const auto without =
        runReportJson("off", SystemConfig::baseline(), off);
    EXPECT_EQ(without.find("host_profile"), nullptr);

    RunResult on = sampleResult();
    on.hostProfile = sampleHostProfile();
    const auto with = runReportJson("on", SystemConfig::baseline(), on);
    const auto *hp = with.find("host_profile");
    ASSERT_NE(hp, nullptr);
    EXPECT_DOUBLE_EQ(hp->find("events")->asNumber(), 2000.0);
}
