/**
 * @file
 * Tests pinning the configuration defaults to the paper's Tables I
 * and II, the policy presets, and the fabric variants.
 */

#include <gtest/gtest.h>

#include "src/sys/system_config.hh"

using namespace griffin;
using sys::SystemConfig;

TEST(SystemConfig, TableIiTopology)
{
    const SystemConfig cfg;
    EXPECT_EQ(cfg.numGpus, 4u);
    EXPECT_EQ(cfg.numDevices(), 5u);
    EXPECT_EQ(cfg.gpu.numSes, 4u);
    EXPECT_EQ(cfg.gpu.cusPerSe, 9u);
    EXPECT_EQ(cfg.gpu.numCus(), 36u);
}

TEST(SystemConfig, TableIiCachesAndTlbs)
{
    const SystemConfig cfg;
    EXPECT_EQ(cfg.gpu.l1Cache.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.gpu.l1Cache.assoc, 4u);
    EXPECT_EQ(cfg.gpu.l2Cache.sizeBytes, 8ull * 256 * 1024);
    EXPECT_EQ(cfg.gpu.l2Cache.assoc, 16u);
    EXPECT_EQ(cfg.gpu.l1Tlb.numSets, 1u);
    EXPECT_EQ(cfg.gpu.l1Tlb.assoc, 32u);
    EXPECT_EQ(cfg.gpu.l2Tlb.numSets, 32u);
    EXPECT_EQ(cfg.gpu.l2Tlb.assoc, 16u);
    EXPECT_EQ(cfg.iommu.numWalkers, 8u);
    EXPECT_EQ(cfg.gpu.pageShift, 12u); // 4 KB pages
}

TEST(SystemConfig, TableIiFabricIsPcieV4)
{
    const SystemConfig cfg;
    // 32 GB/s per direction at 1 GHz = 32 bytes per cycle.
    EXPECT_DOUBLE_EQ(cfg.link.bytesPerCycle, 32.0);
}

TEST(SystemConfig, HighBandwidthFabricVariant)
{
    SystemConfig cfg = SystemConfig::griffinDefault();
    cfg.withHighBandwidthFabric();
    EXPECT_DOUBLE_EQ(cfg.link.bytesPerCycle, 256.0);
    EXPECT_LT(cfg.link.latency, SystemConfig{}.link.latency);
    EXPECT_EQ(cfg.policy, sys::PolicyKind::Griffin); // preserved
}

TEST(SystemConfig, PolicyPresets)
{
    EXPECT_EQ(SystemConfig::baseline().policy,
              sys::PolicyKind::FirstTouch);
    EXPECT_EQ(SystemConfig::griffinDefault().policy,
              sys::PolicyKind::Griffin);
}

TEST(GriffinConfig, TableIDefaults)
{
    const core::GriffinConfig cfg;
    EXPECT_EQ(cfg.nPtw, 8u);
    EXPECT_EQ(cfg.tAc, 1000u);
    EXPECT_DOUBLE_EQ(cfg.alpha, 0.03);
    EXPECT_DOUBLE_EQ(cfg.lambdaD, 2.0);
    EXPECT_DOUBLE_EQ(cfg.lambdaS, 1.3);
    EXPECT_DOUBLE_EQ(cfg.lambdaT, 0.03);
}

TEST(GriffinConfig, ScaledTimescaleTuning)
{
    // griffinDefault() documents the two retuned filter parameters;
    // everything else stays at Table I.
    const auto cfg = SystemConfig::griffinDefault().griffin;
    EXPECT_DOUBLE_EQ(cfg.alpha, 0.25);
    EXPECT_DOUBLE_EQ(cfg.lambdaT, 0.002);
    EXPECT_EQ(cfg.nPtw, 8u);
    EXPECT_EQ(cfg.tAc, 1000u);
    EXPECT_DOUBLE_EQ(cfg.lambdaD, 2.0);
    EXPECT_DOUBLE_EQ(cfg.lambdaS, 1.3);
}

TEST(GriffinConfig, AllMechanismsOnByDefault)
{
    const core::GriffinConfig cfg;
    EXPECT_TRUE(cfg.enableDftm);
    EXPECT_TRUE(cfg.enableInterGpuMigration);
    EXPECT_TRUE(cfg.useAcud);
    EXPECT_FALSE(cfg.enablePredictiveMigration); // SS VII future work
}
