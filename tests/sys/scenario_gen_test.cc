#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/sys/scenario_gen.hh"
#include "src/workloads/workload.hh"

namespace {

using griffin::sys::Scenario;
using griffin::sys::fuzzCorpusSeeds;
using griffin::sys::isScenarioKnob;
using griffin::sys::makeScenario;
using griffin::sys::PolicyKind;
using griffin::sys::scenarioKnobs;

TEST(ScenarioGen, SameSeedSameScenario)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        const Scenario a = makeScenario(seed);
        const Scenario b = makeScenario(seed);
        EXPECT_EQ(a.describe(), b.describe());
        EXPECT_EQ(a.label(), b.label());
    }
}

TEST(ScenarioGen, DifferentSeedsDiffer)
{
    // Not every pair differs (small knob ranges), but across a run of
    // seeds the descriptions cannot all collapse to one.
    std::set<std::string> seen;
    for (std::uint64_t seed = 1; seed <= 32; ++seed)
        seen.insert(makeScenario(seed).describe());
    EXPECT_GT(seen.size(), 16u);
}

TEST(ScenarioGen, EveryScenarioIsValidByConstruction)
{
    for (std::uint64_t seed = 1; seed <= 300; ++seed) {
        const Scenario s = makeScenario(seed);
        // The workload exists.
        EXPECT_NE(griffin::wl::makeWorkload(s.workload,
                                            s.workloadConfig),
                  nullptr)
            << "seed " << seed;
        // Griffin needs at least two GPUs for DPC classification.
        if (s.config.policy == PolicyKind::Griffin) {
            EXPECT_GE(s.config.numGpus, 2u) << "seed " << seed;
        }
        EXPECT_GE(s.config.numGpus, 1u);
        EXPECT_LE(s.config.numGpus, 8u);
        EXPECT_GE(s.config.gpu.pageShift, 12u);
        EXPECT_LE(s.config.gpu.pageShift, 14u);
        EXPECT_GE(s.workloadConfig.scaleDiv, 128u);
        EXPECT_GT(s.config.iommu.numWalkers, 0u);
        EXPECT_GT(s.config.link.bytesPerCycle, 0.0);
    }
}

TEST(ScenarioGen, PinningHoldsTheKnobAtItsDefault)
{
    // Find a seed whose policy knob draws Griffin, pin "policy", and
    // expect the baseline default back.
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        const Scenario free = makeScenario(seed);
        if (free.config.policy != PolicyKind::Griffin)
            continue;
        const Scenario pinned = makeScenario(seed, {"policy"});
        EXPECT_EQ(pinned.config.policy, PolicyKind::FirstTouch);
        return;
    }
    FAIL() << "no seed in 1..64 drew the Griffin policy";
}

TEST(ScenarioGen, PinningOneKnobLeavesTheOthersAlone)
{
    for (std::uint64_t seed : {7ull, 19ull, 101ull}) {
        const Scenario free = makeScenario(seed);
        const Scenario pinned = makeScenario(seed, {"flush"});
        // The pinned knob reverts to its default...
        EXPECT_EQ(pinned.config.cpuFlushPenalty, 100u);
        // ...while every independent knob keeps its draw.
        EXPECT_EQ(pinned.workload, free.workload);
        EXPECT_EQ(pinned.workloadConfig.scaleDiv,
                  free.workloadConfig.scaleDiv);
        EXPECT_EQ(pinned.workloadConfig.seed, free.workloadConfig.seed);
        EXPECT_EQ(pinned.config.numGpus, free.config.numGpus);
        EXPECT_EQ(pinned.config.policy, free.config.policy);
        EXPECT_EQ(pinned.config.gpu.pageShift, free.config.gpu.pageShift);
        EXPECT_EQ(pinned.config.iommu.numWalkers,
                  free.config.iommu.numWalkers);
        EXPECT_EQ(pinned.config.timeseriesTick, free.config.timeseriesTick);
    }
}

TEST(ScenarioGen, UnknownPinNamesAreIgnored)
{
    const Scenario a = makeScenario(5);
    const Scenario b = makeScenario(5, {"no-such-knob"});
    EXPECT_TRUE(b.pinned.empty());
    EXPECT_EQ(a.describe(), b.describe());
}

TEST(ScenarioGen, KnobListIsStable)
{
    const auto &knobs = scenarioKnobs();
    EXPECT_GE(knobs.size(), 10u);
    for (const std::string &k : knobs)
        EXPECT_TRUE(isScenarioKnob(k));
    EXPECT_FALSE(isScenarioKnob("bogus"));
    // Names relied on by shrink repro commands in docs and CI.
    EXPECT_TRUE(isScenarioKnob("workload"));
    EXPECT_TRUE(isScenarioKnob("policy"));
    EXPECT_TRUE(isScenarioKnob("chaos"));
    EXPECT_TRUE(isScenarioKnob("telemetry"));
}

TEST(ScenarioGen, ReproCommandNamesSeedAndPins)
{
    const Scenario s = makeScenario(0x2a, {"chaos", "telemetry"});
    EXPECT_EQ(s.reproCommand(),
              "griffin-fuzz --seed=0x2a --seeds=1 --pin=chaos,telemetry");
}

TEST(ScenarioGen, CorpusCoversTheKnobSpace)
{
    const auto &seeds = fuzzCorpusSeeds();
    ASSERT_EQ(seeds.size(), 16u);
    bool griffinSeen = false, firstTouchSeen = false;
    bool chaosOn = false, chaosOff = false;
    bool pageStatsOn = false, timeseriesOn = false;
    std::set<unsigned> gpuCounts;
    std::set<std::string> workloads;
    for (const std::uint64_t seed : seeds) {
        const Scenario s = makeScenario(seed);
        (s.config.policy == PolicyKind::Griffin ? griffinSeen
                                                : firstTouchSeen) = true;
        (s.config.chaos.enabled() ? chaosOn : chaosOff) = true;
        pageStatsOn |= s.config.pageStats.enabled;
        timeseriesOn |= s.config.timeseriesTick > 0;
        gpuCounts.insert(s.config.numGpus);
        workloads.insert(s.workload);
    }
    EXPECT_TRUE(griffinSeen);
    EXPECT_TRUE(firstTouchSeen);
    EXPECT_TRUE(chaosOn);
    EXPECT_TRUE(chaosOff);
    EXPECT_TRUE(pageStatsOn);
    EXPECT_TRUE(timeseriesOn);
    EXPECT_GE(gpuCounts.size(), 3u);
    EXPECT_GE(workloads.size(), 5u);
}

} // namespace
