/**
 * @file
 * Tests for the chaos layer: --chaos spec parsing, injector
 * determinism, every recovery path at system level, and the
 * invariant auditor staying clean under sustained fault injection.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/sys/chaos.hh"
#include "src/sys/multi_gpu_system.hh"
#include "src/workloads/workload.hh"

using namespace griffin;
using sys::ChaosConfig;
using sys::FaultInjector;

TEST(ChaosConfig, DefaultIsDisabled)
{
    ChaosConfig cfg;
    EXPECT_FALSE(cfg.enabled());
}

TEST(ChaosConfig, BareRateSetsEveryClass)
{
    const auto cfg = ChaosConfig::parse("0.01");
    ASSERT_TRUE(cfg.has_value());
    EXPECT_DOUBLE_EQ(cfg->linkFaultRate, 0.01);
    EXPECT_DOUBLE_EQ(cfg->linkDegradeRate, 0.01);
    EXPECT_DOUBLE_EQ(cfg->dmaFaultRate, 0.01);
    EXPECT_DOUBLE_EQ(cfg->shootdownAckLossRate, 0.01);
    EXPECT_DOUBLE_EQ(cfg->walkerStallRate, 0.01);
    EXPECT_TRUE(cfg->enabled());
}

TEST(ChaosConfig, KeyValueSpecSetsOnlyNamedKeys)
{
    const auto cfg =
        ChaosConfig::parse("dma=0.5,link=0.02,timeout=200000,retries=2");
    ASSERT_TRUE(cfg.has_value());
    EXPECT_DOUBLE_EQ(cfg->dmaFaultRate, 0.5);
    EXPECT_DOUBLE_EQ(cfg->linkFaultRate, 0.02);
    EXPECT_DOUBLE_EQ(cfg->linkDegradeRate, 0.0);
    EXPECT_DOUBLE_EQ(cfg->walkerStallRate, 0.0);
    EXPECT_EQ(cfg->migrationTimeout, 200000u);
    EXPECT_EQ(cfg->dmaMaxRetries, 2u);
}

TEST(ChaosConfig, TunableKeysParse)
{
    const auto cfg = ChaosConfig::parse(
        "ack=0.2,ackto=7000,reissues=3,stall=1500,walker=0.1,"
        "window=9000,factor=0.5,backoff=250,audit=12345,"
        "retrydelay=600,maxnacks=4,degrade=0.05");
    ASSERT_TRUE(cfg.has_value());
    EXPECT_DOUBLE_EQ(cfg->shootdownAckLossRate, 0.2);
    EXPECT_EQ(cfg->shootdownAckTimeout, 7000u);
    EXPECT_EQ(cfg->shootdownMaxReissues, 3u);
    EXPECT_EQ(cfg->walkerStallPenalty, 1500u);
    EXPECT_DOUBLE_EQ(cfg->walkerStallRate, 0.1);
    EXPECT_EQ(cfg->linkDegradeDuration, 9000u);
    EXPECT_DOUBLE_EQ(cfg->linkDegradeFactor, 0.5);
    EXPECT_EQ(cfg->dmaRetryBackoff, 250u);
    EXPECT_EQ(cfg->auditPeriod, 12345u);
    EXPECT_EQ(cfg->linkRetryDelay, 600u);
    EXPECT_EQ(cfg->linkMaxRetries, 4u);
    EXPECT_DOUBLE_EQ(cfg->linkDegradeRate, 0.05);
}

TEST(ChaosConfig, MalformedSpecsAreRejected)
{
    EXPECT_FALSE(ChaosConfig::parse("").has_value());
    EXPECT_FALSE(ChaosConfig::parse("bogus=0.1").has_value());
    EXPECT_FALSE(ChaosConfig::parse("dma").has_value());
    EXPECT_FALSE(ChaosConfig::parse("dma=").has_value());
    EXPECT_FALSE(ChaosConfig::parse("dma=abc").has_value());
    EXPECT_FALSE(ChaosConfig::parse("dma=0.5junk").has_value());
    EXPECT_FALSE(ChaosConfig::parse("dma=1.5").has_value());
    EXPECT_FALSE(ChaosConfig::parse("dma=-0.1").has_value());
    EXPECT_FALSE(ChaosConfig::parse("1.5").has_value());
    EXPECT_FALSE(ChaosConfig::parse("factor=0").has_value());
    EXPECT_FALSE(ChaosConfig::parse("factor=2").has_value());
    EXPECT_FALSE(ChaosConfig::parse("dma=0.1,,link=0.1").has_value());
}

TEST(FaultInjectorTest, SameSeedSameDecisionStream)
{
    ChaosConfig cfg;
    cfg.dmaFaultRate = 0.3;
    cfg.linkFaultRate = 0.2;
    cfg.seed = 77;
    FaultInjector a(cfg), b(cfg);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.failDmaTransfer(), b.failDmaTransfer());
        EXPECT_EQ(a.dropMessage(), b.dropMessage());
    }
    EXPECT_EQ(a.counters.injected, b.counters.injected);
    EXPECT_GT(a.counters.injected, 0u);
    EXPECT_EQ(a.counters.dmaFaults + a.counters.linkFaults,
              a.counters.injected);
}

TEST(FaultInjectorTest, ClassStreamsAreIndependent)
{
    // Drawing from one class's stream must not perturb another's:
    // the dma decision sequence is identical whether or not link
    // decisions are interleaved.
    ChaosConfig cfg;
    cfg.dmaFaultRate = 0.3;
    cfg.linkFaultRate = 0.3;
    cfg.seed = 5;

    FaultInjector pure(cfg);
    std::vector<bool> expected;
    for (int i = 0; i < 200; ++i)
        expected.push_back(pure.failDmaTransfer());

    FaultInjector mixed(cfg);
    std::vector<bool> got;
    for (int i = 0; i < 200; ++i) {
        (void)mixed.dropMessage();
        got.push_back(mixed.failDmaTransfer());
        (void)mixed.dropMessage();
    }
    EXPECT_EQ(got, expected);
}

TEST(FaultInjectorTest, ZeroRateConsumesNoRandomness)
{
    // A disabled class must not advance its stream — so enabling one
    // class never changes another's schedule, and the chaos-off fast
    // path costs nothing.
    ChaosConfig cfg;
    cfg.dmaFaultRate = 0.0;
    FaultInjector inj(cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(inj.failDmaTransfer());
    EXPECT_EQ(inj.counters.injected, 0u);
}

namespace {

sys::RunResult
runChaos(const std::string &workload, const ChaosConfig &chaos,
         sys::SystemConfig scfg = sys::SystemConfig::griffinDefault(),
         unsigned scale_div = 64)
{
    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = scale_div;
    wcfg.seed = 42;
    auto wl = wl::makeWorkload(workload, wcfg);
    scfg.chaos = chaos;
    sys::MultiGpuSystem system(scfg);
    return system.run(*wl);
}

} // namespace

TEST(ChaosSystem, RunsCompleteCleanUnderMixedFaults)
{
    auto chaos = ChaosConfig::parse("dma=0.3,link=0.02,degrade=0.01,"
                                    "ack=0.2,walker=0.05");
    ASSERT_TRUE(chaos.has_value());
    const auto r = runChaos("SC", *chaos);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.chaosInjected, 0u);
    EXPECT_EQ(r.auditViolations, 0u);
    EXPECT_EQ(r.faultSpansOpen, 0u);

    // Page conservation survives injection.
    std::uint64_t total = 0;
    for (const auto n : r.pagesPerDevice)
        total += n;
    EXPECT_EQ(double(total), r.stats.get("pageTable.totalPages"));
}

TEST(ChaosSystem, SameSeedIsDeterministic)
{
    auto chaos = ChaosConfig::parse("dma=0.3,link=0.02,walker=0.05");
    ASSERT_TRUE(chaos.has_value());
    chaos->seed = 9;
    const auto a = runChaos("MT", *chaos);
    const auto b = runChaos("MT", *chaos);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.chaosInjected, b.chaosInjected);
    EXPECT_EQ(a.chaosRetries, b.chaosRetries);
    EXPECT_EQ(a.chaosFallbacks, b.chaosFallbacks);
    EXPECT_EQ(a.chaosRecoveryCycles, b.chaosRecoveryCycles);
    EXPECT_EQ(a.pagesPerDevice, b.pagesPerDevice);
}

TEST(ChaosSystem, ChaosSeedDoesNotPerturbWorkload)
{
    // Different injector seeds change the fault schedule but the
    // workload's own trace stays byte-identical — checked indirectly:
    // with all rates 0 but different chaos seeds, runs are identical.
    ChaosConfig off_a, off_b;
    off_a.seed = 1;
    off_b.seed = 999;
    EXPECT_FALSE(off_a.enabled());
    const auto a = runChaos("KM", off_a);
    const auto b = runChaos("KM", off_b);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.pagesPerDevice, b.pagesPerDevice);
}

TEST(ChaosSystem, DmaExhaustionFallsBackToDca)
{
    // Every DMA attempt fails: retries exhaust, transfers are
    // abandoned, the driver's migration timeout fires and the pages
    // degrade to DCA remote access — and the run still completes.
    auto chaos = ChaosConfig::parse("dma=1.0,timeout=100000");
    ASSERT_TRUE(chaos.has_value());
    const auto r = runChaos("SC", *chaos);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.auditViolations, 0u);
    EXPECT_GT(r.chaosFallbacks, 0u);
    EXPECT_GT(r.stats.get("chaos.dmaAbandoned"), 0.0);
    EXPECT_GT(r.stats.get("chaos.migrationTimeouts"), 0.0);
    EXPECT_GT(r.stats.get("iommu.fallbackRedirects"), 0.0);
    // Nothing lands: no page ever completes a CPU->GPU migration.
    EXPECT_EQ(r.pagesMigratedFromCpu, 0u);
}

TEST(ChaosSystem, TransientDmaFaultsRetryAndRecover)
{
    auto chaos = ChaosConfig::parse("dma=0.4");
    ASSERT_TRUE(chaos.has_value());
    const auto r = runChaos("SC", *chaos);
    EXPECT_GT(r.chaosRetries, 0u);
    EXPECT_GT(r.chaosRecoveryCycles, 0u);
    EXPECT_GT(r.pagesMigratedFromCpu, 0u);
    EXPECT_EQ(r.auditViolations, 0u);
}

TEST(ChaosSystem, LinkFaultsRetransmitAndComplete)
{
    auto chaos = ChaosConfig::parse("link=0.1");
    ASSERT_TRUE(chaos.has_value());
    const auto r = runChaos("SC", *chaos);
    EXPECT_GT(r.stats.get("chaos.messagesNacked"), 0.0);
    EXPECT_GT(r.chaosRetries, 0u);
    EXPECT_EQ(r.auditViolations, 0u);

    // NACK-free identical run is faster (recovery adds real latency).
    ChaosConfig off;
    const auto base = runChaos("SC", off);
    EXPECT_GT(r.cycles, base.cycles);
}

TEST(ChaosSystem, WalkerStallsAreInjectedAndAccounted)
{
    auto chaos = ChaosConfig::parse("walker=0.5");
    ASSERT_TRUE(chaos.has_value());
    const auto r = runChaos("MT", *chaos);
    EXPECT_GT(r.stats.get("iommu.walksStalled"), 0.0);
    EXPECT_GT(r.chaosRecoveryCycles, 0u);
    EXPECT_EQ(r.auditViolations, 0u);
    EXPECT_EQ(double(r.chaosInjected),
              r.stats.get("iommu.walksStalled"));
}

TEST(ChaosSystem, LostShootdownAcksAreReissued)
{
    auto chaos = ChaosConfig::parse("ack=1.0,reissues=2");
    ASSERT_TRUE(chaos.has_value());
    const auto r = runChaos("SC", *chaos, sys::SystemConfig::griffinDefault(),
                            48);
    EXPECT_EQ(r.auditViolations, 0u);
    if (r.gpuShootdowns > 0) {
        EXPECT_GT(r.stats.get("chaos.shootdownsReissued"), 0.0);
        EXPECT_GT(r.chaosRetries, 0u);
    }
}

TEST(ChaosSystem, BaselinePolicySurvivesChaosToo)
{
    auto chaos = ChaosConfig::parse("dma=0.3,link=0.05,walker=0.1");
    ASSERT_TRUE(chaos.has_value());
    const auto r =
        runChaos("KM", *chaos, sys::SystemConfig::baseline());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.chaosInjected, 0u);
    EXPECT_EQ(r.auditViolations, 0u);
}

TEST(ChaosSystem, ReportAccountsForEveryInjection)
{
    auto chaos = ChaosConfig::parse("dma=0.2,link=0.02,walker=0.05");
    ASSERT_TRUE(chaos.has_value());
    const auto r = runChaos("SC", *chaos);
    const double per_class = r.stats.get("chaos.linkFaults") +
                             r.stats.get("chaos.linkDegrades") +
                             r.stats.get("chaos.dmaFaults") +
                             r.stats.get("chaos.acksLost") +
                             r.stats.get("chaos.walkerStalls");
    EXPECT_EQ(double(r.chaosInjected), per_class);
    EXPECT_GT(r.chaosInjected, 0u);
}
