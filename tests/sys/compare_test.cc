/**
 * @file
 * Unit tests for sys/compare: threshold-spec parsing, metric aliasing
 * and dotted-path lookup (including the literal-key fallback for
 * counter names), and the pass/fail semantics of compareReports — the
 * library behind griffin-compare and the CI perf-regression gate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "src/obs/json.hh"
#include "src/sys/compare.hh"
#include "src/sys/report.hh"

using namespace griffin;
using obs::json::Value;
using sys::compareReports;
using sys::parseThreshold;
using sys::Threshold;

namespace {

/** A minimal run report document with one labelled run. */
Value
makeReport(double fault_p95, double cycles, double walks = 100.0,
           const std::string &label = "MT/griffin")
{
    Value run = Value::object();
    run["label"] = label;
    Value result = Value::object();
    result["cycles"] = cycles;
    result["localFraction"] = 0.75;
    run["result"] = std::move(result);
    Value counters = Value::object();
    counters["iommu.walks"] = walks;
    run["counters"] = std::move(counters);
    Value fl = Value::object();
    fl["mean"] = fault_p95 * 0.6;
    fl["p50"] = fault_p95 * 0.5;
    fl["p95"] = fault_p95;
    fl["p99"] = fault_p95 * 1.2;
    Value hists = Value::object();
    hists["faultLatency"] = std::move(fl);
    run["histograms"] = std::move(hists);

    Value doc = Value::object();
    Value runs = Value::array();
    runs.push(std::move(run));
    doc["runs"] = std::move(runs);
    return doc;
}

} // namespace

TEST(ParseThreshold, AcceptsDirectionsAndPercents)
{
    auto t = parseThreshold("fault_p95:+5%");
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->metric, "fault_p95");
    EXPECT_DOUBLE_EQ(t->pct, 5.0);
    EXPECT_EQ(t->direction, +1);

    t = parseThreshold("local_fraction:-2.5%");
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(t->pct, 2.5);
    EXPECT_EQ(t->direction, -1);

    t = parseThreshold("migrations:0%");
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->direction, 0);
    EXPECT_DOUBLE_EQ(t->pct, 0.0);

    // The trailing % is optional.
    t = parseThreshold("cycles:+3");
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(t->pct, 3.0);
}

TEST(ParseThreshold, RejectsMalformedSpecs)
{
    EXPECT_FALSE(parseThreshold("").has_value());
    EXPECT_FALSE(parseThreshold("fault_p95").has_value());
    EXPECT_FALSE(parseThreshold(":5%").has_value());
    EXPECT_FALSE(parseThreshold("fault_p95:").has_value());
    EXPECT_FALSE(parseThreshold("fault_p95:abc%").has_value());
    EXPECT_FALSE(parseThreshold("fault_p95:-%").has_value());
}

TEST(ResolveMetricPath, AliasesAndPassThrough)
{
    EXPECT_EQ(sys::resolveMetricPath("cycles"), "result.cycles");
    EXPECT_EQ(sys::resolveMetricPath("fault_p95"),
              "histograms.faultLatency.p95");
    EXPECT_EQ(sys::resolveMetricPath("transfer_share"),
              "fault_breakdown.stages.transfer.share");
    EXPECT_EQ(sys::resolveMetricPath("batch_wait_p95"),
              "fault_breakdown.stages.batch_wait.p95");
    // Unknown names pass through verbatim.
    EXPECT_EQ(sys::resolveMetricPath("counters.iommu.walks"),
              "counters.iommu.walks");
}

TEST(ResolveMetricPath, PageAnalyticsAliases)
{
    EXPECT_EQ(sys::resolveMetricPath("churn"),
              "page_stats.churn_events");
    EXPECT_EQ(sys::resolveMetricPath("churn_pages"),
              "page_stats.churn_pages");
    EXPECT_EQ(sys::resolveMetricPath("pages_migrated"),
              "page_stats.pages_migrated");
    EXPECT_EQ(sys::resolveMetricPath("reuse_p95"),
              "page_stats.reuse_distance.p95");
    EXPECT_EQ(sys::resolveMetricPath("peak_migrations"),
              "timeseries.peak.migrations");
    EXPECT_EQ(sys::resolveMetricPath("peak_shootdowns"),
              "timeseries.peak.shootdowns");
}

TEST(LookupMetric, DescendsAndFallsBackToLiteralKeys)
{
    const Value doc = makeReport(1000.0, 5000.0, 42.0);
    const Value &run = doc.find("runs")->at(0);

    auto v = sys::lookupMetric(run, "result.cycles");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 5000.0);

    // "iommu.walks" is ONE key under "counters": the dotted descent
    // fails at "iommu" and the remaining path must match literally.
    v = sys::lookupMetric(run, "counters.iommu.walks");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 42.0);

    EXPECT_FALSE(sys::lookupMetric(run, "result.nope").has_value());
    EXPECT_FALSE(sys::lookupMetric(run, "nope.cycles").has_value());
}

TEST(CompareReports, IdenticalReportsPass)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1000.0, 5000.0);
    const auto res = compareReports(
        ref, cur, {*parseThreshold("fault_p95:+5%"),
                   *parseThreshold("cycles:+3%")});
    EXPECT_TRUE(res.pass);
    ASSERT_EQ(res.checks.size(), 2u);
    for (const auto &c : res.checks) {
        EXPECT_TRUE(c.ok);
        EXPECT_DOUBLE_EQ(c.deltaPct, 0.0);
    }
    EXPECT_TRUE(res.errors.empty());
    EXPECT_TRUE(res.drifts.empty());
}

TEST(CompareReports, InjectedFaultP95RegressionFails)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1080.0, 5000.0); // +8% > +5% gate
    const auto res =
        compareReports(ref, cur, {*parseThreshold("fault_p95:+5%")});
    EXPECT_FALSE(res.pass);
    ASSERT_EQ(res.checks.size(), 1u);
    EXPECT_FALSE(res.checks[0].ok);
    EXPECT_NEAR(res.checks[0].deltaPct, 8.0, 1e-9);
}

TEST(CompareReports, ImprovementPassesDirectionalGate)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(800.0, 5000.0); // 20% faster
    const auto res =
        compareReports(ref, cur, {*parseThreshold("fault_p95:+5%")});
    EXPECT_TRUE(res.pass) << "a '+' gate must not fail on improvement";

    // ...but a bidirectional gate treats it as drift out of bounds.
    const auto both =
        compareReports(ref, cur, {*parseThreshold("fault_p95:5%")});
    EXPECT_FALSE(both.pass);
}

TEST(CompareReports, MissingRunInCurrentFails)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1000.0, 5000.0, 100.0, "BFS/griffin");
    const auto res = compareReports(ref, cur, {});
    EXPECT_FALSE(res.pass);
    EXPECT_FALSE(res.errors.empty());
}

TEST(CompareReports, DuplicateLabelsAreFatal)
{
    // Two runs sharing a label make every per-label lookup ambiguous;
    // the comparison must refuse a verdict rather than silently
    // matching one of the pair (griffin-compare exits 2 on fatal).
    Value extra = Value::object();
    extra["label"] = "MT/griffin";
    Value result = Value::object();
    result["cycles"] = 9999.0;
    extra["result"] = std::move(result);

    const Value base = makeReport(1000.0, 5000.0);
    Value dupRuns = Value::array();
    dupRuns.push(base.find("runs")->at(0));
    dupRuns.push(std::move(extra));
    Value dupDoc = Value::object();
    dupDoc["runs"] = std::move(dupRuns);

    const auto res =
        compareReports(base, dupDoc, {*parseThreshold("cycles:+5%")});
    EXPECT_TRUE(res.fatal);
    EXPECT_FALSE(res.pass);
    EXPECT_TRUE(res.checks.empty())
        << "no checks may be reported off an ambiguous label match";
    bool mentioned = false;
    for (const auto &e : res.errors)
        mentioned = mentioned ||
                    e.find("duplicate run label") != std::string::npos;
    EXPECT_TRUE(mentioned);
    EXPECT_EQ(res.verdictJson().find("status")->asString(), "fatal");
}

TEST(CompareReports, UniqueLabelsAreNotFatal)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const auto res =
        compareReports(ref, ref, {*parseThreshold("cycles:+5%")});
    EXPECT_FALSE(res.fatal);
    EXPECT_TRUE(res.pass);
}

TEST(CompareReports, MissingMetricFails)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1000.0, 5000.0);
    const auto res =
        compareReports(ref, cur, {*parseThreshold("transfer_share:+5%")});
    EXPECT_FALSE(res.pass) << "a gate that skips a missing metric is "
                              "not a gate";
    ASSERT_EQ(res.checks.size(), 1u);
    EXPECT_FALSE(res.checks[0].note.empty());
}

TEST(CompareReports, UnthresholdedDriftIsInformational)
{
    const Value ref = makeReport(1000.0, 5000.0, 100.0);
    const Value cur = makeReport(1000.0, 5000.0, 150.0); // walks +50%
    const auto res =
        compareReports(ref, cur, {*parseThreshold("fault_p95:+5%")});
    EXPECT_TRUE(res.pass) << "drift without a threshold must not fail";
    bool saw_walks = false;
    for (const auto &d : res.drifts)
        if (d.path.find("iommu.walks") != std::string::npos) {
            saw_walks = true;
            EXPECT_NEAR(d.deltaPct, 50.0, 1e-9);
        }
    EXPECT_TRUE(saw_walks);
}

TEST(CompareReports, UnknownSchemaVersionWarnsButDoesNotFail)
{
    // A report written by a newer library than this build may carry
    // sections the comparer cannot interpret; the numbers it does
    // know still gate, so the skew is surfaced as a warning, never as
    // a failure.
    const Value ref = makeReport(1000.0, 5000.0); // no schema_version
    Value cur = makeReport(1000.0, 5000.0);
    cur["schema_version"] = double(sys::reportSchemaVersion + 96);

    const auto res =
        compareReports(ref, cur, {*parseThreshold("cycles:+5%")});
    EXPECT_TRUE(res.pass);
    EXPECT_FALSE(res.fatal);
    ASSERT_FALSE(res.warnings.empty());
    EXPECT_NE(res.warnings[0].find("schema_version"), std::string::npos);

    // The verdict JSON carries the warnings for CI consumers.
    const Value verdict = res.verdictJson();
    ASSERT_NE(verdict.find("warnings"), nullptr);
    EXPECT_EQ(verdict.find("warnings")->size(), res.warnings.size());
}

TEST(CompareReports, KnownSchemaVersionsProduceNoWarning)
{
    // Every shipped version is additive, so any known pair — v1 (no
    // field) references against a v3 report, say — diffs cleanly and
    // silently. Only versions above the known set warn.
    static_assert(sys::knownReportSchemaVersion(1));
    static_assert(sys::knownReportSchemaVersion(sys::reportSchemaVersion));
    static_assert(!sys::knownReportSchemaVersion(0));
    static_assert(
        !sys::knownReportSchemaVersion(sys::reportSchemaVersion + 1));
    for (std::uint64_t v = 1; v <= sys::reportSchemaVersion; ++v) {
        const Value ref = makeReport(1000.0, 5000.0); // v1 reference
        Value cur = makeReport(1000.0, 5000.0);
        cur["schema_version"] = double(v);
        const auto res =
            compareReports(ref, cur, {*parseThreshold("cycles:+5%")});
        EXPECT_TRUE(res.pass);
        EXPECT_TRUE(res.warnings.empty()) << "version " << v;
    }
}

TEST(CompareReports, DocumentWithoutRunsSectionFails)
{
    // A document that is not a report at all (no "runs" array, no
    // bare-run "label") must fail with a parse error, not compare
    // zero runs and report a clean pass.
    Value bogus = Value::object();
    bogus["results"] = Value::array(); // wrong section name
    const auto res =
        compareReports(bogus, makeReport(1000.0, 5000.0),
                       {*parseThreshold("cycles:+5%")});
    EXPECT_FALSE(res.pass);
    ASSERT_FALSE(res.errors.empty());
    EXPECT_NE(res.errors[0].find("runs"), std::string::npos);
}

TEST(CompareReports, RunWithoutLabelIsReported)
{
    Value run = Value::object();
    Value result = Value::object();
    result["cycles"] = 5000.0;
    run["result"] = std::move(result); // no "label"
    Value runs = Value::array();
    runs.push(std::move(run));
    Value doc = Value::object();
    doc["runs"] = std::move(runs);

    const auto res = compareReports(doc, makeReport(1000.0, 5000.0), {});
    EXPECT_FALSE(res.pass);
    bool mentioned = false;
    for (const auto &e : res.errors)
        mentioned = mentioned || e.find("no label") != std::string::npos;
    EXPECT_TRUE(mentioned);
}

TEST(CompareReports, NanMetricFailsWithAnExplicitNote)
{
    // A NaN comparison result is false for every <=, so without
    // special handling the check would fail with deltaPct=nan and no
    // explanation; the verdict must name the non-finite input instead.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1000.0, nan);
    const auto res =
        compareReports(ref, cur, {*parseThreshold("cycles:+5%")});
    EXPECT_FALSE(res.pass);
    ASSERT_EQ(res.checks.size(), 1u);
    EXPECT_FALSE(res.checks[0].ok);
    EXPECT_NE(res.checks[0].note.find("non-finite"), std::string::npos);
    EXPECT_NE(res.checks[0].note.find("current"), std::string::npos);
}

TEST(CompareReports, NanInTheReferenceIsAlsoNamed)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const Value ref = makeReport(1000.0, nan);
    const Value cur = makeReport(1000.0, 5000.0);
    const auto res =
        compareReports(ref, cur, {*parseThreshold("cycles:+5%")});
    EXPECT_FALSE(res.pass);
    ASSERT_EQ(res.checks.size(), 1u);
    EXPECT_NE(res.checks[0].note.find("reference"), std::string::npos);
}

TEST(CompareReports, NonFiniteLeavesStayOutOfDrift)
{
    // The drift table sorts by |deltaPct|; a NaN delta would break the
    // comparator's strict weak ordering (undefined behavior), so
    // non-finite leaves are excluded from drift entirely — the
    // threshold path above is where they get reported.
    const double inf = std::numeric_limits<double>::infinity();
    const Value ref = makeReport(1000.0, 5000.0, 100.0);
    const Value cur = makeReport(
        1100.0, std::numeric_limits<double>::quiet_NaN(), inf);
    const auto res = compareReports(ref, cur, {});
    EXPECT_TRUE(res.pass); // no thresholds, labels match
    for (const auto &d : res.drifts) {
        EXPECT_EQ(d.path.find("result.cycles"), std::string::npos)
            << "NaN leaf leaked into drift";
        EXPECT_EQ(d.path.find("iommu.walks"), std::string::npos)
            << "inf leaf leaked into drift";
        EXPECT_TRUE(std::isfinite(d.deltaPct)) << d.path;
    }
    // The finite fault-latency drift still shows up.
    bool sawFaultDrift = false;
    for (const auto &d : res.drifts)
        sawFaultDrift =
            sawFaultDrift || d.path.find("faultLatency") != std::string::npos;
    EXPECT_TRUE(sawFaultDrift);
}

TEST(CompareReports, VerdictJsonShape)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1080.0, 5000.0);
    const auto res =
        compareReports(ref, cur, {*parseThreshold("fault_p95:+5%")});
    const Value verdict = res.verdictJson();

    // Round-trip through text like CI consumers would.
    const auto parsed = Value::parse(verdict.dump(2));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_NE(parsed->find("status"), nullptr);
    EXPECT_EQ(parsed->find("status")->asString(), "fail");
    ASSERT_NE(parsed->find("checks"), nullptr);
    ASSERT_GE(parsed->find("checks")->size(), 1u);
    const Value &check = parsed->find("checks")->at(0);
    EXPECT_EQ(check.find("metric")->asString(), "fault_p95");
    EXPECT_EQ(check.find("run")->asString(), "MT/griffin");
    EXPECT_FALSE(check.find("ok")->asBool());
    EXPECT_NEAR(check.find("deltaPct")->asNumber(), 8.0, 1e-9);
}

namespace {

/**
 * @p doc with a host_profile section grafted onto its first run
 * (Value::at is const-only, so the document is rebuilt around a
 * copied run).
 */
Value
withHostProfile(const Value &doc, double events_per_sec, double wall_ns,
                double events = 168000.0)
{
    Value run = doc.find("runs")->at(0);
    Value hp = Value::object();
    hp["events"] = events;
    Value counts = Value::object();
    counts["gpu;l1_tlb"] = 11264.0;
    counts["network;deliver"] = 23010.0;
    hp["counts"] = std::move(counts);
    Value host = Value::object();
    host["wall_ns"] = wall_ns;
    host["dispatch_ns"] = wall_ns * 0.7;
    host["events_per_sec"] = events_per_sec;
    Value self = Value::object();
    self["gpu;l1_tlb"] = wall_ns * 0.2;
    self["network;deliver"] = wall_ns * 0.5;
    host["self_ns"] = std::move(self);
    hp["host"] = std::move(host);
    run["host_profile"] = std::move(hp);

    Value out = Value::object();
    Value runs = Value::array();
    runs.push(std::move(run));
    out["runs"] = std::move(runs);
    return out;
}

} // namespace

TEST(ResolveMetricPath, HostProfileAlias)
{
    EXPECT_EQ(sys::resolveMetricPath("host_events_per_sec"),
              "host_profile.host.events_per_sec");
}

TEST(CompareReports, HostTimesAreExcludedFromDrift)
{
    // Host wall time doubles between machines — pure noise.
    const Value ref =
        withHostProfile(makeReport(1000.0, 5000.0), 2.0e6, 9.0e7);
    const Value cur =
        withHostProfile(makeReport(1000.0, 5000.0), 1.0e6, 1.8e8);
    const auto res =
        compareReports(ref, cur, {*parseThreshold("cycles:+5%")});
    EXPECT_TRUE(res.pass);
    for (const auto &d : res.drifts) {
        EXPECT_EQ(d.path.find("host_profile.host"), std::string::npos)
            << "host-time noise leaked into drift: " << d.path;
    }
}

TEST(CompareReports, DeterministicHostProfileCountsStillDrift)
{
    const Value ref =
        withHostProfile(makeReport(1000.0, 5000.0), 2.0e6, 9.0e7);
    // A changed dispatch count is a real behaviour change...
    const Value cur = withHostProfile(makeReport(1000.0, 5000.0),
                                      2.0e6, 9.0e7, 200000.0);
    const auto res =
        compareReports(ref, cur, {*parseThreshold("cycles:+5%")});
    EXPECT_TRUE(res.pass);
    bool saw = false;
    for (const auto &d : res.drifts)
        saw = saw || d.path == "host_profile.events";
    EXPECT_TRUE(saw) << "deterministic profile counts must keep "
                        "participating in drift";
}

TEST(CompareReports, HostEventsPerSecIsForcedWarnOnly)
{
    const Value ref =
        withHostProfile(makeReport(1000.0, 5000.0), 2.0e6, 9.0e7);
    // 4x slower: breaches the -50% bound.
    const Value cur =
        withHostProfile(makeReport(1000.0, 5000.0), 0.5e6, 3.6e8);
    const auto res = compareReports(
        ref, cur, {*parseThreshold("host_events_per_sec:-50%")});
    // The breach downgrades to a warning: host time never hard-fails.
    EXPECT_TRUE(res.pass);
    ASSERT_EQ(res.checks.size(), 1u);
    EXPECT_TRUE(res.checks[0].ok);
    EXPECT_TRUE(res.checks[0].warnedOnly);
    ASSERT_FALSE(res.warnings.empty());
    EXPECT_NE(res.warnings.back().find("warn-only"), std::string::npos);

    const Value verdict = res.verdictJson();
    EXPECT_EQ(verdict.find("status")->asString(), "pass");
    const Value &check = verdict.find("checks")->at(0);
    ASSERT_NE(check.find("warned_only"), nullptr);
    EXPECT_TRUE(check.find("warned_only")->asBool());
}

TEST(CompareReports, ExplicitWarnOnlyThresholdDowngradesAnyMetric)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1200.0, 5000.0); // p95 +20%
    Threshold t = *parseThreshold("fault_p95:+5%");

    // As a hard threshold the regression fails...
    EXPECT_FALSE(compareReports(ref, cur, {t}).pass);

    // ...as a warn-only one (--warn-on) it warns and passes.
    t.warnOnly = true;
    const auto res = compareReports(ref, cur, {t});
    EXPECT_TRUE(res.pass);
    ASSERT_EQ(res.checks.size(), 1u);
    EXPECT_TRUE(res.checks[0].warnedOnly);
    ASSERT_FALSE(res.warnings.empty());
}

TEST(CompareReports, WarnOnlyStillFailsWhenMetricIsMissing)
{
    // warn-only downgrades *breaches*; being unable to read the
    // metric at all still warns rather than silently passing clean.
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1000.0, 5000.0);
    const auto res = compareReports(
        ref, cur, {*parseThreshold("host_events_per_sec:-50%")});
    EXPECT_TRUE(res.pass) << "forced warn-only: missing host profile "
                             "must not hard-fail";
    ASSERT_EQ(res.checks.size(), 1u);
    EXPECT_TRUE(res.checks[0].warnedOnly);
    EXPECT_FALSE(res.checks[0].note.empty());
    ASSERT_FALSE(res.warnings.empty());
    EXPECT_NE(res.warnings.back().find(res.checks[0].note),
              std::string::npos);
}
