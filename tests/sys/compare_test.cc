/**
 * @file
 * Unit tests for sys/compare: threshold-spec parsing, metric aliasing
 * and dotted-path lookup (including the literal-key fallback for
 * counter names), and the pass/fail semantics of compareReports — the
 * library behind griffin-compare and the CI perf-regression gate.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/obs/json.hh"
#include "src/sys/compare.hh"
#include "src/sys/report.hh"

using namespace griffin;
using obs::json::Value;
using sys::compareReports;
using sys::parseThreshold;
using sys::Threshold;

namespace {

/** A minimal run report document with one labelled run. */
Value
makeReport(double fault_p95, double cycles, double walks = 100.0,
           const std::string &label = "MT/griffin")
{
    Value run = Value::object();
    run["label"] = label;
    Value result = Value::object();
    result["cycles"] = cycles;
    result["localFraction"] = 0.75;
    run["result"] = std::move(result);
    Value counters = Value::object();
    counters["iommu.walks"] = walks;
    run["counters"] = std::move(counters);
    Value fl = Value::object();
    fl["mean"] = fault_p95 * 0.6;
    fl["p50"] = fault_p95 * 0.5;
    fl["p95"] = fault_p95;
    fl["p99"] = fault_p95 * 1.2;
    Value hists = Value::object();
    hists["faultLatency"] = std::move(fl);
    run["histograms"] = std::move(hists);

    Value doc = Value::object();
    Value runs = Value::array();
    runs.push(std::move(run));
    doc["runs"] = std::move(runs);
    return doc;
}

} // namespace

TEST(ParseThreshold, AcceptsDirectionsAndPercents)
{
    auto t = parseThreshold("fault_p95:+5%");
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->metric, "fault_p95");
    EXPECT_DOUBLE_EQ(t->pct, 5.0);
    EXPECT_EQ(t->direction, +1);

    t = parseThreshold("local_fraction:-2.5%");
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(t->pct, 2.5);
    EXPECT_EQ(t->direction, -1);

    t = parseThreshold("migrations:0%");
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->direction, 0);
    EXPECT_DOUBLE_EQ(t->pct, 0.0);

    // The trailing % is optional.
    t = parseThreshold("cycles:+3");
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(t->pct, 3.0);
}

TEST(ParseThreshold, RejectsMalformedSpecs)
{
    EXPECT_FALSE(parseThreshold("").has_value());
    EXPECT_FALSE(parseThreshold("fault_p95").has_value());
    EXPECT_FALSE(parseThreshold(":5%").has_value());
    EXPECT_FALSE(parseThreshold("fault_p95:").has_value());
    EXPECT_FALSE(parseThreshold("fault_p95:abc%").has_value());
    EXPECT_FALSE(parseThreshold("fault_p95:-%").has_value());
}

TEST(ResolveMetricPath, AliasesAndPassThrough)
{
    EXPECT_EQ(sys::resolveMetricPath("cycles"), "result.cycles");
    EXPECT_EQ(sys::resolveMetricPath("fault_p95"),
              "histograms.faultLatency.p95");
    EXPECT_EQ(sys::resolveMetricPath("transfer_share"),
              "fault_breakdown.stages.transfer.share");
    EXPECT_EQ(sys::resolveMetricPath("batch_wait_p95"),
              "fault_breakdown.stages.batch_wait.p95");
    // Unknown names pass through verbatim.
    EXPECT_EQ(sys::resolveMetricPath("counters.iommu.walks"),
              "counters.iommu.walks");
}

TEST(ResolveMetricPath, PageAnalyticsAliases)
{
    EXPECT_EQ(sys::resolveMetricPath("churn"),
              "page_stats.churn_events");
    EXPECT_EQ(sys::resolveMetricPath("churn_pages"),
              "page_stats.churn_pages");
    EXPECT_EQ(sys::resolveMetricPath("pages_migrated"),
              "page_stats.pages_migrated");
    EXPECT_EQ(sys::resolveMetricPath("reuse_p95"),
              "page_stats.reuse_distance.p95");
    EXPECT_EQ(sys::resolveMetricPath("peak_migrations"),
              "timeseries.peak.migrations");
    EXPECT_EQ(sys::resolveMetricPath("peak_shootdowns"),
              "timeseries.peak.shootdowns");
}

TEST(LookupMetric, DescendsAndFallsBackToLiteralKeys)
{
    const Value doc = makeReport(1000.0, 5000.0, 42.0);
    const Value &run = doc.find("runs")->at(0);

    auto v = sys::lookupMetric(run, "result.cycles");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 5000.0);

    // "iommu.walks" is ONE key under "counters": the dotted descent
    // fails at "iommu" and the remaining path must match literally.
    v = sys::lookupMetric(run, "counters.iommu.walks");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 42.0);

    EXPECT_FALSE(sys::lookupMetric(run, "result.nope").has_value());
    EXPECT_FALSE(sys::lookupMetric(run, "nope.cycles").has_value());
}

TEST(CompareReports, IdenticalReportsPass)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1000.0, 5000.0);
    const auto res = compareReports(
        ref, cur, {*parseThreshold("fault_p95:+5%"),
                   *parseThreshold("cycles:+3%")});
    EXPECT_TRUE(res.pass);
    ASSERT_EQ(res.checks.size(), 2u);
    for (const auto &c : res.checks) {
        EXPECT_TRUE(c.ok);
        EXPECT_DOUBLE_EQ(c.deltaPct, 0.0);
    }
    EXPECT_TRUE(res.errors.empty());
    EXPECT_TRUE(res.drifts.empty());
}

TEST(CompareReports, InjectedFaultP95RegressionFails)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1080.0, 5000.0); // +8% > +5% gate
    const auto res =
        compareReports(ref, cur, {*parseThreshold("fault_p95:+5%")});
    EXPECT_FALSE(res.pass);
    ASSERT_EQ(res.checks.size(), 1u);
    EXPECT_FALSE(res.checks[0].ok);
    EXPECT_NEAR(res.checks[0].deltaPct, 8.0, 1e-9);
}

TEST(CompareReports, ImprovementPassesDirectionalGate)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(800.0, 5000.0); // 20% faster
    const auto res =
        compareReports(ref, cur, {*parseThreshold("fault_p95:+5%")});
    EXPECT_TRUE(res.pass) << "a '+' gate must not fail on improvement";

    // ...but a bidirectional gate treats it as drift out of bounds.
    const auto both =
        compareReports(ref, cur, {*parseThreshold("fault_p95:5%")});
    EXPECT_FALSE(both.pass);
}

TEST(CompareReports, MissingRunInCurrentFails)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1000.0, 5000.0, 100.0, "BFS/griffin");
    const auto res = compareReports(ref, cur, {});
    EXPECT_FALSE(res.pass);
    EXPECT_FALSE(res.errors.empty());
}

TEST(CompareReports, DuplicateLabelsAreFatal)
{
    // Two runs sharing a label make every per-label lookup ambiguous;
    // the comparison must refuse a verdict rather than silently
    // matching one of the pair (griffin-compare exits 2 on fatal).
    Value extra = Value::object();
    extra["label"] = "MT/griffin";
    Value result = Value::object();
    result["cycles"] = 9999.0;
    extra["result"] = std::move(result);

    const Value base = makeReport(1000.0, 5000.0);
    Value dupRuns = Value::array();
    dupRuns.push(base.find("runs")->at(0));
    dupRuns.push(std::move(extra));
    Value dupDoc = Value::object();
    dupDoc["runs"] = std::move(dupRuns);

    const auto res =
        compareReports(base, dupDoc, {*parseThreshold("cycles:+5%")});
    EXPECT_TRUE(res.fatal);
    EXPECT_FALSE(res.pass);
    EXPECT_TRUE(res.checks.empty())
        << "no checks may be reported off an ambiguous label match";
    bool mentioned = false;
    for (const auto &e : res.errors)
        mentioned = mentioned ||
                    e.find("duplicate run label") != std::string::npos;
    EXPECT_TRUE(mentioned);
    EXPECT_EQ(res.verdictJson().find("status")->asString(), "fatal");
}

TEST(CompareReports, UniqueLabelsAreNotFatal)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const auto res =
        compareReports(ref, ref, {*parseThreshold("cycles:+5%")});
    EXPECT_FALSE(res.fatal);
    EXPECT_TRUE(res.pass);
}

TEST(CompareReports, MissingMetricFails)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1000.0, 5000.0);
    const auto res =
        compareReports(ref, cur, {*parseThreshold("transfer_share:+5%")});
    EXPECT_FALSE(res.pass) << "a gate that skips a missing metric is "
                              "not a gate";
    ASSERT_EQ(res.checks.size(), 1u);
    EXPECT_FALSE(res.checks[0].note.empty());
}

TEST(CompareReports, UnthresholdedDriftIsInformational)
{
    const Value ref = makeReport(1000.0, 5000.0, 100.0);
    const Value cur = makeReport(1000.0, 5000.0, 150.0); // walks +50%
    const auto res =
        compareReports(ref, cur, {*parseThreshold("fault_p95:+5%")});
    EXPECT_TRUE(res.pass) << "drift without a threshold must not fail";
    bool saw_walks = false;
    for (const auto &d : res.drifts)
        if (d.path.find("iommu.walks") != std::string::npos) {
            saw_walks = true;
            EXPECT_NEAR(d.deltaPct, 50.0, 1e-9);
        }
    EXPECT_TRUE(saw_walks);
}

TEST(CompareReports, SchemaVersionMismatchWarnsButDoesNotFail)
{
    // A document without schema_version is a version-1 report: older
    // reference files must keep gating runs, so the skew is surfaced
    // as a warning, never as a failure.
    const Value ref = makeReport(1000.0, 5000.0); // no schema_version
    Value cur = makeReport(1000.0, 5000.0);
    cur["schema_version"] = double(sys::reportSchemaVersion);

    const auto res =
        compareReports(ref, cur, {*parseThreshold("cycles:+5%")});
    EXPECT_TRUE(res.pass);
    EXPECT_FALSE(res.fatal);
    ASSERT_FALSE(res.warnings.empty());
    EXPECT_NE(res.warnings[0].find("schema_version"), std::string::npos);

    // The verdict JSON carries the warnings for CI consumers.
    const Value verdict = res.verdictJson();
    ASSERT_NE(verdict.find("warnings"), nullptr);
    EXPECT_EQ(verdict.find("warnings")->size(), res.warnings.size());
}

TEST(CompareReports, MatchingSchemaVersionsProduceNoWarning)
{
    Value ref = makeReport(1000.0, 5000.0);
    ref["schema_version"] = double(sys::reportSchemaVersion);
    Value cur = makeReport(1000.0, 5000.0);
    cur["schema_version"] = double(sys::reportSchemaVersion);
    const auto res =
        compareReports(ref, cur, {*parseThreshold("cycles:+5%")});
    EXPECT_TRUE(res.pass);
    EXPECT_TRUE(res.warnings.empty());
}

TEST(CompareReports, VerdictJsonShape)
{
    const Value ref = makeReport(1000.0, 5000.0);
    const Value cur = makeReport(1080.0, 5000.0);
    const auto res =
        compareReports(ref, cur, {*parseThreshold("fault_p95:+5%")});
    const Value verdict = res.verdictJson();

    // Round-trip through text like CI consumers would.
    const auto parsed = Value::parse(verdict.dump(2));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_NE(parsed->find("status"), nullptr);
    EXPECT_EQ(parsed->find("status")->asString(), "fail");
    ASSERT_NE(parsed->find("checks"), nullptr);
    ASSERT_GE(parsed->find("checks")->size(), 1u);
    const Value &check = parsed->find("checks")->at(0);
    EXPECT_EQ(check.find("metric")->asString(), "fault_p95");
    EXPECT_EQ(check.find("run")->asString(), "MT/griffin");
    EXPECT_FALSE(check.find("ok")->asBool());
    EXPECT_NEAR(check.find("deltaPct")->asNumber(), 8.0, 1e-9);
}
