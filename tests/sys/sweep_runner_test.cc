/**
 * @file
 * Tests for sys::SweepRunner, centred on the property the bench
 * harness depends on: a sweep executed across 8 worker threads yields
 * bit-identical results — StatSet dumps, report JSON, every RunResult
 * field a table is built from — to the same sweep executed serially.
 * Each simulation owns its engine and RNG streams and all cross-run
 * observability state is thread-local, so nothing may leak between
 * concurrent runs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/trace.hh"
#include "src/sys/multi_gpu_system.hh"
#include "src/sys/report.hh"
#include "src/sys/sweep_runner.hh"
#include "src/workloads/workload.hh"

using namespace griffin;
using sys::RunResult;
using sys::SweepJob;
using sys::SweepRunner;

namespace {

/** The MT/BFS x {baseline, griffin} grid of the determinism spec. */
std::vector<SweepJob>
gridJobs()
{
    std::vector<SweepJob> jobs;
    for (const char *name : {"MT", "BFS"}) {
        for (const bool griffin_run : {false, true}) {
            SweepJob job;
            job.label = std::string(name) + "/" +
                        (griffin_run ? "griffin" : "first-touch");
            job.config = griffin_run ? sys::SystemConfig::griffinDefault()
                                     : sys::SystemConfig::baseline();
            wl::WorkloadConfig wcfg;
            wcfg.scaleDiv = 64;
            wcfg.seed = 42;
            job.makeWorkload = [name = std::string(name), wcfg] {
                return wl::makeWorkload(name, wcfg);
            };
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::vector<RunResult>
runGrid(unsigned workers)
{
    SweepRunner runner(workers);
    for (auto &job : gridJobs())
        runner.submit(std::move(job));
    return runner.run();
}

} // namespace

TEST(SweepRunner, ParallelRunMatchesSerialBitForBit)
{
    const auto serial = runGrid(1);
    const auto parallel = runGrid(8);
    const auto jobs = gridJobs();
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), jobs.size());

    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(jobs[i].label);
        const RunResult &s = serial[i];
        const RunResult &p = parallel[i];

        // Everything a figure table reads.
        EXPECT_EQ(s.cycles, p.cycles);
        EXPECT_EQ(s.pagesPerDevice, p.pagesPerDevice);
        EXPECT_EQ(s.pagesMigratedFromCpu, p.pagesMigratedFromCpu);
        EXPECT_EQ(s.pagesMigratedInterGpu, p.pagesMigratedInterGpu);
        EXPECT_EQ(s.cpuShootdowns, p.cpuShootdowns);
        EXPECT_EQ(s.gpuShootdowns, p.gpuShootdowns);

        // Every counter the simulation produced.
        EXPECT_EQ(s.stats.dump(), p.stats.dump());

        // The full report document (config, counters, histogram
        // percentiles) as CI's perf gate would serialize it.
        EXPECT_EQ(
            sys::runReportJson(jobs[i].label, jobs[i].config, s).dump(2),
            sys::runReportJson(jobs[i].label, jobs[i].config, p).dump(2));
    }
}

TEST(SweepRunner, ChaosSweepIsByteIdenticalAcrossJobCounts)
{
    // Each simulation owns its FaultInjector (split from the chaos
    // seed), so a sweep under sustained injection must stay
    // bit-identical whether it runs on 1 worker or 8.
    const auto chaos =
        sys::ChaosConfig::parse("dma=0.3,link=0.02,walker=0.05");
    ASSERT_TRUE(chaos.has_value());
    auto runChaosGrid = [&](unsigned workers) {
        SweepRunner runner(workers);
        for (auto &job : gridJobs()) {
            job.config.chaos = *chaos;
            runner.submit(std::move(job));
        }
        return runner.run();
    };

    const auto serial = runChaosGrid(1);
    const auto parallel = runChaosGrid(8);
    auto jobs = gridJobs();
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(jobs[i].label);
        jobs[i].config.chaos = *chaos;
        EXPECT_GT(serial[i].chaosInjected, 0u);
        EXPECT_EQ(serial[i].auditViolations, 0u);
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles);
        EXPECT_EQ(serial[i].chaosInjected, parallel[i].chaosInjected);
        EXPECT_EQ(serial[i].chaosRetries, parallel[i].chaosRetries);
        EXPECT_EQ(serial[i].stats.dump(), parallel[i].stats.dump());
        EXPECT_EQ(
            sys::runReportJson(jobs[i].label, jobs[i].config,
                               serial[i]).dump(2),
            sys::runReportJson(jobs[i].label, jobs[i].config,
                               parallel[i]).dump(2));
    }
}

TEST(SweepRunner, TelemetrySweepIsByteIdenticalAcrossJobCounts)
{
    // Page-stats and time-series recorders are thread_local sinks
    // attached per run, so an instrumented sweep must serialize to
    // byte-identical reports whether it runs on 1 worker or 8 — the
    // property `--page-stats --timeseries=N --jobs=8` depends on.
    auto runInstrumentedGrid = [](unsigned workers) {
        SweepRunner runner(workers);
        for (auto &job : gridJobs()) {
            job.config.pageStats.enabled = true;
            job.config.timeseriesTick = 50000;
            runner.submit(std::move(job));
        }
        return runner.run();
    };

    const auto serial = runInstrumentedGrid(1);
    const auto parallel = runInstrumentedGrid(8);
    auto jobs = gridJobs();
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(jobs[i].label);
        jobs[i].config.pageStats.enabled = true;
        jobs[i].config.timeseriesTick = 50000;
        ASSERT_TRUE(serial[i].pageStats.enabled);
        EXPECT_EQ(serial[i].pageStats.totalMigrations,
                  parallel[i].pageStats.totalMigrations);
        EXPECT_EQ(serial[i].pageStats.churnEvents,
                  parallel[i].pageStats.churnEvents);
        EXPECT_EQ(serial[i].timeseries.rows.size(),
                  parallel[i].timeseries.rows.size());
        // The full serialized report, page_stats and timeseries
        // sections included, byte for byte.
        EXPECT_EQ(
            sys::runReportJson(jobs[i].label, jobs[i].config,
                               serial[i]).dump(2),
            sys::runReportJson(jobs[i].label, jobs[i].config,
                               parallel[i]).dump(2));
    }
}

TEST(SweepRunner, ResultsComeBackInSubmissionOrder)
{
    // Labels ride along through pre/postRun hooks; results land at the
    // submission index regardless of which worker finished first.
    SweepRunner runner(4);
    std::vector<std::string> postLabels(4);
    auto jobs = gridJobs();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].postRun = [&postLabels, i, label = jobs[i].label](
                              sys::MultiGpuSystem &,
                              const RunResult &) {
            postLabels[i] = label;
        };
        const std::size_t idx = runner.submit(std::move(jobs[i]));
        EXPECT_EQ(idx, i);
    }
    EXPECT_EQ(runner.pending(), 4u);
    const auto results = runGrid(1);
    const auto parallel = runner.run();
    EXPECT_EQ(runner.pending(), 0u);
    ASSERT_EQ(parallel.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(parallel[i].cycles, results[i].cycles);
        EXPECT_FALSE(postLabels[i].empty());
    }
}

TEST(SweepRunner, PreRunHookSeesTheSystemBeforeItRuns)
{
    SweepRunner runner(2);
    auto jobs = gridJobs();
    std::atomic<int> hooks{0};
    for (auto &job : jobs) {
        job.preRun = [&hooks](sys::MultiGpuSystem &system) {
            EXPECT_EQ(system.engine().now(), 0u);
            hooks.fetch_add(1);
        };
        runner.submit(std::move(job));
    }
    runner.run();
    EXPECT_EQ(hooks.load(), 4);
}

TEST(SweepRunner, EarliestSubmittedExceptionWins)
{
    // Both failing jobs run to completion; the rethrown error is the
    // earliest-submitted one, as a serial loop would have surfaced it.
    SweepRunner runner(4);
    for (const char *what : {"first", "second"}) {
        SweepJob job;
        job.label = what;
        job.config = sys::SystemConfig::baseline();
        job.makeWorkload = [what]() -> std::unique_ptr<wl::Workload> {
            throw std::runtime_error(what);
        };
        runner.submit(std::move(job));
    }
    try {
        runner.run();
        FAIL() << "expected the sweep to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(SweepRunner, NullWorkloadFactoryResultIsAnError)
{
    SweepRunner runner(1);
    SweepJob job;
    job.label = "broken";
    job.config = sys::SystemConfig::baseline();
    job.makeWorkload = [] { return std::unique_ptr<wl::Workload>(); };
    runner.submit(std::move(job));
    EXPECT_THROW(runner.run(), std::runtime_error);
}

TEST(SweepRunner, PerRunTraceSessionsStayIsolated)
{
    // Each job attaches its own session on its worker thread; events
    // must never bleed into a neighbour's session, and a serial rerun
    // must produce the same per-run event counts.
    auto record = [](unsigned workers) {
        SweepRunner runner(workers);
        auto sessions = std::make_shared<
            std::vector<std::shared_ptr<obs::TraceSession>>>();
        for (auto &job : gridJobs()) {
            auto session = std::make_shared<obs::TraceSession>(
                obs::defaultCategories);
            session->beginProcess(job.label);
            sessions->push_back(session);
            job.preRun = [session](sys::MultiGpuSystem &) {
                session->attach();
            };
            job.postRun = [session](sys::MultiGpuSystem &,
                                    const RunResult &) {
                session->detach();
            };
            runner.submit(std::move(job));
        }
        runner.run();
        std::vector<std::size_t> counts;
        for (const auto &s : *sessions)
            counts.push_back(s->eventCount());
        return counts;
    };

    const auto serial = record(1);
    const auto parallel = record(8);
    EXPECT_EQ(serial, parallel);
    std::size_t total = 0;
    for (const auto n : serial)
        total += n;
    EXPECT_GT(total, 0u) << "simulations emit trace events";
}

TEST(SweepRunner, DefaultWorkerCountIsPositive)
{
    EXPECT_GE(SweepRunner::defaultWorkers(), 1u);
    SweepRunner runner; // default: one worker per hardware thread
    EXPECT_GE(runner.workers(), 1u);
}

TEST(SweepRunner, HostProfileCountsAreByteIdenticalAcrossJobCounts)
{
    // Host nanoseconds vary run to run, but the deterministic half of
    // a host profile — bucket names, scope counts, the dispatched
    // event total — is a pure function of the simulated event
    // sequence, so a profiled sweep must agree bucket for bucket
    // between 1 worker and 8. This is the property that lets the
    // "host_profile" report section participate in CI comparisons.
    auto runProfiledGrid = [](unsigned workers) {
        SweepRunner runner(workers);
        for (auto &job : gridJobs()) {
            job.config.hostProf = true;
            runner.submit(std::move(job));
        }
        return runner.run();
    };

    const auto serial = runProfiledGrid(1);
    const auto parallel = runProfiledGrid(8);
    const auto jobs = gridJobs();
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(jobs[i].label);
        const obs::HostProfile &s = serial[i].hostProfile;
        const obs::HostProfile &p = parallel[i].hostProfile;
        ASSERT_TRUE(s.enabled);
        ASSERT_TRUE(p.enabled);
        EXPECT_GT(s.events, 0u);
        EXPECT_EQ(s.events, p.events);
        ASSERT_EQ(s.buckets.size(), p.buckets.size());
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
            EXPECT_EQ(s.buckets[b].name(), p.buckets[b].name());
            EXPECT_EQ(s.buckets[b].count, p.buckets[b].count)
                << s.buckets[b].name();
        }
        // ...and the attribution coverage promise holds on real runs.
        EXPECT_GE(s.attributedFraction(), 0.95) << "uninstrumented "
            "event types crept into the dispatch path";
    }
}

TEST(SweepRunner, HostProfileEventsMatchEngineDispatches)
{
    // The profiler's deterministic event total is exactly the number
    // of events the engine dispatched while attached.
    SweepRunner runner(1);
    auto jobs = gridJobs();
    jobs[0].config.hostProf = true;
    std::uint64_t profiled = 0;
    jobs[0].postRun = [&profiled](sys::MultiGpuSystem &system,
                                  const RunResult &) {
        ASSERT_NE(system.hostProfiler(), nullptr);
        profiled = system.hostProfiler()->eventsDispatched();
    };
    runner.submit(std::move(jobs[0]));
    const auto results = runner.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(profiled, 0u);
    EXPECT_EQ(results[0].hostProfile.events, profiled);
}

TEST(SweepRunner, AggregateHostProfilesMergesEnabledRunsOnly)
{
    RunResult a;
    a.hostProfile.enabled = true;
    a.hostProfile.events = 10;
    a.hostProfile.dispatchNs = 100;
    a.hostProfile.buckets = {{"gpu", "l1_tlb", 4, 60},
                             {"net", "deliver", 6, 40}};
    RunResult unprofiled; // enabled = false: contributes nothing
    RunResult b;
    b.hostProfile.enabled = true;
    b.hostProfile.events = 5;
    b.hostProfile.dispatchNs = 50;
    b.hostProfile.buckets = {{"gpu", "l1_tlb", 2, 50}};

    const auto total =
        SweepRunner::aggregateHostProfiles({a, unprofiled, b});
    EXPECT_TRUE(total.enabled);
    EXPECT_EQ(total.events, 15u);
    EXPECT_EQ(total.dispatchNs, 150u);
    ASSERT_EQ(total.buckets.size(), 2u);
    EXPECT_EQ(total.buckets[0].name(), "gpu;l1_tlb");
    EXPECT_EQ(total.buckets[0].count, 6u);
    EXPECT_EQ(total.buckets[0].selfNs, 110u);

    const auto none = SweepRunner::aggregateHostProfiles({unprofiled});
    EXPECT_FALSE(none.enabled);
}

TEST(SweepRunner, ProgressCallbackCountsEveryCompletion)
{
    // The callback is serialized and fires once per finished job with
    // a monotonically increasing `done`, on both execution paths.
    for (const unsigned workers : {1u, 8u}) {
        SCOPED_TRACE(workers);
        SweepRunner runner(workers);
        for (auto &job : gridJobs())
            runner.submit(std::move(job));
        std::vector<std::pair<std::size_t, std::size_t>> calls;
        runner.setProgress([&calls](std::size_t done,
                                    std::size_t total) {
            calls.emplace_back(done, total);
        });
        const auto results = runner.run();
        ASSERT_EQ(calls.size(), results.size());
        for (std::size_t i = 0; i < calls.size(); ++i) {
            EXPECT_EQ(calls[i].first, i + 1);
            EXPECT_EQ(calls[i].second, results.size());
        }
    }
}
