/**
 * @file
 * Unit and property tests for mem::Cache: hit/miss behaviour, LRU
 * replacement, write-back semantics, and the selective page flush
 * that the migration machinery depends on.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/mem/cache.hh"
#include "src/sim/rng.hh"

using namespace griffin;
using mem::Cache;
using mem::CacheConfig;

namespace {

CacheConfig
tinyConfig()
{
    // 4 sets x 2 ways x 64 B lines.
    return CacheConfig{512, 2, 64, 1};
}

} // namespace

TEST(Cache, GeometryDerivedFromConfig)
{
    Cache c(tinyConfig());
    EXPECT_EQ(c.numSets(), 4u);
    Cache big(CacheConfig{2 * 1024 * 1024, 16, 64, 20});
    EXPECT_EQ(big.numSets(), 2048u);
    EXPECT_EQ(big.latency(), 20u);
}

TEST(Cache, FirstAccessMissesSecondHits)
{
    Cache c(tinyConfig());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Cache c(tinyConfig());
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x103F, false).hit);
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyConfig()); // 2 ways
    // Three lines mapping to the same set (stride = sets * line).
    const Addr a = 0x0000, b = 0x0400, d = 0x0800;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);    // a most recent
    c.access(d, false);    // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c(tinyConfig());
    const Addr a = 0x0000, b = 0x0400, d = 0x0800;
    c.access(a, false);
    c.access(b, false);
    const auto r = c.access(d, false);
    EXPECT_FALSE(r.writeback);
    EXPECT_EQ(c.writebacks, 0u);
}

TEST(Cache, DirtyEvictionReportsWritebackAddress)
{
    Cache c(tinyConfig());
    const Addr a = 0x0000, b = 0x0400, d = 0x0800;
    c.access(a, true); // dirty
    c.access(b, false);
    const auto r = c.access(d, false); // evicts a
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, a);
    EXPECT_EQ(c.writebacks, 1u);
}

TEST(Cache, ReadAfterWriteKeepsLineDirty)
{
    Cache c(tinyConfig());
    const Addr a = 0x0000, b = 0x0400, d = 0x0800;
    c.access(a, true);
    c.access(a, false); // read does not clean it
    c.access(b, false);
    EXPECT_TRUE(c.access(d, false).writeback);
}

TEST(Cache, ProbeDoesNotPerturbLru)
{
    Cache c(tinyConfig());
    const Addr a = 0x0000, b = 0x0400, d = 0x0800;
    c.access(a, false);
    c.access(b, false);
    // Probing a must NOT make it most-recent.
    EXPECT_TRUE(c.probe(a));
    c.access(d, false); // evicts a (still LRU)
    EXPECT_FALSE(c.probe(a));
}

TEST(Cache, FlushAllInvalidatesAndCountsDirty)
{
    Cache c(tinyConfig());
    // Three different sets: nothing evicts before the flush.
    c.access(0x0000, true);
    c.access(0x0040, false);
    c.access(0x0080, true);
    const auto r = c.flushAll();
    EXPECT_EQ(r.linesInvalidated, 3u);
    EXPECT_EQ(r.dirtyWritebacks, 2u);
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(Cache, FlushPagesIsSelective)
{
    Cache c(CacheConfig{16 * 1024, 4, 64, 1});
    // Lines in pages 0, 1 and 5 (4 KB pages).
    c.access(0x0000, true);
    c.access(0x0040, false);
    c.access(0x1000, true);
    c.access(0x5000, false);

    const std::vector<PageId> pages{0, 5};
    const auto r = c.flushPages(pages, 12);
    EXPECT_EQ(r.linesInvalidated, 3u);
    EXPECT_EQ(r.dirtyWritebacks, 1u);
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x5000));
    EXPECT_TRUE(c.probe(0x1000)); // page 1 untouched
}

TEST(Cache, FlushPagesOnEmptySetIsNoop)
{
    Cache c(tinyConfig());
    c.access(0x0000, true);
    const auto r = c.flushPages({}, 12);
    EXPECT_EQ(r.linesInvalidated, 0u);
    EXPECT_TRUE(c.probe(0x0000));
}

TEST(Cache, ValidLinesNeverExceedsCapacity)
{
    Cache c(tinyConfig()); // 8 lines
    sim::Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        c.access(rng.nextBelow(1 << 20) * 64, rng.chance(0.5));
    EXPECT_LE(c.validLines(), 8u);
    EXPECT_EQ(c.hits + c.misses, 1000u);
}

/** Property sweep over geometries. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometry, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup)
{
    const auto [size_kb, assoc] = GetParam();
    Cache c(CacheConfig{std::uint64_t(size_kb) * 1024, unsigned(assoc),
                        64, 1});
    const std::uint64_t lines = std::uint64_t(size_kb) * 1024 / 64;
    // Warm up with half the capacity (conflicts cannot evict within
    // a strided working set that maps one line per set per way used).
    const std::uint64_t ws = lines / 2;
    for (std::uint64_t i = 0; i < ws; ++i)
        c.access(i * 64, false);
    c.hits = c.misses = 0;
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t i = 0; i < ws; ++i)
            c.access(i * 64, false);
    }
    EXPECT_EQ(c.misses, 0u);
    EXPECT_EQ(c.hits, ws * 3);
}

TEST_P(CacheGeometry, StreamLargerThanCacheAlwaysMisses)
{
    const auto [size_kb, assoc] = GetParam();
    Cache c(CacheConfig{std::uint64_t(size_kb) * 1024, unsigned(assoc),
                        64, 1});
    const std::uint64_t lines = std::uint64_t(size_kb) * 1024 / 64;
    for (int round = 0; round < 2; ++round) {
        for (std::uint64_t i = 0; i < lines * 4; ++i)
            c.access(i * 64, false);
    }
    EXPECT_EQ(c.hits, 0u); // pure streaming: LRU keeps nothing useful
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(16, 4), std::make_tuple(16, 1),
                      std::make_tuple(64, 8), std::make_tuple(256, 16)));
