/**
 * @file
 * Unit tests for mem::PageTable: residency accounting, occupancy
 * math, DFTM policy bits, and the page-conservation invariant.
 */

#include <gtest/gtest.h>

#include "src/mem/page_table.hh"

using namespace griffin;
using mem::PageTable;

TEST(PageTable, PagesSpringIntoExistenceOnCpu)
{
    PageTable pt(12, 5);
    EXPECT_EQ(pt.totalPages(), 0u);
    EXPECT_EQ(pt.locationOf(42), cpuDeviceId);  // const read: no entry
    EXPECT_EQ(pt.totalPages(), 0u);
    pt.info(42); // mutable access creates
    EXPECT_EQ(pt.totalPages(), 1u);
    EXPECT_EQ(pt.residentPages(cpuDeviceId), 1u);
}

TEST(PageTable, PageOfAndBaseOfRoundTrip)
{
    PageTable pt(12, 5);
    EXPECT_EQ(pt.pageOf(0x1234), 0x1u);
    EXPECT_EQ(pt.pageOf(0xFFF), 0x0u);
    EXPECT_EQ(pt.baseOf(3), 0x3000u);
    EXPECT_EQ(pt.pageBytes(), 4096u);
    PageTable big(21, 5);
    EXPECT_EQ(big.pageBytes(), 2u * 1024 * 1024);
}

TEST(PageTable, SetLocationMovesResidency)
{
    PageTable pt(12, 5);
    pt.info(7);
    pt.setLocation(7, 2);
    EXPECT_EQ(pt.locationOf(7), 2u);
    EXPECT_EQ(pt.residentPages(cpuDeviceId), 0u);
    EXPECT_EQ(pt.residentPages(2), 1u);
    EXPECT_EQ(pt.migrations(), 1u);
}

TEST(PageTable, SetLocationToSamePlaceIsNotAMigration)
{
    PageTable pt(12, 5);
    pt.setLocation(7, 2);
    pt.setLocation(7, 2);
    EXPECT_EQ(pt.migrations(), 1u);
}

TEST(PageTable, SetLocationClearsMigrationFlags)
{
    PageTable pt(12, 5);
    pt.info(9).migrating = true;
    pt.info(9).migrationPending = true;
    pt.setLocation(9, 3);
    EXPECT_FALSE(pt.info(9).migrating);
    EXPECT_FALSE(pt.info(9).migrationPending);
}

TEST(PageTable, ConservationAcrossManyMigrations)
{
    PageTable pt(12, 5);
    for (PageId p = 0; p < 100; ++p)
        pt.info(p);
    for (PageId p = 0; p < 100; ++p)
        pt.setLocation(p, DeviceId(1 + p % 4));
    for (PageId p = 0; p < 50; ++p)
        pt.setLocation(p, DeviceId(1 + (p + 1) % 4));

    std::uint64_t total = 0;
    for (DeviceId dev = 0; dev < 5; ++dev)
        total += pt.residentPages(dev);
    EXPECT_EQ(total, pt.totalPages());
    EXPECT_EQ(total, 100u);
}

TEST(PageTable, GpuOccupancyIsShareOfGpuPages)
{
    PageTable pt(12, 5);
    for (PageId p = 0; p < 10; ++p)
        pt.setLocation(p, 1);
    for (PageId p = 10; p < 15; ++p)
        pt.setLocation(p, 2);
    // 5 more stay on the CPU: they must not count.
    for (PageId p = 15; p < 20; ++p)
        pt.info(p);

    EXPECT_DOUBLE_EQ(pt.gpuOccupancy(1), 10.0 / 15.0);
    EXPECT_DOUBLE_EQ(pt.gpuOccupancy(2), 5.0 / 15.0);
    EXPECT_DOUBLE_EQ(pt.gpuOccupancy(3), 0.0);
}

TEST(PageTable, OccupancyZeroWhenNoGpuPages)
{
    PageTable pt(12, 5);
    pt.info(1);
    EXPECT_DOUBLE_EQ(pt.gpuOccupancy(1), 0.0);
    EXPECT_TRUE(pt.hasHighestOccupancy(1)); // all tie at zero
}

TEST(PageTable, HighestOccupancyTiesCountAsHighest)
{
    PageTable pt(12, 5);
    pt.setLocation(0, 1);
    pt.setLocation(1, 2);
    EXPECT_TRUE(pt.hasHighestOccupancy(1));
    EXPECT_TRUE(pt.hasHighestOccupancy(2));
    EXPECT_FALSE(pt.hasHighestOccupancy(3));
    pt.setLocation(2, 1);
    EXPECT_TRUE(pt.hasHighestOccupancy(1));
    EXPECT_FALSE(pt.hasHighestOccupancy(2));
}

TEST(PageTable, PolicyBitsPersist)
{
    PageTable pt(12, 5);
    pt.info(5).touched = true;
    pt.info(5).pinned = true;
    EXPECT_TRUE(pt.info(5).touched);
    EXPECT_TRUE(pt.info(5).pinned);
    // Migration does not clear policy bits.
    pt.setLocation(5, 1);
    EXPECT_TRUE(pt.info(5).touched);
    EXPECT_TRUE(pt.info(5).pinned);
}

TEST(PageTableDeath, InvalidDeviceAsserts)
{
    PageTable pt(12, 3); // CPU + 2 GPUs
    EXPECT_DEATH(pt.setLocation(0, 3), "");
}
