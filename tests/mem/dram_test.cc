/**
 * @file
 * Unit tests for mem::Dram: latency, per-channel serialization,
 * interleaving and statistics.
 */

#include <gtest/gtest.h>

#include "src/mem/dram.hh"

using namespace griffin;
using mem::Dram;
using mem::DramConfig;

namespace {

DramConfig
twoChannel()
{
    DramConfig cfg;
    cfg.numChannels = 2;
    cfg.accessLatency = 100;
    cfg.bytesPerCyclePerChannel = 64.0;
    cfg.interleaveBytes = 256;
    return cfg;
}

} // namespace

TEST(Dram, SingleAccessPaysLatencyPlusService)
{
    Dram d(twoChannel());
    // 64 B at 64 B/cycle = 1 cycle of service + 100 latency.
    EXPECT_EQ(d.access(0, 0, 64, false), 101u);
}

TEST(Dram, ChannelInterleaving)
{
    Dram d(twoChannel());
    EXPECT_EQ(d.channelOf(0), 0u);
    EXPECT_EQ(d.channelOf(255), 0u);
    EXPECT_EQ(d.channelOf(256), 1u);
    EXPECT_EQ(d.channelOf(512), 0u);
}

TEST(Dram, SameChannelSerializes)
{
    Dram d(twoChannel());
    const Tick t1 = d.access(0, 0, 640, false);   // 10 cycles service
    const Tick t2 = d.access(0, 0, 640, false);   // waits for first
    EXPECT_EQ(t1, 110u);
    EXPECT_EQ(t2, 120u);
}

TEST(Dram, DifferentChannelsRunInParallel)
{
    Dram d(twoChannel());
    const Tick t1 = d.access(0, 0, 640, false);
    const Tick t2 = d.access(0, 256, 640, false); // other channel
    EXPECT_EQ(t1, t2);
}

TEST(Dram, LateArrivalStartsAtArrival)
{
    Dram d(twoChannel());
    d.access(0, 0, 64, false);
    const Tick t = d.access(1000, 0, 64, false);
    EXPECT_EQ(t, 1101u);
}

TEST(Dram, StatsAccumulate)
{
    Dram d(twoChannel());
    d.access(0, 0, 64, false);
    d.access(0, 0, 64, true);
    d.access(0, 256, 128, true);
    EXPECT_EQ(d.reads, 1u);
    EXPECT_EQ(d.writes, 2u);
    EXPECT_EQ(d.bytesTransferred, 256u);
    EXPECT_GT(d.busyCycles, 0u);
}

TEST(Dram, PageSizedBurstServiceTime)
{
    Dram d(twoChannel());
    // 4096 B on one channel at 64 B/cy = 64 cycles of service.
    const Tick t = d.access(0, 0, 4096, false);
    EXPECT_EQ(t, 164u);
}

TEST(Dram, HbmDefaultsAreFast)
{
    Dram d(DramConfig{}); // 8 channels, 128 B/cy each
    const Tick t = d.access(0, 0, 64, false);
    EXPECT_EQ(t, 151u); // ceil(64/128) = 1 cycle + 150
}
