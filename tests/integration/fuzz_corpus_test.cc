/**
 * @file
 * The pinned fuzz corpus as a regression suite: every corpus seed runs
 * under the full oracle battery (sys/oracle.hh) on every ctest
 * invocation. The 200-seed sweep lives in CI (griffin-fuzz --seeds=200)
 * where its wall clock is acceptable; this test keeps the tier-1 suite
 * fast while still exercising the whole fuzz stack.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sys/oracle.hh"
#include "src/sys/scenario_gen.hh"

namespace {

using griffin::sys::FuzzOptions;
using griffin::sys::Scenario;
using griffin::sys::ScenarioVerdict;
using griffin::sys::fuzzCorpusSeeds;
using griffin::sys::makeScenario;
using griffin::sys::runFuzzBatch;

std::vector<Scenario>
corpusScenarios()
{
    std::vector<Scenario> scenarios;
    for (const std::uint64_t seed : fuzzCorpusSeeds())
        scenarios.push_back(makeScenario(seed));
    return scenarios;
}

std::string
explain(const ScenarioVerdict &v)
{
    std::string out = "seed=" + std::to_string(v.scenario.seed) + " (" +
                      v.scenario.describe() + ")";
    for (const auto &f : v.findings)
        out += "\n  " + f.oracle + ": " + f.detail;
    out += "\n  repro: " + v.scenario.reproCommand();
    return out;
}

void
expectAllClean(const std::vector<ScenarioVerdict> &verdicts)
{
    ASSERT_EQ(verdicts.size(), fuzzCorpusSeeds().size());
    for (const auto &v : verdicts)
        EXPECT_TRUE(v.ok()) << explain(v);
}

// The serial pass plus the reference-scheduler differential, with the
// parallel differential disabled (jobs=1): every oracle that does not
// need a worker pool.
TEST(FuzzCorpus, CleanAtJobs1)
{
    FuzzOptions options;
    options.jobs = 1;
    expectAllClean(runFuzzBatch(corpusScenarios(), options));
}

// The full battery: serial, reference-scheduler, and the 8-worker
// parallel sweep whose reports must match the serial pass byte for
// byte.
TEST(FuzzCorpus, CleanAtJobs8)
{
    FuzzOptions options;
    options.jobs = 8;
    expectAllClean(runFuzzBatch(corpusScenarios(), options));
}

// Verdicts come back in input order with the scenario attached — the
// property the fuzz CLI's failure reporting relies on.
TEST(FuzzCorpus, VerdictsPreserveInputOrder)
{
    std::vector<Scenario> scenarios = {makeScenario(3), makeScenario(1)};
    FuzzOptions options;
    options.jobs = 1;
    options.differential = false;
    const auto verdicts = runFuzzBatch(scenarios, options);
    ASSERT_EQ(verdicts.size(), 2u);
    EXPECT_EQ(verdicts[0].scenario.seed, 3u);
    EXPECT_EQ(verdicts[1].scenario.seed, 1u);
    for (const auto &v : verdicts)
        EXPECT_TRUE(v.ok()) << explain(v);
}

// An unknown workload cannot run; the harness must report it as a
// verdict rather than throw out of the batch.
TEST(FuzzCorpus, UnrunnableScenarioYieldsAVerdict)
{
    Scenario bad = makeScenario(1);
    bad.workload = "no-such-workload";
    FuzzOptions options;
    options.jobs = 1;
    const auto verdicts = runFuzzBatch({bad}, options);
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_FALSE(verdicts[0].ran);
    EXPECT_FALSE(verdicts[0].ok());
    ASSERT_FALSE(verdicts[0].findings.empty());
    EXPECT_EQ(verdicts[0].findings[0].oracle, "run-completed");
}

} // namespace
