/**
 * @file
 * Cross-cutting property tests at system level: the paper's headline
 * claims hold qualitatively on small inputs, and structural
 * invariants (page conservation, translation coherence, access
 * accounting) survive end-to-end runs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/sys/multi_gpu_system.hh"
#include "src/workloads/workload.hh"

using namespace griffin;

namespace {

sys::RunResult
runOne(const std::string &name, const sys::SystemConfig &scfg,
       unsigned scale_div = 48, std::uint64_t seed = 42)
{
    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = scale_div;
    wcfg.seed = seed;
    auto workload = wl::makeWorkload(name, wcfg);
    sys::MultiGpuSystem system(scfg);
    return system.run(*workload);
}

} // namespace

TEST(Properties, GriffinReducesCpuShootdownsEverywhere)
{
    for (const auto &name : {"SC", "MT", "KM"}) {
        const auto base = runOne(name, sys::SystemConfig::baseline());
        const auto grif = runOne(name,
                                 sys::SystemConfig::griffinDefault());
        EXPECT_LT(grif.cpuShootdowns, base.cpuShootdowns / 2) << name;
    }
}

TEST(Properties, BaselineNeverMigratesBetweenGpus)
{
    const auto base = runOne("SC", sys::SystemConfig::baseline());
    EXPECT_EQ(base.gpuShootdowns, 0u);
    EXPECT_EQ(base.pagesMigratedInterGpu, 0u);
    // Every migration was CPU -> GPU, once per page that moved.
    EXPECT_EQ(base.stats.get("pageTable.migrations"),
              base.stats.get("driver.pagesMigratedIn"));
}

TEST(Properties, GriffinImprovesLocalityOnAdjacentWorkloads)
{
    for (const auto &name : {"SC", "ST"}) {
        const auto base = runOne(name, sys::SystemConfig::baseline());
        const auto grif = runOne(name,
                                 sys::SystemConfig::griffinDefault());
        EXPECT_GT(grif.localFraction(), base.localFraction() + 0.05)
            << name;
    }
}

TEST(Properties, DftmKeepsOccupancyNearFairShare)
{
    const auto grif = runOne("SC", sys::SystemConfig::griffinDefault());
    EXPECT_LT(grif.maxGpuShare(), 0.34);
}

TEST(Properties, AccessAccountingIsExact)
{
    const auto r = runOne("KM", sys::SystemConfig::griffinDefault());
    // Every completed access was either local or remote; per-GPU
    // stats sum to the totals.
    double local = 0, remote = 0;
    for (int g = 1; g <= 4; ++g) {
        local += r.stats.get("gpu" + std::to_string(g) +
                             ".localAccesses");
        remote += r.stats.get("gpu" + std::to_string(g) +
                              ".remoteAccesses");
    }
    EXPECT_DOUBLE_EQ(local, double(r.localAccesses));
    EXPECT_DOUBLE_EQ(remote, double(r.remoteAccesses));
    EXPECT_GT(local + remote, 0.0);
}

TEST(Properties, PageConservationUnderHeavyMigration)
{
    sys::SystemConfig cfg = sys::SystemConfig::griffinDefault();
    cfg.griffin.migrationInterval = 1; // maximum churn
    cfg.griffin.lambdaT = 0.0005;
    const auto r = runOne("FW", cfg);
    std::uint64_t total = 0;
    for (const auto n : r.pagesPerDevice)
        total += n;
    EXPECT_EQ(double(total), r.stats.get("pageTable.totalPages"));
}

TEST(Properties, AcudNeverLosesWork)
{
    // Under ACUD nothing is discarded; under flushing, migration
    // activity implies discarded (replayed) transactions.
    const auto acud = runOne("SC", sys::SystemConfig::griffinDefault());
    double discarded = 0;
    for (int g = 1; g <= 4; ++g)
        discarded += acud.stats.get("gpu" + std::to_string(g) +
                                    ".opsDiscarded");
    EXPECT_EQ(discarded, 0.0);

    sys::SystemConfig flush_cfg = sys::SystemConfig::griffinDefault();
    flush_cfg.griffin.useAcud = false;
    const auto flush = runOne("SC", flush_cfg);
    if (flush.pagesMigratedInterGpu > 0) {
        double flush_discarded = 0;
        for (int g = 1; g <= 4; ++g)
            flush_discarded += flush.stats.get(
                "gpu" + std::to_string(g) + ".opsDiscarded");
        EXPECT_GT(flush_discarded, 0.0);
    }
}

TEST(Properties, AcudBeatsFlushingWhenMigrationIsActive)
{
    const auto acud = runOne("SC", sys::SystemConfig::griffinDefault());
    sys::SystemConfig flush_cfg = sys::SystemConfig::griffinDefault();
    flush_cfg.griffin.useAcud = false;
    const auto flush = runOne("SC", flush_cfg);
    if (acud.pagesMigratedInterGpu > 20) {
        EXPECT_LE(acud.cycles, flush.cycles);
    }
}

TEST(Properties, ComponentTogglesActuallyDisable)
{
    sys::SystemConfig no_mig = sys::SystemConfig::griffinDefault();
    no_mig.griffin.enableInterGpuMigration = false;
    const auto r1 = runOne("SC", no_mig);
    EXPECT_EQ(r1.pagesMigratedInterGpu, 0u);
    EXPECT_EQ(r1.gpuShootdowns, 0u);

    sys::SystemConfig no_dftm = sys::SystemConfig::griffinDefault();
    no_dftm.griffin.enableDftm = false;
    const auto r2 = runOne("SC", no_dftm);
    EXPECT_EQ(r2.stats.get("griffin.dftm.denials"), 0.0);
    EXPECT_EQ(r2.stats.get("iommu.dcaRedirects"), 0.0);
}

TEST(Properties, HigherBandwidthNeverSlowsTheSystem)
{
    for (const auto &policy : {sys::SystemConfig::baseline(),
                              sys::SystemConfig::griffinDefault()}) {
        sys::SystemConfig hbw = policy;
        hbw.withHighBandwidthFabric();
        const auto pcie = runOne("FW", policy);
        const auto fast = runOne("FW", hbw);
        EXPECT_LE(fast.cycles, pcie.cycles);
    }
}

TEST(Properties, SeedsChangeRandomWorkloadTiming)
{
    const auto a = runOne("PR", sys::SystemConfig::griffinDefault(),
                          48, 1);
    const auto b = runOne("PR", sys::SystemConfig::griffinDefault(),
                          48, 2);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(Properties, PeriodsScaleWithRuntime)
{
    const auto r = runOne("KM", sys::SystemConfig::griffinDefault());
    const double periods = r.stats.get("griffin.periods");
    const double expected = double(r.cycles) / 1000.0; // T_ac = 1000
    EXPECT_NEAR(periods, expected, expected * 0.05 + 2);
}

TEST(Properties, StatsDumpIsComprehensive)
{
    const auto r = runOne("SC", sys::SystemConfig::griffinDefault());
    for (const char *key :
         {"sim.cycles", "driver.faults", "iommu.walks",
          "pageTable.migrations", "gpu1.localAccesses",
          "griffin.periods", "griffin.dpc.class.streaming"}) {
        EXPECT_TRUE(r.stats.has(key)) << key;
    }
}
