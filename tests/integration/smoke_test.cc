/**
 * @file
 * End-to-end smoke tests: every workload runs to completion under
 * both policies on a small scale, and basic cross-cutting invariants
 * hold (page conservation, all accesses resolve, determinism).
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/sys/multi_gpu_system.hh"
#include "src/workloads/workload.hh"

using namespace griffin;

namespace {

wl::WorkloadConfig
tinyWorkloadConfig()
{
    wl::WorkloadConfig cfg;
    cfg.scaleDiv = 64; // ~0.5-1 MB footprints: seconds-fast
    cfg.seed = 42;
    return cfg;
}

sys::RunResult
runOne(const std::string &name, sys::PolicyKind policy,
       unsigned scale_div = 64)
{
    wl::WorkloadConfig wcfg = tinyWorkloadConfig();
    wcfg.scaleDiv = scale_div;
    auto workload = wl::makeWorkload(name, wcfg);
    EXPECT_NE(workload, nullptr) << name;

    sys::SystemConfig scfg = policy == sys::PolicyKind::Griffin
        ? sys::SystemConfig::griffinDefault()
        : sys::SystemConfig::baseline();
    sys::MultiGpuSystem system(scfg);
    return system.run(*workload);
}

class SmokeAllWorkloads
    : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(SmokeAllWorkloads, BaselineRunsToCompletion)
{
    const auto result = runOne(GetParam(), sys::PolicyKind::FirstTouch);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.localAccesses + result.remoteAccesses, 0u);
    // Every page the system saw is accounted for exactly once.
    std::uint64_t total = 0;
    for (const auto n : result.pagesPerDevice)
        total += n;
    EXPECT_EQ(total, std::uint64_t(result.stats.get(
                  "pageTable.totalPages")));
}

TEST_P(SmokeAllWorkloads, GriffinRunsToCompletion)
{
    const auto result = runOne(GetParam(), sys::PolicyKind::Griffin);
    EXPECT_GT(result.cycles, 0u);
    std::uint64_t total = 0;
    for (const auto n : result.pagesPerDevice)
        total += n;
    EXPECT_EQ(total, std::uint64_t(result.stats.get(
                  "pageTable.totalPages")));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SmokeAllWorkloads,
                         ::testing::ValuesIn(wl::workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(SmokeDeterminism, SameSeedSameCycles)
{
    const auto a = runOne("SC", sys::PolicyKind::Griffin);
    const auto b = runOne("SC", sys::PolicyKind::Griffin);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.pagesPerDevice, b.pagesPerDevice);
    EXPECT_EQ(a.remoteAccesses, b.remoteAccesses);
}
