/**
 * @file
 * End-to-end telemetry tests: a full Griffin run with --page-stats
 * and --timeseries semantics enabled reconciles its per-interval sums
 * against the run-level aggregates, reports zero churn on a workload
 * without ping-pong, and stays bit-identical when telemetry is off;
 * a crafted ping-pong migration sequence through the real executor
 * fires the churn detector; the JSON report carries both sections.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/acud.hh"
#include "src/core/migration_policy.hh"
#include "src/gpu/gpu.hh"
#include "src/obs/json.hh"
#include "src/obs/pagestats.hh"
#include "src/sim/engine.hh"
#include "src/sys/multi_gpu_system.hh"
#include "src/sys/report.hh"
#include "src/workloads/workload.hh"

using namespace griffin;

namespace {

/** One MT run with both telemetry recorders on. */
sys::RunResult
runInstrumented(Tick timeseries_tick = 20000)
{
    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = 64;
    wcfg.seed = 42;
    auto workload = wl::makeWorkload("MT", wcfg);
    sys::SystemConfig scfg = sys::SystemConfig::griffinDefault();
    scfg.pageStats.enabled = true;
    scfg.timeseriesTick = timeseries_tick;
    sys::MultiGpuSystem system(scfg);
    return system.run(*workload);
}

} // namespace

TEST(Telemetry, IntervalSumsReconcileWithRunAggregates)
{
    const sys::RunResult r = runInstrumented();
    ASSERT_TRUE(r.pageStats.enabled);
    ASSERT_GT(r.timeseries.tick, 0u);
    ASSERT_FALSE(r.timeseries.rows.empty());

    // Sum every interval; the counting sites are the same statements
    // that bump the aggregates, so these must match exactly.
    std::uint64_t migrations = 0, dca = 0, shootdowns = 0, faults = 0;
    for (const auto &row : r.timeseries.rows) {
        using S = obs::TimeSeries::Series;
        migrations += row.counts[unsigned(S::Migrations)];
        dca += row.counts[unsigned(S::DcaAccesses)];
        shootdowns += row.counts[unsigned(S::Shootdowns)];
        faults += row.counts[unsigned(S::Faults)];
    }
    EXPECT_EQ(migrations,
              std::uint64_t(r.stats.get("pageTable.migrations")));
    EXPECT_EQ(dca, r.remoteAccesses);
    EXPECT_EQ(shootdowns, r.cpuShootdowns + r.gpuShootdowns);
    EXPECT_EQ(faults, std::uint64_t(r.latency.faultLatency.count()));

    // The summary's own totals agree with the row sums too.
    using S = obs::TimeSeries::Series;
    EXPECT_EQ(r.timeseries.totals[unsigned(S::Migrations)], migrations);
    EXPECT_EQ(r.timeseries.totals[unsigned(S::Faults)], faults);

    // Page-stats commits are recorded at the same commit point.
    EXPECT_EQ(r.pageStats.totalMigrations, migrations);
    EXPECT_EQ(
        r.pageStats.events[unsigned(obs::PageEvent::MigrationCommit)],
        migrations);
}

TEST(Telemetry, MtReportsZeroChurn)
{
    // MT partitions cleanly across the GPUs: pages migrate out once
    // and never ping-pong back.
    const sys::RunResult r = runInstrumented();
    EXPECT_GT(r.pageStats.totalMigrations, 0u);
    EXPECT_EQ(r.pageStats.churnEvents, 0u);
    EXPECT_EQ(r.pageStats.churnPages, 0u);
    EXPECT_TRUE(r.pageStats.thrashingPages.empty());
}

TEST(Telemetry, DisabledTelemetryChangesNothing)
{
    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = 64;
    wcfg.seed = 42;

    auto w1 = wl::makeWorkload("MT", wcfg);
    sys::MultiGpuSystem plain(sys::SystemConfig::griffinDefault());
    const sys::RunResult off = plain.run(*w1);

    const sys::RunResult on = runInstrumented();

    // Telemetry must be an observer: identical timing and counters.
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.pagesPerDevice, on.pagesPerDevice);
    EXPECT_EQ(off.remoteAccesses, on.remoteAccesses);
    EXPECT_EQ(off.cpuShootdowns, on.cpuShootdowns);
    EXPECT_EQ(off.gpuShootdowns, on.gpuShootdowns);

    // And the off-run carries no telemetry sections.
    EXPECT_FALSE(off.pageStats.enabled);
    EXPECT_EQ(off.timeseries.tick, 0u);
    const auto report = sys::runReportJson(
        "MT/griffin", sys::SystemConfig::griffinDefault(), off);
    EXPECT_EQ(report.find("page_stats"), nullptr);
    EXPECT_EQ(report.find("timeseries"), nullptr);
}

TEST(Telemetry, ReportCarriesPageStatsAndTimeseriesSections)
{
    const sys::RunResult r = runInstrumented();
    sys::SystemConfig scfg = sys::SystemConfig::griffinDefault();
    scfg.pageStats.enabled = true;
    scfg.timeseriesTick = 20000;
    const auto report = sys::runReportJson("MT/griffin", scfg, r);

    const obs::json::Value *ps = report.find("page_stats");
    ASSERT_NE(ps, nullptr);
    ASSERT_NE(ps->find("events"), nullptr);
    EXPECT_DOUBLE_EQ(ps->find("total_migrations")->asNumber(),
                     double(r.pageStats.totalMigrations));
    EXPECT_DOUBLE_EQ(ps->find("churn_events")->asNumber(), 0.0);
    ASSERT_NE(ps->find("hot_pages"), nullptr);
    EXPECT_GT(ps->find("hot_pages")->size(), 0u);

    const obs::json::Value *ts = report.find("timeseries");
    ASSERT_NE(ts, nullptr);
    EXPECT_DOUBLE_EQ(ts->find("tick")->asNumber(), 20000.0);
    EXPECT_EQ(ts->find("rows")->size(), r.timeseries.rows.size());
    ASSERT_NE(ts->find("totals"), nullptr);
    ASSERT_NE(ts->find("peak"), nullptr);

    // The document wrapper stamps the schema version.
    obs::json::Value runs = obs::json::Value::array();
    const auto doc = sys::reportDocument(std::move(runs));
    ASSERT_NE(doc.find("schema_version"), nullptr);
    EXPECT_DOUBLE_EQ(doc.find("schema_version")->asNumber(),
                     double(sys::reportSchemaVersion));

    // The whole report round-trips through the JSON parser.
    const auto parsed = obs::json::Value::parse(report.dump(2));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(
        parsed->find("page_stats")->find("total_migrations")->asNumber(),
        double(r.pageStats.totalMigrations));
}

// --- Crafted ping-pong through the real migration executor ---------

namespace {

class NeverMigratePolicy : public core::MigrationPolicy
{
  public:
    std::string name() const override { return "never"; }
    core::CpuAccessDecision
    onCpuResidentAccess(DeviceId, PageId, mem::PageTable &) override
    {
        return core::CpuAccessDecision{false};
    }
};

class NullHandler : public xlat::FaultHandler
{
  public:
    void onPageFault(DeviceId, PageId, FaultId = invalidFaultId) override {}
};

class NullRouter : public gpu::RemoteRouter
{
  public:
    explicit NullRouter(sim::Engine &engine) : _engine(engine) {}
    void
    remoteAccess(DeviceId, DeviceId, Addr, bool,
                 sim::EventFn done) override
    {
        _engine.schedule(10, std::move(done));
    }

  private:
    sim::Engine &_engine;
};

struct PingPongRig
{
    sim::Engine engine;
    mem::PageTable pt{12, 5};
    ic::Network net{engine, 5, ic::LinkConfig{32.0, 10}};
    xlat::Iommu iommu{engine, net, pt, xlat::IommuConfig{}};
    NeverMigratePolicy policy;
    NullHandler handler;
    NullRouter router{engine};
    std::vector<std::unique_ptr<gpu::Gpu>> gpus;
    std::vector<gpu::Gpu *> gpu_ptrs;
    mem::Dram cpuDram{mem::DramConfig{}};
    std::vector<std::unique_ptr<gpu::Pmc>> pmcs;
    std::vector<gpu::Pmc *> pmc_ptrs;
    std::unique_ptr<core::MigrationExecutor> executor;

    PingPongRig()
    {
        iommu.setPolicy(&policy);
        iommu.setFaultHandler(&handler);
        gpu::GpuConfig cfg;
        cfg.numSes = 1;
        cfg.cusPerSe = 2;
        std::vector<mem::Dram *> drams{&cpuDram};
        for (DeviceId id = 1; id <= 4; ++id) {
            gpus.push_back(std::make_unique<gpu::Gpu>(
                engine, id, cfg, net, iommu, router));
            gpu_ptrs.push_back(gpus.back().get());
            drams.push_back(&gpus.back()->dram());
        }
        for (DeviceId dev = 0; dev <= 4; ++dev) {
            pmcs.push_back(std::make_unique<gpu::Pmc>(
                engine, net, dev, drams, 4096));
            pmc_ptrs.push_back(pmcs.back().get());
        }
        executor = std::make_unique<core::MigrationExecutor>(
            engine, net, pt, iommu, gpu_ptrs, pmc_ptrs, true);
    }

    core::MigrationBatch
    batchOf(std::vector<PageId> pages, DeviceId from, DeviceId to)
    {
        core::MigrationBatch batch;
        batch.source = from;
        for (const PageId p : pages) {
            if (pt.locationOf(p) != from)
                pt.setLocation(p, from);
            batch.moves.push_back(core::MigrationCandidate{
                p, from, to, core::PageClass::Shared, 1.0});
        }
        return batch;
    }
};

} // namespace

TEST(Telemetry, PingPongWorkloadFiresTheChurnDetector)
{
    PingPongRig rig;
    obs::PageStats ps;
    ps.setClock(&rig.engine);
    ps.attach();

    // Seed pages 10..12 on GPU1 (these CPU->GPU1 setLocation calls
    // commit but cannot churn: nothing has left GPU1 yet), then drive
    // GPU1 -> GPU2 -> GPU1 through the real ACUD executor.
    auto out = rig.batchOf({10, 11, 12}, 1, 2);
    rig.executor->executeBatch(out, [&rig] {
        auto back = rig.batchOf({10, 11, 12}, 2, 1);
        rig.executor->executeBatch(back, [] {});
    });
    rig.engine.run();
    ps.detach();

    // Each page returned to GPU1 shortly after leaving it: 3 churn
    // events, and the full lifecycle was witnessed.
    EXPECT_EQ(ps.churnEvents(), 3u);
    for (PageId p : {10, 11, 12}) {
        EXPECT_EQ(rig.pt.locationOf(p), 1u);
        EXPECT_EQ(ps.migrationsOf(p), 3u); // seed + out + back
        EXPECT_EQ(ps.churnOf(p), 1u);
    }
    EXPECT_GE(ps.eventCount(obs::PageEvent::MigrationStart), 6u);
    EXPECT_GE(ps.eventCount(obs::PageEvent::Shootdown), 6u);

    const obs::PageStatsSummary s = ps.summary();
    EXPECT_EQ(s.churnPages, 3u);
    ASSERT_EQ(s.thrashingPages.size(), 3u);
    EXPECT_EQ(s.thrashingPages[0].page, 10u);
}

TEST(Telemetry, HostProfilerAttributesRealRunsAndMetersObsOverhead)
{
    // A fully-instrumented profiled run: the attribution coverage
    // promise (>= 95% of dispatch wall time lands in a named bucket)
    // must hold on a real workload, and the telemetry sinks must show
    // up in the "obs" share.
    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = 64;
    wcfg.seed = 42;
    sys::SystemConfig on = sys::SystemConfig::griffinDefault();
    on.hostProf = true;
    on.pageStats.enabled = true;
    on.timeseriesTick = 20000;
    sys::MultiGpuSystem instrumented(on);
    const sys::RunResult with_obs =
        instrumented.run(*wl::makeWorkload("MT", wcfg));

    const obs::HostProfile &p = with_obs.hostProfile;
    ASSERT_TRUE(p.enabled);
    EXPECT_GT(p.events, 0u);
    EXPECT_GE(p.wallNs, p.dispatchNs);
    EXPECT_GE(p.attributedFraction(), 0.95);
    // PageStats + TimeSeries were recording, so telemetry overhead is
    // visibly nonzero...
    EXPECT_GT(p.obsNs(), 0u);
    EXPECT_NE(p.findBucket("obs", "pagestats"), nullptr);
    EXPECT_NE(p.findBucket("obs", "timeseries"), nullptr);

    // ...and with telemetry off, the obs share is structurally zero:
    // those recording paths never even execute.
    sys::SystemConfig off = sys::SystemConfig::griffinDefault();
    off.hostProf = true;
    sys::MultiGpuSystem bare(off);
    const sys::RunResult without_obs =
        bare.run(*wl::makeWorkload("MT", wcfg));
    const obs::HostProfile &q = without_obs.hostProfile;
    ASSERT_TRUE(q.enabled);
    EXPECT_EQ(q.obsNs(), 0u);
    EXPECT_DOUBLE_EQ(q.obsFraction(), 0.0);
    for (const auto &b : q.buckets)
        EXPECT_NE(b.component, "obs") << b.name();

    // Profiling does not perturb the simulation: a plain unprofiled
    // run produces identical timing and counters. (with_obs is not
    // counter-comparable here — page-stats adds its own counters.)
    sys::MultiGpuSystem plain(sys::SystemConfig::griffinDefault());
    const sys::RunResult unprofiled =
        plain.run(*wl::makeWorkload("MT", wcfg));
    EXPECT_EQ(with_obs.cycles, without_obs.cycles);
    EXPECT_EQ(unprofiled.cycles, without_obs.cycles);
    EXPECT_EQ(unprofiled.stats.dump(), without_obs.stats.dump());
}

TEST(Telemetry, HostProfilingOffLeavesTheResultUnprofiled)
{
    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = 64;
    wcfg.seed = 42;
    sys::MultiGpuSystem system(sys::SystemConfig::griffinDefault());
    const sys::RunResult r =
        system.run(*wl::makeWorkload("MT", wcfg));
    EXPECT_FALSE(r.hostProfile.enabled);
    EXPECT_EQ(r.hostProfile.events, 0u);
    EXPECT_EQ(system.hostProfiler(), nullptr);
}
