/**
 * @file
 * Unit tests for sim::Rng: determinism, range contracts, rough
 * uniformity, stream independence via split().
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/rng.hh"

using griffin::sim::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsTheStream)
{
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng r(42);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsAlwaysZero)
{
    Rng r(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextBelow(1), 0u);
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng r(42);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, RoughUniformityOverBuckets)
{
    Rng r(1234);
    std::vector<int> buckets(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.nextBelow(10)];
    for (const int b : buckets) {
        EXPECT_GT(b, n / 10 * 0.9);
        EXPECT_LT(b, n / 10 * 1.1);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(77);
    Rng child = parent.split();
    // The child stream should not mirror the parent's continuation.
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (parent.next() == child.next()) ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng a(77), b(77);
    Rng ca = a.split();
    Rng cb = b.split();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}
