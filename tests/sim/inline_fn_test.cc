/**
 * @file
 * Unit tests for sim::InlineFn: inline storage, move semantics,
 * capture destruction, argument passing, and the boxed() escape
 * hatch for captures that exceed the inline budget.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "src/sim/inline_fn.hh"

using griffin::sim::boxed;
using griffin::sim::InlineFn;

namespace {

/** Counts live instances so tests can assert capture destruction. */
struct Tracked
{
    static int live;
    Tracked() { ++live; }
    Tracked(const Tracked &) { ++live; }
    Tracked(Tracked &&) noexcept { ++live; }
    ~Tracked() { --live; }
};

int Tracked::live = 0;

} // namespace

TEST(InlineFn, DefaultConstructedIsEmpty)
{
    InlineFn<void()> fn;
    EXPECT_FALSE(fn);
    InlineFn<void()> null_fn(nullptr);
    EXPECT_FALSE(null_fn);
}

TEST(InlineFn, InvokesStoredCallable)
{
    int hits = 0;
    InlineFn<void()> fn([&] { ++hits; });
    EXPECT_TRUE(fn);
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFn, PassesArgumentsAndReturnsValues)
{
    InlineFn<int(int, int)> add([](int a, int b) { return a + b; });
    EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFn, MoveTransfersTheCallable)
{
    int hits = 0;
    InlineFn<void()> a([&] { ++hits; });
    InlineFn<void()> b(std::move(a));
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): empty by contract
    EXPECT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);
}

TEST(InlineFn, MoveAssignReplacesAndDestroysTheOldTarget)
{
    {
        InlineFn<void()> a([t = Tracked{}] {});
        EXPECT_EQ(Tracked::live, 1);
        a = InlineFn<void()>([] {});
        EXPECT_EQ(Tracked::live, 0);
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFn, DestructionReleasesTheCapture)
{
    {
        InlineFn<void()> fn([t = Tracked{}] {});
        EXPECT_EQ(Tracked::live, 1);
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFn, AssigningNullptrClears)
{
    InlineFn<void()> fn([t = Tracked{}] {});
    EXPECT_EQ(Tracked::live, 1);
    fn = nullptr;
    EXPECT_FALSE(fn);
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFn, MutableLambdaStateAdvances)
{
    InlineFn<int()> counter([n = 0]() mutable { return ++n; });
    EXPECT_EQ(counter(), 1);
    EXPECT_EQ(counter(), 2);
    EXPECT_EQ(counter(), 3);
}

TEST(InlineFn, MoveOnlyCaptureThreadsThrough)
{
    auto p = std::make_unique<int>(41);
    InlineFn<int()> fn([p = std::move(p)] { return *p + 1; });
    InlineFn<int()> moved(std::move(fn));
    EXPECT_EQ(moved(), 42);
}

TEST(InlineFn, BoxedCarriesOversizedCaptures)
{
    // A capture bigger than the inline budget cannot be stored
    // directly (that is a compile error by design); boxed() moves it
    // behind a single unique_ptr whose 8-byte handle always fits.
    struct Big
    {
        long payload[32];
    };
    Big big{};
    big.payload[0] = 7;
    big.payload[31] = 35;
    static_assert(sizeof(Big) > InlineFn<long()>::capacity);
    InlineFn<long()> fn(
        boxed([big] { return big.payload[0] + big.payload[31]; }));
    EXPECT_EQ(fn(), 42);
}

TEST(InlineFn, BoxedReleasesTheCaptureOnDestruction)
{
    struct Pad
    {
        long payload[32] = {};
    };
    {
        InlineFn<void()> fn(
            boxed([t = Tracked{}, pad = Pad{}] { (void)pad; }));
        EXPECT_EQ(Tracked::live, 1);
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFn, SelfContainedEventShape)
{
    // The dominant event-queue shape: a wrapper event owning the
    // next continuation. The continuation (itself an InlineFn) can
    // never fit inline, so it rides in a box; the wrapper's capture
    // is just the box pointer.
    int hits = 0;
    InlineFn<void()> inner([&] { ++hits; });
    InlineFn<void()> outer(
        boxed([inner = std::move(inner)]() mutable { inner(); }));
    outer();
    EXPECT_EQ(hits, 1);
}
