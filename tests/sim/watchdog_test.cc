/**
 * @file
 * Unit tests for sim::Watchdog: probe registration, quiescence
 * checking, snapshots, and the Engine maxTicks integration.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "src/sim/engine.hh"
#include "src/sim/watchdog.hh"

using griffin::Tick;
using griffin::sim::Engine;
using griffin::sim::Watchdog;
using griffin::sim::WatchdogError;

TEST(Watchdog, NoProbesMeansQuiesced)
{
    Watchdog wd;
    EXPECT_EQ(wd.probeCount(), 0u);
    EXPECT_FALSE(wd.hasOutstandingWork());
    EXPECT_NO_THROW(wd.checkQuiesced(100));
}

TEST(Watchdog, ZeroProbesPass)
{
    Watchdog wd;
    wd.addProbe("driver", "pendingFaults", [] { return std::uint64_t(0); });
    wd.addProbe("iommu", "parkedRequests", [] { return std::uint64_t(0); });
    EXPECT_FALSE(wd.hasOutstandingWork());
    EXPECT_NO_THROW(wd.checkQuiesced(42));
}

TEST(Watchdog, NonzeroProbeThrowsWithDiagnostics)
{
    // The lost-wakeup shape: the queue drained but a component still
    // holds work nobody will ever service.
    Watchdog wd;
    std::uint64_t parked = 3;
    wd.addProbe("driver", "pendingFaults", [] { return std::uint64_t(0); });
    wd.addProbe("iommu", "parkedRequests", [&] { return parked; });
    EXPECT_TRUE(wd.hasOutstandingWork());
    try {
        wd.checkQuiesced(1234);
        FAIL() << "checkQuiesced should have thrown";
    } catch (const WatchdogError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("iommu"), std::string::npos);
        EXPECT_NE(msg.find("parkedRequests"), std::string::npos);
        EXPECT_NE(msg.find("3"), std::string::npos);
        EXPECT_NE(msg.find("1234"), std::string::npos);
    }

    // Draining the work clears the verdict: probes are live reads.
    parked = 0;
    EXPECT_NO_THROW(wd.checkQuiesced(1234));
}

TEST(Watchdog, SnapshotListsEveryProbe)
{
    Watchdog wd;
    wd.addProbe("pmc0", "queueDepth", [] { return std::uint64_t(7); });
    wd.addProbe("gpu1", "busyCus", [] { return std::uint64_t(0); });
    const std::string snap = wd.snapshot();
    EXPECT_NE(snap.find("pmc0: queueDepth = 7"), std::string::npos);
    EXPECT_NE(snap.find("gpu1: busyCus = 0"), std::string::npos);
}

TEST(Watchdog, SyntheticLostWakeupIsDetected)
{
    // A component enqueues work, the "interrupt" that should service
    // it is never delivered, and the event queue drains. Without the
    // watchdog this run would report success with wrong results.
    Engine engine;
    std::uint64_t outstanding = 0;
    Watchdog wd;
    wd.addProbe("component", "outstandingWork",
                [&] { return outstanding; });

    engine.schedule(10, [&] { ++outstanding; });
    // The dequeue event is "lost": nothing ever decrements.
    engine.run();
    EXPECT_THROW(wd.checkQuiesced(engine.now()), WatchdogError);
}

TEST(Watchdog, QuiesceCheckAfterDrainedRunUntilSeesTheLimit)
{
    // runUntil advances the clock to the limit even when the queue
    // drains early; the quiesce check that follows a periodic window
    // must therefore see the window's end time, and a clean drain
    // must pass it.
    Engine engine;
    std::uint64_t outstanding = 1;
    Watchdog wd;
    wd.addProbe("component", "outstanding", [&] { return outstanding; });

    engine.schedule(10, [&] { outstanding = 0; });
    engine.runUntil(1000);
    EXPECT_EQ(engine.now(), 1000u);
    EXPECT_TRUE(engine.queue().empty());
    EXPECT_NO_THROW(wd.checkQuiesced(engine.now()));
}

TEST(Watchdog, EngineOverrunIncludesProbeSnapshot)
{
    // The livelock shape: events keep breeding past maxTicks. The
    // engine's exception must carry the registered probes' readings.
    Engine engine(1000);
    Watchdog wd;
    wd.addProbe("chain", "depth", [] { return std::uint64_t(9); });
    engine.setWatchdog(&wd);

    std::function<void()> chain = [&] { engine.schedule(100, chain); };
    engine.schedule(100, chain);
    try {
        engine.run();
        FAIL() << "engine should have tripped the watchdog";
    } catch (const WatchdogError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("watchdog"), std::string::npos);
        EXPECT_NE(msg.find("chain: depth = 9"), std::string::npos);
    }
}
