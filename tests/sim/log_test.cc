/**
 * @file
 * Unit tests for the logging facility: level gating, sink capture,
 * lazy formatting.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/engine.hh"
#include "src/sim/log.hh"

using griffin::sim::Engine;
using griffin::sim::Log;
using griffin::sim::LogLevel;

namespace {

/** RAII capture of log output with a chosen level. */
class LogCapture
{
  public:
    explicit LogCapture(LogLevel lvl)
    {
        _savedLevel = Log::level();
        Log::setLevel(lvl);
        Log::setSink([this](LogLevel l, const std::string &msg) {
            lines.push_back({l, msg});
        });
    }

    ~LogCapture()
    {
        Log::resetSink();
        Log::setLevel(_savedLevel);
    }

    std::vector<std::pair<LogLevel, std::string>> lines;

  private:
    LogLevel _savedLevel;
};

} // namespace

TEST(Log, MessagesBelowLevelPass)
{
    LogCapture cap(LogLevel::Info);
    GLOG(Info, "hello " << 42);
    ASSERT_EQ(cap.lines.size(), 1u);
    EXPECT_EQ(cap.lines[0].second, "hello 42");
}

TEST(Log, MessagesAboveLevelAreDiscarded)
{
    LogCapture cap(LogLevel::Warn);
    GLOG(Trace, "invisible");
    GLOG(Info, "also invisible");
    EXPECT_TRUE(cap.lines.empty());
}

TEST(Log, ErrorAlwaysPassesAtAnyConfiguredLevel)
{
    LogCapture cap(LogLevel::Error);
    GLOG(Error, "bad");
    ASSERT_EQ(cap.lines.size(), 1u);
    EXPECT_EQ(cap.lines[0].first, LogLevel::Error);
}

TEST(Log, FormattingIsLazyWhenDisabled)
{
    LogCapture cap(LogLevel::Warn);
    int evaluations = 0;
    auto expensive = [&] {
        ++evaluations;
        return 1;
    };
    GLOG(Trace, "value " << expensive());
    EXPECT_EQ(evaluations, 0);
    GLOG(Warn, "value " << expensive());
    EXPECT_EQ(evaluations, 1);
}

TEST(Log, EnabledMatchesLevel)
{
    LogCapture cap(LogLevel::Info);
    EXPECT_TRUE(Log::enabled(LogLevel::Error));
    EXPECT_TRUE(Log::enabled(LogLevel::Info));
    EXPECT_FALSE(Log::enabled(LogLevel::Trace));
}

TEST(Log, NoClockMeansNoTickPrefix)
{
    LogCapture cap(LogLevel::Info);
    ASSERT_EQ(Log::clock(), nullptr);
    GLOG(Info, "bare");
    ASSERT_EQ(cap.lines.size(), 1u);
    EXPECT_EQ(cap.lines[0].second, "bare");
}

TEST(Log, ClockPrefixesMessagesWithTheEngineTick)
{
    LogCapture cap(LogLevel::Info);
    Engine e;
    Log::setClock(&e);
    e.schedule(25, [] { GLOG(Info, "fired"); });
    e.run();
    Log::setClock(nullptr);
    ASSERT_EQ(cap.lines.size(), 1u);
    EXPECT_EQ(cap.lines[0].second, "[25] fired");
}

TEST(Log, ClearingTheClockDropsThePrefix)
{
    LogCapture cap(LogLevel::Info);
    Engine e;
    Log::setClock(&e);
    GLOG(Info, "with");
    Log::setClock(nullptr);
    GLOG(Info, "without");
    ASSERT_EQ(cap.lines.size(), 2u);
    EXPECT_EQ(cap.lines[0].second, "[0] with");
    EXPECT_EQ(cap.lines[1].second, "without");
}
