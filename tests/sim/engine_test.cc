/**
 * @file
 * Unit tests for sim::Engine: run control, stop requests, watchdog.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/sim/engine.hh"

using griffin::Tick;
using griffin::sim::Engine;

TEST(Engine, RunsToQueueDrain)
{
    Engine e;
    int fired = 0;
    e.schedule(100, [&] { ++fired; });
    e.schedule(200, [&] { ++fired; });
    EXPECT_EQ(e.run(), 200u);
    EXPECT_EQ(fired, 2);
}

TEST(Engine, StopRequestHaltsTheLoop)
{
    Engine e;
    int fired = 0;
    e.schedule(10, [&] {
        ++fired;
        e.requestStop();
    });
    e.schedule(20, [&] { ++fired; });
    e.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(e.stopRequested());
    EXPECT_EQ(e.pendingEvents(), 1u);
}

TEST(Engine, RunAfterStopResumesPendingWork)
{
    Engine e;
    int fired = 0;
    e.schedule(10, [&] { e.requestStop(); });
    e.schedule(20, [&] { ++fired; });
    e.run();
    e.run(); // clears the stop flag and drains
    EXPECT_EQ(fired, 1);
}

TEST(Engine, WatchdogThrowsOnRunaway)
{
    Engine e(/*max_ticks=*/1000);
    // A self-rescheduling event never lets the queue drain.
    std::function<void()> tick = [&] { e.schedule(100, tick); };
    e.schedule(100, tick);
    EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, WatchdogDisabledByDefault)
{
    Engine e;
    int n = 0;
    std::function<void()> tick = [&] {
        if (++n < 100)
            e.schedule(1000000, tick);
    };
    e.schedule(1000000, tick);
    EXPECT_NO_THROW(e.run());
    EXPECT_EQ(n, 100);
}

TEST(Engine, RunUntilDoesNotTripWatchdog)
{
    Engine e(/*max_ticks=*/500);
    e.schedule(100, [] {});
    EXPECT_EQ(e.runUntil(400), 400u);
}

TEST(Engine, EventsExecutedAccumulates)
{
    Engine e;
    for (int i = 0; i < 5; ++i)
        e.schedule(Tick(i), [] {});
    e.run();
    EXPECT_EQ(e.eventsExecuted(), 5u);
}
