/**
 * @file
 * Unit tests for sim::Engine: run control, stop requests, watchdog.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "src/sim/engine.hh"

using griffin::Tick;
using griffin::sim::Engine;

TEST(Engine, RunsToQueueDrain)
{
    Engine e;
    int fired = 0;
    e.schedule(100, [&] { ++fired; });
    e.schedule(200, [&] { ++fired; });
    EXPECT_EQ(e.run(), 200u);
    EXPECT_EQ(fired, 2);
}

TEST(Engine, StopRequestHaltsTheLoop)
{
    Engine e;
    int fired = 0;
    e.schedule(10, [&] {
        ++fired;
        e.requestStop();
    });
    e.schedule(20, [&] { ++fired; });
    e.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(e.stopRequested());
    EXPECT_EQ(e.pendingEvents(), 1u);
}

TEST(Engine, RunAfterStopResumesPendingWork)
{
    Engine e;
    int fired = 0;
    e.schedule(10, [&] { e.requestStop(); });
    e.schedule(20, [&] { ++fired; });
    e.run();
    e.run(); // clears the stop flag and drains
    EXPECT_EQ(fired, 1);
}

TEST(Engine, StopRequestedBeforeRunDoesNotPoisonTheRun)
{
    // A stray requestStop() between runs (e.g. from a shutdown hook)
    // must not make the next run() return without executing anything.
    Engine e;
    e.requestStop();
    int fired = 0;
    e.schedule(10, [&] { ++fired; });
    EXPECT_EQ(e.run(), 10u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(e.stopRequested());
}

TEST(Engine, ReusedEngineRunsBackToBack)
{
    // One engine, several run() calls: each drains the queue from the
    // prior stopping point with no stale stop state.
    Engine e;
    std::vector<Tick> stops;
    for (int round = 0; round < 3; ++round) {
        e.schedule(10, [&e] { e.requestStop(); }); // delay from now
        e.schedule(15, [] {});
        stops.push_back(e.run());
    }
    EXPECT_EQ(stops, (std::vector<Tick>{10, 20, 30}));
    // Final drain picks up the last straggler, scheduled at 20+15.
    EXPECT_EQ(e.run(), 35u);
}

TEST(Engine, WatchdogThrowsOnRunaway)
{
    Engine e(/*max_ticks=*/1000);
    // A self-rescheduling event never lets the queue drain.
    std::function<void()> tick = [&] { e.schedule(100, tick); };
    e.schedule(100, tick);
    EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, WatchdogDisabledByDefault)
{
    Engine e;
    int n = 0;
    std::function<void()> tick = [&] {
        if (++n < 100)
            e.schedule(1000000, tick);
    };
    e.schedule(1000000, tick);
    EXPECT_NO_THROW(e.run());
    EXPECT_EQ(n, 100);
}

TEST(Engine, RunUntilDoesNotTripWatchdog)
{
    Engine e(/*max_ticks=*/500);
    e.schedule(100, [] {});
    EXPECT_EQ(e.runUntil(400), 400u);
}

TEST(Engine, EventsExecutedAccumulates)
{
    Engine e;
    for (int i = 0; i < 5; ++i)
        e.schedule(Tick(i), [] {});
    e.run();
    EXPECT_EQ(e.eventsExecuted(), 5u);
}

TEST(Engine, PeriodicHookFiresOnBoundariesBetweenEvents)
{
    Engine e;
    std::vector<Tick> fires;
    e.addPeriodicHook(10, [&](Tick t) { fires.push_back(t); });
    e.schedule(5, [] {});
    e.schedule(25, [] {});
    e.run();
    // Boundaries 10 and 20 lie before the event at 25; boundary 30
    // never fires because no event reaches it.
    ASSERT_EQ(fires.size(), 2u);
    EXPECT_EQ(fires[0], 10u);
    EXPECT_EQ(fires[1], 20u);
    EXPECT_EQ(e.now(), 25u);
}

TEST(Engine, PeriodicHookNeverExtendsTheRun)
{
    Engine e;
    int fires = 0;
    e.addPeriodicHook(10, [&](Tick) { ++fires; });
    e.schedule(3, [] {});
    EXPECT_EQ(e.run(), 3u);
    EXPECT_EQ(fires, 0);
}

TEST(Engine, PeriodicHookBoundaryCoincidingWithEventFiresFirst)
{
    Engine e;
    std::vector<int> order;
    e.addPeriodicHook(10, [&](Tick) { order.push_back(0); });
    e.schedule(10, [&] { order.push_back(1); });
    e.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0); // hook sees the boundary state
    EXPECT_EQ(order[1], 1);
}

TEST(Engine, RemovedPeriodicHookStopsFiring)
{
    Engine e;
    int fires = 0;
    const auto id = e.addPeriodicHook(10, [&](Tick) { ++fires; });
    e.schedule(15, [&] { e.removePeriodicHook(id); });
    e.schedule(35, [] {});
    e.run();
    EXPECT_EQ(fires, 1); // boundary 10 only; 20/30 come after removal
}

TEST(Engine, TwoHooksFireInGlobalTimeOrder)
{
    Engine e;
    std::vector<std::pair<int, Tick>> fires;
    e.addPeriodicHook(10, [&](Tick t) { fires.push_back({0, t}); });
    e.addPeriodicHook(15, [&](Tick t) { fires.push_back({1, t}); });
    e.schedule(31, [] {});
    e.run();
    // Expect 10(a), 15(b), 20(a), 30(a+b in some deterministic order).
    ASSERT_EQ(fires.size(), 5u);
    for (std::size_t i = 1; i < fires.size(); ++i)
        EXPECT_LE(fires[i - 1].second, fires[i].second);
    EXPECT_EQ(fires[0], (std::pair<int, Tick>{0, 10}));
    EXPECT_EQ(fires[1], (std::pair<int, Tick>{1, 15}));
    EXPECT_EQ(fires[2], (std::pair<int, Tick>{0, 20}));
}
