/**
 * @file
 * Unit tests for sim::EventQueue: ordering, same-tick FIFO, nested
 * scheduling, and run-until semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.hh"

using griffin::Tick;
using griffin::sim::EventQueue;

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ZeroDelayRunsAfterAlreadyQueuedSameTickWork)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(0, [&] {
        order.push_back(1);
        q.schedule(0, [&] { order.push_back(3); });
    });
    q.schedule(0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NestedSchedulingAdvancesTime)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(10, [&] {
        q.schedule(15, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 25u);
}

TEST(EventQueue, RunOneExecutesExactlyOneEvent)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] { ++count; });
    q.schedule(2, [&] { ++count; });
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 1u);
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    std::vector<Tick> fired;
    for (Tick t = 10; t <= 100; t += 10)
        q.scheduleAt(t, [&fired, &q] { fired.push_back(q.now()); });
    q.runUntil(50);
    EXPECT_EQ(fired.size(), 5u);
    EXPECT_EQ(q.now(), 50u);
    q.run();
    EXPECT_EQ(fired.size(), 10u);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWhenIdle)
{
    EventQueue q;
    q.runUntil(1000);
    EXPECT_EQ(q.now(), 1000u);
}

TEST(EventQueue, EventsExecutedCounts)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(Tick(i), [] {});
    q.run();
    EXPECT_EQ(q.eventsExecuted(), 7u);
}

TEST(EventQueue, ScheduleAtCurrentTimeIsLegal)
{
    EventQueue q;
    bool ran = false;
    q.schedule(5, [&] {
        q.scheduleAt(q.now(), [&] { ran = true; });
    });
    q.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, SchedulingInThePastClampsToNow)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_EQ(q.now(), 10u);

    // A past-time schedule is a model bug, but killing a long sweep
    // over it helps nobody: the event is clamped to now and a warning
    // logged, so time still never moves backwards.
    Tick ranAt = 0;
    q.scheduleAt(5, [&] { ranAt = q.now(); });
    q.run();
    EXPECT_EQ(ranAt, 10u);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, ClampedPastEventKeepsFifoOrderAtNow)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();

    // The clamped event lands at now *after* anything already
    // scheduled there, preserving same-tick FIFO determinism.
    std::vector<int> order;
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(3, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, TimeoutFiresLikeAnEvent)
{
    EventQueue q;
    Tick firedAt = 0;
    const auto id = q.scheduleTimeout(25, [&] { firedAt = q.now(); });
    EXPECT_NE(id, griffin::sim::invalidTimerId);
    EXPECT_EQ(q.pendingTimeouts(), 1u);
    q.run();
    EXPECT_EQ(firedAt, 25u);
    EXPECT_EQ(q.pendingTimeouts(), 0u);
}

TEST(EventQueue, CancelledTimeoutNeverFires)
{
    EventQueue q;
    bool fired = false;
    const auto id = q.scheduleTimeout(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancelTimeout(id));
    EXPECT_EQ(q.pendingTimeouts(), 0u);
    EXPECT_TRUE(q.empty());
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsFalse)
{
    EventQueue q;
    const auto id = q.scheduleTimeout(10, [] {});
    EXPECT_TRUE(q.cancelTimeout(id));
    EXPECT_FALSE(q.cancelTimeout(id));
    EXPECT_FALSE(q.cancelTimeout(griffin::sim::invalidTimerId));
}

TEST(EventQueue, CancelAfterFireIsFalse)
{
    EventQueue q;
    const auto id = q.scheduleTimeout(10, [] {});
    q.run();
    EXPECT_FALSE(q.cancelTimeout(id));
}

TEST(EventQueue, CancelledTimeoutDoesNotExtendRun)
{
    // A recovery timer armed past the last real event must not drag
    // the simulated end time out to its (cancelled) deadline.
    EventQueue q;
    q.schedule(10, [] {});
    const auto id = q.scheduleTimeout(1000000, [] {});
    q.schedule(5, [&] { q.cancelTimeout(id); });
    EXPECT_EQ(q.run(), 10u);
}

TEST(EventQueue, SizeExcludesCancelledTimeouts)
{
    EventQueue q;
    q.schedule(10, [] {});
    const auto id = q.scheduleTimeout(20, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancelTimeout(id);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, RunUntilIgnoresCancelledDeadline)
{
    // A cancelled entry sitting at the top of the heap must not let
    // runUntil() execute a real event beyond the limit.
    EventQueue q;
    std::vector<Tick> fired;
    const auto id = q.scheduleTimeout(10, [&] { fired.push_back(10); });
    q.schedule(50, [&] { fired.push_back(50); });
    q.cancelTimeout(id);
    q.runUntil(20);
    EXPECT_TRUE(fired.empty());
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{50}));
}

TEST(EventQueue, ManyEventsKeepTotalOrder)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 5000; ++i) {
        const Tick t = Tick((i * 7919) % 1000);
        q.scheduleAt(t, [&, t] {
            if (t < last)
                monotonic = false;
            last = t;
        });
    }
    q.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(q.eventsExecuted(), 5000u);
}
