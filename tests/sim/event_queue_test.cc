/**
 * @file
 * Unit tests for sim::EventQueue: ordering, same-tick FIFO, nested
 * scheduling, and run-until semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/sim/event_queue.hh"

using griffin::Tick;
using griffin::sim::EventQueue;

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ZeroDelayRunsAfterAlreadyQueuedSameTickWork)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(0, [&] {
        order.push_back(1);
        q.schedule(0, [&] { order.push_back(3); });
    });
    q.schedule(0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NestedSchedulingAdvancesTime)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(10, [&] {
        q.schedule(15, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 25u);
}

TEST(EventQueue, RunOneExecutesExactlyOneEvent)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] { ++count; });
    q.schedule(2, [&] { ++count; });
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 1u);
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    std::vector<Tick> fired;
    for (Tick t = 10; t <= 100; t += 10)
        q.scheduleAt(t, [&fired, &q] { fired.push_back(q.now()); });
    q.runUntil(50);
    EXPECT_EQ(fired.size(), 5u);
    EXPECT_EQ(q.now(), 50u);
    q.run();
    EXPECT_EQ(fired.size(), 10u);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWhenIdle)
{
    EventQueue q;
    q.runUntil(1000);
    EXPECT_EQ(q.now(), 1000u);
}

TEST(EventQueue, EventsExecutedCounts)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(Tick(i), [] {});
    q.run();
    EXPECT_EQ(q.eventsExecuted(), 7u);
}

TEST(EventQueue, ScheduleAtCurrentTimeIsLegal)
{
    EventQueue q;
    bool ran = false;
    q.schedule(5, [&] {
        q.scheduleAt(q.now(), [&] { ran = true; });
    });
    q.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, SchedulingInThePastClampsToNow)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_EQ(q.now(), 10u);

    // A past-time schedule is a model bug, but killing a long sweep
    // over it helps nobody: the event is clamped to now and a warning
    // logged, so time still never moves backwards.
    Tick ranAt = 0;
    q.scheduleAt(5, [&] { ranAt = q.now(); });
    q.run();
    EXPECT_EQ(ranAt, 10u);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, ClampedPastEventKeepsFifoOrderAtNow)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();

    // The clamped event lands at now *after* anything already
    // scheduled there, preserving same-tick FIFO determinism.
    std::vector<int> order;
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(3, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, TimeoutFiresLikeAnEvent)
{
    EventQueue q;
    Tick firedAt = 0;
    const auto id = q.scheduleTimeout(25, [&] { firedAt = q.now(); });
    EXPECT_NE(id, griffin::sim::invalidTimerId);
    EXPECT_EQ(q.pendingTimeouts(), 1u);
    q.run();
    EXPECT_EQ(firedAt, 25u);
    EXPECT_EQ(q.pendingTimeouts(), 0u);
}

TEST(EventQueue, CancelledTimeoutNeverFires)
{
    EventQueue q;
    bool fired = false;
    const auto id = q.scheduleTimeout(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancelTimeout(id));
    EXPECT_EQ(q.pendingTimeouts(), 0u);
    EXPECT_TRUE(q.empty());
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsFalse)
{
    EventQueue q;
    const auto id = q.scheduleTimeout(10, [] {});
    EXPECT_TRUE(q.cancelTimeout(id));
    EXPECT_FALSE(q.cancelTimeout(id));
    EXPECT_FALSE(q.cancelTimeout(griffin::sim::invalidTimerId));
}

TEST(EventQueue, CancelAfterFireIsFalse)
{
    EventQueue q;
    const auto id = q.scheduleTimeout(10, [] {});
    q.run();
    EXPECT_FALSE(q.cancelTimeout(id));
}

TEST(EventQueue, CancelledTimeoutDoesNotExtendRun)
{
    // A recovery timer armed past the last real event must not drag
    // the simulated end time out to its (cancelled) deadline.
    EventQueue q;
    q.schedule(10, [] {});
    const auto id = q.scheduleTimeout(1000000, [] {});
    q.schedule(5, [&] { q.cancelTimeout(id); });
    EXPECT_EQ(q.run(), 10u);
}

TEST(EventQueue, SizeExcludesCancelledTimeouts)
{
    EventQueue q;
    q.schedule(10, [] {});
    const auto id = q.scheduleTimeout(20, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancelTimeout(id);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, RunUntilIgnoresCancelledDeadline)
{
    // A cancelled entry sitting at the top of the heap must not let
    // runUntil() execute a real event beyond the limit.
    EventQueue q;
    std::vector<Tick> fired;
    const auto id = q.scheduleTimeout(10, [&] { fired.push_back(10); });
    q.schedule(50, [&] { fired.push_back(50); });
    q.cancelTimeout(id);
    q.runUntil(20);
    EXPECT_TRUE(fired.empty());
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{50}));
}

TEST(EventQueue, RunUntilAdvancesToLimitWhenQueueDrainsEarly)
{
    // The drained-early contract: the caller asked to simulate up to
    // the limit, so that much time has passed even though the last
    // event fired long before it. Periodic callers (watchdog quiesce
    // checks, stats flushes) rely on observing now() == limit.
    EventQueue q;
    Tick lastEvent = 0;
    q.schedule(10, [&] { lastEvent = q.now(); });
    EXPECT_EQ(q.runUntil(500), 500u);
    EXPECT_EQ(lastEvent, 10u);
    EXPECT_EQ(q.now(), 500u);
    EXPECT_TRUE(q.empty());

    // Draining again from the advanced clock is idempotent, and a
    // later event is unaffected by the artificial advance.
    EXPECT_EQ(q.runUntil(500), 500u);
    Tick firedAt = 0;
    q.schedule(100, [&] { firedAt = q.now(); });
    q.run();
    EXPECT_EQ(firedAt, 600u);
}

TEST(EventQueue, NextTimeIsExactAfterCancel)
{
    // Arm a far-future recovery timer next to a near event, then
    // cancel it: nextTime()/size()/pendingTimeouts() must all agree
    // immediately — no tombstone may keep the dead deadline visible.
    EventQueue q;
    q.schedule(10, [] {});
    const auto id = q.scheduleTimeout(1000000, [] {});
    EXPECT_EQ(q.nextTime(), 10u);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pendingTimeouts(), 1u);

    EXPECT_TRUE(q.cancelTimeout(id));
    EXPECT_EQ(q.nextTime(), 10u);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.pendingTimeouts(), 0u);

    EXPECT_TRUE(q.runOne());
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTime(), griffin::maxTick);
}

TEST(EventQueue, NextTimeSkipsCancelledFront)
{
    // The cancelled timeout is the *earliest* entry: nextTime() must
    // report the first live event, not the tombstone's deadline.
    EventQueue q;
    const auto id = q.scheduleTimeout(5, [] {});
    q.schedule(50, [] {});
    EXPECT_EQ(q.nextTime(), 5u);
    EXPECT_TRUE(q.cancelTimeout(id));
    EXPECT_EQ(q.nextTime(), 50u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueStress, MillionTimerChurnKeepsMemoryBounded)
{
    // Chaos-style churn: the executor arms a recovery timer per batch
    // and cancels nearly all of them when the transfers land. A naive
    // tombstone scheme would accumulate one dead entry per cancel;
    // the queue must reclaim them and recycle timer slots.
    EventQueue q;
    constexpr int rounds = 1000000;
    std::uint32_t rng = 12345;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    std::vector<griffin::sim::TimerId> armed;
    for (int i = 0; i < rounds; ++i) {
        rng = rng * 1664525u + 1013904223u; // deterministic LCG
        // Short deadlines land in the ladder; every 8th timer is
        // pushed past the window into the spill heap (and is one of
        // the cancelled ones, so spill tombstones get exercised too).
        const Tick delay = 1 + (rng >> 24) + ((i & 7) == 3 ? 5000 : 0);
        armed.push_back(q.scheduleTimeout(delay, [&] { ++fired; }));
        if (armed.size() >= 8) {
            // Cancel 7 of 8; let the survivor fire (or linger).
            for (std::size_t k = 1; k < armed.size(); ++k)
                if (q.cancelTimeout(armed[k]))
                    ++cancelled;
            armed.clear();
        }
        if ((i & 1023) == 0)
            q.runUntil(q.now() + 16);
    }
    q.run();

    EXPECT_EQ(fired + cancelled, std::uint64_t(rounds));
    EXPECT_EQ(q.pendingTimeouts(), 0u);
    EXPECT_EQ(q.residentEntries(), 0u);
    // Slots recycle through the free list: the high-water mark is the
    // peak number of simultaneously pending timers (plus tombstoned
    // slots awaiting their entry's reclaim), not the total ever armed.
    EXPECT_LT(q.timerSlotsAllocated(), 20000u);
}

TEST(EventQueueStress, InterleavedEventsAndCancelsStayOrdered)
{
    // Timer churn interleaved with plain events: cancellations must
    // never disturb execution order of live work.
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    std::uint32_t rng = 99;
    griffin::sim::TimerId pending = griffin::sim::invalidTimerId;
    for (int i = 0; i < 20000; ++i) {
        rng = rng * 1664525u + 1013904223u;
        const Tick t = 1 + (rng % 4096);
        q.schedule(t, [&, i] {
            (void)i;
            if (q.now() < last)
                monotonic = false;
            last = q.now();
        });
        if (pending != griffin::sim::invalidTimerId)
            q.cancelTimeout(pending);
        pending = q.scheduleTimeout(t + 100000, [] {});
        if ((i & 255) == 0)
            q.runUntil(q.now() + 64);
    }
    if (pending != griffin::sim::invalidTimerId)
        q.cancelTimeout(pending);
    q.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(q.residentEntries(), 0u);
}

// --- Window-boundary properties ------------------------------------
// The ladder covers a sliding 1024-tick window; events beyond it land
// in the spill heap and redistribute into the ladder when the window
// slides. Nothing about that seam may be observable: FIFO within a
// tick, global time order, and nextTime() exactness all hold on both
// sides of the boundary and across a slide.

TEST(EventQueueWindow, FifoHoldsAcrossTheLadderSpillBoundary)
{
    // Ticks 1022/1023 sit in the last ladder buckets, 1024/1025 spill.
    // Interleave schedules across the seam: execution must follow
    // (when, schedule order) exactly, as if the tiers did not exist.
    EventQueue q;
    std::vector<std::pair<Tick, int>> fired;
    std::vector<std::pair<Tick, int>> expected;
    int arrival = 0;
    for (int round = 0; round < 8; ++round) {
        for (Tick t : {Tick(1022), Tick(1023), Tick(1024), Tick(1025)}) {
            const int id = arrival++;
            q.scheduleAt(t, [&fired, t, id] { fired.push_back({t, id}); });
            expected.push_back({t, id});
        }
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    q.run();
    EXPECT_EQ(fired, expected);
}

TEST(EventQueueWindow, SpillRedistributionPreservesFifoWithinTick)
{
    // All 64 events share one far-future tick, so every one takes the
    // spill -> slide -> ladder -> ring path; schedule order survives it.
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        q.schedule(5000, [&order, i] { order.push_back(i); });
    q.run();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueWindow, LateArrivalsAtARedistributedTickStayFifo)
{
    // The first four events at tick 5000 spill; at tick 4000 the
    // window has slid so 5000 is a ladder bucket, and four more events
    // append there directly. Global schedule order must still win.
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        q.schedule(5000, [&order, i] { order.push_back(i); });
    q.schedule(4000, [&] {
        for (int i = 4; i < 8; ++i)
            q.schedule(1000, [&order, i] { order.push_back(i); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueWindow, NextTimeIsExactAfterCancelsAroundTheBoundary)
{
    // One timeout on each side of the seam plus a far event: as
    // timeouts cancel, nextTime() must step to the earliest *live*
    // entry with no tombstone — in the ladder or the spill top —
    // shining through.
    EventQueue q;
    const auto inLadder = q.scheduleTimeout(1023, [] {});
    const auto inSpill = q.scheduleTimeout(1024, [] {});
    q.schedule(1500, [] {});
    EXPECT_EQ(q.nextTime(), 1023u);

    EXPECT_TRUE(q.cancelTimeout(inLadder));
    EXPECT_EQ(q.nextTime(), 1024u);
    EXPECT_EQ(q.size(), 2u);

    EXPECT_TRUE(q.cancelTimeout(inSpill));
    EXPECT_EQ(q.nextTime(), 1500u);
    EXPECT_EQ(q.size(), 1u);

    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(q.now(), 1500u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTime(), griffin::maxTick);
}

TEST(EventQueueWindow, CancelledSpillTopDoesNotBlockTheSlide)
{
    // The spill's earliest entry is a cancelled timeout: the window
    // must slide to the first live event, not anchor on (or fire at)
    // the tombstone's deadline.
    EventQueue q;
    const auto dead = q.scheduleTimeout(2000, [] {});
    Tick firedAt = 0;
    q.schedule(3000, [&] { firedAt = q.now(); });
    EXPECT_TRUE(q.cancelTimeout(dead));
    EXPECT_EQ(q.run(), 3000u);
    EXPECT_EQ(firedAt, 3000u);
}

TEST(EventQueueWindow, TieredAndReferenceSchedulersAgreeOnOrder)
{
    // One randomized script — bursty delays straddling the window,
    // timer arms, cancels, partial drains — must fire callbacks in the
    // identical order on the tiered queue and on the naive reference
    // heap (the differential the fuzz oracles rely on).
    const auto script = [](EventQueue &q, std::vector<int> &order) {
        std::uint32_t rng = 2024;
        std::vector<griffin::sim::TimerId> timers;
        int id = 0;
        for (int i = 0; i < 3000; ++i) {
            rng = rng * 1664525u + 1013904223u;
            const Tick delay = (rng >> 20) & 4095; // straddles 1024
            if ((rng & 3) == 0) {
                timers.push_back(q.scheduleTimeout(
                    delay + 1, [&order, id] { order.push_back(id); }));
            } else {
                q.schedule(delay, [&order, id] { order.push_back(id); });
            }
            ++id;
            if ((rng & 15) == 1 && !timers.empty()) {
                q.cancelTimeout(timers.back());
                timers.pop_back();
            }
            if ((i & 127) == 0)
                q.runUntil(q.now() + 256);
        }
        q.run();
    };

    EventQueue tiered;
    std::vector<int> tieredOrder;
    script(tiered, tieredOrder);

    EventQueue reference;
    reference.enableReferenceMode();
    ASSERT_TRUE(reference.referenceMode());
    std::vector<int> referenceOrder;
    script(reference, referenceOrder);

    EXPECT_FALSE(tieredOrder.empty());
    EXPECT_EQ(tieredOrder, referenceOrder);
    EXPECT_EQ(tiered.eventsExecuted(), reference.eventsExecuted());
    EXPECT_EQ(tiered.now(), reference.now());
}

TEST(EventQueue, ManyEventsKeepTotalOrder)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 5000; ++i) {
        const Tick t = Tick((i * 7919) % 1000);
        q.scheduleAt(t, [&, t] {
            if (t < last)
                monotonic = false;
            last = t;
        });
    }
    q.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(q.eventsExecuted(), 5000u);
}
