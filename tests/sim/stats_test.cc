/**
 * @file
 * Unit tests for sim::StatSet and sim::Histogram.
 */

#include <gtest/gtest.h>

#include "src/sim/stats.hh"

using griffin::sim::Histogram;
using griffin::sim::StatSet;

TEST(StatSet, IncCreatesAndAccumulates)
{
    StatSet s;
    s.inc("hits");
    s.inc("hits", 4);
    EXPECT_DOUBLE_EQ(s.get("hits"), 5.0);
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.set("x", 3.0);
    s.set("x", 7.0);
    EXPECT_DOUBLE_EQ(s.get("x"), 7.0);
}

TEST(StatSet, UnknownNameReadsZeroAndHasIsFalse)
{
    StatSet s;
    EXPECT_DOUBLE_EQ(s.get("nope"), 0.0);
    EXPECT_FALSE(s.has("nope"));
}

TEST(StatSet, BoundProbeTracksLiveCounter)
{
    StatSet s;
    std::uint64_t counter = 0;
    s.bindCounter("live", counter);
    EXPECT_DOUBLE_EQ(s.get("live"), 0.0);
    counter = 42;
    EXPECT_DOUBLE_EQ(s.get("live"), 42.0);
    EXPECT_TRUE(s.has("live"));
}

TEST(StatSet, ProbeShadowsScalarOfSameName)
{
    StatSet s;
    s.set("x", 1.0);
    s.bind("x", [] { return 9.0; });
    EXPECT_DOUBLE_EQ(s.get("x"), 9.0);
}

TEST(StatSet, AllIsSortedSnapshot)
{
    StatSet s;
    s.set("b", 2);
    s.set("a", 1);
    std::uint64_t c = 3;
    s.bindCounter("c", c);
    const auto all = s.all();
    ASSERT_EQ(all.size(), 3u);
    auto it = all.begin();
    EXPECT_EQ(it->first, "a");
    ++it;
    EXPECT_EQ(it->first, "b");
    ++it;
    EXPECT_EQ(it->first, "c");
    EXPECT_DOUBLE_EQ(it->second, 3.0);
}

TEST(StatSet, AdoptPrefixesNames)
{
    StatSet child;
    child.set("hits", 10);
    StatSet parent;
    parent.adopt("l2.", child);
    EXPECT_DOUBLE_EQ(parent.get("l2.hits"), 10.0);
}

TEST(StatSet, DumpContainsNameAndValue)
{
    StatSet s;
    s.set("cycles", 123);
    EXPECT_NE(s.dump().find("cycles 123"), std::string::npos);
}

TEST(Histogram, BasicMoments)
{
    Histogram h(10.0, 10);
    h.sample(5);
    h.sample(15);
    h.sample(25);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 45.0);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 25.0);
}

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h(1.0, 4);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, OverflowBucketCatchesLargeSamples)
{
    Histogram h(1.0, 4);
    h.sample(1000.0);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Histogram, PercentileApproximation)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(double(i) + 0.5);
    // p50 should land near 50.
    EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(90), 90.0, 2.0);
}

TEST(Histogram, PercentileEdgesReturnMinAndMax)
{
    Histogram h(10.0, 10);
    h.sample(5.0);
    h.sample(95.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(-3), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 95.0);
    EXPECT_DOUBLE_EQ(h.percentile(150), 95.0);
}

TEST(Histogram, SingleSampleReportsThatSampleForEveryP)
{
    Histogram h(10.0, 10);
    h.sample(37.0);
    EXPECT_DOUBLE_EQ(h.percentile(1), 37.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 37.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 37.0);
}

TEST(Histogram, AllSamplesInOverflowReportMax)
{
    Histogram h(1.0, 4);
    h.sample(10.0);
    h.sample(20.0);
    // Both land in the overflow bucket, whose upper edge is
    // unbounded; the defined answer is max().
    EXPECT_DOUBLE_EQ(h.percentile(50), 20.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 20.0);
}

TEST(Histogram, PercentileStaysInsideObservedRange)
{
    Histogram h(10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(42.0); // all in bucket 4 [40, 50)
    // The bucket's upper edge (50) exceeds the observed max; the
    // clamp keeps the report honest.
    EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
    const double p99 = h.percentile(99);
    EXPECT_GE(p99, h.min());
    EXPECT_LE(p99, h.max());
}

TEST(Histogram, PercentileIsMonotoneInP)
{
    Histogram h(5.0, 50);
    for (int i = 0; i < 200; ++i)
        h.sample(double(i % 97));
    double prev = h.percentile(0);
    for (int p = 5; p <= 100; p += 5) {
        const double cur = h.percentile(p);
        EXPECT_GE(cur, prev) << "p=" << p;
        prev = cur;
    }
}
