/**
 * @file
 * Unit tests for the Link and Network models: latency, bandwidth
 * serialization, duplex independence, and congestion at a hot device.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/interconnect/link.hh"
#include "src/interconnect/switch.hh"
#include "src/sim/engine.hh"

using namespace griffin;
using ic::Link;
using ic::LinkConfig;
using ic::Network;

TEST(Link, SingleMessageLatency)
{
    Link link(LinkConfig{32.0, 250});
    // 64 B at 32 B/cy = 2 cycles service + 250 latency.
    EXPECT_EQ(link.send(0, 0, 64), 252u);
}

TEST(Link, MinimumOneCycleService)
{
    Link link(LinkConfig{32.0, 10});
    EXPECT_EQ(link.send(0, 0, 8), 11u);
}

TEST(Link, BackToBackSerializes)
{
    Link link(LinkConfig{32.0, 250});
    EXPECT_EQ(link.send(0, 0, 64), 252u);
    EXPECT_EQ(link.send(0, 0, 64), 254u); // starts at t=2
    EXPECT_EQ(link.nextFree(0), 4u);
}

TEST(Link, DirectionsAreIndependent)
{
    Link link(LinkConfig{32.0, 250});
    link.send(0, 0, 3200); // occupies upstream 100 cycles
    EXPECT_EQ(link.send(0, 1, 64), 252u); // downstream unaffected
}

TEST(Link, IdleGapResetsStart)
{
    Link link(LinkConfig{32.0, 100});
    link.send(0, 0, 64);
    EXPECT_EQ(link.send(1000, 0, 64), 1102u);
}

TEST(Link, StatsPerDirection)
{
    Link link(LinkConfig{32.0, 100});
    link.send(0, 0, 64);
    link.send(0, 0, 64);
    link.send(0, 1, 128);
    EXPECT_EQ(link.messages[0], 2u);
    EXPECT_EQ(link.messages[1], 1u);
    EXPECT_EQ(link.bytesSent[0], 128u);
    EXPECT_EQ(link.bytesSent[1], 128u);
    EXPECT_EQ(link.busyCycles[0], 4u);
    EXPECT_EQ(link.busyCycles[1], 4u);
}

TEST(Link, DegradeWindowScalesServiceTime)
{
    Link link(LinkConfig{32.0, 250});
    // At quarter bandwidth, 64 B takes 8 service cycles, not 2.
    link.degrade(1000, 0.25);
    EXPECT_TRUE(link.degradedAt(0));
    EXPECT_EQ(link.send(0, 0, 64), 258u);
    EXPECT_EQ(link.degradedMessages, 1u);
}

TEST(Link, DegradeWindowExpires)
{
    Link link(LinkConfig{32.0, 250});
    link.degrade(100, 0.25);
    EXPECT_FALSE(link.degradedAt(100));
    // A message starting after the window sees full bandwidth again.
    EXPECT_EQ(link.send(100, 0, 64), 352u);
    EXPECT_EQ(link.degradedMessages, 0u);
}

TEST(Link, DegradeExtendsNotShrinks)
{
    Link link(LinkConfig{32.0, 250});
    link.degrade(1000, 0.25);
    link.degrade(500, 0.25); // shorter window must not shrink it
    EXPECT_TRUE(link.degradedAt(900));
}

TEST(Link, OverlappingDegradeKeepsMostDegradedFactor)
{
    Link link(LinkConfig{32.0, 250});
    // A severe fault is in effect until t=1000; a milder one arrives
    // and lasts longer. Over the overlap the severe factor must win —
    // the milder injection must not silently repair the link.
    link.degrade(1000, 0.25);
    link.degrade(2000, 0.5);
    EXPECT_DOUBLE_EQ(link.degradeFactorAt(500), 0.25);
    // 64 B at quarter bandwidth: 8 service cycles.
    EXPECT_EQ(link.send(0, 0, 64), 258u);
    // After the severe window closes only the milder one applies.
    EXPECT_DOUBLE_EQ(link.degradeFactorAt(1500), 0.5);
    EXPECT_EQ(link.send(1500, 0, 64), 1754u);
    // Both windows closed: full bandwidth.
    EXPECT_FALSE(link.degradedAt(2000));
    EXPECT_EQ(link.send(3000, 0, 64), 3252u);
    EXPECT_EQ(link.degradedMessages, 2u);
}

TEST(Link, MilderOverlapAppliesAfterSevereWindowCloses)
{
    Link link(LinkConfig{32.0, 250});
    // Injection order must not matter: severe-then-milder and
    // milder-then-severe resolve identically over the overlap.
    link.degrade(2000, 0.5);
    link.degrade(1000, 0.25);
    EXPECT_DOUBLE_EQ(link.degradeFactorAt(500), 0.25);
    EXPECT_DOUBLE_EQ(link.degradeFactorAt(1500), 0.5);
    EXPECT_DOUBLE_EQ(link.degradeFactorAt(2500), 1.0);
}

TEST(Network, DeliversAfterTwoHops)
{
    sim::Engine engine;
    Network net(engine, 5, LinkConfig{32.0, 100});
    Tick delivered = 0;
    net.send(1, 2, 64, [&] { delivered = engine.now(); });
    engine.run();
    // src up: 2 service + 100; dst down: starts at 102, +2+100 = 204.
    EXPECT_EQ(delivered, 204u);
    EXPECT_EQ(net.messagesDelivered, 1u);
}

TEST(Network, HotDestinationCongests)
{
    sim::Engine engine;
    Network net(engine, 5, LinkConfig{32.0, 100});
    // Three senders target device 1 simultaneously with large
    // messages: deliveries serialize on device 1's downstream wire.
    std::vector<Tick> times;
    for (DeviceId src = 2; src <= 4; ++src)
        net.send(src, 1, 3200, [&] { times.push_back(engine.now()); });
    engine.run();
    ASSERT_EQ(times.size(), 3u);
    EXPECT_EQ(times[0], 400u);           // 100 ser + 100, then +100+100
    EXPECT_EQ(times[1] - times[0], 100u); // serialized at 100 cy each
    EXPECT_EQ(times[2] - times[1], 100u);
}

TEST(Network, DistinctDestinationsDoNotContend)
{
    sim::Engine engine;
    Network net(engine, 5, LinkConfig{32.0, 100});
    std::vector<Tick> times;
    net.send(1, 2, 3200, [&] { times.push_back(engine.now()); });
    net.send(3, 4, 3200, [&] { times.push_back(engine.now()); });
    engine.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], times[1]);
}

TEST(Network, SameSourceSerializesOnEgress)
{
    sim::Engine engine;
    Network net(engine, 5, LinkConfig{32.0, 100});
    std::vector<Tick> times;
    net.send(1, 2, 3200, [&] { times.push_back(engine.now()); });
    net.send(1, 3, 3200, [&] { times.push_back(engine.now()); });
    engine.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[1] - times[0], 100u); // egress wire shared
}

TEST(Network, PageTransferTiming)
{
    sim::Engine engine;
    Network net(engine, 5, LinkConfig{32.0, 250});
    Tick delivered = 0;
    // A 4 KB page + header: the dominant migration cost.
    net.send(1, 2, 4096 + 8, [&] { delivered = engine.now(); });
    engine.run();
    // ceil(4104/32)=129 service twice + 250 latency twice.
    EXPECT_EQ(delivered, 2u * (129 + 250));
}

TEST(NetworkDeath, LoopbackRejected)
{
    sim::Engine engine;
    Network net(engine, 5, LinkConfig{32.0, 100});
    EXPECT_DEATH(net.send(1, 1, 64, [] {}), "loopback");
}
