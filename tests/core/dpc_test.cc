/**
 * @file
 * Unit tests for core::Dpc: the EWMA filter, each of the five page
 * classes, candidate selection and garbage collection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/core/dpc.hh"

using namespace griffin;
using core::Dpc;
using core::GriffinConfig;
using core::MigrationCandidate;
using core::PageClass;

namespace {

GriffinConfig
testConfig()
{
    GriffinConfig cfg;
    cfg.alpha = 0.5; // fast filter: tests converge in a few periods
    cfg.lambdaD = 2.0;
    cfg.lambdaS = 1.3;
    cfg.lambdaT = 0.002; // 2 accesses per 1000-cycle period
    cfg.tAc = 1000;
    return cfg;
}

void
feed(Dpc &dpc, PageId page, std::vector<std::uint32_t> per_gpu)
{
    for (DeviceId g = 1; g <= DeviceId(per_gpu.size()); ++g) {
        if (per_gpu[g - 1] > 0)
            dpc.addCounts(g, {gpu::PageCount{page, per_gpu[g - 1]}});
    }
}

} // namespace

TEST(Dpc, EwmaConvergesTowardRawCounts)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1);
    for (int i = 0; i < 8; ++i) {
        feed(dpc, 1, {100, 0, 0, 0});
        dpc.endPeriod(pt);
    }
    const auto counts = dpc.filteredCounts(1);
    EXPECT_NEAR(counts[0], 100.0, 1.0);
    EXPECT_DOUBLE_EQ(counts[1], 0.0);
}

TEST(Dpc, UnreportedPagesDecay)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1);
    feed(dpc, 1, {100, 0, 0, 0});
    dpc.endPeriod(pt);
    const double after_one = dpc.filteredCounts(1)[0];
    dpc.endPeriod(pt); // no report: N = 0
    EXPECT_LT(dpc.filteredCounts(1)[0], after_one);
}

TEST(Dpc, DeadPagesAreGarbageCollected)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1);
    feed(dpc, 1, {10, 0, 0, 0});
    dpc.endPeriod(pt);
    EXPECT_EQ(dpc.trackedPages(), 1u);
    for (int i = 0; i < 40; ++i)
        dpc.endPeriod(pt);
    EXPECT_EQ(dpc.trackedPages(), 0u);
}

TEST(Dpc, StreamingClassForLowRates)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1);
    feed(dpc, 1, {1, 0, 0, 0}); // below lambda_t * tAc = 2
    const auto cands = dpc.endPeriod(pt);
    EXPECT_EQ(dpc.classify(1, 1), PageClass::Streaming);
    EXPECT_TRUE(cands.empty());
}

TEST(Dpc, MostlyDedicatedMigratesToTheDominantGpu)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1); // lives on GPU 1...
    std::vector<MigrationCandidate> cands;
    for (int i = 0; i < 6; ++i) {
        feed(dpc, 1, {0, 0, 80, 0}); // ...but GPU 3 hammers it
        cands = dpc.endPeriod(pt);
    }
    EXPECT_EQ(dpc.classify(1, 1), PageClass::MostlyDedicated);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].page, 1u);
    EXPECT_EQ(cands[0].from, 1u);
    EXPECT_EQ(cands[0].to, 3u);
}

TEST(Dpc, DedicatedOnTheRightGpuStaysPut)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 3);
    feed(dpc, 1, {0, 0, 80, 0});
    const auto cands = dpc.endPeriod(pt);
    EXPECT_EQ(dpc.classify(1, 3), PageClass::MostlyDedicated);
    EXPECT_TRUE(cands.empty());
}

TEST(Dpc, SharedFlatDistributionOnWarmOwnerStays)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 2);
    std::vector<MigrationCandidate> cands;
    for (int i = 0; i < 6; ++i) {
        feed(dpc, 1, {60, 55, 58, 52});
        cands = dpc.endPeriod(pt);
    }
    EXPECT_EQ(dpc.classify(1, 2), PageClass::Shared);
    EXPECT_TRUE(cands.empty()); // not worth the overhead
}

TEST(Dpc, SharedPageOnColdOwnerMigrates)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 4); // owner barely accesses it
    std::vector<MigrationCandidate> cands;
    for (int i = 0; i < 6; ++i) {
        feed(dpc, 1, {60, 55, 58, 5});
        cands = dpc.endPeriod(pt);
    }
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(cands[0].from, 4u);
    EXPECT_EQ(cands[0].to, 1u);
}

TEST(Dpc, OwnerShiftingDetectsTheHandover)
{
    GriffinConfig cfg = testConfig();
    cfg.lambdaD = 10.0; // keep "dedicated" out of the way
    cfg.lambdaS = 1.01; // and "shared" too
    Dpc dpc(4, cfg);
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1);
    // Warm up GPU 1 as the owner...
    for (int i = 0; i < 6; ++i) {
        feed(dpc, 1, {100, 40, 0, 0});
        dpc.endPeriod(pt);
    }
    // ...then GPU 2 takes over while GPU 1 cools.
    feed(dpc, 1, {10, 90, 0, 0});
    const auto cands = dpc.endPeriod(pt);
    EXPECT_EQ(dpc.classify(1, 1), PageClass::OwnerShifting);
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(cands[0].to, 2u);
    EXPECT_EQ(cands[0].reason, PageClass::OwnerShifting);
}

TEST(Dpc, CpuResidentPagesAreNotCandidates)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.info(1); // CPU resident
    std::vector<MigrationCandidate> cands;
    for (int i = 0; i < 6; ++i) {
        feed(dpc, 1, {0, 0, 80, 0});
        cands = dpc.endPeriod(pt);
    }
    EXPECT_TRUE(cands.empty());
}

TEST(Dpc, MigratingAndPendingPagesAreSkipped)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1);
    pt.info(1).migrationPending = true;
    for (int i = 0; i < 6; ++i)
        feed(dpc, 1, {0, 0, 80, 0});
    EXPECT_TRUE(dpc.endPeriod(pt).empty());
}

TEST(Dpc, PinnedPagesNeverMove)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1);
    pt.info(1).pinned = true;
    std::vector<MigrationCandidate> cands;
    for (int i = 0; i < 6; ++i) {
        feed(dpc, 1, {0, 0, 80, 0});
        cands = dpc.endPeriod(pt);
    }
    EXPECT_TRUE(cands.empty());
}

TEST(Dpc, CandidatesSortedByScore)
{
    Dpc dpc(4, testConfig());
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1);
    pt.setLocation(2, 1);
    std::vector<MigrationCandidate> cands;
    for (int i = 0; i < 6; ++i) {
        feed(dpc, 1, {0, 40, 0, 0});
        feed(dpc, 2, {0, 0, 90, 0});
        cands = dpc.endPeriod(pt);
    }
    ASSERT_EQ(cands.size(), 2u);
    EXPECT_EQ(cands[0].page, 2u); // higher score first
    EXPECT_GE(cands[0].score, cands[1].score);
}

TEST(Dpc, UnknownPageClassifiesOutOfInterest)
{
    Dpc dpc(4, testConfig());
    EXPECT_EQ(dpc.classify(999, 1), PageClass::OutOfInterest);
}

TEST(Dpc, PredictiveModeMigratesBeforeTheCrossover)
{
    // The riser has not overtaken the owner yet, but its trend will
    // cross within the look-ahead: reactive mode waits, predictive
    // mode (paper SS VII future work) migrates now.
    for (const bool predictive : {false, true}) {
        GriffinConfig cfg = testConfig();
        cfg.lambdaD = 10.0;
        cfg.lambdaS = 1.01;
        cfg.alpha = 0.5;
        cfg.enablePredictiveMigration = predictive;
        cfg.predictiveLookahead = 3.0;
        Dpc dpc(4, cfg);
        mem::PageTable pt(12, 5);
        pt.setLocation(1, 1);
        // Stable owner...
        for (int i = 0; i < 6; ++i) {
            feed(dpc, 1, {100, 10, 0, 0});
            dpc.endPeriod(pt);
        }
        // ...starts cooling while GPU 2 warms, still below the owner.
        feed(dpc, 1, {60, 40, 0, 0});
        const auto cands = dpc.endPeriod(pt);
        if (predictive) {
            ASSERT_FALSE(cands.empty());
            EXPECT_EQ(cands[0].to, 2u);
        } else {
            EXPECT_TRUE(cands.empty());
        }
    }
}

TEST(Dpc, PredictiveStillRequiresARisingTrend)
{
    GriffinConfig cfg = testConfig();
    cfg.lambdaD = 10.0;
    cfg.lambdaS = 1.01;
    cfg.enablePredictiveMigration = true;
    Dpc dpc(4, cfg);
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1);
    for (int i = 0; i < 6; ++i) {
        feed(dpc, 1, {100, 10, 0, 0});
        dpc.endPeriod(pt);
    }
    // Owner cools but nobody rises: no candidate even predictively.
    feed(dpc, 1, {60, 5, 0, 0});
    EXPECT_TRUE(dpc.endPeriod(pt).empty());
}

/** Threshold sweep: the dedicated/shared boundary moves with l_d. */
class DpcLambdaD : public ::testing::TestWithParam<double>
{
};

TEST_P(DpcLambdaD, DominanceRatioDecidesDedicated)
{
    GriffinConfig cfg = testConfig();
    cfg.lambdaD = GetParam();
    Dpc dpc(4, cfg);
    mem::PageTable pt(12, 5);
    pt.setLocation(1, 1);
    for (int i = 0; i < 8; ++i) {
        feed(dpc, 1, {90, 60, 0, 0}); // ratio 1.5
        dpc.endPeriod(pt);
    }
    const auto cls = dpc.classify(1, 1);
    if (GetParam() <= 1.5)
        EXPECT_EQ(cls, PageClass::MostlyDedicated);
    else
        EXPECT_NE(cls, PageClass::MostlyDedicated);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DpcLambdaD,
                         ::testing::Values(1.2, 1.5, 2.0, 4.0));
