/**
 * @file
 * Unit tests for core::GriffinPolicy's orchestration: the periodic
 * count-collection machinery, DFTM wiring (leases through the IOTLB),
 * migration phase pacing, probes, and the component toggles.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/griffin_policy.hh"
#include "src/gpu/gpu.hh"
#include "src/sim/engine.hh"

using namespace griffin;

namespace {

class NullRouter : public gpu::RemoteRouter
{
  public:
    explicit NullRouter(sim::Engine &engine) : _engine(engine) {}
    void
    remoteAccess(DeviceId, DeviceId, Addr, bool,
                 sim::EventFn done) override
    {
        _engine.schedule(10, std::move(done));
    }

  private:
    sim::Engine &_engine;
};

class NullHandler : public xlat::FaultHandler
{
  public:
    void onPageFault(DeviceId, PageId, FaultId = invalidFaultId) override {}
};

struct Rig
{
    sim::Engine engine;
    mem::PageTable pt{12, 5};
    ic::Network net{engine, 5, ic::LinkConfig{32.0, 10}};
    xlat::Iommu iommu{engine, net, pt, xlat::IommuConfig{}};
    NullRouter router{engine};
    NullHandler handler;
    std::vector<std::unique_ptr<gpu::Gpu>> gpus;
    std::vector<gpu::Gpu *> gpu_ptrs;
    mem::Dram cpuDram{mem::DramConfig{}};
    std::vector<std::unique_ptr<gpu::Pmc>> pmcs;
    std::vector<gpu::Pmc *> pmc_ptrs;
    std::unique_ptr<core::GriffinPolicy> policy;

    explicit Rig(core::GriffinConfig gcfg = core::GriffinConfig{})
    {
        gpu::GpuConfig cfg;
        cfg.numSes = 1;
        cfg.cusPerSe = 2;
        std::vector<mem::Dram *> drams{&cpuDram};
        for (DeviceId id = 1; id <= 4; ++id) {
            gpus.push_back(std::make_unique<gpu::Gpu>(
                engine, id, cfg, net, iommu, router));
            gpu_ptrs.push_back(gpus.back().get());
            drams.push_back(&gpus.back()->dram());
        }
        for (DeviceId dev = 0; dev <= 4; ++dev) {
            pmcs.push_back(std::make_unique<gpu::Pmc>(
                engine, net, dev, drams, 4096));
            pmc_ptrs.push_back(pmcs.back().get());
        }
        policy = std::make_unique<core::GriffinPolicy>(
            engine, net, pt, iommu, gpu_ptrs, pmc_ptrs, gcfg);
        iommu.setPolicy(policy.get());
        iommu.setFaultHandler(&handler);
    }
};

} // namespace

TEST(GriffinPolicy, PeriodsRunAtTheConfiguredCadence)
{
    core::GriffinConfig gcfg;
    gcfg.tAc = 500;
    Rig rig(gcfg);
    rig.policy->onSystemStart();
    rig.engine.runUntil(5100);
    rig.policy->onSystemStop();
    rig.engine.run();
    // ~10 periods in 5100 cycles at T_ac = 500.
    EXPECT_GE(rig.policy->periodsRun, 9u);
    EXPECT_LE(rig.policy->periodsRun, 11u);
}

TEST(GriffinPolicy, StopPreventsFurtherPeriods)
{
    Rig rig;
    rig.policy->onSystemStart();
    rig.engine.runUntil(2500);
    rig.policy->onSystemStop();
    const auto periods = rig.policy->periodsRun;
    rig.engine.run(); // drains the one pending timer event
    EXPECT_LE(rig.policy->periodsRun, periods + 1);
    EXPECT_TRUE(rig.engine.pendingEvents() == 0);
}

TEST(GriffinPolicy, InterGpuDisabledMeansNoPeriods)
{
    core::GriffinConfig gcfg;
    gcfg.enableInterGpuMigration = false;
    Rig rig(gcfg);
    rig.policy->onSystemStart();
    rig.engine.runUntil(10000);
    EXPECT_EQ(rig.policy->periodsRun, 0u);
    rig.policy->onSystemStop();
    rig.engine.run();
}

TEST(GriffinPolicy, CollectionDrainsTheAccessCounters)
{
    Rig rig;
    // Record some traffic into GPU 2's counters.
    rig.gpu_ptrs[1]->cuAccess(0, 0x5000, false, [] {});
    rig.engine.run();
    rig.policy->onSystemStart();
    rig.engine.runUntil(1500); // one period, including the messages
    rig.policy->onSystemStop();
    rig.engine.run();
    // The counters were collected (and reset) by the period loop.
    EXPECT_TRUE(rig.gpu_ptrs[1]->collectAccessCounts().empty());
}

TEST(GriffinPolicy, PeriodDrivesMigrationFromCounts)
{
    core::GriffinConfig gcfg;
    gcfg.alpha = 0.9;       // converge fast
    gcfg.lambdaT = 0.001;
    gcfg.migrationInterval = 1;
    Rig rig(gcfg);
    // Page 5 lives on GPU 1, but GPU 3 hammers it.
    rig.pt.setLocation(5, 1);
    rig.policy->onSystemStart();
    // Sustain the traffic across several periods.
    for (int burst = 0; burst < 8; ++burst) {
        rig.engine.schedule(burst * 1000 + 1, [&rig] {
            for (int i = 0; i < 40; ++i)
                rig.gpu_ptrs[2]->shaderEngine(0).counter().record(5);
        });
    }
    rig.engine.runUntil(9000);
    rig.policy->onSystemStop();
    rig.engine.run();
    EXPECT_EQ(rig.pt.locationOf(5), 3u);
    EXPECT_GE(rig.policy->executor().pagesMigrated, 1u);
}

TEST(GriffinPolicy, MigrationIntervalPacesPhases)
{
    core::GriffinConfig gcfg;
    gcfg.alpha = 0.9;
    gcfg.lambdaT = 0.001;
    gcfg.migrationInterval = 1000000; // effectively never
    Rig rig(gcfg);
    rig.pt.setLocation(5, 1);
    rig.policy->onSystemStart();
    for (int burst = 0; burst < 8; ++burst) {
        rig.engine.schedule(burst * 1000 + 1, [&rig] {
            for (int i = 0; i < 40; ++i)
                rig.gpu_ptrs[2]->shaderEngine(0).counter().record(5);
        });
    }
    rig.engine.runUntil(9000);
    rig.policy->onSystemStop();
    rig.engine.run();
    EXPECT_EQ(rig.pt.locationOf(5), 1u); // paced out: no phase ran
}

TEST(GriffinPolicy, DftmDenialInstallsIotlbLease)
{
    Rig rig;
    // Warm the table so the fair-share denial can arm: GPU 1 ahead.
    for (PageId p = 100; p < 130; ++p)
        rig.pt.setLocation(p, 1);
    for (PageId p = 130; p < 150; ++p)
        rig.pt.setLocation(p, DeviceId(2 + p % 3));

    const auto decision =
        rig.policy->onCpuResidentAccess(1, 7, rig.pt);
    EXPECT_FALSE(decision.migrate);
    // The lease entry serves follow-up accesses from the IOTLB.
    EXPECT_TRUE(rig.iommu.iotlb().probe(7));
}

TEST(GriffinPolicy, LeaseExpiryPurgesIotlbViaPeriodLoop)
{
    core::GriffinConfig gcfg;
    gcfg.dftmLeaseGap = 100; // expire almost immediately
    gcfg.dftmLeaseCap = 100;
    Rig rig(gcfg);
    for (PageId p = 100; p < 130; ++p)
        rig.pt.setLocation(p, 1);
    for (PageId p = 130; p < 150; ++p)
        rig.pt.setLocation(p, DeviceId(2 + p % 3));
    rig.policy->onCpuResidentAccess(1, 7, rig.pt);
    ASSERT_TRUE(rig.iommu.iotlb().probe(7));

    rig.policy->onSystemStart();
    rig.engine.runUntil(2500); // two periods
    rig.policy->onSystemStop();
    rig.engine.run();
    EXPECT_FALSE(rig.iommu.iotlb().probe(7));
    // The next touch is the migrating second touch.
    EXPECT_TRUE(rig.policy->onCpuResidentAccess(1, 7, rig.pt).migrate);
}

TEST(GriffinPolicy, DftmDisabledAlwaysMigrates)
{
    core::GriffinConfig gcfg;
    gcfg.enableDftm = false;
    Rig rig(gcfg);
    for (PageId p = 100; p < 130; ++p)
        rig.pt.setLocation(p, 1);
    EXPECT_TRUE(rig.policy->onCpuResidentAccess(1, 7, rig.pt).migrate);
    EXPECT_TRUE(rig.pt.info(7).touched);
}

TEST(GriffinPolicy, PeriodProbeReportsRequestedPages)
{
    core::GriffinConfig gcfg;
    gcfg.alpha = 0.9;
    Rig rig(gcfg);
    rig.pt.setLocation(5, 1);

    std::vector<Tick> probe_times;
    rig.policy->setPeriodProbe(
        [&](Tick t, PageId page, const std::vector<double> &counts,
            DeviceId loc) {
            EXPECT_EQ(page, 5u);
            EXPECT_EQ(counts.size(), 4u);
            EXPECT_EQ(loc, 1u);
            probe_times.push_back(t);
        },
        {5});

    rig.policy->onSystemStart();
    rig.engine.runUntil(3500);
    rig.policy->onSystemStop();
    rig.engine.run();
    EXPECT_GE(probe_times.size(), 3u);
}
