/**
 * @file
 * Unit tests for core::Cpms: grouping by source GPU, the per-phase
 * caps on pages and drained GPUs, and source prioritization.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/core/cpms.hh"

using namespace griffin;
using core::Cpms;
using core::MigrationCandidate;
using core::PageClass;

namespace {

MigrationCandidate
cand(PageId page, DeviceId from, DeviceId to, double score = 10.0)
{
    return MigrationCandidate{page, from, to,
                              PageClass::MostlyDedicated, score};
}

} // namespace

TEST(Cpms, GroupsBySourceGpu)
{
    Cpms cpms(64, 4);
    const auto batches = cpms.schedule({cand(1, 1, 2), cand(2, 1, 3),
                                        cand(3, 2, 1)});
    ASSERT_EQ(batches.size(), 2u);
    // Source 1 has more candidates: drained first.
    EXPECT_EQ(batches[0].source, 1u);
    EXPECT_EQ(batches[0].moves.size(), 2u);
    EXPECT_EQ(batches[1].source, 2u);
}

TEST(Cpms, EmptyInputYieldsNoBatches)
{
    Cpms cpms(64, 4);
    EXPECT_TRUE(cpms.schedule({}).empty());
}

TEST(Cpms, PageCapTruncates)
{
    Cpms cpms(3, 4);
    std::vector<MigrationCandidate> cands;
    for (PageId p = 0; p < 10; ++p)
        cands.push_back(cand(p, 1, 2));
    const auto batches = cpms.schedule(cands);
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].moves.size(), 3u);
    EXPECT_EQ(cpms.pagesScheduled, 3u);
    EXPECT_EQ(cpms.pagesDeferred, 7u);
}

TEST(Cpms, SourceCapLimitsDrains)
{
    Cpms cpms(64, 2);
    const auto batches = cpms.schedule({cand(1, 1, 2), cand(2, 2, 3),
                                        cand(3, 3, 4), cand(4, 4, 1)});
    EXPECT_EQ(batches.size(), 2u);
}

TEST(Cpms, BiggestSourceFirst)
{
    Cpms cpms(64, 1);
    const auto batches = cpms.schedule(
        {cand(1, 1, 2), cand(2, 3, 2), cand(3, 3, 2), cand(4, 3, 1)});
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].source, 3u);
    EXPECT_EQ(batches[0].moves.size(), 3u);
}

TEST(Cpms, PreservesCallerScoreOrderWithinSource)
{
    Cpms cpms(2, 4);
    // Caller passes score-sorted candidates; the cap keeps the top 2.
    const auto batches = cpms.schedule(
        {cand(1, 1, 2, 90.0), cand(2, 1, 3, 50.0), cand(3, 1, 4, 10.0)});
    ASSERT_EQ(batches.size(), 1u);
    ASSERT_EQ(batches[0].moves.size(), 2u);
    EXPECT_EQ(batches[0].moves[0].page, 1u);
    EXPECT_EQ(batches[0].moves[1].page, 2u);
}

TEST(Cpms, StatsAccumulateAcrossPhases)
{
    Cpms cpms(64, 4);
    cpms.schedule({cand(1, 1, 2)});
    cpms.schedule({cand(2, 2, 1)});
    EXPECT_EQ(cpms.phases, 2u);
    EXPECT_EQ(cpms.batchesEmitted, 2u);
    EXPECT_EQ(cpms.pagesScheduled, 2u);
}
