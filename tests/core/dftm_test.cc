/**
 * @file
 * Unit tests for core::Dftm: fair-share denial, second-touch
 * migration, the denial lease (gap and cap expiry), and balance
 * properties.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/core/dftm.hh"
#include "src/mem/page_table.hh"

using namespace griffin;
using core::Dftm;

namespace {

/** A table with enough GPU-resident pages to arm the denial logic. */
mem::PageTable
warmTable(std::uint64_t g1, std::uint64_t g2, std::uint64_t g3,
          std::uint64_t g4)
{
    mem::PageTable pt(12, 5);
    PageId p = 1000;
    const std::uint64_t counts[] = {g1, g2, g3, g4};
    for (DeviceId dev = 1; dev <= 4; ++dev) {
        for (std::uint64_t i = 0; i < counts[dev - 1]; ++i)
            pt.setLocation(p++, dev);
    }
    return pt;
}

} // namespace

TEST(Dftm, ColdStartMigratesEverything)
{
    Dftm dftm;
    mem::PageTable pt(12, 5);
    // Fewer than the arming threshold of GPU pages: never deny.
    for (PageId p = 0; p < 10; ++p)
        EXPECT_TRUE(dftm.decide(1, p, pt, 0).migrate);
    EXPECT_EQ(dftm.firstTouchDenials, 0u);
}

TEST(Dftm, DeniesTheGpuAheadOfFairShare)
{
    Dftm dftm;
    auto pt = warmTable(40, 20, 20, 20); // GPU 1 holds 40%
    EXPECT_FALSE(dftm.decide(1, 1, pt, 0).migrate);
    EXPECT_TRUE(pt.info(1).touched);
    EXPECT_EQ(dftm.firstTouchDenials, 1u);
}

TEST(Dftm, DoesNotDenyBalancedGpus)
{
    Dftm dftm;
    auto pt = warmTable(25, 25, 25, 25);
    EXPECT_TRUE(dftm.decide(1, 1, pt, 0).migrate);
    EXPECT_TRUE(dftm.decide(2, 2, pt, 0).migrate);
    EXPECT_EQ(dftm.firstTouchDenials, 0u);
}

TEST(Dftm, DoesNotDenyTheUnderdog)
{
    Dftm dftm;
    auto pt = warmTable(70, 10, 10, 10);
    EXPECT_TRUE(dftm.decide(2, 1, pt, 0).migrate);
    EXPECT_FALSE(dftm.decide(1, 2, pt, 0).migrate);
}

TEST(Dftm, LeaseKeepsDenyingDuringTheSweep)
{
    Dftm dftm(1000, 10000);
    auto pt = warmTable(40, 20, 20, 20);
    EXPECT_FALSE(dftm.decide(1, 1, pt, 0).migrate);
    // Still within the gap: deny again (any requester).
    EXPECT_FALSE(dftm.decide(2, 1, pt, 500).migrate);
    EXPECT_EQ(dftm.leaseRenewals, 1u);
}

TEST(Dftm, SecondTouchAfterGapMigrates)
{
    Dftm dftm(1000, 100000);
    auto pt = warmTable(40, 20, 20, 20);
    dftm.decide(1, 1, pt, 0);
    EXPECT_TRUE(dftm.decide(1, 1, pt, 5000).migrate);
    EXPECT_EQ(dftm.secondTouchMigrations, 1u);
}

TEST(Dftm, CapBoundsLeaseLifetime)
{
    Dftm dftm(1000, 3000);
    auto pt = warmTable(40, 20, 20, 20);
    dftm.decide(1, 1, pt, 0);
    // Keep the stream warm through noteCpuAccess...
    dftm.noteCpuAccess(1, 900);
    dftm.noteCpuAccess(1, 1800);
    dftm.noteCpuAccess(1, 2700);
    // ...but the cap still expires the lease.
    EXPECT_TRUE(dftm.decide(1, 1, pt, 3500).migrate);
}

TEST(Dftm, NoteCpuAccessRenewsTheGap)
{
    Dftm dftm(1000, 100000);
    auto pt = warmTable(40, 20, 20, 20);
    dftm.decide(1, 1, pt, 0);
    dftm.noteCpuAccess(1, 900);
    dftm.noteCpuAccess(1, 1800);
    // 1800 + 1000 > 2500: the stream is still warm -> deny.
    EXPECT_FALSE(dftm.decide(1, 1, pt, 2500).migrate);
}

TEST(Dftm, ExpireLeasesPurgesQuietPages)
{
    Dftm dftm(1000, 100000);
    auto pt = warmTable(40, 20, 20, 20);
    dftm.decide(1, 1, pt, 0);
    dftm.decide(1, 2, pt, 0);
    dftm.noteCpuAccess(2, 1500); // page 2 stays warm
    EXPECT_EQ(dftm.activeLeases(), 2u);

    std::vector<PageId> purged;
    dftm.expireLeases(2000, [&](PageId p) { purged.push_back(p); });
    ASSERT_EQ(purged.size(), 1u);
    EXPECT_EQ(purged[0], 1u);
    EXPECT_EQ(dftm.activeLeases(), 1u);
}

TEST(Dftm, TouchedPageWithoutLeaseMigratesImmediately)
{
    Dftm dftm;
    auto pt = warmTable(40, 20, 20, 20);
    pt.info(5).touched = true; // e.g. restored from a checkpoint
    EXPECT_TRUE(dftm.decide(3, 5, pt, 0).migrate);
}

TEST(Dftm, BalancePropertyOnContestedPages)
{
    // Simulated first-touch race on shared pages: GPU 1 always wins
    // the race (the paper's dispatch head start), but other GPUs
    // touch the page soon after. Without DFTM, GPU 1 hoards every
    // page; with DFTM, the denial hands contested pages to the
    // second toucher and the distribution stays near fair share.
    Dftm dftm(0, 0); // leases expire instantly: pure balancing
    mem::PageTable pt(12, 5);
    for (PageId page = 0; page < 400; ++page) {
        const Tick t = Tick(page) * 10;
        const auto first = dftm.decide(1, page, pt, t);
        if (first.migrate) {
            pt.setLocation(page, 1);
            continue;
        }
        // GPU 1 was denied; the next toucher migrates the page.
        const DeviceId second = DeviceId(2 + page % 3);
        const auto retry = dftm.decide(second, page, pt, t + 5);
        ASSERT_TRUE(retry.migrate);
        pt.setLocation(page, second);
    }
    // GPU 1 holds the ~16 cold-start pages plus its fair share of
    // later denials resolved in its favour — well below hoarding.
    EXPECT_LT(pt.gpuOccupancy(1), 0.32);
    for (DeviceId dev = 2; dev <= 4; ++dev)
        EXPECT_GT(pt.gpuOccupancy(dev), 0.15);
}
