/**
 * @file
 * Unit tests for core::MigrationExecutor: the ACUD migration protocol
 * end to end — block, drain, selective shootdown/flush, continue
 * before transfer, page-table update and parked-request replay — and
 * the full-flush alternative.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/acud.hh"
#include "src/core/migration_policy.hh"
#include "src/gpu/gpu.hh"
#include "src/sim/engine.hh"

using namespace griffin;

namespace {

class NeverMigratePolicy : public core::MigrationPolicy
{
  public:
    std::string name() const override { return "never"; }
    core::CpuAccessDecision
    onCpuResidentAccess(DeviceId, PageId, mem::PageTable &) override
    {
        return core::CpuAccessDecision{false};
    }
};

class NullHandler : public xlat::FaultHandler
{
  public:
    void onPageFault(DeviceId, PageId, FaultId = invalidFaultId) override {}
};

class NullRouter : public gpu::RemoteRouter
{
  public:
    explicit NullRouter(sim::Engine &engine) : _engine(engine) {}
    void
    remoteAccess(DeviceId, DeviceId, Addr, bool,
                 sim::EventFn done) override
    {
        _engine.schedule(10, std::move(done));
    }

  private:
    sim::Engine &_engine;
};

struct Rig
{
    sim::Engine engine;
    mem::PageTable pt{12, 5};
    ic::Network net{engine, 5, ic::LinkConfig{32.0, 10}};
    xlat::Iommu iommu{engine, net, pt, xlat::IommuConfig{}};
    NeverMigratePolicy policy;
    NullHandler handler;
    NullRouter router{engine};
    std::vector<std::unique_ptr<gpu::Gpu>> gpus;
    std::vector<gpu::Gpu *> gpu_ptrs;
    mem::Dram cpuDram{mem::DramConfig{}};
    std::vector<std::unique_ptr<gpu::Pmc>> pmcs;
    std::vector<gpu::Pmc *> pmc_ptrs;

    explicit Rig(bool use_acud = true)
    {
        iommu.setPolicy(&policy);
        iommu.setFaultHandler(&handler);
        gpu::GpuConfig cfg;
        cfg.numSes = 1;
        cfg.cusPerSe = 2;
        std::vector<mem::Dram *> drams{&cpuDram};
        for (DeviceId id = 1; id <= 4; ++id) {
            gpus.push_back(std::make_unique<gpu::Gpu>(
                engine, id, cfg, net, iommu, router));
            gpu_ptrs.push_back(gpus.back().get());
            drams.push_back(&gpus.back()->dram());
        }
        for (DeviceId dev = 0; dev <= 4; ++dev) {
            pmcs.push_back(std::make_unique<gpu::Pmc>(
                engine, net, dev, drams, 4096));
            pmc_ptrs.push_back(pmcs.back().get());
        }
        executor = std::make_unique<core::MigrationExecutor>(
            engine, net, pt, iommu, gpu_ptrs, pmc_ptrs, use_acud);
    }

    std::unique_ptr<core::MigrationExecutor> executor;

    core::MigrationBatch
    batchOf(std::vector<PageId> pages, DeviceId from, DeviceId to)
    {
        core::MigrationBatch batch;
        batch.source = from;
        for (const PageId p : pages) {
            pt.setLocation(p, from);
            batch.moves.push_back(core::MigrationCandidate{
                p, from, to, core::PageClass::MostlyDedicated, 1.0});
        }
        return batch;
    }
};

} // namespace

TEST(MigrationExecutor, MovesPagesAndCompletes)
{
    Rig rig;
    const auto batch = rig.batchOf({10, 11, 12}, 1, 3);
    bool done = false;
    rig.executor->executeBatch(batch, [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
    for (PageId p : {10, 11, 12}) {
        EXPECT_EQ(rig.pt.locationOf(p), 3u);
        EXPECT_FALSE(rig.pt.info(p).migrating);
        EXPECT_FALSE(rig.pt.info(p).migrationPending);
    }
    EXPECT_EQ(rig.executor->pagesMigrated, 3u);
    EXPECT_EQ(rig.executor->batchesExecuted, 1u);
}

TEST(MigrationExecutor, MarksPagesPendingImmediately)
{
    Rig rig;
    const auto batch = rig.batchOf({10}, 1, 2);
    rig.executor->executeBatch(batch, [] {});
    EXPECT_TRUE(rig.pt.info(10).migrationPending);
    rig.engine.run();
    EXPECT_FALSE(rig.pt.info(10).migrationPending);
}

TEST(MigrationExecutor, SourceGpuIsDrainedAndResumed)
{
    Rig rig;
    const auto batch = rig.batchOf({10}, 2, 3);
    rig.executor->executeBatch(batch, [] {});
    rig.engine.run();
    gpu::Gpu &src = *rig.gpu_ptrs[1];
    EXPECT_EQ(src.drains, 1u);
    EXPECT_EQ(src.tlbShootdownEvents, 1u);
    EXPECT_FALSE(src.cu(0).paused());
    EXPECT_GT(src.pausedCycles, 0u);
}

TEST(MigrationExecutor, DrainWaitsForDataPhase)
{
    Rig rig;
    gpu::Gpu &src = *rig.gpu_ptrs[0];
    src.enterDataPhase(10);

    const auto batch = rig.batchOf({10}, 1, 2);
    bool done = false;
    rig.executor->executeBatch(batch, [&] { done = true; });
    rig.engine.runUntil(5000);
    EXPECT_FALSE(done); // still waiting on the in-flight access
    src.leaveDataPhase(10);
    rig.engine.run();
    EXPECT_TRUE(done);
}

TEST(MigrationExecutor, ContinueBeforeTransferCompletes)
{
    // The CUs must resume before the page data lands (paper Fig 7).
    Rig rig;
    const auto batch = rig.batchOf({10, 11, 12, 13}, 1, 2);
    Tick done_at = 0;
    rig.executor->executeBatch(batch, [&] { done_at = rig.engine.now(); });

    gpu::Gpu &src = *rig.gpu_ptrs[0];
    Tick resumed_at = 0;
    // Poll for the resume moment.
    std::function<void()> poll = [&] {
        if (resumed_at == 0 && src.drains == 1 && !src.cu(0).paused())
            resumed_at = rig.engine.now();
        if (done_at == 0)
            rig.engine.schedule(5, poll);
    };
    rig.engine.schedule(1, poll);
    rig.engine.run();
    ASSERT_GT(resumed_at, 0u);
    ASSERT_GT(done_at, 0u);
    EXPECT_LT(resumed_at, done_at);
}

TEST(MigrationExecutor, ParkedTranslationsReplayToNewLocation)
{
    Rig rig;
    const auto batch = rig.batchOf({10}, 1, 2);
    rig.executor->executeBatch(batch, [] {});
    // While the migration is in flight, a translation request parks.
    rig.engine.runUntil(50); // past the drain command
    auto reply = std::make_shared<std::optional<xlat::XlatReply>>();
    rig.iommu.request(4, 10, false,
                      [reply](xlat::XlatReply r) { *reply = r; });
    rig.engine.run();
    ASSERT_TRUE(reply->has_value());
    EXPECT_EQ((*reply)->location, 2u);
}

TEST(MigrationExecutor, FlushModeDiscardsAndUsesFullFlush)
{
    Rig rig(/*use_acud=*/false);
    const auto batch = rig.batchOf({10}, 1, 2);
    bool done = false;
    rig.executor->executeBatch(batch, [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
    gpu::Gpu &src = *rig.gpu_ptrs[0];
    EXPECT_EQ(src.fullFlushes, 1u);
    EXPECT_EQ(src.drains, 0u);
    EXPECT_EQ(rig.pt.locationOf(10), 2u);
}

TEST(MigrationExecutor, ClassAccountingByReason)
{
    Rig rig;
    core::MigrationBatch batch;
    batch.source = 1;
    rig.pt.setLocation(20, 1);
    rig.pt.setLocation(21, 1);
    batch.moves.push_back(core::MigrationCandidate{
        20, 1, 2, core::PageClass::OwnerShifting, 1.0});
    batch.moves.push_back(core::MigrationCandidate{
        21, 1, 2, core::PageClass::Shared, 1.0});
    rig.executor->executeBatch(batch, [] {});
    rig.engine.run();
    EXPECT_EQ(rig.executor->migrationsByClass[std::size_t(
                  core::PageClass::OwnerShifting)],
              1u);
    EXPECT_EQ(rig.executor->migrationsByClass[std::size_t(
                  core::PageClass::Shared)],
              1u);
}
