/**
 * @file
 * Tests for the workload generators: factory coverage, footprint
 * bounds, determinism, trace-shape properties per access pattern, and
 * the TraceBuilder's wavefront interleaving.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/workloads/suite.hh"
#include "src/workloads/workload.hh"

using namespace griffin;
using wl::makeWorkload;
using wl::Workload;
using wl::WorkloadConfig;

namespace {

WorkloadConfig
tinyConfig()
{
    WorkloadConfig cfg;
    cfg.scaleDiv = 64;
    cfg.seed = 42;
    return cfg;
}

/** All line addresses of a kernel. */
std::vector<Addr>
allAddrs(wl::KernelLaunch &launch)
{
    std::vector<Addr> addrs;
    for (const auto &wg : launch.workgroups) {
        for (const auto &wf : wg.wavefronts) {
            for (const auto &op : wf.ops)
                addrs.push_back(op.vaddr);
        }
    }
    return addrs;
}

} // namespace

TEST(WorkloadFactory, ListsExactlyTheTableIIIWorkloads)
{
    const auto names = wl::workloadNames();
    ASSERT_EQ(names.size(), 10u);
    EXPECT_EQ(names.front(), "BFS");
    EXPECT_EQ(names.back(), "ST");
    for (const auto &name : names)
        EXPECT_NE(makeWorkload(name, tinyConfig()), nullptr) << name;
}

TEST(WorkloadFactory, UnknownNameReturnsNull)
{
    EXPECT_EQ(makeWorkload("nope", tinyConfig()), nullptr);
    EXPECT_EQ(makeWorkload("bfs", tinyConfig()), nullptr); // case matters
}

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<Workload> w = makeWorkload(GetParam(), tinyConfig());
};

TEST_P(EveryWorkload, MetadataIsConsistent)
{
    EXPECT_EQ(w->name(), GetParam());
    EXPECT_FALSE(w->fullName().empty());
    EXPECT_FALSE(w->suite().empty());
    EXPECT_FALSE(w->accessPattern().empty());
    EXPECT_GE(w->paperFootprintBytes(), 30ull << 20);
    EXPECT_LE(w->paperFootprintBytes(), 64ull << 20);
    EXPECT_EQ(w->footprintBytes(), w->paperFootprintBytes() / 64);
    EXPECT_GE(w->numKernels(), 1u);
    EXPECT_GE(w->workgroupsPerKernel(), 60u);
}

TEST_P(EveryWorkload, KernelsHaveTheDeclaredWorkgroupCount)
{
    for (unsigned k = 0; k < w->numKernels(); ++k) {
        const auto launch = w->makeKernel(k);
        EXPECT_EQ(launch.workgroups.size(), w->workgroupsPerKernel());
        EXPECT_GT(launch.totalOps(), 0u);
    }
}

TEST_P(EveryWorkload, AddressesStayWithinTheFootprint)
{
    auto launch = w->makeKernel(0);
    for (const Addr addr : allAddrs(launch))
        EXPECT_LT(addr, w->footprintBytes()) << GetParam();
}

TEST_P(EveryWorkload, AddressesAreLineAligned)
{
    auto launch = w->makeKernel(0);
    for (const Addr addr : allAddrs(launch))
        EXPECT_EQ(addr % 64, 0u);
}

TEST_P(EveryWorkload, GenerationIsDeterministic)
{
    auto w2 = makeWorkload(GetParam(), tinyConfig());
    auto a = w->makeKernel(1);
    auto b = w2->makeKernel(1);
    ASSERT_EQ(a.workgroups.size(), b.workgroups.size());
    ASSERT_EQ(a.totalOps(), b.totalOps());
    auto aa = allAddrs(a), bb = allAddrs(b);
    EXPECT_EQ(aa, bb);
}

TEST_P(EveryWorkload, SeedChangesRandomWorkloadsOnly)
{
    WorkloadConfig other = tinyConfig();
    other.seed = 1234;
    auto w2 = makeWorkload(GetParam(), other);
    auto ka = w->makeKernel(0);
    auto kb = w2->makeKernel(0);
    auto a = allAddrs(ka);
    auto b = allAddrs(kb);
    // BS is labelled Random for its pair distances but is a fully
    // deterministic butterfly; only BFS and PR use the seed.
    if (GetParam() == "BFS" || GetParam() == "PR") {
        EXPECT_NE(a, b) << "random workloads must vary with the seed";
    }
}

TEST_P(EveryWorkload, TouchesAReasonablePageCount)
{
    auto launch = w->makeKernel(0);
    std::unordered_set<PageId> pages;
    for (const Addr addr : allAddrs(launch))
        pages.insert(addr >> 12);
    // At 1/64 scale the footprints are 120-256 pages; each kernel
    // should touch a meaningful share of its buffers.
    EXPECT_GE(pages.size(), 16u);
    EXPECT_LE(pages.size(), w->footprintBytes() / 4096 + 2);
}

INSTANTIATE_TEST_SUITE_P(Suite, EveryWorkload,
                         ::testing::ValuesIn(wl::workloadNames()),
                         [](const auto &info) { return info.param; });

// --- Pattern-specific properties -----------------------------------

TEST(WorkloadPatterns, MtInputLinesAreSingleTouch)
{
    wl::MtWorkload mt(tinyConfig());
    auto launch = mt.makeKernel(0);
    std::unordered_map<Addr, int> reads;
    for (const auto &wg : launch.workgroups) {
        for (const auto &wf : wg.wavefronts) {
            for (const auto &op : wf.ops) {
                if (!op.isWrite)
                    ++reads[op.vaddr];
            }
        }
    }
    for (const auto &[addr, n] : reads)
        EXPECT_EQ(n, 1) << "MT reads each input line exactly once";
}

TEST(WorkloadPatterns, MtWritesAreScattered)
{
    wl::MtWorkload mt(tinyConfig());
    auto launch = mt.makeKernel(0);
    // Take one workgroup's writes: consecutive writes must land far
    // apart (column scatter).
    const auto &wg = launch.workgroups[3];
    std::vector<Addr> writes;
    for (const auto &wf : wg.wavefronts) {
        for (const auto &op : wf.ops) {
            if (op.isWrite)
                writes.push_back(op.vaddr);
        }
    }
    ASSERT_GE(writes.size(), 2u);
    std::set<PageId> pages;
    for (const Addr a : writes)
        pages.insert(a >> 12);
    EXPECT_GT(pages.size(), writes.size() / 32);
}

TEST(WorkloadPatterns, KmCentroidPagesAreSharedByAllWorkgroups)
{
    wl::KmWorkload km(tinyConfig());
    auto launch = km.makeKernel(0);
    // Find pages touched by every workgroup: the centroid table.
    std::unordered_map<PageId, std::unordered_set<std::uint32_t>> users;
    for (const auto &wg : launch.workgroups) {
        for (const auto &wf : wg.wavefronts) {
            for (const auto &op : wf.ops)
                users[op.vaddr >> 12].insert(wg.id);
        }
    }
    std::size_t shared_by_all = 0;
    for (const auto &[page, set] : users)
        shared_by_all += set.size() == launch.workgroups.size() ? 1 : 0;
    EXPECT_GE(shared_by_all, 1u);
}

TEST(WorkloadPatterns, StHaloTouchesNeighbourBands)
{
    wl::StWorkload st(tinyConfig());
    auto launch = st.makeKernel(0);
    // Band pages read by more than one workgroup exist (the halo).
    std::unordered_map<PageId, std::unordered_set<std::uint32_t>> users;
    for (const auto &wg : launch.workgroups) {
        for (const auto &wf : wg.wavefronts) {
            for (const auto &op : wf.ops) {
                if (!op.isWrite)
                    users[op.vaddr >> 12].insert(wg.id);
            }
        }
    }
    std::size_t shared = 0;
    for (const auto &[page, set] : users)
        shared += set.size() > 1 ? 1 : 0;
    EXPECT_GT(shared, 0u);
}

TEST(WorkloadPatterns, PrPullsReRandomizeEachKernel)
{
    wl::PrWorkload pr(tinyConfig());
    auto k0 = pr.makeKernel(0);
    auto k2 = pr.makeKernel(2); // same rank-buffer direction as k0
    auto a = allAddrs(k0);
    auto b = allAddrs(k2);
    EXPECT_NE(a, b);
}

TEST(WorkloadPatterns, ScAlternatesImageBuffers)
{
    wl::ScWorkload sc(tinyConfig());
    auto k0 = sc.makeKernel(0);
    auto k1 = sc.makeKernel(1);
    // Writes of kernel 0 and reads of kernel 1 hit the same buffer.
    std::set<PageId> k0_writes, k1_reads;
    for (const auto &wg : k0.workgroups)
        for (const auto &wf : wg.wavefronts)
            for (const auto &op : wf.ops)
                if (op.isWrite)
                    k0_writes.insert(op.vaddr >> 12);
    for (const auto &wg : k1.workgroups)
        for (const auto &wf : wg.wavefronts)
            for (const auto &op : wf.ops)
                if (!op.isWrite)
                    k1_reads.insert(op.vaddr >> 12);
    std::size_t overlap = 0;
    for (const PageId p : k0_writes)
        overlap += k1_reads.count(p);
    EXPECT_GT(overlap, k0_writes.size() / 2);
}

// --- TraceBuilder ----------------------------------------------------

TEST(TraceBuilder, InterleavesOpsAcrossWavefronts)
{
    wl::TraceBuilder tb(4, 1, 8);
    for (Addr a = 0; a < 16; ++a)
        tb.add(a * 64, false);
    const auto wg = tb.finishWorkgroup(0);
    // 16 ops at 4 per wavefront = 4 wavefronts, dealt round-robin.
    ASSERT_EQ(wg.wavefronts.size(), 4u);
    EXPECT_EQ(wg.wavefronts[0].ops[0].vaddr, 0u * 64);
    EXPECT_EQ(wg.wavefronts[1].ops[0].vaddr, 1u * 64);
    EXPECT_EQ(wg.wavefronts[0].ops[1].vaddr, 4u * 64);
    EXPECT_EQ(wg.totalOps(), 16u);
}

TEST(TraceBuilder, CapsWavefrontCount)
{
    wl::TraceBuilder tb(1, 1, 8);
    for (Addr a = 0; a < 100; ++a)
        tb.add(a * 64, false);
    const auto wg = tb.finishWorkgroup(0);
    EXPECT_EQ(wg.wavefronts.size(), 8u);
    EXPECT_EQ(wg.totalOps(), 100u);
}

TEST(TraceBuilder, AddRangeCoversEveryLine)
{
    wl::TraceBuilder tb(64, 1);
    tb.addRange(128, 256, true);
    const auto wg = tb.finishWorkgroup(0);
    EXPECT_EQ(wg.totalOps(), 4u);
    for (const auto &wf : wg.wavefronts)
        for (const auto &op : wf.ops)
            EXPECT_TRUE(op.isWrite);
}

TEST(TraceBuilder, FinishResetsState)
{
    wl::TraceBuilder tb(4, 1);
    tb.add(0, false);
    tb.finishWorkgroup(0);
    const auto wg = tb.finishWorkgroup(1);
    EXPECT_TRUE(wg.wavefronts.empty());
}

TEST(TraceBuilder, ComputeDelayApplied)
{
    wl::TraceBuilder tb(4, 7);
    tb.add(0, false);
    tb.setComputeDelay(21);
    tb.add(64, false);
    const auto wg = tb.finishWorkgroup(0);
    // Two ops fit one wavefront; each keeps the delay set at add time.
    ASSERT_EQ(wg.wavefronts.size(), 1u);
    EXPECT_EQ(wg.wavefronts[0].ops[0].computeDelay, 7u);
    EXPECT_EQ(wg.wavefronts[0].ops[1].computeDelay, 21u);
}
