/**
 * @file
 * Unit tests for driver::Driver: the FCFS baseline (batch size 1),
 * CPMS batching (one CPU flush per batch), the idle-IOMMU early
 * close, the batching window, and page pinning.
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/core/first_touch_policy.hh"
#include "src/driver/driver.hh"
#include "src/gpu/pmc.hh"
#include "src/mem/dram.hh"
#include "src/sim/engine.hh"
#include "src/xlat/iommu.hh"

using namespace griffin;

namespace {

struct Rig
{
    sim::Engine engine;
    mem::PageTable pt{12, 5};
    ic::Network net{engine, 5, ic::LinkConfig{32.0, 10}};
    xlat::Iommu iommu{engine, net, pt, xlat::IommuConfig{}};
    core::FirstTouchPolicy policy;
    mem::Dram cpuDram{mem::DramConfig{4, 100, 16.0, 256}};
    mem::Dram gpuDram{mem::DramConfig{}};
    std::vector<mem::Dram *> drams{&cpuDram, &gpuDram, &gpuDram,
                                   &gpuDram, &gpuDram};
    gpu::Pmc pmc{engine, net, cpuDeviceId, drams, 4096};
    std::unique_ptr<driver::Driver> driver;

    explicit Rig(driver::DriverConfig cfg = driver::DriverConfig{})
    {
        driver = std::make_unique<driver::Driver>(engine, pt, iommu,
                                                  pmc, cfg);
        iommu.setPolicy(&policy);
        iommu.setFaultHandler(driver.get());
    }
};

} // namespace

TEST(Driver, SingleFaultMigratesPage)
{
    Rig rig;
    rig.driver->onPageFault(2, 7);
    rig.engine.run();
    EXPECT_EQ(rig.pt.locationOf(7), 2u);
    EXPECT_EQ(rig.driver->pagesMigratedIn, 1u);
    EXPECT_EQ(rig.driver->cpuShootdowns, 1u);
}

TEST(Driver, BaselinePaysOneShootdownPerPage)
{
    driver::DriverConfig cfg;
    cfg.faultBatchSize = 1;
    Rig rig(cfg);
    for (PageId p = 0; p < 10; ++p)
        rig.driver->onPageFault(1, p);
    rig.engine.run();
    EXPECT_EQ(rig.driver->cpuShootdowns, 10u);
    EXPECT_EQ(rig.driver->batchesProcessed, 10u);
    EXPECT_EQ(rig.driver->pagesMigratedIn, 10u);
}

TEST(Driver, BatchingAmortizesTheShootdown)
{
    driver::DriverConfig cfg;
    cfg.faultBatchSize = 8;
    Rig rig(cfg);
    for (PageId p = 0; p < 16; ++p)
        rig.driver->onPageFault(1, p);
    rig.engine.run();
    // The first fault opens a batch immediately (the IOMMU is idle in
    // this rig), the remaining 15 split into 8 + 7.
    EXPECT_EQ(rig.driver->cpuShootdowns, 3u);
    EXPECT_EQ(rig.driver->pagesMigratedIn, 16u);
}

TEST(Driver, UnderfullBatchClosesWhenIommuIdle)
{
    driver::DriverConfig cfg;
    cfg.faultBatchSize = 8;
    cfg.faultBatchWindow = 100000; // window alone would take forever
    Rig rig(cfg);
    rig.driver->onPageFault(1, 3);
    // No walks are pending -> the batch must close immediately, not
    // after the window.
    rig.engine.runUntil(cfg.faultServiceLatency + cfg.cpuFlushPenalty +
                        5000);
    EXPECT_EQ(rig.driver->batchesProcessed, 1u);
    rig.engine.run();
    EXPECT_EQ(rig.pt.locationOf(3), 1u);
}

TEST(Driver, SerialBatchProcessing)
{
    driver::DriverConfig cfg;
    cfg.faultBatchSize = 4;
    Rig rig(cfg);
    for (PageId p = 0; p < 8; ++p)
        rig.driver->onPageFault(1, p);
    EXPECT_TRUE(rig.driver->busy());
    rig.engine.run();
    EXPECT_FALSE(rig.driver->busy());
    // 1 (immediate) + 4 + 3.
    EXPECT_EQ(rig.driver->batchesProcessed, 3u);
}

TEST(Driver, PinAfterMigrationSetsBit)
{
    driver::DriverConfig cfg;
    cfg.pinAfterMigration = true;
    Rig rig(cfg);
    rig.driver->onPageFault(3, 9);
    rig.engine.run();
    EXPECT_TRUE(rig.pt.info(9).pinned);

    driver::DriverConfig cfg2;
    cfg2.pinAfterMigration = false;
    Rig rig2(cfg2);
    rig2.driver->onPageFault(3, 9);
    rig2.engine.run();
    EXPECT_FALSE(rig2.pt.info(9).pinned);
}

TEST(Driver, ServiceLatencyDelaysTheBatch)
{
    driver::DriverConfig fast;
    fast.faultServiceLatency = 0;
    fast.cpuFlushPenalty = 0;
    Rig rig_fast(fast);
    rig_fast.driver->onPageFault(1, 1);
    const Tick t_fast = rig_fast.engine.run();

    driver::DriverConfig slow;
    slow.faultServiceLatency = 5000;
    slow.cpuFlushPenalty = 100;
    Rig rig_slow(slow);
    rig_slow.driver->onPageFault(1, 1);
    const Tick t_slow = rig_slow.engine.run();

    EXPECT_EQ(t_slow - t_fast, 5100u);
}

TEST(Driver, FaultsReceivedCounts)
{
    Rig rig;
    rig.driver->onPageFault(1, 1);
    rig.driver->onPageFault(2, 2);
    rig.engine.run();
    EXPECT_EQ(rig.driver->faultsReceived, 2u);
}
