#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/common.hh"

namespace {

using griffin::bench::Options;

/** Run Options::parse over a flag list (argv[0] is synthesized). */
Options
parseFlags(std::vector<std::string> flags)
{
    std::vector<char *> argv;
    static std::string prog = "bench";
    argv.push_back(prog.data());
    for (std::string &f : flags)
        argv.push_back(f.data());
    return Options::parse(int(argv.size()), argv.data());
}

TEST(Options, ParsesTheCommonFlags)
{
    const Options opt =
        parseFlags({"--scale=64", "--seed=7", "--jobs=2", "--csv"});
    EXPECT_EQ(opt.scaleDiv, 64u);
    EXPECT_EQ(opt.seed, 7u);
    EXPECT_EQ(opt.jobs, 2u);
    EXPECT_TRUE(opt.csv);
}

TEST(OptionsDeathTest, DuplicateValueFlagExitsWithUsageError)
{
    EXPECT_EXIT(parseFlags({"--scale=64", "--scale=32"}),
                ::testing::ExitedWithCode(2), "duplicate flag --scale");
}

TEST(OptionsDeathTest, DuplicateBooleanFlagExitsWithUsageError)
{
    EXPECT_EXIT(parseFlags({"--csv", "--csv"}),
                ::testing::ExitedWithCode(2), "duplicate flag --csv");
}

TEST(OptionsDeathTest, ValueAndValuelessFormsAreTheSameFlag)
{
    // --host-prof and --host-prof=FILE configure one feature; letting
    // the pair through would leave whichever came last half-applied.
    EXPECT_EXIT(parseFlags({"--host-prof", "--host-prof=out.folded"}),
                ::testing::ExitedWithCode(2),
                "duplicate flag --host-prof");
}

TEST(Options, WorkloadStaysRepeatable)
{
    const Options opt = parseFlags({"--workload=MT", "--workload=BFS"});
    ASSERT_EQ(opt.workloads.size(), 2u);
    EXPECT_EQ(opt.workloads[0], "MT");
    EXPECT_EQ(opt.workloads[1], "BFS");
}

TEST(Options, DistinctFlagsWithEqualValuesAreFine)
{
    const Options opt = parseFlags({"--seed=5", "--sample=5"});
    EXPECT_EQ(opt.seed, 5u);
    EXPECT_EQ(opt.samplePeriod, 5u);
}

TEST(OptionsDeathTest, NonNumericValueExitsWithUsageError)
{
    EXPECT_EXIT(parseFlags({"--scale=banana"}),
                ::testing::ExitedWithCode(2), "--scale wants an integer");
}

TEST(OptionsDeathTest, OutOfRangeValueExitsWithUsageError)
{
    // scale=0 would divide every workload footprint by zero.
    EXPECT_EXIT(parseFlags({"--scale=0"}),
                ::testing::ExitedWithCode(2), "--scale wants an integer");
}

} // namespace
