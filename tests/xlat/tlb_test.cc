/**
 * @file
 * Unit tests for xlat::Tlb: lookup/fill, LRU within a set, selective
 * shootdown, and the translation payload (owning device).
 */

#include <gtest/gtest.h>

#include "src/xlat/tlb.hh"

using namespace griffin;
using xlat::Tlb;
using xlat::TlbConfig;

TEST(Tlb, MissThenHitWithLocation)
{
    Tlb tlb(TlbConfig{1, 32, 1});
    EXPECT_FALSE(tlb.lookup(10).has_value());
    tlb.fill(10, 3);
    const auto loc = tlb.lookup(10);
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(*loc, 3u);
    EXPECT_EQ(tlb.hits, 1u);
    EXPECT_EQ(tlb.misses, 1u);
}

TEST(Tlb, RefillUpdatesLocation)
{
    Tlb tlb(TlbConfig{1, 32, 1});
    tlb.fill(10, 1);
    tlb.fill(10, 2);
    EXPECT_EQ(*tlb.lookup(10), 2u);
    EXPECT_EQ(tlb.validEntries(), 1u);
}

TEST(Tlb, CapacityAndLruEviction)
{
    Tlb tlb(TlbConfig{1, 4, 1}); // fully associative, 4 entries
    for (PageId p = 0; p < 4; ++p)
        tlb.fill(p, 1);
    tlb.lookup(0); // page 0 most recent
    tlb.fill(99, 1); // evicts page 1 (LRU)
    EXPECT_TRUE(tlb.probe(0));
    EXPECT_FALSE(tlb.probe(1));
    EXPECT_TRUE(tlb.probe(99));
    EXPECT_EQ(tlb.validEntries(), 4u);
}

TEST(Tlb, SetIndexingSeparatesConflicts)
{
    Tlb tlb(TlbConfig{4, 1, 1}); // 4 sets, direct mapped
    tlb.fill(0, 1);
    tlb.fill(1, 1); // different set: no conflict
    EXPECT_TRUE(tlb.probe(0));
    EXPECT_TRUE(tlb.probe(1));
    tlb.fill(4, 1); // same set as page 0: evicts it
    EXPECT_FALSE(tlb.probe(0));
    EXPECT_TRUE(tlb.probe(4));
}

TEST(Tlb, InvalidatePageIsSelective)
{
    Tlb tlb(TlbConfig{1, 8, 1});
    tlb.fill(1, 1);
    tlb.fill(2, 1);
    EXPECT_TRUE(tlb.invalidatePage(1));
    EXPECT_FALSE(tlb.invalidatePage(1)); // already gone
    EXPECT_FALSE(tlb.probe(1));
    EXPECT_TRUE(tlb.probe(2));
    EXPECT_EQ(tlb.invalidations, 1u);
}

TEST(Tlb, InvalidateAllCountsEntries)
{
    Tlb tlb(TlbConfig{2, 4, 1});
    for (PageId p = 0; p < 6; ++p)
        tlb.fill(p, 1);
    EXPECT_EQ(tlb.invalidateAll(), 6u);
    EXPECT_EQ(tlb.validEntries(), 0u);
    EXPECT_FALSE(tlb.lookup(3).has_value());
}

TEST(Tlb, PaperL1Geometry)
{
    // Paper Table II: L1 TLB is 1 set, 32-way.
    Tlb tlb(TlbConfig{1, 32, 1});
    EXPECT_EQ(tlb.capacity(), 32u);
    for (PageId p = 0; p < 32; ++p)
        tlb.fill(p, 1);
    EXPECT_EQ(tlb.validEntries(), 32u);
    tlb.fill(32, 1);
    EXPECT_EQ(tlb.validEntries(), 32u); // capacity bound
}

TEST(Tlb, PaperL2Geometry)
{
    // Paper Table II: L2 TLB is 32 sets, 16-way.
    Tlb tlb(TlbConfig{32, 16, 10});
    EXPECT_EQ(tlb.capacity(), 512u);
    EXPECT_EQ(tlb.latency(), 10u);
}
