/**
 * @file
 * Unit tests for xlat::Iommu: IOTLB behaviour, walker concurrency and
 * FCFS scheduling, walk coalescing, the fault path, DCA redirection,
 * and page blocking during migration.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/core/migration_policy.hh"
#include "src/interconnect/switch.hh"
#include "src/mem/page_table.hh"
#include "src/sim/engine.hh"
#include "src/xlat/iommu.hh"

using namespace griffin;

namespace {

/** Policy stub with a scriptable answer. */
class StubPolicy : public core::MigrationPolicy
{
  public:
    std::string name() const override { return "stub"; }

    core::CpuAccessDecision
    onCpuResidentAccess(DeviceId requester, PageId page,
                        mem::PageTable &) override
    {
        ++calls;
        lastRequester = requester;
        lastPage = page;
        return core::CpuAccessDecision{migrateAnswer};
    }

    bool migrateAnswer = true;
    int calls = 0;
    DeviceId lastRequester = 0;
    PageId lastPage = 0;
};

/** Fault handler stub that records faults (and can auto-complete). */
class StubHandler : public xlat::FaultHandler
{
  public:
    void
    onPageFault(DeviceId requester, PageId page,
                FaultId = invalidFaultId) override
    {
        faults.push_back({requester, page});
    }

    std::vector<std::pair<DeviceId, PageId>> faults;
};

struct Rig
{
    sim::Engine engine;
    mem::PageTable pt{12, 5};
    ic::Network net{engine, 5, ic::LinkConfig{32.0, 10}};
    xlat::IommuConfig cfg;
    xlat::Iommu iommu;
    StubPolicy policy;
    StubHandler handler;

    explicit Rig(xlat::IommuConfig c = xlat::IommuConfig{})
        : cfg(c), iommu(engine, net, pt, cfg)
    {
        iommu.setPolicy(&policy);
        iommu.setFaultHandler(&handler);
    }

    /** Issue a request and capture the reply. */
    std::shared_ptr<std::optional<xlat::XlatReply>>
    request(DeviceId requester, PageId page)
    {
        auto out = std::make_shared<std::optional<xlat::XlatReply>>();
        iommu.request(requester, page, false,
                      [out](xlat::XlatReply r) { *out = r; });
        return out;
    }
};

} // namespace

TEST(Iommu, GpuResidentPageRepliesWithLocation)
{
    Rig rig;
    rig.pt.setLocation(5, 2);
    auto reply = rig.request(1, 5);
    rig.engine.run();
    ASSERT_TRUE(reply->has_value());
    EXPECT_EQ((*reply)->location, 2u);
    EXPECT_FALSE((*reply)->cacheable); // remote to requester 1
    EXPECT_EQ(rig.iommu.walks, 1u);
}

TEST(Iommu, LocalPageIsCacheable)
{
    Rig rig;
    rig.pt.setLocation(5, 1);
    auto reply = rig.request(1, 5);
    rig.engine.run();
    EXPECT_TRUE((*reply)->cacheable);
}

TEST(Iommu, IotlbHitSkipsWalk)
{
    Rig rig;
    rig.pt.setLocation(5, 2);
    auto first = rig.request(1, 5);
    rig.engine.run();
    EXPECT_EQ(rig.iommu.walks, 1u);
    auto second = rig.request(3, 5);
    rig.engine.run();
    EXPECT_EQ(rig.iommu.walks, 1u); // IOTLB hit
    EXPECT_EQ(rig.iommu.iotlbHits, 1u);
    EXPECT_EQ((*second)->location, 2u);
}

TEST(Iommu, CpuResidentNeverCachedInIotlb)
{
    Rig rig;
    rig.policy.migrateAnswer = false; // DCA redirect
    auto r1 = rig.request(1, 7);
    rig.engine.run();
    auto r2 = rig.request(1, 7);
    rig.engine.run();
    // Both accesses reached the policy: DFTM can see the 2nd touch.
    EXPECT_EQ(rig.policy.calls, 2);
    EXPECT_EQ(rig.iommu.dcaRedirects, 2u);
    EXPECT_EQ((*r2)->location, cpuDeviceId);
    EXPECT_FALSE((*r2)->cacheable);
}

TEST(Iommu, ExplicitCpuCachingServesLeases)
{
    Rig rig;
    rig.policy.migrateAnswer = false;
    rig.iommu.cacheCpuResident(7);
    auto r = rig.request(1, 7);
    rig.engine.run();
    // Served from the IOTLB: the policy never saw it.
    EXPECT_EQ(rig.policy.calls, 0);
    EXPECT_EQ((*r)->location, cpuDeviceId);
    rig.iommu.invalidateIotlb(7);
    rig.request(1, 7);
    rig.engine.run();
    EXPECT_EQ(rig.policy.calls, 1);
}

TEST(Iommu, FaultParksRequestUntilMigrationDone)
{
    Rig rig;
    auto reply = rig.request(2, 9);
    rig.engine.run();
    ASSERT_EQ(rig.handler.faults.size(), 1u);
    EXPECT_EQ(rig.handler.faults[0].first, 2u);
    EXPECT_FALSE(reply->has_value()); // parked
    EXPECT_TRUE(rig.pt.info(9).migrating);

    // Driver completes the migration.
    rig.pt.setLocation(9, 2);
    rig.iommu.onMigrationDone(9);
    rig.engine.run();
    ASSERT_TRUE(reply->has_value());
    EXPECT_EQ((*reply)->location, 2u);
    EXPECT_TRUE((*reply)->cacheable);
}

TEST(Iommu, ConcurrentFaultsOnSamePageCoalesce)
{
    Rig rig;
    auto r1 = rig.request(1, 9);
    auto r2 = rig.request(2, 9);
    auto r3 = rig.request(3, 9);
    rig.engine.run();
    // One walk (coalesced), one fault; everyone parked.
    EXPECT_EQ(rig.iommu.walks, 1u);
    EXPECT_EQ(rig.handler.faults.size(), 1u);
    EXPECT_FALSE(r1->has_value());
    EXPECT_FALSE(r3->has_value());

    rig.pt.setLocation(9, 1);
    rig.iommu.onMigrationDone(9);
    rig.engine.run();
    EXPECT_TRUE(r1->has_value());
    EXPECT_TRUE(r2->has_value());
    EXPECT_TRUE(r3->has_value());
    EXPECT_TRUE((*r1)->cacheable);   // local to GPU 1
    EXPECT_FALSE((*r2)->cacheable);  // remote to GPU 2
}

TEST(Iommu, WalkerPoolBoundsConcurrency)
{
    xlat::IommuConfig cfg;
    cfg.numWalkers = 2;
    cfg.walkLatency = 100;
    Rig rig(cfg);
    // Distinct pages so nothing coalesces.
    std::vector<std::shared_ptr<std::optional<xlat::XlatReply>>> replies;
    for (PageId p = 0; p < 6; ++p) {
        rig.pt.setLocation(p, 1);
        rig.iommu.invalidateIotlb(p);
        replies.push_back(rig.request(1, p));
    }
    // 6 walks over 2 walkers = 3 serialized rounds of 100 cycles.
    rig.engine.runUntil(150);
    int done = 0;
    for (const auto &r : replies)
        done += r->has_value() ? 1 : 0;
    EXPECT_EQ(done, 2);
    rig.engine.run();
    for (const auto &r : replies)
        EXPECT_TRUE(r->has_value());
    EXPECT_EQ(rig.iommu.walks, 6u);
}

TEST(Iommu, BlockPageParksNewRequests)
{
    Rig rig;
    rig.pt.setLocation(4, 1);
    rig.iommu.blockPage(4);
    auto reply = rig.request(2, 4);
    rig.engine.run();
    EXPECT_FALSE(reply->has_value());
    EXPECT_EQ(rig.iommu.parkedRequests, 1u);

    rig.pt.setLocation(4, 3);
    rig.iommu.onMigrationDone(4);
    rig.engine.run();
    ASSERT_TRUE(reply->has_value());
    EXPECT_EQ((*reply)->location, 3u);
}

TEST(Iommu, BlockPagePurgesIotlb)
{
    Rig rig;
    rig.pt.setLocation(4, 1);
    rig.request(1, 4);
    rig.engine.run();
    EXPECT_TRUE(rig.iommu.iotlb().probe(4));
    rig.iommu.blockPage(4);
    EXPECT_FALSE(rig.iommu.iotlb().probe(4));
}

TEST(Iommu, ActiveWalksTracksQueueAndService)
{
    xlat::IommuConfig cfg;
    cfg.numWalkers = 1;
    cfg.walkLatency = 100;
    Rig rig(cfg);
    rig.pt.setLocation(0, 1);
    rig.pt.setLocation(1, 1);
    rig.request(1, 0);
    rig.request(1, 1);
    rig.engine.runUntil(cfg.iotlb.latency); // past the IOTLB probes
    EXPECT_EQ(rig.iommu.activeWalks(), 2u);
    rig.engine.run();
    EXPECT_EQ(rig.iommu.activeWalks(), 0u);
}
