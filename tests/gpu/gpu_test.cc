/**
 * @file
 * GPU-level tests: the translation path (L1 TLB -> L2 TLB -> IOMMU),
 * local vs remote routing, TLB fill rules for remote translations,
 * the ACUD drain (waits only for data-phase accesses to migrating
 * pages), selective shootdown, and access-count collection.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/migration_policy.hh"
#include "src/gpu/gpu.hh"
#include "src/sim/engine.hh"
#include "src/xlat/iommu.hh"

using namespace griffin;

namespace {

class AlwaysMigratePolicy : public core::MigrationPolicy
{
  public:
    std::string name() const override { return "always"; }
    core::CpuAccessDecision
    onCpuResidentAccess(DeviceId, PageId, mem::PageTable &) override
    {
        return core::CpuAccessDecision{true};
    }
};

/** Instantly completes migrations (no PMC timing). */
class InstantDriver : public xlat::FaultHandler
{
  public:
    InstantDriver(mem::PageTable &pt, xlat::Iommu &iommu)
        : _pt(pt), _iommu(iommu)
    {
    }

    void
    onPageFault(DeviceId requester, PageId page,
                FaultId = invalidFaultId) override
    {
        ++faults;
        _pt.setLocation(page, requester);
        _iommu.onMigrationDone(page);
    }

    int faults = 0;

  private:
    mem::PageTable &_pt;
    xlat::Iommu &_iommu;
};

class StubRouter : public gpu::RemoteRouter
{
  public:
    explicit StubRouter(sim::Engine &engine) : _engine(engine) {}

    void
    remoteAccess(DeviceId requester, DeviceId owner, Addr addr,
                 bool is_write, sim::EventFn done) override
    {
        (void)requester;
        (void)is_write;
        remote.push_back({owner, addr});
        _engine.schedule(latency, std::move(done));
    }

    std::vector<std::pair<DeviceId, Addr>> remote;
    Tick latency = 100;

  private:
    sim::Engine &_engine;
};

struct Rig
{
    sim::Engine engine;
    mem::PageTable pt{12, 5};
    ic::Network net{engine, 5, ic::LinkConfig{32.0, 10}};
    xlat::Iommu iommu{engine, net, pt, xlat::IommuConfig{}};
    AlwaysMigratePolicy policy;
    InstantDriver driver{pt, iommu};
    StubRouter router{engine};
    gpu::GpuConfig cfg;
    std::unique_ptr<gpu::Gpu> gpu1;

    Rig()
    {
        iommu.setPolicy(&policy);
        iommu.setFaultHandler(&driver);
        gpu1 = std::make_unique<gpu::Gpu>(engine, 1, cfg, net, iommu,
                                          router);
    }

    /** Issue one access from CU 0 and report completion time. */
    std::shared_ptr<std::optional<Tick>>
    access(Addr vaddr, bool is_write = false)
    {
        auto done = std::make_shared<std::optional<Tick>>();
        gpu1->cuAccess(0, vaddr, is_write,
                       [this, done] { *done = engine.now(); });
        return done;
    }
};

} // namespace

TEST(Gpu, FirstTouchFaultsAndBecomesLocal)
{
    Rig rig;
    auto t = rig.access(0x5000);
    rig.engine.run();
    ASSERT_TRUE(t->has_value());
    EXPECT_EQ(rig.driver.faults, 1);
    EXPECT_EQ(rig.pt.locationOf(5), 1u);
    EXPECT_EQ(rig.gpu1->localAccesses, 1u);
}

TEST(Gpu, LocalTranslationIsCachedSecondAccessFast)
{
    Rig rig;
    auto t1 = rig.access(0x5000);
    rig.engine.run();
    const Tick first = **t1;
    auto t2 = rig.access(0x5040);
    rig.engine.run();
    // Second access: TLB hit + L1 miss path only — far below the
    // fault path.
    EXPECT_LT(**t2 - first, first / 2 + 1);
    EXPECT_EQ(rig.gpu1->xlatRequestsSent, 1u);
    EXPECT_TRUE(rig.gpu1->l1Tlb(0).probe(5));
    EXPECT_TRUE(rig.gpu1->l2Tlb().probe(5));
}

TEST(Gpu, L2TlbServesOtherCus)
{
    Rig rig;
    rig.access(0x5000);
    rig.engine.run();
    // CU 7 misses its own L1 TLB but hits the shared L2 TLB.
    bool done = false;
    rig.gpu1->cuAccess(7, 0x5000, false, [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.gpu1->xlatRequestsSent, 1u);
    EXPECT_TRUE(rig.gpu1->l1Tlb(7).probe(5));
}

TEST(Gpu, RemotePageRoutedToOwnerAndNotCached)
{
    Rig rig;
    rig.pt.setLocation(9, 3); // resident on GPU 3
    auto t = rig.access(0x9000);
    rig.engine.run();
    ASSERT_TRUE(t->has_value());
    ASSERT_EQ(rig.router.remote.size(), 1u);
    EXPECT_EQ(rig.router.remote[0].first, 3u);
    EXPECT_EQ(rig.gpu1->remoteAccesses, 1u);
    // Paper SS II-B: remote translations are never cached.
    EXPECT_FALSE(rig.gpu1->l1Tlb(0).probe(9));
    EXPECT_FALSE(rig.gpu1->l2Tlb().probe(9));

    // So the next access pays the IOMMU again.
    rig.access(0x9040);
    rig.engine.run();
    EXPECT_EQ(rig.gpu1->xlatRequestsSent, 2u);
}

TEST(Gpu, AccessCountersRecordPerShaderEngine)
{
    Rig rig;
    // CU 0 is in SE 0; CU 9 is in SE 1 (9 CUs per SE).
    rig.gpu1->cuAccess(0, 0x1000, false, [] {});
    rig.gpu1->cuAccess(0, 0x1040, false, [] {});
    rig.gpu1->cuAccess(9, 0x2000, false, [] {});
    rig.engine.run();

    const auto counts = rig.gpu1->collectAccessCounts();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0].page, 1u);
    EXPECT_EQ(counts[0].count, 2u);
    EXPECT_EQ(counts[1].page, 2u);
}

TEST(Gpu, CollectAccessCountsResets)
{
    Rig rig;
    rig.gpu1->cuAccess(0, 0x1000, false, [] {});
    rig.engine.run();
    EXPECT_EQ(rig.gpu1->collectAccessCounts().size(), 1u);
    EXPECT_TRUE(rig.gpu1->collectAccessCounts().empty());
}

TEST(Gpu, ShootdownPagesIsSelectiveAcrossAllTlbs)
{
    Rig rig;
    rig.access(0x5000);
    rig.access(0x6000);
    rig.engine.run();
    ASSERT_TRUE(rig.gpu1->l1Tlb(0).probe(5));
    ASSERT_TRUE(rig.gpu1->l2Tlb().probe(6));

    rig.gpu1->shootdownPages({5});
    EXPECT_FALSE(rig.gpu1->l1Tlb(0).probe(5));
    EXPECT_FALSE(rig.gpu1->l2Tlb().probe(5));
    EXPECT_TRUE(rig.gpu1->l2Tlb().probe(6));
    EXPECT_EQ(rig.gpu1->tlbShootdownEvents, 1u);
    EXPECT_EQ(rig.gpu1->tlbEntriesShotDown, 2u); // L1 + L2 entries
}

TEST(Gpu, FlushCachesForPagesWritesBackDirtyLines)
{
    Rig rig;
    rig.access(0x5000, true); // dirty line in L1 (and allocated in L2
                              // only on eviction, so L1 holds it)
    rig.engine.run();
    const std::uint64_t wb_before = rig.gpu1->dram().writes;
    rig.gpu1->flushCachesForPages({5});
    EXPECT_GE(rig.gpu1->dram().writes, wb_before + 1);
    EXPECT_FALSE(rig.gpu1->l1Cache(0).probe(0x5000));
}

TEST(Gpu, DrainImmediateWhenNoMatchingInflight)
{
    Rig rig;
    auto pages = std::make_shared<std::vector<PageId>>(
        std::vector<PageId>{42});
    bool drained = false;
    rig.gpu1->drainForPages(pages, [&] { drained = true; });
    rig.engine.run();
    EXPECT_TRUE(drained);
    EXPECT_EQ(rig.gpu1->drainsImmediate, 1u);
    rig.gpu1->resumeAllCus();
}

TEST(Gpu, DrainWaitsForDataPhaseOnMigratingPage)
{
    Rig rig;
    auto pages = std::make_shared<std::vector<PageId>>(
        std::vector<PageId>{7});
    rig.gpu1->enterDataPhase(7);

    Tick drained_at = 0;
    rig.gpu1->drainForPages(pages,
                            [&] { drained_at = rig.engine.now(); });
    rig.engine.schedule(500, [&] { rig.gpu1->leaveDataPhase(7); });
    rig.engine.run();
    EXPECT_EQ(drained_at, 500u);
}

TEST(Gpu, DrainIgnoresDataPhaseOnOtherPages)
{
    Rig rig;
    auto pages = std::make_shared<std::vector<PageId>>(
        std::vector<PageId>{7});
    rig.gpu1->enterDataPhase(8); // unrelated page never completes
    bool drained = false;
    rig.gpu1->drainForPages(pages, [&] { drained = true; });
    rig.engine.run();
    EXPECT_TRUE(drained); // ACUD's whole point
}

TEST(Gpu, FlushForMigrationInvalidatesEverything)
{
    Rig rig;
    rig.access(0x5000, true);
    rig.engine.run();
    bool flushed = false;
    rig.gpu1->flushForMigration([&] { flushed = true; });
    rig.engine.run();
    EXPECT_TRUE(flushed);
    EXPECT_EQ(rig.gpu1->fullFlushes, 1u);
    EXPECT_EQ(rig.gpu1->l1Tlb(0).validEntries(), 0u);
    EXPECT_EQ(rig.gpu1->l2Tlb().validEntries(), 0u);
    EXPECT_EQ(rig.gpu1->l1Cache(0).validLines(), 0u);
    rig.gpu1->resumeAllCus();
}

TEST(Gpu, FreeCusAccountsForQueuedWork)
{
    Rig rig;
    EXPECT_EQ(rig.gpu1->freeCus(), rig.cfg.numCus());
    wl::Workgroup wg;
    wl::WavefrontTrace tr;
    tr.ops.push_back(wl::MemOp{0x1000, 1, false});
    wg.wavefronts.push_back(tr);
    rig.gpu1->enqueueWorkgroup(std::move(wg));
    EXPECT_EQ(rig.gpu1->freeCus(), rig.cfg.numCus() - 1);
    rig.engine.run();
    EXPECT_EQ(rig.gpu1->freeCus(), rig.cfg.numCus());
    EXPECT_EQ(rig.gpu1->workgroupsExecuted, 1u);
}
