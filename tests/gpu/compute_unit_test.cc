/**
 * @file
 * Unit tests for gpu::ComputeUnit: trace execution, wavefront
 * concurrency limits, pause/resume, and the conventional pipeline
 * flush (work discard + replay).
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/gpu/compute_unit.hh"
#include "src/sim/engine.hh"

using namespace griffin;
using gpu::ComputeUnit;
using gpu::CuConfig;
using gpu::CuMemoryInterface;

namespace {

/** Memory stub with scriptable latency; records accesses in order. */
class StubMemory : public CuMemoryInterface
{
  public:
    explicit StubMemory(sim::Engine &engine) : _engine(engine) {}

    void
    cuAccess(unsigned cu_id, Addr vaddr, bool is_write,
             sim::EventFn done) override
    {
        (void)cu_id;
        accesses.push_back({vaddr, is_write});
        ++inflight;
        maxInflight = std::max(maxInflight, inflight);
        _engine.schedule(latency,
                         sim::boxed([this, done = std::move(done)] {
            --inflight;
            done();
        }));
    }

    std::vector<std::pair<Addr, bool>> accesses;
    Tick latency = 10;
    unsigned inflight = 0;
    unsigned maxInflight = 0;

  private:
    sim::Engine &_engine;
};

wl::Workgroup
makeWorkgroup(unsigned wavefronts, unsigned ops_per_wf,
              std::uint32_t delay = 1)
{
    wl::Workgroup wg;
    wg.id = 0;
    for (unsigned wf = 0; wf < wavefronts; ++wf) {
        wl::WavefrontTrace trace;
        for (unsigned i = 0; i < ops_per_wf; ++i) {
            trace.ops.push_back(
                wl::MemOp{Addr(wf) * 0x10000 + i * 64, delay, false});
        }
        wg.wavefronts.push_back(std::move(trace));
    }
    return wg;
}

} // namespace

TEST(ComputeUnit, ExecutesAllOpsAndRetires)
{
    sim::Engine engine;
    StubMemory memory(engine);
    ComputeUnit cu(engine, memory, 0, CuConfig{});

    bool done = false;
    cu.startWorkgroup(makeWorkgroup(2, 5), [&] { done = true; });
    EXPECT_TRUE(cu.busy());
    engine.run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(cu.busy());
    EXPECT_EQ(cu.opsIssued, 10u);
    EXPECT_EQ(cu.opsCompleted, 10u);
    EXPECT_EQ(memory.accesses.size(), 10u);
    EXPECT_EQ(cu.workgroupsRetired, 1u);
}

TEST(ComputeUnit, EmptyWorkgroupRetiresImmediately)
{
    sim::Engine engine;
    StubMemory memory(engine);
    ComputeUnit cu(engine, memory, 0, CuConfig{});
    bool done = false;
    cu.startWorkgroup(wl::Workgroup{}, [&] { done = true; });
    engine.run();
    EXPECT_TRUE(done);
}

TEST(ComputeUnit, WavefrontsRunConcurrently)
{
    sim::Engine engine;
    StubMemory memory(engine);
    memory.latency = 100;
    ComputeUnit cu(engine, memory, 0, CuConfig{16, 1});
    cu.startWorkgroup(makeWorkgroup(8, 3), nullptr);
    engine.run();
    EXPECT_EQ(memory.maxInflight, 8u);
}

TEST(ComputeUnit, MaxWavefrontsBoundsConcurrency)
{
    sim::Engine engine;
    StubMemory memory(engine);
    memory.latency = 100;
    ComputeUnit cu(engine, memory, 0, CuConfig{4, 1});
    cu.startWorkgroup(makeWorkgroup(10, 2), nullptr);
    engine.run();
    EXPECT_EQ(memory.maxInflight, 4u);
    EXPECT_EQ(cu.opsCompleted, 20u); // everyone still finishes
}

TEST(ComputeUnit, ComputeDelaySeparatesOps)
{
    sim::Engine engine;
    StubMemory memory(engine);
    memory.latency = 10;
    ComputeUnit cu(engine, memory, 0, CuConfig{});
    wl::Workgroup wg;
    wl::WavefrontTrace tr;
    tr.ops.push_back(wl::MemOp{0, 50, false});
    tr.ops.push_back(wl::MemOp{64, 1, false});
    wg.wavefronts.push_back(tr);
    Tick end = 0;
    cu.startWorkgroup(std::move(wg), [&] { end = engine.now(); });
    engine.run();
    // issue(1) + mem(10) + delay(50) + mem(10) + delay(1) + retire.
    EXPECT_GE(end, 72u);
}

TEST(ComputeUnit, PauseStopsNewIssueButInflightContinues)
{
    sim::Engine engine;
    StubMemory memory(engine);
    memory.latency = 50;
    ComputeUnit cu(engine, memory, 0, CuConfig{16, 1});
    cu.startWorkgroup(makeWorkgroup(2, 10), nullptr);
    engine.runUntil(10); // both wavefronts have one op in flight
    EXPECT_EQ(memory.inflight, 2u);

    cu.pauseIssue();
    engine.runUntil(1000);
    // The in-flight ops completed but nothing new was issued.
    EXPECT_EQ(memory.inflight, 0u);
    EXPECT_EQ(cu.opsCompleted, 2u);
    EXPECT_TRUE(cu.paused());

    cu.resume();
    engine.run();
    EXPECT_EQ(cu.opsCompleted, 20u);
}

TEST(ComputeUnit, FlushDiscardsInflightAndReplays)
{
    sim::Engine engine;
    StubMemory memory(engine);
    memory.latency = 50;
    ComputeUnit cu(engine, memory, 0, CuConfig{16, 1});
    cu.startWorkgroup(makeWorkgroup(4, 3), nullptr);
    engine.runUntil(10);
    EXPECT_EQ(memory.inflight, 4u);

    cu.flushPipeline();
    EXPECT_EQ(cu.inflightOps(), 0u);
    EXPECT_EQ(cu.opsDiscarded, 4u);

    cu.resume();
    engine.run();
    // All 12 ops completed; the 4 discarded ones were re-issued, so
    // the memory saw 16 accesses in total.
    EXPECT_EQ(cu.opsCompleted, 12u);
    EXPECT_EQ(memory.accesses.size(), 16u);
    EXPECT_EQ(cu.workgroupsRetired, 1u);
}

TEST(ComputeUnit, StaleRepliesAfterFlushAreIgnored)
{
    sim::Engine engine;
    StubMemory memory(engine);
    memory.latency = 50;
    ComputeUnit cu(engine, memory, 0, CuConfig{16, 1});
    cu.startWorkgroup(makeWorkgroup(1, 2), nullptr);
    engine.runUntil(10);
    cu.flushPipeline();
    // Let the stale reply land while still paused: nothing breaks and
    // no progress is recorded for it.
    engine.runUntil(200);
    EXPECT_EQ(cu.opsCompleted, 0u);
    cu.resume();
    engine.run();
    EXPECT_EQ(cu.opsCompleted, 2u);
}

TEST(ComputeUnit, BackToBackWorkgroups)
{
    sim::Engine engine;
    StubMemory memory(engine);
    ComputeUnit cu(engine, memory, 0, CuConfig{});
    int retired = 0;
    cu.startWorkgroup(makeWorkgroup(2, 2), [&] {
        ++retired;
        cu.startWorkgroup(makeWorkgroup(1, 1), [&] { ++retired; });
    });
    engine.run();
    EXPECT_EQ(retired, 2);
    EXPECT_EQ(cu.workgroupsRetired, 2u);
}
