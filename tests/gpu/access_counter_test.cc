/**
 * @file
 * Unit tests for gpu::AccessCounter: saturation, capacity eviction,
 * and top-N collection with reset (paper SS III-C hardware).
 */

#include <gtest/gtest.h>

#include "src/gpu/access_counter.hh"

using namespace griffin;
using gpu::AccessCounter;

TEST(AccessCounter, CountsPerPage)
{
    AccessCounter ac(100);
    ac.record(1);
    ac.record(1);
    ac.record(2);
    const auto top = ac.collectTop(10);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].page, 1u);
    EXPECT_EQ(top[0].count, 2u);
    EXPECT_EQ(top[1].page, 2u);
}

TEST(AccessCounter, CollectResetsTheTable)
{
    AccessCounter ac(100);
    ac.record(1);
    ac.collectTop(10);
    EXPECT_EQ(ac.size(), 0u);
    EXPECT_TRUE(ac.collectTop(10).empty());
}

TEST(AccessCounter, SaturatesAtMaxCount)
{
    AccessCounter ac(100, 0xff);
    for (int i = 0; i < 300; ++i)
        ac.record(7);
    const auto top = ac.collectTop(1);
    EXPECT_EQ(top[0].count, 0xffu);
    EXPECT_EQ(ac.saturated, 300u - 255u);
}

TEST(AccessCounter, CapacityEvictsColdest)
{
    AccessCounter ac(3);
    ac.record(1);
    ac.record(1); // hot
    ac.record(2);
    ac.record(2); // hot
    ac.record(3); // cold
    ac.record(4); // evicts 3 (count 1, coldest)
    EXPECT_EQ(ac.size(), 3u);
    EXPECT_EQ(ac.capacityEvictions, 1u);
    const auto top = ac.collectTop(10);
    for (const auto &pc : top)
        EXPECT_NE(pc.page, 3u);
}

TEST(AccessCounter, TopNTruncatesByCount)
{
    AccessCounter ac(100);
    for (PageId p = 0; p < 30; ++p) {
        for (PageId n = 0; n <= p; ++n)
            ac.record(p);
    }
    const auto top = ac.collectTop(20);
    ASSERT_EQ(top.size(), 20u);
    // Descending counts; hottest page is 29 with 30 records.
    EXPECT_EQ(top[0].page, 29u);
    EXPECT_EQ(top[0].count, 30u);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].count, top[i].count);
    // The coldest ten pages (0..9) were cut.
    for (const auto &pc : top)
        EXPECT_GE(pc.page, 10u);
}

TEST(AccessCounter, DeterministicTieBreakByPageId)
{
    AccessCounter ac(100);
    ac.record(9);
    ac.record(3);
    ac.record(5);
    const auto top = ac.collectTop(10);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].page, 3u);
    EXPECT_EQ(top[1].page, 5u);
    EXPECT_EQ(top[2].page, 9u);
}

TEST(AccessCounter, PaperBudgetIs100Entries)
{
    AccessCounter ac; // defaults
    EXPECT_EQ(ac.capacity(), 100u);
    for (PageId p = 0; p < 200; ++p)
        ac.record(p);
    EXPECT_EQ(ac.size(), 100u);
}
