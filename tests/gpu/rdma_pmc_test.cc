/**
 * @file
 * Unit tests for the DCA service engine (gpu::Rdma) and the Page
 * Migration Controller (gpu::Pmc).
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/gpu/pmc.hh"
#include "src/gpu/rdma.hh"
#include "src/mem/cache.hh"
#include "src/mem/dram.hh"
#include "src/sim/engine.hh"

using namespace griffin;

namespace {

struct RdmaRig
{
    sim::Engine engine;
    ic::Network net{engine, 5, ic::LinkConfig{32.0, 100}};
    mem::Cache l2{mem::CacheConfig{256 * 1024, 16, 64, 20}};
    mem::Dram dram{mem::DramConfig{}};
    gpu::Rdma rdma{engine, net, /*self=*/2, l2, dram, 64};
};

} // namespace

TEST(Rdma, ReadMissGoesToDramAndRepliesWithData)
{
    RdmaRig rig;
    std::optional<Tick> done;
    rig.rdma.serve(0x1000, false, /*reply_to=*/1,
                   [&] { done = rig.engine.now(); });
    rig.engine.run();
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(rig.rdma.readsServed, 1u);
    EXPECT_EQ(rig.dram.reads, 1u);
    // The reply crossed the fabric (latency 2 x 100 + service).
    EXPECT_GT(*done, 200u);
    // The reply carried a cache line (72 B message).
    EXPECT_EQ(rig.net.link(2).bytesSent[0],
              ic::MessageSizes::dcaReadReply);
}

TEST(Rdma, ReadHitSkipsDram)
{
    RdmaRig rig;
    rig.l2.access(0x1000, false); // warm the line
    std::optional<Tick> miss_done, hit_done;
    rig.rdma.serve(0x2000, false, 1, [&] { miss_done = rig.engine.now(); });
    rig.engine.run();
    RdmaRig rig2;
    rig2.l2.access(0x1000, false);
    rig2.rdma.serve(0x1000, false, 1, [&] { hit_done = rig2.engine.now(); });
    rig2.engine.run();
    EXPECT_EQ(rig2.rdma.l2HitsServed, 1u);
    EXPECT_EQ(rig2.dram.reads, 0u);
    EXPECT_LT(*hit_done, *miss_done);
}

TEST(Rdma, WriteAcksWithSmallMessage)
{
    RdmaRig rig;
    bool done = false;
    rig.rdma.serve(0x3000, true, 3, [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.rdma.writesServed, 1u);
    EXPECT_EQ(rig.net.link(2).bytesSent[0],
              ic::MessageSizes::dcaWriteAck);
    // Write-allocate left the line dirty in the L2.
    EXPECT_TRUE(rig.l2.probe(0x3000));
}

TEST(Rdma, DataPhaseHooksBracketTheAccess)
{
    RdmaRig rig;
    int phase = 0; // 0 = before, 1 = entered, 2 = left
    bool replied = false;
    rig.rdma.serve(
        0x1000, false, 1, [&] { replied = true; },
        [&] {
            EXPECT_EQ(phase, 0);
            phase = 1;
        },
        [&] {
            EXPECT_EQ(phase, 1);
            phase = 2;
            EXPECT_FALSE(replied) << "leave fires before the reply";
        });
    rig.engine.run();
    EXPECT_EQ(phase, 2);
    EXPECT_TRUE(replied);
}

namespace {

struct PmcRig
{
    sim::Engine engine;
    ic::Network net{engine, 3, ic::LinkConfig{32.0, 250}};
    mem::Dram cpuDram{mem::DramConfig{4, 120, 16.0, 256}};
    mem::Dram gpuDram{mem::DramConfig{}};
    std::vector<mem::Dram *> drams{&cpuDram, &gpuDram, &gpuDram};
    gpu::Pmc pmc{engine, net, /*self=*/0, drams, 4096};
};

} // namespace

TEST(Pmc, TransfersWholePageAcrossTheFabric)
{
    PmcRig rig;
    std::optional<Tick> done;
    rig.pmc.transferPage(7, 1, [&] { done = rig.engine.now(); });
    rig.engine.run();
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(rig.pmc.pagesTransferred, 1u);
    EXPECT_EQ(rig.pmc.bytesTransferred, 4096u);
    // Source read + destination write happened.
    EXPECT_EQ(rig.cpuDram.reads, 1u);
    EXPECT_EQ(rig.gpuDram.writes, 1u);
    // The fabric carried page + header on both hops.
    EXPECT_EQ(rig.net.link(0).bytesSent[0], 4096u + 8u);
    // Lower bound: source DRAM read burst + 2 x (129 ser + 250 lat).
    EXPECT_GT(*done, 758u);
}

TEST(Pmc, BackToBackTransfersPipelineOnTheLink)
{
    PmcRig rig;
    std::vector<Tick> done;
    for (PageId p = 0; p < 4; ++p)
        rig.pmc.transferPage(p, 1, [&] { done.push_back(rig.engine.now()); });
    rig.engine.run();
    ASSERT_EQ(done.size(), 4u);
    // Completions are spaced by roughly the serialization time of one
    // page (129 cycles at 32 B/cy), not a full round trip each.
    for (std::size_t i = 1; i < done.size(); ++i) {
        EXPECT_GT(done[i], done[i - 1]);
        EXPECT_LT(done[i] - done[i - 1], 400u);
    }
    EXPECT_EQ(rig.pmc.bytesTransferred, 4u * 4096u);
}

TEST(Pmc, DistinctDestinationsStillSerializeOnSourceEgress)
{
    PmcRig rig;
    std::vector<Tick> done;
    rig.pmc.transferPage(0, 1, [&] { done.push_back(rig.engine.now()); });
    rig.pmc.transferPage(1, 2, [&] { done.push_back(rig.engine.now()); });
    rig.engine.run();
    ASSERT_EQ(done.size(), 2u);
    // Both leave through the CPU's upstream wire: ~129 cycles apart.
    EXPECT_GE(done[1] - done[0], 100u);
}
