/**
 * @file
 * Unit tests for gpu::ShaderEngine and the fabric message-size
 * constants of paper SS III-C.
 */

#include <gtest/gtest.h>

#include "src/gpu/shader_engine.hh"
#include "src/interconnect/switch.hh"

using namespace griffin;
using gpu::ShaderEngine;

TEST(ShaderEngine, OwnsItsCuRange)
{
    ShaderEngine se(1, 9, 9, 100);
    EXPECT_EQ(se.seId(), 1u);
    EXPECT_FALSE(se.ownsCu(8));
    EXPECT_TRUE(se.ownsCu(9));
    EXPECT_TRUE(se.ownsCu(17));
    EXPECT_FALSE(se.ownsCu(18));
}

TEST(ShaderEngine, CounterCapacityFollowsConfig)
{
    ShaderEngine se(0, 0, 9, 100);
    EXPECT_EQ(se.counter().capacity(), 100u);
}

TEST(ShaderEngineDeath, MoreThan16CusRejected)
{
    // Paper SS III-C: an SE groups *up to 16* CUs.
    EXPECT_DEATH(ShaderEngine(0, 0, 17, 100), "16");
}

TEST(MessageSizes, AccessCountMessageMatchesThePaper)
{
    // Paper SS III-C: 20 pages x (36-bit id + 8-bit count) fits in
    // 110 bytes — "smaller than two cache lines".
    EXPECT_EQ(ic::MessageSizes::accessCountReply, 110u);
    EXPECT_LT(ic::MessageSizes::accessCountReply,
              2 * ic::MessageSizes::cacheLine);
    // 20 * 44 bits = 880 bits = 110 bytes exactly.
    EXPECT_EQ(20u * (36u + 8u) / 8u,
              ic::MessageSizes::accessCountReply);
}

TEST(MessageSizes, DcaMessagesCarryALine)
{
    EXPECT_EQ(ic::MessageSizes::dcaReadReply,
              ic::MessageSizes::cacheLine + ic::MessageSizes::header);
    EXPECT_EQ(ic::MessageSizes::dcaWriteRequest,
              ic::MessageSizes::cacheLine + ic::MessageSizes::header);
    EXPECT_LT(ic::MessageSizes::dcaWriteAck,
              ic::MessageSizes::dcaWriteRequest);
}
