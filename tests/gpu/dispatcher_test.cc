/**
 * @file
 * Unit tests for gpu::Dispatcher: demand-driven round-robin dealing,
 * GPU 1's first-workgroup advantage, kernel completion, and refill
 * flow to faster GPUs.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/first_touch_policy.hh"
#include "src/gpu/dispatcher.hh"
#include "src/gpu/gpu.hh"
#include "src/sim/engine.hh"
#include "src/xlat/iommu.hh"

using namespace griffin;

namespace {

class NullRouter : public gpu::RemoteRouter
{
  public:
    explicit NullRouter(sim::Engine &engine) : _engine(engine) {}
    void
    remoteAccess(DeviceId, DeviceId, Addr, bool,
                 sim::EventFn done) override
    {
        _engine.schedule(1, std::move(done));
    }

  private:
    sim::Engine &_engine;
};

class InstantDriver : public xlat::FaultHandler
{
  public:
    InstantDriver(mem::PageTable &pt, xlat::Iommu &iommu)
        : _pt(pt), _iommu(iommu)
    {
    }
    void
    onPageFault(DeviceId requester, PageId page,
                FaultId = invalidFaultId) override
    {
        _pt.setLocation(page, requester);
        _iommu.onMigrationDone(page);
    }

  private:
    mem::PageTable &_pt;
    xlat::Iommu &_iommu;
};

struct Rig
{
    sim::Engine engine;
    mem::PageTable pt{12, 5};
    ic::Network net{engine, 5, ic::LinkConfig{32.0, 10}};
    xlat::Iommu iommu{engine, net, pt, xlat::IommuConfig{}};
    core::FirstTouchPolicy policy;
    InstantDriver driver{pt, iommu};
    NullRouter router{engine};
    std::vector<std::unique_ptr<gpu::Gpu>> gpus;
    std::vector<gpu::Gpu *> ptrs;
    std::unique_ptr<gpu::Dispatcher> dispatcher;

    explicit Rig(unsigned cus_per_se = 2)
    {
        iommu.setPolicy(&policy);
        iommu.setFaultHandler(&driver);
        gpu::GpuConfig cfg;
        cfg.numSes = 1;
        cfg.cusPerSe = cus_per_se;
        for (DeviceId id = 1; id <= 4; ++id) {
            gpus.push_back(std::make_unique<gpu::Gpu>(
                engine, id, cfg, net, iommu, router));
            ptrs.push_back(gpus.back().get());
        }
        dispatcher = std::make_unique<gpu::Dispatcher>(engine, ptrs, 4);
    }
};

wl::KernelLaunch
makeKernel(unsigned wgs, unsigned ops = 1)
{
    wl::KernelLaunch launch;
    for (unsigned w = 0; w < wgs; ++w) {
        wl::Workgroup wg;
        wg.id = w;
        wl::WavefrontTrace tr;
        for (unsigned i = 0; i < ops; ++i)
            tr.ops.push_back(
                wl::MemOp{Addr(w) * 0x1000 + i * 64, 1, false});
        wg.wavefronts.push_back(std::move(tr));
        launch.workgroups.push_back(std::move(wg));
    }
    return launch;
}

} // namespace

TEST(Dispatcher, KernelCompletesAfterAllWorkgroups)
{
    Rig rig;
    bool done = false;
    rig.dispatcher->launchKernel(makeKernel(12), [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.dispatcher->workgroupsDispatched, 12u);
    EXPECT_FALSE(rig.dispatcher->kernelInFlight());
}

TEST(Dispatcher, EmptyKernelCompletes)
{
    Rig rig;
    bool done = false;
    rig.dispatcher->launchKernel(wl::KernelLaunch{}, [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
}

TEST(Dispatcher, InitialDealIsRoundRobinGpu1First)
{
    Rig rig;
    rig.dispatcher->launchKernel(makeKernel(8, 100), nullptr);
    // After 4 dispatch slots the first four workgroups went to GPUs
    // 1, 2, 3, 4 in that order.
    rig.engine.runUntil(17);
    const auto &per = rig.dispatcher->perGpuDispatched();
    EXPECT_EQ(per[0], 1u);
    EXPECT_EQ(per[1], 1u);
    EXPECT_EQ(per[2], 1u);
    EXPECT_EQ(per[3], 1u);
    rig.engine.run();
}

TEST(Dispatcher, EvenSplitWhenGpusAreSymmetric)
{
    Rig rig;
    rig.dispatcher->launchKernel(makeKernel(40, 4), nullptr);
    rig.engine.run();
    const auto &per = rig.dispatcher->perGpuDispatched();
    std::uint64_t total = 0;
    for (const auto n : per) {
        EXPECT_GE(n, 8u);
        EXPECT_LE(n, 12u);
        total += n;
    }
    EXPECT_EQ(total, 40u);
}

TEST(Dispatcher, RefillsFlowWhenCusFree)
{
    // 2 CUs per GPU = 8 CU slots; 24 workgroups need three waves.
    Rig rig;
    bool done = false;
    rig.dispatcher->launchKernel(makeKernel(24, 8), [&] { done = true; });
    rig.engine.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.dispatcher->workgroupsDispatched, 24u);
}

TEST(Dispatcher, BackToBackKernels)
{
    Rig rig;
    int done = 0;
    rig.dispatcher->launchKernel(makeKernel(8), [&] {
        ++done;
        rig.dispatcher->launchKernel(makeKernel(8), [&] { ++done; });
    });
    rig.engine.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(rig.dispatcher->kernelsLaunched, 2u);
    EXPECT_EQ(rig.dispatcher->workgroupsDispatched, 16u);
}
