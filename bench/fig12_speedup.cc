/**
 * @file
 * Regenerates paper Figure 12: speedup of Griffin over the baseline
 * first-touch NUMA multi-GPU system across the ten workloads.
 *
 * Paper shape: Griffin wins on 9/10 workloads, geometric mean 1.37x,
 * peak 2.9x on MT; PR is the one slowdown.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Figure 12: Speedup of Griffin vs Baseline ===\n"
              << "(scale 1/" << opt.scaleDiv << " of paper footprints)\n\n";

    sys::Table table({"Benchmark", "Baseline(cyc)", "Griffin(cyc)",
                      "Speedup", "Local%Base", "Local%Grif", ""});
    std::vector<double> speedups;

    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads) {
        sweep.add(name, sys::SystemConfig::baseline());
        sweep.add(name, sys::SystemConfig::griffinDefault());
    }
    const auto results = sweep.run();

    for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
        const auto &name = opt.workloads[i];
        const auto &base = results[2 * i];
        const auto &grif = results[2 * i + 1];

        const double speedup = double(base.cycles) / double(grif.cycles);
        speedups.push_back(speedup);
        table.addRow({name,
                      std::to_string(base.cycles),
                      std::to_string(grif.cycles),
                      sys::Table::num(speedup),
                      sys::Table::num(100.0 * base.localFraction(), 1),
                      sys::Table::num(100.0 * grif.localFraction(), 1),
                      sys::asciiBar(speedup, 3.0, 30)});
    }
    table.addRow({"geomean", "", "", sys::Table::num(
                      sys::geomean(speedups)), "", "", ""});

    bench::emit(table, opt);
    return 0;
}
