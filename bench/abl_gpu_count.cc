/**
 * @file
 * Extension bench: GPU-count scaling (the paper's motivation is that
 * multi-GPU systems keep growing — DGX-2 has 16). Runs the baseline
 * and Griffin on 2, 4 and 8 GPUs and reports Griffin's speedup: the
 * NUMA penalty grows with GPU count (more remote traffic per GPU),
 * and so should Griffin's advantage on locality-friendly workloads.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto opt = bench::Options::parse(argc, argv);
    if (opt.workloads.size() == 10)
        opt.workloads = {"SC", "KM", "ST", "MT"};

    std::cout << "=== Extension: scaling the GPU count ===\n\n";

    std::vector<std::string> header{"GPUs"};
    for (const auto &name : opt.workloads) {
        header.push_back(name + " spd");
        header.push_back(name + " loc%");
    }
    sys::Table table(header);

    for (const unsigned gpus : {2u, 4u, 8u}) {
        std::vector<std::string> cells{std::to_string(gpus)};
        for (const auto &name : opt.workloads) {
            sys::SystemConfig base_cfg = sys::SystemConfig::baseline();
            base_cfg.numGpus = gpus;
            sys::SystemConfig grif_cfg =
                sys::SystemConfig::griffinDefault();
            grif_cfg.numGpus = gpus;

            const auto base = bench::runWorkload(name, base_cfg, opt);
            const auto grif = bench::runWorkload(name, grif_cfg, opt);
            cells.push_back(sys::Table::num(double(base.cycles) /
                                            double(grif.cycles)));
            cells.push_back(
                sys::Table::num(100 * grif.localFraction(), 0));
        }
        table.addRow(std::move(cells));
    }

    bench::emit(table, opt);
    std::cout << "(loc% = Griffin's local-access share; the fair share "
                 "per GPU shrinks as 1/N)\n";
    return 0;
}
