/**
 * @file
 * Extension bench: GPU-count scaling (the paper's motivation is that
 * multi-GPU systems keep growing — DGX-2 has 16). Runs the baseline
 * and Griffin on 2, 4 and 8 GPUs and reports Griffin's speedup: the
 * NUMA penalty grows with GPU count (more remote traffic per GPU),
 * and so should Griffin's advantage on locality-friendly workloads.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto opt = bench::Options::parse(argc, argv);
    if (opt.workloads.size() == 10)
        opt.workloads = {"SC", "KM", "ST", "MT"};

    std::cout << "=== Extension: scaling the GPU count ===\n\n";

    std::vector<std::string> header{"GPUs"};
    for (const auto &name : opt.workloads) {
        header.push_back(name + " spd");
        header.push_back(name + " loc%");
    }
    sys::Table table(header);

    const unsigned counts[] = {2, 4, 8};
    bench::Sweep sweep(opt);
    for (const unsigned gpus : counts) {
        for (const auto &name : opt.workloads) {
            sys::SystemConfig base_cfg = sys::SystemConfig::baseline();
            base_cfg.numGpus = gpus;
            sys::SystemConfig grif_cfg =
                sys::SystemConfig::griffinDefault();
            grif_cfg.numGpus = gpus;
            const std::string dim = "gpus=" + std::to_string(gpus);
            sweep.add(name, base_cfg, dim);
            sweep.add(name, grif_cfg, dim);
        }
    }
    const auto results = sweep.run();

    std::size_t idx = 0;
    for (const unsigned gpus : counts) {
        std::vector<std::string> cells{std::to_string(gpus)};
        for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
            const auto &base = results[idx++];
            const auto &grif = results[idx++];
            cells.push_back(sys::Table::num(double(base.cycles) /
                                            double(grif.cycles)));
            cells.push_back(
                sys::Table::num(100 * grif.localFraction(), 0));
        }
        table.addRow(std::move(cells));
    }

    bench::emit(table, opt);
    std::cout << "(loc% = Griffin's local-access share; the fair share "
                 "per GPU shrinks as 1/N)\n";
    return 0;
}
