/**
 * @file
 * Extension bench (paper SS IV and [22]): page-size sensitivity. The
 * paper uses 4 KB pages because "large pages cause higher degree of
 * false sharing as well as page migration overhead"; this sweep
 * quantifies that on our system for both policies.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto opt = bench::Options::parse(argc, argv);
    if (opt.workloads.size() == 10)
        opt.workloads = {"SC", "MT", "KM"};

    std::cout << "=== Extension: page-size sweep (speedup of Griffin "
                 "over the 4KB baseline) ===\n\n";

    std::vector<std::string> header{"pageKB", "policy"};
    for (const auto &name : opt.workloads)
        header.push_back(name);
    sys::Table table(header);

    const unsigned shifts[] = {12, 13, 14, 16};
    const std::size_t nwl = opt.workloads.size();

    bench::Sweep sweep(opt);
    // Reference: the 4 KB baseline of Figure 12.
    for (const auto &name : opt.workloads)
        sweep.add(name, sys::SystemConfig::baseline());
    for (const unsigned shift : shifts) {
        for (const bool griffin : {false, true}) {
            sys::SystemConfig cfg = griffin
                ? sys::SystemConfig::griffinDefault()
                : sys::SystemConfig::baseline();
            cfg.gpu.pageShift = shift;
            for (const auto &name : opt.workloads) {
                sweep.add(name, cfg,
                          "page=" +
                              std::to_string((1u << shift) / 1024) +
                              "KB");
            }
        }
    }
    const auto results = sweep.run();

    std::size_t idx = nwl; // results[0..nwl) are the 4 KB references
    for (const unsigned shift : shifts) {
        for (const bool griffin : {false, true}) {
            std::vector<std::string> cells{
                std::to_string((1u << shift) / 1024),
                griffin ? "griffin" : "baseline"};
            for (std::size_t i = 0; i < nwl; ++i) {
                cells.push_back(
                    sys::Table::num(double(results[i].cycles) /
                                    double(results[idx++].cycles)));
            }
            table.addRow(std::move(cells));
        }
    }

    bench::emit(table, opt);
    return 0;
}
