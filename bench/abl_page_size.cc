/**
 * @file
 * Extension bench (paper SS IV and [22]): page-size sensitivity. The
 * paper uses 4 KB pages because "large pages cause higher degree of
 * false sharing as well as page migration overhead"; this sweep
 * quantifies that on our system for both policies.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto opt = bench::Options::parse(argc, argv);
    if (opt.workloads.size() == 10)
        opt.workloads = {"SC", "MT", "KM"};

    std::cout << "=== Extension: page-size sweep (speedup of Griffin "
                 "over the 4KB baseline) ===\n\n";

    std::vector<std::string> header{"pageKB", "policy"};
    for (const auto &name : opt.workloads)
        header.push_back(name);
    sys::Table table(header);

    // Reference: the 4 KB baseline of Figure 12.
    std::vector<double> ref;
    for (const auto &name : opt.workloads) {
        ref.push_back(double(bench::runWorkload(
                                 name, sys::SystemConfig::baseline(), opt)
                                 .cycles));
    }

    for (const unsigned shift : {12u, 13u, 14u, 16u}) {
        for (const bool griffin : {false, true}) {
            sys::SystemConfig cfg = griffin
                ? sys::SystemConfig::griffinDefault()
                : sys::SystemConfig::baseline();
            cfg.gpu.pageShift = shift;

            std::vector<std::string> cells{
                std::to_string((1u << shift) / 1024),
                griffin ? "griffin" : "baseline"};
            for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
                const auto r =
                    bench::runWorkload(opt.workloads[i], cfg, opt);
                cells.push_back(
                    sys::Table::num(ref[i] / double(r.cycles)));
            }
            table.addRow(std::move(cells));
        }
    }

    bench::emit(table, opt);
    return 0;
}
