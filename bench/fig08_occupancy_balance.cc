/**
 * @file
 * Regenerates paper Figure 8: the page distribution across the four
 * GPUs under the baseline (left) and Griffin (right). Griffin's DFTM
 * should deliver a near-uniform split without runtime re-balancing.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

namespace {

std::vector<std::string>
shareCells(const sys::RunResult &r)
{
    std::uint64_t on_gpus = 0;
    for (std::size_t dev = 1; dev < r.pagesPerDevice.size(); ++dev)
        on_gpus += r.pagesPerDevice[dev];
    std::vector<std::string> cells;
    for (std::size_t dev = 1; dev < r.pagesPerDevice.size(); ++dev) {
        cells.push_back(sys::Table::num(
            on_gpus ? 100.0 * double(r.pagesPerDevice[dev]) /
                          double(on_gpus)
                    : 0.0,
            1));
    }
    return cells;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Figure 8: occupancy balance, baseline vs Griffin"
              << " ===\n\n";

    sys::Table table({"Benchmark",
                      "B:G1%", "B:G2%", "B:G3%", "B:G4%", "B:max",
                      "G:G1%", "G:G2%", "G:G3%", "G:G4%", "G:max"});

    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads) {
        sweep.add(name, sys::SystemConfig::baseline());
        sweep.add(name, sys::SystemConfig::griffinDefault());
    }
    const auto results = sweep.run();

    for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
        const auto &name = opt.workloads[i];
        const auto &base = results[2 * i];
        const auto &grif = results[2 * i + 1];

        std::vector<std::string> cells{name};
        for (auto &c : shareCells(base))
            cells.push_back(std::move(c));
        cells.push_back(sys::Table::num(100.0 * base.maxGpuShare(), 1));
        for (auto &c : shareCells(grif))
            cells.push_back(std::move(c));
        cells.push_back(sys::Table::num(100.0 * grif.maxGpuShare(), 1));
        table.addRow(std::move(cells));
    }

    bench::emit(table, opt);
    std::cout << "(uniform = 25% per GPU; Griffin's max share should "
                 "sit close to 25%)\n";
    return 0;
}
