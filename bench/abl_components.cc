/**
 * @file
 * Ablation: Griffin with each mechanism individually disabled, across
 * all ten workloads. Shows which of DFTM / DPC+CPMS / ACUD carries
 * each workload's speedup.
 *
 * Configurations:
 *   full      all four mechanisms (the default)
 *   -DFTM     plain first-touch migration on the CPU fault path
 *   -interGPU no periodic classification or inter-GPU migration
 *   -ACUD     inter-GPU migration uses full pipeline flushes
 *   batchOnly fault batching alone (no DFTM, no inter-GPU migration)
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Ablation: Griffin components (speedup over "
                 "baseline) ===\n\n";

    struct Variant
    {
        const char *name;
        void (*apply)(sys::SystemConfig &);
    };
    const Variant variants[] = {
        {"full", [](sys::SystemConfig &) {}},
        {"-DFTM",
         [](sys::SystemConfig &c) { c.griffin.enableDftm = false; }},
        {"-interGPU",
         [](sys::SystemConfig &c) {
             c.griffin.enableInterGpuMigration = false;
         }},
        {"-ACUD",
         [](sys::SystemConfig &c) { c.griffin.useAcud = false; }},
        {"batchOnly",
         [](sys::SystemConfig &c) {
             c.griffin.enableDftm = false;
             c.griffin.enableInterGpuMigration = false;
         }},
    };

    std::vector<std::string> header{"Benchmark"};
    for (const auto &v : variants)
        header.push_back(v.name);
    sys::Table table(header);

    std::vector<std::vector<double>> columns(std::size(variants));

    const std::size_t stride = 1 + std::size(variants);
    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads) {
        sweep.add(name, sys::SystemConfig::baseline());
        for (const auto &v : variants) {
            sys::SystemConfig cfg = sys::SystemConfig::griffinDefault();
            v.apply(cfg);
            sweep.add(name, cfg, std::string("variant=") + v.name);
        }
    }
    const auto results = sweep.run();

    for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
        const double base = double(results[stride * i].cycles);

        std::vector<std::string> cells{opt.workloads[i]};
        for (std::size_t v = 0; v < std::size(variants); ++v) {
            const auto &r = results[stride * i + 1 + v];
            const double s = base / double(r.cycles);
            columns[v].push_back(s);
            cells.push_back(sys::Table::num(s));
        }
        table.addRow(std::move(cells));
    }

    std::vector<std::string> geo{"geomean"};
    for (const auto &col : columns)
        geo.push_back(sys::Table::num(sys::geomean(col)));
    table.addRow(std::move(geo));

    bench::emit(table, opt);
    return 0;
}
