/**
 * @file
 * Ablation: the EWMA forgetting rate alpha (paper Table I: 0.03,
 * tuned for the paper's timescale; our scaled system defaults to
 * 0.25). Sweeps alpha and reports Griffin's speedup over the baseline
 * on a representative workload subset. Small alpha reacts too slowly
 * to classify anything at compressed timescales; very large alpha
 * chases noise.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto opt = bench::Options::parse(argc, argv);
    if (opt.workloads.size() == 10) // default: use a fast subset
        opt.workloads = {"SC", "KM", "ST", "PR"};

    const double alphas[] = {0.01, 0.03, 0.1, 0.25, 0.5, 0.8};

    std::cout << "=== Ablation: DPC filter alpha ===\n\n";

    std::vector<std::string> header{"alpha"};
    for (const auto &name : opt.workloads)
        header.push_back(name);
    header.push_back("geomean");
    sys::Table table(header);

    std::vector<double> baselines;
    for (const auto &name : opt.workloads) {
        baselines.push_back(double(
            bench::runWorkload(name, sys::SystemConfig::baseline(), opt)
                .cycles));
    }

    for (const double alpha : alphas) {
        sys::SystemConfig cfg = sys::SystemConfig::griffinDefault();
        cfg.griffin.alpha = alpha;

        std::vector<std::string> cells{sys::Table::num(alpha)};
        std::vector<double> speedups;
        for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
            const auto r = bench::runWorkload(opt.workloads[i], cfg, opt);
            const double s = baselines[i] / double(r.cycles);
            speedups.push_back(s);
            cells.push_back(sys::Table::num(s));
        }
        cells.push_back(sys::Table::num(sys::geomean(speedups)));
        table.addRow(std::move(cells));
    }

    bench::emit(table, opt);
    return 0;
}
