/**
 * @file
 * Ablation: the EWMA forgetting rate alpha (paper Table I: 0.03,
 * tuned for the paper's timescale; our scaled system defaults to
 * 0.25). Sweeps alpha and reports Griffin's speedup over the baseline
 * on a representative workload subset. Small alpha reacts too slowly
 * to classify anything at compressed timescales; very large alpha
 * chases noise.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto opt = bench::Options::parse(argc, argv);
    if (opt.workloads.size() == 10) // default: use a fast subset
        opt.workloads = {"SC", "KM", "ST", "PR"};

    const double alphas[] = {0.01, 0.03, 0.1, 0.25, 0.5, 0.8};

    std::cout << "=== Ablation: DPC filter alpha ===\n\n";

    std::vector<std::string> header{"alpha"};
    for (const auto &name : opt.workloads)
        header.push_back(name);
    header.push_back("geomean");
    sys::Table table(header);

    const std::size_t nwl = opt.workloads.size();
    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads)
        sweep.add(name, sys::SystemConfig::baseline());
    for (const double alpha : alphas) {
        sys::SystemConfig cfg = sys::SystemConfig::griffinDefault();
        cfg.griffin.alpha = alpha;
        for (const auto &name : opt.workloads)
            sweep.add(name, cfg, "alpha=" + sys::Table::num(alpha));
    }
    const auto results = sweep.run();

    std::size_t idx = nwl; // results[0..nwl) are the baselines
    for (const double alpha : alphas) {
        std::vector<std::string> cells{sys::Table::num(alpha)};
        std::vector<double> speedups;
        for (std::size_t i = 0; i < nwl; ++i) {
            const double s = double(results[i].cycles) /
                             double(results[idx++].cycles);
            speedups.push_back(s);
            cells.push_back(sys::Table::num(s));
        }
        cells.push_back(sys::Table::num(sys::geomean(speedups)));
        table.addRow(std::move(cells));
    }

    bench::emit(table, opt);
    return 0;
}
