/**
 * @file
 * google-benchmark microbenchmarks for the hot substrate components:
 * event queue throughput, cache and TLB lookups, the DPC classifier,
 * access counters, and link arbitration. These bound the simulator's
 * own speed (events/second), which determines how large a workload
 * the harness can regenerate.
 */

#include <benchmark/benchmark.h>

#include "src/core/dpc.hh"
#include "src/gpu/access_counter.hh"
#include "src/interconnect/link.hh"
#include "src/mem/cache.hh"
#include "src/mem/page_table.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/rng.hh"
#include "src/xlat/tlb.hh"

using namespace griffin;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const std::size_t batch = std::size_t(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sink = 0;
        for (std::size_t i = 0; i < batch; ++i)
            q.schedule(Tick(i % 97), [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

static void
BM_EventQueueSameTickCascade(benchmark::State &state)
{
    // The simulator's dominant shape: an event's callback schedules
    // the next hop. Same-tick hops stay in the FIFO ring; the queue
    // must sustain them without growing.
    const std::uint64_t hops = std::uint64_t(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t left = hops;
        sim::InlineFn<void()> step;
        step = [&] {
            if (--left > 0)
                q.schedule(0, [&] { step(); });
        };
        q.schedule(0, [&] { step(); });
        q.run();
        benchmark::DoNotOptimize(left);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(hops));
}
BENCHMARK(BM_EventQueueSameTickCascade)->Arg(4096);

static void
BM_EventQueueHopChain(benchmark::State &state)
{
    // Latency-hop chains (TLB -> cache -> DRAM shapes): every hop
    // moves time forward a little, so events flow through the ladder
    // buckets rather than the ring.
    const std::uint64_t hops = std::uint64_t(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t left = hops;
        sim::InlineFn<void()> step;
        step = [&] {
            if (--left > 0)
                q.schedule(1 + left % 13, [&] { step(); });
        };
        q.schedule(1, [&] { step(); });
        q.run();
        benchmark::DoNotOptimize(left);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(hops));
}
BENCHMARK(BM_EventQueueHopChain)->Arg(4096);

static void
BM_EventQueueTimerChurn(benchmark::State &state)
{
    // Chaos-style recovery timers: armed on the common path and
    // cancelled on the common path. Measures scheduleTimeout +
    // cancelTimeout round trips, including tombstone reclaim.
    const std::size_t batch = std::size_t(state.range(0));
    std::vector<sim::TimerId> ids(batch);
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sink = 0;
        for (std::size_t i = 0; i < batch; ++i)
            ids[i] = q.scheduleTimeout(Tick(100 + i % 1000),
                                       [&sink] { ++sink; });
        // Cancel all but every 16th; the survivors fire.
        for (std::size_t i = 0; i < batch; ++i)
            if (i % 16 != 0)
                q.cancelTimeout(ids[i]);
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(batch));
}
BENCHMARK(BM_EventQueueTimerChurn)->Arg(1024)->Arg(16384);

static void
BM_EventQueueFarHorizonMix(benchmark::State &state)
{
    // Deadlines far beyond the ladder window land in the spill heap
    // and migrate into buckets as the window slides over them.
    const std::size_t batch = std::size_t(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sink = 0;
        for (std::size_t i = 0; i < batch; ++i) {
            const Tick when =
                (i % 3 == 0) ? Tick(100000 + i * 37) : Tick(i % 800);
            q.scheduleAt(when, [&sink] { ++sink; });
        }
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(batch));
}
BENCHMARK(BM_EventQueueFarHorizonMix)->Arg(16384);

static void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache(mem::CacheConfig{std::uint64_t(state.range(0)),
                                      16, 64, 1});
    sim::Rng rng(7);
    for (auto _ : state) {
        const Addr addr = rng.nextBelow(8 * 1024 * 1024);
        benchmark::DoNotOptimize(cache.access(addr, rng.chance(0.3)));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(16 * 1024)->Arg(2 * 1024 * 1024);

static void
BM_TlbLookupHit(benchmark::State &state)
{
    xlat::Tlb tlb(xlat::TlbConfig{32, 16, 1});
    for (PageId p = 0; p < 512; ++p)
        tlb.fill(p, 1);
    PageId p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(p));
        p = (p + 1) % 512;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_TlbLookupHit);

static void
BM_AccessCounterRecord(benchmark::State &state)
{
    gpu::AccessCounter counter(100);
    sim::Rng rng(3);
    for (auto _ : state)
        counter.record(rng.nextBelow(std::uint64_t(state.range(0))));
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_AccessCounterRecord)->Arg(50)->Arg(500);

static void
BM_DpcEndPeriod(benchmark::State &state)
{
    core::GriffinConfig cfg;
    mem::PageTable pt(12, 5);
    const std::uint64_t pages = std::uint64_t(state.range(0));
    for (PageId p = 0; p < pages; ++p)
        pt.setLocation(p, DeviceId(1 + p % 4));

    core::Dpc dpc(4, cfg);
    sim::Rng rng(11);
    for (auto _ : state) {
        state.PauseTiming();
        for (DeviceId g = 1; g <= 4; ++g) {
            std::vector<gpu::PageCount> counts;
            for (int i = 0; i < 20; ++i)
                counts.push_back(gpu::PageCount{
                    rng.nextBelow(pages),
                    std::uint32_t(rng.nextRange(1, 255))});
            dpc.addCounts(g, counts);
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(dpc.endPeriod(pt));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_DpcEndPeriod)->Arg(1000)->Arg(10000);

static void
BM_LinkSend(benchmark::State &state)
{
    ic::Link link(ic::LinkConfig{32.0, 250});
    Tick now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(link.send(now, 0, 64));
        now += 2;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_LinkSend);

static void
BM_PageTableOccupancy(benchmark::State &state)
{
    mem::PageTable pt(12, 5);
    for (PageId p = 0; p < 10000; ++p)
        pt.setLocation(p, DeviceId(1 + p % 4));
    for (auto _ : state)
        benchmark::DoNotOptimize(pt.hasHighestOccupancy(2));
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_PageTableOccupancy);

BENCHMARK_MAIN();
