/**
 * @file
 * google-benchmark microbenchmarks for the hot substrate components:
 * event queue throughput, cache and TLB lookups, the DPC classifier,
 * access counters, and link arbitration. These bound the simulator's
 * own speed (events/second), which determines how large a workload
 * the harness can regenerate.
 */

#include <benchmark/benchmark.h>

#include "src/core/dpc.hh"
#include "src/gpu/access_counter.hh"
#include "src/interconnect/link.hh"
#include "src/mem/cache.hh"
#include "src/mem/page_table.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/rng.hh"
#include "src/xlat/tlb.hh"

using namespace griffin;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const std::size_t batch = std::size_t(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sink = 0;
        for (std::size_t i = 0; i < batch; ++i)
            q.schedule(Tick(i % 97), [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

static void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache(mem::CacheConfig{std::uint64_t(state.range(0)),
                                      16, 64, 1});
    sim::Rng rng(7);
    for (auto _ : state) {
        const Addr addr = rng.nextBelow(8 * 1024 * 1024);
        benchmark::DoNotOptimize(cache.access(addr, rng.chance(0.3)));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(16 * 1024)->Arg(2 * 1024 * 1024);

static void
BM_TlbLookupHit(benchmark::State &state)
{
    xlat::Tlb tlb(xlat::TlbConfig{32, 16, 1});
    for (PageId p = 0; p < 512; ++p)
        tlb.fill(p, 1);
    PageId p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(p));
        p = (p + 1) % 512;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_TlbLookupHit);

static void
BM_AccessCounterRecord(benchmark::State &state)
{
    gpu::AccessCounter counter(100);
    sim::Rng rng(3);
    for (auto _ : state)
        counter.record(rng.nextBelow(std::uint64_t(state.range(0))));
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_AccessCounterRecord)->Arg(50)->Arg(500);

static void
BM_DpcEndPeriod(benchmark::State &state)
{
    core::GriffinConfig cfg;
    mem::PageTable pt(12, 5);
    const std::uint64_t pages = std::uint64_t(state.range(0));
    for (PageId p = 0; p < pages; ++p)
        pt.setLocation(p, DeviceId(1 + p % 4));

    core::Dpc dpc(4, cfg);
    sim::Rng rng(11);
    for (auto _ : state) {
        state.PauseTiming();
        for (DeviceId g = 1; g <= 4; ++g) {
            std::vector<gpu::PageCount> counts;
            for (int i = 0; i < 20; ++i)
                counts.push_back(gpu::PageCount{
                    rng.nextBelow(pages),
                    std::uint32_t(rng.nextRange(1, 255))});
            dpc.addCounts(g, counts);
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(dpc.endPeriod(pt));
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_DpcEndPeriod)->Arg(1000)->Arg(10000);

static void
BM_LinkSend(benchmark::State &state)
{
    ic::Link link(ic::LinkConfig{32.0, 250});
    Tick now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(link.send(now, 0, 64));
        now += 2;
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_LinkSend);

static void
BM_PageTableOccupancy(benchmark::State &state)
{
    mem::PageTable pt(12, 5);
    for (PageId p = 0; p < 10000; ++p)
        pt.setLocation(p, DeviceId(1 + p % 4));
    for (auto _ : state)
        benchmark::DoNotOptimize(pt.hasHighestOccupancy(2));
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_PageTableOccupancy);

BENCHMARK_MAIN();
