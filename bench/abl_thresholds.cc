/**
 * @file
 * Ablation: the DPC classification thresholds lambda_d (dedicated),
 * lambda_s (shared) and lambda_t (streaming rate floor) of paper
 * Table I. Reports speedup over baseline plus migration volume, to
 * show the precision/recall trade-off: loose thresholds migrate
 * eagerly (and ping-pong on random workloads), tight ones leave
 * locality on the table.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto opt = bench::Options::parse(argc, argv);
    if (opt.workloads.size() == 10)
        opt.workloads = {"SC", "PR"};

    std::cout << "=== Ablation: DPC thresholds (speedup / migrations) "
                 "===\n\n";

    std::vector<std::string> header{"l_d", "l_s", "l_t"};
    for (const auto &name : opt.workloads) {
        header.push_back(name + " spd");
        header.push_back(name + " mig");
    }
    sys::Table table(header);

    struct Point
    {
        double d, s, t;
    };
    const Point points[] = {
        {1.5, 1.2, 0.001}, {2.0, 1.3, 0.001}, {2.0, 1.3, 0.002},
        {2.0, 1.3, 0.01},  {2.0, 1.3, 0.03},  {3.0, 1.1, 0.002},
        {4.0, 1.5, 0.002},
    };

    const std::size_t nwl = opt.workloads.size();
    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads)
        sweep.add(name, sys::SystemConfig::baseline());
    for (const auto &pt : points) {
        sys::SystemConfig cfg = sys::SystemConfig::griffinDefault();
        cfg.griffin.lambdaD = pt.d;
        cfg.griffin.lambdaS = pt.s;
        cfg.griffin.lambdaT = pt.t;
        for (const auto &name : opt.workloads) {
            sweep.add(name, cfg,
                      "ld=" + sys::Table::num(pt.d, 1) +
                          ",ls=" + sys::Table::num(pt.s, 1) +
                          ",lt=" + sys::Table::num(pt.t, 3));
        }
    }
    const auto results = sweep.run();

    std::size_t idx = nwl; // results[0..nwl) are the baselines
    for (const auto &pt : points) {
        std::vector<std::string> cells{sys::Table::num(pt.d, 1),
                                       sys::Table::num(pt.s, 1),
                                       sys::Table::num(pt.t, 3)};
        for (std::size_t i = 0; i < nwl; ++i) {
            const auto &r = results[idx++];
            cells.push_back(sys::Table::num(double(results[i].cycles) /
                                            double(r.cycles)));
            cells.push_back(std::to_string(r.pagesMigratedInterGpu));
        }
        table.addRow(std::move(cells));
    }

    bench::emit(table, opt);
    return 0;
}
