/**
 * @file
 * The CI perf-regression gate workload set: a pinned, deterministic
 * trio of workloads (MT, BFS, SC) run under both policies at a fixed
 * scale and seed. The emitted --report JSON is compared against the
 * committed BENCH_*.json references with griffin-compare; because the
 * simulator is fully deterministic, any drift is a real behaviour
 * change, not noise.
 *
 * Regenerating the references after an intentional change:
 *   build/bench/perf_gate --workload=MT  --report=BENCH_MT.json
 *   build/bench/perf_gate --workload=BFS --report=BENCH_BFS.json
 *   build/bench/perf_gate --workload=SC  --report=BENCH_SC.json
 *
 * The scale, seed and sampling period are pinned here and ignore the
 * usual flags, so a reference is reproducible from the command alone.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto opt = bench::Options::parse(
        argc, argv,
        "perf_gate pins --scale=64 --seed=42 --sample=0 (the committed "
        "BENCH_*.json references depend on them); --workload selects "
        "from the gate set {MT, BFS, SC}; --host-prof/--host-gate=N "
        "add a host-time summary on stderr without touching the "
        "deterministic stdout/report bytes");

    // Pin everything that shapes the numbers. CI runs must match the
    // committed references bit for bit when nothing changed.
    opt.scaleDiv = 64;
    opt.seed = 42;
    opt.samplePeriod = 0; // samples bloat the reference for no signal

    const std::vector<std::string> gateSet = {"MT", "BFS", "SC"};
    std::vector<std::string> selected;
    for (const auto &w : gateSet) {
        bool wanted = false;
        for (const auto &req : opt.workloads)
            wanted = wanted || req == w;
        if (wanted)
            selected.push_back(w);
    }
    // Options::parse defaults to all ten workloads; reduce to the
    // gate set unless specific gate members were requested.
    if (selected.empty() || opt.workloads.size() > gateSet.size())
        selected = gateSet;

    sys::Table table({"Workload", "Policy", "Cycles", "Faults",
                      "FaultP95", "Local%"});

    // No dims here: the gate labels ("MT/griffin", ...) are pinned by
    // the committed BENCH_*.json references.
    bench::Sweep sweep(opt);
    for (const auto &name : selected) {
        sweep.add(name, sys::SystemConfig::baseline());
        sweep.add(name, sys::SystemConfig::griffinDefault());
    }
    const auto results = sweep.run();

    for (std::size_t i = 0; i < selected.size(); ++i) {
        for (const bool griffin_run : {false, true}) {
            const auto &res = results[2 * i + (griffin_run ? 1 : 0)];
            table.addRow(
                {selected[i], griffin_run ? "griffin" : "first-touch",
                 std::to_string(res.cycles),
                 std::to_string(std::uint64_t(
                     res.faultBreakdown.faults())),
                 sys::Table::num(
                     res.latency.faultLatency.percentile(95.0), 0),
                 sys::Table::num(res.localFraction() * 100.0, 1)});
        }
    }

    bench::emit(table, opt);
    std::cout << "(pinned gate config: scale=64 seed=42; compare the "
                 "--report output against BENCH_*.json with "
                 "griffin-compare)\n";
    bench::emitHostSummary(results, opt);
    return 0;
}
