/**
 * @file
 * Regenerates paper Figure 10: Griffin's DPC in action on Simple
 * Convolution — the filtered per-GPU access rates of a hot page over
 * time, together with the page's current location. The migration
 * (location change) should lag the access-pattern change slightly:
 * Griffin is reactive, not predictive (paper SS V).
 */

#include <iostream>
#include <map>
#include <set>
#include <vector>

#include "bench/common.hh"

using namespace griffin;

namespace {

/**
 * Pick the page whose dominant accessor changes the most over time —
 * the paper plots exactly such an owner-shifting page. Returns the
 * hottest page among those with the most distinct bucket winners.
 */
PageId
findOwnerShiftingPage(const std::map<PageId,
                                     std::map<std::uint64_t,
                                              std::vector<std::uint64_t>>>
                          &counts)
{
    PageId best_page = 0;
    std::size_t best_shifts = 0;
    std::uint64_t best_total = 0;
    for (const auto &[page, buckets] : counts) {
        std::set<std::size_t> winners;
        std::uint64_t total = 0;
        for (const auto &[bucket, row] : buckets) {
            std::size_t win = 0;
            std::uint64_t win_n = 0, bucket_n = 0;
            for (std::size_t g = 0; g < row.size(); ++g) {
                bucket_n += row[g];
                if (row[g] > win_n) {
                    win_n = row[g];
                    win = g;
                }
            }
            total += bucket_n;
            // Count a winner only when it truly dominates the bucket:
            // symmetric shared pages (the filter) never qualify.
            if (bucket_n >= 32 && win_n * 10 >= bucket_n * 6)
                winners.insert(win);
        }
        if (winners.size() > best_shifts ||
            (winners.size() == best_shifts && total > best_total)) {
            best_shifts = winners.size();
            best_total = total;
            best_page = page;
        }
    }
    return best_page;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(
        argc, argv,
        "fig10 always runs SC under Griffin (the paper plots exactly "
        "that workload); --workload is ignored");

    // The two passes are dependent (pass 2 probes the page pass 1
    // found), so each is its own single-job sweep — which executes
    // inline, making the probe writes into the local state safe.

    // Pass 1: find the page whose dominant accessor shifts the most
    // (under the baseline, where nothing migrates to confound it).
    PageId hot = 0;
    {
        std::map<PageId,
                 std::map<std::uint64_t, std::vector<std::uint64_t>>>
            counts;
        bench::Sweep probe(opt);
        probe.add("SC", sys::SystemConfig::baseline(), "pass=probe",
                  [&](sys::MultiGpuSystem &probe_sys) {
                      probe_sys.setAccessProbe(
                          [&](Tick t, DeviceId gpu, PageId page) {
                              auto &row = counts[page][t / 20000];
                              if (row.empty())
                                  row.assign(4, 0);
                              ++row[gpu - 1];
                          });
                  });
        probe.run();
        hot = findOwnerShiftingPage(counts);
    }

    // Pass 2: probe that page's DPC state every period.
    struct Sample
    {
        Tick t;
        std::vector<double> rates;
        DeviceId loc;
    };
    std::vector<Sample> samples;
    unsigned num_gpus = 0;
    Tick t_ac = 0;

    bench::Sweep sweep(opt);
    sweep.add("SC", sys::SystemConfig::griffinDefault(), "",
              [&](sys::MultiGpuSystem &system) {
                  num_gpus = system.numGpus();
                  t_ac = system.config().griffin.tAc;
                  system.griffinPolicy()->setPeriodProbe(
                      [&](Tick t, PageId page,
                          const std::vector<double> &counts,
                          DeviceId loc) {
                          (void)page;
                          samples.push_back(Sample{t, counts, loc});
                      },
                      {hot});
              });
    const auto result = sweep.run().at(0);

    std::cout << "=== Figure 10: DPC tracking of an owner-shifting SC page ("
              << hot << ") ===\n"
              << "(" << result.cycles << " cycles, "
              << result.pagesMigratedInterGpu
              << " inter-GPU migrations total)\n\n";

    std::vector<std::string> header{"time"};
    for (unsigned g = 1; g <= num_gpus; ++g)
        header.push_back("GPU" + std::to_string(g) + " apc");
    header.push_back("location");
    sys::Table table(header);

    DeviceId last_loc = invalidDeviceId;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const auto &s = samples[i];
        // Keep the table readable: print every 10th sample plus every
        // location change.
        const bool moved = s.loc != last_loc;
        last_loc = s.loc;
        if (!moved && i % 10 != 0)
            continue;
        std::vector<std::string> cells{std::to_string(s.t)};
        for (const double c : s.rates)
            cells.push_back(sys::Table::num(c / double(t_ac), 4));
        std::string loc = s.loc == cpuDeviceId
            ? "CPU"
            : "GPU" + std::to_string(s.loc);
        if (moved)
            loc += "  <- moved";
        cells.push_back(loc);
        table.addRow(std::move(cells));
    }
    bench::emit(table, opt);
    std::cout << "(apc = filtered accesses per cycle, the paper's "
                 "y-axis; the location column is the dotted line)\n";
    return 0;
}
