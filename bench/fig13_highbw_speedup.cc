/**
 * @file
 * Regenerates paper Figure 13: Griffin versus the baseline when the
 * PCIe fabric is replaced by an NVLink-class interconnect (8x the
 * bandwidth, lower latency). The paper's point: Griffin still wins —
 * its improved placement exploits the extra bandwidth — and the
 * random-access workloads (BFS, KM, PR) improve relative to the
 * low-bandwidth system.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Figure 13: speedup with a high-bandwidth fabric "
                 "===\n\n";

    sys::Table table({"Benchmark", "Base(cyc)", "Griffin(cyc)",
                      "Speedup", "Spd(PCIe)", ""});
    std::vector<double> speedups;

    for (const auto &name : opt.workloads) {
        sys::SystemConfig base_cfg = sys::SystemConfig::baseline();
        base_cfg.withHighBandwidthFabric();
        sys::SystemConfig grif_cfg = sys::SystemConfig::griffinDefault();
        grif_cfg.withHighBandwidthFabric();

        const auto base = bench::runWorkload(name, base_cfg, opt);
        const auto grif = bench::runWorkload(name, grif_cfg, opt);

        // The PCIe numbers for comparison (Figure 12's experiment).
        const auto base_pcie = bench::runWorkload(
            name, sys::SystemConfig::baseline(), opt);
        const auto grif_pcie = bench::runWorkload(
            name, sys::SystemConfig::griffinDefault(), opt);

        const double speedup = double(base.cycles) / double(grif.cycles);
        const double pcie =
            double(base_pcie.cycles) / double(grif_pcie.cycles);
        speedups.push_back(speedup);
        table.addRow({name,
                      std::to_string(base.cycles),
                      std::to_string(grif.cycles),
                      sys::Table::num(speedup),
                      sys::Table::num(pcie),
                      sys::asciiBar(speedup, 2.0, 30)});
    }
    table.addRow({"geomean", "", "",
                  sys::Table::num(sys::geomean(speedups)), "", ""});

    bench::emit(table, opt);
    return 0;
}
