/**
 * @file
 * Regenerates paper Figure 13: Griffin versus the baseline when the
 * PCIe fabric is replaced by an NVLink-class interconnect (8x the
 * bandwidth, lower latency). The paper's point: Griffin still wins —
 * its improved placement exploits the extra bandwidth — and the
 * random-access workloads (BFS, KM, PR) improve relative to the
 * low-bandwidth system.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Figure 13: speedup with a high-bandwidth fabric "
                 "===\n\n";

    sys::Table table({"Benchmark", "Base(cyc)", "Griffin(cyc)",
                      "Speedup", "Spd(PCIe)", ""});
    std::vector<double> speedups;

    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads) {
        sys::SystemConfig base_cfg = sys::SystemConfig::baseline();
        base_cfg.withHighBandwidthFabric();
        sys::SystemConfig grif_cfg = sys::SystemConfig::griffinDefault();
        grif_cfg.withHighBandwidthFabric();

        // Each workload/policy runs on both fabrics: the dim keeps
        // the four labels distinct.
        sweep.add(name, base_cfg, "fabric=hbw");
        sweep.add(name, grif_cfg, "fabric=hbw");
        // The PCIe numbers for comparison (Figure 12's experiment).
        sweep.add(name, sys::SystemConfig::baseline(), "fabric=pcie");
        sweep.add(name, sys::SystemConfig::griffinDefault(),
                  "fabric=pcie");
    }
    const auto results = sweep.run();

    for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
        const auto &name = opt.workloads[i];
        const auto &base = results[4 * i];
        const auto &grif = results[4 * i + 1];
        const auto &base_pcie = results[4 * i + 2];
        const auto &grif_pcie = results[4 * i + 3];

        const double speedup = double(base.cycles) / double(grif.cycles);
        const double pcie =
            double(base_pcie.cycles) / double(grif_pcie.cycles);
        speedups.push_back(speedup);
        table.addRow({name,
                      std::to_string(base.cycles),
                      std::to_string(grif.cycles),
                      sys::Table::num(speedup),
                      sys::Table::num(pcie),
                      sys::asciiBar(speedup, 2.0, 30)});
    }
    table.addRow({"geomean", "", "",
                  sys::Table::num(sys::geomean(speedups)), "", ""});

    bench::emit(table, opt);
    return 0;
}
