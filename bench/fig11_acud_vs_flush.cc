/**
 * @file
 * Regenerates paper Figure 11: Griffin with ACUD versus Griffin with
 * conventional full pipeline flushing for inter-GPU migration. ACUD
 * keeps in-flight work alive and drains only the transactions that
 * touch the migrating pages, so it should win everywhere the DPC
 * actually migrates pages.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Figure 11: Griffin+Flush vs Griffin+ACUD ===\n\n";

    sys::Table table({"Benchmark", "Flush(cyc)", "ACUD(cyc)", "Speedup",
                      "Discarded", "Migrations", ""});
    std::vector<double> speedups;

    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads) {
        sys::SystemConfig flush_cfg = sys::SystemConfig::griffinDefault();
        flush_cfg.griffin.useAcud = false;
        // Both runs are Griffin: the dim keeps the labels distinct.
        sweep.add(name, flush_cfg, "acud=off");
        sweep.add(name, sys::SystemConfig::griffinDefault(), "acud=on");
    }
    const auto results = sweep.run();

    for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
        const auto &name = opt.workloads[i];
        const auto &flush = results[2 * i];
        const auto &acud = results[2 * i + 1];

        const double speedup =
            double(flush.cycles) / double(acud.cycles);
        speedups.push_back(speedup);

        // Work thrown away by the flush-based scheme.
        double discarded = 0;
        for (unsigned g = 1; g <= 4; ++g) {
            discarded += flush.stats.get(
                "gpu" + std::to_string(g) + ".opsDiscarded");
        }
        table.addRow({name,
                      std::to_string(flush.cycles),
                      std::to_string(acud.cycles),
                      sys::Table::num(speedup),
                      sys::Table::num(discarded, 0),
                      std::to_string(acud.pagesMigratedInterGpu),
                      sys::asciiBar(speedup, 2.0, 30)});
    }
    table.addRow({"geomean", "", "",
                  sys::Table::num(sys::geomean(speedups)), "", "", ""});

    bench::emit(table, opt);
    return 0;
}
