/**
 * @file
 * Regenerates paper Figure 9: the number of TLB shootdowns under the
 * baseline versus Griffin, normalized to the baseline. Griffin adds
 * GPU-side shootdowns for inter-GPU migrations but batches the
 * CPU-side ones so aggressively that the total drops well below 1.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Figure 9: TLB shootdowns, Griffin normalized to "
                 "baseline ===\n\n";

    sys::Table table({"Benchmark", "Base(cpu)", "Grif(cpu)", "Grif(gpu)",
                      "Normalized", ""});

    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads) {
        sweep.add(name, sys::SystemConfig::baseline());
        sweep.add(name, sys::SystemConfig::griffinDefault());
    }
    const auto results = sweep.run();

    for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
        const auto &name = opt.workloads[i];
        const auto &base = results[2 * i];
        const auto &grif = results[2 * i + 1];

        const double norm = base.totalShootdowns()
            ? double(grif.totalShootdowns()) /
                  double(base.totalShootdowns())
            : 0.0;
        table.addRow({name,
                      std::to_string(base.cpuShootdowns),
                      std::to_string(grif.cpuShootdowns),
                      std::to_string(grif.gpuShootdowns),
                      sys::Table::num(norm),
                      sys::asciiBar(norm, 1.0, 30)});
    }

    bench::emit(table, opt);
    std::cout << "(baseline has no GPU-side shootdowns: it never "
                 "migrates between GPUs)\n";
    return 0;
}
