/**
 * @file
 * Regenerates paper Figure 9: the number of TLB shootdowns under the
 * baseline versus Griffin, normalized to the baseline. Griffin adds
 * GPU-side shootdowns for inter-GPU migrations but batches the
 * CPU-side ones so aggressively that the total drops well below 1.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Figure 9: TLB shootdowns, Griffin normalized to "
                 "baseline ===\n\n";

    sys::Table table({"Benchmark", "Base(cpu)", "Grif(cpu)", "Grif(gpu)",
                      "Normalized", ""});

    for (const auto &name : opt.workloads) {
        const auto base = bench::runWorkload(
            name, sys::SystemConfig::baseline(), opt);
        const auto grif = bench::runWorkload(
            name, sys::SystemConfig::griffinDefault(), opt);

        const double norm = base.totalShootdowns()
            ? double(grif.totalShootdowns()) /
                  double(base.totalShootdowns())
            : 0.0;
        table.addRow({name,
                      std::to_string(base.cpuShootdowns),
                      std::to_string(grif.cpuShootdowns),
                      std::to_string(grif.gpuShootdowns),
                      sys::Table::num(norm),
                      sys::asciiBar(norm, 1.0, 30)});
    }

    bench::emit(table, opt);
    std::cout << "(baseline has no GPU-side shootdowns: it never "
                 "migrates between GPUs)\n";
    return 0;
}
